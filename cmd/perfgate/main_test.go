package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/perfgate"
)

// fixtureModule writes a tiny standalone module with one hotpath kernel
// and returns its root. The clean kernel compiles with zero perfgate
// verdicts: the loop bound is len(s), so BCE removes the check; the
// function inlines; nothing escapes.
func fixtureModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"),
		[]byte("module fixture.test/perfgate\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "kernel"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeKernel(t, dir, kernelClean)
	return dir
}

func writeKernel(t *testing.T, dir, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "kernel", "kernel.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

const kernelClean = `package kernel

// Sum is the fixture hot kernel.
//
//crisprlint:hotpath
func Sum(s []int) int {
	t := 0
	for i := 0; i < len(s); i++ {
		t += s[i]
	}
	return t
}
`

// kernelBounds iterates to a caller-supplied bound, so the compiler
// cannot prove i < len(s) and the bounds check survives.
const kernelBounds = `package kernel

// Sum is the fixture hot kernel.
//
//crisprlint:hotpath
func Sum(s []int, n int) int {
	t := 0
	for i := 0; i < n; i++ {
		t += s[i]
	}
	return t
}
`

// kernelDefer adds a defer to the clean kernel: "cannot inline Sum:
// unhandled op DEFER".
const kernelDefer = `package kernel

// Sum is the fixture hot kernel.
//
//crisprlint:hotpath
func Sum(s []int) int {
	defer func() {}()
	t := 0
	for i := 0; i < len(s); i++ {
		t += s[i]
	}
	return t
}
`

// kernelEscape leaks a local through a package-level sink, forcing a
// heap allocation inside the hot function.
const kernelEscape = `package kernel

// Sink keeps the escape alive across the call.
var Sink *int

// Sum is the fixture hot kernel.
//
//crisprlint:hotpath
func Sum(s []int) int {
	t := 0
	for i := 0; i < len(s); i++ {
		t += s[i]
	}
	Sink = &t
	return t
}
`

func gate(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestGateLifecycle drives the full loop on the fixture module: clean
// baseline, one injected regression per budget class (distinct exit
// codes), update + justification burn-down, and the resolved path.
func TestGateLifecycle(t *testing.T) {
	dir := fixtureModule(t)
	baseline := filepath.Join(dir, "PERF_BASELINE.txt")

	if code, _, errw := gate(t, "-dir", dir, "-update"); code != 0 {
		t.Fatalf("-update on clean fixture = %d\n%s", code, errw)
	}
	b, err := perfgate.ReadBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 0 {
		t.Fatalf("clean fixture should baseline zero verdicts, got %+v", b.Entries)
	}
	if b.GoVersion == "" || !strings.HasPrefix(b.GoVersion, "go") {
		t.Fatalf("baseline not pinned to a toolchain: %q", b.GoVersion)
	}
	if code, _, errw := gate(t, "-dir", dir, "-compare"); code != 0 {
		t.Fatalf("clean compare = %d\n%s", code, errw)
	}

	// Injected bounds-check regression: exit 5.
	writeKernel(t, dir, kernelBounds)
	code, _, errw := gate(t, "-dir", dir, "-compare")
	if code != 5 {
		t.Fatalf("injected bounds regression exit = %d, want 5\n%s", code, errw)
	}
	if !strings.Contains(errw, "Found IsInBounds") {
		t.Fatalf("bounds regression not reported:\n%s", errw)
	}

	// Injected de-inlining via defer: exit 4.
	writeKernel(t, dir, kernelDefer)
	code, _, errw = gate(t, "-dir", dir, "-compare")
	if code != 4 {
		t.Fatalf("injected defer de-inlining exit = %d, want 4\n%s", code, errw)
	}
	if !strings.Contains(errw, "unhandled op DEFER") {
		t.Fatalf("inline regression not reported:\n%s", errw)
	}

	// Injected escape: exit 3.
	writeKernel(t, dir, kernelEscape)
	code, _, errw = gate(t, "-dir", dir, "-compare")
	if code != 3 {
		t.Fatalf("injected escape exit = %d, want 3\n%s", code, errw)
	}
	if !strings.Contains(errw, "escape") {
		t.Fatalf("escape regression not reported:\n%s", errw)
	}

	// Accept the escape: -update writes it with the TODO placeholder,
	// so -compare still fails — with the justification exit code.
	if code, _, errw := gate(t, "-dir", dir, "-update"); code != 0 {
		t.Fatalf("-update = %d\n%s", code, errw)
	}
	code, _, errw = gate(t, "-dir", dir, "-compare")
	if code != 6 {
		t.Fatalf("unjustified baseline entry exit = %d, want 6\n%s", code, errw)
	}
	if !strings.Contains(errw, "lacks a justification") {
		t.Fatalf("missing-justification report absent:\n%s", errw)
	}

	// Write the justification; the gate goes green.
	justify(t, baseline, "t leaks through Sink by design in this fixture")
	if code, out, errw := gate(t, "-dir", dir, "-compare"); code != 0 {
		t.Fatalf("justified compare = %d\n%s%s", code, out, errw)
	}

	// Fixing the kernel leaves the baseline entry unconsumed: reported
	// as resolved, still exit 0.
	writeKernel(t, dir, kernelClean)
	code, out, errw := gate(t, "-dir", dir, "-compare")
	if code != 0 {
		t.Fatalf("compare after fix = %d\n%s", code, errw)
	}
	if !strings.Contains(out, "resolved") {
		t.Fatalf("resolved entry not surfaced:\n%s", out)
	}

	// -update preserves the justification for keys that survive.
	writeKernel(t, dir, kernelEscape)
	if code, _, errw := gate(t, "-dir", dir, "-update"); code != 0 {
		t.Fatalf("-update = %d\n%s", code, errw)
	}
	b, err = perfgate.ReadBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) == 0 {
		t.Fatal("escape entries missing after -update")
	}
	for _, e := range b.Entries {
		if e.Justification != "t leaks through Sink by design in this fixture" {
			t.Fatalf("justification not preserved across -update: %+v", e)
		}
	}
}

// justify replaces every TODO placeholder in the baseline with reason.
func justify(t *testing.T, baseline, reason string) {
	t.Helper()
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	out := strings.ReplaceAll(string(data), perfgate.TODOJustification, reason)
	if err := os.WriteFile(baseline, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoVersionMismatchRegenerates checks the degrade path: a baseline
// pinned to a different toolchain is regenerated (justifications
// preserved) instead of producing false regressions.
func TestGoVersionMismatchRegenerates(t *testing.T) {
	dir := fixtureModule(t)
	baseline := filepath.Join(dir, "PERF_BASELINE.txt")
	writeKernel(t, dir, kernelEscape)
	if code, _, errw := gate(t, "-dir", dir, "-update"); code != 0 {
		t.Fatalf("-update = %d\n%s", code, errw)
	}
	justify(t, baseline, "fixture escape, accepted")

	// Re-pin the baseline to a toolchain that never existed.
	b, err := perfgate.ReadBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	current := b.GoVersion
	b.GoVersion = "go1.0.0-fixture"
	if err := perfgate.WriteBaseline(baseline, b); err != nil {
		t.Fatal(err)
	}

	code, out, errw := gate(t, "-dir", dir, "-compare")
	if code != 0 {
		t.Fatalf("version-mismatch compare = %d, want 0 (warn-and-regenerate)\n%s", code, errw)
	}
	if !strings.Contains(errw, "regenerating") {
		t.Fatalf("mismatch warning absent:\n%s", errw)
	}
	if !strings.Contains(out, "regenerated") {
		t.Fatalf("regeneration notice absent:\n%s", out)
	}
	b, err = perfgate.ReadBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if b.GoVersion != current {
		t.Fatalf("regenerated pin = %q, want %q", b.GoVersion, current)
	}
	if len(b.Entries) == 0 {
		t.Fatal("entries missing after regeneration")
	}
	for _, e := range b.Entries {
		if e.Justification != "fixture escape, accepted" {
			t.Fatalf("justification lost across regeneration: %+v", e)
		}
	}
}

// TestMigrateLegacyAllocBaseline imports an allocgate-format baseline:
// matching escape entries inherit a migration justification, vanished
// legacy entries are dropped with a notice.
func TestMigrateLegacyAllocBaseline(t *testing.T) {
	dir := fixtureModule(t)
	writeKernel(t, dir, kernelEscape)

	// Build the legacy file from the real current verdicts plus one
	// stale entry that no longer reproduces.
	entries, err := perfgate.Collect(dir, map[perfgate.Class]bool{perfgate.ClassEscape: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("escape fixture produced no escape verdicts")
	}
	legacy := perfgate.LegacyAllocHeader + "\n"
	for _, e := range entries {
		legacy += e.Pkg + " " + e.Func + ": " + e.Message + "\n"
	}
	legacy += "fixture.test/perfgate/kernel Gone: make([]byte, n) escapes to heap\n"
	legacyPath := filepath.Join(dir, "ALLOC_BASELINE.txt")
	if err := os.WriteFile(legacyPath, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, errw := gate(t, "-dir", dir, "-migrate", legacyPath)
	if code != 0 {
		t.Fatalf("-migrate = %d\n%s", code, errw)
	}
	if !strings.Contains(out, "legacy entry resolved, dropped: escape fixture.test/perfgate/kernel Gone") {
		t.Fatalf("stale legacy entry not reported:\n%s", out)
	}
	b, err := perfgate.ReadBaseline(filepath.Join(dir, "PERF_BASELINE.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range b.Entries {
		if e.Class == perfgate.ClassEscape && !strings.Contains(e.Justification, "migrated from ALLOC_BASELINE.txt") {
			t.Fatalf("escape entry missing migration justification: %+v", e)
		}
	}

	// Migration justifies every escape; the fixture has no inline or
	// bounds verdicts, so the gate is green immediately.
	if code, _, errw := gate(t, "-dir", dir, "-compare"); code != 0 {
		t.Fatalf("post-migration compare = %d\n%s", code, errw)
	}
}

// TestClassFilter confirms -class restricts both collection and the
// gated baseline slice — the contract the allocgate shim relies on.
func TestClassFilter(t *testing.T) {
	dir := fixtureModule(t)
	writeKernel(t, dir, kernelBounds)
	if code, _, errw := gate(t, "-dir", dir, "-update"); code != 0 {
		t.Fatalf("-update = %d\n%s", code, errw)
	}
	// The bounds entry is still TODO-justified: a full compare fails
	// with 6, an escape-only compare ignores it entirely.
	if code, _, _ := gate(t, "-dir", dir, "-compare"); code != 6 {
		t.Fatalf("full compare = %d, want 6", code)
	}
	if code, _, errw := gate(t, "-dir", dir, "-compare", "-class", "escape"); code != 0 {
		t.Fatalf("escape-only compare = %d, want 0\n%s", code, errw)
	}
	// And an escape regression still trips it.
	writeKernel(t, dir, kernelEscape)
	if code, _, _ := gate(t, "-dir", dir, "-compare", "-class", "escape"); code != 3 {
		t.Fatal("escape-only compare missed an escape regression")
	}
	if code, _, errw := gate(t, "-dir", dir, "-compare", "-class", "bogus"); code != 1 || !strings.Contains(errw, "unknown class") {
		t.Fatal("bogus class not rejected")
	}
}
