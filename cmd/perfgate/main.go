// Command perfgate is the compiler-feedback performance gate: it
// compiles every package containing a //crisprlint:hotpath function
// with escape analysis, inlining decisions, and surviving-bounds-check
// reporting enabled (-m=2 -d=ssa/check_bce/debug=1), attributes each
// verdict to its hot function, and compares against the justified,
// Go-toolchain-pinned PERF_BASELINE.txt.
//
// Modes:
//
//	perfgate                 print the current verdicts
//	perfgate -update         regenerate the baseline (justifications preserved)
//	perfgate -compare        gate against the baseline
//	perfgate -migrate FILE   one-shot import of a legacy allocgate baseline
//
// Exit codes in -compare mode: 0 clean; 3 new escape; 4 new inlining
// regression; 5 new bounds check; 6 baseline entry without a written
// justification; 1 operational error. When several classes regress at
// once the lowest code wins (escape before inline before bounds). On a
// Go toolchain version mismatch the gate warns and regenerates the
// baseline instead of failing falsely: compiler diagnostics are not
// stable across Go releases.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/cap-repro/crisprscan/internal/perfgate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("perfgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to gate")
	baseline := fs.String("baseline", "", "baseline `file` (default <dir>/PERF_BASELINE.txt)")
	update := fs.Bool("update", false, "regenerate the baseline, preserving justifications of surviving entries")
	compare := fs.Bool("compare", false, "compare current verdicts against the baseline and gate")
	migrate := fs.String("migrate", "", "one-shot: import the legacy allocgate baseline `file` into the perfgate baseline")
	classFlag := fs.String("class", "", "comma-separated budget `classes` to report/gate (escape,inline,bounds); default all")
	if err := fs.Parse(argv); err != nil {
		return 1
	}
	if *baseline == "" {
		*baseline = filepath.Join(*dir, "PERF_BASELINE.txt")
	}
	classes, err := parseClasses(*classFlag)
	if err != nil {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}

	switch {
	case *migrate != "":
		return perfgate.Migrate(*dir, *baseline, *migrate, stdout, stderr)
	case *update:
		return perfgate.Update(*dir, *baseline, stdout, stderr)
	case *compare:
		return perfgate.Compare(*dir, *baseline, classes, stdout, stderr)
	}

	entries, err := perfgate.Collect(*dir, classes)
	if err != nil {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}
	for _, e := range entries {
		fmt.Fprintf(stdout, "%s | x%d\n", e.Key(), e.Count)
	}
	return 0
}

func parseClasses(s string) (map[perfgate.Class]bool, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[perfgate.Class]bool)
	for _, part := range strings.Split(s, ",") {
		c := perfgate.Class(strings.TrimSpace(part))
		switch c {
		case perfgate.ClassEscape, perfgate.ClassInline, perfgate.ClassBounds:
			out[c] = true
		default:
			return nil, fmt.Errorf("unknown class %q (want escape, inline, or bounds)", part)
		}
	}
	return out, nil
}
