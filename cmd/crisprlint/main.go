// Command crisprlint is the repository's invariant checker: a
// multichecker of eighteen custom analyzers that enforce the contracts
// the code base otherwise keeps only by convention. Eight are syntactic
// (enginereg, dnaalphabet, statsdiscipline, errwrap, clockguard,
// ctxflow, logdiscipline, deferloop): engine-registry parity behind the
// paper's "identical site set" claim, the internal/dna alphabet
// boundary, populated execution stats, the error-prefix/%w convention,
// deterministic modeled-platform timing, context propagation through
// the scan pipeline, library logging discipline, and no accumulating
// defers in loops. Five are type-checked (hotpath, atomicfield,
// lockorder, boundshint, loopinvariant): allocation- and
// copy-freedom in //crisprlint:hotpath-annotated scan kernels, no torn
// sync/atomic counters, documented `guarded by <mu>` mutex discipline,
// slice accesses shaped to defeat bounds-check elimination, and
// loop-invariant work trapped inside hot loops. Four are
// interprocedural (goroutineleak, chandiscipline, waitsync, lockcycle),
// built on a module-wide call graph with serialized per-function facts
// under the vet protocol: provable goroutine termination paths, channel
// close/send ownership, sync.WaitGroup protocol, and an acyclic
// module-wide lock-order graph.
//
// Standalone usage (whole-module analysis, including the cross-package
// checks):
//
//	go run ./cmd/crisprlint ./...
//
// Exit status: 0 clean, 3 findings, 1 operational error (mirroring
// x/tools multicheckers). `-json` switches the standalone output to a
// JSON array of findings for CI annotation. `-baseline <file>` filters
// findings through a committed suppression baseline (burn-down list for
// landing new analyzers module-wide); `-update-baseline` regenerates
// that file from the current findings.
//
// Vet-tool usage (per-package, integrates with go vet's build cache;
// the typed analyzers resolve imports from the go command's export
// data):
//
//	go build -o /tmp/crisprlint ./cmd/crisprlint
//	go vet -vettool=/tmp/crisprlint ./...
//
// `crisprlint help` lists the analyzers with their documentation. A
// finding can be suppressed with a trailing or preceding comment
// `//crisprlint:allow <analyzer> reason`; files with a standard
// `// Code generated ... DO NOT EDIT.` header are never flagged.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"sort"
	"strings"

	"github.com/cap-repro/crisprscan/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("crisprlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	versionFlag := fs.String("V", "", "print version and exit (vet protocol)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags as JSON and exit (vet protocol)")
	jsonFlag := fs.Bool("json", false, "standalone mode: emit findings as a JSON array on stdout")
	baselineFlag := fs.String("baseline", "", "standalone mode: suppression baseline `file`; recorded findings are filtered out, new ones still fail")
	updateBaseline := fs.Bool("update-baseline", false, "standalone mode: write the current findings to -baseline and exit 0")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *updateBaseline && *baselineFlag == "" {
		fmt.Fprintln(stderr, "crisprlint: -update-baseline requires -baseline")
		return 1
	}

	switch {
	case *versionFlag != "":
		// The go command fingerprints the vet tool via `-V=full` and
		// expects "<name> version <id>"-shaped output; hash the
		// executable so rebuilds invalidate vet's cache.
		fmt.Fprintf(stdout, "crisprlint version devel buildID=%s\n", selfHash())
		return 0
	case *flagsFlag:
		fmt.Fprintln(stdout, "[]")
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		n, err := analysis.RunVetUnit(rest[0], stderr)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if n > 0 {
			return 2 // vet protocol: diagnostics present
		}
		return 0
	}
	if len(rest) == 1 && rest[0] == "help" {
		printHelp(stdout)
		return 0
	}
	return runStandalone(rest, *jsonFlag, *baselineFlag, *updateBaseline, stdout, stderr)
}

// jsonFinding is the `-json` wire shape: one object per diagnostic,
// positions split out so CI annotators need no parsing.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func runStandalone(patterns []string, asJSON bool, baselinePath string, updateBaseline bool, stdout, stderr io.Writer) int {
	fset := token.NewFileSet()
	prog, err := analysis.Load(fset, ".", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	diags, err := analysis.RunAnalyzers(fset, prog, analysis.All())
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		findings = append(findings, jsonFinding{File: p.Filename, Line: p.Line, Column: p.Column, Analyzer: d.Analyzer, Message: d.Message})
	}
	if baselinePath != "" {
		if updateBaseline {
			if err := writeLintBaseline(baselinePath, findings); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
			fmt.Fprintf(stderr, "crisprlint: wrote %s (%d finding(s) baselined)\n", baselinePath, len(findings))
			return 0
		}
		allowed, err := readLintBaseline(baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		var suppressed, stale int
		findings, suppressed, stale = applyLintBaseline(findings, allowed)
		if suppressed > 0 {
			fmt.Fprintf(stderr, "crisprlint: %d finding(s) suppressed by %s\n", suppressed, baselinePath)
		}
		if stale > 0 {
			fmt.Fprintf(stderr, "crisprlint: %d stale entr(y/ies) in %s — findings fixed; regenerate to burn the baseline down\n", stale, baselinePath)
		}
	}
	if asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Column, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "crisprlint: %d finding(s)\n", len(findings))
		return 3
	}
	return 0
}

func printHelp(w io.Writer) {
	analyzers := analysis.All()
	sort.Slice(analyzers, func(i, j int) bool { return analyzers[i].Name < analyzers[j].Name })
	fmt.Fprintln(w, "crisprlint checks the crisprscan repository invariants:")
	fmt.Fprintln(w)
	for _, a := range analyzers {
		fmt.Fprintf(w, "  %-16s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "usage: crisprlint [packages]   (standalone, default ./...)")
	fmt.Fprintln(w, "       go vet -vettool=$(command -v crisprlint) [packages]")
}

// selfHash fingerprints the running executable for the vet build cache.
func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}
