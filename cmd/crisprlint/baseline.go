package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Baseline suppression for standalone mode. A baseline file lets a new
// analyzer land module-wide with an honest burn-down list instead of
// day-one //crisprlint:allow sprinkling: existing findings are recorded
// once (sorted, schema-versioned, written via temp-file + rename like
// the perfgate and benchjson baselines), suppressed on later runs, and
// the file shrinks as the findings are fixed. Entries are keyed by
// (file, analyzer, message) with an occurrence count — line and column
// are deliberately excluded so unrelated edits above a finding do not
// invalidate the baseline, and a count increase (a new instance of a
// baselined finding) still fails the run.
const lintBaselineSchema = "# crisprlint suppression baseline, schema v1"

// baselineKey identifies findings for suppression purposes. File paths
// are normalized to slash-separated module-root-relative form so the
// committed baseline is portable across checkouts.
func baselineKey(f jsonFinding) string {
	return normalizePath(f.File) + "\x00" + f.Analyzer + "\x00" + f.Message
}

func normalizePath(file string) string {
	if filepath.IsAbs(file) {
		if wd, err := os.Getwd(); err == nil {
			if rel, err := filepath.Rel(wd, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = rel
			}
		}
	}
	return filepath.ToSlash(file)
}

// writeLintBaseline aggregates findings by key and writes the sorted
// baseline atomically (temp file + rename in the destination directory,
// so a crashed run never leaves a torn file).
func writeLintBaseline(path string, findings []jsonFinding) error {
	counts := map[string]int{}
	for _, f := range findings {
		counts[baselineKey(f)]++
	}
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var b strings.Builder
	b.WriteString(lintBaselineSchema + "\n")
	b.WriteString("# regenerate with: go run ./cmd/crisprlint -baseline " + filepath.ToSlash(path) + " -update-baseline [packages]\n")
	b.WriteString("# entry: <file> <analyzer>: <message> | x<count>\n")
	for _, k := range keys {
		parts := strings.SplitN(k, "\x00", 3)
		fmt.Fprintf(&b, "%s %s: %s | x%d\n", parts[0], parts[1], parts[2], counts[k])
	}

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".crisprlint-baseline-*")
	if err != nil {
		return fmt.Errorf("crisprlint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(b.String()); err != nil {
		tmp.Close()
		return fmt.Errorf("crisprlint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("crisprlint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("crisprlint: %w", err)
	}
	return nil
}

// readLintBaseline parses a baseline into key -> remaining-suppression
// count. The schema line must match exactly: a future format bump fails
// loudly instead of silently suppressing nothing (or everything).
func readLintBaseline(path string) (map[string]int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("crisprlint: %w", err)
	}
	lines := strings.Split(string(data), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != lintBaselineSchema {
		return nil, fmt.Errorf("crisprlint: %s: not a crisprlint baseline (want first line %q)", path, lintBaselineSchema)
	}
	out := map[string]int{}
	for i, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sep := strings.LastIndex(line, " | x")
		if sep < 0 {
			return nil, fmt.Errorf("crisprlint: %s:%d: malformed baseline entry (missing \" | x<count>\")", path, i+2)
		}
		count, err := strconv.Atoi(line[sep+len(" | x"):])
		if err != nil || count <= 0 {
			return nil, fmt.Errorf("crisprlint: %s:%d: malformed baseline count", path, i+2)
		}
		head := line[:sep]
		sp := strings.Index(head, " ")
		if sp < 0 {
			return nil, fmt.Errorf("crisprlint: %s:%d: malformed baseline entry (want \"<file> <analyzer>: <message>\")", path, i+2)
		}
		file, rest := head[:sp], head[sp+1:]
		colon := strings.Index(rest, ": ")
		if colon < 0 {
			return nil, fmt.Errorf("crisprlint: %s:%d: malformed baseline entry (want \"<file> <analyzer>: <message>\")", path, i+2)
		}
		key := file + "\x00" + rest[:colon] + "\x00" + rest[colon+2:]
		out[key] += count
	}
	return out, nil
}

// applyLintBaseline partitions findings into kept (unbaselined, still
// fail the run) and suppressed. Each baseline entry absorbs up to its
// recorded count; findings are already sorted by position, so when a
// key has more occurrences than the baseline allows, the surviving ones
// are the later positions — deterministic across runs. It also returns
// the number of stale entries: baseline keys whose findings have been
// (fully or partly) fixed, which the caller reports so the burn-down
// file actually burns down.
func applyLintBaseline(findings []jsonFinding, allowed map[string]int) (kept []jsonFinding, suppressed, stale int) {
	remaining := make(map[string]int, len(allowed))
	for k, v := range allowed {
		remaining[k] = v
	}
	kept = findings[:0:0]
	for _, f := range findings {
		k := baselineKey(f)
		if remaining[k] > 0 {
			remaining[k]--
			suppressed++
			continue
		}
		kept = append(kept, f)
	}
	for _, v := range remaining {
		if v > 0 {
			stale++
		}
	}
	return kept, suppressed, stale
}
