package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestJSONOutputSortedRoundTrip builds a throwaway module with known
// findings, runs the standalone driver with -json, and checks the wire
// contract CI depends on: the output is a JSON array that decodes into
// the finding shape, every element carries its analyzer name and a
// full position, the array is sorted by (file, line, column, analyzer),
// and the decoded value re-encodes to the same bytes (round-trip).
func TestJSONOutputSortedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module github.com/cap-repro/crisprscan\n\ngo 1.22\n")
	write("internal/fix/a.go", `package fix

type res struct{}

func (res) Close() error { return nil }

func open(string) res { return res{} }

func a(paths []string) {
	for _, p := range paths {
		f := open(p)
		defer f.Close()
	}
	for _, p := range paths {
		f := open(p)
		defer f.Close()
	}
}
`)
	write("internal/fix/b.go", `package fix

func b(paths []string) {
	for _, p := range paths {
		f := open(p)
		defer f.Close()
	}
}
`)

	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 3 {
		t.Fatalf("exit = %d, want 3 (findings present); stderr:\n%s", code, stderr.String())
	}

	var got []jsonFinding
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, stdout.String())
	}
	if len(got) != 3 {
		t.Fatalf("got %d findings, want 3: %+v", len(got), got)
	}
	for i, f := range got {
		if f.Analyzer != "deferloop" {
			t.Errorf("finding %d: analyzer = %q, want deferloop", i, f.Analyzer)
		}
		if f.File == "" || f.Line == 0 || f.Column == 0 {
			t.Errorf("finding %d: incomplete position: %+v", i, f)
		}
		if f.Message == "" {
			t.Errorf("finding %d: empty message", i)
		}
	}
	sorted := sort.SliceIsSorted(got, func(i, j int) bool {
		a, b := got[i], got[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	if !sorted {
		t.Errorf("findings not sorted by (file, line, column, analyzer): %+v", got)
	}

	// Round-trip: decode → encode → decode must be lossless.
	re, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("re-encoding findings: %v", err)
	}
	var again []jsonFinding
	if err := json.Unmarshal(re, &again); err != nil {
		t.Fatalf("decoding re-encoded findings: %v", err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Errorf("round-trip mismatch:\nfirst:  %+v\nsecond: %+v", got, again)
	}
}

// TestBaselineRoundTrip exercises the -baseline suppression loop on a
// throwaway module with known findings: record the findings with
// -update-baseline, verify the written file is schema-versioned and
// sorted, verify a re-run with -baseline suppresses everything (exit
// 0, empty JSON array), verify parse(write(parse(file))) is lossless,
// and verify both failure directions — a new finding beyond the
// baselined count still fails, and a fixed finding is reported stale.
func TestBaselineRoundTrip(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module github.com/cap-repro/crisprscan\n\ngo 1.22\n")
	const twoDefers = `package fix

type res struct{}

func (res) Close() error { return nil }

func open(string) res { return res{} }

func a(paths []string) {
	for _, p := range paths {
		f := open(p)
		defer f.Close()
	}
	for _, p := range paths {
		f := open(p)
		defer f.Close()
	}
}
`
	write("internal/fix/a.go", twoDefers)

	t.Chdir(dir)
	basePath := filepath.Join(dir, "LINT_BASELINE.txt")

	// -update-baseline requires -baseline.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-update-baseline", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("-update-baseline without -baseline: exit = %d, want 1", code)
	}

	// Record the two deferloop findings.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-json", "-baseline", basePath, "-update-baseline", "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-update-baseline exit = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if lines[0] != lintBaselineSchema {
		t.Fatalf("baseline schema line = %q, want %q", lines[0], lintBaselineSchema)
	}
	var entries []string
	for _, l := range lines {
		if l != "" && !strings.HasPrefix(l, "#") {
			entries = append(entries, l)
		}
	}
	if len(entries) != 1 || !strings.Contains(entries[0], "internal/fix/a.go deferloop: ") || !strings.HasSuffix(entries[0], "| x2") {
		t.Fatalf("baseline entries = %q, want one aggregated deferloop x2 entry with a relative path", entries)
	}
	if !sort.StringsAreSorted(entries) {
		t.Fatalf("baseline entries not sorted: %q", entries)
	}

	// Round-trip: parse -> write -> parse must be lossless.
	allowed, err := readLintBaseline(basePath)
	if err != nil {
		t.Fatal(err)
	}
	var synth []jsonFinding
	for k, n := range allowed {
		parts := strings.SplitN(k, "\x00", 3)
		for i := 0; i < n; i++ {
			synth = append(synth, jsonFinding{File: parts[0], Analyzer: parts[1], Message: parts[2]})
		}
	}
	rewritten := filepath.Join(dir, "REWRITTEN.txt")
	if err := writeLintBaseline(rewritten, synth); err != nil {
		t.Fatal(err)
	}
	again, err := readLintBaseline(rewritten)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(allowed, again) {
		t.Fatalf("baseline round-trip mismatch:\nfirst:  %v\nsecond: %v", allowed, again)
	}

	// Suppressed run: exit 0, empty JSON array, suppression note.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-json", "-baseline", basePath, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("suppressed run exit = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	var got []jsonFinding
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("decoding suppressed -json output: %v\n%s", err, stdout.String())
	}
	if len(got) != 0 {
		t.Fatalf("suppressed run emitted %d finding(s), want 0: %+v", len(got), got)
	}
	if !strings.Contains(stderr.String(), "2 finding(s) suppressed") {
		t.Fatalf("suppressed run stderr missing suppression note:\n%s", stderr.String())
	}

	// A third instance of the same finding exceeds the baselined count.
	write("internal/fix/b.go", `package fix

func b(paths []string) {
	for _, p := range paths {
		f := open(p)
		defer f.Close()
	}
}
`)
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-json", "-baseline", basePath, "./..."}, &stdout, &stderr); code != 3 {
		t.Fatalf("new-finding run exit = %d, want 3; stderr:\n%s", code, stderr.String())
	}
	got = nil
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !strings.HasSuffix(filepath.ToSlash(got[0].File), "internal/fix/b.go") {
		t.Fatalf("new-finding run kept %+v, want exactly the b.go finding", got)
	}

	// Fixing all findings leaves the baseline stale: exit 0 plus a
	// burn-down nudge.
	if err := os.Remove(filepath.Join(dir, "internal", "fix", "b.go")); err != nil {
		t.Fatal(err)
	}
	write("internal/fix/a.go", "package fix\n")
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-json", "-baseline", basePath, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("stale run exit = %d, want 0; stderr:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "stale") {
		t.Fatalf("stale run stderr missing burn-down nudge:\n%s", stderr.String())
	}
}
