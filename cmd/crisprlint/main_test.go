package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// TestJSONOutputSortedRoundTrip builds a throwaway module with known
// findings, runs the standalone driver with -json, and checks the wire
// contract CI depends on: the output is a JSON array that decodes into
// the finding shape, every element carries its analyzer name and a
// full position, the array is sorted by (file, line, column, analyzer),
// and the decoded value re-encodes to the same bytes (round-trip).
func TestJSONOutputSortedRoundTrip(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module github.com/cap-repro/crisprscan\n\ngo 1.22\n")
	write("internal/fix/a.go", `package fix

type res struct{}

func (res) Close() error { return nil }

func open(string) res { return res{} }

func a(paths []string) {
	for _, p := range paths {
		f := open(p)
		defer f.Close()
	}
	for _, p := range paths {
		f := open(p)
		defer f.Close()
	}
}
`)
	write("internal/fix/b.go", `package fix

func b(paths []string) {
	for _, p := range paths {
		f := open(p)
		defer f.Close()
	}
}
`)

	t.Chdir(dir)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "./..."}, &stdout, &stderr); code != 3 {
		t.Fatalf("exit = %d, want 3 (findings present); stderr:\n%s", code, stderr.String())
	}

	var got []jsonFinding
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, stdout.String())
	}
	if len(got) != 3 {
		t.Fatalf("got %d findings, want 3: %+v", len(got), got)
	}
	for i, f := range got {
		if f.Analyzer != "deferloop" {
			t.Errorf("finding %d: analyzer = %q, want deferloop", i, f.Analyzer)
		}
		if f.File == "" || f.Line == 0 || f.Column == 0 {
			t.Errorf("finding %d: incomplete position: %+v", i, f)
		}
		if f.Message == "" {
			t.Errorf("finding %d: empty message", i)
		}
	}
	sorted := sort.SliceIsSorted(got, func(i, j int) bool {
		a, b := got[i], got[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	if !sorted {
		t.Errorf("findings not sorted by (file, line, column, analyzer): %+v", got)
	}

	// Round-trip: decode → encode → decode must be lossless.
	re, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("re-encoding findings: %v", err)
	}
	var again []jsonFinding
	if err := json.Unmarshal(re, &again); err != nil {
		t.Fatalf("decoding re-encoded findings: %v", err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Errorf("round-trip mismatch:\nfirst:  %+v\nsecond: %+v", got, again)
	}
}
