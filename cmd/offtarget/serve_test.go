package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServe launches runServe on an ephemeral port and returns the
// base URL, a cancel that triggers graceful drain, and the exit
// channel.
func startServe(t *testing.T, cfg *config) (base string, stop context.CancelFunc, done chan error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan string, 1)
	cfg.onAdmin = func(addr string) { addrCh <- addr }
	if cfg.log == nil {
		cfg.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	done = make(chan error, 1)
	go func() { done <- runServe(ctx, cfg) }()
	select {
	case addr := <-addrCh:
		return "http://" + addr, cancel, done
	case err := <-done:
		cancel()
		t.Fatalf("runServe exited during startup: %v", err)
		return "", nil, nil
	}
}

// TestServeEndToEnd drives the daemon the way an operator would: check
// readiness before any job exists, submit over HTTP, poll to
// completion, download the artifact, scrape metrics, then SIGTERM
// (context cancel) and require a clean exit.
func TestServeEndToEnd(t *testing.T) {
	genomePath, guidesPath, _ := cliFixture(t, 907)
	_ = guidesPath
	cfg := &config{
		genomePath: genomePath,
		httpAddr:   "127.0.0.1:0",
		serve:      true,
		serveDir:   t.TempDir(),
		engineName: "hyperscan",
		serveDrain: 5 * time.Second,
		timeout:    0,
	}
	base, stop, done := startServe(t, cfg)
	defer stop()

	// The daemon readiness fix: ready as soon as the service accepts
	// jobs — NOT "after the first scan", which for a fresh daemon with
	// no work would hold /readyz at 503 forever and keep it out of load
	// balancers.
	rr, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before first job = %d, want 200 in serve mode", rr.StatusCode)
	}

	spec := map[string]any{
		"guides": []map[string]string{{"name": "g0", "spacer": "ACGTACGTACGTACGTACGT"}},
		"k":      2,
	}
	body, _ := json.Marshal(spec)
	sr, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Error string `json:"error"`
	}
	if sr.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(sr.Body)
		sr.Body.Close()
		t.Fatalf("submit = %d: %s", sr.StatusCode, msg)
	}
	if err := json.NewDecoder(sr.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()

	deadline := time.NewTimer(30 * time.Second)
	defer deadline.Stop()
	for job.State != "done" && job.State != "failed" && job.State != "cancelled" {
		select {
		case <-deadline.C:
			t.Fatalf("job stuck in %s", job.State)
		case <-time.After(10 * time.Millisecond):
		}
		pr, err := http.Get(base + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(pr.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
		pr.Body.Close()
	}
	if job.State != "done" {
		t.Fatalf("job = %s (err %q), want done", job.State, job.Error)
	}

	or, err := http.Get(base + "/v1/jobs/" + job.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(or.Body)
	or.Body.Close()
	if or.StatusCode != http.StatusOK || !strings.HasPrefix(string(out), "guide") {
		t.Fatalf("output = %d, %d bytes (want the TSV header)", or.StatusCode, len(out))
	}

	// The admin endpoint must expose the service families alongside the
	// per-scan ones.
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mtext, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	for _, family := range []string{
		"crisprscan_jobs_submitted_total 1",
		`crisprscan_jobs_finished_total{state="done"} 1`,
		"crisprscan_jobs_queued 0",
		"crisprscan_service_accepting 1",
		"crisprscan_scans_completed_total 1", // the job registered as a scan
	} {
		if !strings.Contains(string(mtext), family) {
			t.Fatalf("/metrics missing %q:\n%s", family, mtext)
		}
	}

	// Graceful shutdown: cancel (the SIGTERM path) and require exit 0
	// (nil error) within the drain budget.
	stop()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runServe = %v, want nil (exit 0) on graceful drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("runServe did not exit after shutdown signal")
	}
}

func TestServeFlagValidation(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := runServe(context.Background(), &config{log: logger, serveDir: "x"}); err == nil || !strings.Contains(err.Error(), "-http") {
		t.Fatalf("missing -http err = %v", err)
	}
	if err := runServe(context.Background(), &config{log: logger, httpAddr: "127.0.0.1:0"}); err == nil || !strings.Contains(err.Error(), "-serve-dir") {
		t.Fatalf("missing -serve-dir err = %v", err)
	}
	// Neither a default genome nor a genome dir: the service cannot run
	// any job, so startup must fail loudly rather than accept doomed
	// work.
	err := runServe(context.Background(), &config{log: logger, httpAddr: "127.0.0.1:0", serveDir: t.TempDir()})
	if err == nil || !strings.Contains(err.Error(), "genome") {
		t.Fatalf("missing genome config err = %v", err)
	}
}
