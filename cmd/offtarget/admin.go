package main

import (
	"encoding/json"
	"log/slog"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"

	"github.com/cap-repro/crisprscan/internal/metrics"
)

// buildVersion reports the module version and VCS revision baked into
// the binary (best-effort: "go run" and test binaries carry neither).
func buildVersion() (version, revision string) {
	version, revision = "(devel)", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.Main.Version != "" {
		version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return
}

// scanState is one scan registered with the admin endpoint. The
// exported fields are immutable after begin; rec and prog are
// concurrent-safe on their own.
type scanState struct {
	ID     int64  `json:"id"`
	Engine string `json:"engine"`
	K      int    `json:"k"`
	PAM    string `json:"pam"`
	Genome string `json:"genome"`

	rec  *metrics.Recorder
	prog *metrics.Progress
}

// scanRegistry tracks in-flight scans and folds each one's final
// metrics snapshot into a process-lifetime aggregator. Removal from
// the live set and Observe happen under one lock, so a /metrics scrape
// sees every scan exactly once — live or aggregated, never both or
// neither.
type scanRegistry struct {
	mu        sync.Mutex
	nextID    int64
	live      map[int64]*scanState
	agg       metrics.Aggregator
	started   int64
	completed int64
}

func newScanRegistry() *scanRegistry {
	return &scanRegistry{live: make(map[int64]*scanState)}
}

// begin registers a scan and returns its idempotent completion func.
func (r *scanRegistry) begin(st *scanState) func() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	st.ID = r.nextID
	r.live[st.ID] = st
	r.started++
	done := false
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if done {
			return
		}
		done = true
		delete(r.live, st.ID)
		r.agg.Observe(st.rec.Snapshot())
		r.completed++
	}
}

// collect returns a merged process-wide snapshot plus the live scans,
// all captured under one lock.
func (r *scanRegistry) collect() (merged *metrics.Snapshot, scans []*scanState, started, completed int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	liveSnaps := make([]*metrics.Snapshot, 0, len(r.live))
	for id := int64(1); id <= r.nextID; id++ {
		st, ok := r.live[id]
		if !ok {
			continue
		}
		scans = append(scans, st)
		liveSnaps = append(liveSnaps, st.rec.Snapshot())
	}
	return r.agg.MergedWith(liveSnaps...), scans, r.started, r.completed
}

// adminHooks lets a host mode (the scan service) extend the admin
// endpoint: a readiness predicate, extra /metrics families, and extra
// route mounts. A nil hooks (or nil field) keeps the one-shot scan
// behavior.
type adminHooks struct {
	// ready overrides /readyz. The one-shot CLI default ("a scan has
	// started") is wrong for a daemon that simply has not received work
	// yet; serve mode supplies "initialized and accepting jobs".
	ready func() (ok bool, reason string)
	// metrics appends families to /metrics after the scan families.
	metrics func(e *metrics.PromEncoder)
	// mount adds handlers by pattern (e.g. "/v1/" → the job API).
	mount map[string]http.Handler
}

// adminServer serves the operational endpoints for a running scan:
// /metrics (Prometheus text 0.0.4), /healthz, /readyz, /debug/scans
// (JSON progress), and the standard /debug/pprof handlers.
type adminServer struct {
	reg   *scanRegistry
	hooks adminHooks
	ln    net.Listener
	srv   *http.Server
}

// newAdminServer binds addr immediately (so a bad -http fails before
// any work starts) and serves in the background until Close. hooks may
// be nil (one-shot scan mode).
func newAdminServer(addr string, reg *scanRegistry, logger *slog.Logger, hooks *adminHooks) (*adminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &adminServer{reg: reg, ln: ln}
	if hooks != nil {
		a.hooks = *hooks
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/readyz", a.handleReadyz)
	mux.HandleFunc("/debug/scans", a.handleScans)
	mux.HandleFunc("/debug/pprof/", netpprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
	for pattern, h := range a.hooks.mount {
		mux.Handle(pattern, h)
	}
	a.srv = &http.Server{Handler: mux}
	go func() {
		if serr := a.srv.Serve(ln); serr != nil && serr != http.ErrServerClosed {
			// The admin endpoint must never take down a search.
			logger.Error("admin server stopped", "err", serr)
		}
	}()
	return a, nil
}

// Addr is the bound listen address (resolves ":0" to the real port).
func (a *adminServer) Addr() string { return a.ln.Addr().String() }

func (a *adminServer) Close() error { return a.srv.Close() }

func (a *adminServer) handleMetrics(w http.ResponseWriter, req *http.Request) {
	merged, scans, started, completed := a.reg.collect()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e := metrics.NewPromEncoder(w)
	e.WriteSnapshot(merged)
	e.Family("crisprscan_scans_started_total", "Scans begun by this process.", "counter")
	e.Sample("crisprscan_scans_started_total", nil, float64(started))
	e.Family("crisprscan_scans_completed_total", "Scans completed by this process.", "counter")
	e.Sample("crisprscan_scans_completed_total", nil, float64(completed))
	e.Family("crisprscan_scans_inflight", "Scans currently running.", "gauge")
	e.Sample("crisprscan_scans_inflight", nil, float64(len(scans)))
	version, revision := buildVersion()
	e.Family("crisprscan_build_info", "Build metadata; the value is always 1.", "gauge")
	e.Sample("crisprscan_build_info", []metrics.Label{
		{Name: "version", Value: version},
		{Name: "revision", Value: revision},
		{Name: "goversion", Value: runtime.Version()},
	}, 1)
	for _, st := range scans {
		e.WriteScanProgress(st.prog.Snapshot(), []metrics.Label{
			{Name: "scan", Value: strconv.FormatInt(st.ID, 10)},
			{Name: "engine", Value: st.Engine},
		})
	}
	if a.hooks.metrics != nil {
		a.hooks.metrics(e)
	}
	// Encoder errors here are client disconnects or a programming error
	// (duplicate family); neither should disturb the scan.
	_ = e.Err()
}

func (a *adminServer) handleHealthz(w http.ResponseWriter, req *http.Request) {
	_, scans, started, completed := a.reg.collect()
	version, revision := buildVersion()
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]any{
		"status":          "ok",
		"version":         version,
		"revision":        revision,
		"go":              runtime.Version(),
		"scans_live":      len(scans),
		"scans_started":   started,
		"scans_completed": completed,
	})
}

func (a *adminServer) handleReadyz(w http.ResponseWriter, req *http.Request) {
	if a.hooks.ready != nil {
		if ok, reason := a.hooks.ready(); !ok {
			http.Error(w, reason, http.StatusServiceUnavailable)
			return
		}
	} else {
		// One-shot scan mode: ready once the scan this process was
		// launched for has started.
		_, _, started, _ := a.reg.collect()
		if started == 0 {
			http.Error(w, "no scan started yet", http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// handleScans reports every in-flight scan with its live progress
// (fraction, throughput, ETA) as JSON.
func (a *adminServer) handleScans(w http.ResponseWriter, req *http.Request) {
	type debugScan struct {
		scanState
		Progress metrics.ProgressSnapshot `json:"progress"`
	}
	_, scans, started, completed := a.reg.collect()
	out := struct {
		Scans     []debugScan `json:"scans"`
		Started   int64       `json:"scans_started"`
		Completed int64       `json:"scans_completed"`
	}{Scans: make([]debugScan, 0, len(scans)), Started: started, Completed: completed}
	for _, st := range scans {
		out.Scans = append(out.Scans, debugScan{scanState: *st, Progress: st.prog.Snapshot()})
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(out)
}
