package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/cap-repro/crisprscan"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// httpGet fetches an admin URL; safe to call from any goroutine.
func httpGet(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body), nil
}

// findMetric extracts an unlabeled sample value from exposition text.
func findMetric(exposition, name string) (float64, error) {
	for _, line := range strings.Split(exposition, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return strconv.ParseFloat(rest, 64)
		}
	}
	return 0, fmt.Errorf("metric %s not found", name)
}

// debugScansDoc mirrors the /debug/scans response shape.
type debugScansDoc struct {
	Scans []struct {
		ID       int64                    `json:"id"`
		Engine   string                   `json:"engine"`
		Progress metrics.ProgressSnapshot `json:"progress"`
	} `json:"scans"`
	Started   int64 `json:"scans_started"`
	Completed int64 `json:"scans_completed"`
}

func fetchScans(base string) (debugScansDoc, error) {
	var doc debugScansDoc
	body, err := httpGet(base + "/debug/scans")
	if err != nil {
		return doc, err
	}
	return doc, json.Unmarshal([]byte(body), &doc)
}

// mustScans is the main-goroutine convenience wrapper.
func mustScans(t *testing.T, base string) debugScansDoc {
	t.Helper()
	doc, err := fetchScans(base)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func mustMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	exp, err := httpGet(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	v, err := findMetric(exp, name)
	if err != nil {
		t.Fatalf("%v in:\n%s", err, exp)
	}
	return v
}

// TestAdminScrapeDuringLiveScan drives a streaming scan against a real
// admin server and scrapes /metrics and /debug/scans concurrently,
// under -race. It asserts the monotonicity contract end to end: the
// bytes-scanned counter and the progress fraction never decrease
// between scrapes, the fraction reaches exactly 1.0 once the scan
// finishes, and completing the scan moves its metrics into the
// lifetime aggregator without double counting.
func TestAdminScrapeDuringLiveScan(t *testing.T) {
	genomePath, _, guides := cliFixture(t, 811)
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	reg := newScanRegistry()
	adm, err := newAdminServer("127.0.0.1:0", reg, logger, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer adm.Close()
	base := "http://" + adm.Addr()

	// Before any scan: /readyz must gate, /healthz must not.
	if resp, err := http.Get(base + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("/readyz before first scan = %d, want 503", resp.StatusCode)
		}
	}
	if _, err := httpGet(base + "/healthz"); err != nil {
		t.Fatal(err)
	}

	rec := crisprscan.NewMetricsRecorder()
	prog := crisprscan.NewProgressTracker()
	fi, err := os.Stat(genomePath)
	if err != nil {
		t.Fatal(err)
	}
	prog.SetTotalBytes(fi.Size())
	finishScan := reg.begin(&scanState{Engine: "hyperscan", K: 2, PAM: "NGG",
		Genome: genomePath, rec: rec, prog: prog})

	// Background scraper: hammers both endpoints for the duration of
	// the scan, checking monotonicity on every sample. Only t.Error
	// here — t.Fatal must not be called off the test goroutine.
	stop := make(chan struct{})
	done := make(chan struct{})
	var scrapes atomic.Int64
	go func() {
		defer close(done)
		var lastBytes, lastFraction float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			exp, err := httpGet(base + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			b, err := findMetric(exp, "crisprscan_bytes_scanned_total")
			if err != nil {
				t.Error(err)
				return
			}
			if b < lastBytes {
				t.Errorf("bytes_scanned decreased between scrapes: %v -> %v", lastBytes, b)
				return
			}
			lastBytes = b
			doc, err := fetchScans(base)
			if err != nil {
				t.Error(err)
				return
			}
			for _, s := range doc.Scans {
				if s.Progress.Fraction < lastFraction {
					t.Errorf("progress fraction decreased: %v -> %v", lastFraction, s.Progress.Fraction)
					return
				}
				lastFraction = s.Progress.Fraction
				if !s.Progress.Done && s.Progress.Fraction >= 1 {
					t.Errorf("fraction %v >= 1 before Done", s.Progress.Fraction)
					return
				}
			}
			scrapes.Add(1)
		}
	}()

	f, err := os.Open(genomePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	params := crisprscan.Params{MaxMismatches: 2, PAM: "NGG", Workers: 2, Metrics: rec, Progress: prog}
	st, err := crisprscan.SearchStreamContext(context.Background(), f, guides, params, nil,
		func(crisprscan.Site) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	// A small fixture can finish scanning before the scraper's first
	// full pass. The scan is still registered live, so wait for at
	// least one complete sample (or the scraper erroring out) before
	// stopping it.
waitSample:
	for scrapes.Load() == 0 {
		select {
		case <-done:
			break waitSample
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	<-done
	if scrapes.Load() == 0 {
		t.Fatal("scraper never completed a sample")
	}

	// The scan has finished but is still registered: /debug/scans must
	// show it pinned at exactly 1.0 and done.
	doc := mustScans(t, base)
	if len(doc.Scans) != 1 {
		t.Fatalf("live scans = %d, want 1", len(doc.Scans))
	}
	if p := doc.Scans[0].Progress; !p.Done || p.Fraction != 1 {
		t.Fatalf("finished scan progress = %+v, want done at fraction 1", p)
	}

	// Completing the scan moves it to the aggregator; totals must be
	// preserved exactly (no double counting, no loss).
	before := mustMetric(t, base, "crisprscan_bytes_scanned_total")
	finishScan()
	if got := mustMetric(t, base, "crisprscan_bytes_scanned_total"); got != before {
		t.Errorf("bytes_scanned changed across completion: %v -> %v", before, got)
	}
	if got := mustMetric(t, base, "crisprscan_scans_completed_total"); got != 1 {
		t.Errorf("scans_completed = %v, want 1", got)
	}
	if int64(before) != int64(st.BytesScanned) {
		t.Errorf("exposed bytes %v != stats bytes %d", before, st.BytesScanned)
	}
	doc = mustScans(t, base)
	if len(doc.Scans) != 0 || doc.Completed != 1 {
		t.Fatalf("after completion: %d live, %d completed; want 0, 1", len(doc.Scans), doc.Completed)
	}
	if _, err := httpGet(base + "/readyz"); err != nil {
		t.Fatalf("/readyz after first scan: %v", err)
	}
}

// TestRunServesAdminEndpoint exercises the full CLI wiring: run() with
// an -http address exposes exposition, health, and scan JSON; the scan
// folds into the aggregator on completion; and -http-linger keeps the
// endpoint scrapeable after the scan until the context is canceled.
func TestRunServesAdminEndpoint(t *testing.T) {
	genomePath, guidesPath, _ := cliFixture(t, 812)
	addrCh := make(chan string, 1)
	reg := newScanRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := &config{
		genomePath: genomePath, guidesPath: guidesPath, k: 2, pam: "NGG", workers: 2,
		stream: true, httpAddr: "127.0.0.1:0", httpLinger: time.Minute, reg: reg,
		log:     slog.New(slog.NewTextHandler(io.Discard, nil)),
		onAdmin: func(addr string) { addrCh <- addr },
	}
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, cfg) }()

	base := "http://" + <-addrCh
	if _, err := httpGet(base + "/healthz"); err != nil {
		t.Fatal(err)
	}
	// Poll until the scan registers complete: the linger window holds
	// the endpoint open, so this terminates without racing the scan.
	var doc debugScansDoc
	for doc.Completed != 1 {
		doc = mustScans(t, base)
	}
	exp, err := httpGet(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# HELP crisprscan_bytes_scanned_total",
		"# TYPE crisprscan_chunk_latency_seconds histogram",
		"crisprscan_scans_completed_total 1",
		"crisprscan_build_info{",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q:\n%s", want, exp)
		}
	}
	// Cutting the context ends the linger window promptly.
	cancel()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not return after cancel during linger")
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.completed != 1 || len(reg.live) != 0 {
		t.Fatalf("registry after run: completed=%d live=%d, want 1, 0", reg.completed, len(reg.live))
	}
	if agg := reg.agg.Snapshot(); agg.Counters.BytesScanned != 3*30000 {
		t.Errorf("aggregated bytes = %d, want %d", agg.Counters.BytesScanned, 3*30000)
	}
}

// TestRunRejectsBadAdminAddr pins fail-fast binding: a bad -http must
// abort before the scan starts.
func TestRunRejectsBadAdminAddr(t *testing.T) {
	genomePath, guidesPath, _ := cliFixture(t, 813)
	cfg := &config{genomePath: genomePath, guidesPath: guidesPath, k: 1, pam: "NGG",
		httpAddr: "256.0.0.1:bad",
		log:      slog.New(slog.NewTextHandler(io.Discard, nil))}
	if err := run(context.Background(), cfg); err == nil || !strings.Contains(err.Error(), "admin endpoint") {
		t.Fatalf("want admin bind error, got %v", err)
	}
}

// TestBuildVersion pins that version reporting never panics and always
// yields non-empty fields (test binaries carry no VCS stamp).
func TestBuildVersion(t *testing.T) {
	if v, rev := buildVersion(); v == "" || rev == "" {
		t.Fatalf("buildVersion = %q, %q", v, rev)
	}
}
