package main

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
)

// TestPprofAliasWarnsOnceAndAliases pins the -pprof compatibility
// contract: using the deprecated flag logs exactly one deprecation
// warning per process (pointing at -http), the alias fills httpAddr
// when -http is absent, and an explicit -http wins over the alias.
func TestPprofAliasWarnsOnceAndAliases(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))

	cfg := &config{pprofAddr: "localhost:6060"}
	applyPprofAlias(cfg, logger)
	if cfg.httpAddr != "localhost:6060" {
		t.Errorf("httpAddr = %q, want the -pprof value aliased in", cfg.httpAddr)
	}

	// Explicit -http wins; the alias must not clobber it.
	cfg2 := &config{pprofAddr: "localhost:6060", httpAddr: "localhost:7070"}
	applyPprofAlias(cfg2, logger)
	if cfg2.httpAddr != "localhost:7070" {
		t.Errorf("httpAddr = %q, want the explicit -http value kept", cfg2.httpAddr)
	}

	// No -pprof, no warning, no change.
	cfg3 := &config{httpAddr: "localhost:7070"}
	applyPprofAlias(cfg3, logger)
	if cfg3.httpAddr != "localhost:7070" {
		t.Errorf("httpAddr = %q, want untouched", cfg3.httpAddr)
	}

	out := buf.String()
	if n := strings.Count(out, "-pprof is deprecated"); n != 1 {
		t.Errorf("deprecation warning logged %d times, want exactly 1; log:\n%s", n, out)
	}
	if !strings.Contains(out, "use -http") {
		t.Errorf("warning does not point at -http; log:\n%s", out)
	}
	if !strings.Contains(out, "level=WARN") {
		t.Errorf("deprecation message not logged at WARN; log:\n%s", out)
	}
}
