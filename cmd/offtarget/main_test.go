package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "guides.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadGuidesFile(t *testing.T) {
	path := writeTemp(t, "# comment\nACGTACGT\n\ng1\tTTTTGGGG\nnamed CCCCAAAA\n")
	guides, err := loadGuides(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(guides) != 3 {
		t.Fatalf("got %d guides, want 3", len(guides))
	}
	if guides[0].Spacer != "ACGTACGT" || guides[0].Name != "g0" {
		t.Errorf("guide 0 = %+v", guides[0])
	}
	if guides[1].Name != "g1" || guides[1].Spacer != "TTTTGGGG" {
		t.Errorf("guide 1 = %+v", guides[1])
	}
	if guides[2].Name != "named" {
		t.Errorf("guide 2 = %+v", guides[2])
	}
}

func TestLoadGuidesLiteralAndCombined(t *testing.T) {
	guides, err := loadGuides("", "ACGT")
	if err != nil || len(guides) != 1 || guides[0].Spacer != "ACGT" {
		t.Fatalf("literal: %+v, %v", guides, err)
	}
	path := writeTemp(t, "TTTT\n")
	guides, err = loadGuides(path, "ACGT")
	if err != nil || len(guides) != 2 {
		t.Fatalf("combined: %+v, %v", guides, err)
	}
}

func TestLoadGuidesErrors(t *testing.T) {
	if _, err := loadGuides("", ""); err == nil {
		t.Error("no guides must error")
	}
	if _, err := loadGuides(filepath.Join(t.TempDir(), "missing"), ""); err == nil {
		t.Error("missing file must error")
	}
	bad := writeTemp(t, "a b c d\n")
	if _, err := loadGuides(bad, ""); err == nil {
		t.Error("malformed line must error")
	}
}
