package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan"
	"github.com/cap-repro/crisprscan/internal/seedindex"
)

// indexFixture builds a persistent index next to the CLI fixture.
func indexFixture(t *testing.T, genomePath string) string {
	t.Helper()
	g, err := crisprscan.LoadGenome(genomePath)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := crisprscan.BuildSeedIndex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "genome.csix")
	if err := ix.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunIndexMatchesFullScan: -index output must be byte-identical to
// the default full-scan output, with and without -genome alongside,
// and in streaming mode too.
func TestRunIndexMatchesFullScan(t *testing.T) {
	genomePath, guidesPath, _ := cliFixture(t, 811)
	idxPath := indexFixture(t, genomePath)
	dir := t.TempDir()

	outputs := map[string]*config{
		"full.tsv":         {genomePath: genomePath, guidesPath: guidesPath, k: 3, pam: "NGG", workers: 1},
		"indexed.tsv":      {genomePath: genomePath, indexPath: idxPath, guidesPath: guidesPath, k: 3, pam: "NGG", workers: 1},
		"indexonly.tsv":    {indexPath: idxPath, guidesPath: guidesPath, k: 3, pam: "NGG", workers: 1},
		"indexstream.tsv":  {genomePath: genomePath, indexPath: idxPath, guidesPath: guidesPath, k: 3, pam: "NGG", workers: 1, stream: true},
		"indexostream.tsv": {indexPath: idxPath, guidesPath: guidesPath, k: 3, pam: "NGG", workers: 1, stream: true},
	}
	results := map[string][]byte{}
	for name, cfg := range outputs {
		cfg.outPath = filepath.Join(dir, name)
		if err := run(context.Background(), cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		data, err := os.ReadFile(cfg.outPath)
		if err != nil {
			t.Fatal(err)
		}
		results[name] = data
	}
	want := results["full.tsv"]
	if len(want) == 0 || !bytes.Contains(want, []byte("\n")) {
		t.Fatal("degenerate fixture: full scan produced no output")
	}
	for name, got := range results {
		if !bytes.Equal(got, want) {
			t.Errorf("%s (%d bytes) differs from full-scan output (%d bytes)", name, len(got), len(want))
		}
	}
}

func TestRunIndexRejectsOtherEngines(t *testing.T) {
	genomePath, guidesPath, _ := cliFixture(t, 812)
	idxPath := indexFixture(t, genomePath)
	cfg := &config{genomePath: genomePath, indexPath: idxPath, guidesPath: guidesPath,
		k: 2, pam: "NGG", workers: 1, engineName: "cas-offinder"}
	err := run(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "seed-index engine") {
		t.Fatalf("want engine-conflict error, got %v", err)
	}
}

func TestRunIndexFailsClosedOnStaleReference(t *testing.T) {
	genomePath, guidesPath, _ := cliFixture(t, 813)
	idxPath := indexFixture(t, genomePath)
	// Same shape, different content: regenerate the FASTA with another
	// seed so names and lengths line up but the bases do not.
	otherGenome, _, _ := cliFixture(t, 814)
	cfg := &config{genomePath: otherGenome, indexPath: idxPath, guidesPath: guidesPath,
		k: 2, pam: "NGG", workers: 1, outPath: filepath.Join(t.TempDir(), "out.tsv")}
	err := run(context.Background(), cfg)
	if !errors.Is(err, seedindex.ErrStale) {
		t.Fatalf("stale reference error %v, want ErrStale", err)
	}

	// Streaming has no up-front validation pass; the engine's scan-time
	// content-hash guard must refuse instead.
	cfg.stream = true
	err = run(context.Background(), cfg)
	if !errors.Is(err, seedindex.ErrStale) {
		t.Fatalf("stale streaming error %v, want ErrStale", err)
	}
}

func TestRunIndexCheckpointNeedsGenome(t *testing.T) {
	genomePath, guidesPath, _ := cliFixture(t, 815)
	idxPath := indexFixture(t, genomePath)
	cfg := &config{indexPath: idxPath, guidesPath: guidesPath, k: 2, pam: "NGG", workers: 1,
		stream: true, ckptPath: filepath.Join(t.TempDir(), "scan.ckpt")}
	err := run(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "requires -genome") {
		t.Fatalf("want checkpoint/genome coupling error, got %v", err)
	}
}
