package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/cap-repro/crisprscan"
	"github.com/cap-repro/crisprscan/internal/fasta"
)

// cliFixture synthesizes a genome and guide set and writes both in the
// on-disk formats the CLI consumes.
func cliFixture(t *testing.T, seed int64) (genomePath, guidesPath string, guides []crisprscan.Guide) {
	t.Helper()
	dir := t.TempDir()
	g := crisprscan.SynthesizeGenome(crisprscan.SynthConfig{Seed: seed, ChromLen: 30000, NumChroms: 3})
	guides, err := crisprscan.SampleGuides(g, 2, 20, "NGG", seed+1)
	if err != nil {
		t.Fatal(err)
	}

	genomePath = filepath.Join(dir, "genome.fa")
	gf, err := os.Create(genomePath)
	if err != nil {
		t.Fatal(err)
	}
	fw := fasta.NewWriter(gf, 60)
	for _, rec := range g.ToFasta() {
		if err := fw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := gf.Close(); err != nil {
		t.Fatal(err)
	}

	var gl strings.Builder
	for _, gu := range guides {
		fmt.Fprintf(&gl, "%s %s\n", gu.Name, gu.Spacer)
	}
	guidesPath = filepath.Join(dir, "guides.txt")
	if err := os.WriteFile(guidesPath, []byte(gl.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return genomePath, guidesPath, guides
}

func TestRunWritesCompleteOutputFile(t *testing.T) {
	genomePath, guidesPath, _ := cliFixture(t, 801)
	outPath := filepath.Join(t.TempDir(), "sites.tsv")
	cfg := &config{genomePath: genomePath, guidesPath: guidesPath, k: 2, pam: "NGG", workers: 1, outPath: outPath}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("guide\t")) {
		t.Fatalf("output missing TSV header: %q", data[:min(len(data), 40)])
	}
	if len(data) > 0 && data[len(data)-1] != '\n' {
		t.Fatal("output not fully flushed: missing trailing newline")
	}
}

// TestRunStreamMatchesInMemory pins satellite behavior: streamed rows
// are written incrementally from yield, yet the file must be
// byte-identical to the buffered in-memory mode.
func TestRunStreamMatchesInMemory(t *testing.T) {
	genomePath, guidesPath, _ := cliFixture(t, 802)
	dir := t.TempDir()
	memOut := filepath.Join(dir, "mem.tsv")
	streamOut := filepath.Join(dir, "stream.tsv")

	memCfg := &config{genomePath: genomePath, guidesPath: guidesPath, k: 2, pam: "NGG", workers: 1, outPath: memOut}
	if err := run(context.Background(), memCfg); err != nil {
		t.Fatal(err)
	}
	streamCfg := &config{genomePath: genomePath, guidesPath: guidesPath, k: 2, pam: "NGG", workers: 1, outPath: streamOut, stream: true}
	if err := run(context.Background(), streamCfg); err != nil {
		t.Fatal(err)
	}

	mem, err := os.ReadFile(memOut)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := os.ReadFile(streamOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mem, streamed) {
		t.Fatalf("stream output (%d bytes) differs from in-memory output (%d bytes)", len(streamed), len(mem))
	}
}

func TestRunCheckpointRequiresStream(t *testing.T) {
	genomePath, guidesPath, _ := cliFixture(t, 803)
	cfg := &config{genomePath: genomePath, guidesPath: guidesPath, k: 1, pam: "NGG",
		ckptPath: filepath.Join(t.TempDir(), "scan.ckpt")}
	err := run(context.Background(), cfg)
	if err == nil || !strings.Contains(err.Error(), "-checkpoint requires -stream") {
		t.Fatalf("want -checkpoint/-stream coupling error, got %v", err)
	}
}

func TestRunTimeoutAbortsButFlushes(t *testing.T) {
	genomePath, guidesPath, _ := cliFixture(t, 804)
	dir := t.TempDir()
	outPath := filepath.Join(dir, "sites.tsv")
	cfg := &config{genomePath: genomePath, guidesPath: guidesPath, k: 2, pam: "NGG", workers: 1,
		outPath: outPath, stream: true, ckptPath: filepath.Join(dir, "scan.ckpt"),
		timeout: time.Nanosecond}
	err := run(context.Background(), cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want wrapped context.DeadlineExceeded, got %v", err)
	}
	if !strings.Contains(err.Error(), "progress saved") {
		t.Fatalf("checkpointed abort must advertise resumability: %v", err)
	}
	// The deferred flush path must still deliver everything written
	// before the abort (here: the TSV header).
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("guide\t")) {
		t.Fatalf("aborted run truncated its output: %q", data)
	}
}

// TestRunCheckpointResumeByteIdentical interrupts a checkpointed
// streaming run after its first chromosome commits (standing in for a
// SIGINT'd process) and resumes it through the CLI path, asserting the
// final output file is byte-identical to an uninterrupted CLI run.
func TestRunCheckpointResumeByteIdentical(t *testing.T) {
	genomePath, guidesPath, guides := cliFixture(t, 805)
	dir := t.TempDir()
	params := crisprscan.Params{MaxMismatches: 2, PAM: "NGG"}

	fullOut := filepath.Join(dir, "full.tsv")
	fullCfg := &config{genomePath: genomePath, guidesPath: guidesPath, k: 2, pam: "NGG", workers: 1,
		outPath: fullOut, stream: true, ckptPath: filepath.Join(dir, "full.ckpt")}
	if err := run(context.Background(), fullCfg); err != nil {
		t.Fatal(err)
	}

	// Interrupted first attempt: same journal/output files the resumed
	// CLI run will pick up, canceled right after chromosome 1 commits.
	ckpt := filepath.Join(dir, "resume.ckpt")
	partialOut := filepath.Join(dir, "resume.tsv")
	pf, err := os.Create(partialOut)
	if err != nil {
		t.Fatal(err)
	}
	gf, err := os.Open(genomePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := crisprscan.WriteSitesTSVHeader(pf); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = crisprscan.SearchStreamCheckpoint(ctx, gf, guides, params, ckpt,
		func() error { cancel(); return nil },
		func(s crisprscan.Site) error { return crisprscan.WriteSiteTSV(pf, s) })
	gf.Close()
	if cerr := pf.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("setup interruption failed: %v", err)
	}

	// Resume with the same arguments through the CLI entry point.
	resumeCfg := &config{genomePath: genomePath, guidesPath: guidesPath, k: 2, pam: "NGG", workers: 1,
		outPath: partialOut, stream: true, ckptPath: ckpt}
	if err := run(context.Background(), resumeCfg); err != nil {
		t.Fatal(err)
	}

	full, err := os.ReadFile(fullOut)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(partialOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(full, resumed) {
		t.Fatalf("resumed output (%d bytes) is not byte-identical to the uninterrupted run (%d bytes)",
			len(resumed), len(full))
	}

	// Resuming with a different mismatch budget must be rejected.
	badCfg := &config{genomePath: genomePath, guidesPath: guidesPath, k: 3, pam: "NGG", workers: 1,
		outPath: filepath.Join(dir, "bad.tsv"), stream: true, ckptPath: ckpt}
	if err := run(context.Background(), badCfg); err == nil || !strings.Contains(err.Error(), "different parameters") {
		t.Fatalf("changed -k must be rejected on resume, got %v", err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
