package main

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/cap-repro/crisprscan/internal/metrics"
	"github.com/cap-repro/crisprscan/internal/scanserve"
)

// parseTraceSample maps the -trace-sample flag onto the service's
// sampling knobs: "always", "errors", or "ratio:<p>" with p in [0, 1].
func parseTraceSample(v string) (mode string, ratio float64, err error) {
	switch {
	case v == "" || v == metrics.SampleAlways:
		return metrics.SampleAlways, 0, nil
	case v == metrics.SampleErrors:
		return metrics.SampleErrors, 0, nil
	case strings.HasPrefix(v, metrics.SampleRatio+":"):
		p, perr := strconv.ParseFloat(strings.TrimPrefix(v, metrics.SampleRatio+":"), 64)
		if perr != nil || p < 0 || p > 1 {
			return "", 0, fmt.Errorf("bad -trace-sample ratio %q (want a fraction in [0, 1])", v)
		}
		return metrics.SampleRatio, p, nil
	default:
		return "", 0, fmt.Errorf("bad -trace-sample %q (want always, errors, or ratio:<p>)", v)
	}
}

// runServe runs the long-lived multi-tenant scan service: the job API
// and the admin endpoint share one listener, jobs and their outputs
// live durably under -serve-dir, and shutdown is graceful — SIGTERM
// stops admission (/readyz flips to 503 so load balancers drain), gives
// in-flight jobs -serve-drain to finish, checkpoints whatever remains,
// and exits 0. A job interrupted by a crash instead of a drain is
// re-queued on the next start and resumes from its checkpoint journal
// to byte-identical output.
func runServe(ctx context.Context, cfg *config) error {
	logger := cfg.logger()
	if cfg.httpAddr == "" {
		return fmt.Errorf("-serve requires -http (the job API and admin endpoint share the address)")
	}
	if cfg.serveDir == "" {
		return fmt.Errorf("-serve requires -serve-dir (durable job state)")
	}
	if cfg.reg == nil {
		cfg.reg = newScanRegistry()
	}
	traceMode, traceRatio, err := parseTraceSample(cfg.traceSample)
	if err != nil {
		return err
	}
	// In serve mode -trace names the per-job Chrome trace artifact each
	// finished job leaves in its spool directory (one file per job, not
	// one shared timeline), so only the base name is meaningful.
	traceFile := ""
	if cfg.tracePath != "" {
		traceFile = filepath.Base(cfg.tracePath)
	}
	svc, err := scanserve.New(scanserve.Config{
		Dir:             cfg.serveDir,
		DefaultGenome:   cfg.genomePath,
		GenomeDir:       cfg.serveGenomeDir,
		Workers:         cfg.serveWorkers,
		MaxQueue:        cfg.serveQueue,
		QuotaRate:       cfg.serveQuotaRate,
		QuotaBurst:      cfg.serveQuotaBurst,
		MaxRetries:      cfg.serveRetries,
		AttemptTimeout:  cfg.timeout,
		Seed:            metrics.Now(),
		Log:             logger,
		TraceMode:       traceMode,
		TraceRatio:      traceRatio,
		TraceFile:       traceFile,
		MaxTenantLabels: cfg.serveTenantLabels,
		// Every job attempt registers with the scan registry, so
		// /metrics and /debug/scans show service jobs exactly like
		// one-shot scans (live progress while running, folded into the
		// lifetime aggregator when finished).
		OnScanStart: func(job scanserve.Job, rec *metrics.Recorder, prog *metrics.Progress) func() {
			engine := job.Spec.Engine
			if engine == "" {
				engine = cfg.engineName
			}
			return cfg.reg.begin(&scanState{
				Engine: engine, K: job.Spec.K, PAM: job.Spec.PAM,
				Genome: job.ResolvedGenome, rec: rec, prog: prog,
			})
		},
	})
	if err != nil {
		return err
	}
	svc.Start()
	adm, err := newAdminServer(cfg.httpAddr, cfg.reg, logger, &adminHooks{
		ready: func() (bool, string) {
			// A daemon is ready when it is initialized and admitting
			// jobs — not when it has happened to run one already.
			if svc.Accepting() {
				return true, ""
			}
			return false, "scan service is not accepting jobs (draining)"
		},
		metrics: svc.WriteMetrics,
		mount: map[string]http.Handler{
			"/v1/":          svc.Handler(),
			"/debug/trace/": svc.TraceHandler(),
		},
	})
	if err != nil {
		return fmt.Errorf("admin endpoint: %w", err)
	}
	defer adm.Close()
	logger.Info("scan service listening",
		"addr", adm.Addr(), "dir", cfg.serveDir, "workers", cfg.serveWorkers,
		"default_genome", cfg.genomePath, "genome_dir", cfg.serveGenomeDir)
	if cfg.onAdmin != nil {
		cfg.onAdmin(adm.Addr())
	}

	<-ctx.Done()
	logger.Info("shutdown signal received; draining", "window", cfg.serveDrain)
	requeued := svc.Drain(cfg.serveDrain)
	logger.Info("scan service stopped", "requeued_for_resume", requeued)
	return nil
}
