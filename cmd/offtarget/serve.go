package main

import (
	"context"
	"fmt"
	"net/http"

	"github.com/cap-repro/crisprscan/internal/metrics"
	"github.com/cap-repro/crisprscan/internal/scanserve"
)

// runServe runs the long-lived multi-tenant scan service: the job API
// and the admin endpoint share one listener, jobs and their outputs
// live durably under -serve-dir, and shutdown is graceful — SIGTERM
// stops admission (/readyz flips to 503 so load balancers drain), gives
// in-flight jobs -serve-drain to finish, checkpoints whatever remains,
// and exits 0. A job interrupted by a crash instead of a drain is
// re-queued on the next start and resumes from its checkpoint journal
// to byte-identical output.
func runServe(ctx context.Context, cfg *config) error {
	logger := cfg.logger()
	if cfg.httpAddr == "" {
		return fmt.Errorf("-serve requires -http (the job API and admin endpoint share the address)")
	}
	if cfg.serveDir == "" {
		return fmt.Errorf("-serve requires -serve-dir (durable job state)")
	}
	if cfg.reg == nil {
		cfg.reg = newScanRegistry()
	}
	svc, err := scanserve.New(scanserve.Config{
		Dir:            cfg.serveDir,
		DefaultGenome:  cfg.genomePath,
		GenomeDir:      cfg.serveGenomeDir,
		Workers:        cfg.serveWorkers,
		MaxQueue:       cfg.serveQueue,
		QuotaRate:      cfg.serveQuotaRate,
		QuotaBurst:     cfg.serveQuotaBurst,
		MaxRetries:     cfg.serveRetries,
		AttemptTimeout: cfg.timeout,
		Seed:           metrics.Now(),
		Log:            logger,
		// Every job attempt registers with the scan registry, so
		// /metrics and /debug/scans show service jobs exactly like
		// one-shot scans (live progress while running, folded into the
		// lifetime aggregator when finished).
		OnScanStart: func(job scanserve.Job, rec *metrics.Recorder, prog *metrics.Progress) func() {
			engine := job.Spec.Engine
			if engine == "" {
				engine = cfg.engineName
			}
			return cfg.reg.begin(&scanState{
				Engine: engine, K: job.Spec.K, PAM: job.Spec.PAM,
				Genome: job.ResolvedGenome, rec: rec, prog: prog,
			})
		},
	})
	if err != nil {
		return err
	}
	svc.Start()
	adm, err := newAdminServer(cfg.httpAddr, cfg.reg, logger, &adminHooks{
		ready: func() (bool, string) {
			// A daemon is ready when it is initialized and admitting
			// jobs — not when it has happened to run one already.
			if svc.Accepting() {
				return true, ""
			}
			return false, "scan service is not accepting jobs (draining)"
		},
		metrics: svc.WriteMetrics,
		mount:   map[string]http.Handler{"/v1/": svc.Handler()},
	})
	if err != nil {
		return fmt.Errorf("admin endpoint: %w", err)
	}
	defer adm.Close()
	logger.Info("scan service listening",
		"addr", adm.Addr(), "dir", cfg.serveDir, "workers", cfg.serveWorkers,
		"default_genome", cfg.genomePath, "genome_dir", cfg.serveGenomeDir)
	if cfg.onAdmin != nil {
		cfg.onAdmin(adm.Addr())
	}

	<-ctx.Done()
	logger.Info("shutdown signal received; draining", "window", cfg.serveDrain)
	requeued := svc.Drain(cfg.serveDrain)
	logger.Info("scan service stopped", "requeued_for_resume", requeued)
	return nil
}
