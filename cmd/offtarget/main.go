// Command offtarget is the end-user search tool: given a FASTA genome
// and a guide list, it reports every potential off-target site within
// the mismatch (and optional bulge) budget, on a selectable execution
// engine.
//
// Usage:
//
//	offtarget -genome genome.fa -guides guides.txt -k 3
//	offtarget -genome genome.fa -guide GGGTGGGGGGAGTTTGCTCC -k 4 -pam NRG
//	offtarget -genome genome.fa -guides guides.txt -k 2 -bulge 1
//	offtarget -genome genome.fa -guides guides.txt -engine ap -stats
//
// The guides file holds one spacer per line, optionally preceded by a
// name and whitespace; '#' starts a comment.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/cap-repro/crisprscan"
	"github.com/cap-repro/crisprscan/internal/report"
)

func main() {
	var (
		genomePath = flag.String("genome", "", "reference genome FASTA (required)")
		guidesPath = flag.String("guides", "", "guide list file (one spacer per line)")
		guideSeq   = flag.String("guide", "", "single guide spacer (alternative to -guides)")
		k          = flag.Int("k", 3, "maximum spacer mismatches")
		bulge      = flag.Int("bulge", 0, "maximum bulges (enables edit-distance search)")
		pam        = flag.String("pam", "NGG", "PAM pattern (IUPAC)")
		altPAM     = flag.String("alt-pam", "", "comma-separated additional PAMs (e.g. NAG)")
		engineName = flag.String("engine", string(crisprscan.EngineHyperscan), "execution engine")
		plusOnly   = flag.Bool("plus-only", false, "search the plus strand only")
		workers    = flag.Int("workers", 1, "data-parallel width for CPU engines")
		stats      = flag.Bool("stats", false, "print execution statistics to stderr")
		stream     = flag.Bool("stream", false, "stream the genome chromosome-by-chromosome (constant memory)")
		bed        = flag.Bool("bed", false, "emit BED6 instead of TSV")
		summary    = flag.Bool("summary", false, "print a per-guide specificity summary to stderr")
		region     = flag.String("region", "", "restrict to 'chrom' or 'chrom:start-end' (0-based half-open)")
		outPath    = flag.String("o", "", "output TSV path (default stdout)")
	)
	flag.Parse()

	if *genomePath == "" {
		fail("missing -genome")
	}
	guides, err := loadGuides(*guidesPath, *guideSeq)
	if err != nil {
		fail("%v", err)
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		out = f
	}
	w := bufio.NewWriter(out)
	defer w.Flush()

	var alts []string
	if *altPAM != "" {
		alts = strings.Split(*altPAM, ",")
	}
	params := crisprscan.Params{
		MaxMismatches: *k, PAM: *pam, AltPAMs: alts, Region: *region, PlusStrandOnly: *plusOnly,
		Engine: crisprscan.Engine(*engineName), Workers: *workers,
	}

	if *stream {
		if *bulge > 0 {
			fail("-stream does not support -bulge")
		}
		f, err := os.Open(*genomePath)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		count := 0
		var sites []crisprscan.Site
		st, err := crisprscan.SearchStream(f, guides, params, func(s crisprscan.Site) error {
			count++
			sites = append(sites, s)
			return nil
		})
		if err != nil {
			fail("%v", err)
		}
		if err := writeSites(w, sites, *bed); err != nil {
			fail("%v", err)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "offtarget: engine=%s sites=%d events=%d elapsed=%.3fs (streamed)\n",
				st.Engine, count, st.Events, st.ElapsedSec)
		}
		return
	}

	g, err := crisprscan.LoadGenome(*genomePath)
	if err != nil {
		fail("%v", err)
	}

	if *bulge > 0 {
		sites, err := crisprscan.SearchBulge(g, guides, crisprscan.BulgeParams{
			MaxMismatches: *k, MaxBulge: *bulge, PAM: *pam, PlusStrandOnly: *plusOnly,
		})
		if err != nil {
			fail("%v", err)
		}
		fmt.Fprintln(w, "guide\tchrom\tpos\tlen\tstrand\tmismatches\tbulges\tsite")
		for _, s := range sites {
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%c\t%d\t%d\t%s\n",
				s.Guide, s.Chrom, s.Pos, s.Len, s.Strand, s.Mismatches, s.Bulges, s.SiteSeq)
		}
		if *stats {
			fmt.Fprintf(os.Stderr, "offtarget: %d bulge-tolerant sites\n", len(sites))
		}
		return
	}

	res, err := crisprscan.Search(g, guides, params)
	if err != nil {
		fail("%v", err)
	}
	if err := writeSites(w, res.Sites, *bed); err != nil {
		fail("%v", err)
	}
	if *summary {
		if err := report.WriteSummary(os.Stderr, report.Summarize(res.Sites, len(guides)), *k); err != nil {
			fail("%v", err)
		}
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "offtarget: engine=%s sites=%d events=%d elapsed=%.3fs\n",
			res.Stats.Engine, len(res.Sites), res.Stats.Events, res.Stats.ElapsedSec)
		if res.Stats.Modeled != nil {
			fmt.Fprintf(os.Stderr, "offtarget: modeled device time: %s\n", res.Stats.Modeled)
		}
		if res.Stats.Resources != nil {
			r := res.Stats.Resources
			fmt.Fprintf(os.Stderr, "offtarget: device resources: states=%d passes=%d util=%.1f%%\n",
				r.States, r.Passes, r.Utilization()*100)
		}
	}
}

// loadGuides reads guides from a file, a literal flag, or both.
func loadGuides(path, literal string) ([]crisprscan.Guide, error) {
	var guides []crisprscan.Guide
	if literal != "" {
		guides = append(guides, crisprscan.Guide{Name: "guide", Spacer: literal})
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			fields := strings.Fields(line)
			switch len(fields) {
			case 1:
				guides = append(guides, crisprscan.Guide{Name: fmt.Sprintf("g%d", len(guides)), Spacer: fields[0]})
			case 2:
				guides = append(guides, crisprscan.Guide{Name: fields[0], Spacer: fields[1]})
			default:
				return nil, fmt.Errorf("%s:%d: expected 'spacer' or 'name spacer'", path, lineNo)
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	if len(guides) == 0 {
		return nil, fmt.Errorf("no guides given (use -guides or -guide)")
	}
	return guides, nil
}

// writeSites emits sites in TSV or BED form.
func writeSites(w *bufio.Writer, sites []crisprscan.Site, bed bool) error {
	if bed {
		return crisprscan.WriteSitesBED(w, sites)
	}
	return crisprscan.WriteSitesTSV(w, sites)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "offtarget: "+format+"\n", args...)
	os.Exit(1)
}
