// Command offtarget is the end-user search tool: given a FASTA genome
// and a guide list, it reports every potential off-target site within
// the mismatch (and optional bulge) budget, on a selectable execution
// engine.
//
// Usage:
//
//	offtarget -genome genome.fa -guides guides.txt -k 3
//	offtarget -genome genome.fa -guide GGGTGGGGGGAGTTTGCTCC -k 4 -pam NRG
//	offtarget -genome genome.fa -guides guides.txt -k 2 -bulge 1
//	offtarget -genome genome.fa -guides guides.txt -engine ap -stats
//	offtarget -genome hg.fa -guides g.txt -stream -checkpoint scan.ckpt -o sites.tsv
//	offtarget -genome genome.fa -guides guides.txt -trace scan.json -pprof localhost:6060
//
// The guides file holds one spacer per line, optionally preceded by a
// name and whitespace; '#' starts a comment.
//
// Robustness: -timeout bounds the whole search; SIGINT/SIGTERM trigger
// a graceful shutdown (complete output is flushed, the checkpoint
// journal stays valid, exit status is nonzero). With -stream
// -checkpoint, an interrupted run resumed with identical arguments
// appends exactly the missing chromosomes, so the final output equals
// an uninterrupted run's byte for byte.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof serves the standard profiling endpoints
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/cap-repro/crisprscan"
	"github.com/cap-repro/crisprscan/internal/checkpoint"
	"github.com/cap-repro/crisprscan/internal/report"
)

// config carries every flag so run stays testable without a flag.Parse.
type config struct {
	genomePath string
	guidesPath string
	guideSeq   string
	k          int
	bulge      int
	pam        string
	altPAM     string
	engineName string
	plusOnly   bool
	workers    int
	stats      bool
	stream     bool
	bed        bool
	summary    bool
	region     string
	outPath    string
	ckptPath   string
	timeout    time.Duration
	tracePath  string
	pprofAddr  string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.genomePath, "genome", "", "reference genome FASTA (required)")
	flag.StringVar(&cfg.guidesPath, "guides", "", "guide list file (one spacer per line)")
	flag.StringVar(&cfg.guideSeq, "guide", "", "single guide spacer (alternative to -guides)")
	flag.IntVar(&cfg.k, "k", 3, "maximum spacer mismatches")
	flag.IntVar(&cfg.bulge, "bulge", 0, "maximum bulges (enables edit-distance search)")
	flag.StringVar(&cfg.pam, "pam", "NGG", "PAM pattern (IUPAC)")
	flag.StringVar(&cfg.altPAM, "alt-pam", "", "comma-separated additional PAMs (e.g. NAG)")
	flag.StringVar(&cfg.engineName, "engine", string(crisprscan.EngineHyperscan), "execution engine")
	flag.BoolVar(&cfg.plusOnly, "plus-only", false, "search the plus strand only")
	flag.IntVar(&cfg.workers, "workers", 1, "data-parallel width for CPU engines")
	flag.BoolVar(&cfg.stats, "stats", false, "print execution statistics to stderr")
	flag.BoolVar(&cfg.stream, "stream", false, "stream the genome chromosome-by-chromosome (constant memory)")
	flag.BoolVar(&cfg.bed, "bed", false, "emit BED6 instead of TSV")
	flag.BoolVar(&cfg.summary, "summary", false, "print a per-guide specificity summary to stderr")
	flag.StringVar(&cfg.region, "region", "", "restrict to 'chrom' or 'chrom:start-end' (0-based half-open)")
	flag.StringVar(&cfg.outPath, "o", "", "output TSV path (default stdout)")
	flag.StringVar(&cfg.ckptPath, "checkpoint", "", "checkpoint journal path (with -stream: resume by skipping completed chromosomes)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort the search after this duration (e.g. 30m; 0 = no limit)")
	flag.StringVar(&cfg.tracePath, "trace", "", "write a Chrome trace-event timeline of the scan to this file (view in chrome://tracing or Perfetto)")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the duration of the run")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "offtarget: %v\n", err)
		os.Exit(1)
	}
}

// run executes one search. All output paths funnel through the
// deferred flush/close below, so an error return (including a
// cancellation) still delivers every row produced so far and still
// reports flush/close failures instead of silently truncating -o.
func run(ctx context.Context, cfg *config) (err error) {
	if cfg.genomePath == "" {
		return fmt.Errorf("missing -genome")
	}
	guides, err := loadGuides(cfg.guidesPath, cfg.guideSeq)
	if err != nil {
		return err
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	// Resume state must be probed before the output file is opened:
	// a resumed run appends to its previous output instead of
	// truncating it (and does not repeat the TSV header).
	resuming := false
	if cfg.ckptPath != "" {
		if !cfg.stream {
			return fmt.Errorf("-checkpoint requires -stream")
		}
		doneChroms, doneSites, err := checkpoint.Probe(cfg.ckptPath)
		if err != nil {
			return err
		}
		resuming = doneChroms > 0
		if resuming && cfg.stats {
			fmt.Fprintf(os.Stderr, "offtarget: resuming: %d chromosomes (%d sites) already journaled in %s\n",
				doneChroms, doneSites, cfg.ckptPath)
		}
	}

	out := io.Writer(os.Stdout)
	var outFile *os.File
	if cfg.outPath != "" {
		mode := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
		if resuming {
			mode = os.O_WRONLY | os.O_CREATE | os.O_APPEND
		}
		outFile, err = os.OpenFile(cfg.outPath, mode, 0o644)
		if err != nil {
			return err
		}
		out = outFile
	}
	w := bufio.NewWriter(out)
	defer func() {
		// Flush before close, and surface either failure: os.Exit in
		// the old fail() helper used to skip both, truncating -o.
		if ferr := w.Flush(); ferr != nil && err == nil {
			err = fmt.Errorf("flushing output: %w", ferr)
		}
		if outFile != nil {
			if cerr := outFile.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing %s: %w", cfg.outPath, cerr)
			}
		}
	}()

	if cfg.pprofAddr != "" {
		// The default mux already carries the /debug/pprof handlers via
		// the net/http/pprof import; failures are reported, not fatal —
		// profiling must never take down a search.
		go func() {
			if serr := http.ListenAndServe(cfg.pprofAddr, nil); serr != nil {
				fmt.Fprintf(os.Stderr, "offtarget: pprof server: %v\n", serr)
			}
		}()
		if cfg.stats {
			fmt.Fprintf(os.Stderr, "offtarget: pprof at http://%s/debug/pprof/\n", cfg.pprofAddr)
		}
	}

	var alts []string
	if cfg.altPAM != "" {
		alts = strings.Split(cfg.altPAM, ",")
	}
	params := crisprscan.Params{
		MaxMismatches: cfg.k, PAM: cfg.pam, AltPAMs: alts, Region: cfg.region, PlusStrandOnly: cfg.plusOnly,
		Engine: crisprscan.Engine(cfg.engineName), Workers: cfg.workers,
	}

	if cfg.tracePath != "" {
		tf, terr := os.Create(cfg.tracePath)
		if terr != nil {
			return terr
		}
		tracer := crisprscan.NewChromeTracer(tf)
		rec := crisprscan.NewMetricsRecorder()
		rec.SetTracer(tracer)
		params.Metrics = rec
		defer func() {
			if cerr := tracer.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("finalizing trace: %w", cerr)
			}
			if cerr := tf.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing %s: %w", cfg.tracePath, cerr)
			}
		}()
	}

	if cfg.stream {
		return runStream(ctx, cfg, guides, params, w, resuming)
	}

	g, err := crisprscan.LoadGenome(cfg.genomePath)
	if err != nil {
		return err
	}

	if cfg.bulge > 0 {
		sites, err := crisprscan.SearchBulge(g, guides, crisprscan.BulgeParams{
			MaxMismatches: cfg.k, MaxBulge: cfg.bulge, PAM: cfg.pam, PlusStrandOnly: cfg.plusOnly,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "guide\tchrom\tpos\tlen\tstrand\tmismatches\tbulges\tsite")
		for _, s := range sites {
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%c\t%d\t%d\t%s\n",
				s.Guide, s.Chrom, s.Pos, s.Len, s.Strand, s.Mismatches, s.Bulges, s.SiteSeq)
		}
		if cfg.stats {
			fmt.Fprintf(os.Stderr, "offtarget: %d bulge-tolerant sites\n", len(sites))
		}
		return nil
	}

	res, err := crisprscan.SearchContext(ctx, g, guides, params)
	if err != nil {
		return err
	}
	if err := writeSites(w, res.Sites, cfg.bed); err != nil {
		return err
	}
	if cfg.summary {
		if err := report.WriteSummary(os.Stderr, report.Summarize(res.Sites, len(guides)), cfg.k); err != nil {
			return err
		}
	}
	if cfg.stats {
		fmt.Fprintf(os.Stderr, "offtarget: engine=%s sites=%d events=%d elapsed=%.3fs\n",
			res.Stats.Engine, len(res.Sites), res.Stats.Events, res.Stats.ElapsedSec)
		if res.Stats.Metrics != nil {
			fmt.Fprintf(os.Stderr, "offtarget: metrics: %s\n", res.Stats.Metrics)
		}
		if res.Stats.Modeled != nil {
			fmt.Fprintf(os.Stderr, "offtarget: modeled device time: %s\n", res.Stats.Modeled)
		}
		if res.Stats.Resources != nil {
			r := res.Stats.Resources
			fmt.Fprintf(os.Stderr, "offtarget: device resources: states=%d passes=%d util=%.1f%%\n",
				r.States, r.Passes, r.Utilization()*100)
		}
	}
	return nil
}

// runStream executes the constant-memory streaming mode: rows are
// written from the yield callback as each chromosome completes (never
// buffered genome-wide), and with -checkpoint each chromosome is
// journaled after its rows reach the output writer.
func runStream(ctx context.Context, cfg *config, guides []crisprscan.Guide, params crisprscan.Params, w *bufio.Writer, resuming bool) error {
	if cfg.bulge > 0 {
		return fmt.Errorf("-stream does not support -bulge")
	}
	if cfg.region != "" {
		return fmt.Errorf("-stream does not support -region")
	}
	f, err := os.Open(cfg.genomePath)
	if err != nil {
		return err
	}
	defer f.Close()

	if !cfg.bed && !resuming {
		if err := crisprscan.WriteSitesTSVHeader(w); err != nil {
			return err
		}
	}
	count := 0
	emit := func(s crisprscan.Site) error {
		count++
		if cfg.bed {
			return crisprscan.WriteSiteBED(w, s)
		}
		return crisprscan.WriteSiteTSV(w, s)
	}

	var st *crisprscan.Stats
	if cfg.ckptPath != "" {
		st, err = crisprscan.SearchStreamCheckpoint(ctx, f, guides, params, cfg.ckptPath, w.Flush, emit)
	} else {
		st, err = crisprscan.SearchStreamContext(ctx, f, guides, params, nil, emit)
	}
	if cfg.stats && st != nil {
		fmt.Fprintf(os.Stderr, "offtarget: engine=%s sites=%d events=%d elapsed=%.3fs (streamed)\n",
			st.Engine, count, st.Events, st.ElapsedSec)
		if st.Metrics != nil {
			fmt.Fprintf(os.Stderr, "offtarget: metrics: %s\n", st.Metrics)
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cfg.ckptPath != "" {
				return fmt.Errorf("%w (progress saved; rerun the same command to resume from %s)", err, cfg.ckptPath)
			}
		}
		return err
	}
	return nil
}

// loadGuides reads guides from a file, a literal flag, or both.
func loadGuides(path, literal string) ([]crisprscan.Guide, error) {
	var guides []crisprscan.Guide
	if literal != "" {
		guides = append(guides, crisprscan.Guide{Name: "guide", Spacer: literal})
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			fields := strings.Fields(line)
			switch len(fields) {
			case 1:
				guides = append(guides, crisprscan.Guide{Name: fmt.Sprintf("g%d", len(guides)), Spacer: fields[0]})
			case 2:
				guides = append(guides, crisprscan.Guide{Name: fields[0], Spacer: fields[1]})
			default:
				return nil, fmt.Errorf("%s:%d: expected 'spacer' or 'name spacer'", path, lineNo)
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	if len(guides) == 0 {
		return nil, fmt.Errorf("no guides given (use -guides or -guide)")
	}
	return guides, nil
}

// writeSites emits sites in TSV or BED form.
func writeSites(w *bufio.Writer, sites []crisprscan.Site, bed bool) error {
	if bed {
		return crisprscan.WriteSitesBED(w, sites)
	}
	return crisprscan.WriteSitesTSV(w, sites)
}
