// Command offtarget is the end-user search tool: given a FASTA genome
// and a guide list, it reports every potential off-target site within
// the mismatch (and optional bulge) budget, on a selectable execution
// engine.
//
// Usage:
//
//	offtarget -genome genome.fa -guides guides.txt -k 3
//	offtarget -genome genome.fa -guide GGGTGGGGGGAGTTTGCTCC -k 4 -pam NRG
//	offtarget -genome genome.fa -guides guides.txt -k 2 -bulge 1
//	offtarget -genome genome.fa -guides guides.txt -engine ap -stats
//	offtarget -genome hg.fa -guides g.txt -stream -checkpoint scan.ckpt -o sites.tsv
//	offtarget -genome genome.fa -guides guides.txt -trace scan.json -http localhost:6060
//	offtarget -serve -serve-dir jobs/ -genome genome.fa -http localhost:6060
//	offtarget -version
//
// The guides file holds one spacer per line, optionally preceded by a
// name and whitespace; '#' starts a comment.
//
// Diagnostics go to stderr as structured logs (-log-format text|json,
// -log-level debug|info|warn|error). With -http, an admin endpoint
// serves /metrics (Prometheus text format), /healthz, /readyz,
// /debug/scans (JSON progress with throughput and ETA), and the
// standard /debug/pprof profiling handlers; -http-linger keeps it up
// after the scan finishes so a scraper can collect the final state.
//
// Robustness: -timeout bounds the whole search; SIGINT/SIGTERM trigger
// a graceful shutdown (complete output is flushed, the checkpoint
// journal stays valid, exit status is nonzero). With -stream
// -checkpoint, an interrupted run resumed with identical arguments
// appends exactly the missing chromosomes, so the final output equals
// an uninterrupted run's byte for byte.
//
// With -serve, offtarget runs as a long-lived multi-tenant scan
// service instead: jobs are submitted to POST /v1/jobs on the -http
// address, run on a bounded worker pool with per-tenant admission
// quotas, persist their state and checkpointed output under
// -serve-dir (a killed service resumes interrupted jobs on restart,
// byte-identically), and SIGTERM drains gracefully with exit 0.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	"github.com/cap-repro/crisprscan"
	"github.com/cap-repro/crisprscan/internal/checkpoint"
	"github.com/cap-repro/crisprscan/internal/report"
)

// config carries every flag so run stays testable without a flag.Parse.
type config struct {
	genomePath string
	indexPath  string
	guidesPath string
	guideSeq   string
	k          int
	bulge      int
	pam        string
	altPAM     string
	engineName string
	plusOnly   bool
	workers    int
	stats      bool
	stream     bool
	bed        bool
	summary    bool
	region     string
	outPath    string
	ckptPath   string
	timeout    time.Duration
	tracePath  string
	pprofAddr  string
	httpAddr   string
	httpLinger time.Duration
	logFormat  string
	logLevel   string

	serve             bool
	serveDir          string
	serveGenomeDir    string
	serveWorkers      int
	serveQueue        int
	serveQuotaRate    float64
	serveQuotaBurst   int
	serveRetries      int
	serveDrain        time.Duration
	traceSample       string
	serveTenantLabels int

	log     *slog.Logger      // defaults to slog.Default()
	onAdmin func(addr string) // test hook: observes the bound -http address
	reg     *scanRegistry     // test hook: shared registry; run creates one if nil
}

// pprofAliasOnce dedupes the -pprof deprecation warning: run is
// re-entrant (tests, library embedding) and the nag is per process, not
// per scan.
var pprofAliasOnce sync.Once

// applyPprofAlias resolves the deprecated -pprof flag. Any use of
// -pprof draws a one-time warning pointing at -http; the alias only
// supplies the address when -http was not given explicitly (-http
// wins).
func applyPprofAlias(cfg *config, logger *slog.Logger) {
	if cfg.pprofAddr == "" {
		return
	}
	pprofAliasOnce.Do(func() {
		logger.Warn("-pprof is deprecated and will be removed; use -http (the admin endpoint includes /debug/pprof)",
			"pprof", cfg.pprofAddr)
	})
	if cfg.httpAddr == "" {
		cfg.httpAddr = cfg.pprofAddr
	}
}

func (c *config) logger() *slog.Logger {
	if c.log != nil {
		return c.log
	}
	return slog.Default()
}

// newLogger builds the process logger from -log-format / -log-level.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if level == "" {
		level = "info"
	}
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func main() {
	var cfg config
	var showVersion bool
	flag.StringVar(&cfg.genomePath, "genome", "", "reference genome FASTA (required)")
	flag.StringVar(&cfg.indexPath, "index", "", "prebuilt genome seed index (genomeindex build); selects the seed-index engine")
	flag.StringVar(&cfg.guidesPath, "guides", "", "guide list file (one spacer per line)")
	flag.StringVar(&cfg.guideSeq, "guide", "", "single guide spacer (alternative to -guides)")
	flag.IntVar(&cfg.k, "k", 3, "maximum spacer mismatches")
	flag.IntVar(&cfg.bulge, "bulge", 0, "maximum bulges (enables edit-distance search)")
	flag.StringVar(&cfg.pam, "pam", "NGG", "PAM pattern (IUPAC)")
	flag.StringVar(&cfg.altPAM, "alt-pam", "", "comma-separated additional PAMs (e.g. NAG)")
	flag.StringVar(&cfg.engineName, "engine", string(crisprscan.EngineHyperscan), "execution engine")
	flag.BoolVar(&cfg.plusOnly, "plus-only", false, "search the plus strand only")
	flag.IntVar(&cfg.workers, "workers", 1, "data-parallel width for CPU engines")
	flag.BoolVar(&cfg.stats, "stats", false, "log execution statistics when the scan completes")
	flag.BoolVar(&cfg.stream, "stream", false, "stream the genome chromosome-by-chromosome (constant memory)")
	flag.BoolVar(&cfg.bed, "bed", false, "emit BED6 instead of TSV")
	flag.BoolVar(&cfg.summary, "summary", false, "print a per-guide specificity summary to stderr")
	flag.StringVar(&cfg.region, "region", "", "restrict to 'chrom' or 'chrom:start-end' (0-based half-open)")
	flag.StringVar(&cfg.outPath, "o", "", "output TSV path (default stdout)")
	flag.StringVar(&cfg.ckptPath, "checkpoint", "", "checkpoint journal path (with -stream: resume by skipping completed chromosomes)")
	flag.DurationVar(&cfg.timeout, "timeout", 0, "abort the search after this duration (e.g. 30m; 0 = no limit)")
	flag.StringVar(&cfg.tracePath, "trace", "", "write a Chrome trace-event timeline of the scan to this file (view in chrome://tracing or Perfetto); with -serve, the file name for each job's per-job trace inside its spool directory")
	flag.StringVar(&cfg.pprofAddr, "pprof", "", "deprecated alias for -http")
	flag.StringVar(&cfg.httpAddr, "http", "", "serve the admin endpoint (/metrics, /healthz, /readyz, /debug/scans, /debug/pprof) on this address (e.g. localhost:6060)")
	flag.DurationVar(&cfg.httpLinger, "http-linger", 0, "keep the -http endpoint up this long after the scan completes")
	flag.StringVar(&cfg.logFormat, "log-format", "text", "log output format: text or json")
	flag.StringVar(&cfg.logLevel, "log-level", "info", "minimum log level: debug, info, warn, or error")
	flag.BoolVar(&cfg.serve, "serve", false, "run the multi-tenant scan service (job API under /v1/ on -http) instead of a one-shot scan")
	flag.StringVar(&cfg.serveDir, "serve-dir", "", "durable job-state directory for -serve (required with -serve)")
	flag.StringVar(&cfg.serveGenomeDir, "serve-genome-dir", "", "directory jobs may name genomes from (relative paths); with -genome as the default reference")
	flag.IntVar(&cfg.serveWorkers, "serve-workers", 2, "concurrent jobs the service runs")
	flag.IntVar(&cfg.serveQueue, "serve-queue", 64, "queued jobs before submissions are shed with 429")
	flag.Float64Var(&cfg.serveQuotaRate, "serve-quota-rate", 1, "per-tenant sustained submissions per second (0 disables quotas)")
	flag.IntVar(&cfg.serveQuotaBurst, "serve-quota-burst", 8, "per-tenant submission burst size")
	flag.IntVar(&cfg.serveRetries, "serve-retries", 3, "transient-failure retries per job")
	flag.DurationVar(&cfg.serveDrain, "serve-drain", 30*time.Second, "grace window for in-flight jobs on SIGTERM before they are checkpointed for resume")
	flag.StringVar(&cfg.traceSample, "trace-sample", "always", "job-trace sampling for -serve: always, errors (retain only failed/retried), or ratio:<p> (deterministic per-trace-ID fraction, e.g. ratio:0.1)")
	flag.IntVar(&cfg.serveTenantLabels, "serve-tenant-labels", 32, "distinct tenant labels on /metrics before the rest fold into \"other\"")
	flag.BoolVar(&showVersion, "version", false, "print version information and exit")
	flag.Parse()

	if showVersion {
		version, revision := buildVersion()
		fmt.Printf("offtarget %s (revision %s, %s)\n", version, revision, runtime.Version())
		return
	}

	logger, err := newLogger(cfg.logFormat, cfg.logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "offtarget: %v\n", err)
		os.Exit(2)
	}
	cfg.log = logger

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, &cfg); err != nil {
		logger.Error("offtarget failed", "err", err)
		os.Exit(1)
	}
}

// run executes one search. All output paths funnel through the
// deferred flush/close below, so an error return (including a
// cancellation) still delivers every row produced so far and still
// reports flush/close failures instead of silently truncating -o.
func run(ctx context.Context, cfg *config) (err error) {
	if cfg.serve {
		return runServe(ctx, cfg)
	}
	if cfg.genomePath == "" && cfg.indexPath == "" {
		return fmt.Errorf("missing -genome (or -index)")
	}
	logger := cfg.logger().With("engine", cfg.engineName, "k", cfg.k, "pam", cfg.pam)
	guides, err := loadGuides(cfg.guidesPath, cfg.guideSeq)
	if err != nil {
		return err
	}

	// The admin endpoint binds before any work starts, so a bad -http
	// fails fast and never truncates -o. It outlives the scan by
	// -http-linger (see the scan-completion defer below).
	applyPprofAlias(cfg, logger)
	var adm *adminServer
	if cfg.httpAddr != "" {
		if cfg.reg == nil {
			cfg.reg = newScanRegistry()
		}
		adm, err = newAdminServer(cfg.httpAddr, cfg.reg, logger, nil)
		if err != nil {
			return fmt.Errorf("admin endpoint: %w", err)
		}
		defer adm.Close()
		logger.Info("admin endpoint listening", "addr", adm.Addr())
		if cfg.onAdmin != nil {
			cfg.onAdmin(adm.Addr())
		}
	}

	// The linger window is bounded by the signal context, not the scan
	// -timeout: a scan that timed out still exposes its final metrics.
	lingerCtx := ctx
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	// Resume state must be probed before the output file is opened:
	// a resumed run appends to its previous output instead of
	// truncating it (and does not repeat the TSV header).
	resuming := false
	if cfg.ckptPath != "" {
		if !cfg.stream {
			return fmt.Errorf("-checkpoint requires -stream")
		}
		doneChroms, doneSites, err := checkpoint.Probe(cfg.ckptPath)
		if err != nil {
			return err
		}
		resuming = doneChroms > 0
		if resuming {
			logger.Info("resuming from checkpoint",
				"chromosomes", doneChroms, "sites", doneSites, "journal", cfg.ckptPath)
		}
	}

	out := io.Writer(os.Stdout)
	var outFile *os.File
	if cfg.outPath != "" {
		mode := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
		if resuming {
			mode = os.O_WRONLY | os.O_CREATE | os.O_APPEND
		}
		outFile, err = os.OpenFile(cfg.outPath, mode, 0o644)
		if err != nil {
			return err
		}
		out = outFile
	}
	w := bufio.NewWriter(out)
	defer func() {
		// Flush before close, and surface either failure: os.Exit in
		// the old fail() helper used to skip both, truncating -o.
		if ferr := w.Flush(); ferr != nil && err == nil {
			err = fmt.Errorf("flushing output: %w", ferr)
		}
		if outFile != nil {
			if cerr := outFile.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing %s: %w", cfg.outPath, cerr)
			}
		}
	}()

	var alts []string
	if cfg.altPAM != "" {
		alts = strings.Split(cfg.altPAM, ",")
	}
	params := crisprscan.Params{
		MaxMismatches: cfg.k, PAM: cfg.pam, AltPAMs: alts, Region: cfg.region, PlusStrandOnly: cfg.plusOnly,
		Engine: crisprscan.Engine(cfg.engineName), Workers: cfg.workers,
	}

	// A prebuilt index forces the seed-index engine: the point of -index
	// is to skip the genome sweep, and silently scanning with another
	// engine would ignore the file the user handed us.
	if cfg.indexPath != "" {
		if cfg.bulge > 0 {
			return fmt.Errorf("-index does not support -bulge")
		}
		switch params.Engine {
		case "", crisprscan.EngineSeedIndex, crisprscan.EngineHyperscan: // explicit or the flag default
			params.Engine = crisprscan.EngineSeedIndex
		default:
			return fmt.Errorf("-index requires the seed-index engine, not -engine %s", cfg.engineName)
		}
		ix, err := crisprscan.LoadSeedIndex(cfg.indexPath)
		if err != nil {
			return err
		}
		params.SeedIndex = ix
		logger.Info("loaded genome seed index",
			"index", cfg.indexPath, "chromosomes", len(ix.Chroms), "seed_len", ix.SeedLen)
	}

	if cfg.tracePath != "" {
		tf, terr := os.Create(cfg.tracePath)
		if terr != nil {
			return terr
		}
		tracer := crisprscan.NewChromeTracer(tf)
		rec := crisprscan.NewMetricsRecorder()
		rec.SetTracer(tracer)
		params.Metrics = rec
		defer func() {
			if cerr := tracer.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("finalizing trace: %w", cerr)
			}
			if cerr := tf.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing %s: %w", cfg.tracePath, cerr)
			}
		}()
	}

	if adm != nil {
		// Every admin-visible scan carries a recorder (for /metrics) and
		// a progress tracker (for /debug/scans). In streaming mode the
		// FASTA file size seeds the denominator — a slight overestimate
		// (headers, newlines), which the tracker reconciles per finished
		// chromosome and pins below 1.0 until the scan completes.
		if params.Metrics == nil {
			params.Metrics = crisprscan.NewMetricsRecorder()
		}
		prog := crisprscan.NewProgressTracker()
		if cfg.stream {
			if fi, serr := os.Stat(cfg.genomePath); serr == nil {
				prog.SetTotalBytes(fi.Size())
			}
		}
		params.Progress = prog
		finishScan := cfg.reg.begin(&scanState{
			Engine: cfg.engineName, K: cfg.k, PAM: cfg.pam, Genome: cfg.genomePath,
			rec: params.Metrics, prog: prog,
		})
		defer func() {
			// Deliver buffered rows before lingering, then fold the scan
			// into the lifetime aggregator so a final scrape sees it.
			if ferr := w.Flush(); ferr != nil && err == nil {
				err = fmt.Errorf("flushing output: %w", ferr)
			}
			finishScan()
			if cfg.httpLinger > 0 {
				logger.Info("scan registered complete; admin endpoint lingering",
					"addr", adm.Addr(), "linger", cfg.httpLinger)
				t := time.NewTimer(cfg.httpLinger)
				select {
				case <-t.C:
				case <-lingerCtx.Done():
					t.Stop()
				}
			}
		}()
	}

	if cfg.stream {
		return runStream(ctx, cfg, guides, params, w, resuming, logger)
	}

	var g *crisprscan.Genome
	if cfg.genomePath != "" {
		g, err = crisprscan.LoadGenome(cfg.genomePath)
		if err != nil {
			return err
		}
		// Both given: prove the pair matches before scanning a single
		// window. A reference edited after indexing must not run.
		if params.SeedIndex != nil {
			if err := params.SeedIndex.ValidateGenome(g); err != nil {
				return err
			}
		}
	} else {
		// The index is self-contained: reconstruct the reference from its
		// packed sequence sections.
		g = params.SeedIndex.Genome()
	}

	if cfg.bulge > 0 {
		sites, err := crisprscan.SearchBulge(g, guides, crisprscan.BulgeParams{
			MaxMismatches: cfg.k, MaxBulge: cfg.bulge, PAM: cfg.pam, PlusStrandOnly: cfg.plusOnly,
		})
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "guide\tchrom\tpos\tlen\tstrand\tmismatches\tbulges\tsite")
		for _, s := range sites {
			fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%c\t%d\t%d\t%s\n",
				s.Guide, s.Chrom, s.Pos, s.Len, s.Strand, s.Mismatches, s.Bulges, s.SiteSeq)
		}
		if cfg.stats {
			logger.Info("bulge scan complete", "sites", len(sites), "bulge", cfg.bulge)
		}
		return nil
	}

	res, err := crisprscan.SearchContext(ctx, g, guides, params)
	if err != nil {
		return err
	}
	if err := writeSites(w, res.Sites, cfg.bed); err != nil {
		return err
	}
	if cfg.summary {
		if err := report.WriteSummary(os.Stderr, report.Summarize(res.Sites, len(guides)), cfg.k); err != nil {
			return err
		}
	}
	if cfg.stats {
		logger.Info("scan complete",
			"sites", len(res.Sites), "events", res.Stats.Events, "elapsed_sec", res.Stats.ElapsedSec)
		if res.Stats.Metrics != nil {
			logger.Info("scan metrics", "metrics", res.Stats.Metrics.String())
		}
		if res.Stats.Modeled != nil {
			logger.Info("modeled device time", "modeled", res.Stats.Modeled.String())
		}
		if res.Stats.Resources != nil {
			r := res.Stats.Resources
			logger.Info("device resources",
				"states", r.States, "passes", r.Passes, "utilization", r.Utilization())
		}
	}
	return nil
}

// runStream executes the constant-memory streaming mode: rows are
// written from the yield callback as each chromosome completes (never
// buffered genome-wide), and with -checkpoint each chromosome is
// journaled after its rows reach the output writer.
func runStream(ctx context.Context, cfg *config, guides []crisprscan.Guide, params crisprscan.Params, w *bufio.Writer, resuming bool, logger *slog.Logger) error {
	if cfg.bulge > 0 {
		return fmt.Errorf("-stream does not support -bulge")
	}
	if cfg.region != "" {
		return fmt.Errorf("-stream does not support -region")
	}
	var f *os.File
	if cfg.genomePath != "" {
		var err error
		f, err = os.Open(cfg.genomePath)
		if err != nil {
			return err
		}
		defer f.Close()
	} else if cfg.ckptPath != "" {
		// Checkpoint journaling tracks FASTA byte offsets; without the
		// file there is nothing to resume against.
		return fmt.Errorf("-stream -checkpoint requires -genome")
	}

	if !cfg.bed && !resuming {
		if err := crisprscan.WriteSitesTSVHeader(w); err != nil {
			return err
		}
	}
	count := 0
	emit := func(s crisprscan.Site) error {
		count++
		if cfg.bed {
			return crisprscan.WriteSiteBED(w, s)
		}
		return crisprscan.WriteSiteTSV(w, s)
	}

	var st *crisprscan.Stats
	var err error
	if cfg.ckptPath != "" {
		st, err = crisprscan.SearchStreamCheckpoint(ctx, f, guides, params, cfg.ckptPath, w.Flush, emit)
	} else {
		ctrl := &crisprscan.StreamControl{
			ChromDone: func(name string, sites int, scannedBases int64) error {
				logger.Debug("chromosome complete",
					"chrom", name, "sites", sites, "scanned_bases", scannedBases)
				return nil
			},
		}
		if f != nil {
			st, err = crisprscan.SearchStreamContext(ctx, f, guides, params, ctrl, emit)
		} else {
			// -index without -genome: drive the same streaming pipeline
			// from the reference reconstructed out of the index.
			st, err = crisprscan.SearchGenomeStreamContext(ctx, params.SeedIndex.Genome(), guides, params, ctrl, emit)
		}
	}
	if cfg.stats && st != nil {
		logger.Info("scan complete",
			"sites", count, "events", st.Events, "elapsed_sec", st.ElapsedSec, "streamed", true)
		if st.Metrics != nil {
			logger.Info("scan metrics", "metrics", st.Metrics.String())
		}
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cfg.ckptPath != "" {
				return fmt.Errorf("%w (progress saved; rerun the same command to resume from %s)", err, cfg.ckptPath)
			}
		}
		return err
	}
	return nil
}

// loadGuides reads guides from a file, a literal flag, or both.
func loadGuides(path, literal string) ([]crisprscan.Guide, error) {
	var guides []crisprscan.Guide
	if literal != "" {
		guides = append(guides, crisprscan.Guide{Name: "guide", Spacer: literal})
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		lineNo := 0
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			fields := strings.Fields(line)
			switch len(fields) {
			case 1:
				guides = append(guides, crisprscan.Guide{Name: fmt.Sprintf("g%d", len(guides)), Spacer: fields[0]})
			case 2:
				guides = append(guides, crisprscan.Guide{Name: fields[0], Spacer: fields[1]})
			default:
				return nil, fmt.Errorf("%s:%d: expected 'spacer' or 'name spacer'", path, lineNo)
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	if len(guides) == 0 {
		return nil, fmt.Errorf("no guides given (use -guides or -guide)")
	}
	return guides, nil
}

// writeSites emits sites in TSV or BED form.
func writeSites(w *bufio.Writer, sites []crisprscan.Site, bed bool) error {
	if bed {
		return crisprscan.WriteSitesBED(w, sites)
	}
	return crisprscan.WriteSitesTSV(w, sites)
}
