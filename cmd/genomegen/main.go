// Command genomegen generates deterministic synthetic genomes and guide
// sets for experiments (the reproduction's substitute for shipping a
// multi-gigabase reference; see DESIGN.md). It can also plant known
// off-target sites and emit the ground truth, which is how the
// correctness experiments verify 100% recall.
//
// Usage:
//
//	genomegen -len 10000000 -seed 1 -o genome.fa
//	genomegen -len 1000000 -guides 100 -guides-out guides.txt -o genome.fa
//	genomegen -len 1000000 -guides 20 -plant 0:1,1:2,3:2 -truth-out truth.tsv ...
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/fasta"
	"github.com/cap-repro/crisprscan/internal/genome"
)

func main() {
	var (
		length    = flag.Int("len", 1_000_000, "chromosome length in bp")
		chroms    = flag.Int("chroms", 1, "number of chromosomes")
		gc        = flag.Float64("gc", 0.41, "GC fraction")
		nRate     = flag.Float64("n-rate", 0, "N runs per Mbp")
		repeats   = flag.Float64("repeats", 0.05, "repeat coverage fraction")
		seed      = flag.Int64("seed", 1, "RNG seed")
		out       = flag.String("o", "", "output FASTA path (required)")
		numGuides = flag.Int("guides", 0, "sample this many guides from the genome")
		guidesOut = flag.String("guides-out", "", "guide list output path")
		pamStr    = flag.String("pam", "NGG", "PAM for guide sampling and planting")
		plant     = flag.String("plant", "", "plant plan 'mism:count,...' per guide (e.g. 0:1,2:3)")
		truthOut  = flag.String("truth-out", "", "planted ground-truth TSV output path")
	)
	flag.Parse()
	if *out == "" {
		fail("missing -o")
	}
	pam, err := dna.ParsePattern(*pamStr)
	if err != nil {
		fail("%v", err)
	}
	g := genome.Synthesize(genome.SynthConfig{
		Seed: *seed, NumChroms: *chroms, ChromLen: *length,
		GC: *gc, NRunRate: *nRate, RepeatRate: *repeats,
	})

	var guides []dna.Seq
	if *numGuides > 0 {
		guides = genome.SampleGuides(g, *numGuides, 20, pam, *seed+1)
		if len(guides) < *numGuides {
			fail("only sampled %d/%d guides; genome too small", len(guides), *numGuides)
		}
	}

	if *plant != "" {
		if len(guides) == 0 {
			fail("-plant requires -guides")
		}
		plan, err := parsePlan(*plant)
		if err != nil {
			fail("%v", err)
		}
		sites, err := genome.Plant(g, guides, pam, plan, *seed+2)
		if err != nil {
			fail("%v", err)
		}
		if *truthOut != "" {
			if err := writeTruth(*truthOut, sites); err != nil {
				fail("%v", err)
			}
		}
		fmt.Fprintf(os.Stderr, "genomegen: planted %d sites\n", len(sites))
	}

	if err := fasta.WriteFile(*out, g.ToFasta()); err != nil {
		fail("%v", err)
	}
	if *guidesOut != "" && len(guides) > 0 {
		if err := writeGuides(*guidesOut, guides); err != nil {
			fail("%v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "genomegen: wrote %s (%d bp, %d chroms)\n", *out, g.TotalLen(), len(g.Chroms))
}

func parsePlan(s string) (genome.PlantPlan, error) {
	plan := genome.PlantPlan{}
	for _, part := range strings.Split(s, ",") {
		kv := strings.Split(part, ":")
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad plan entry %q (want mism:count)", part)
		}
		m, err := strconv.Atoi(kv[0])
		if err != nil {
			return nil, err
		}
		c, err := strconv.Atoi(kv[1])
		if err != nil {
			return nil, err
		}
		plan[m] = c
	}
	return plan, nil
}

func writeGuides(path string, guides []dna.Seq) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for i, g := range guides {
		fmt.Fprintf(w, "g%d\t%s\n", i, g)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTruth(path string, sites []genome.PlantedSite) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "guide\tchrom\tpos\tstrand\tmismatches")
	for _, s := range sites {
		fmt.Fprintf(w, "%d\t%s\t%d\t%c\t%d\n", s.Guide, s.Chrom, s.Pos, s.Strand, s.Mismatches)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "genomegen: "+format+"\n", args...)
	os.Exit(1)
}
