package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

func TestParsePlan(t *testing.T) {
	plan, err := parsePlan("0:1,2:3,5:2")
	if err != nil {
		t.Fatal(err)
	}
	if plan[0] != 1 || plan[2] != 3 || plan[5] != 2 {
		t.Errorf("plan = %v", plan)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{"", "0", "0:1:2", "x:1", "1:y"} {
		if _, err := parsePlan(bad); err == nil {
			t.Errorf("parsePlan(%q) should fail", bad)
		}
	}
}

func TestWriteGuidesAndTruth(t *testing.T) {
	dir := t.TempDir()
	gpath := filepath.Join(dir, "guides.txt")
	guides := []dna.Seq{dna.MustParseSeq("ACGT"), dna.MustParseSeq("TTTT")}
	if err := writeGuides(gpath, guides); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(gpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "g0\tACGT") || !strings.Contains(string(data), "g1\tTTTT") {
		t.Errorf("guides file: %q", data)
	}

	tpath := filepath.Join(dir, "truth.tsv")
	sites := []genome.PlantedSite{{Guide: 1, Chrom: "chr2", Pos: 99, Strand: '-', Mismatches: 3}}
	if err := writeTruth(tpath, sites); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(tpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "1\tchr2\t99\t-\t3") {
		t.Errorf("truth file: %q", data)
	}
}
