// Command genomeindex manages persistent genome seed indexes: build
// once from a FASTA reference, then hand the index to offtarget (or
// the scan service) so repeated guide queries skip the genome sweep
// entirely. The index file is self-describing and checksummed; every
// load re-verifies it, and validate additionally proves it still
// matches a given reference byte for byte.
//
// Usage:
//
//	genomeindex build -genome genome.fa -o genome.csix [-seed-len 10]
//	genomeindex validate -index genome.csix [-genome genome.fa]
//	genomeindex inspect -index genome.csix
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/cap-repro/crisprscan"
	"github.com/cap-repro/crisprscan/internal/seedindex"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "genomeindex: %v\n", err)
		os.Exit(1)
	}
}

// run dispatches one subcommand; it is the whole CLI, kept flag.Parse-
// free at the top level so tests can drive it directly.
func run(args []string, stdout, stderr io.Writer) error {
	if len(args) == 0 {
		usage(stderr)
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "build":
		return runBuild(args[1:], stdout)
	case "validate":
		return runValidate(args[1:], stdout)
	case "inspect":
		return runInspect(args[1:], stdout)
	case "-h", "-help", "--help", "help":
		usage(stdout)
		return nil
	default:
		usage(stderr)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage:
  genomeindex build -genome genome.fa -o genome.csix [-seed-len 10]
  genomeindex validate -index genome.csix [-genome genome.fa]
  genomeindex inspect -index genome.csix`)
}

func runBuild(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	genomePath := fs.String("genome", "", "reference genome FASTA (required)")
	outPath := fs.String("o", "", "output index path (required)")
	seedLen := fs.Int("seed-len", 0, "seed k-mer length (0 = default)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *genomePath == "" {
		return fmt.Errorf("build: missing -genome")
	}
	if *outPath == "" {
		return fmt.Errorf("build: missing -o")
	}
	g, err := crisprscan.LoadGenome(*genomePath)
	if err != nil {
		return err
	}
	ix, err := seedindex.Build(g, *seedLen)
	if err != nil {
		return err
	}
	if err := ix.WriteFile(*outPath); err != nil {
		return err
	}
	var keys, postings int
	for i := range ix.Chroms {
		keys += ix.Chroms[i].Keys()
		postings += ix.Chroms[i].Postings()
	}
	fmt.Fprintf(stdout, "wrote %s: %d chromosomes, %d bp, seed length %d, %d keys, %d postings\n",
		*outPath, len(ix.Chroms), g.TotalLen(), ix.SeedLen, keys, postings)
	return nil
}

func runValidate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	indexPath := fs.String("index", "", "index file to validate (required)")
	genomePath := fs.String("genome", "", "reference FASTA to validate against (optional)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" {
		return fmt.Errorf("validate: missing -index")
	}
	// Load alone re-verifies every checksum; a corrupt, truncated or
	// version-skewed file fails here before any genome comparison.
	ix, err := seedindex.Load(*indexPath)
	if err != nil {
		return err
	}
	if *genomePath != "" {
		g, err := crisprscan.LoadGenome(*genomePath)
		if err != nil {
			return err
		}
		if err := ix.ValidateGenome(g); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%s: valid, matches %s\n", *indexPath, *genomePath)
		return nil
	}
	fmt.Fprintf(stdout, "%s: valid\n", *indexPath)
	return nil
}

func runInspect(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	indexPath := fs.String("index", "", "index file to inspect (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexPath == "" {
		return fmt.Errorf("inspect: missing -index")
	}
	ix, err := seedindex.Load(*indexPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "seed length\t%d\nchromosomes\t%d\n", ix.SeedLen, len(ix.Chroms))
	fmt.Fprintln(stdout, "name\tlength\tkeys\tpostings\tsha256")
	for i := range ix.Chroms {
		c := &ix.Chroms[i]
		fmt.Fprintf(stdout, "%s\t%d\t%d\t%d\t%x\n", c.Name, c.SeqLen, c.Keys(), c.Postings(), c.SeqSHA[:8])
	}
	return nil
}
