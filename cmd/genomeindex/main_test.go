package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/fasta"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/seedindex"
)

// writeFixture synthesizes a small reference and writes it as FASTA.
func writeFixture(t *testing.T, dir string, seed int64) string {
	t.Helper()
	g := genome.Synthesize(genome.SynthConfig{Seed: seed, NumChroms: 2, ChromLen: 800, NRunRate: 40, NRunLen: 15})
	path := filepath.Join(dir, "ref.fa")
	if err := fasta.WriteFile(path, g.ToFasta()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBuildValidateInspect(t *testing.T) {
	dir := t.TempDir()
	ref := writeFixture(t, dir, 11)
	idx := filepath.Join(dir, "ref.csix")

	var out bytes.Buffer
	if err := run([]string{"build", "-genome", ref, "-o", idx}, &out, &out); err != nil {
		t.Fatalf("build: %v", err)
	}
	if !strings.Contains(out.String(), "2 chromosomes") {
		t.Errorf("build output: %q", out.String())
	}

	out.Reset()
	if err := run([]string{"validate", "-index", idx}, &out, &out); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !strings.Contains(out.String(), "valid") {
		t.Errorf("validate output: %q", out.String())
	}

	out.Reset()
	if err := run([]string{"validate", "-index", idx, "-genome", ref}, &out, &out); err != nil {
		t.Fatalf("validate -genome: %v", err)
	}
	if !strings.Contains(out.String(), "matches") {
		t.Errorf("validate -genome output: %q", out.String())
	}

	out.Reset()
	if err := run([]string{"inspect", "-index", idx}, &out, &out); err != nil {
		t.Fatalf("inspect: %v", err)
	}
	for _, want := range []string{"seed length\t10", "chromosomes\t2", "chr1\t800", "chr2\t800"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, out.String())
		}
	}
}

func TestValidateRejectsMutatedReference(t *testing.T) {
	dir := t.TempDir()
	ref := writeFixture(t, dir, 11)
	idx := filepath.Join(dir, "ref.csix")
	var out bytes.Buffer
	if err := run([]string{"build", "-genome", ref, "-o", idx}, &out, &out); err != nil {
		t.Fatal(err)
	}
	// A different reference with the same shape must be rejected by the
	// content hash even though names and lengths line up.
	other := writeFixture(t, t.TempDir(), 12)
	if err := run([]string{"validate", "-index", idx, "-genome", other}, &out, &out); err == nil {
		t.Fatal("validate accepted a mismatched reference")
	} else if !errors.Is(err, seedindex.ErrStale) {
		t.Fatalf("validate error %v is not ErrStale", err)
	}
}

func TestValidateRejectsCorruptIndex(t *testing.T) {
	dir := t.TempDir()
	ref := writeFixture(t, dir, 11)
	idx := filepath.Join(dir, "ref.csix")
	var out bytes.Buffer
	if err := run([]string{"build", "-genome", ref, "-o", idx}, &out, &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x10
	if err := os.WriteFile(idx, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"validate", "-index", idx}, &out, &out); err == nil {
		t.Fatal("validate accepted a corrupt index")
	}
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{},
		{"frobnicate"},
		{"build", "-o", "x.csix"},
		{"build", "-genome", "x.fa"},
		{"validate"},
		{"inspect"},
	} {
		if err := run(args, &out, &out); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
	if err := run([]string{"help"}, &out, &out); err != nil {
		t.Errorf("help: %v", err)
	}
}
