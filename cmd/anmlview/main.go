// Command anmlview compiles guides into their off-target search
// automata and dumps statistics, ANML (the Automata Processor's network
// markup language), or MNRL-style JSON — the artifacts one would hand to
// AP/FPGA automata toolchains.
//
// Usage:
//
//	anmlview -guide GGGTGGGGGGAGTTTGCTCC -k 3                 # stats
//	anmlview -guide ... -k 3 -format anml > net.anml
//	anmlview -guide ... -k 3 -merge -stride2 -format json
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/cap-repro/crisprscan/internal/anml"
	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/core"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/report"
)

func main() {
	var (
		guide   = flag.String("guide", "", "guide spacer (required)")
		k       = flag.Int("k", 3, "mismatch budget")
		bulge   = flag.Int("bulge", 0, "bulge budget (edit automaton)")
		pamStr  = flag.String("pam", "NGG", "PAM pattern")
		both    = flag.Bool("both-strands", true, "compile both strands")
		merge   = flag.Bool("merge", false, "apply prefix/suffix state merging")
		stride2 = flag.Bool("stride2", false, "apply the 2-striding transform")
		format  = flag.String("format", "stats", "output: stats, anml, json, dot")
	)
	flag.Parse()
	if *guide == "" {
		fail("missing -guide")
	}
	spacer, err := dna.ParsePattern(*guide)
	if err != nil {
		fail("%v", err)
	}
	pam, err := dna.ParsePattern(*pamStr)
	if err != nil {
		fail("%v", err)
	}

	var n *automata.NFA
	if *bulge > 0 {
		n, err = automata.CompileEdit(spacer, automata.EditOptions{
			MaxMismatches: *k, MaxBulge: *bulge, PAM: pam, Code: 0,
		})
		if err != nil {
			fail("%v", err)
		}
		if *both {
			minus, err := automata.CompileEdit(spacer.ReverseComplement(), automata.EditOptions{
				MaxMismatches: *k, MaxBulge: *bulge, PAM: pam.ReverseComplement(),
				PAMLeft: true, Code: report.CodeFor(0, '-'),
			})
			if err != nil {
				fail("%v", err)
			}
			if err := n.Union(minus); err != nil {
				fail("%v", err)
			}
		}
	} else {
		specs := core.BuildSpecs([]dna.Pattern{spacer}, pam, *k, !*both)
		var parts []*automata.NFA
		for _, spec := range specs {
			part, err := automata.CompileHamming(spec.Spacer, automata.CompileOptions{
				MaxMismatches: spec.K, PAM: spec.PAM, PAMLeft: spec.PAMLeft, Code: spec.Code,
			})
			if err != nil {
				fail("%v", err)
			}
			parts = append(parts, part)
		}
		n, err = automata.UnionAll("anmlview", parts)
		if err != nil {
			fail("%v", err)
		}
	}
	_ = arch.PatternSpec{} // keep the arch import for spec types above

	if *merge {
		var saved int
		n, saved = automata.MergeEquivalent(n)
		fmt.Fprintf(os.Stderr, "anmlview: merging removed %d states\n", saved)
	}
	if *stride2 {
		s2, err := automata.Multistride2(n)
		if err != nil {
			fail("%v", err)
		}
		n = s2
	}

	switch *format {
	case "stats":
		st := n.ComputeStats()
		fmt.Printf("label:         %s\n", n.Label)
		fmt.Printf("alphabet:      %d\n", n.Alphabet)
		fmt.Printf("states (STEs): %d\n", st.States)
		fmt.Printf("edges:         %d\n", st.Edges)
		fmt.Printf("start states:  %d\n", st.StartStates)
		fmt.Printf("report states: %d\n", st.ReportStates)
		fmt.Printf("max fan-in:    %d\n", st.MaxFanIn)
		fmt.Printf("max fan-out:   %d\n", st.MaxFanOut)
		fmt.Printf("avg class:     %.2f\n", st.AvgClassSize)
	case "anml":
		doc, err := anml.FromNFA(n, "offtarget")
		if err != nil {
			fail("%v", err)
		}
		if err := doc.Write(os.Stdout); err != nil {
			fail("%v", err)
		}
	case "json":
		if err := anml.WriteJSON(os.Stdout, anml.ToJSON(n, "offtarget")); err != nil {
			fail("%v", err)
		}
	case "dot":
		if err := n.WriteDot(os.Stdout, "offtarget"); err != nil {
			fail("%v", err)
		}
	default:
		fail("unknown format %q", *format)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "anmlview: "+format+"\n", args...)
	os.Exit(1)
}
