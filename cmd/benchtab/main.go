// Command benchtab regenerates the paper's evaluation tables and
// figures (the E1..E14 series documented in DESIGN.md/EXPERIMENTS.md).
//
// Usage:
//
//	benchtab                      # full series at default scale
//	benchtab -scale test          # quick run (small genome)
//	benchtab -e 4                 # one experiment
//	benchtab -e 2 -csv            # machine-readable output
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/cap-repro/crisprscan/internal/bench"
)

func main() {
	var (
		scaleName = flag.String("scale", "default", "workload scale: "+scaleNames())
		expID     = flag.String("e", "", "experiment id (1,2,3,4,5,6,7,8,9,10,12); empty = all")
		csv       = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()
	sc, ok := bench.Scales[*scaleName]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchtab: unknown scale %q (have %s)\n", *scaleName, scaleNames())
		os.Exit(2)
	}
	var err error
	if *expID == "" {
		err = bench.RunAll(sc, os.Stdout, *csv)
	} else {
		err = bench.Run(*expID, sc, os.Stdout, *csv)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchtab: %v\n", err)
		os.Exit(1)
	}
}

func scaleNames() string {
	var names []string
	for name := range bench.Scales {
		names = append(names, name)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
