// Command benchjson runs the pinned benchmark workload matrix
// (engine x k x guide-count x genome-size) and emits a machine-readable
// trajectory document with throughput, per-phase breakdowns and
// allocation stats:
//
//	benchjson -scale test -o BENCH_4.json
//
// With -compare it additionally joins the fresh run against a baseline
// report and exits nonzero when any matrix cell regressed past the
// threshold (default 15% slower):
//
//	benchjson -scale test -o BENCH_4.json -compare BENCH_4.json
//
// CI runs the test scale on every push and keeps the committed
// BENCH_4.json as the trajectory point for this growth stage.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/cap-repro/crisprscan/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	scaleName := flag.String("scale", "test", "workload scale profile (test, default, large)")
	out := flag.String("o", "", "output path for the JSON report (default stdout)")
	compare := flag.String("compare", "", "baseline report to compare against; regressions exit nonzero")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional slowdown before -compare fails (0.15 = 15%)")
	minSeconds := flag.Float64("min-seconds", 0.005, "skip -compare for cells whose baseline is faster than this (noise floor)")
	seed := flag.Int64("seed", 42, "workload generation seed")
	quiet := flag.Bool("q", false, "suppress per-cell progress on stderr")
	flag.Parse()

	scale, ok := bench.Scales[*scaleName]
	if !ok {
		return fmt.Errorf("unknown scale %q (have: test, default, large)", *scaleName)
	}

	// Read the baseline before running, so a bad path fails fast.
	var baseline *bench.BenchReport
	if *compare != "" {
		f, err := os.Open(*compare)
		if err != nil {
			return err
		}
		baseline, err = bench.ReadBenchReport(f)
		f.Close()
		if err != nil {
			return err
		}
	}

	progress := func(i, n int, mc bench.MatrixCase) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s genome=%d guides=%d k=%d\n",
				i+1, n, mc.Engine, mc.GenomeLen, mc.Guides, mc.K)
		}
	}
	rep, err := bench.RunMatrix(scale, *seed, progress)
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		return err
	}

	if baseline != nil {
		regs := bench.Compare(baseline, rep, bench.CompareOptions{
			Threshold: *threshold, MinSeconds: *minSeconds,
		})
		if len(regs) > 0 {
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "REGRESSION %s: %.4fs -> %.4fs (%.2fx, threshold %.2fx)\n",
					r.Key, r.OldSec, r.NewSec, r.Ratio, 1+*threshold)
			}
			return fmt.Errorf("%d matrix cell(s) regressed past %.0f%% vs %s",
				len(regs), *threshold*100, *compare)
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "compare: no regressions vs %s (threshold %.0f%%)\n",
				*compare, *threshold*100)
		}
	}
	return nil
}
