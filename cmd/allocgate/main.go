// Command allocgate is the escape-analysis regression gate for the scan
// kernels. The hotpath analyzer (internal/analysis) enforces
// allocation-freedom syntactically and through go/types; allocgate
// closes the loop with the compiler's own verdict: it runs
//
//	go build -gcflags='<pkg>=-m' <pkg>
//
// over every package containing a //crisprlint:hotpath directive,
// parses the escape-analysis diagnostics ("escapes to heap",
// "moved to heap"), and attributes each verdict to the hot function
// whose source span contains it. Verdicts are keyed by
// (package, function, message) rather than file:line, so unrelated
// edits that shift line numbers do not churn the baseline.
//
// Modes:
//
//	allocgate                  print the current hot-function escapes
//	allocgate -update          rewrite ALLOC_BASELINE.txt atomically
//	allocgate -compare FILE    diff against FILE; new escapes exit 3
//
// The baseline file carries a schema header (same discipline as the
// BENCH trajectory files): a version mismatch is a hard error, never a
// silent pass. -update writes via temp-file + rename so a crashed run
// cannot leave a truncated baseline behind.
//
// Exit codes: 0 clean, 3 new escapes in -compare mode, 1 operational
// error (build failure, malformed baseline).
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"github.com/cap-repro/crisprscan/internal/analysis"
)

const schemaHeader = "# allocgate escape baseline, schema v1"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("allocgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	update := fs.Bool("update", false, "rewrite the baseline with the current verdicts")
	compare := fs.String("compare", "", "baseline file to diff against; new escapes exit 3")
	baseline := fs.String("baseline", "ALLOC_BASELINE.txt", "baseline path written by -update")
	dir := fs.String("dir", ".", "module root to analyze")
	if err := fs.Parse(argv); err != nil {
		return 1
	}

	entries, err := collect(*dir, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "allocgate: %v\n", err)
		return 1
	}

	basePath := *baseline
	if !filepath.IsAbs(basePath) {
		basePath = filepath.Join(*dir, basePath)
	}

	switch {
	case *update:
		if err := writeBaseline(basePath, entries); err != nil {
			fmt.Fprintf(stderr, "allocgate: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "allocgate: wrote %d entr%s to %s\n", len(entries), plural(len(entries), "y", "ies"), *baseline)
		return 0
	case *compare != "":
		old, err := readBaseline(*compare)
		if err != nil {
			fmt.Fprintf(stderr, "allocgate: %v\n", err)
			return 1
		}
		return diff(old, entries, stdout, stderr)
	default:
		if len(entries) == 0 {
			fmt.Fprintln(stdout, "allocgate: no heap escapes in hot functions")
			return 0
		}
		for _, e := range entries {
			fmt.Fprintln(stdout, e)
		}
		return 0
	}
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// hotSpan is the source extent of one //crisprlint:hotpath function.
type hotSpan struct {
	name       string
	start, end int // inclusive line range
}

// collect loads the module, finds every hot function, compiles each
// package that contains one with -gcflags=-m, and returns the sorted
// heap-escape entries attributed to hot functions. The build cache
// replays -m diagnostics on cache hits, so repeated runs are cheap.
func collect(dir string, stderr io.Writer) ([]string, error) {
	// The compiler prints paths relative to the working directory; the
	// loader records absolute ones. Work in absolute space throughout.
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog, err := analysis.Load(fset, dir, "./...")
	if err != nil {
		return nil, err
	}

	spans := make(map[string][]hotSpan) // absolute filename -> hot spans
	var hotPkgs []string
	for path, pkg := range prog.Packages {
		hot := false
		for _, f := range pkg.Files {
			for _, hf := range analysis.HotFuncs(fset, f) {
				pos := fset.Position(hf.Pos)
				spans[pos.Filename] = append(spans[pos.Filename], hotSpan{
					name:  hf.Name,
					start: pos.Line,
					end:   fset.Position(hf.End).Line,
				})
				hot = true
			}
		}
		if hot {
			hotPkgs = append(hotPkgs, path)
		}
	}
	sort.Strings(hotPkgs)
	if len(hotPkgs) == 0 {
		return nil, nil
	}

	var entries []string
	for _, pkgPath := range hotPkgs {
		out, err := escapeDiagnostics(dir, pkgPath)
		if err != nil {
			return nil, err
		}
		entries = append(entries, attribute(dir, prog.Packages[pkgPath].Path, out, spans)...)
	}
	sort.Strings(entries)
	return entries, nil
}

// escapeDiagnostics compiles one package with escape-analysis output
// enabled and returns the compiler's stderr.
func escapeDiagnostics(dir, pkgPath string) (string, error) {
	cmd := exec.Command("go", "build", "-gcflags="+pkgPath+"=-m", pkgPath)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("go build -gcflags=-m %s: %w\n%s", pkgPath, err, buf.String())
	}
	return buf.String(), nil
}

// diagLine matches one compiler diagnostic: path:line:col: message.
var diagLine = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.*)$`)

// attribute turns raw -m output into baseline entries: only heap
// verdicts ("escapes to heap", "moved to heap"), and only inside the
// innermost hot-function span containing the diagnostic's line.
func attribute(dir, pkgPath, out string, spans map[string][]hotSpan) []string {
	var entries []string
	sc := bufio.NewScanner(strings.NewReader(out))
	for sc.Scan() {
		line := sc.Text()
		m := diagLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.Contains(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		n, _ := strconv.Atoi(m[2])
		if fn := innermost(spans[file], n); fn != "" {
			entries = append(entries, fmt.Sprintf("%s %s: %s", pkgPath, fn, msg))
		}
	}
	return entries
}

// innermost returns the name of the smallest hot span containing line,
// or "" when the line is outside every hot function.
func innermost(spans []hotSpan, line int) string {
	best, bestSize := "", 0
	for _, s := range spans {
		if line < s.start || line > s.end {
			continue
		}
		if size := s.end - s.start; best == "" || size < bestSize {
			best, bestSize = s.name, size
		}
	}
	return best
}

// writeBaseline writes entries under the schema header via temp-file +
// rename, so a crashed run never leaves a truncated baseline.
func writeBaseline(path string, entries []string) error {
	var buf bytes.Buffer
	fmt.Fprintln(&buf, schemaHeader)
	fmt.Fprintln(&buf, "# regenerate with: go run ./cmd/allocgate -update")
	for _, e := range entries {
		fmt.Fprintln(&buf, e)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".allocgate-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// readBaseline parses a baseline file, enforcing the schema header.
func readBaseline(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != schemaHeader {
		return nil, fmt.Errorf("%s: missing or unsupported schema header (want %q)", path, schemaHeader)
	}
	var entries []string
	for _, l := range lines[1:] {
		l = strings.TrimSpace(l)
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		entries = append(entries, l)
	}
	return entries, nil
}

// diff compares baseline and current entries as multisets. New escapes
// are regressions (exit 3); resolved ones are reported as candidates
// for -update (exit 0).
func diff(old, cur []string, stdout, stderr io.Writer) int {
	count := make(map[string]int)
	for _, e := range old {
		count[e]++
	}
	var fresh []string
	for _, e := range cur {
		if count[e] > 0 {
			count[e]--
			continue
		}
		fresh = append(fresh, e)
	}
	var resolved []string
	for e, n := range count {
		for i := 0; i < n; i++ {
			resolved = append(resolved, e)
		}
	}
	sort.Strings(resolved)
	for _, e := range resolved {
		fmt.Fprintf(stdout, "allocgate: resolved (refresh with -update): %s\n", e)
	}
	if len(fresh) == 0 {
		fmt.Fprintf(stdout, "allocgate: no new heap escapes in hot functions (%d baselined)\n", len(old))
		return 0
	}
	for _, e := range fresh {
		fmt.Fprintf(stderr, "allocgate: NEW heap escape: %s\n", e)
	}
	fmt.Fprintf(stderr, "allocgate: %d new heap escape%s in hot functions; fix or justify, then -update\n",
		len(fresh), plural(len(fresh), "", "s"))
	return 3
}
