// Command allocgate is a deprecated shim over cmd/perfgate, kept so
// existing invocations (scripts, muscle memory, old CI configs) keep
// working while callers move over. It gates only the escape budget —
// the one allocgate historically owned — against the shared
// PERF_BASELINE.txt, and preserves allocgate's historic exit code 3
// for new escapes.
//
// Differences from the original:
//
//   - the baseline is PERF_BASELINE.txt (perfgate schema); a legacy
//     ALLOC_BASELINE.txt passed via -baseline is still readable, and
//     `perfgate -migrate ALLOC_BASELINE.txt` imports it one-shot
//   - -update regenerates the full perfgate baseline (all three
//     budgets), never an escape-only file: a partial rewrite would
//     silently drop the inline and bounds budgets
//
// Use `go run ./cmd/perfgate` directly for the full gate (escape,
// inline, and bounds budgets with distinct exit codes).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/cap-repro/crisprscan/internal/perfgate"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	// Deprecation warning: once per invocation, before any mode output.
	fmt.Fprintln(stderr, "allocgate: deprecated shim; forwarding to perfgate's escape budget — use `go run ./cmd/perfgate` for the full compiler-feedback gate")

	fs := flag.NewFlagSet("allocgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", ".", "module root to gate")
	baseline := fs.String("baseline", "", "baseline `file` (default <dir>/PERF_BASELINE.txt)")
	update := fs.Bool("update", false, "regenerate the full perfgate baseline (all budgets), preserving justifications")
	compare := fs.String("compare", "", "compare current escape verdicts against the escape budget in `file` (allocgate's historic calling convention; perfgate and legacy allocgate schemas both accepted)")
	if err := fs.Parse(argv); err != nil {
		return 1
	}
	if *baseline == "" {
		*baseline = filepath.Join(*dir, "PERF_BASELINE.txt")
	}
	escapeOnly := map[perfgate.Class]bool{perfgate.ClassEscape: true}

	switch {
	case *update:
		return perfgate.Update(*dir, *baseline, stdout, stderr)
	case *compare != "":
		return perfgate.Compare(*dir, *compare, escapeOnly, stdout, stderr)
	}

	entries, err := perfgate.Collect(*dir, escapeOnly)
	if err != nil {
		fmt.Fprintf(stderr, "allocgate: %v\n", err)
		return 1
	}
	for _, e := range entries {
		fmt.Fprintf(stdout, "%s | x%d\n", e.Key(), e.Count)
	}
	return 0
}
