package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/perfgate"
)

const kernelEscape = `package kernel

// Sink keeps the escape alive across the call.
var Sink *int

// Sum is the fixture hot kernel.
//
//crisprlint:hotpath
func Sum(s []int) int {
	t := 0
	for i := 0; i < len(s); i++ {
		t += s[i]
	}
	Sink = &t
	return t
}
`

// kernelEscapeBounds keeps the escape and adds a surviving bounds
// check — which the escape-only shim must ignore.
const kernelEscapeBounds = `package kernel

// Sink keeps the escape alive across the call.
var Sink *int

// Sum is the fixture hot kernel.
//
//crisprlint:hotpath
func Sum(s []int, n int) int {
	t := 0
	for i := 0; i < n; i++ {
		t += s[i]
	}
	Sink = &t
	return t
}
`

// kernelEscapeMore adds a second hot function with a fresh escape.
const kernelEscapeMore = kernelEscape + `
// Sink2 keeps the second escape alive.
var Sink2 *[]int

// Fill is a second fixture hot kernel.
//
//crisprlint:hotpath
func Fill(n int) {
	s := make([]int, n)
	Sink2 = &s
}
`

func fixtureModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"),
		[]byte("module fixture.test/allocgate\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "kernel"), 0o755); err != nil {
		t.Fatal(err)
	}
	writeKernel(t, dir, kernelEscape)
	return dir
}

func writeKernel(t *testing.T, dir, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, "kernel", "kernel.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func shim(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw strings.Builder
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestShimEndToEnd drives the deprecated allocgate shim through its
// whole surface: deprecation warning, escape-only listing, full-file
// -update, escape-only -compare gating (historic exit 3, bounds
// regressions invisible), and legacy ALLOC_BASELINE.txt readability.
func TestShimEndToEnd(t *testing.T) {
	dir := fixtureModule(t)
	baseline := filepath.Join(dir, "PERF_BASELINE.txt")

	// Every mode warns about the deprecation, exactly once.
	code, out, errw := shim(t, "-dir", dir)
	if code != 0 {
		t.Fatalf("list mode = %d\n%s", code, errw)
	}
	if n := strings.Count(errw, "deprecated shim"); n != 1 {
		t.Fatalf("want exactly one deprecation warning, got %d:\n%s", n, errw)
	}
	if !strings.Contains(out, "escapes to heap") || strings.Contains(out, "bounds ") {
		t.Fatalf("list mode should print escape verdicts only:\n%s", out)
	}

	// -update writes the full perfgate baseline, not an escape-only one.
	if code, _, errw := shim(t, "-dir", dir, "-update"); code != 0 {
		t.Fatalf("-update = %d\n%s", code, errw)
	}
	b, err := perfgate.ReadBaseline(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if b.GoVersion == "" {
		t.Fatal("shim -update must write a toolchain-pinned perfgate baseline")
	}

	// TODO-justified escape entries fail the escape-budget compare.
	if code, _, _ := shim(t, "-dir", dir, "-compare", baseline); code != 6 {
		t.Fatalf("unjustified escape compare = %d, want 6", code)
	}
	data, err := os.ReadFile(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(baseline,
		[]byte(strings.ReplaceAll(string(data), perfgate.TODOJustification, "fixture escape, accepted")), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, _, errw := shim(t, "-dir", dir, "-compare", baseline); code != 0 {
		t.Fatalf("justified escape compare = %d\n%s", code, errw)
	}

	// A bounds regression is outside the shim's budget: still green.
	writeKernel(t, dir, kernelEscapeBounds)
	if code, _, errw := shim(t, "-dir", dir, "-compare", baseline); code != 0 {
		t.Fatalf("shim gated a bounds regression (= %d); it forwards the escape budget only\n%s", code, errw)
	}

	// A new escape trips the historic exit code 3.
	writeKernel(t, dir, kernelEscapeMore)
	code, _, errw = shim(t, "-dir", dir, "-compare", baseline)
	if code != 3 {
		t.Fatalf("new escape through shim = %d, want 3\n%s", code, errw)
	}
	if !strings.Contains(errw, "Fill") {
		t.Fatalf("regressing function not named:\n%s", errw)
	}
}

// TestShimReadsLegacyBaseline checks `allocgate -compare
// ALLOC_BASELINE.txt` still works against the pre-migration format.
func TestShimReadsLegacyBaseline(t *testing.T) {
	dir := fixtureModule(t)

	entries, err := perfgate.Collect(dir, map[perfgate.Class]bool{perfgate.ClassEscape: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("escape fixture produced no escape verdicts")
	}
	legacy := perfgate.LegacyAllocHeader + "\n"
	for _, e := range entries {
		legacy += e.Pkg + " " + e.Func + ": " + e.Message + "\n"
	}
	legacyPath := filepath.Join(dir, "ALLOC_BASELINE.txt")
	if err := os.WriteFile(legacyPath, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}

	// Legacy entries carry no justification and no pin; the shim
	// compares anyway (warning, not regeneration) and legacy entries
	// count as justified-by-history? No: they are unjustified, but the
	// legacy format predates justifications, so the gate only reports
	// regressions against them. It must not rewrite the legacy file.
	code, _, errw := shim(t, "-dir", dir, "-compare", legacyPath)
	if !strings.Contains(errw, "no toolchain pin") {
		t.Fatalf("legacy pin warning absent:\n%s", errw)
	}
	if code != 6 {
		// Legacy entries have no justifications: surfaced as exit 6,
		// pushing callers toward -migrate.
		t.Fatalf("legacy compare = %d, want 6 (unjustified legacy entries)\n%s", code, errw)
	}
	raw, err := os.ReadFile(legacyPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(raw), perfgate.LegacyAllocHeader) {
		t.Fatal("shim rewrote the legacy baseline file; it must stay read-only")
	}

	// A new escape still outranks the justification exit code.
	writeKernel(t, dir, kernelEscapeMore)
	if code, _, _ := shim(t, "-dir", dir, "-compare", legacyPath); code != 3 {
		t.Fatal("new escape against legacy baseline should exit 3")
	}
}
