package crisprscan

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/fasta"
)

// streamFixture builds a multi-chromosome genome, samples guides with
// planted-adjacent hits, and serializes the genome to a FASTA blob.
func streamFixture(t *testing.T, seed int64) ([]byte, []Guide) {
	t.Helper()
	g := SynthesizeGenome(SynthConfig{Seed: seed, ChromLen: 40000, NumChroms: 3})
	guides, err := SampleGuides(g, 3, 20, "NGG", seed+1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := fasta.NewWriter(&buf, 0)
	for _, rec := range g.ToFasta() {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), guides
}

// tsvSink accumulates streamed sites exactly the way the CLI does:
// header once, then one row per yielded site.
func tsvSink(t *testing.T, buf *bytes.Buffer, withHeader bool) func(Site) error {
	t.Helper()
	if withHeader {
		if err := WriteSitesTSVHeader(buf); err != nil {
			t.Fatal(err)
		}
	}
	return func(s Site) error { return WriteSiteTSV(buf, s) }
}

func TestSearchStreamCheckpointResumeByteIdentical(t *testing.T) {
	blob, guides := streamFixture(t, 701)
	params := Params{MaxMismatches: 3}
	dir := t.TempDir()

	// Reference: one uninterrupted checkpointed run.
	var want bytes.Buffer
	wantStats, err := SearchStreamCheckpoint(context.Background(), bytes.NewReader(blob), guides,
		params, filepath.Join(dir, "full.ckpt"), nil, tsvSink(t, &want, true))
	if err != nil {
		t.Fatal(err)
	}
	if wantStats.Events == 0 || want.Len() == 0 {
		t.Skip("fixture produced no sites; pick a different seed")
	}

	// Interrupted run: cancel from the flush hook right after the first
	// chromosome's rows are down, so exactly one chromosome commits.
	ckpt := filepath.Join(dir, "resumable.ckpt")
	var got bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	flushes := 0
	flush := func() error {
		flushes++
		if flushes == 1 {
			cancel()
		}
		return nil
	}
	stats, err := SearchStreamCheckpoint(ctx, bytes.NewReader(blob), guides, params, ckpt,
		flush, tsvSink(t, &got, true))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: want wrapped context.Canceled, got %v", err)
	}
	if stats == nil {
		t.Fatal("interrupted run must return partial Stats")
	}

	// Resume on the same inputs: journaled chromosome is skipped, the
	// remaining rows are appended, and the concatenation is
	// byte-identical to the uninterrupted run.
	resumeStats, err := SearchStreamCheckpoint(context.Background(), bytes.NewReader(blob), guides,
		params, ckpt, nil, tsvSink(t, &got, false))
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("resumed output differs from uninterrupted run:\n got %d bytes\nwant %d bytes",
			got.Len(), want.Len())
	}
	// The resumed run must not have re-scanned the committed chromosome.
	if resumeStats.BytesScanned >= wantStats.BytesScanned {
		t.Fatalf("resume scanned %d bases, full run %d — journaled chromosome was re-scanned",
			resumeStats.BytesScanned, wantStats.BytesScanned)
	}
}

func TestSearchStreamCheckpointRejectsChangedParams(t *testing.T) {
	blob, guides := streamFixture(t, 702)
	params := Params{MaxMismatches: 2}
	ckpt := filepath.Join(t.TempDir(), "scan.ckpt")

	var sink bytes.Buffer
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	flush := func() error { cancel(); return nil }
	if _, err := SearchStreamCheckpoint(ctx, bytes.NewReader(blob), guides, params, ckpt,
		flush, tsvSink(t, &sink, true)); !errors.Is(err, context.Canceled) {
		t.Fatalf("setup run: want cancellation, got %v", err)
	}

	for name, p := range map[string]Params{
		"mismatches": {MaxMismatches: 3},
		"pam":        {MaxMismatches: 2, PAM: "NAG"},
		"engine":     {MaxMismatches: 2, Engine: EngineCasOffinder},
	} {
		_, err := SearchStreamCheckpoint(context.Background(), bytes.NewReader(blob), guides, p, ckpt,
			nil, func(Site) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "different parameters") {
			t.Errorf("%s change: resume must be rejected with a fingerprint error, got %v", name, err)
		}
	}
	// Changed guide set is rejected too.
	fewer := guides[:len(guides)-1]
	if _, err := SearchStreamCheckpoint(context.Background(), bytes.NewReader(blob), fewer, params, ckpt,
		nil, func(Site) error { return nil }); err == nil || !strings.Contains(err.Error(), "different parameters") {
		t.Errorf("guide change: resume must be rejected, got %v", err)
	}
}

func TestFingerprintParamsDefaultsApplied(t *testing.T) {
	guides := []Guide{{Name: "g0", Spacer: "acgtacgtacgtacgtacgt"}}
	// Explicit defaults and zero values must fingerprint identically,
	// and spacer case must not matter.
	a := FingerprintParams(guides, Params{})
	b := FingerprintParams([]Guide{{Name: "other", Spacer: "ACGTACGTACGTACGTACGT"}},
		Params{PAM: "NGG", Engine: EngineHyperscan})
	if a != b {
		t.Fatalf("default normalization broken: %s vs %s", a, b)
	}
	if a == FingerprintParams(guides, Params{PAM: "NAG"}) {
		t.Fatal("PAM change must change the fingerprint")
	}
}
