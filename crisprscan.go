// Package crisprscan finds potential CRISPR/Cas9 gRNA off-target sites
// in a reference genome using automata processing, reproducing the
// system of Bo, Dang, Sadredini & Skadron, "Searching for Potential
// gRNA Off-Target Sites for CRISPR/Cas9 Using Automata Processing
// Across Different Platforms" (HPCA 2018).
//
// The search compiles each guide into a Hamming-lattice nondeterministic
// finite automaton (protospacer with up to K mismatches, followed by an
// exactly matched PAM, both strands) and executes it on a selectable
// platform: measured CPU engines (the HyperScan-class bit-parallel
// engine and the Cas-OFFinder/CasOT baselines) or modeled accelerators
// (Micron AP, FPGA overlay, iNFAnt2-style GPU). All engines return the
// identical site set; they differ only in performance.
//
// Quick start:
//
//	g, _ := crisprscan.LoadGenome("genome.fa")
//	guides := []crisprscan.Guide{{Name: "g1", Spacer: "GGGTGGGGGGAGTTTGCTCC"}}
//	res, _ := crisprscan.Search(g, guides, crisprscan.Params{MaxMismatches: 3})
//	for _, site := range res.Sites {
//		fmt.Println(site.Chrom, site.Pos, site.Strand, site.Mismatches)
//	}
package crisprscan

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/cap-repro/crisprscan/internal/checkpoint"
	"github.com/cap-repro/crisprscan/internal/core"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/fasta"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
	"github.com/cap-repro/crisprscan/internal/report"
	"github.com/cap-repro/crisprscan/internal/seedindex"
)

// Genome is a loaded reference genome.
type Genome = genome.Genome

// Site is one resolved off-target site; see the fields' documentation
// in the report package.
type Site = report.Site

// BulgeSite is one bulge-tolerant site.
type BulgeSite = core.BulgeSite

// Stats describes a search execution (wall-clock, event counts, the
// instrumentation snapshot in Stats.Metrics and, for modeled
// accelerator platforms, the device-time breakdown).
type Stats = core.Stats

// MetricsRecorder accumulates instrumentation for one or more searches:
// per-phase timers, event counters, the chunk-latency sketch and
// optional trace spans. Construct with NewMetricsRecorder, attach via
// Params.Metrics, and read results from Stats.Metrics (or call Snapshot
// directly, e.g. mid-scan from another goroutine).
type MetricsRecorder = metrics.Recorder

// MetricsSnapshot is the immutable instrumentation record carried by
// Stats.Metrics; all fields serialize to stable JSON.
type MetricsSnapshot = metrics.Snapshot

// Tracer receives span start/end callbacks from an instrumented search;
// attach one with MetricsRecorder.SetTracer.
type Tracer = metrics.Tracer

// ChromeTracer renders spans in the Chrome trace-event JSON format
// (chrome://tracing, Perfetto, speedscope). See NewChromeTracer.
type ChromeTracer = metrics.ChromeTracer

// NewMetricsRecorder returns an empty metrics recorder.
func NewMetricsRecorder() *MetricsRecorder { return metrics.NewRecorder() }

// ProgressTracker follows a scan's advance through the genome for live
// operational telemetry: bytes scanned versus total, per-chromosome
// completion, EWMA throughput and ETA. Attach one via Params.Progress
// and call Snapshot from any goroutine while the scan runs; successive
// snapshots have non-decreasing Fraction, reaching exactly 1.0 when
// the scan completes.
type ProgressTracker = metrics.Progress

// ProgressSnapshot is one immutable view of a ProgressTracker.
type ProgressSnapshot = metrics.ProgressSnapshot

// NewProgressTracker returns an idle progress tracker.
func NewProgressTracker() *ProgressTracker { return metrics.NewProgress() }

// MetricsAggregator merges MetricsSnapshots across scans into one
// process-lifetime view — the backing store for Prometheus-style
// exposition, where counters must be monotonic across scrapes for the
// life of the process.
type MetricsAggregator = metrics.Aggregator

// NewMetricsAggregator returns an empty aggregator.
func NewMetricsAggregator() *MetricsAggregator { return metrics.NewAggregator() }

// NewChromeTracer starts a Chrome trace-event stream written to w; call
// Close after the search to finalize the JSON array.
func NewChromeTracer(w io.Writer) *ChromeTracer { return metrics.NewChromeTracer(w) }

// Engine selects the execution platform.
type Engine = core.EngineKind

// The available engines: the paper's six systems plus variants.
const (
	// EngineHyperscan is the measured CPU automata engine (default),
	// using the literal-prefilter hybrid path.
	EngineHyperscan = core.EngineHyperscan
	// EngineHyperscanBitap / EngineHyperscanNFA / EngineHyperscanDFA
	// select its pure-bitap, bitset-NFA and table-DFA execution paths.
	EngineHyperscanBitap = core.EngineHyperscanBitap
	EngineHyperscanNFA   = core.EngineHyperscanNFA
	EngineHyperscanDFA   = core.EngineHyperscanDFA
	// EngineHyperscanLazy runs the on-the-fly subset construction
	// (lazy DFA) execution path: DFA-speed scanning without the
	// up-front determinization cost on large pattern sets.
	EngineHyperscanLazy = core.EngineHyperscanLazy
	// EngineCasOffinder is the brute-force baseline (measured, CPU);
	// EngineCasOffinderGPU adds the analytic GPU timing model.
	EngineCasOffinder    = core.EngineCasOffinder
	EngineCasOffinderGPU = core.EngineCasOffinderGPU
	// EngineCasOT is the single-thread seed-region baseline;
	// EngineCasOTIndex its seed-index variant.
	EngineCasOT      = core.EngineCasOT
	EngineCasOTIndex = core.EngineCasOTIndex
	// EngineSeedIndex is the pigeonhole seed-index engine: attach a
	// persistent index via Params.SeedIndex (index once, query
	// millions), or let it self-index per chromosome when none is set.
	EngineSeedIndex = core.EngineSeedIndex
	// EngineAP, EngineFPGA and EngineInfant are the modeled
	// accelerator platforms.
	EngineAP     = core.EngineAP
	EngineFPGA   = core.EngineFPGA
	EngineInfant = core.EngineInfant
)

// Guide is one gRNA: a protospacer sequence (typically 20 nt, 5'→3',
// PAM-adjacent end last). IUPAC N is allowed (it matches anything and
// never counts as a mismatch).
type Guide struct {
	Name   string
	Spacer string
}

// Params configures Search. The zero value searches both strands for
// NGG sites with zero mismatches on the default CPU engine.
type Params struct {
	// MaxMismatches is the protospacer Hamming budget (paper: 1-5).
	MaxMismatches int
	// PAM is the IUPAC PAM pattern (default "NGG"; "NRG" and "NAG" are
	// common alternatives).
	PAM string
	// AltPAMs lists additional accepted PAMs of the same length, so one
	// search can cover NGG and NAG sites simultaneously.
	AltPAMs []string
	// PAM5 selects Cas12a/Cpf1 geometry: the PAM sits 5' of the spacer
	// (e.g. PAM "TTTV"). Default is Cas9's 3' PAM.
	PAM5 bool
	// Region restricts the search to "chrom" or "chrom:start-end"
	// (0-based half-open); positions stay in chromosome coordinates.
	Region string
	// PlusStrandOnly disables minus-strand search.
	PlusStrandOnly bool
	// Engine selects the platform (default EngineHyperscan).
	Engine Engine
	// Workers widens data-parallel engines (default 1).
	Workers int
	// SeedLen and MaxSeedMismatches enable CasOT's seed-region
	// constraint (both zero = unconstrained; then all engines agree).
	SeedLen           int
	MaxSeedMismatches int
	// MergeStates and Stride2 toggle the spatial-platform optimizations
	// the paper proposes.
	MergeStates bool
	Stride2     bool
	// SeedIndex, when non-nil, binds EngineSeedIndex to a persistent
	// genome index (BuildSeedIndex / LoadSeedIndex) so a scan touches
	// only candidate loci. The index must describe the genome being
	// scanned — validate with (*SeedIndex).ValidateGenome after loading
	// from disk; a mismatched chromosome fails the scan closed. Other
	// engines ignore the field.
	SeedIndex *SeedIndex
	// Metrics, when non-nil, is the recorder this search reports into —
	// supply one to attach a Tracer or to aggregate several searches.
	// When nil a private recorder is created; either way the result's
	// Stats.Metrics carries the final snapshot.
	Metrics *MetricsRecorder
	// Progress, when non-nil, is advanced live as the search runs:
	// per-chunk byte counts from the worker pools, chromosome
	// completion from the orchestrator. In-memory searches set the
	// exact total-bytes denominator; streaming callers should supply an
	// estimate (e.g. the FASTA file size) via SetTotalBytes. Nil
	// disables tracking at the cost of one nil check per chunk.
	Progress *ProgressTracker
}

// Result is a completed search: verified sites plus execution stats.
type Result struct {
	Sites []Site
	Stats Stats
}

// LoadGenome reads a (multi-)FASTA reference genome from a file.
func LoadGenome(path string) (*Genome, error) { return genome.LoadFasta(path) }

// ReadGenome reads FASTA from a stream.
func ReadGenome(r io.Reader) (*Genome, error) {
	recs, err := fasta.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return genome.FromFasta(recs)
}

// SeedIndex is a persistent genome seed index: the packed 2-bit
// sequence plus a k-mer seed table with per-seed posting lists, built
// once offline and shared across every scan of that reference (the
// index-once, query-millions shape). Build with BuildSeedIndex or the
// genomeindex CLI, persist with WriteFile, reload with LoadSeedIndex,
// and attach via Params.SeedIndex with Params.Engine = EngineSeedIndex.
// The indexed engine is hit-for-hit identical to the full-scan engines:
// candidates are always re-verified against the live sequence, and
// content hashes (ValidateGenome) detect a reference edited after
// indexing.
type SeedIndex = seedindex.Index

// BuildSeedIndex constructs the seed index for a loaded genome.
// seedLen 0 selects the default seed width.
func BuildSeedIndex(g *Genome, seedLen int) (*SeedIndex, error) {
	return seedindex.Build(g, seedLen)
}

// LoadSeedIndex reads a genomeindex-built index file, verifying its
// magic, version and every section checksum; damaged or version-skewed
// files fail closed here rather than producing silently wrong scans.
func LoadSeedIndex(path string) (*SeedIndex, error) {
	return seedindex.Load(path)
}

// SynthConfig re-exports the synthetic-genome generator configuration.
type SynthConfig = genome.SynthConfig

// SynthesizeGenome generates a deterministic random genome, the
// substitute for distributing a multi-gigabase reference (DESIGN.md).
func SynthesizeGenome(cfg SynthConfig) *Genome { return genome.Synthesize(cfg) }

// SampleGuides extracts n spacers of the given length that occur in the
// genome immediately 5' of a PAM site — the way real gRNAs are designed
// against on-target loci. It returns an error if the genome is too
// small to supply n guides.
func SampleGuides(g *Genome, n, spacerLen int, pamStr string, seed int64) ([]Guide, error) {
	pam, err := dna.ParsePattern(pamStr)
	if err != nil {
		return nil, err
	}
	raw := genome.SampleGuides(g, n, spacerLen, pam, seed)
	if len(raw) < n {
		return nil, fmt.Errorf("crisprscan: only %d/%d guides could be sampled", len(raw), n)
	}
	guides := make([]Guide, n)
	for i, r := range raw {
		guides[i] = Guide{Name: fmt.Sprintf("g%d", i), Spacer: r.String()}
	}
	return guides, nil
}

// parseGuides validates and converts guides.
func parseGuides(guides []Guide) ([]dna.Pattern, error) {
	if len(guides) == 0 {
		return nil, fmt.Errorf("crisprscan: no guides")
	}
	pats := make([]dna.Pattern, len(guides))
	for i, g := range guides {
		p, err := dna.ParsePattern(g.Spacer)
		if err != nil {
			return nil, fmt.Errorf("crisprscan: guide %q: %w", g.Name, err)
		}
		if len(p) != len(pats[0]) && i > 0 {
			return nil, fmt.Errorf("crisprscan: guide %q length %d differs from guide 0 (%d)", g.Name, len(p), len(pats[0]))
		}
		pats[i] = p
	}
	return pats, nil
}

// coreParams converts the public Params to the orchestrator's form.
func coreParams(p Params) core.Params {
	return core.Params{
		MaxMismatches:     p.MaxMismatches,
		PAM:               p.PAM,
		AltPAMs:           p.AltPAMs,
		PAM5:              p.PAM5,
		Region:            p.Region,
		PlusStrandOnly:    p.PlusStrandOnly,
		Engine:            p.Engine,
		Workers:           p.Workers,
		SeedLen:           p.SeedLen,
		MaxSeedMismatches: p.MaxSeedMismatches,
		MergeStates:       p.MergeStates,
		Stride2:           p.Stride2,
		SeedIndex:         p.SeedIndex,
		Metrics:           p.Metrics,
		Progress:          p.Progress,
	}
}

// Search finds every genomic site matching any guide within the
// mismatch budget, PAM-adjacent, on the selected engine. Sites are
// verified against the sequence, deduplicated and sorted.
func Search(g *Genome, guides []Guide, p Params) (*Result, error) {
	return SearchContext(context.Background(), g, guides, p)
}

// SearchContext is Search bounded by ctx: the scan honors cancellation
// and deadlines between chromosomes, and — on the data-parallel CPU
// engines — at chunk granularity inside a chromosome, so even a
// single-chromosome multi-gigabase scan aborts promptly. On
// cancellation the returned Result is non-nil and holds the sites and
// stats accumulated before the abort, and the error wraps
// context.Canceled or context.DeadlineExceeded (test with errors.Is).
func SearchContext(ctx context.Context, g *Genome, guides []Guide, p Params) (*Result, error) {
	pats, err := parseGuides(guides)
	if err != nil {
		return nil, err
	}
	res, err := core.SearchContext(ctx, g, pats, coreParams(p))
	if res == nil {
		return nil, err
	}
	return &Result{Sites: res.Sites, Stats: res.Stats}, err
}

// BulgeParams configures SearchBulge.
type BulgeParams struct {
	// MaxMismatches is the substitution budget.
	MaxMismatches int
	// MaxBulge is the combined budget for DNA bulges (extra genome
	// bases) and RNA bulges (skipped spacer positions), interior only.
	MaxBulge int
	// PAM defaults to NGG.
	PAM            string
	PlusStrandOnly bool
}

// SearchBulge finds bulge-tolerant off-target sites using the
// edit-distance automata (the paper's extension experiment). It always
// runs on the automata simulation engine.
func SearchBulge(g *Genome, guides []Guide, p BulgeParams) ([]BulgeSite, error) {
	pats, err := parseGuides(guides)
	if err != nil {
		return nil, err
	}
	return core.SearchBulge(g, pats, core.BulgeParams{
		MaxMismatches:  p.MaxMismatches,
		MaxBulge:       p.MaxBulge,
		PAM:            p.PAM,
		PlusStrandOnly: p.PlusStrandOnly,
	})
}

// WriteSitesTSV writes sites in a Cas-OFFinder-like TSV layout.
func WriteSitesTSV(w io.Writer, sites []Site) error { return report.WriteTSV(w, sites) }

// WriteSitesBED writes sites as BED6 intervals.
func WriteSitesBED(w io.Writer, sites []Site) error { return report.WriteBED(w, sites) }

// WriteSitesTSVHeader writes the TSV column header; pair it with
// WriteSiteTSV to emit rows incrementally from a SearchStream yield
// callback (constant memory, byte-identical to WriteSitesTSV).
func WriteSitesTSVHeader(w io.Writer) error { return report.WriteTSVHeader(w) }

// WriteSiteTSV writes one site as a TSV row.
func WriteSiteTSV(w io.Writer, s Site) error { return report.WriteTSVRow(w, s) }

// WriteSiteBED writes one site as a BED6 row.
func WriteSiteBED(w io.Writer, s Site) error { return report.WriteBEDRow(w, s) }

// SearchStream scans a FASTA stream one chromosome at a time, keeping
// memory proportional to the largest chromosome — the mode a full
// 3.1 Gbp reference requires. Verified sites are delivered to yield as
// each chromosome completes; returning an error from yield aborts the
// scan.
func SearchStream(r io.Reader, guides []Guide, p Params, yield func(Site) error) (*Stats, error) {
	return SearchStreamContext(context.Background(), r, guides, p, nil, yield)
}

// StreamControl customizes a streaming search for checkpoint/resume;
// see the core package's documentation of the identical type. A nil
// control streams every chromosome with no completion hook.
type StreamControl = core.StreamControl

// SearchStreamContext is SearchStream bounded by ctx and tunable with
// ctrl. Every site delivered to yield belongs to a fully completed
// chromosome: a chromosome aborted mid-scan (cancellation, engine
// fault) yields nothing, which is what makes chromosome-granularity
// checkpointing sound. On any error after startup the returned Stats
// is non-nil and describes the work completed before the failure; the
// error wraps its cause (context.Canceled, the reader's error, ...).
func SearchStreamContext(ctx context.Context, r io.Reader, guides []Guide, p Params, ctrl *StreamControl, yield func(Site) error) (*Stats, error) {
	pats, err := parseGuides(guides)
	if err != nil {
		return nil, err
	}
	p.Region = "" // regions apply to in-memory search only
	return core.SearchStreamContext(ctx, r, pats, coreParams(p), ctrl, yield)
}

// SearchGenomeStreamContext runs the streaming-shaped search over an
// already-loaded genome: chromosomes are visited in genome order
// through the identical per-chromosome pipeline as SearchStreamContext,
// so the two produce byte-identical output for the same reference. A
// long-lived service uses it to keep one parsed genome resident and
// share it across concurrent (checkpointed) scans instead of re-reading
// multi-gigabyte FASTA per request.
func SearchGenomeStreamContext(ctx context.Context, g *Genome, guides []Guide, p Params, ctrl *StreamControl, yield func(Site) error) (*Stats, error) {
	pats, err := parseGuides(guides)
	if err != nil {
		return nil, err
	}
	p.Region = "" // regions apply to in-memory Search only
	return core.SearchGenomeStreamContext(ctx, g, pats, coreParams(p), ctrl, yield)
}

// FingerprintParams renders the checkpoint identity of a (guides,
// params) combination: every knob that changes the produced site set
// participates, so two searches fingerprint equal exactly when their
// outputs are interchangeable.
func FingerprintParams(guides []Guide, p Params) string {
	spacers := make([]string, len(guides))
	for i, g := range guides {
		spacers[i] = strings.ToUpper(g.Spacer)
	}
	eng := p.Engine
	if eng == "" {
		eng = EngineHyperscan
	}
	pam := p.PAM
	if pam == "" {
		pam = "NGG"
	}
	alts := append([]string(nil), p.AltPAMs...)
	fields := checkpoint.CanonicalFields(spacers, map[string]string{
		"k":        strconv.Itoa(p.MaxMismatches),
		"pam":      strings.ToUpper(pam),
		"altpams":  strings.ToUpper(strings.Join(alts, ",")),
		"pam5":     strconv.FormatBool(p.PAM5),
		"plusonly": strconv.FormatBool(p.PlusStrandOnly),
		"engine":   string(eng),
		"seed":     strconv.Itoa(p.SeedLen) + "/" + strconv.Itoa(p.MaxSeedMismatches),
	})
	return checkpoint.Fingerprint(fields...)
}

// SearchStreamCheckpoint is SearchStreamContext with chromosome-
// granularity checkpoint/resume journaled at path: chromosomes the
// journal already lists are skipped, and each newly completed
// chromosome is committed to the journal (atomic write-rename) after
// its sites have been yielded — and after flush, when non-nil, has
// succeeded, so callers can force their output downstream of yield to
// stable storage before the chromosome is marked done (at-least-once
// delivery). A journal written under different guides or Params is
// rejected with a fingerprint error before any scanning starts.
func SearchStreamCheckpoint(ctx context.Context, r io.Reader, guides []Guide, p Params, path string, flush func() error, yield func(Site) error) (*Stats, error) {
	j, err := checkpoint.Open(path, FingerprintParams(guides, p))
	if err != nil {
		return nil, err
	}
	ctrl := &StreamControl{
		SkipChrom: j.Done,
		ChromDone: func(name string, sites int, scannedBases int64) error {
			if flush != nil {
				if err := flush(); err != nil {
					return err
				}
			}
			return j.Commit(checkpoint.Entry{Chrom: name, Sites: sites, ScannedBases: scannedBases})
		},
	}
	return SearchStreamContext(ctx, r, guides, p, ctrl, yield)
}
