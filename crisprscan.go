// Package crisprscan finds potential CRISPR/Cas9 gRNA off-target sites
// in a reference genome using automata processing, reproducing the
// system of Bo, Dang, Sadredini & Skadron, "Searching for Potential
// gRNA Off-Target Sites for CRISPR/Cas9 Using Automata Processing
// Across Different Platforms" (HPCA 2018).
//
// The search compiles each guide into a Hamming-lattice nondeterministic
// finite automaton (protospacer with up to K mismatches, followed by an
// exactly matched PAM, both strands) and executes it on a selectable
// platform: measured CPU engines (the HyperScan-class bit-parallel
// engine and the Cas-OFFinder/CasOT baselines) or modeled accelerators
// (Micron AP, FPGA overlay, iNFAnt2-style GPU). All engines return the
// identical site set; they differ only in performance.
//
// Quick start:
//
//	g, _ := crisprscan.LoadGenome("genome.fa")
//	guides := []crisprscan.Guide{{Name: "g1", Spacer: "GGGTGGGGGGAGTTTGCTCC"}}
//	res, _ := crisprscan.Search(g, guides, crisprscan.Params{MaxMismatches: 3})
//	for _, site := range res.Sites {
//		fmt.Println(site.Chrom, site.Pos, site.Strand, site.Mismatches)
//	}
package crisprscan

import (
	"fmt"
	"io"

	"github.com/cap-repro/crisprscan/internal/core"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/fasta"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/report"
)

// Genome is a loaded reference genome.
type Genome = genome.Genome

// Site is one resolved off-target site; see the fields' documentation
// in the report package.
type Site = report.Site

// BulgeSite is one bulge-tolerant site.
type BulgeSite = core.BulgeSite

// Stats describes a search execution (wall-clock, event counts and, for
// modeled accelerator platforms, the device-time breakdown).
type Stats = core.Stats

// Engine selects the execution platform.
type Engine = core.EngineKind

// The available engines: the paper's six systems plus variants.
const (
	// EngineHyperscan is the measured CPU automata engine (default),
	// using the literal-prefilter hybrid path.
	EngineHyperscan = core.EngineHyperscan
	// EngineHyperscanBitap / EngineHyperscanNFA / EngineHyperscanDFA
	// select its pure-bitap, bitset-NFA and table-DFA execution paths.
	EngineHyperscanBitap = core.EngineHyperscanBitap
	EngineHyperscanNFA   = core.EngineHyperscanNFA
	EngineHyperscanDFA   = core.EngineHyperscanDFA
	// EngineHyperscanLazy runs the on-the-fly subset construction
	// (lazy DFA) execution path: DFA-speed scanning without the
	// up-front determinization cost on large pattern sets.
	EngineHyperscanLazy = core.EngineHyperscanLazy
	// EngineCasOffinder is the brute-force baseline (measured, CPU);
	// EngineCasOffinderGPU adds the analytic GPU timing model.
	EngineCasOffinder    = core.EngineCasOffinder
	EngineCasOffinderGPU = core.EngineCasOffinderGPU
	// EngineCasOT is the single-thread seed-region baseline;
	// EngineCasOTIndex its seed-index variant.
	EngineCasOT      = core.EngineCasOT
	EngineCasOTIndex = core.EngineCasOTIndex
	// EngineAP, EngineFPGA and EngineInfant are the modeled
	// accelerator platforms.
	EngineAP     = core.EngineAP
	EngineFPGA   = core.EngineFPGA
	EngineInfant = core.EngineInfant
)

// Guide is one gRNA: a protospacer sequence (typically 20 nt, 5'→3',
// PAM-adjacent end last). IUPAC N is allowed (it matches anything and
// never counts as a mismatch).
type Guide struct {
	Name   string
	Spacer string
}

// Params configures Search. The zero value searches both strands for
// NGG sites with zero mismatches on the default CPU engine.
type Params struct {
	// MaxMismatches is the protospacer Hamming budget (paper: 1-5).
	MaxMismatches int
	// PAM is the IUPAC PAM pattern (default "NGG"; "NRG" and "NAG" are
	// common alternatives).
	PAM string
	// AltPAMs lists additional accepted PAMs of the same length, so one
	// search can cover NGG and NAG sites simultaneously.
	AltPAMs []string
	// PAM5 selects Cas12a/Cpf1 geometry: the PAM sits 5' of the spacer
	// (e.g. PAM "TTTV"). Default is Cas9's 3' PAM.
	PAM5 bool
	// Region restricts the search to "chrom" or "chrom:start-end"
	// (0-based half-open); positions stay in chromosome coordinates.
	Region string
	// PlusStrandOnly disables minus-strand search.
	PlusStrandOnly bool
	// Engine selects the platform (default EngineHyperscan).
	Engine Engine
	// Workers widens data-parallel engines (default 1).
	Workers int
	// SeedLen and MaxSeedMismatches enable CasOT's seed-region
	// constraint (both zero = unconstrained; then all engines agree).
	SeedLen           int
	MaxSeedMismatches int
	// MergeStates and Stride2 toggle the spatial-platform optimizations
	// the paper proposes.
	MergeStates bool
	Stride2     bool
}

// Result is a completed search: verified sites plus execution stats.
type Result struct {
	Sites []Site
	Stats Stats
}

// LoadGenome reads a (multi-)FASTA reference genome from a file.
func LoadGenome(path string) (*Genome, error) { return genome.LoadFasta(path) }

// ReadGenome reads FASTA from a stream.
func ReadGenome(r io.Reader) (*Genome, error) {
	recs, err := fasta.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return genome.FromFasta(recs)
}

// SynthConfig re-exports the synthetic-genome generator configuration.
type SynthConfig = genome.SynthConfig

// SynthesizeGenome generates a deterministic random genome, the
// substitute for distributing a multi-gigabase reference (DESIGN.md).
func SynthesizeGenome(cfg SynthConfig) *Genome { return genome.Synthesize(cfg) }

// SampleGuides extracts n spacers of the given length that occur in the
// genome immediately 5' of a PAM site — the way real gRNAs are designed
// against on-target loci. It returns an error if the genome is too
// small to supply n guides.
func SampleGuides(g *Genome, n, spacerLen int, pamStr string, seed int64) ([]Guide, error) {
	pam, err := dna.ParsePattern(pamStr)
	if err != nil {
		return nil, err
	}
	raw := genome.SampleGuides(g, n, spacerLen, pam, seed)
	if len(raw) < n {
		return nil, fmt.Errorf("crisprscan: only %d/%d guides could be sampled", len(raw), n)
	}
	guides := make([]Guide, n)
	for i, r := range raw {
		guides[i] = Guide{Name: fmt.Sprintf("g%d", i), Spacer: r.String()}
	}
	return guides, nil
}

// parseGuides validates and converts guides.
func parseGuides(guides []Guide) ([]dna.Pattern, error) {
	if len(guides) == 0 {
		return nil, fmt.Errorf("crisprscan: no guides")
	}
	pats := make([]dna.Pattern, len(guides))
	for i, g := range guides {
		p, err := dna.ParsePattern(g.Spacer)
		if err != nil {
			return nil, fmt.Errorf("crisprscan: guide %q: %w", g.Name, err)
		}
		if len(p) != len(pats[0]) && i > 0 {
			return nil, fmt.Errorf("crisprscan: guide %q length %d differs from guide 0 (%d)", g.Name, len(p), len(pats[0]))
		}
		pats[i] = p
	}
	return pats, nil
}

// Search finds every genomic site matching any guide within the
// mismatch budget, PAM-adjacent, on the selected engine. Sites are
// verified against the sequence, deduplicated and sorted.
func Search(g *Genome, guides []Guide, p Params) (*Result, error) {
	pats, err := parseGuides(guides)
	if err != nil {
		return nil, err
	}
	res, err := core.Search(g, pats, core.Params{
		MaxMismatches:     p.MaxMismatches,
		PAM:               p.PAM,
		AltPAMs:           p.AltPAMs,
		PAM5:              p.PAM5,
		Region:            p.Region,
		PlusStrandOnly:    p.PlusStrandOnly,
		Engine:            p.Engine,
		Workers:           p.Workers,
		SeedLen:           p.SeedLen,
		MaxSeedMismatches: p.MaxSeedMismatches,
		MergeStates:       p.MergeStates,
		Stride2:           p.Stride2,
	})
	if err != nil {
		return nil, err
	}
	return &Result{Sites: res.Sites, Stats: res.Stats}, nil
}

// BulgeParams configures SearchBulge.
type BulgeParams struct {
	// MaxMismatches is the substitution budget.
	MaxMismatches int
	// MaxBulge is the combined budget for DNA bulges (extra genome
	// bases) and RNA bulges (skipped spacer positions), interior only.
	MaxBulge int
	// PAM defaults to NGG.
	PAM            string
	PlusStrandOnly bool
}

// SearchBulge finds bulge-tolerant off-target sites using the
// edit-distance automata (the paper's extension experiment). It always
// runs on the automata simulation engine.
func SearchBulge(g *Genome, guides []Guide, p BulgeParams) ([]BulgeSite, error) {
	pats, err := parseGuides(guides)
	if err != nil {
		return nil, err
	}
	return core.SearchBulge(g, pats, core.BulgeParams{
		MaxMismatches:  p.MaxMismatches,
		MaxBulge:       p.MaxBulge,
		PAM:            p.PAM,
		PlusStrandOnly: p.PlusStrandOnly,
	})
}

// WriteSitesTSV writes sites in a Cas-OFFinder-like TSV layout.
func WriteSitesTSV(w io.Writer, sites []Site) error { return report.WriteTSV(w, sites) }

// WriteSitesBED writes sites as BED6 intervals.
func WriteSitesBED(w io.Writer, sites []Site) error { return report.WriteBED(w, sites) }

// SearchStream scans a FASTA stream one chromosome at a time, keeping
// memory proportional to the largest chromosome — the mode a full
// 3.1 Gbp reference requires. Verified sites are delivered to yield as
// each chromosome completes; returning an error from yield aborts the
// scan.
func SearchStream(r io.Reader, guides []Guide, p Params, yield func(Site) error) (*Stats, error) {
	pats, err := parseGuides(guides)
	if err != nil {
		return nil, err
	}
	return core.SearchStream(r, pats, core.Params{
		MaxMismatches:     p.MaxMismatches,
		PAM:               p.PAM,
		AltPAMs:           p.AltPAMs,
		PAM5:              p.PAM5,
		PlusStrandOnly:    p.PlusStrandOnly,
		Engine:            p.Engine,
		Workers:           p.Workers,
		SeedLen:           p.SeedLen,
		MaxSeedMismatches: p.MaxSeedMismatches,
		MergeStates:       p.MergeStates,
		Stride2:           p.Stride2,
	}, yield)
}
