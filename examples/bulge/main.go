// Bulge-tolerant search: the edit-distance automata extension. A guide
// is searched against a genome into which a DNA-bulge variant (one
// extra genomic base inside the protospacer) and an RNA-bulge variant
// (one protospacer base missing from the genome) have been planted —
// sites a mismatch-only search cannot see at k=0.
//
//	go run ./examples/bulge
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/cap-repro/crisprscan"
	"github.com/cap-repro/crisprscan/internal/dna"
)

func main() {
	const spacer = "GACGCATAAAGATGAGACGC"

	// Hand-build a small genome with the two bulge variants.
	guide := dna.MustParseSeq(spacer)
	deletion := append(append(dna.Seq{}, guide[:10]...), guide[11:]...) // RNA bulge
	insertion := append(append(dna.Seq{}, guide[:10]...), dna.T)        // DNA bulge
	insertion = append(insertion, guide[10:]...)

	var sb strings.Builder
	filler := strings.Repeat("TCTCAATCAA", 30)
	sb.WriteString(filler)
	sb.WriteString(deletion.String() + "AGG")
	sb.WriteString(filler)
	sb.WriteString(insertion.String() + "TGG")
	sb.WriteString(filler)
	g, err := crisprscan.ReadGenome(strings.NewReader(">chrDemo\n" + sb.String() + "\n"))
	if err != nil {
		log.Fatal(err)
	}

	guides := []crisprscan.Guide{{Name: "demo", Spacer: spacer}}

	// Mismatch-only search at k=0 sees nothing.
	plain, err := crisprscan.Search(g, guides, crisprscan.Params{MaxMismatches: 0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mismatch-only search (k=0): %d sites\n", len(plain.Sites))

	// The edit automaton with one bulge finds both variants.
	sites, err := crisprscan.SearchBulge(g, guides, crisprscan.BulgeParams{
		MaxMismatches: 0,
		MaxBulge:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bulge-tolerant search (k=0, bulge<=1): %d sites\n\n", len(sites))
	for _, s := range sites {
		kind := "DNA bulge (extra genomic base)"
		if s.Len < len(spacer)+3 {
			kind = "RNA bulge (skipped spacer base)"
		}
		fmt.Printf("  %s:%d %c len=%d mism=%d bulges=%d  %s\n    %s\n",
			s.Chrom, s.Pos, s.Strand, s.Len, s.Mismatches, s.Bulges, kind, s.SiteSeq)
	}
	fmt.Println("\nguide:", spacer)
}
