// Quickstart: search a small genome for one guide's off-target sites.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/cap-repro/crisprscan"
)

func main() {
	// A deterministic 1 Mbp synthetic genome stands in for a reference
	// FASTA (crisprscan.LoadGenome loads real ones). The repeat
	// structure the generator plants is what produces off-target hits.
	g := crisprscan.SynthesizeGenome(crisprscan.SynthConfig{Seed: 1, ChromLen: 1_000_000, RepeatRate: 0.2})

	// Design a guide against an actual genomic locus (20 nt + NGG), as
	// one would with a real genome.
	guides, err := crisprscan.SampleGuides(g, 1, 20, "NGG", 3)
	if err != nil {
		log.Fatal(err)
	}

	res, err := crisprscan.Search(g, guides, crisprscan.Params{
		MaxMismatches: 4, // up to 4 spacer mismatches
		PAM:           "NGG",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("engine %s scanned %d bp in %.3f s and found %d sites:\n\n",
		res.Stats.Engine, g.TotalLen(), res.Stats.ElapsedSec, len(res.Sites))
	if err := crisprscan.WriteSitesTSV(os.Stdout, res.Sites); err != nil {
		log.Fatal(err)
	}
}
