// Genome-wide scan of a guide library with planted ground truth: the
// workload the paper's accuracy discussion implies. A synthetic genome
// receives known off-target sites for every guide; the search must
// recover 100% of them (and typically finds additional background sites
// the random sequence happens to contain).
//
//	go run ./examples/genomewide
package main

import (
	"fmt"
	"log"

	"github.com/cap-repro/crisprscan"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/report"
)

func main() {
	const (
		numGuides = 25
		chromLen  = 2_000_000
		maxMism   = 3
	)
	g := genome.Synthesize(genome.SynthConfig{Seed: 11, ChromLen: chromLen, NumChroms: 3})
	pam := dna.MustParsePattern("NGG")

	// Sample guides that have an on-target site, as designed gRNAs do.
	raw := genome.SampleGuides(g, numGuides, 20, pam, 12)
	plan := genome.PlantPlan{0: 1, 1: 2, 2: 2, 3: 2}
	planted, err := genome.Plant(g, raw, pam, plan, 13)
	if err != nil {
		log.Fatal(err)
	}

	guides := make([]crisprscan.Guide, len(raw))
	for i, r := range raw {
		guides[i] = crisprscan.Guide{Name: fmt.Sprintf("g%02d", i), Spacer: r.String()}
	}

	res, err := crisprscan.Search(g, guides, crisprscan.Params{
		MaxMismatches: maxMism,
		Workers:       8, // parallel CPU scan
	})
	if err != nil {
		log.Fatal(err)
	}

	// Verify recall of the planted truth.
	found := make(map[string]bool, len(res.Sites))
	for _, s := range res.Sites {
		found[fmt.Sprintf("%d/%s/%d/%c", s.Guide, s.Chrom, s.Pos, s.Strand)] = true
	}
	missed := 0
	for _, p := range planted {
		if !found[fmt.Sprintf("%d/%s/%d/%c", p.Guide, p.Chrom, p.Pos, p.Strand)] {
			missed++
		}
	}

	hist := report.Histogram(res.Sites)
	fmt.Printf("genome: %d chromosomes, %d bp\n", len(g.Chroms), g.TotalLen())
	fmt.Printf("guides: %d (20nt + NGG, both strands, k<=%d)\n", len(guides), maxMism)
	fmt.Printf("sites found: %d (%.3f s on %s)\n", len(res.Sites), res.Stats.ElapsedSec, res.Stats.Engine)
	for k := 0; k <= maxMism; k++ {
		fmt.Printf("  %d mismatches: %d sites\n", k, hist[k])
	}
	fmt.Printf("planted ground truth: %d sites, recall %d/%d",
		len(planted), len(planted)-missed, len(planted))
	if missed == 0 {
		fmt.Println("  (100% — as every engine must)")
	} else {
		fmt.Println("  *** RECALL FAILURE ***")
	}
}
