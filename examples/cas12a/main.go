// Cas12a (Cpf1) off-target search: the same automata machinery with the
// enzyme's 5' TTTV PAM geometry — the PAM chain simply sits at the
// automaton's entry instead of its exit (the orientation machinery the
// minus strand already required). Also demonstrates the per-guide
// specificity summary used to rank guides.
//
//	go run ./examples/cas12a
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/cap-repro/crisprscan"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/report"
)

func main() {
	g := crisprscan.SynthesizeGenome(crisprscan.SynthConfig{
		Seed: 31, ChromLen: 2_000_000, RepeatRate: 0.15,
	})

	// Sample Cas12a guides: 23-nt spacers immediately 3' of a TTTV PAM.
	// SampleGuides finds spacers 5' of a PAM, so sample against the
	// minus strand's view: a plus-strand TTTV+spacer site reads, on the
	// minus strand, revcomp(spacer)+BAAA. Simpler: scan directly here.
	guides := sampleCas12a(g, 8)
	if len(guides) == 0 {
		log.Fatal("no Cas12a sites found in the synthetic genome")
	}

	res, err := crisprscan.Search(g, guides, crisprscan.Params{
		MaxMismatches: 3,
		PAM:           "TTTV",
		PAM5:          true, // Cas12a: PAM precedes the spacer
		Workers:       4,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Cas12a search: %d guides (23nt, TTTV 5' PAM), genome %d bp, k<=3\n", len(guides), g.TotalLen())
	fmt.Printf("sites found: %d in %.3f s on %s\n\n", len(res.Sites), res.Stats.ElapsedSec, res.Stats.Engine)

	summaries := report.Summarize(res.Sites, len(guides))
	fmt.Println("per-guide specificity (most specific first):")
	if err := report.WriteSummary(os.Stdout, orderSummaries(summaries), 3); err != nil {
		log.Fatal(err)
	}
}

// sampleCas12a extracts spacers that occur 3' of a genomic TTTV.
func sampleCas12a(g *crisprscan.Genome, n int) []crisprscan.Guide {
	const spacerLen = 23
	tttv := dna.MustParsePattern("TTTV")
	var guides []crisprscan.Guide
	for _, c := range g.Chroms {
		for i := 0; i+4+spacerLen <= len(c.Seq) && len(guides) < n; i += 997 { // stride for diversity
			spacer := c.Seq[i+4 : i+4+spacerLen]
			if tttv.Matches(c.Seq[i:i+4]) && !spacer.HasAmbiguous() {
				guides = append(guides, crisprscan.Guide{
					Name:   fmt.Sprintf("cas12a-g%d", len(guides)),
					Spacer: spacer.String(),
				})
			}
		}
	}
	return guides
}

// orderSummaries applies the specificity ranking.
func orderSummaries(in []report.GuideSummary) []report.GuideSummary {
	order := report.RankBySpecificity(in)
	out := make([]report.GuideSummary, len(order))
	for rank, gi := range order {
		out[rank] = in[gi]
	}
	return out
}
