// Cross-platform comparison: the paper's headline experiment in
// miniature. One workload is executed on all six systems — two measured
// CPU engines (CasOT, the HyperScan-class automata engine) and four
// modeled accelerators (Cas-OFFinder's GPU, iNFAnt2, FPGA overlay,
// Micron AP) — and every system must return the identical site count
// while differing enormously in (modeled or measured) kernel time.
//
//	go run ./examples/platforms
package main

import (
	"fmt"
	"log"

	"github.com/cap-repro/crisprscan"
)

func main() {
	g := crisprscan.SynthesizeGenome(crisprscan.SynthConfig{Seed: 21, ChromLen: 1_000_000, RepeatRate: 0.15})
	guides, err := crisprscan.SampleGuides(g, 5, 20, "NGG", 22)
	if err != nil {
		log.Fatal(err)
	}

	engines := []crisprscan.Engine{
		crisprscan.EngineCasOT,
		crisprscan.EngineCasOffinderGPU,
		crisprscan.EngineHyperscan,
		crisprscan.EngineInfant,
		crisprscan.EngineFPGA,
		crisprscan.EngineAP,
	}

	fmt.Printf("%-18s %8s %14s %14s %10s\n", "engine", "sites", "measured (s)", "device est (s)", "STEs/LUTs")
	var refSites int
	for i, e := range engines {
		res, err := crisprscan.Search(g, guides, crisprscan.Params{
			MaxMismatches: 3,
			Engine:        e,
			MergeStates:   true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			refSites = len(res.Sites)
		} else if len(res.Sites) != refSites {
			log.Fatalf("%s returned %d sites, reference %d — engines must agree", e, len(res.Sites), refSites)
		}
		device := "-"
		resources := "-"
		if res.Stats.Modeled != nil {
			device = fmt.Sprintf("%.6f", res.Stats.Modeled.Kernel)
		}
		if res.Stats.Resources != nil && res.Stats.Resources.States > 0 {
			resources = fmt.Sprintf("%d", res.Stats.Resources.States)
		}
		fmt.Printf("%-18s %8d %14.3f %14s %10s\n",
			res.Stats.Engine, len(res.Sites), res.Stats.ElapsedSec, device, resources)
	}
	fmt.Println("\nAll engines agree on the site set; they differ only in where the time goes.")
	fmt.Println("Run `go run ./cmd/benchtab -scale test` for the full E1..E14 evaluation series.")
}
