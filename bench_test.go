package crisprscan

// Benchmark suite: one benchmark per evaluation table/figure (E1..E14,
// regenerating the same rows cmd/benchtab prints) plus per-engine
// throughput benchmarks with bytes/sec accounting. Run with:
//
//	go test -bench=. -benchmem
//
// The E-series benchmarks execute at a reduced scale so the whole suite
// completes in minutes; cmd/benchtab -scale default|large runs the
// paper-sized sweeps.

import (
	"io"
	"testing"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/bench"
	"github.com/cap-repro/crisprscan/internal/core"
	"github.com/cap-repro/crisprscan/internal/dfa"
	"github.com/cap-repro/crisprscan/internal/hscan"
)

// benchScale keeps the in-test E-series fast; benchtab runs the real
// profiles.
var benchScale = bench.Scale{
	Name: "gotest", GenomeLen: 200_000,
	GenomeSet: []int{50_000, 100_000, 200_000},
	GuideSet:  []int{2, 5, 10}, Guides: 5,
	KSet: []int{1, 2, 3}, K: 2,
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(id, benchScale, io.Discard, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1AutomataSize regenerates the automata characterization
// table (states, STEs, LUTs, DFA sizes per guide and budget).
func BenchmarkE1AutomataSize(b *testing.B) { runExperiment(b, "1") }

// BenchmarkE2KernelVsK regenerates the main figure: kernel time versus
// mismatch budget for all six systems.
func BenchmarkE2KernelVsK(b *testing.B) { runExperiment(b, "2") }

// BenchmarkE3KernelVsGuides regenerates the guide-count sweep.
func BenchmarkE3KernelVsGuides(b *testing.B) { runExperiment(b, "3") }

// BenchmarkE4Headline regenerates the headline speedup comparisons.
func BenchmarkE4Headline(b *testing.B) { runExperiment(b, "4") }

// BenchmarkE5GenomeScaling regenerates the genome-size sweep.
func BenchmarkE5GenomeScaling(b *testing.B) { runExperiment(b, "5") }

// BenchmarkE6Breakdown regenerates the end-to-end breakdown table.
func BenchmarkE6Breakdown(b *testing.B) { runExperiment(b, "6") }

// BenchmarkE7APCapacity regenerates the AP capacity/multi-pass study.
func BenchmarkE7APCapacity(b *testing.B) { runExperiment(b, "7") }

// BenchmarkE8PrefixMerge regenerates the state-merging ablation.
func BenchmarkE8PrefixMerge(b *testing.B) { runExperiment(b, "8") }

// BenchmarkE9Multistride regenerates the 2-striding ablation.
func BenchmarkE9Multistride(b *testing.B) { runExperiment(b, "9") }

// BenchmarkE10Reporting regenerates the reporting-bottleneck study.
func BenchmarkE10Reporting(b *testing.B) { runExperiment(b, "10") }

// BenchmarkE12Bulge regenerates the bulge-tolerant search study.
func BenchmarkE12Bulge(b *testing.B) { runExperiment(b, "12") }

// BenchmarkE13SeedIndexBlowup regenerates the measured seed-enumeration
// blowup comparison.
func BenchmarkE13SeedIndexBlowup(b *testing.B) { runExperiment(b, "13") }

// --- per-engine throughput benchmarks -------------------------------

// engineBench measures one engine's scan throughput over a fixed
// workload (bytes/sec = genome bases per second).
func engineBench(b *testing.B, kind core.EngineKind, guides, k int) {
	b.Helper()
	w := bench.NewWorkload(1_000_000, guides, k, 99)
	specs := w.Specs()
	e, err := core.NewEngine(kind, specs, core.Params{MaxMismatches: k, Workers: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(w.Genome.TotalLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ci := range w.Genome.Chroms {
			if err := e.ScanChrom(&w.Genome.Chroms[ci], func(automata.Report) {}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkEngineHyperscanPrefilter(b *testing.B) { engineBench(b, core.EngineHyperscan, 20, 3) }
func BenchmarkEngineHyperscanBitap(b *testing.B)     { engineBench(b, core.EngineHyperscanBitap, 20, 3) }
func BenchmarkEngineCasOffinderCPU(b *testing.B)     { engineBench(b, core.EngineCasOffinder, 20, 3) }
func BenchmarkEngineCasOT(b *testing.B)              { engineBench(b, core.EngineCasOT, 20, 3) }
func BenchmarkEngineCasOTIndex(b *testing.B)         { engineBench(b, core.EngineCasOTIndex, 20, 2) }

// BenchmarkNFASimulation measures the shared bitset simulator (the
// functional path of the AP/FPGA models) on a 5-guide network.
func BenchmarkNFASimulation(b *testing.B) {
	w := bench.NewWorkload(200_000, 5, 3, 101)
	e, err := hscan.New(w.Specs(), hscan.ModeNFA)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(w.Genome.TotalLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ci := range w.Genome.Chroms {
			if err := e.ScanChrom(&w.Genome.Chroms[ci], func(automata.Report) {}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDFAScan measures the table-driven DFA path on one guide.
func BenchmarkDFAScan(b *testing.B) {
	w := bench.NewWorkload(1_000_000, 1, 2, 102)
	e, err := hscan.New(w.Specs(), hscan.ModeDFA)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(w.Genome.TotalLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for ci := range w.Genome.Chroms {
			if err := e.ScanChrom(&w.Genome.Chroms[ci], func(automata.Report) {}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSubsetConstruction measures determinization of a k=3 guide
// automaton (the compile-side cost E1 tabulates).
func BenchmarkSubsetConstruction(b *testing.B) {
	w := bench.NewWorkload(50_000, 1, 3, 103)
	n, err := automata.CompileHamming(w.Guides[0], automata.CompileOptions{MaxMismatches: 3, PAM: w.PAM, Code: 0})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := dfa.FromNFA(n, dfa.BuildOptions{})
		if err != nil {
			b.Fatal(err)
		}
		_ = dfa.Minimize(d)
	}
}

// BenchmarkMergeEquivalent measures the spatial state-merging transform
// on a 20-guide union.
func BenchmarkMergeEquivalent(b *testing.B) {
	w := bench.NewWorkload(50_000, 20, 3, 104)
	var parts []*automata.NFA
	for i, g := range w.Guides {
		n, err := automata.CompileHamming(g, automata.CompileOptions{MaxMismatches: 3, PAM: w.PAM, Code: int32(i)})
		if err != nil {
			b.Fatal(err)
		}
		parts = append(parts, n)
	}
	u, err := automata.UnionAll("bench", parts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = automata.MergeEquivalent(u)
	}
}

// BenchmarkMultistride2 measures the 2-striding transform.
func BenchmarkMultistride2(b *testing.B) {
	w := bench.NewWorkload(50_000, 5, 3, 105)
	var parts []*automata.NFA
	for i, g := range w.Guides {
		n, err := automata.CompileHamming(g, automata.CompileOptions{MaxMismatches: 3, PAM: w.PAM, Code: int32(i)})
		if err != nil {
			b.Fatal(err)
		}
		parts = append(parts, n)
	}
	u, err := automata.UnionAll("bench", parts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := automata.Multistride2(u); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSearch measures the public API path end to end.
func BenchmarkEndToEndSearch(b *testing.B) {
	g := SynthesizeGenome(SynthConfig{Seed: 106, ChromLen: 1_000_000})
	guides, err := SampleGuides(g, 10, 20, "NGG", 107)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(g.TotalLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Search(g, guides, Params{MaxMismatches: 3, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBulgeSearch measures the edit-automata path (E12's kernel).
func BenchmarkBulgeSearch(b *testing.B) {
	g := SynthesizeGenome(SynthConfig{Seed: 108, ChromLen: 100_000})
	guides, err := SampleGuides(g, 3, 20, "NGG", 109)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(g.TotalLen()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SearchBulge(g, guides, BulgeParams{MaxMismatches: 1, MaxBulge: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// Silence unused-import drift if engine sets change.
var _ = arch.PatternSpec{}

// BenchmarkE14FutureHardware regenerates the future-hardware projection.
func BenchmarkE14FutureHardware(b *testing.B) { runExperiment(b, "14") }
