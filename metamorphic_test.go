package crisprscan

import (
	"fmt"
	"sort"
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

// The metamorphic battery checks invariances of the search under input
// transformations whose effect on the output is known exactly — no
// oracle needed beyond the transformation algebra itself. Each property
// runs on a measured engine and a modeled engine so both execution
// families are covered.

var metamorphicEngines = []Engine{EngineHyperscan, EngineCasOffinder, EngineAP, EngineSeedIndex}

func metamorphicFixture(t *testing.T) (*Genome, []Guide) {
	t.Helper()
	g := SynthesizeGenome(SynthConfig{Seed: 501, ChromLen: 15000, NumChroms: 3})
	guides, err := SampleGuides(g, 3, 20, "NGG", 502)
	if err != nil {
		t.Fatal(err)
	}
	return g, guides
}

// siteTuples renders sites as order-independent comparable strings,
// optionally dropping the guide index (for duplication tests).
func siteTuples(sites []Site) []string {
	out := make([]string, len(sites))
	for i, s := range sites {
		out[i] = fmt.Sprintf("%d/%s:%d%c m=%d %s %s", s.Guide, s.Chrom, s.Pos, s.Strand, s.Mismatches, s.SiteSeq, s.Alignment)
	}
	sort.Strings(out)
	return out
}

func diffTuples(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d sites, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: tuple %d differs:\n  want %s\n  got  %s", label, i, want[i], got[i])
		}
	}
}

// TestMetamorphicRevCompGenome: reverse-complementing every chromosome
// maps each site (pos, strand) to (chromLen - pos - siteLen, opposite
// strand) and preserves everything else — the guide-oriented SiteSeq,
// the alignment, the mismatch count. Any strand-handling or boundary
// asymmetry in an engine breaks this exactly.
func TestMetamorphicRevCompGenome(t *testing.T) {
	g, guides := metamorphicFixture(t)

	rc := &Genome{}
	for _, c := range g.Chroms {
		seq := c.Seq.ReverseComplement()
		rc.Chroms = append(rc.Chroms, genome.Chromosome{Name: c.Name, Seq: seq, Packed: dna.Pack(seq)})
	}
	chromLen := map[string]int{}
	for _, c := range g.Chroms {
		chromLen[c.Name] = len(c.Seq)
	}

	for _, eng := range metamorphicEngines {
		t.Run(string(eng), func(t *testing.T) {
			p := Params{MaxMismatches: 3, Engine: eng}
			orig, err := Search(g, guides, p)
			if err != nil {
				t.Fatal(err)
			}
			flipped, err := Search(rc, guides, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(orig.Sites) == 0 {
				t.Fatal("degenerate fixture: no sites")
			}
			mapped := make([]Site, len(flipped.Sites))
			for i, s := range flipped.Sites {
				m := s
				m.Pos = chromLen[s.Chrom] - s.Pos - len(s.SiteSeq)
				if s.Strand == '+' {
					m.Strand = '-'
				} else {
					m.Strand = '+'
				}
				mapped[i] = m
			}
			diffTuples(t, "revcomp", siteTuples(orig.Sites), siteTuples(mapped))
		})
	}
}

// TestMetamorphicChromPermutation: permuting chromosome order changes
// nothing — results are reported in sorted order and chromosomes are
// independent scans.
func TestMetamorphicChromPermutation(t *testing.T) {
	g, guides := metamorphicFixture(t)
	perm := &Genome{Chroms: make([]genome.Chromosome, len(g.Chroms))}
	for i := range g.Chroms {
		perm.Chroms[len(g.Chroms)-1-i] = g.Chroms[i]
	}

	for _, eng := range metamorphicEngines {
		t.Run(string(eng), func(t *testing.T) {
			p := Params{MaxMismatches: 3, Engine: eng}
			a, err := Search(g, guides, p)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Search(perm, guides, p)
			if err != nil {
				t.Fatal(err)
			}
			diffTuples(t, "chrom permutation", siteTuples(a.Sites), siteTuples(b.Sites))
		})
	}
}

// TestMetamorphicGuideDuplication: appending a duplicate of guide 0
// never changes guide 0's site list, and the duplicate's own list is
// identical modulo the guide index.
func TestMetamorphicGuideDuplication(t *testing.T) {
	g, guides := metamorphicFixture(t)
	dup := append(append([]Guide{}, guides...), Guide{Name: "dup0", Spacer: guides[0].Spacer})
	dupIdx := len(guides)

	byGuide := func(sites []Site, idx int) []Site {
		var out []Site
		for _, s := range sites {
			if s.Guide == idx {
				out = append(out, s)
			}
		}
		return out
	}
	reindex := func(sites []Site, to int) []Site {
		out := append([]Site{}, sites...)
		for i := range out {
			out[i].Guide = to
		}
		return out
	}

	for _, eng := range metamorphicEngines {
		t.Run(string(eng), func(t *testing.T) {
			p := Params{MaxMismatches: 3, Engine: eng}
			base, err := Search(g, guides, p)
			if err != nil {
				t.Fatal(err)
			}
			withDup, err := Search(g, dup, p)
			if err != nil {
				t.Fatal(err)
			}
			want := byGuide(base.Sites, 0)
			if len(want) == 0 {
				t.Fatal("degenerate fixture: guide 0 has no sites")
			}
			diffTuples(t, "guide 0 unchanged", siteTuples(want), siteTuples(byGuide(withDup.Sites, 0)))
			diffTuples(t, "duplicate mirrors guide 0",
				siteTuples(reindex(want, dupIdx)), siteTuples(byGuide(withDup.Sites, dupIdx)))
			// The other guides are untouched too.
			for gi := 1; gi < len(guides); gi++ {
				diffTuples(t, fmt.Sprintf("guide %d unchanged", gi),
					siteTuples(byGuide(base.Sites, gi)), siteTuples(byGuide(withDup.Sites, gi)))
			}
		})
	}
}

// TestMetamorphicAltPAMIdentities: a redundant AltPAMs entry equal to
// the primary PAM is a no-op, and a genuine alternative PAM makes the
// result exactly the union of the two single-PAM searches (NGG and NAG
// windows are disjoint, so the union has no overlap to resolve).
func TestMetamorphicAltPAMIdentities(t *testing.T) {
	g, guides := metamorphicFixture(t)

	for _, eng := range metamorphicEngines {
		t.Run(string(eng), func(t *testing.T) {
			plain, err := Search(g, guides, Params{MaxMismatches: 3, PAM: "NGG", Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			redundant, err := Search(g, guides, Params{MaxMismatches: 3, PAM: "NGG", AltPAMs: []string{"NGG"}, Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			diffTuples(t, "AltPAMs:[NGG] == PAM:NGG", siteTuples(plain.Sites), siteTuples(redundant.Sites))

			nag, err := Search(g, guides, Params{MaxMismatches: 3, PAM: "NAG", Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			both, err := Search(g, guides, Params{MaxMismatches: 3, PAM: "NGG", AltPAMs: []string{"NAG"}, Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			union := append(siteTuples(plain.Sites), siteTuples(nag.Sites)...)
			sort.Strings(union)
			diffTuples(t, "AltPAMs:[NAG] == union", union, siteTuples(both.Sites))
		})
	}
}
