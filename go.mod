module github.com/cap-repro/crisprscan

go 1.22
