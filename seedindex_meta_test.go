package crisprscan

import (
	"bytes"
	"testing"
)

// Metamorphic properties of the persistent-index scan path: the index
// is rebuilt for each transformed input, so these pin the whole
// build→bind→query pipeline, not just the engine.

func indexedSearch(t *testing.T, g *Genome, guides []Guide, p Params) *Result {
	t.Helper()
	ix, err := BuildSeedIndex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	p.Engine = EngineSeedIndex
	p.SeedIndex = ix
	res, err := Search(g, guides, p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMetamorphicIndexChromPermutation: permuting chromosome order
// changes neither the per-chromosome site sets nor anything about how
// each chromosome is indexed — the indexed scan must return the
// identical tuple multiset.
func TestMetamorphicIndexChromPermutation(t *testing.T) {
	g, guides := metamorphicFixture(t)
	perm := &Genome{}
	order := []int{2, 0, 1}
	for _, i := range order {
		perm.Chroms = append(perm.Chroms, g.Chroms[i])
	}
	p := Params{MaxMismatches: 3}
	orig := indexedSearch(t, g, guides, p)
	permuted := indexedSearch(t, perm, guides, p)
	diffTuples(t, "chrom permutation", siteTuples(orig.Sites), siteTuples(permuted.Sites))
}

// TestMetamorphicIndexGuideDuplication: duplicating a guide adds a
// second identical probe set over the same index; every site of the
// original guide must appear once more under the duplicate's index and
// nothing else may change.
func TestMetamorphicIndexGuideDuplication(t *testing.T) {
	g, guides := metamorphicFixture(t)
	dup := append(append([]Guide{}, guides...), Guide{Name: "dup0", Spacer: guides[0].Spacer})
	p := Params{MaxMismatches: 3}
	orig := indexedSearch(t, g, guides, p)
	duped := indexedSearch(t, g, dup, p)

	var wantExtra, gotExtra int
	for _, s := range orig.Sites {
		if s.Guide == 0 {
			wantExtra++
		}
	}
	for _, s := range duped.Sites {
		if s.Guide == len(guides) {
			gotExtra++
		}
	}
	if gotExtra != wantExtra {
		t.Fatalf("duplicate guide found %d sites, original guide 0 found %d", gotExtra, wantExtra)
	}
	if len(duped.Sites) != len(orig.Sites)+wantExtra {
		t.Fatalf("duplication changed unrelated sites: %d vs %d+%d", len(duped.Sites), len(orig.Sites), wantExtra)
	}
	// The non-duplicate share must be tuple-identical.
	var rest []Site
	for _, s := range duped.Sites {
		if s.Guide != len(guides) {
			rest = append(rest, s)
		}
	}
	diffTuples(t, "guide duplication", siteTuples(orig.Sites), siteTuples(rest))
}

// TestSeedIndexBuildDeterministic pins the public-API form of the
// build-determinism satellite: two builds of the same reference are
// byte-identical on disk.
func TestSeedIndexBuildDeterministic(t *testing.T) {
	g, _ := metamorphicFixture(t)
	ix1, err := BuildSeedIndex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := BuildSeedIndex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ix1.Encode(), ix2.Encode()) {
		t.Fatal("two builds of the same genome encode differently")
	}
	// And the round trip through disk preserves the bytes.
	dir := t.TempDir()
	if err := ix1.WriteFile(dir + "/a.csix"); err != nil {
		t.Fatal(err)
	}
	reloaded, err := LoadSeedIndex(dir + "/a.csix")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reloaded.Encode(), ix1.Encode()) {
		t.Fatal("reload→re-encode is not byte-identical")
	}
}

// TestIndexedMatchesFullScan is the public-API differential: the
// persistent-index path must match the flagship full-scan engine
// tuple-for-tuple, including on a genome with ambiguity runs.
func TestIndexedMatchesFullScan(t *testing.T) {
	g := SynthesizeGenome(SynthConfig{Seed: 77, ChromLen: 9000, NumChroms: 2, NRunRate: 60, NRunLen: 40})
	guides, err := SampleGuides(g, 3, 20, "NGG", 78)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, 3, 5} {
		full, err := Search(g, guides, Params{MaxMismatches: k, AltPAMs: []string{"NAG"}, Engine: EngineHyperscan})
		if err != nil {
			t.Fatal(err)
		}
		indexed := indexedSearch(t, g, guides, Params{MaxMismatches: k, AltPAMs: []string{"NAG"}})
		diffTuples(t, "indexed vs hyperscan", siteTuples(full.Sites), siteTuples(indexed.Sites))
	}
}

// TestIndexedScanFromReconstructedGenome: the index is self-contained —
// scanning the genome materialized from the index itself must equal
// scanning the original reference.
func TestIndexedScanFromReconstructedGenome(t *testing.T) {
	g, guides := metamorphicFixture(t)
	ix, err := BuildSeedIndex(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	rg := ix.Genome()
	if err := ix.ValidateGenome(rg); err != nil {
		t.Fatalf("reconstructed genome fails validation: %v", err)
	}
	p := Params{MaxMismatches: 3, Engine: EngineSeedIndex, SeedIndex: ix}
	orig, err := Search(g, guides, p)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := Search(rg, guides, p)
	if err != nil {
		t.Fatal(err)
	}
	diffTuples(t, "reconstructed genome", siteTuples(orig.Sites), siteTuples(recon.Sites))
}
