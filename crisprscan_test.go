package crisprscan

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPISearch(t *testing.T) {
	g := SynthesizeGenome(SynthConfig{Seed: 301, ChromLen: 100000})
	guides := []Guide{
		{Name: "g0", Spacer: "ACGTACGTACGTACGTACGT"},
		{Name: "g1", Spacer: "TTTTGGGGCCCCAAAATTTT"},
	}
	res, err := Search(g, guides, Params{MaxMismatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sites {
		if s.Mismatches > 4 {
			t.Errorf("site exceeds budget: %+v", s)
		}
		if s.Strand != '+' && s.Strand != '-' {
			t.Errorf("bad strand: %+v", s)
		}
	}
	if res.Stats.Engine == "" || res.Stats.ElapsedSec <= 0 {
		t.Errorf("stats incomplete: %+v", res.Stats)
	}
}

func TestPublicAPIGuideValidation(t *testing.T) {
	g := SynthesizeGenome(SynthConfig{Seed: 302, ChromLen: 10000})
	if _, err := Search(g, nil, Params{}); err == nil {
		t.Error("no guides must error")
	}
	if _, err := Search(g, []Guide{{Spacer: "ACGT!"}}, Params{}); err == nil {
		t.Error("invalid spacer must error")
	}
	ragged := []Guide{{Spacer: "ACGTACGTACGTACGTACGT"}, {Spacer: "ACGT"}}
	if _, err := Search(g, ragged, Params{}); err == nil {
		t.Error("ragged guides must error")
	}
}

func TestPublicAPIEngineSelection(t *testing.T) {
	g := SynthesizeGenome(SynthConfig{Seed: 303, ChromLen: 60000})
	guides := []Guide{{Name: "g", Spacer: "ACGTACGTACGTACGTACGT"}}
	base, err := Search(g, guides, Params{MaxMismatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{EngineCasOffinder, EngineCasOT, EngineAP, EngineFPGA} {
		res, err := Search(g, guides, Params{MaxMismatches: 4, Engine: e})
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if len(res.Sites) != len(base.Sites) {
			t.Errorf("%s: %d sites vs %d", e, len(res.Sites), len(base.Sites))
		}
	}
	ap, _ := Search(g, guides, Params{MaxMismatches: 2, Engine: EngineAP})
	if ap.Stats.Modeled == nil {
		t.Error("AP stats must include a device-time breakdown")
	}
}

func TestPublicAPIBulge(t *testing.T) {
	g := SynthesizeGenome(SynthConfig{Seed: 304, ChromLen: 30000})
	guides := []Guide{{Name: "g", Spacer: "ACGTACGTACGTACGTACGT"}}
	sites, err := SearchBulge(g, guides, BulgeParams{MaxMismatches: 1, MaxBulge: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		if s.Bulges > 1 || s.Mismatches > 1 {
			t.Errorf("budget exceeded: %+v", s)
		}
	}
}

func TestReadGenomeAndTSV(t *testing.T) {
	g, err := ReadGenome(strings.NewReader(">c1\nACGTACGTAAGGACGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalLen() != 16 {
		t.Fatalf("TotalLen = %d", g.TotalLen())
	}
	guides := []Guide{{Name: "g", Spacer: "ACGTACGTA"}}
	res, err := Search(g, guides, Params{MaxMismatches: 0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSitesTSV(&buf, res.Sites); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "guide\tchrom") {
		t.Error("TSV header missing")
	}
}

func TestLeadingNGuide(t *testing.T) {
	// Guides with 5' N (G-prepended synthesis) are legal and the N
	// matches anything.
	g, err := ReadGenome(strings.NewReader(">c1\nTTTTACGTACGTAAGGTTTT\n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(g, []Guide{{Name: "n", Spacer: "NCGTACGTA"}}, Params{MaxMismatches: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) != 1 || res.Sites[0].Pos != 4 {
		t.Fatalf("sites = %+v", res.Sites)
	}
}

func TestPublicAPICas12aAndStream(t *testing.T) {
	in := ">c1\nTTTAGACGCATAAAGATGAGACGCATATTTT\n"
	g, err := ReadGenome(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	guides := []Guide{{Name: "cas12a", Spacer: "GACGCATAAAGATGAGACGCATA"}}
	res, err := Search(g, guides, Params{MaxMismatches: 0, PAM: "TTTV", PAM5: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) != 1 || res.Sites[0].Pos != 0 {
		t.Fatalf("Cas12a site not found: %+v", res.Sites)
	}
	// Streaming path returns the same site.
	var streamed []Site
	if _, err := SearchStream(strings.NewReader(in), guides,
		Params{MaxMismatches: 0, PAM: "TTTV", PAM5: true},
		func(s Site) error { streamed = append(streamed, s); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 1 || streamed[0] != res.Sites[0] {
		t.Fatalf("streamed sites differ: %+v", streamed)
	}
	var bed bytes.Buffer
	if err := WriteSitesBED(&bed, res.Sites); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bed.String(), "c1\t0\t27\tguide0\t1000\t+") {
		t.Errorf("BED output: %q", bed.String())
	}
}
