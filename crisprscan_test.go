package crisprscan

import (
	"bytes"
	"strings"
	"testing"
)

func TestPublicAPISearch(t *testing.T) {
	g := SynthesizeGenome(SynthConfig{Seed: 301, ChromLen: 100000})
	guides := []Guide{
		{Name: "g0", Spacer: "ACGTACGTACGTACGTACGT"},
		{Name: "g1", Spacer: "TTTTGGGGCCCCAAAATTTT"},
	}
	res, err := Search(g, guides, Params{MaxMismatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sites {
		if s.Mismatches > 4 {
			t.Errorf("site exceeds budget: %+v", s)
		}
		if s.Strand != '+' && s.Strand != '-' {
			t.Errorf("bad strand: %+v", s)
		}
	}
	if res.Stats.Engine == "" || res.Stats.ElapsedSec <= 0 {
		t.Errorf("stats incomplete: %+v", res.Stats)
	}
}

func TestPublicAPIGuideValidation(t *testing.T) {
	g := SynthesizeGenome(SynthConfig{Seed: 302, ChromLen: 10000})
	if _, err := Search(g, nil, Params{}); err == nil {
		t.Error("no guides must error")
	}
	if _, err := Search(g, []Guide{{Spacer: "ACGT!"}}, Params{}); err == nil {
		t.Error("invalid spacer must error")
	}
	ragged := []Guide{{Spacer: "ACGTACGTACGTACGTACGT"}, {Spacer: "ACGT"}}
	if _, err := Search(g, ragged, Params{}); err == nil {
		t.Error("ragged guides must error")
	}
}

func TestParseGuidesErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		guides  []Guide
		wantSub string
	}{
		{"empty list", nil, "no guides"},
		{"empty slice", []Guide{}, "no guides"},
		{"invalid IUPAC character", []Guide{{Name: "bad", Spacer: "ACGT!CGT"}}, `guide "bad"`},
		{"digit in spacer", []Guide{{Name: "num", Spacer: "ACGT1CGT"}}, "invalid IUPAC"},
		{"mixed spacer lengths", []Guide{
			{Name: "g0", Spacer: "ACGTACGTACGTACGTACGT"},
			{Name: "g1", Spacer: "ACGTACGT"},
		}, `guide "g1" length 8 differs from guide 0 (20)`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pats, err := parseGuides(tc.guides)
			if err == nil {
				t.Fatalf("parseGuides(%+v) succeeded, want error containing %q", tc.guides, tc.wantSub)
			}
			if pats != nil {
				t.Errorf("parseGuides returned patterns alongside an error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
			if !strings.HasPrefix(err.Error(), "crisprscan: ") {
				t.Errorf("error %q lacks the public-surface prefix", err)
			}
		})
	}

	// IUPAC ambiguity codes are legal spacer characters, not errors.
	pats, err := parseGuides([]Guide{{Name: "iupac", Spacer: "ACGTRYSWKMBDHVN"}})
	if err != nil {
		t.Fatalf("IUPAC spacer rejected: %v", err)
	}
	if len(pats) != 1 || len(pats[0]) != 15 {
		t.Fatalf("unexpected patterns: %+v", pats)
	}
}

func TestSampleGuidesTooSmallGenome(t *testing.T) {
	// A 10 bp genome is shorter than a single spacer+PAM window (23 bp),
	// so no guide can be sampled at all.
	g := SynthesizeGenome(SynthConfig{Seed: 305, ChromLen: 10})
	_, err := SampleGuides(g, 40, 20, "NGG", 1)
	if err == nil {
		t.Fatal("SampleGuides on a tiny genome must error")
	}
	if !strings.Contains(err.Error(), "guides could be sampled") || !strings.HasPrefix(err.Error(), "crisprscan: ") {
		t.Errorf("unexpected error text: %q", err)
	}

	// Invalid PAM surfaces the dna parse error.
	if _, err := SampleGuides(g, 1, 20, "Q!", 1); err == nil {
		t.Error("invalid PAM must error")
	}

	// A genome with room succeeds and returns exactly n guides.
	big := SynthesizeGenome(SynthConfig{Seed: 306, ChromLen: 50000})
	guides, err := SampleGuides(big, 5, 20, "NGG", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(guides) != 5 {
		t.Fatalf("got %d guides, want 5", len(guides))
	}
	for i, gd := range guides {
		if len(gd.Spacer) != 20 {
			t.Errorf("guide %d spacer length %d", i, len(gd.Spacer))
		}
		if gd.Name == "" {
			t.Errorf("guide %d has no name", i)
		}
	}
}

func TestPublicAPIEngineSelection(t *testing.T) {
	g := SynthesizeGenome(SynthConfig{Seed: 303, ChromLen: 60000})
	guides := []Guide{{Name: "g", Spacer: "ACGTACGTACGTACGTACGT"}}
	base, err := Search(g, guides, Params{MaxMismatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []Engine{EngineCasOffinder, EngineCasOT, EngineAP, EngineFPGA} {
		res, err := Search(g, guides, Params{MaxMismatches: 4, Engine: e})
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		if len(res.Sites) != len(base.Sites) {
			t.Errorf("%s: %d sites vs %d", e, len(res.Sites), len(base.Sites))
		}
	}
	ap, _ := Search(g, guides, Params{MaxMismatches: 2, Engine: EngineAP})
	if ap.Stats.Modeled == nil {
		t.Error("AP stats must include a device-time breakdown")
	}
}

func TestPublicAPIBulge(t *testing.T) {
	g := SynthesizeGenome(SynthConfig{Seed: 304, ChromLen: 30000})
	guides := []Guide{{Name: "g", Spacer: "ACGTACGTACGTACGTACGT"}}
	sites, err := SearchBulge(g, guides, BulgeParams{MaxMismatches: 1, MaxBulge: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		if s.Bulges > 1 || s.Mismatches > 1 {
			t.Errorf("budget exceeded: %+v", s)
		}
	}
}

func TestReadGenomeAndTSV(t *testing.T) {
	g, err := ReadGenome(strings.NewReader(">c1\nACGTACGTAAGGACGT\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalLen() != 16 {
		t.Fatalf("TotalLen = %d", g.TotalLen())
	}
	guides := []Guide{{Name: "g", Spacer: "ACGTACGTA"}}
	res, err := Search(g, guides, Params{MaxMismatches: 0})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSitesTSV(&buf, res.Sites); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "guide\tchrom") {
		t.Error("TSV header missing")
	}
}

func TestLeadingNGuide(t *testing.T) {
	// Guides with 5' N (G-prepended synthesis) are legal and the N
	// matches anything.
	g, err := ReadGenome(strings.NewReader(">c1\nTTTTACGTACGTAAGGTTTT\n"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Search(g, []Guide{{Name: "n", Spacer: "NCGTACGTA"}}, Params{MaxMismatches: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) != 1 || res.Sites[0].Pos != 4 {
		t.Fatalf("sites = %+v", res.Sites)
	}
}

func TestPublicAPICas12aAndStream(t *testing.T) {
	in := ">c1\nTTTAGACGCATAAAGATGAGACGCATATTTT\n"
	g, err := ReadGenome(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	guides := []Guide{{Name: "cas12a", Spacer: "GACGCATAAAGATGAGACGCATA"}}
	res, err := Search(g, guides, Params{MaxMismatches: 0, PAM: "TTTV", PAM5: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sites) != 1 || res.Sites[0].Pos != 0 {
		t.Fatalf("Cas12a site not found: %+v", res.Sites)
	}
	// Streaming path returns the same site.
	var streamed []Site
	if _, err := SearchStream(strings.NewReader(in), guides,
		Params{MaxMismatches: 0, PAM: "TTTV", PAM5: true},
		func(s Site) error { streamed = append(streamed, s); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 1 || streamed[0] != res.Sites[0] {
		t.Fatalf("streamed sites differ: %+v", streamed)
	}
	var bed bytes.Buffer
	if err := WriteSitesBED(&bed, res.Sites); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bed.String(), "c1\t0\t27\tguide0\t1000\t+") {
		t.Errorf("BED output: %q", bed.String())
	}
}
