// Package anml serializes automata networks to ANML, the Automata
// Network Markup Language used by Micron's AP SDK, and back. The paper's
// AP implementation is expressed in ANML; exporting our automata in the
// same format makes the mapping onto AP STEs explicit and lets the
// networks be inspected with existing automata tooling. A compact
// MNRL-style JSON encoding is also provided (see json.go).
//
// Only stride-1 (4-letter) automata are exported: ANML symbol sets are
// 8-bit character classes, and we encode base classes as sets over the
// letters A, C, G, T.
package anml

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
)

// Document is the root <anml> element.
type Document struct {
	XMLName xml.Name `xml:"anml"`
	Version string   `xml:"version,attr"`
	Network Network  `xml:"automata-network"`
}

// Network is an <automata-network>.
type Network struct {
	ID   string `xml:"id,attr"`
	Name string `xml:"name,attr,omitempty"`
	STEs []STE  `xml:"state-transition-element"`
}

// STE is one <state-transition-element>.
type STE struct {
	ID        string     `xml:"id,attr"`
	SymbolSet string     `xml:"symbol-set,attr"`
	Start     string     `xml:"start,attr,omitempty"`
	Reports   []Report   `xml:"report-on-match"`
	Activates []Activate `xml:"activate-on-match"`
}

// Report is a <report-on-match> child.
type Report struct {
	Code int32 `xml:"reportcode,attr"`
}

// Activate is an <activate-on-match> child.
type Activate struct {
	Element string `xml:"element,attr"`
}

// FromNFA converts a stride-1 homogeneous NFA into an ANML document.
// ReportMid codes cannot be represented in ANML and cause an error.
func FromNFA(n *automata.NFA, networkID string) (*Document, error) {
	if n.Alphabet != dna.AlphabetSize {
		return nil, fmt.Errorf("anml: only stride-1 automata can be exported (alphabet %d)", n.Alphabet)
	}
	net := Network{ID: networkID, Name: n.Label}
	for i := range n.States {
		s := &n.States[i]
		if s.ReportMid != automata.NoReport {
			return nil, fmt.Errorf("anml: state %d has a mid-symbol report, not representable", i)
		}
		ste := STE{
			ID:        steID(i),
			SymbolSet: symbolSet(s.Class),
		}
		switch s.Start {
		case automata.AllInput:
			ste.Start = "all-input"
		case automata.StartOfData:
			ste.Start = "start-of-data"
		}
		if s.Report != automata.NoReport {
			ste.Reports = []Report{{Code: s.Report}}
		}
		for _, v := range s.Out {
			ste.Activates = append(ste.Activates, Activate{Element: steID(int(v))})
		}
		sort.Slice(ste.Activates, func(a, b int) bool { return ste.Activates[a].Element < ste.Activates[b].Element })
		net.STEs = append(net.STEs, ste)
	}
	return &Document{Version: "1.0", Network: net}, nil
}

func steID(i int) string { return fmt.Sprintf("ste%d", i) }

// symbolSet renders a base class as an ANML character set, e.g. [AG].
func symbolSet(c automata.Class) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for b := dna.A; b <= dna.T; b++ {
		if c.HasSym(uint8(b)) {
			sb.WriteByte(b.Char())
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// parseSymbolSet inverts symbolSet.
func parseSymbolSet(s string) (automata.Class, error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, fmt.Errorf("anml: malformed symbol set %q", s)
	}
	var c automata.Class
	for _, ch := range []byte(s[1 : len(s)-1]) {
		b := dna.BaseFromChar(ch)
		if b == dna.BadBase {
			return 0, fmt.Errorf("anml: symbol %q outside the DNA alphabet in %q", ch, s)
		}
		c |= 1 << b
	}
	return c, nil
}

// ToNFA converts a parsed ANML document back into an NFA.
func (d *Document) ToNFA() (*automata.NFA, error) {
	n := automata.New(dna.AlphabetSize, d.Network.Name)
	index := make(map[string]uint32, len(d.Network.STEs))
	for _, ste := range d.Network.STEs {
		class, err := parseSymbolSet(ste.SymbolSet)
		if err != nil {
			return nil, err
		}
		start := automata.NoStart
		switch ste.Start {
		case "all-input":
			start = automata.AllInput
		case "start-of-data":
			start = automata.StartOfData
		case "":
		default:
			return nil, fmt.Errorf("anml: unknown start kind %q", ste.Start)
		}
		st := automata.NewState(class, start)
		if len(ste.Reports) > 1 {
			return nil, fmt.Errorf("anml: STE %s has %d report codes, at most 1 supported", ste.ID, len(ste.Reports))
		}
		if len(ste.Reports) == 1 {
			st.Report = ste.Reports[0].Code
		}
		if _, dup := index[ste.ID]; dup {
			return nil, fmt.Errorf("anml: duplicate STE id %q", ste.ID)
		}
		index[ste.ID] = n.AddState(st)
	}
	for _, ste := range d.Network.STEs {
		from := index[ste.ID]
		for _, act := range ste.Activates {
			to, ok := index[act.Element]
			if !ok {
				return nil, fmt.Errorf("anml: STE %s activates unknown element %q", ste.ID, act.Element)
			}
			n.AddEdge(from, to)
		}
	}
	return n, nil
}

// Write emits the document as indented XML.
func (d *Document) Write(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(d); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// Read parses an ANML document.
func Read(r io.Reader) (*Document, error) {
	var d Document
	if err := xml.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("anml: %w", err)
	}
	return &d, nil
}
