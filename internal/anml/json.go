package anml

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/cap-repro/crisprscan/internal/automata"
)

// MNRL-style JSON encoding: a flat node list, one object per state.
// Unlike the ANML XML form this round-trips every NFA feature we use,
// including stride-2 alphabets and mid-symbol report codes, so it is the
// format cmd/anmlview uses for machine-readable dumps.

// JSONNetwork is the top-level JSON object.
type JSONNetwork struct {
	ID       string     `json:"id"`
	Alphabet int        `json:"alphabet"`
	Nodes    []JSONNode `json:"nodes"`
}

// JSONNode is one state.
type JSONNode struct {
	ID        int      `json:"id"`
	Class     uint64   `json:"class"` // bitset over the alphabet
	Start     string   `json:"start,omitempty"`
	Report    *int32   `json:"report,omitempty"`
	ReportMid *int32   `json:"reportMid,omitempty"`
	Out       []uint32 `json:"out,omitempty"`
}

// ToJSON converts an NFA to the JSON network form.
func ToJSON(n *automata.NFA, id string) *JSONNetwork {
	net := &JSONNetwork{ID: id, Alphabet: n.Alphabet}
	for i := range n.States {
		s := &n.States[i]
		node := JSONNode{ID: i, Class: uint64(s.Class), Out: s.Out}
		switch s.Start {
		case automata.AllInput:
			node.Start = "all-input"
		case automata.StartOfData:
			node.Start = "start-of-data"
		}
		if s.Report != automata.NoReport {
			r := s.Report
			node.Report = &r
		}
		if s.ReportMid != automata.NoReport {
			r := s.ReportMid
			node.ReportMid = &r
		}
		net.Nodes = append(net.Nodes, node)
	}
	return net
}

// FromJSON converts the JSON network form back to an NFA.
func FromJSON(net *JSONNetwork) (*automata.NFA, error) {
	n := automata.New(net.Alphabet, net.ID)
	for i, node := range net.Nodes {
		if node.ID != i {
			return nil, fmt.Errorf("anml: node %d has id %d; ids must be dense and ordered", i, node.ID)
		}
		start := automata.NoStart
		switch node.Start {
		case "all-input":
			start = automata.AllInput
		case "start-of-data":
			start = automata.StartOfData
		case "":
		default:
			return nil, fmt.Errorf("anml: unknown start kind %q", node.Start)
		}
		st := automata.NewState(automata.Class(node.Class), start)
		if node.Report != nil {
			st.Report = *node.Report
		}
		if node.ReportMid != nil {
			st.ReportMid = *node.ReportMid
		}
		n.AddState(st)
	}
	for i, node := range net.Nodes {
		for _, v := range node.Out {
			if int(v) >= len(net.Nodes) {
				return nil, fmt.Errorf("anml: node %d references out-of-range node %d", i, v)
			}
			n.AddEdge(uint32(i), v)
		}
	}
	return n, nil
}

// WriteJSON emits the network as indented JSON.
func WriteJSON(w io.Writer, net *JSONNetwork) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(net)
}

// ReadJSON parses a JSON network.
func ReadJSON(r io.Reader) (*JSONNetwork, error) {
	var net JSONNetwork
	if err := json.NewDecoder(r).Decode(&net); err != nil {
		return nil, fmt.Errorf("anml: %w", err)
	}
	return &net, nil
}
