package anml

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
)

func testNFA(t *testing.T, seed int64) *automata.NFA {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	spacer := make(dna.Seq, 8)
	for i := range spacer {
		spacer[i] = dna.Base(rng.Intn(4))
	}
	n, err := automata.CompileHamming(dna.PatternFromSeq(spacer),
		automata.CompileOptions{MaxMismatches: 2, PAM: dna.MustParsePattern("NGG"), Code: 5})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func scan(t *testing.T, n *automata.NFA, genome dna.Seq) []automata.Report {
	t.Helper()
	return automata.NewSim(n).ScanCollect(automata.SymbolsOfSeq(genome))
}

func randGenome(seed int64, length int) dna.Seq {
	rng := rand.New(rand.NewSource(seed))
	g := make(dna.Seq, length)
	for i := range g {
		g[i] = dna.Base(rng.Intn(4))
	}
	return g
}

func TestXMLRoundTrip(t *testing.T) {
	n := testNFA(t, 1)
	doc, err := FromNFA(n, "net0")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"<anml", "automata-network", "state-transition-element", "all-input", "report-on-match"} {
		if !strings.Contains(text, want) {
			t.Errorf("serialized ANML missing %q", want)
		}
	}
	parsed, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := parsed.ToNFA()
	if err != nil {
		t.Fatal(err)
	}
	genome := randGenome(2, 60000)
	a, b := scan(t, n, genome), scan(t, back, genome)
	if len(a) == 0 {
		t.Fatal("fixture produced no reports; pick a better seed")
	}
	if len(a) != len(b) {
		t.Fatalf("round trip changed language: %d vs %d reports", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFromNFARejectsStride2(t *testing.T) {
	n := testNFA(t, 3)
	s2, err := automata.Multistride2(n)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromNFA(s2, "x"); err == nil {
		t.Error("stride-2 export must be rejected")
	}
}

func TestParseSymbolSetErrors(t *testing.T) {
	for _, bad := range []string{"", "AG", "[AX]", "[", "]"} {
		if _, err := parseSymbolSet(bad); err == nil {
			t.Errorf("parseSymbolSet(%q) should fail", bad)
		}
	}
	c, err := parseSymbolSet("[ACGT]")
	if err != nil || c.Count() != 4 {
		t.Errorf("parseSymbolSet([ACGT]) = %v, %v", c, err)
	}
	c, err = parseSymbolSet("[]")
	if err != nil || c != 0 {
		t.Errorf("empty set should parse to 0: %v, %v", c, err)
	}
}

func TestToNFAErrors(t *testing.T) {
	doc := &Document{Network: Network{STEs: []STE{
		{ID: "a", SymbolSet: "[A]", Activates: []Activate{{Element: "missing"}}},
	}}}
	if _, err := doc.ToNFA(); err == nil {
		t.Error("dangling activation must error")
	}
	doc = &Document{Network: Network{STEs: []STE{
		{ID: "a", SymbolSet: "[A]"}, {ID: "a", SymbolSet: "[C]"},
	}}}
	if _, err := doc.ToNFA(); err == nil {
		t.Error("duplicate STE id must error")
	}
	doc = &Document{Network: Network{STEs: []STE{
		{ID: "a", SymbolSet: "[A]", Start: "sometimes"},
	}}}
	if _, err := doc.ToNFA(); err == nil {
		t.Error("bad start kind must error")
	}
}

func TestJSONRoundTripStride2(t *testing.T) {
	n := testNFA(t, 4)
	s2, err := automata.Multistride2(n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ToJSON(s2, "s2")); err != nil {
		t.Fatal(err)
	}
	net, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(net)
	if err != nil {
		t.Fatal(err)
	}
	genome := randGenome(5, 2001)
	in := automata.SymbolsOfSeq(genome)
	var a, b []automata.Report
	automata.ScanStride2(automata.NewSim(s2), in, func(r automata.Report) { a = append(a, r) })
	automata.ScanStride2(automata.NewSim(back), in, func(r automata.Report) { b = append(b, r) })
	if len(a) != len(b) {
		t.Fatalf("JSON round trip changed language: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report %d differs", i)
		}
	}
}

func TestFromJSONErrors(t *testing.T) {
	if _, err := FromJSON(&JSONNetwork{Alphabet: 4, Nodes: []JSONNode{{ID: 3}}}); err == nil {
		t.Error("non-dense ids must error")
	}
	if _, err := FromJSON(&JSONNetwork{Alphabet: 4, Nodes: []JSONNode{{ID: 0, Out: []uint32{9}}}}); err == nil {
		t.Error("out-of-range edge must error")
	}
	if _, err := FromJSON(&JSONNetwork{Alphabet: 4, Nodes: []JSONNode{{ID: 0, Start: "bogus"}}}); err == nil {
		t.Error("bad start kind must error")
	}
}
