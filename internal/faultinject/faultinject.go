// Package faultinject supplies deterministic failure machinery for the
// robustness tests: a seedable io.Reader that delivers short reads,
// transient stalls, and a mid-stream error at an exact byte offset; an
// arch.Engine wrapper that errors or panics on a chosen chromosome; a
// transient-failure injector (Flaky, FlakyEngine) that fails a counted
// number of times and then recovers, for driving retry/backoff paths;
// and a latency injector (LatencyEngine) that holds scans open for
// drain and overload tests. All are pure test doubles — nothing in the
// production pipeline imports them — but they live outside _test files
// so every package's tests (core, the CLI, the service, the public API)
// can share one implementation.
//
// Determinism matters here: a fault that moves between runs turns a
// red test into a flake. Every failure behavior is driven by the
// configured seed and counters, never by wall-clock or scheduler
// timing; for injected latency, prefer the Gate channel (explicit
// release) over Delay when a test needs exact sequencing.
package faultinject

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"sync"
	"time"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/genome"
)

// ErrInjected is the default error the Reader and Engine deliver.
var ErrInjected = errors.New("faultinject: injected fault")

// ReaderConfig configures a faulty Reader. The zero value injects
// nothing (the Reader degenerates to a pass-through).
type ReaderConfig struct {
	// Seed drives the short-read length sequence.
	Seed int64
	// MaxRead, when > 0, caps each Read at a random length in
	// [1, MaxRead] — the short, ragged reads a slow pipe or network
	// filesystem produces.
	MaxRead int
	// StallEvery, when > 0, makes every Nth Read return (0, nil) — a
	// transient stall. Well-behaved callers (bufio included) retry.
	StallEvery int
	// FailAfter, when > 0, injects Err once that many bytes have been
	// delivered (the reader truncates the preceding Read so the failure
	// lands at the exact offset); subsequent Reads keep failing. Zero
	// means never.
	FailAfter int64
	// Err is the injected error (default ErrInjected).
	Err error
}

// Reader wraps an io.Reader with deterministic fault injection.
type Reader struct {
	src       io.Reader
	cfg       ReaderConfig
	rng       *rand.Rand
	delivered int64
	reads     int
}

// NewReader wraps src with the configured faults; the zero config is a
// pass-through.
func NewReader(src io.Reader, cfg ReaderConfig) *Reader {
	if cfg.Err == nil {
		cfg.Err = ErrInjected
	}
	return &Reader{src: src, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Read implements io.Reader with the configured faults.
func (r *Reader) Read(p []byte) (int, error) {
	r.reads++
	if r.cfg.FailAfter > 0 && r.delivered >= r.cfg.FailAfter {
		return 0, r.cfg.Err
	}
	if r.cfg.StallEvery > 0 && r.reads%r.cfg.StallEvery == 0 {
		return 0, nil
	}
	if r.cfg.MaxRead > 0 && len(p) > r.cfg.MaxRead {
		p = p[:1+r.rng.Intn(r.cfg.MaxRead)]
	}
	if r.cfg.FailAfter > 0 && int64(len(p)) > r.cfg.FailAfter-r.delivered {
		p = p[:r.cfg.FailAfter-r.delivered]
	}
	n, err := r.src.Read(p)
	r.delivered += int64(n)
	return n, err
}

// Delivered returns the bytes passed through so far.
func (r *Reader) Delivered() int64 { return r.delivered }

// ReaderAt wraps an io.ReaderAt and fails deterministically: the Nth
// ReadAt call (1-based FailOnCall) and every one after it returns Err.
// It exercises random-access loaders (the genome seed index) the way
// Reader exercises streams. Wrap Err with Transient to drive the
// transient-classification path.
type ReaderAt struct {
	// Inner is the wrapped source.
	Inner io.ReaderAt
	// FailOnCall, when > 0, is the 1-based ReadAt call index at which
	// injection starts. Zero never injects.
	FailOnCall int
	// Err is the injected error (default ErrInjected).
	Err error

	mu    sync.Mutex
	calls int
}

// ReadAt implements io.ReaderAt with the configured fault.
func (r *ReaderAt) ReadAt(p []byte, off int64) (int, error) {
	r.mu.Lock()
	r.calls++
	calls := r.calls
	r.mu.Unlock()
	if r.FailOnCall > 0 && calls >= r.FailOnCall {
		err := r.Err
		if err == nil {
			err = ErrInjected
		}
		return 0, err
	}
	return r.Inner.ReadAt(p, off)
}

// Calls returns how many ReadAt calls have been observed.
func (r *ReaderAt) Calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

// Engine wraps an arch.Engine and sabotages the Nth chromosome scan:
// either by returning an error or, when Panic is set, by panicking in
// the caller's goroutine — exactly the failure the orchestrator's
// recover path must absorb. Scans before and after the Nth pass
// through untouched, so tests can assert partial progress.
type Engine struct {
	Inner arch.Engine
	// FailOn is the 1-based ScanChrom invocation to sabotage
	// (0 = never).
	FailOn int
	// Panic selects panic(Err) over returning Err.
	Panic bool
	// Err is the injected failure (default ErrInjected).
	Err error

	mu    sync.Mutex
	calls int // guarded by mu
}

// Name implements arch.Engine.
func (e *Engine) Name() string { return e.Inner.Name() }

// Calls returns how many chromosome scans have been attempted.
func (e *Engine) Calls() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.calls
}

// ScanChrom implements arch.Engine.
func (e *Engine) ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error {
	if err := e.arm(); err != nil {
		return err
	}
	return e.Inner.ScanChrom(c, emit)
}

// ScanChromContext implements arch.ContextEngine, forwarding ctx to the
// wrapped engine when it is ctx-aware.
func (e *Engine) ScanChromContext(ctx context.Context, c *genome.Chromosome, emit func(automata.Report)) error {
	if err := e.arm(); err != nil {
		return err
	}
	return arch.ScanChrom(ctx, e.Inner, c, emit)
}

// transientErr marks an injected failure as transient via the
// duck-typed Transient() method the scan service's error taxonomy
// recognizes (no import in either direction, so test doubles and the
// production classifier stay decoupled).
type transientErr struct{ err error }

func (e transientErr) Error() string   { return e.err.Error() }
func (e transientErr) Unwrap() error   { return e.err }
func (e transientErr) Transient() bool { return true }

// Transient wraps err so retry-aware callers classify it as a
// transient (retryable) failure. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return transientErr{err: err}
}

// Flaky is the transient-failure injector: an operation that fails its
// first Fails invocations with a transient-classified error and
// succeeds forever after — the canonical shape for driving retry and
// backoff paths deterministically. The zero value never fails.
type Flaky struct {
	// Fails is how many leading invocations fail.
	Fails int
	// Err is the underlying injected error (default ErrInjected); it is
	// delivered wrapped by Transient.
	Err error

	mu    sync.Mutex
	calls int // guarded by mu
}

// Next records one invocation and returns the injected transient error
// while the failure budget lasts, nil afterwards.
func (f *Flaky) Next() error {
	f.mu.Lock()
	f.calls++
	fire := f.calls <= f.Fails
	f.mu.Unlock()
	if !fire {
		return nil
	}
	err := f.Err
	if err == nil {
		err = ErrInjected
	}
	return Transient(err)
}

// Calls returns how many invocations have been observed.
func (f *Flaky) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// FlakyEngine wraps an arch.Engine with a Flaky gate: the first
// Flaky.Fails chromosome scans fail transiently, later ones pass
// through — an engine that recovers after retries.
type FlakyEngine struct {
	Inner arch.Engine
	Flaky Flaky
}

// Name implements arch.Engine.
func (e *FlakyEngine) Name() string { return e.Inner.Name() }

// ScanChrom implements arch.Engine.
func (e *FlakyEngine) ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error {
	if err := e.Flaky.Next(); err != nil {
		return err
	}
	return e.Inner.ScanChrom(c, emit)
}

// ScanChromContext implements arch.ContextEngine.
func (e *FlakyEngine) ScanChromContext(ctx context.Context, c *genome.Chromosome, emit func(automata.Report)) error {
	if err := e.Flaky.Next(); err != nil {
		return err
	}
	return arch.ScanChrom(ctx, e.Inner, c, emit)
}

// LatencyEngine is the latency injector: it delays every chromosome
// scan, either by a fixed Delay or — for fully deterministic
// sequencing — until the test sends on Gate, whichever is configured.
// Waiting respects ctx, so a delayed scan still cancels promptly: the
// tool for pinning jobs in the running state while a test exercises
// drain, overload, or deadline paths.
type LatencyEngine struct {
	Inner arch.Engine
	// Delay, when > 0, is waited before each scan.
	Delay time.Duration
	// Gate, when non-nil, must deliver one value per scan before the
	// scan proceeds (send to release, close to release everything).
	Gate chan struct{}
}

// Name implements arch.Engine.
func (e *LatencyEngine) Name() string { return e.Inner.Name() }

// ScanChrom implements arch.Engine (waits without cancellation).
func (e *LatencyEngine) ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error {
	if err := e.wait(context.Background()); err != nil {
		return err
	}
	return e.Inner.ScanChrom(c, emit)
}

// ScanChromContext implements arch.ContextEngine; the injected wait
// aborts with ctx.Err() on cancellation, like a real slow scan would at
// its next chunk boundary.
func (e *LatencyEngine) ScanChromContext(ctx context.Context, c *genome.Chromosome, emit func(automata.Report)) error {
	if err := e.wait(ctx); err != nil {
		return err
	}
	return arch.ScanChrom(ctx, e.Inner, c, emit)
}

func (e *LatencyEngine) wait(ctx context.Context) error {
	if e.Delay > 0 {
		t := time.NewTimer(e.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if e.Gate != nil {
		select {
		case <-e.Gate:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// arm advances the call counter and triggers the configured fault when
// the Nth scan arrives.
func (e *Engine) arm() error {
	e.mu.Lock()
	e.calls++
	fire := e.FailOn > 0 && e.calls == e.FailOn
	e.mu.Unlock()
	if !fire {
		return nil
	}
	err := e.Err
	if err == nil {
		err = ErrInjected
	}
	if e.Panic {
		panic(err)
	}
	return err
}
