package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestReaderZeroConfigPassesThrough(t *testing.T) {
	src := bytes.Repeat([]byte("ACGT"), 1000)
	r := NewReader(bytes.NewReader(src), ReaderConfig{})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("zero-config reader altered the stream")
	}
	if r.Delivered() != int64(len(src)) {
		t.Fatalf("Delivered = %d, want %d", r.Delivered(), len(src))
	}
}

func TestReaderFailsAtExactOffset(t *testing.T) {
	src := bytes.Repeat([]byte("x"), 10000)
	const failAt = 4097
	r := NewReader(bytes.NewReader(src), ReaderConfig{FailAfter: failAt, MaxRead: 100, Seed: 3})
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if len(got) != failAt {
		t.Fatalf("delivered %d bytes before failing, want exactly %d", len(got), failAt)
	}
	// The fault is sticky: later reads keep failing.
	if _, err := r.Read(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("fault not sticky: %v", err)
	}
}

func TestReaderCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	r := NewReader(bytes.NewReader([]byte("abcdef")), ReaderConfig{FailAfter: 3, Err: sentinel})
	_, err := io.ReadAll(r)
	if !errors.Is(err, sentinel) {
		t.Fatalf("want custom error, got %v", err)
	}
}

func TestReaderShortReadsAreDeterministic(t *testing.T) {
	src := bytes.Repeat([]byte("ACGT"), 512)
	lengths := func(seed int64) []int {
		r := NewReader(bytes.NewReader(src), ReaderConfig{Seed: seed, MaxRead: 17})
		var out []int
		buf := make([]byte, 64)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				out = append(out, n)
				if n > 17 {
					t.Fatalf("read of %d bytes exceeds MaxRead", n)
				}
			}
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	a, b := lengths(42), lengths(42)
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d reads", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d: %d vs %d bytes — not deterministic", i, a[i], b[i])
		}
	}
}

func TestReaderStalls(t *testing.T) {
	src := bytes.Repeat([]byte("z"), 256)
	r := NewReader(bytes.NewReader(src), ReaderConfig{StallEvery: 3})
	stalls, total := 0, 0
	buf := make([]byte, 50)
	for {
		n, err := r.Read(buf)
		total += n
		if n == 0 && err == nil {
			stalls++
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if stalls == 0 {
		t.Fatal("no (0, nil) stalls injected")
	}
	if total != len(src) {
		t.Fatalf("delivered %d bytes, want %d (stalls must not drop data)", total, len(src))
	}
}

func TestFlakyFailsThenRecovers(t *testing.T) {
	f := &Flaky{Fails: 3}
	for i := 1; i <= 3; i++ {
		err := f.Next()
		if err == nil {
			t.Fatalf("invocation %d succeeded, want transient failure", i)
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("invocation %d error %v does not wrap ErrInjected", i, err)
		}
		var tr interface{ Transient() bool }
		if !errors.As(err, &tr) || !tr.Transient() {
			t.Fatalf("invocation %d error %v is not marked transient", i, err)
		}
	}
	for i := 4; i <= 6; i++ {
		if err := f.Next(); err != nil {
			t.Fatalf("invocation %d failed after budget exhausted: %v", i, err)
		}
	}
	if f.Calls() != 6 {
		t.Fatalf("Calls = %d, want 6", f.Calls())
	}
}

func TestTransientWrapping(t *testing.T) {
	if Transient(nil) != nil {
		t.Fatal("Transient(nil) must be nil")
	}
	base := errors.New("boom")
	err := Transient(base)
	if !errors.Is(err, base) {
		t.Fatal("Transient must wrap the cause")
	}
	var tr interface{ Transient() bool }
	if !errors.As(err, &tr) || !tr.Transient() {
		t.Fatal("Transient marker not detectable via errors.As")
	}
	// A permanent error carries no marker.
	if errors.As(base, &tr) {
		t.Fatal("unwrapped error must not classify transient")
	}
}
