package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestReaderZeroConfigPassesThrough(t *testing.T) {
	src := bytes.Repeat([]byte("ACGT"), 1000)
	r := NewReader(bytes.NewReader(src), ReaderConfig{})
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("zero-config reader altered the stream")
	}
	if r.Delivered() != int64(len(src)) {
		t.Fatalf("Delivered = %d, want %d", r.Delivered(), len(src))
	}
}

func TestReaderFailsAtExactOffset(t *testing.T) {
	src := bytes.Repeat([]byte("x"), 10000)
	const failAt = 4097
	r := NewReader(bytes.NewReader(src), ReaderConfig{FailAfter: failAt, MaxRead: 100, Seed: 3})
	got, err := io.ReadAll(r)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if len(got) != failAt {
		t.Fatalf("delivered %d bytes before failing, want exactly %d", len(got), failAt)
	}
	// The fault is sticky: later reads keep failing.
	if _, err := r.Read(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("fault not sticky: %v", err)
	}
}

func TestReaderCustomError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	r := NewReader(bytes.NewReader([]byte("abcdef")), ReaderConfig{FailAfter: 3, Err: sentinel})
	_, err := io.ReadAll(r)
	if !errors.Is(err, sentinel) {
		t.Fatalf("want custom error, got %v", err)
	}
}

func TestReaderShortReadsAreDeterministic(t *testing.T) {
	src := bytes.Repeat([]byte("ACGT"), 512)
	lengths := func(seed int64) []int {
		r := NewReader(bytes.NewReader(src), ReaderConfig{Seed: seed, MaxRead: 17})
		var out []int
		buf := make([]byte, 64)
		for {
			n, err := r.Read(buf)
			if n > 0 {
				out = append(out, n)
				if n > 17 {
					t.Fatalf("read of %d bytes exceeds MaxRead", n)
				}
			}
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	a, b := lengths(42), lengths(42)
	if len(a) != len(b) {
		t.Fatalf("same seed produced %d vs %d reads", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("read %d: %d vs %d bytes — not deterministic", i, a[i], b[i])
		}
	}
}

func TestReaderStalls(t *testing.T) {
	src := bytes.Repeat([]byte("z"), 256)
	r := NewReader(bytes.NewReader(src), ReaderConfig{StallEvery: 3})
	stalls, total := 0, 0
	buf := make([]byte, 50)
	for {
		n, err := r.Read(buf)
		total += n
		if n == 0 && err == nil {
			stalls++
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if stalls == 0 {
		t.Fatal("no (0, nil) stalls injected")
	}
	if total != len(src) {
		t.Fatalf("delivered %d bytes, want %d (stalls must not drop data)", total, len(src))
	}
}
