package seedindex

import (
	"bytes"
	"testing"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

// testGenome synthesizes a deterministic genome with N runs so the
// ambiguity paths are exercised.
func testGenome(t *testing.T, chroms, length int) *genome.Genome {
	t.Helper()
	return genome.Synthesize(genome.SynthConfig{
		Seed:      42,
		NumChroms: chroms,
		ChromLen:  length,
		NRunRate:  40,
		NRunLen:   30,
	})
}

func sampleSpecs(t *testing.T, g *genome.Genome, n, k int) []arch.PatternSpec {
	t.Helper()
	pam := dna.MustParsePattern("NGG")
	raw := genome.SampleGuides(g, n, 20, pam, 7)
	if len(raw) < n {
		t.Fatalf("sampled %d/%d guides", len(raw), n)
	}
	var specs []arch.PatternSpec
	for gi, spacer := range raw {
		plus := arch.PatternSpec{Spacer: dna.PatternFromSeq(spacer), PAM: pam, K: k, Code: int32(gi * 2)}
		specs = append(specs, plus, plus.MinusSpec(int32(gi*2+1)))
	}
	return specs
}

// scanAll collects every (code, end) event an engine reports over a
// genome, deduplicated the way the collector would.
func scanAll(t *testing.T, e arch.Engine, g *genome.Genome) map[[2]int64]bool {
	t.Helper()
	out := make(map[[2]int64]bool)
	for i := range g.Chroms {
		c := &g.Chroms[i]
		if err := e.ScanChrom(c, func(r automata.Report) {
			out[[2]int64{int64(i)<<32 | int64(r.Code), int64(r.End)}] = true
		}); err != nil {
			t.Fatalf("scan %s: %v", c.Name, err)
		}
	}
	return out
}

// bruteSpecScan is the oracle: verify every window position directly.
func bruteSpecScan(g *genome.Genome, specs []arch.PatternSpec) map[[2]int64]bool {
	out := make(map[[2]int64]bool)
	for ci := range g.Chroms {
		seq := g.Chroms[ci].Seq
		for si := range specs {
			spec := &specs[si]
			site := spec.SiteLen()
			for p := 0; p+site <= len(seq); p++ {
				pamW := seq[p+spec.PAMOffset() : p+spec.PAMOffset()+len(spec.PAM)]
				if !spec.PAM.Matches(pamW) {
					continue
				}
				window := seq[p+spec.SpacerOffset() : p+spec.SpacerOffset()+len(spec.Spacer)]
				if window.HasAmbiguous() || spec.Spacer.Mismatches(window) > spec.K {
					continue
				}
				out[[2]int64{int64(ci)<<32 | int64(spec.Code), int64(p + site - 1)}] = true
			}
		}
	}
	return out
}

func diffHits(t *testing.T, label string, got, want map[[2]int64]bool) {
	t.Helper()
	for h := range want {
		if !got[h] {
			t.Errorf("%s: missing hit code=%d end=%d", label, h[0], h[1])
		}
	}
	for h := range got {
		if !want[h] {
			t.Errorf("%s: spurious hit code=%d end=%d", label, h[0], h[1])
		}
	}
}

// TestEngineMatchesOracle differential-tests both engine modes — self-
// indexing and persistent-index-backed — against a brute-force oracle,
// across mismatch budgets spanning radius 0, 1 and 2 fragments.
func TestEngineMatchesOracle(t *testing.T) {
	g := testGenome(t, 2, 6000)
	for _, k := range []int{0, 1, 3, 5} {
		specs := sampleSpecs(t, g, 3, k)
		want := bruteSpecScan(g, specs)

		self, err := New(specs, nil, Options{})
		if err != nil {
			t.Fatalf("k=%d self: %v", k, err)
		}
		diffHits(t, "self-indexing", scanAll(t, self, g), want)

		ix, err := Build(g, 0)
		if err != nil {
			t.Fatalf("k=%d build: %v", k, err)
		}
		bound, err := New(specs, ix, Options{})
		if err != nil {
			t.Fatalf("k=%d bound: %v", k, err)
		}
		diffHits(t, "index-backed", scanAll(t, bound, g), want)
	}
}

// TestDegenerateGuideFallsBack forces the variant cap and checks the
// fallback sweep still matches the oracle: an all-N spacer matches
// every concrete window next to a PAM.
func TestDegenerateGuideFallsBack(t *testing.T) {
	g := testGenome(t, 1, 3000)
	spacer := dna.Pattern{}
	for i := 0; i < 20; i++ {
		spacer = append(spacer, dna.MaskAny)
	}
	specs := []arch.PatternSpec{{Spacer: spacer, PAM: dna.MustParsePattern("NGG"), K: 2, Code: 0}}
	e, err := New(specs, nil, Options{MaxFragmentVariants: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !e.plans[0].fallback {
		t.Fatal("expected the all-N spacer to exceed the variant cap")
	}
	diffHits(t, "fallback", scanAll(t, e, g), bruteSpecScan(g, specs))
}

// TestRoundTrip pins encode→write→load fidelity: the reloaded index
// reproduces the genome byte-for-byte and serves identical scans.
func TestRoundTrip(t *testing.T) {
	g := testGenome(t, 3, 2500)
	ix, err := Build(g, 8)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/g.csix"
	if err := ix.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SeedLen != 8 || len(got.Chroms) != 3 {
		t.Fatalf("loaded SeedLen=%d chroms=%d", got.SeedLen, len(got.Chroms))
	}
	if err := got.ValidateGenome(g); err != nil {
		t.Fatalf("reloaded index fails validation: %v", err)
	}
	rg := got.Genome()
	if rg.TotalLen() != g.TotalLen() {
		t.Fatalf("reconstructed genome %d bases, want %d", rg.TotalLen(), g.TotalLen())
	}
	for i := range g.Chroms {
		if g.Chroms[i].Name != rg.Chroms[i].Name {
			t.Fatalf("chrom %d name %q, want %q", i, rg.Chroms[i].Name, g.Chroms[i].Name)
		}
		if g.Chroms[i].Seq.String() != rg.Chroms[i].Seq.String() {
			t.Fatalf("chrom %q sequence differs after round trip", g.Chroms[i].Name)
		}
	}
	specs := sampleSpecs(t, g, 2, 3)
	fresh, err := New(specs, ix, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := New(specs, got, Options{})
	if err != nil {
		t.Fatal(err)
	}
	diffHits(t, "reloaded", scanAll(t, reloaded, g), scanAll(t, fresh, g))
}

// TestBuildDeterminism pins the satellite claim: two builds of the same
// reference encode byte-identically (no timestamps, no map ordering).
func TestBuildDeterminism(t *testing.T) {
	g1 := testGenome(t, 2, 4000)
	g2 := testGenome(t, 2, 4000)
	ix1, err := Build(g1, 0)
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := Build(g2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ix1.Encode(), ix2.Encode()) {
		t.Fatal("two builds of the same genome encode differently")
	}
}

// TestValidateGenomeDetectsDrift mutates one base and expects the
// content hash to fail closed.
func TestValidateGenomeDetectsDrift(t *testing.T) {
	g := testGenome(t, 2, 2000)
	ix, err := Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.ValidateGenome(g); err != nil {
		t.Fatalf("unmutated genome rejected: %v", err)
	}
	mut := testGenome(t, 2, 2000)
	mut.Chroms[1].Seq[17] ^= 1
	err = ix.ValidateGenome(mut)
	if err == nil {
		t.Fatal("mutated genome accepted")
	}
	t.Logf("drift error: %v", err)
}

// TestTableLookup unit-tests the seed table on a tiny sequence with an
// ambiguity gap.
func TestTableLookup(t *testing.T) {
	seq, _ := dna.ParseSeq("ACGTACGTNNACGTACGT")
	tbl := buildTable(seq, 4)
	key, ok := dna.KmerOf(dna.MustParseSeq("ACGT"))
	if !ok {
		t.Fatal("kmer not concrete")
	}
	got := tbl.lookup(uint32(key))
	want := []uint32{0, 4, 10, 14}
	if len(got) != len(want) {
		t.Fatalf("ACGT postings %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ACGT postings %v, want %v", got, want)
		}
	}
	// No k-mer may straddle the N run.
	for _, pos := range []uint32{7, 8, 9} {
		for _, p := range tbl.lookup(uint32(key)) {
			if p == pos {
				t.Fatalf("posting %d straddles the N run", p)
			}
		}
	}
	if tbl.lookup(0xFFFF) != nil {
		t.Fatal("absent key returned postings")
	}
}

// TestPigeonholeFragments checks the fragment geometry invariants the
// exactness proof relies on: disjoint, in-bounds, seed-length fragments
// with radius floor(K/J).
func TestPigeonholeFragments(t *testing.T) {
	for _, l := range []int{20, 23, 24, 10, 31} {
		spacer := make(dna.Pattern, l)
		for i := range spacer {
			spacer[i] = dna.MaskA
		}
		for _, k := range []int{0, 2, 5} {
			spec := arch.PatternSpec{Spacer: spacer, PAM: dna.MustParsePattern("NGG"), K: k}
			plan := compilePlan(&spec, 10, DefaultMaxFragmentVariants)
			if l < 10 {
				if !plan.fallback {
					t.Fatalf("l=%d should fall back", l)
				}
				continue
			}
			j := l / 10
			if k/j > 2 {
				// Radius above 2 overflows the variant cap on a 10-mer
				// (81922 > 2^16); falling back is the designed behavior.
				if !plan.fallback {
					t.Fatalf("l=%d k=%d radius %d should fall back", l, k, k/j)
				}
				continue
			}
			if plan.fallback {
				t.Fatalf("l=%d k=%d unexpectedly fell back", l, k)
			}
			if len(plan.frags) != j {
				t.Fatalf("l=%d: %d fragments, want %d", l, len(plan.frags), j)
			}
			for fi, fr := range plan.frags {
				if fr.off < 0 || fr.off+10 > l {
					t.Fatalf("l=%d fragment %d out of bounds at %d", l, fi, fr.off)
				}
				if fi > 0 && fr.off < plan.frags[fi-1].off+10 {
					t.Fatalf("l=%d fragments %d/%d overlap", l, fi-1, fi)
				}
			}
			// J*(floor(K/J)+1) > K is the pigeonhole inequality.
			r := k / j
			if j*(r+1) <= k {
				t.Fatalf("pigeonhole violated: J=%d r=%d K=%d", j, r, k)
			}
		}
	}
}

// TestEnumerateFragment checks neighborhood sizes and the degenerate-
// position zero-cost rule.
func TestEnumerateFragment(t *testing.T) {
	frag := dna.MustParsePattern("ACGTACGTAC")
	for r, want := range map[int]int{0: 1, 1: 31, 2: 436} {
		keys, ok := enumerateFragment(frag, r, DefaultMaxFragmentVariants)
		if !ok || len(keys) != want {
			t.Fatalf("radius %d: %d variants (ok=%v), want %d", r, len(keys), ok, want)
		}
	}
	// An N position multiplies by 4 for free at radius 0.
	nfrag := dna.MustParsePattern("NCGTACGTAC")
	keys, ok := enumerateFragment(nfrag, 0, DefaultMaxFragmentVariants)
	if !ok || len(keys) != 4 {
		t.Fatalf("N fragment radius 0: %d variants, want 4", len(keys))
	}
	if _, ok := enumerateFragment(frag, 2, 10); ok {
		t.Fatal("cap not enforced")
	}
}
