package seedindex

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/cap-repro/crisprscan/internal/checkpoint"
	"github.com/cap-repro/crisprscan/internal/dna"
)

// On-disk layout (all integers little-endian):
//
//	header (28 bytes):
//	  [0:4)   magic "CSIX"
//	  [4:8)   format version (uint32)
//	  [8:12)  seed length (uint32)
//	  [12:16) chromosome count (uint32)
//	  [16:24) TOC byte length (uint64)
//	  [24:28) CRC-32C of header bytes [0:24)
//	TOC (tocLen bytes, one record per chromosome, in genome order):
//	  nameLen uint32, name [nameLen]byte
//	  seqLen uint64, seqSHA [32]byte
//	  seqOff uint64, seqSize uint64, seqCRC uint32
//	  seedOff uint64, seedSize uint64, seedCRC uint32
//	TOC CRC-32C (4 bytes)
//	sections (absolute offsets recorded in the TOC):
//	  sequence section: packed code words then ambiguity words, both
//	    []uint64; counts derive from seqLen ((n+31)/32 and (n+63)/64)
//	  seed section: keyCount uint32, keys [keyCount]uint32,
//	    starts [keyCount+1]uint32, postings [starts[keyCount]]uint32
//
// Every section carries its own CRC so corruption localizes; the header
// and TOC CRCs make truncation and bit rot in the metadata fail closed
// before any section is trusted.
const (
	formatMagic   = "CSIX"
	formatVersion = 1
	headerSize    = 28
)

// crcTable is the Castagnoli polynomial, hardware-accelerated on the
// platforms that matter.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Sentinel error classes. All index failures are permanent under the
// scan service's taxonomy (retrying cannot fix a corrupt or stale
// file); I/O errors from the underlying reader are wrapped with %w so a
// transient-marked cause keeps its classification.
var (
	// ErrCorrupt marks structural damage: bad magic, checksum
	// mismatch, truncation, or impossible geometry.
	ErrCorrupt = errors.New("seedindex: index corrupt")
	// ErrVersion marks a format-version skew: the file is well-formed
	// but written by an incompatible build.
	ErrVersion = errors.New("seedindex: unsupported index version")
	// ErrStale marks an index whose content hashes no longer match the
	// reference it is asked to serve.
	ErrStale = errors.New("seedindex: index does not match genome")
)

// Encode serializes the index to its on-disk byte form. The encoding is
// fully deterministic — no timestamps, map iteration, or padding
// garbage — so two builds of the same genome are byte-identical (the
// build-determinism test pins this).
func (ix *Index) Encode() []byte {
	// Section payloads first, so the TOC can carry real offsets.
	seqSecs := make([][]byte, len(ix.Chroms))
	seedSecs := make([][]byte, len(ix.Chroms))
	tocSize := 0
	sectionsSize := 0
	for i := range ix.Chroms {
		c := &ix.Chroms[i]
		seqSecs[i] = encodeSeqSection(c.Packed)
		seedSecs[i] = encodeSeedSection(&c.table)
		tocSize += 4 + len(c.Name) + 8 + 32 + (8+8+4)*2
		sectionsSize += len(seqSecs[i]) + len(seedSecs[i])
	}
	buf := make([]byte, 0, headerSize+tocSize+4+sectionsSize)

	// Header.
	buf = append(buf, formatMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(ix.SeedLen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ix.Chroms)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(tocSize))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))

	// TOC.
	off := uint64(headerSize + tocSize + 4)
	tocStart := len(buf)
	for i := range ix.Chroms {
		c := &ix.Chroms[i]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Name)))
		buf = append(buf, c.Name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c.SeqLen))
		buf = append(buf, c.SeqSHA[:]...)
		for _, sec := range [][]byte{seqSecs[i], seedSecs[i]} {
			buf = binary.LittleEndian.AppendUint64(buf, off)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(len(sec)))
			buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(sec, crcTable))
			off += uint64(len(sec))
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf[tocStart:], crcTable))

	// Sections.
	for i := range ix.Chroms {
		buf = append(buf, seqSecs[i]...)
		buf = append(buf, seedSecs[i]...)
	}
	return buf
}

func encodeSeqSection(p *dna.Packed) []byte {
	words, amb := p.Words()
	buf := make([]byte, 0, 8*(len(words)+len(amb)))
	for _, w := range words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	for _, w := range amb {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

func encodeSeedSection(t *seedTable) []byte {
	buf := make([]byte, 0, 4*(1+len(t.keys)+len(t.starts)+len(t.postings)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.keys)))
	for _, k := range t.keys {
		buf = binary.LittleEndian.AppendUint32(buf, k)
	}
	for _, s := range t.starts {
		buf = binary.LittleEndian.AppendUint32(buf, s)
	}
	for _, p := range t.postings {
		buf = binary.LittleEndian.AppendUint32(buf, p)
	}
	return buf
}

// WriteFile encodes the index and writes it crash-safely (temp file,
// fsync, rename): a torn write leaves the previous file intact, never a
// half-written index.
func (ix *Index) WriteFile(path string) error {
	if err := checkpoint.AtomicWriteFile(path, ix.Encode()); err != nil {
		return fmt.Errorf("seedindex: writing %s: %w", path, err)
	}
	return nil
}

// readAt fetches exactly n bytes at off, mapping short reads to
// ErrCorrupt (a truncated file) while preserving the underlying error
// chain for classification.
func readAt(r io.ReaderAt, off int64, n int) ([]byte, error) {
	buf := make([]byte, n)
	got, err := r.ReadAt(buf, off)
	if got == n {
		return buf, nil
	}
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return nil, fmt.Errorf("%w: truncated at offset %d (wanted %d bytes, file ends after %d)", ErrCorrupt, off, n, got)
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return nil, fmt.Errorf("seedindex: read %d bytes at offset %d: %w", n, off, err)
}

// Read decodes an index from any io.ReaderAt (a file, an mmap window, a
// byte slice wrapped in bytes.NewReader). Every structural field is
// bounds-checked and every section checksum verified before the data is
// trusted: a damaged file fails closed here, never as silently wrong
// scan output.
func Read(r io.ReaderAt) (*Index, error) {
	hdr, err := readAt(r, 0, headerSize)
	if err != nil {
		return nil, err
	}
	if string(hdr[0:4]) != formatMagic {
		return nil, fmt.Errorf("%w: bad magic %q (not a genome seed index)", ErrCorrupt, hdr[0:4])
	}
	if crc32.Checksum(hdr[:24], crcTable) != binary.LittleEndian.Uint32(hdr[24:28]) {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(hdr[4:8]); v != formatVersion {
		return nil, fmt.Errorf("%w: file version %d, this build reads version %d", ErrVersion, v, formatVersion)
	}
	seedLen := int(binary.LittleEndian.Uint32(hdr[8:12]))
	chromCount := int(binary.LittleEndian.Uint32(hdr[12:16]))
	tocLen := binary.LittleEndian.Uint64(hdr[16:24])
	if seedLen < MinSeedLen || seedLen > MaxSeedLen {
		return nil, fmt.Errorf("%w: seed length %d out of range %d..%d", ErrCorrupt, seedLen, MinSeedLen, MaxSeedLen)
	}
	if tocLen > 1<<30 || chromCount > 1<<20 {
		return nil, fmt.Errorf("%w: implausible TOC geometry (%d chromosomes, %d TOC bytes)", ErrCorrupt, chromCount, tocLen)
	}
	toc, err := readAt(r, headerSize, int(tocLen)+4)
	if err != nil {
		return nil, err
	}
	if crc32.Checksum(toc[:tocLen], crcTable) != binary.LittleEndian.Uint32(toc[tocLen:]) {
		return nil, fmt.Errorf("%w: TOC checksum mismatch", ErrCorrupt)
	}

	ix := &Index{SeedLen: seedLen, byName: make(map[string]int, chromCount)}
	d := tocDecoder{buf: toc[:tocLen]}
	for i := 0; i < chromCount; i++ {
		nameLen := d.u32()
		if nameLen > 1<<16 {
			return nil, fmt.Errorf("%w: chromosome %d name length %d implausible", ErrCorrupt, i, nameLen)
		}
		name := string(d.bytes(int(nameLen)))
		seqLen := d.u64()
		var sha [32]byte
		copy(sha[:], d.bytes(32))
		seqOff, seqSize, seqCRC := d.u64(), d.u64(), d.u32()
		seedOff, seedSize, seedCRC := d.u64(), d.u64(), d.u32()
		if d.err {
			return nil, fmt.Errorf("%w: TOC ends mid-record (chromosome %d)", ErrCorrupt, i)
		}
		if seqLen > 1<<40 || seqSize > 1<<40 || seedSize > 1<<40 {
			return nil, fmt.Errorf("%w: chromosome %q implausible section geometry", ErrCorrupt, name)
		}
		if _, dup := ix.byName[name]; dup {
			return nil, fmt.Errorf("%w: duplicate chromosome %q", ErrCorrupt, name)
		}

		seqSec, err := readAt(r, int64(seqOff), int(seqSize))
		if err != nil {
			return nil, fmt.Errorf("seedindex: chromosome %q sequence section: %w", name, err)
		}
		if crc32.Checksum(seqSec, crcTable) != seqCRC {
			return nil, fmt.Errorf("%w: chromosome %q sequence section checksum mismatch", ErrCorrupt, name)
		}
		packed, err := decodeSeqSection(seqSec, int(seqLen))
		if err != nil {
			return nil, fmt.Errorf("seedindex: chromosome %q: %w", name, err)
		}

		seedSec, err := readAt(r, int64(seedOff), int(seedSize))
		if err != nil {
			return nil, fmt.Errorf("seedindex: chromosome %q seed section: %w", name, err)
		}
		if crc32.Checksum(seedSec, crcTable) != seedCRC {
			return nil, fmt.Errorf("%w: chromosome %q seed section checksum mismatch", ErrCorrupt, name)
		}
		table, err := decodeSeedSection(seedSec, int(seqLen), seedLen)
		if err != nil {
			return nil, fmt.Errorf("seedindex: chromosome %q: %w", name, err)
		}

		ix.byName[name] = len(ix.Chroms)
		ix.Chroms = append(ix.Chroms, ChromIndex{
			Name:   name,
			SeqLen: int(seqLen),
			SeqSHA: sha,
			Packed: packed,
			table:  table,
		})
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing TOC bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return ix, nil
}

// Load opens and decodes an index file.
func Load(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("seedindex: %w", err)
	}
	defer f.Close()
	ix, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("seedindex: %s: %w", path, err)
	}
	return ix, nil
}

// tocDecoder cursors over the TOC buffer; out-of-bounds reads set err
// instead of panicking so the caller reports one clean corruption error.
type tocDecoder struct {
	buf []byte
	off int
	err bool
}

func (d *tocDecoder) bytes(n int) []byte {
	if d.off+n > len(d.buf) {
		d.err = true
		return make([]byte, n)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *tocDecoder) u32() uint32 {
	return binary.LittleEndian.Uint32(d.bytes(4))
}

func (d *tocDecoder) u64() uint64 {
	return binary.LittleEndian.Uint64(d.bytes(8))
}

func decodeSeqSection(sec []byte, seqLen int) (*dna.Packed, error) {
	wordCount := (seqLen + 31) / 32
	ambCount := (seqLen + 63) / 64
	if len(sec) != 8*(wordCount+ambCount) {
		return nil, fmt.Errorf("%w: sequence section is %d bytes, %d bases need %d", ErrCorrupt, len(sec), seqLen, 8*(wordCount+ambCount))
	}
	words := make([]uint64, wordCount)
	amb := make([]uint64, ambCount)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(sec[8*i:])
	}
	for i := range amb {
		amb[i] = binary.LittleEndian.Uint64(sec[8*(wordCount+i):])
	}
	p, err := dna.FromWords(words, amb, seqLen)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return p, nil
}

func decodeSeedSection(sec []byte, seqLen, seedLen int) (seedTable, error) {
	var t seedTable
	if len(sec) < 4 {
		return t, fmt.Errorf("%w: seed section shorter than its key count", ErrCorrupt)
	}
	keyCount := int(binary.LittleEndian.Uint32(sec))
	want := 4 * (1 + keyCount + keyCount + 1)
	if keyCount > 1<<30 || len(sec) < want {
		return t, fmt.Errorf("%w: seed section is %d bytes, %d keys need at least %d", ErrCorrupt, len(sec), keyCount, want)
	}
	u32s := func(off, n int) []uint32 {
		out := make([]uint32, n)
		for i := range out {
			out[i] = binary.LittleEndian.Uint32(sec[off+4*i:])
		}
		return out
	}
	t.keys = u32s(4, keyCount)
	t.starts = u32s(4+4*keyCount, keyCount+1)
	postingCount := int(t.starts[keyCount])
	if len(sec) != want+4*postingCount {
		return t, fmt.Errorf("%w: seed section is %d bytes, geometry demands %d", ErrCorrupt, len(sec), want+4*postingCount)
	}
	t.postings = u32s(want, postingCount)

	// Structural invariants: keys strictly ascending, starts
	// non-decreasing from 0, postings in range and ascending per key. A
	// table violating them would break the binary search silently.
	keyLimit := uint64(1) << (2 * uint(seedLen))
	for i, k := range t.keys {
		if uint64(k) >= keyLimit || (i > 0 && t.keys[i-1] >= k) {
			return t, fmt.Errorf("%w: seed keys not strictly ascending in range", ErrCorrupt)
		}
	}
	if t.starts[0] != 0 {
		return t, fmt.Errorf("%w: seed starts do not begin at 0", ErrCorrupt)
	}
	for i := 1; i <= keyCount; i++ {
		if t.starts[i] < t.starts[i-1] {
			return t, fmt.Errorf("%w: seed starts decrease", ErrCorrupt)
		}
	}
	maxStart := seqLen - seedLen
	for i := 0; i < keyCount; i++ {
		for j := int(t.starts[i]); j < int(t.starts[i+1]); j++ {
			if int(t.postings[j]) > maxStart || (j > int(t.starts[i]) && t.postings[j-1] >= t.postings[j]) {
				return t, fmt.Errorf("%w: posting list for key %d malformed", ErrCorrupt, i)
			}
		}
	}
	return t, nil
}
