// Package seedindex implements the index-once, query-millions path: a
// persistent, versioned genome seed index (packed 2-bit sequence plus a
// k-mer seed table with per-seed posting lists) and the pigeonhole query
// engine that consumes it.
//
// The index inverts the cost model of every full-scan engine. Building
// is O(genome) and happens once, offline (cmd/genomeindex); a query for
// a guide set then splits each spacer into disjoint seed fragments,
// probes the table with every fragment variant inside the per-fragment
// mismatch radius, and verifies only the candidate loci the probes
// surface — so a scan touches O(candidates) genome positions instead of
// all of them. Candidates are always re-verified against the live
// sequence (PAM match, ambiguity skip, full-spacer Hamming count), which
// makes false positives structurally impossible; the pigeonhole split
// (see the pigeonhole guarantee below) makes false negatives impossible
// too, so the engine is hit-for-hit identical to the full-scan engines.
//
// Pigeonhole guarantee: a spacer of length L is covered by J =
// floor(L/S) disjoint fragments of S bases each, and every fragment is
// probed within Hamming radius r = floor(K/J). If a window had more than
// r mismatches in every fragment, its total would be at least
// J*(r+1) = J*floor(K/J) + J >= K + 1, exceeding the budget — so every
// reportable window is found through at least one fragment. Fragments
// that would enumerate more than the variant cap (deeply degenerate
// guides, or spacers shorter than one seed) fall back to a linear
// verify of every position for that pattern, preserving exactness.
package seedindex

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

// DefaultSeedLen is the seed-table k-mer width used when the caller does
// not choose one: long enough that random probes are selective
// (4^10 ≈ 10^6 distinct keys), short enough that a 20 nt spacer yields
// two fragments and radius floor(k/2) stays enumerable for k ≤ 5.
const DefaultSeedLen = 10

// Seed-length bounds: a key must pack into a uint32 (2 bits per base),
// and seeds shorter than 4 would make posting lists uselessly dense.
const (
	MinSeedLen = 4
	MaxSeedLen = 15
)

// Index is a loaded (or freshly built) genome seed index: per
// chromosome, the packed 2-bit sequence and the sorted k-mer seed table.
// It is immutable after construction and safe to share across
// concurrent scans — the scanserve genome cache keeps one per reference.
type Index struct {
	// SeedLen is the k-mer width of the seed table.
	SeedLen int
	// Chroms holds the per-chromosome sections in genome order.
	Chroms []ChromIndex

	byName map[string]int
}

// ChromIndex is one chromosome's section of the index.
type ChromIndex struct {
	// Name is the chromosome identifier (FASTA record ID).
	Name string
	// SeqLen is the sequence length in bases.
	SeqLen int
	// SeqSHA is the SHA-256 of the canonical base-code sequence
	// (A=0,C=1,G=2,T=3, every ambiguous character as BadBase), the
	// stale-index detector: a reference edited in place no longer
	// matches and the index fails closed.
	SeqSHA [32]byte
	// Packed is the 2-bit packed sequence with ambiguity bitmap.
	Packed *dna.Packed

	table seedTable
}

// seedTable is the per-chromosome seed lookup structure: sorted unique
// k-mer keys, a starts array of len(keys)+1, and the concatenated
// posting lists (ascending seed start positions per key). The flat
// layout serializes directly and binary-searches without pointer
// chasing.
type seedTable struct {
	keys     []uint32
	starts   []uint32
	postings []uint32
}

// lookup returns the posting list (seed start positions) for key, or
// nil if the k-mer does not occur.
func (t *seedTable) lookup(key uint32) []uint32 {
	i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= key })
	if i == len(t.keys) || t.keys[i] != key {
		return nil
	}
	return t.postings[t.starts[i]:t.starts[i+1]]
}

// buildTable indexes every fully concrete seedLen-mer of seq by start
// position. K-mers touching an ambiguous base are skipped — sound,
// because engines never report windows containing ambiguous bases, so
// every reportable window's seed fragments are concrete and indexed.
// Output is deterministic: keys ascending, postings ascending per key.
func buildTable(seq dna.Seq, seedLen int) seedTable {
	type kv struct{ key, pos uint32 }
	var pairs []kv
	if len(seq) >= seedLen {
		pairs = make([]kv, 0, len(seq)-seedLen+1)
	}
	var key uint32
	mask := uint32(1)<<(2*uint(seedLen)) - 1
	valid := 0 // trailing concrete bases accumulated
	for i, b := range seq {
		if b > dna.T {
			valid = 0
			continue
		}
		key = (key<<2 | uint32(b)) & mask
		valid++
		if valid >= seedLen {
			pairs = append(pairs, kv{key: key, pos: uint32(i - seedLen + 1)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].key != pairs[j].key {
			return pairs[i].key < pairs[j].key
		}
		return pairs[i].pos < pairs[j].pos
	})
	var t seedTable
	t.starts = append(t.starts, 0)
	for _, p := range pairs {
		if len(t.keys) == 0 || t.keys[len(t.keys)-1] != p.key {
			t.keys = append(t.keys, p.key)
			t.starts = append(t.starts, uint32(len(t.postings)))
		}
		t.postings = append(t.postings, p.pos)
		t.starts[len(t.starts)-1] = uint32(len(t.postings))
	}
	return t
}

// seqSHA canonicalizes and hashes a base-code sequence.
func seqSHA(seq dna.Seq) [32]byte {
	buf := make([]byte, len(seq))
	for i, b := range seq {
		buf[i] = byte(b)
	}
	return sha256.Sum256(buf)
}

// Build constructs the full index for a genome. The result is
// deterministic: two builds of the same genome are byte-identical once
// encoded (no timestamps, sorted seed keys, genome-order chromosomes).
func Build(g *genome.Genome, seedLen int) (*Index, error) {
	if g == nil {
		return nil, fmt.Errorf("seedindex: nil genome")
	}
	if seedLen == 0 {
		seedLen = DefaultSeedLen
	}
	if seedLen < MinSeedLen || seedLen > MaxSeedLen {
		return nil, fmt.Errorf("seedindex: seed length %d out of range %d..%d", seedLen, MinSeedLen, MaxSeedLen)
	}
	ix := &Index{SeedLen: seedLen, byName: make(map[string]int, len(g.Chroms))}
	for i := range g.Chroms {
		c := &g.Chroms[i]
		if _, dup := ix.byName[c.Name]; dup {
			return nil, fmt.Errorf("seedindex: duplicate chromosome %q", c.Name)
		}
		packed := c.Packed
		if packed == nil {
			packed = dna.Pack(c.Seq)
		}
		ix.byName[c.Name] = len(ix.Chroms)
		ix.Chroms = append(ix.Chroms, ChromIndex{
			Name:   c.Name,
			SeqLen: len(c.Seq),
			SeqSHA: seqSHA(c.Seq),
			Packed: packed,
			table:  buildTable(c.Seq, seedLen),
		})
	}
	return ix, nil
}

// chrom returns the section for name, or nil if the index lacks it.
func (ix *Index) chrom(name string) *ChromIndex {
	i, ok := ix.byName[name]
	if !ok {
		return nil
	}
	return &ix.Chroms[i]
}

// Keys returns the number of distinct seed keys in the section.
func (c *ChromIndex) Keys() int { return len(c.table.keys) }

// Postings returns the total posting-list length of the section.
func (c *ChromIndex) Postings() int { return len(c.table.postings) }

// ValidateGenome checks that the index exactly describes g: same
// chromosomes in the same order, same lengths, same content hashes. A
// mismatch means the FASTA changed after the index was built (or the
// index belongs to a different reference); scanning with such an index
// could silently miss sites, so callers must fail closed on error.
func (ix *Index) ValidateGenome(g *genome.Genome) error {
	if g == nil {
		return fmt.Errorf("seedindex: nil genome")
	}
	if len(g.Chroms) != len(ix.Chroms) {
		return fmt.Errorf("%w: index has %d chromosomes, genome has %d", ErrStale, len(ix.Chroms), len(g.Chroms))
	}
	for i := range g.Chroms {
		c, ci := &g.Chroms[i], &ix.Chroms[i]
		if c.Name != ci.Name {
			return fmt.Errorf("%w: chromosome %d is %q in index, %q in genome", ErrStale, i, ci.Name, c.Name)
		}
		if len(c.Seq) != ci.SeqLen {
			return fmt.Errorf("%w: chromosome %q length %d in index, %d in genome", ErrStale, c.Name, ci.SeqLen, len(c.Seq))
		}
		if seqSHA(c.Seq) != ci.SeqSHA {
			return fmt.Errorf("%w: chromosome %q content hash differs (reference edited after indexing?)", ErrStale, c.Name)
		}
	}
	return nil
}

// Genome materializes the reference the index was built from: the index
// is self-contained, so a scan can run without the original FASTA.
// Ambiguous positions come back as the canonical N — exactly how the
// FASTA parser canonicalizes them, so scan output is identical.
func (ix *Index) Genome() *genome.Genome {
	chroms := make([]genome.Chromosome, len(ix.Chroms))
	for i := range ix.Chroms {
		c := &ix.Chroms[i]
		chroms[i] = genome.Chromosome{Name: c.Name, Seq: c.Packed.Unpack(), Packed: c.Packed}
	}
	return genome.New(chroms...)
}
