package seedindex

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// DefaultMaxFragmentVariants caps the Hamming-ball enumeration per seed
// fragment. A concrete 10-mer at radius 2 enumerates 436 variants; the
// cap only trips on deeply degenerate guides, which then fall back to
// the linear verify path (exactness is never traded for speed).
const DefaultMaxFragmentVariants = 1 << 16

// verifyChunk is the candidate-batch size handed to the worker pool in
// the probe path. Candidates are sparse, so the unit is much smaller
// than arch.DefaultChunk (which is sized for raw genome positions).
const verifyChunk = 1 << 12

// Options tunes the engine.
type Options struct {
	// SeedLen is the fragment width for the self-indexing mode (ignored
	// when a persistent Index supplies its own). 0 means DefaultSeedLen.
	SeedLen int
	// MaxFragmentVariants caps per-fragment neighborhood enumeration;
	// 0 means DefaultMaxFragmentVariants.
	MaxFragmentVariants int
}

// fragPlan is one precompiled seed fragment of a pattern: its window
// offset and every table key within the per-fragment mismatch radius.
type fragPlan struct {
	off      int
	variants []uint32
}

// specPlan is the compiled query plan for one pattern spec: either a
// fragment probe set, or fallback (linear verify of every position)
// when the spacer is shorter than a seed or the neighborhood exceeds
// the variant cap.
type specPlan struct {
	fallback bool
	frags    []fragPlan
}

// Engine is the seed-index scanner. It runs in one of two modes sharing
// the identical query path: bound to a persistent Index (built offline,
// shared across scans — the index-once-query-millions shape), or
// self-indexing, building a transient per-chromosome table inside the
// scan so the engine can serve the ordinary Search API with no file —
// which is how the cross-engine parity matrix and differential fuzzing
// exercise the exact same probe/verify code the persistent path uses.
type Engine struct {
	specs     []arch.PatternSpec
	plans     []specPlan
	idx       *Index // nil in self-indexing mode
	seedLen   int
	spacerLen int
	site      int
	anyProbed bool
	// Workers is the verify-pool width.
	Workers int

	// rec receives scan metrics; nil disables instrumentation.
	rec *metrics.Recorder
}

// SetMetrics implements arch.Instrumented.
func (e *Engine) SetMetrics(rec *metrics.Recorder) { e.rec = rec }

// New compiles the pattern set against an optional persistent index
// (nil selects the self-indexing mode).
func New(specs []arch.PatternSpec, idx *Index, opt Options) (*Engine, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("seedindex: no patterns")
	}
	e := &Engine{specs: specs, idx: idx, Workers: 1}
	e.spacerLen = len(specs[0].Spacer)
	e.site = specs[0].SiteLen()
	if e.spacerLen == 0 {
		return nil, fmt.Errorf("seedindex: empty spacer")
	}
	if idx != nil {
		e.seedLen = idx.SeedLen
	} else {
		e.seedLen = opt.SeedLen
		if e.seedLen == 0 {
			e.seedLen = DefaultSeedLen
		}
		if e.seedLen > e.spacerLen && e.spacerLen >= MinSeedLen {
			e.seedLen = e.spacerLen
		}
	}
	if e.seedLen < MinSeedLen || e.seedLen > MaxSeedLen {
		return nil, fmt.Errorf("seedindex: seed length %d out of range %d..%d", e.seedLen, MinSeedLen, MaxSeedLen)
	}
	variantCap := opt.MaxFragmentVariants
	if variantCap == 0 {
		variantCap = DefaultMaxFragmentVariants
	}
	e.plans = make([]specPlan, len(specs))
	for i := range specs {
		spec := &specs[i]
		if len(spec.Spacer) != e.spacerLen || spec.SiteLen() != e.site {
			return nil, fmt.Errorf("seedindex: pattern %d geometry differs from pattern 0", i)
		}
		if spec.K < 0 || spec.K > e.spacerLen {
			return nil, fmt.Errorf("seedindex: pattern %d budget %d out of range", i, spec.K)
		}
		e.plans[i] = compilePlan(spec, e.seedLen, variantCap)
		if !e.plans[i].fallback {
			e.anyProbed = true
		}
	}
	return e, nil
}

// compilePlan splits a spec's spacer into J = floor(L/S) disjoint
// fragments at offsets floor(j*L/J) and enumerates each fragment's
// Hamming ball at radius floor(K/J). The pigeonhole argument in the
// package comment guarantees any window within the total budget matches
// at least one fragment within its radius.
func compilePlan(spec *arch.PatternSpec, seedLen, variantCap int) specPlan {
	l := len(spec.Spacer)
	j := l / seedLen
	if j == 0 {
		return specPlan{fallback: true}
	}
	r := spec.K / j
	spacerOff := spec.SpacerOffset()
	frags := make([]fragPlan, 0, j)
	for f := 0; f < j; f++ {
		start := f * l / j
		variants, ok := enumerateFragment(spec.Spacer[start:start+seedLen], r, variantCap)
		if !ok {
			return specPlan{fallback: true}
		}
		frags = append(frags, fragPlan{off: spacerOff + start, variants: variants})
	}
	return specPlan{frags: frags}
}

// enumerateFragment lists every concrete seedLen-mer within Hamming
// distance radius of the fragment pattern, as table keys in
// dna.KmerOf orientation. Bases inside a position's mask cost nothing
// (IUPAC N never spends budget), so the enumeration covers exactly the
// fragment's radius-r language. ok is false once the cap is exceeded.
func enumerateFragment(frag dna.Pattern, radius, variantCap int) (keys []uint32, ok bool) {
	ok = true
	var rec func(pos int, key uint32, used int)
	rec = func(pos int, key uint32, used int) {
		if !ok {
			return
		}
		if pos == len(frag) {
			if len(keys) >= variantCap {
				ok = false
				return
			}
			keys = append(keys, key)
			return
		}
		m := frag[pos]
		for b := dna.A; b <= dna.T; b++ {
			cost := 1
			if m.Has(b) {
				cost = 0
			}
			if used+cost > radius {
				continue
			}
			rec(pos+1, key<<2|uint32(b), used+cost)
		}
	}
	rec(0, 0, 0)
	if !ok {
		return nil, false
	}
	return keys, true
}

// Name implements arch.Engine.
func (e *Engine) Name() string { return "seed-index" }

// ScanChrom implements arch.Engine; it is the ctx-less compatibility
// bridge around ScanChromContext.
func (e *Engine) ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error {
	return e.ScanChromContext(context.Background(), c, emit)
}

// cand is one (pattern, window start) pair awaiting verification.
type cand struct {
	spec int32
	pos  int32
}

// ScanChromContext implements arch.ContextEngine. Probing is cheap and
// runs inline; candidate verification and the fallback position sweeps
// drain through the arch.ChunkScan worker pool, which bounds
// cancellation latency, isolates worker panics, and returns batches in
// chunk order so emission is deterministic.
func (e *Engine) ScanChromContext(ctx context.Context, c *genome.Chromosome, emit func(automata.Report)) error {
	seq := c.Seq
	if len(seq) < e.site {
		return nil
	}
	tbl, err := e.tableFor(c)
	if err != nil {
		return err
	}
	workers := e.Workers
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}

	// Probe phase: collect deduplicated candidate windows per spec, in
	// spec order then position order.
	var cands []cand
	var probes int64
	var scratch []int32
	for si := range e.plans {
		plan := &e.plans[si]
		if plan.fallback {
			continue
		}
		scratch = scratch[:0]
		for fi := range plan.frags {
			fr := &plan.frags[fi]
			for _, vk := range fr.variants {
				for _, seedPos := range tbl.lookup(vk) {
					p := int(seedPos) - fr.off
					if p < 0 || p+e.site > len(seq) {
						continue
					}
					probes++
					scratch = append(scratch, int32(p))
				}
			}
		}
		sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
		for i, p := range scratch {
			if i > 0 && scratch[i-1] == p {
				continue
			}
			cands = append(cands, cand{spec: int32(si), pos: p})
		}
	}
	e.rec.Add(metrics.CounterCandidateWindows, probes)

	// Verify phase: candidates first, then any fallback sweeps.
	if len(cands) > 0 {
		chunks, err := arch.ChunkScan(ctx, "seed-index verify "+c.Name, workers, len(cands), verifyChunk, e.rec,
			//crisprlint:hotpath
			func(lo, hi int, out *[]automata.Report) error {
				var pamHits, verifs int64
				// Ranging over the chunk's own sub-slice (rather than
				// indexing cands by lo..hi) lets the compiler drop the
				// per-candidate bounds check.
				batch := cands[lo:hi]
				for i := range batch {
					cd := batch[i]
					e.verifyPos(seq, &e.specs[cd.spec], int(cd.pos), out, &pamHits, &verifs)
				}
				e.rec.Add(metrics.CounterPrefilterHits, pamHits)
				e.rec.Add(metrics.CounterVerifications, verifs)
				return nil
			})
		if err != nil {
			return err
		}
		for _, rs := range chunks {
			for _, r := range rs {
				emit(r)
			}
		}
	}
	for si := range e.plans {
		if !e.plans[si].fallback {
			continue
		}
		spec := &e.specs[si]
		total := len(seq) - e.site + 1
		chunks, err := arch.ChunkScan(ctx, "seed-index sweep "+c.Name, workers, total, arch.DefaultChunk, e.rec,
			//crisprlint:hotpath
			func(lo, hi int, out *[]automata.Report) error {
				var pamHits, verifs int64
				for p := lo; p < hi; p++ {
					e.verifyPos(seq, spec, p, out, &pamHits, &verifs)
				}
				e.rec.Add(metrics.CounterCandidateWindows, int64(hi-lo))
				e.rec.Add(metrics.CounterPrefilterHits, pamHits)
				e.rec.Add(metrics.CounterVerifications, verifs)
				return nil
			})
		if err != nil {
			return err
		}
		for _, rs := range chunks {
			for _, r := range rs {
				emit(r)
			}
		}
	}
	return nil
}

// tableFor resolves the seed table for a chromosome: the persistent
// index's section (failing closed if the chromosome is missing or its
// length or content hash disagrees — a stale or foreign index must
// never scan), or a
// transient table built on the spot in self-indexing mode. When every
// plan is a fallback sweep no table is needed at all.
func (e *Engine) tableFor(c *genome.Chromosome) (*seedTable, error) {
	if e.idx != nil {
		ci := e.idx.chrom(c.Name)
		if ci == nil {
			return nil, fmt.Errorf("%w: chromosome %q not in index", ErrStale, c.Name)
		}
		if ci.SeqLen != len(c.Seq) {
			return nil, fmt.Errorf("%w: chromosome %q is %d bases in the index, %d in the genome", ErrStale, c.Name, ci.SeqLen, len(c.Seq))
		}
		// Content hash too: a same-shape edit must fail closed here, not
		// silently drop the candidates the stale table no longer lists.
		// One SHA-256 pass per chromosome is noise next to the scan.
		if seqSHA(c.Seq) != ci.SeqSHA {
			return nil, fmt.Errorf("%w: chromosome %q content differs from the indexed reference", ErrStale, c.Name)
		}
		return &ci.table, nil
	}
	if !e.anyProbed {
		return &seedTable{}, nil
	}
	t := buildTable(c.Seq, e.seedLen)
	return &t, nil
}

// verifyPos applies the full exact-match semantics shared by every
// engine to one candidate window: PAM acceptance, the
// ambiguous-window skip, and the complete spacer Hamming count. Probes
// only ever add candidates, so a defective table can cause misses (and
// those are caught by hash validation), never false hits.
//
//crisprlint:hotpath
func (e *Engine) verifyPos(seq dna.Seq, spec *arch.PatternSpec, p int, out *[]automata.Report, pamHits, verifs *int64) {
	pam := spec.PAM
	pamOff := p + spec.PAMOffset()
	for i, m := range pam {
		if !m.Has(seq[pamOff+i]) {
			return
		}
	}
	*pamHits++
	spacerOff := p + spec.SpacerOffset()
	window := seq[spacerOff : spacerOff+e.spacerLen]
	if window.HasAmbiguous() {
		return
	}
	*verifs++
	if spec.Spacer.Mismatches(window) > spec.K {
		return
	}
	//crisprlint:allow hotpath match reports are rare relative to candidates; the batch grows amortized
	*out = append(*out, automata.Report{Code: spec.Code, End: p + e.site - 1})
}
