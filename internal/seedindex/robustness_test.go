package seedindex_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"testing"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/faultinject"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/scanserve"
	"github.com/cap-repro/crisprscan/internal/seedindex"
)

// The robustness battery: every way an index file can go bad must fail
// closed with a wrapped, classified error — never load into silently
// wrong scan results. Damage classes map to the scan service's error
// taxonomy: corruption, version skew and staleness are permanent
// (retrying cannot fix the file); injected I/O faults keep whatever
// classification the underlying error carries.

func buildEncoded(t *testing.T) (*seedindex.Index, []byte, *genome.Genome) {
	t.Helper()
	g := genome.Synthesize(genome.SynthConfig{Seed: 9, NumChroms: 2, ChromLen: 700, NRunRate: 50, NRunLen: 20})
	ix, err := seedindex.Build(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ix, ix.Encode(), g
}

func TestTruncatedFileFailsClosed(t *testing.T) {
	_, enc, _ := buildEncoded(t)
	for _, cut := range []int{0, 3, 27, 60, len(enc) / 2, len(enc) - 1} {
		_, err := seedindex.Read(bytes.NewReader(enc[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d loaded successfully", cut, len(enc))
		}
		if !errors.Is(err, seedindex.ErrCorrupt) {
			t.Fatalf("truncation at %d: error %v is not ErrCorrupt", cut, err)
		}
		if scanserve.Classify(err) != scanserve.ClassPermanent {
			t.Fatalf("truncation at %d classified %v, want Permanent", cut, scanserve.Classify(err))
		}
	}
}

// TestEveryBitFlipFailsClosed sweeps a single-bit flip across the whole
// file: the layered checksums (header, TOC, per-section) must catch all
// of them. This is the strongest form of the "never silently wrong"
// claim for stored bytes.
func TestEveryBitFlipFailsClosed(t *testing.T) {
	_, enc, _ := buildEncoded(t)
	flipped := make([]byte, len(enc))
	for i := range enc {
		copy(flipped, enc)
		flipped[i] ^= 1
		if _, err := seedindex.Read(bytes.NewReader(flipped)); err == nil {
			t.Fatalf("bit flip at byte %d/%d loaded successfully", i, len(enc))
		}
	}
}

func TestSectionBitFlipIsCorrupt(t *testing.T) {
	_, enc, _ := buildEncoded(t)
	// Flip a byte deep in the section area (past header + TOC).
	mut := append([]byte(nil), enc...)
	mut[len(mut)-10] ^= 0x40
	_, err := seedindex.Read(bytes.NewReader(mut))
	if !errors.Is(err, seedindex.ErrCorrupt) {
		t.Fatalf("section flip error %v, want ErrCorrupt", err)
	}
	if scanserve.Classify(err) != scanserve.ClassPermanent {
		t.Fatalf("section flip classified %v, want Permanent", scanserve.Classify(err))
	}
}

func TestVersionSkewFailsClosed(t *testing.T) {
	_, enc, _ := buildEncoded(t)
	mut := append([]byte(nil), enc...)
	// Bump the version field and re-seal the header checksum so the
	// failure is attributed to the version, not to corruption.
	binary.LittleEndian.PutUint32(mut[4:8], 99)
	crc := crc32.Checksum(mut[:24], crc32.MakeTable(crc32.Castagnoli))
	binary.LittleEndian.PutUint32(mut[24:28], crc)
	_, err := seedindex.Read(bytes.NewReader(mut))
	if !errors.Is(err, seedindex.ErrVersion) {
		t.Fatalf("version skew error %v, want ErrVersion", err)
	}
	if scanserve.Classify(err) != scanserve.ClassPermanent {
		t.Fatalf("version skew classified %v, want Permanent", scanserve.Classify(err))
	}
}

func TestNotAnIndexFailsClosed(t *testing.T) {
	_, err := seedindex.Read(bytes.NewReader([]byte(">chr1\nACGTACGTACGT\n")))
	if !errors.Is(err, seedindex.ErrCorrupt) {
		t.Fatalf("FASTA-as-index error %v, want ErrCorrupt", err)
	}
}

// TestStaleIndexFailsClosed covers the mutated-FASTA case end to end:
// content-hash validation rejects the pair, and the engine's cheap
// per-chromosome guards reject structural drift even without a
// validation call.
func TestStaleIndexFailsClosed(t *testing.T) {
	ix, _, g := buildEncoded(t)

	mutated := genome.Synthesize(genome.SynthConfig{Seed: 9, NumChroms: 2, ChromLen: 700, NRunRate: 50, NRunLen: 20})
	mutated.Chroms[0].Seq[123] ^= 2
	err := ix.ValidateGenome(mutated)
	if !errors.Is(err, seedindex.ErrStale) {
		t.Fatalf("mutated FASTA validation error %v, want ErrStale", err)
	}
	if scanserve.Classify(err) != scanserve.ClassPermanent {
		t.Fatalf("stale classified %v, want Permanent", scanserve.Classify(err))
	}

	// Renamed chromosome: engine refuses at scan time.
	e := engineFor(t, ix)
	drop := func(automata.Report) {}
	renamed := genome.New(genome.Chromosome{Name: "other", Seq: g.Chroms[0].Seq})
	scanErr := e.ScanChrom(&renamed.Chroms[0], drop)
	if !errors.Is(scanErr, seedindex.ErrStale) {
		t.Fatalf("renamed chromosome scan error %v, want ErrStale", scanErr)
	}

	// Length drift: engine refuses at scan time.
	short := genome.New(genome.Chromosome{Name: g.Chroms[0].Name, Seq: g.Chroms[0].Seq[:600]})
	scanErr = e.ScanChrom(&short.Chroms[0], drop)
	if !errors.Is(scanErr, seedindex.ErrStale) {
		t.Fatalf("length-drift scan error %v, want ErrStale", scanErr)
	}

	// Same-shape content drift: name and length agree, only the bases
	// changed — the per-chromosome content hash must still refuse.
	edited := append(dna.Seq(nil), g.Chroms[0].Seq...)
	edited[50] ^= 1
	drifted := genome.New(genome.Chromosome{Name: g.Chroms[0].Name, Seq: edited})
	scanErr = e.ScanChrom(&drifted.Chroms[0], drop)
	if !errors.Is(scanErr, seedindex.ErrStale) {
		t.Fatalf("content-drift scan error %v, want ErrStale", scanErr)
	}
}

// engineFor builds a one-guide engine bound to ix.
func engineFor(t *testing.T, ix *seedindex.Index) *seedindex.Engine {
	t.Helper()
	spec := arch.PatternSpec{
		Spacer: dna.MustParsePattern("ACGTACGTACGTACGTACGT"),
		PAM:    dna.MustParsePattern("NGG"),
		K:      3,
		Code:   0,
	}
	e, err := seedindex.New([]arch.PatternSpec{spec}, ix, seedindex.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestFaultyReaderAt injects I/O failures at every call index: loads
// must fail with the injected error in the chain, and a transient-
// marked cause must classify transient (the scan service will retry the
// load, which is exactly right for flaky storage).
func TestFaultyReaderAt(t *testing.T) {
	_, enc, _ := buildEncoded(t)

	// Count the calls a clean load takes, then fail each one in turn.
	probe := &faultinject.ReaderAt{Inner: bytes.NewReader(enc)}
	if _, err := seedindex.Read(probe); err != nil {
		t.Fatalf("clean load through pass-through wrapper: %v", err)
	}
	total := probe.Calls()
	if total < 3 {
		t.Fatalf("expected at least header+TOC+section reads, got %d", total)
	}
	for call := 1; call <= total; call++ {
		r := &faultinject.ReaderAt{
			Inner:      bytes.NewReader(enc),
			FailOnCall: call,
			Err:        faultinject.Transient(faultinject.ErrInjected),
		}
		_, err := seedindex.Read(r)
		if err == nil {
			t.Fatalf("injected failure on call %d/%d loaded successfully", call, total)
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("call %d: injected cause lost from chain: %v", call, err)
		}
		if scanserve.Classify(err) != scanserve.ClassTransient {
			t.Fatalf("call %d: transient fault classified %v: %v", call, scanserve.Classify(err), err)
		}
	}
}

// TestLoadMissingFile pins the plain-I/O error path of Load.
func TestLoadMissingFile(t *testing.T) {
	_, err := seedindex.Load(t.TempDir() + "/nope.csix")
	if err == nil || !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing file error %v, want os.ErrNotExist in chain", err)
	}
}
