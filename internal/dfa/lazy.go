package dfa

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/cap-repro/crisprscan/internal/automata"
)

// Lazy is an on-the-fly determinized scanner: deterministic states are
// materialized the first time they are visited, so scanning costs one
// table step per symbol (like a DFA) without ever paying the full
// subset-construction blowup (which E1 shows reaching 10^5 states per
// guide at k=5). This is how HyperScan's McClellan engines and classic
// lazy-DFA regex engines handle automata whose full determinization is
// too large. Memory is bounded: when the state cache reaches MaxStates,
// it is flushed and rebuilt from the current configuration, trading a
// little recomputation for a hard cap.
type Lazy struct {
	alphabet int
	words    int
	classHit [][]uint64
	startAll []uint64
	out      [][]uint32
	reports  []int32 // per NFA state, NoReport or code

	maxStates int
	index     map[string]int32
	sets      [][]uint64
	trans     []int32   // sets x alphabet, -1 = not yet computed
	repCache  [][]int32 // per DFA state
	// Flushes counts cache resets (observable for tests/stats).
	Flushes int
}

// NewLazy prepares a lazy determinizer for n. maxStates bounds the
// cached DFA states (default 1<<16).
func NewLazy(n *automata.NFA, maxStates int) (*Lazy, error) {
	if maxStates <= 0 {
		maxStates = 1 << 16
	}
	if maxStates < 2 {
		return nil, fmt.Errorf("dfa: lazy cache must hold at least 2 states")
	}
	for i := range n.States {
		if n.States[i].Start == automata.StartOfData {
			return nil, fmt.Errorf("dfa: start-of-data states are not supported")
		}
		if n.States[i].ReportMid != automata.NoReport {
			return nil, fmt.Errorf("dfa: mid-symbol reports are not supported")
		}
	}
	words := (len(n.States) + 63) / 64
	l := &Lazy{
		alphabet:  n.Alphabet,
		words:     words,
		classHit:  make([][]uint64, n.Alphabet),
		startAll:  make([]uint64, words),
		out:       make([][]uint32, len(n.States)),
		reports:   make([]int32, len(n.States)),
		maxStates: maxStates,
	}
	for s := range l.classHit {
		l.classHit[s] = make([]uint64, words)
	}
	for i := range n.States {
		st := &n.States[i]
		w, b := i/64, uint(i%64)
		for s := 0; s < n.Alphabet; s++ {
			if st.Class.HasSym(uint8(s)) {
				l.classHit[s][w] |= 1 << b
			}
		}
		if st.Start == automata.AllInput {
			l.startAll[w] |= 1 << b
		}
		l.out[i] = st.Out
		l.reports[i] = st.Report
	}
	l.reset()
	return l, nil
}

// reset drops every cached state (the start/empty set is re-interned).
func (l *Lazy) reset() {
	l.index = make(map[string]int32)
	l.sets = l.sets[:0]
	l.trans = l.trans[:0]
	l.repCache = l.repCache[:0]
	l.intern(make([]uint64, l.words))
}

func setKey(set []uint64) string {
	buf := make([]byte, 8*len(set))
	for i, w := range set {
		for j := 0; j < 8; j++ {
			buf[8*i+j] = byte(w >> (8 * j))
		}
	}
	return string(buf)
}

// intern registers a configuration and returns its DFA id.
func (l *Lazy) intern(set []uint64) int32 {
	k := setKey(set)
	if id, ok := l.index[k]; ok {
		return id
	}
	id := int32(len(l.sets))
	l.index[k] = id
	l.sets = append(l.sets, append([]uint64(nil), set...))
	row := make([]int32, l.alphabet)
	for i := range row {
		row[i] = -1
	}
	l.trans = append(l.trans, row...)
	var reps []int32
	for w, word := range set {
		for word != 0 {
			i := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			if r := l.reports[i]; r != automata.NoReport {
				reps = append(reps, r)
			}
		}
	}
	sort.Slice(reps, func(a, b int) bool { return reps[a] < reps[b] })
	l.repCache = append(l.repCache, reps)
	return id
}

// step computes (and caches) the successor of DFA state id on sym.
func (l *Lazy) step(id int32, sym uint8) int32 {
	if t := l.trans[int(id)*l.alphabet+int(sym)]; t >= 0 {
		return t
	}
	succ := make([]uint64, l.words)
	copy(succ, l.startAll)
	for w, word := range l.sets[id] {
		for word != 0 {
			i := w*64 + bits.TrailingZeros64(word)
			word &= word - 1
			for _, v := range l.out[i] {
				succ[v/64] |= 1 << (v % 64)
			}
		}
	}
	hit := l.classHit[sym]
	for w := range succ {
		succ[w] &= hit[w]
	}
	if len(l.sets) >= l.maxStates {
		// Cache full: flush everything and continue from the successor
		// configuration in the fresh cache. The caller's state id is
		// whatever this returns, so no stale ids survive.
		l.reset()
		l.Flushes++
		return l.intern(succ)
	}
	t := l.intern(succ)
	l.trans[int(id)*l.alphabet+int(sym)] = t
	return t
}

// Scan runs the lazy DFA over input.
func (l *Lazy) Scan(input []uint8, emit func(automata.Report)) {
	cur := l.intern(make([]uint64, l.words))
	for t, sym := range input {
		if int(sym) >= l.alphabet {
			cur = l.intern(make([]uint64, l.words))
			continue
		}
		cur = l.step(cur, sym)
		for _, code := range l.repCache[cur] {
			emit(automata.Report{Code: code, End: t})
		}
	}
}

// CachedStates reports the current cache population.
func (l *Lazy) CachedStates() int { return len(l.sets) }
