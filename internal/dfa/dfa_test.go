package dfa

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
)

func guideNFA(t *testing.T, rng *rand.Rand, m, k int, code int32) *automata.NFA {
	t.Helper()
	spacer := make(dna.Seq, m)
	for i := range spacer {
		spacer[i] = dna.Base(rng.Intn(4))
	}
	n, err := automata.CompileHamming(dna.PatternFromSeq(spacer),
		automata.CompileOptions{MaxMismatches: k, PAM: dna.MustParsePattern("NGG"), Code: code})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func randInput(rng *rand.Rand, n int, deadRate float64) []uint8 {
	in := make([]uint8, n)
	for i := range in {
		if rng.Float64() < deadRate {
			in[i] = automata.DeadSymbol
		} else {
			in[i] = uint8(rng.Intn(4))
		}
	}
	return in
}

func canon(r []automata.Report) []automata.Report {
	sort.Slice(r, func(i, j int) bool {
		if r[i].End != r[j].End {
			return r[i].End < r[j].End
		}
		return r[i].Code < r[j].Code
	})
	w := 0
	for i, x := range r {
		if i == 0 || x != r[w-1] {
			r[w] = x
			w++
		}
	}
	return r[:w]
}

func sameReports(a, b []automata.Report) bool {
	a, b = canon(a), canon(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSubsetConstructionMatchesNFA(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 12; trial++ {
		n := guideNFA(t, rng, 5+rng.Intn(5), rng.Intn(3), int32(trial))
		d, err := FromNFA(n, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		in := randInput(rng, 3000, 0.01)
		want := automata.NewSim(n).ScanCollect(in)
		got := d.ScanCollect(in)
		if !sameReports(got, want) {
			t.Fatalf("trial %d: DFA and NFA disagree (%d vs %d reports)", trial, len(got), len(want))
		}
	}
}

func TestSubsetConstructionUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	var parts []*automata.NFA
	for g := 0; g < 4; g++ {
		parts = append(parts, guideNFA(t, rng, 6, 1, int32(g)))
	}
	u, err := automata.UnionAll("u", parts)
	if err != nil {
		t.Fatal(err)
	}
	d, err := FromNFA(u, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(rng, 5000, 0)
	if !sameReports(d.ScanCollect(in), automata.NewSim(u).ScanCollect(in)) {
		t.Fatal("union DFA disagrees with NFA")
	}
}

func TestMaxStatesGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n := guideNFA(t, rng, 12, 3, 0)
	if _, err := FromNFA(n, BuildOptions{MaxStates: 10}); err == nil {
		t.Error("expected state-limit error")
	}
}

func TestRejectsStartOfData(t *testing.T) {
	n := automata.New(4, "sod")
	s := n.AddState(automata.NewState(automata.ClassOfMask(dna.MaskA), automata.StartOfData))
	n.States[s].Report = 0
	if _, err := FromNFA(n, BuildOptions{}); err == nil {
		t.Error("start-of-data must be rejected")
	}
}

func TestMinimizePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	for trial := 0; trial < 8; trial++ {
		n := guideNFA(t, rng, 5+rng.Intn(4), rng.Intn(3), int32(trial))
		d, err := FromNFA(n, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		m := Minimize(d)
		if m.NumStates() > d.NumStates() {
			t.Fatalf("minimization grew the DFA: %d -> %d", d.NumStates(), m.NumStates())
		}
		in := randInput(rng, 4000, 0.02)
		if !sameReports(m.ScanCollect(in), d.ScanCollect(in)) {
			t.Fatalf("trial %d: minimized DFA disagrees", trial)
		}
	}
}

func TestMinimizeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	n := guideNFA(t, rng, 8, 2, 0)
	d, err := FromNFA(n, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m1 := Minimize(d)
	m2 := Minimize(m1)
	if m2.NumStates() != m1.NumStates() {
		t.Fatalf("minimize not idempotent: %d -> %d", m1.NumStates(), m2.NumStates())
	}
}

func TestMinimizeMergesRedundantStates(t *testing.T) {
	// Build a 2-state-equivalent DFA by hand: states 1 and 2 behave
	// identically (both report nothing and go to 0 on everything).
	d := &DFA{
		Alphabet: 2,
		Trans:    []int32{1, 2, 0, 0, 0, 0},
		Reports:  [][]int32{{7}, nil, nil},
		Start:    0,
		Empty:    0,
	}
	m := Minimize(d)
	if m.NumStates() != 2 {
		t.Fatalf("want 2 states after minimization, got %d", m.NumStates())
	}
}

func TestMinimizeProperty(t *testing.T) {
	// Property: for random small NFAs, min(DFA) accepts the same report
	// stream as the NFA on random inputs.
	rng := rand.New(rand.NewSource(56))
	f := func(spacerBits uint32, kRaw uint8) bool {
		m := 4 + int(spacerBits>>28)%4
		spacer := make(dna.Seq, m)
		for i := range spacer {
			spacer[i] = dna.Base((spacerBits >> (2 * uint(i))) & 3)
		}
		k := int(kRaw) % 3
		n, err := automata.CompileHamming(dna.PatternFromSeq(spacer),
			automata.CompileOptions{MaxMismatches: k, Code: 1})
		if err != nil {
			return false
		}
		d, err := FromNFA(n, BuildOptions{})
		if err != nil {
			return false
		}
		mm := Minimize(d)
		in := randInput(rng, 600, 0.05)
		return sameReports(mm.ScanCollect(in), automata.NewSim(n).ScanCollect(in))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestCompressAlphabet(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	n := guideNFA(t, rng, 7, 2, 3)
	s2, err := automata.Multistride2(n)
	if err != nil {
		t.Fatal(err)
	}
	// Strided automata cannot be determinized (mid reports); use the
	// stride-1 DFA to exercise compression instead, plus a hand case.
	_ = s2
	d, err := FromNFA(n, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cd, remap := CompressAlphabet(d)
	if cd.Alphabet > d.Alphabet {
		t.Fatal("compression grew the alphabet")
	}
	if len(remap) != d.Alphabet {
		t.Fatalf("remap length %d", len(remap))
	}
	in := randInput(rng, 3000, 0.01)
	var got []automata.Report
	if err := cd.ScanMapped(in, remap, func(r automata.Report) { got = append(got, r) }); err != nil {
		t.Fatal(err)
	}
	if !sameReports(got, d.ScanCollect(in)) {
		t.Fatal("compressed DFA disagrees")
	}
}

func TestScanMappedEmptyRemap(t *testing.T) {
	d := &DFA{Alphabet: 1, Trans: []int32{0}, Reports: [][]int32{nil}}
	if err := d.ScanMapped([]uint8{0}, nil, func(automata.Report) {}); err == nil {
		t.Error("empty remap must error")
	}
}

func TestDFASizesReasonable(t *testing.T) {
	// The E1 table reports DFA sizes; sanity-check growth with k.
	rng := rand.New(rand.NewSource(58))
	spacer := make(dna.Seq, 20)
	for i := range spacer {
		spacer[i] = dna.Base(rng.Intn(4))
	}
	prev := 0
	for k := 0; k <= 3; k++ {
		n, err := automata.CompileHamming(dna.PatternFromSeq(spacer),
			automata.CompileOptions{MaxMismatches: k, PAM: dna.MustParsePattern("NGG"), Code: 0})
		if err != nil {
			t.Fatal(err)
		}
		d, err := FromNFA(n, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		m := Minimize(d)
		if m.NumStates() <= prev {
			t.Errorf("k=%d: minimal DFA (%d states) not larger than k-1 (%d)", k, m.NumStates(), prev)
		}
		prev = m.NumStates()
	}
}
