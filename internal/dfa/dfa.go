// Package dfa determinizes homogeneous NFAs and minimizes the result.
// Deterministic automata are how high-performance CPU automata libraries
// (HyperScan's McClellan engines, and classic tools like RE2) execute
// small pattern sets: one table lookup per input byte, no active-set
// bookkeeping. The E1 characterization table reports DFA sizes next to
// NFA/STE counts, and internal/hscan can select a DFA execution path.
package dfa

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/cap-repro/crisprscan/internal/automata"
)

// DFA is a dense-table deterministic automaton. Symbol values must be
// < Alphabet; automata.DeadSymbol is handled by an extra implicit column
// that behaves like "no class matches" (all in-flight matches die, the
// always-on starts re-arm).
type DFA struct {
	Alphabet int
	// Trans is row-major: Trans[state*Alphabet + symbol] = next state.
	Trans []int32
	// Reports[state] lists the report codes firing when the automaton
	// enters state (match ends at the consumed symbol).
	Reports [][]int32
	// Start is the state before any input is consumed.
	Start int32
	// Empty is the state representing "no NFA state active"; dead input
	// symbols jump here. For all-input-start automata Empty == Start.
	Empty int32
}

// NumStates returns the DFA state count.
func (d *DFA) NumStates() int { return len(d.Reports) }

// BuildOptions controls subset construction.
type BuildOptions struct {
	// MaxStates aborts construction when exceeded (guards against
	// exponential blowup). 0 means the default of 1<<20.
	MaxStates int
}

// FromNFA determinizes n by subset construction. Only all-input-start
// and plain states are supported (start-of-data anchoring is not needed
// for genome scanning and is rejected).
func FromNFA(n *automata.NFA, opt BuildOptions) (*DFA, error) {
	maxStates := opt.MaxStates
	if maxStates <= 0 {
		maxStates = 1 << 20
	}
	for i := range n.States {
		if n.States[i].Start == automata.StartOfData {
			return nil, fmt.Errorf("dfa: start-of-data states are not supported")
		}
		if n.States[i].ReportMid != automata.NoReport {
			return nil, fmt.Errorf("dfa: mid-symbol reports are not supported")
		}
	}
	words := (len(n.States) + 63) / 64
	classHit := make([][]uint64, n.Alphabet)
	for s := range classHit {
		classHit[s] = make([]uint64, words)
	}
	startAll := make([]uint64, words)
	for i := range n.States {
		st := &n.States[i]
		w, b := i/64, uint(i%64)
		for s := 0; s < n.Alphabet; s++ {
			if st.Class.HasSym(uint8(s)) {
				classHit[s][w] |= 1 << b
			}
		}
		if st.Start == automata.AllInput {
			startAll[w] |= 1 << b
		}
	}

	key := func(set []uint64) string {
		buf := make([]byte, 8*len(set))
		for i, w := range set {
			for j := 0; j < 8; j++ {
				buf[8*i+j] = byte(w >> (8 * j))
			}
		}
		return string(buf)
	}

	d := &DFA{Alphabet: n.Alphabet}
	index := map[string]int32{}
	var sets [][]uint64

	intern := func(set []uint64) int32 {
		k := key(set)
		if id, ok := index[k]; ok {
			return id
		}
		id := int32(len(sets))
		index[k] = id
		sets = append(sets, append([]uint64(nil), set...))
		var reps []int32
		for w, word := range set {
			for word != 0 {
				i := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				if r := n.States[i].Report; r != automata.NoReport {
					reps = append(reps, r)
				}
			}
		}
		sort.Slice(reps, func(a, b int) bool { return reps[a] < reps[b] })
		d.Reports = append(d.Reports, reps)
		return id
	}

	empty := make([]uint64, words)
	d.Start = intern(empty)
	d.Empty = d.Start

	succ := make([]uint64, words)
	for done := 0; done < len(sets); done++ {
		if len(sets) > maxStates {
			return nil, fmt.Errorf("dfa: state count exceeded limit %d", maxStates)
		}
		cur := sets[done]
		row := make([]int32, n.Alphabet)
		for sym := 0; sym < n.Alphabet; sym++ {
			copy(succ, startAll)
			for w, word := range cur {
				for word != 0 {
					i := w*64 + bits.TrailingZeros64(word)
					word &= word - 1
					for _, v := range n.States[i].Out {
						succ[v/64] |= 1 << (v % 64)
					}
				}
			}
			hit := classHit[sym]
			for w := range succ {
				succ[w] &= hit[w]
			}
			row[sym] = intern(succ)
		}
		d.Trans = append(d.Trans, row...)
	}
	return d, nil
}

// Scan runs the DFA over input and emits a report for every code
// attached to each entered state.
//
//crisprlint:hotpath
func (d *DFA) Scan(input []uint8, emit func(automata.Report)) {
	cur := d.Start
	alpha := int32(d.Alphabet)
	// Locals for the step tables: emit is an opaque call, so without the
	// hoist the compiler reloads d.Trans and d.Reports from d after
	// every reporting state.
	empty := d.Empty
	trans := d.Trans
	reports := d.Reports
	for t, sym := range input {
		if int32(sym) >= alpha {
			cur = empty
			continue
		}
		cur = trans[cur*alpha+int32(sym)]
		for _, code := range reports[cur] {
			emit(automata.Report{Code: code, End: t})
		}
	}
}

// ScanCollect runs Scan and gathers the reports.
func (d *DFA) ScanCollect(input []uint8) []automata.Report {
	var out []automata.Report
	d.Scan(input, func(r automata.Report) { out = append(out, r) })
	return out
}
