package dfa

import (
	"math/rand"
	"testing"

	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
)

func TestLazyMatchesFullDFA(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for trial := 0; trial < 10; trial++ {
		n := guideNFA(t, rng, 5+rng.Intn(5), rng.Intn(3), int32(trial))
		full, err := FromNFA(n, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		lazy, err := NewLazy(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		in := randInput(rng, 4000, 0.02)
		var got []automata.Report
		lazy.Scan(in, func(r automata.Report) { got = append(got, r) })
		if !sameReports(got, full.ScanCollect(in)) {
			t.Fatalf("trial %d: lazy disagrees with full DFA", trial)
		}
	}
}

func TestLazyHighKWhereFullDFAExplodes(t *testing.T) {
	// k=5 on a 20-mer: the minimal DFA has ~1e5 states (E1); the lazy
	// scanner only materializes configurations the input visits.
	rng := rand.New(rand.NewSource(182))
	n := guideNFA(t, rng, 20, 5, 0)
	lazy, err := NewLazy(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(rng, 30000, 0)
	var got []automata.Report
	lazy.Scan(in, func(r automata.Report) { got = append(got, r) })
	want := automata.NewSim(n).ScanCollect(in)
	if !sameReports(got, want) {
		t.Fatalf("lazy %d vs NFA %d reports", len(got), len(want))
	}
	if lazy.CachedStates() >= 100000 {
		t.Errorf("lazy cache materialized %d states; expected far fewer than the full DFA", lazy.CachedStates())
	}
	t.Logf("lazy cache: %d states for a ~1e5-state full DFA", lazy.CachedStates())
}

func TestLazyCacheFlush(t *testing.T) {
	rng := rand.New(rand.NewSource(183))
	n := guideNFA(t, rng, 12, 3, 0)
	lazy, err := NewLazy(n, 64) // tiny cache forces flushes
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(rng, 20000, 0.01)
	var got []automata.Report
	lazy.Scan(in, func(r automata.Report) { got = append(got, r) })
	if lazy.Flushes == 0 {
		t.Error("tiny cache should have flushed")
	}
	if lazy.CachedStates() > 64+1 {
		t.Errorf("cache grew past its cap: %d", lazy.CachedStates())
	}
	want := automata.NewSim(n).ScanCollect(in)
	if !sameReports(got, want) {
		t.Fatalf("flushing changed the language: %d vs %d", len(got), len(want))
	}
}

func TestLazyErrors(t *testing.T) {
	n := automata.New(4, "sod")
	s := n.AddState(automata.NewState(automata.ClassOfMask(dna.MaskA), automata.StartOfData))
	n.States[s].Report = 0
	if _, err := NewLazy(n, 0); err == nil {
		t.Error("start-of-data must be rejected")
	}
	ok := automata.New(4, "x")
	s2 := ok.AddState(automata.NewState(automata.ClassOfMask(dna.MaskA), automata.AllInput))
	ok.States[s2].Report = 0
	if _, err := NewLazy(ok, 1); err == nil {
		t.Error("cache < 2 must be rejected")
	}
}

func TestLazyDeadSymbols(t *testing.T) {
	rng := rand.New(rand.NewSource(184))
	n := guideNFA(t, rng, 6, 1, 0)
	lazy, err := NewLazy(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	in := randInput(rng, 2000, 0.3) // heavy ambiguity
	var got []automata.Report
	lazy.Scan(in, func(r automata.Report) { got = append(got, r) })
	want := automata.NewSim(n).ScanCollect(in)
	if !sameReports(got, want) {
		t.Fatal("dead-symbol handling differs")
	}
}
