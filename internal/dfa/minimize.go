package dfa

import (
	"fmt"
	"sort"

	"github.com/cap-repro/crisprscan/internal/automata"
)

// Minimize returns the minimal DFA with the same report behavior, using
// Hopcroft's partition-refinement algorithm. States are first grouped by
// their report-code signature (Moore-machine outputs), then refined
// until no block is split by any (block, symbol) pair.
func Minimize(d *DFA) *DFA {
	n := d.NumStates()
	if n == 0 {
		return d
	}
	alpha := d.Alphabet

	// Initial partition: group by report signature.
	sigOf := make([]string, n)
	sigIndex := map[string]int{}
	block := make([]int, n) // state -> block id
	var blocks [][]int32    // block id -> member states
	for s := 0; s < n; s++ {
		sig := reportSig(d.Reports[s])
		sigOf[s] = sig
		id, ok := sigIndex[sig]
		if !ok {
			id = len(blocks)
			sigIndex[sig] = id
			blocks = append(blocks, nil)
		}
		block[s] = id
		blocks[id] = append(blocks[id], int32(s))
	}

	// Inverse transition lists: rev[sym][state] = predecessors.
	rev := make([][][]int32, alpha)
	for sym := 0; sym < alpha; sym++ {
		rev[sym] = make([][]int32, n)
	}
	for s := 0; s < n; s++ {
		for sym := 0; sym < alpha; sym++ {
			t := d.Trans[s*alpha+sym]
			rev[sym][t] = append(rev[sym][t], int32(s))
		}
	}

	// Worklist of (block, symbol) splitters.
	type splitter struct {
		blk int
		sym int
	}
	var work []splitter
	inWork := map[splitter]bool{}
	push := func(blk, sym int) {
		sp := splitter{blk, sym}
		if !inWork[sp] {
			inWork[sp] = true
			work = append(work, sp)
		}
	}
	for b := range blocks {
		for sym := 0; sym < alpha; sym++ {
			push(b, sym)
		}
	}

	touched := make([]bool, n)
	for len(work) > 0 {
		sp := work[len(work)-1]
		work = work[:len(work)-1]
		delete(inWork, sp)

		// X = predecessors (on sym) of the splitter block's members.
		var x []int32
		for _, s := range blocks[sp.blk] {
			x = append(x, rev[sp.sym][s]...)
		}
		if len(x) == 0 {
			continue
		}
		for _, s := range x {
			touched[s] = true
		}
		// Find blocks split by X.
		affected := map[int]bool{}
		for _, s := range x {
			affected[block[s]] = true
		}
		for b := range affected {
			members := blocks[b]
			var in, out []int32
			for _, s := range members {
				if touched[s] {
					in = append(in, s)
				} else {
					out = append(out, s)
				}
			}
			if len(in) == 0 || len(out) == 0 {
				continue
			}
			// Split: smaller half becomes the new block.
			newID := len(blocks)
			if len(in) <= len(out) {
				blocks[b] = out
				blocks = append(blocks, in)
				for _, s := range in {
					block[s] = newID
				}
			} else {
				blocks[b] = in
				blocks = append(blocks, out)
				for _, s := range out {
					block[s] = newID
				}
			}
			// Update worklist per Hopcroft: if (b, sym) pending, both
			// halves are pending; otherwise add the smaller half.
			for sym := 0; sym < alpha; sym++ {
				if inWork[splitter{b, sym}] {
					push(newID, sym)
				} else if len(blocks[newID]) <= len(blocks[b]) {
					push(newID, sym)
				} else {
					push(b, sym)
				}
			}
		}
		for _, s := range x {
			touched[s] = false
		}
	}

	// Build the quotient automaton. Keep block order deterministic by
	// smallest member state.
	order := make([]int, len(blocks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return minMember(blocks[order[a]]) < minMember(blocks[order[b]])
	})
	newID := make([]int32, len(blocks))
	for rank, b := range order {
		newID[b] = int32(rank)
	}
	out := &DFA{
		Alphabet: alpha,
		Trans:    make([]int32, len(blocks)*alpha),
		Reports:  make([][]int32, len(blocks)),
		Start:    newID[block[d.Start]],
		Empty:    newID[block[d.Empty]],
	}
	for _, b := range order {
		rep := blocks[b][0]
		id := newID[b]
		out.Reports[id] = d.Reports[rep]
		for sym := 0; sym < alpha; sym++ {
			out.Trans[int(id)*alpha+sym] = newID[block[d.Trans[int(rep)*alpha+sym]]]
		}
	}
	return out
}

func minMember(states []int32) int32 {
	m := states[0]
	for _, s := range states[1:] {
		if s < m {
			m = s
		}
	}
	return m
}

func reportSig(codes []int32) string {
	buf := make([]byte, 0, 4*len(codes))
	for _, c := range codes {
		buf = append(buf, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
	}
	return string(buf)
}

// CompressAlphabet merges input symbols with identical transition
// columns, returning the compressed DFA and the symbol remap table (old
// symbol -> new symbol). Useful for strided automata, whose 25-symbol
// pair alphabet usually collapses substantially; HyperScan applies the
// same trick (its "shengs" run over compressed alphabets).
func CompressAlphabet(d *DFA) (*DFA, []uint8) {
	n := d.NumStates()
	colKey := func(sym int) string {
		buf := make([]byte, 0, 4*n)
		for s := 0; s < n; s++ {
			t := d.Trans[s*d.Alphabet+sym]
			buf = append(buf, byte(t), byte(t>>8), byte(t>>16), byte(t>>24))
		}
		return string(buf)
	}
	remap := make([]uint8, d.Alphabet)
	index := map[string]uint8{}
	var reprs []int
	for sym := 0; sym < d.Alphabet; sym++ {
		k := colKey(sym)
		id, ok := index[k]
		if !ok {
			id = uint8(len(reprs))
			index[k] = id
			reprs = append(reprs, sym)
		}
		remap[sym] = id
	}
	out := &DFA{
		Alphabet: len(reprs),
		Trans:    make([]int32, n*len(reprs)),
		Reports:  d.Reports,
		Start:    d.Start,
		Empty:    d.Empty,
	}
	for s := 0; s < n; s++ {
		for newSym, oldSym := range reprs {
			out.Trans[s*len(reprs)+newSym] = d.Trans[s*d.Alphabet+oldSym]
		}
	}
	return out, remap
}

// ScanMapped scans input through a compressed-alphabet DFA, translating
// symbols through remap first.
func (d *DFA) ScanMapped(input []uint8, remap []uint8, emit func(automata.Report)) error {
	if len(remap) == 0 {
		return fmt.Errorf("dfa: empty symbol remap")
	}
	cur := d.Start
	alpha := int32(d.Alphabet)
	for t, sym := range input {
		if int(sym) >= len(remap) {
			cur = d.Empty
			continue
		}
		cur = d.Trans[cur*alpha+int32(remap[sym])]
		for _, code := range d.Reports[cur] {
			emit(automata.Report{Code: code, End: t})
		}
	}
	return nil
}
