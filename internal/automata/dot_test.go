package automata

import (
	"bytes"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
)

func TestWriteDot(t *testing.T) {
	n, err := CompileHamming(dna.PatternFromSeq(dna.MustParseSeq("ACGT")),
		CompileOptions{MaxMismatches: 1, PAM: dna.MustParsePattern("NGG"), Code: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteDot(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"test\"",
		"peripheries=2",       // start states
		"fillcolor=lightgrey", // reporting state
		"xlabel=\"r3\"",       // report code
		"->",                  // edges
		"!A",                  // negated mismatch class
		"label=\"0:A\"",       // match class
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Edge count in the output matches the automaton.
	if got := strings.Count(out, "->"); got != n.NumEdges() {
		t.Errorf("%d edges rendered, automaton has %d", got, n.NumEdges())
	}
}

func TestClassLabelStride2(t *testing.T) {
	n, _ := CompileHamming(dna.PatternFromSeq(dna.MustParseSeq("ACGT")), CompileOptions{MaxMismatches: 0, Code: 0})
	s2, err := Multistride2(n)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s2.WriteDot(&buf, "s2"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0x") {
		t.Error("stride-2 classes should render as hex bitsets")
	}
}
