package automata

import (
	"math/bits"

	"github.com/cap-repro/crisprscan/internal/dna"
)

// DeadSymbol is an input symbol value that matches no character class.
// Ambiguous genome positions (N) are fed to the simulator as DeadSymbol,
// which kills every in-flight partial match crossing them — the same
// semantics Cas-OFFinder and CasOT apply to reference Ns.
const DeadSymbol uint8 = 0xFF

// Report is one match event from a simulation: the match for report code
// Code ended at input index End (0-based index of the last consumed
// symbol, in stride-1 input coordinates).
type Report struct {
	Code int32
	End  int
	// Mid marks a ReportMid event from a strided automaton: the match
	// ended one stride-1 symbol before the end of the consumed chunk.
	// ScanStride2 consumes this flag when converting coordinates.
	Mid bool
}

// Sim is a bitset-based simulator for a homogeneous NFA. It is the
// functional reference implementation: every platform model produces
// match sets identical to Sim's by construction or by test.
type Sim struct {
	n     *NFA
	words int
	// classHit[s] is the bitset of states whose class contains symbol s.
	classHit [][]uint64
	// startAll is the bitset of AllInput start states; startSOD the
	// bitset of StartOfData starts.
	startAll []uint64
	startSOD []uint64
	// reportAny is the bitset of states with Report or ReportMid set.
	reportAny []uint64

	// scratch buffers reused across Scan calls.
	active, next []uint64
}

// NewSim prepares simulation tables for n.
func NewSim(n *NFA) *Sim {
	words := (len(n.States) + 63) / 64
	s := &Sim{
		n:         n,
		words:     words,
		classHit:  make([][]uint64, n.Alphabet),
		startAll:  make([]uint64, words),
		startSOD:  make([]uint64, words),
		reportAny: make([]uint64, words),
		active:    make([]uint64, words),
		next:      make([]uint64, words),
	}
	for sym := range s.classHit {
		s.classHit[sym] = make([]uint64, words)
	}
	for i := range n.States {
		st := &n.States[i]
		w, b := i/64, uint(i%64)
		for sym := 0; sym < n.Alphabet; sym++ {
			if st.Class.HasSym(uint8(sym)) {
				s.classHit[sym][w] |= 1 << b
			}
		}
		switch st.Start {
		case AllInput:
			s.startAll[w] |= 1 << b
		case StartOfData:
			s.startSOD[w] |= 1 << b
		}
		if st.Report != NoReport || st.ReportMid != NoReport {
			s.reportAny[w] |= 1 << b
		}
	}
	return s
}

// StepCount is the number of symbols the simulator consumes per input
// index (1 for stride-1 automata). Stride-2 simulation wraps Sim; see
// stride.go.
func (s *Sim) NumStates() int { return len(s.n.States) }

// Scan runs the automaton over input and calls emit for every report.
// Input symbols must be < Alphabet or DeadSymbol. emit receives match
// end positions in input-index coordinates. The scratch bitsets are
// preallocated in NewSim, so a scan allocates nothing.
//
//crisprlint:hotpath
func (s *Sim) Scan(input []uint8, emit func(Report)) {
	for i := range s.active {
		s.active[i] = 0
	}
	states := s.n.States
	alphabet := s.n.Alphabet
	// Hoist the bitset fields into locals once: emit is an opaque call,
	// so the compiler would otherwise reload them from s every
	// iteration. The re-slices pin each length to the buffer width so
	// the prove pass can drop the per-word bounds checks (all four
	// bitsets are allocated words long in NewSim).
	active, next := s.active, s.next
	words := len(next)
	startAll := s.startAll
	startAll = startAll[:words]
	reportAny := s.reportAny
	reportAny = reportAny[:words]
	for t, sym := range input {
		next = next[:words]
		// Seed with start states (StartOfData only at t==0).
		if t == 0 {
			copy(next, s.startSOD)
			for w := range next {
				next[w] |= startAll[w]
			}
		} else {
			copy(next, startAll)
		}
		// Union in the successors of currently active states.
		for w, word := range active {
			for word != 0 {
				idx := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				for _, v := range states[idx].Out {
					next[v/64] |= 1 << (v % 64)
				}
			}
		}
		// Gate by the character class of the consumed symbol.
		if sym == DeadSymbol || int(sym) >= alphabet {
			for w := range next {
				next[w] = 0
			}
		} else {
			hit := s.classHit[sym]
			hit = hit[:words]
			anyReport := false
			for w := range next {
				next[w] &= hit[w]
				if next[w]&reportAny[w] != 0 {
					anyReport = true
				}
			}
			if anyReport {
				for w := range next {
					rep := next[w] & reportAny[w]
					for rep != 0 {
						idx := w*64 + bits.TrailingZeros64(rep)
						rep &= rep - 1
						st := &states[idx]
						if st.Report != NoReport {
							emit(Report{Code: st.Report, End: t})
						}
						if st.ReportMid != NoReport {
							emit(Report{Code: st.ReportMid, End: t, Mid: true})
						}
					}
				}
			}
		}
		active, next = next, active
	}
	s.active, s.next = active, next
}

// ScanCollect runs Scan and returns all reports.
func (s *Sim) ScanCollect(input []uint8) []Report {
	var out []Report
	s.Scan(input, func(r Report) { out = append(out, r) })
	return out
}

// ActivityTrace runs the automaton and returns, per input position, the
// number of active states after consuming that symbol. This drives the
// iNFAnt2 GPU cost model, whose per-symbol work is proportional to the
// active transition count.
func (s *Sim) ActivityTrace(input []uint8) []int {
	trace := make([]int, len(input))
	for i := range s.active {
		s.active[i] = 0
	}
	states := s.n.States
	for t, sym := range input {
		next := s.next
		if t == 0 {
			copy(next, s.startSOD)
			for w := range next {
				next[w] |= s.startAll[w]
			}
		} else {
			copy(next, s.startAll)
		}
		for w, word := range s.active {
			for word != 0 {
				idx := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				for _, v := range states[idx].Out {
					next[v/64] |= 1 << (v % 64)
				}
			}
		}
		count := 0
		if sym != DeadSymbol && int(sym) < s.n.Alphabet {
			hit := s.classHit[sym]
			for w := range next {
				next[w] &= hit[w]
				count += bits.OnesCount64(next[w])
			}
		} else {
			for w := range next {
				next[w] = 0
			}
		}
		trace[t] = count
		s.active, s.next = next, s.active
	}
	return trace
}

// SymbolsOfSeq converts base codes to simulator symbols. Ambiguous bases
// (dna.BadBase == 0xFF) become DeadSymbol (also 0xFF) so partial matches
// crossing them die.
func SymbolsOfSeq(seq dna.Seq) []uint8 {
	out := make([]uint8, len(seq))
	for i, b := range seq {
		out[i] = uint8(b)
	}
	return out
}
