package automata

import (
	"math/rand"
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
)

func buildGuideUnion(t *testing.T, rng *rand.Rand, guides int, m, k int, pam dna.Pattern) *NFA {
	t.Helper()
	var parts []*NFA
	for g := 0; g < guides; g++ {
		spacer := dna.PatternFromSeq(randSeq(rng, m))
		n, err := CompileHamming(spacer, CompileOptions{MaxMismatches: k, PAM: pam, Code: int32(g)})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, n)
	}
	u, err := UnionAll("guides", parts)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestMergePreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	pam := dna.MustParsePattern("NGG")
	for trial := 0; trial < 10; trial++ {
		u := buildGuideUnion(t, rng, 5, 7, 1+rng.Intn(2), pam)
		merged, saved := MergeEquivalent(u)
		if saved <= 0 {
			t.Errorf("trial %d: expected some merging in a guide union, saved=%d", trial, saved)
		}
		if err := merged.Validate(); err != nil {
			t.Fatal(err)
		}
		genome := randSeq(rng, 2000)
		a := NewSim(u).ScanCollect(SymbolsOfSeq(genome))
		b := NewSim(merged).ScanCollect(SymbolsOfSeq(genome))
		if !reportsEqual(a, b) {
			t.Fatalf("trial %d: merge changed the language (%d vs %d reports)",
				trial, len(dedupReports(a)), len(dedupReports(b)))
		}
	}
}

func TestMergeSharesPrefixes(t *testing.T) {
	// Two guides with a long common prefix must share more states than
	// two unrelated guides.
	pam := dna.MustParsePattern("NGG")
	mk := func(a, b string) int {
		na, _ := CompileHamming(dna.PatternFromSeq(dna.MustParseSeq(a)), CompileOptions{MaxMismatches: 1, PAM: pam, Code: 0})
		nb, _ := CompileHamming(dna.PatternFromSeq(dna.MustParseSeq(b)), CompileOptions{MaxMismatches: 1, PAM: pam, Code: 1})
		u, _ := UnionAll("u", []*NFA{na, nb})
		merged, _ := MergeEquivalent(u)
		return merged.NumStates()
	}
	shared := mk("ACGTACGTAC", "ACGTACGTTT")
	unrelated := mk("ACGTACGTAC", "TGCATGCATG")
	if shared >= unrelated {
		t.Errorf("common-prefix union should merge more: shared=%d unrelated=%d", shared, unrelated)
	}
}

func TestMergeIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	u := buildGuideUnion(t, rng, 4, 8, 2, dna.MustParsePattern("NGG"))
	m1, _ := MergeEquivalent(u)
	m2, saved := MergeEquivalent(m1)
	if saved != 0 {
		t.Errorf("second merge saved %d states; merge must reach a fixpoint", saved)
	}
	if m1.CanonicalString() != m2.CanonicalString() {
		t.Error("second merge changed the automaton")
	}
}

func TestPairSymbol(t *testing.T) {
	if PairSymbol(0, 0) != 0 || PairSymbol(3, 3) != 15 || PairSymbol(1, 2) != 6 {
		t.Error("concrete pair encoding wrong")
	}
	if PairSymbol(2, DeadSymbol) != 18 {
		t.Error("(concrete, dead) encoding wrong")
	}
	if PairSymbol(DeadSymbol, 1) != 21 {
		t.Error("(dead, concrete) encoding wrong")
	}
	if PairSymbol(DeadSymbol, DeadSymbol) != 24 {
		t.Error("(dead, dead) encoding wrong")
	}
}

func TestPairSymbolsOddPadding(t *testing.T) {
	got := PairSymbols([]uint8{0, 1, 2})
	if len(got) != 2 || got[0] != 1 || got[1] != 16+2 {
		t.Errorf("PairSymbols odd input = %v", got)
	}
}

func TestMultistride2Equivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	pam := dna.MustParsePattern("NGG")
	for trial := 0; trial < 12; trial++ {
		m := 5 + rng.Intn(5)
		k := rng.Intn(3)
		spacer := dna.PatternFromSeq(randSeq(rng, m))
		n, err := CompileHamming(spacer, CompileOptions{MaxMismatches: k, PAM: pam, Code: int32(trial)})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Multistride2(n)
		if err != nil {
			t.Fatal(err)
		}
		if err := s2.Validate(); err != nil {
			t.Fatal(err)
		}
		// Both even and odd genome lengths, with some ambiguity.
		for _, glen := range []int{1000, 1001} {
			genome := randSeq(rng, glen)
			for i := 0; i < 10; i++ {
				genome[rng.Intn(glen)] = dna.BadBase
			}
			in := SymbolsOfSeq(genome)
			want := NewSim(n).ScanCollect(in)
			var got []Report
			ScanStride2(NewSim(s2), in, func(r Report) { got = append(got, r) })
			if !reportsEqual(got, want) {
				t.Fatalf("trial %d glen %d: stride-2 mismatch (%d vs %d reports)",
					trial, glen, len(dedupReports(got)), len(dedupReports(want)))
			}
		}
	}
}

func TestMultistride2Union(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	u := buildGuideUnion(t, rng, 6, 7, 2, dna.MustParsePattern("NGG"))
	s2, err := Multistride2(u)
	if err != nil {
		t.Fatal(err)
	}
	genome := randSeq(rng, 4000)
	in := SymbolsOfSeq(genome)
	want := NewSim(u).ScanCollect(in)
	var got []Report
	ScanStride2(NewSim(s2), in, func(r Report) { got = append(got, r) })
	if !reportsEqual(got, want) {
		t.Fatalf("stride-2 union mismatch (%d vs %d)", len(dedupReports(got)), len(dedupReports(want)))
	}
}

func TestMultistride2RequiresStride1(t *testing.T) {
	n := New(16, "x")
	if _, err := Multistride2(n); err == nil {
		t.Error("expected error for non-stride-1 input")
	}
}

func TestMultistride2StateGrowthBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	spacer := dna.PatternFromSeq(randSeq(rng, 20))
	n, _ := CompileHamming(spacer, CompileOptions{MaxMismatches: 3, PAM: dna.MustParsePattern("NGG"), Code: 0})
	s2, err := Multistride2(n)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(s2.NumStates()) / float64(n.NumStates())
	if ratio > 4.0 {
		t.Errorf("stride-2 blowup %.2fx exceeds expected bound (<= ~edge count)", ratio)
	}
}

func TestActivityTrace(t *testing.T) {
	spacer := dna.PatternFromSeq(dna.MustParseSeq("ACGT"))
	n, _ := CompileHamming(spacer, CompileOptions{MaxMismatches: 1, Code: 0})
	genome := dna.MustParseSeq("ACGTACGT")
	trace := NewSim(n).ActivityTrace(SymbolsOfSeq(genome))
	if len(trace) != 8 {
		t.Fatalf("trace length %d", len(trace))
	}
	for i, c := range trace {
		if c <= 0 {
			t.Errorf("position %d: zero active states on a matching stream", i)
		}
	}
	// Dead symbols zero out activity.
	genome[3] = dna.BadBase
	trace = NewSim(n).ActivityTrace(SymbolsOfSeq(genome))
	if trace[3] != 0 {
		t.Errorf("dead symbol should clear activity, got %d", trace[3])
	}
}
