package automata

import (
	"fmt"
	"sort"
)

// MergeEquivalent applies the paper's prefix/suffix state-merging
// optimization for spatial architectures: states that are activation-
// equivalent are collapsed, reducing STE (and FPGA LUT) demand without
// changing the reported language.
//
// Two merges are performed to a fixpoint:
//
//   - forward (prefix) merge: states with identical class, start kind,
//     report codes, and identical predecessor sets are always active
//     simultaneously, so they can be unified (their out-edges union).
//     Across a union of per-guide automata this shares common guide
//     prefixes, which is where most of the saving comes from.
//   - backward (suffix) merge: states with identical class, start kind,
//     report codes, and identical successor sets are interchangeable as
//     edge targets, so they can be unified (their in-edges union).
//
// Both directions preserve the set of (report code, end position) events
// exactly; TestMergePreservesLanguage checks this property.
func MergeEquivalent(n *NFA) (*NFA, int) {
	cur := n.Clone()
	before := len(cur.States)
	for {
		merged, changedF := mergePass(cur, true)
		merged, changedB := mergePass(merged, false)
		cur = merged
		if !changedF && !changedB {
			break
		}
	}
	return cur, before - len(cur.States)
}

// mergePass groups states by a signature that includes either their
// predecessor set (forward) or successor set (backward) and collapses
// each group to one representative.
func mergePass(n *NFA, forward bool) (*NFA, bool) {
	numStates := len(n.States)
	preds := make([][]uint32, numStates)
	if forward {
		for i := range n.States {
			for _, v := range n.States[i].Out {
				preds[v] = append(preds[v], uint32(i))
			}
		}
	}
	sig := make(map[string]int32, numStates)
	rep := make([]int32, numStates) // state -> representative
	changed := false
	for i := range n.States {
		s := &n.States[i]
		var neighbors []uint32
		if forward {
			neighbors = sortedOut(preds[i])
		} else {
			neighbors = sortedOut(s.Out)
		}
		key := makeSig(s, neighbors)
		if r, ok := sig[key]; ok {
			rep[i] = r
			changed = true
		} else {
			sig[key] = int32(i)
			rep[i] = int32(i)
		}
	}
	if !changed {
		return n, false
	}
	// Rebuild with representatives only.
	out := New(n.Alphabet, n.Label)
	remap := make([]int32, numStates)
	for i := range remap {
		remap[i] = -1
	}
	for i := range n.States {
		if rep[i] == int32(i) {
			s := n.States[i]
			s.Out = nil
			remap[i] = int32(out.AddState(s))
		}
	}
	seen := make(map[uint64]bool)
	for i := range n.States {
		from := remap[rep[i]]
		for _, v := range n.States[i].Out {
			to := remap[rep[v]]
			key := uint64(from)<<32 | uint64(uint32(to))
			if !seen[key] {
				seen[key] = true
				out.AddEdge(uint32(from), uint32(to))
			}
		}
	}
	return out, true
}

// makeSig builds the grouping signature: class, start kind, both report
// codes, and the sorted neighbor list.
func makeSig(s *State, neighbors []uint32) string {
	buf := make([]byte, 0, 24+4*len(neighbors))
	buf = appendUint64(buf, uint64(s.Class))
	buf = append(buf, byte(s.Start))
	buf = appendUint64(buf, uint64(uint32(s.Report)))
	buf = appendUint64(buf, uint64(uint32(s.ReportMid)))
	for _, v := range neighbors {
		buf = appendUint64(buf, uint64(v))
	}
	return string(buf)
}

func appendUint64(buf []byte, v uint64) []byte {
	return append(buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// CanonicalString renders the automaton in a deterministic textual form
// for debugging and golden tests.
func (n *NFA) CanonicalString() string {
	var lines []string
	for i := range n.States {
		s := &n.States[i]
		lines = append(lines, fmt.Sprintf("s%d class=%x start=%d rep=%d mid=%d out=%v",
			i, uint64(s.Class), s.Start, s.Report, s.ReportMid, sortedOut(s.Out)))
	}
	sort.Strings(lines)
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
