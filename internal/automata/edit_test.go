package automata

import (
	"math/rand"
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
)

// editFeasible decides whether spacer aligns to segment with at most k
// substitutions and at most b gaps, where gaps (spacer deletions and
// genome insertions) are only allowed strictly inside the alignment —
// the exact semantics CompileEdit implements.
func editFeasible(spacer dna.Pattern, segment dna.Seq, k, b int) bool {
	m, L := len(spacer), len(segment)
	type st struct{ i, j, s, g int }
	memo := map[st]bool{}
	var rec func(i, j, s, g int) bool
	rec = func(i, j, s, g int) bool {
		if s > k || g > b {
			return false
		}
		if i == m && j == L {
			return true
		}
		if i == m || j == L {
			return false
		}
		key := st{i, j, s, g}
		if v, ok := memo[key]; ok {
			return v
		}
		memo[key] = false // cycle guard (there are no cycles, but be safe)
		// Consume both (match or substitution).
		cost := 0
		if !spacer[i].Has(segment[j]) {
			cost = 1
		}
		ok := rec(i+1, j+1, s+cost, g)
		// Deletion of spacer[i] (RNA bulge): interior only — something
		// must already have been consumed (i>0 && j>0) and spacer base
		// m-1 must remain to be consumed (i <= m-2).
		if !ok && i >= 1 && j >= 1 && i <= m-2 {
			ok = rec(i+1, j, s, g+1)
		}
		// Insertion of segment[j] (DNA bulge): interior only — i>0, and
		// a genome base must remain for the final consumption (j <= L-2).
		if !ok && i >= 1 && j >= 1 && j <= L-2 && i <= m-1 {
			ok = rec(i, j+1, s, g+1)
		}
		memo[key] = ok
		return ok
	}
	return rec(0, 0, 0, 0)
}

// refEdit is the oracle for edit-mode reports: for every PAM-terminated
// end position, a report fires if any alignment length L in
// [m-b, m+b] is feasible.
func refEdit(genome dna.Seq, spacer dna.Pattern, pam dna.Pattern, k, b int, code int32) []Report {
	m := len(spacer)
	var out []Report
	for end := 0; end < len(genome); end++ {
		pamStart := end - len(pam) + 1
		if pamStart < 0 {
			continue
		}
		if len(pam) > 0 && !pam.Matches(genome[pamStart:end+1]) {
			continue
		}
		hit := false
		for L := m - b; L <= m+b && !hit; L++ {
			segStart := pamStart - L
			if segStart < 0 {
				continue
			}
			if editFeasible(spacer, genome[segStart:pamStart], k, b) {
				hit = true
			}
		}
		if hit {
			out = append(out, Report{Code: code, End: end})
		}
	}
	return out
}

func TestEditZeroBulgeEqualsHamming(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pam := dna.MustParsePattern("NGG")
	for trial := 0; trial < 10; trial++ {
		m := 6 + rng.Intn(4)
		k := rng.Intn(3)
		spacer := dna.PatternFromSeq(randSeq(rng, m))
		genome := randSeq(rng, 1500)
		e, err := CompileEdit(spacer, EditOptions{MaxMismatches: k, MaxBulge: 0, PAM: pam, Code: 9})
		if err != nil {
			t.Fatal(err)
		}
		h, err := CompileHamming(spacer, CompileOptions{MaxMismatches: k, PAM: pam, Code: 9})
		if err != nil {
			t.Fatal(err)
		}
		a := NewSim(e).ScanCollect(SymbolsOfSeq(genome))
		bRep := NewSim(h).ScanCollect(SymbolsOfSeq(genome))
		if !reportsEqual(a, bRep) {
			t.Fatalf("trial %d: edit(b=0) != hamming (%d vs %d reports)", trial, len(dedupReports(a)), len(dedupReports(bRep)))
		}
	}
}

func TestEditMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	pam := dna.MustParsePattern("NGG")
	for trial := 0; trial < 15; trial++ {
		m := 6 + rng.Intn(3)
		k := rng.Intn(3)
		b := 1 + rng.Intn(1) // bulge budget 1
		spacer := dna.PatternFromSeq(randSeq(rng, m))
		genome := randSeq(rng, 800)
		e, err := CompileEdit(spacer, EditOptions{MaxMismatches: k, MaxBulge: b, PAM: pam, Code: int32(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Validate(); err != nil {
			t.Fatal(err)
		}
		got := dedupReports(NewSim(e).ScanCollect(SymbolsOfSeq(genome)))
		want := refEdit(genome, spacer, pam, k, b, int32(trial))
		if !reportsEqual(got, want) {
			t.Fatalf("trial %d (m=%d k=%d b=%d): got %d, want %d reports", trial, m, k, b, len(got), len(want))
		}
	}
}

func TestEditBulge2(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	pam := dna.MustParsePattern("NGG")
	spacer := dna.PatternFromSeq(randSeq(rng, 7))
	genome := randSeq(rng, 600)
	e, err := CompileEdit(spacer, EditOptions{MaxMismatches: 1, MaxBulge: 2, PAM: pam, Code: 0})
	if err != nil {
		t.Fatal(err)
	}
	got := dedupReports(NewSim(e).ScanCollect(SymbolsOfSeq(genome)))
	want := refEdit(genome, spacer, pam, 1, 2, 0)
	if !reportsEqual(got, want) {
		t.Fatalf("b=2: got %d, want %d reports", len(got), len(want))
	}
}

func TestEditDetectsPlantedBulges(t *testing.T) {
	// Hand-built: spacer ACGTACG; genome carries a deletion variant
	// (ACG_ACG -> ACGACG) and an insertion variant (ACGTTACG), each
	// followed by AGG.
	spacer := dna.PatternFromSeq(dna.MustParseSeq("ACGTACG"))
	pam := dna.MustParsePattern("NGG")
	genome := dna.MustParseSeq("CCCACGACGAGGCCCCCCACGTTACGAGGCCC")
	e, err := CompileEdit(spacer, EditOptions{MaxMismatches: 0, MaxBulge: 1, PAM: pam, Code: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := dedupReports(NewSim(e).ScanCollect(SymbolsOfSeq(genome)))
	if len(got) != 2 {
		t.Fatalf("want 2 bulge sites, got %v", got)
	}
	// Hamming with k=0 must find neither.
	h, _ := CompileHamming(spacer, CompileOptions{MaxMismatches: 0, PAM: pam, Code: 1})
	if hits := NewSim(h).ScanCollect(SymbolsOfSeq(genome)); len(hits) != 0 {
		t.Fatalf("hamming should not see bulge sites, got %v", hits)
	}
}

func TestEditRejectsEdgeBulges(t *testing.T) {
	// A deletion of the FIRST or LAST spacer base is an edge gap and
	// must not produce a site.
	spacer := dna.PatternFromSeq(dna.MustParseSeq("ACGTACG"))
	pam := dna.MustParsePattern("NGG")
	// delete first base: CGTACG + AGG ; delete last: ACGTAC + AGG
	genome := dna.MustParseSeq("TTTCGTACGAGGTTTTTTACGTACAGGTTT")
	e, err := CompileEdit(spacer, EditOptions{MaxMismatches: 0, MaxBulge: 1, PAM: pam, Code: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := dedupReports(NewSim(e).ScanCollect(SymbolsOfSeq(genome)))
	want := refEdit(genome, spacer, pam, 0, 1, 1)
	if !reportsEqual(got, want) {
		t.Fatalf("edge-bulge handling differs from oracle: got %v want %v", got, want)
	}
	for _, r := range got {
		// End 11 would be the edge-deletion site ending at the first AGG
		// with segment CGTACG; the oracle forbids it. Spot-check.
		if r.End == 11 {
			t.Errorf("edge deletion reported at %v", r)
		}
	}
}

func TestEditErrors(t *testing.T) {
	sp := dna.PatternFromSeq(dna.MustParseSeq("ACGT"))
	if _, err := CompileEdit(dna.Pattern{dna.MaskA}, EditOptions{}); err == nil {
		t.Error("length-1 spacer must error")
	}
	if _, err := CompileEdit(sp, EditOptions{MaxMismatches: -1}); err == nil {
		t.Error("negative k must error")
	}
	if _, err := CompileEdit(sp, EditOptions{MaxBulge: 4}); err == nil {
		t.Error("bulge >= len must error")
	}
}
