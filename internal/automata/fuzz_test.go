package automata

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
)

// FuzzHammingAgainstOracle drives the compiler and simulator with
// arbitrary spacer/genome bytes and cross-checks the positional oracle.
func FuzzHammingAgainstOracle(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1}, []byte{0, 1, 2, 3, 2, 2, 0, 1, 2, 3, 1, 2, 2}, uint8(1))
	f.Add([]byte{3, 3, 3, 3}, []byte{3, 3, 3, 3, 0, 2, 2}, uint8(0))
	f.Fuzz(func(t *testing.T, rawSpacer, rawGenome []byte, kRaw uint8) {
		if len(rawSpacer) == 0 || len(rawSpacer) > 12 || len(rawGenome) > 4096 {
			return
		}
		spacer := make(dna.Seq, len(rawSpacer))
		for i, b := range rawSpacer {
			spacer[i] = dna.Base(b % 4)
		}
		genome := make(dna.Seq, len(rawGenome))
		for i, b := range rawGenome {
			if b%17 == 0 {
				genome[i] = dna.BadBase
			} else {
				genome[i] = dna.Base(b % 4)
			}
		}
		k := int(kRaw) % (len(spacer) + 1)
		pam := dna.MustParsePattern("NGG")
		n, err := CompileHamming(dna.PatternFromSeq(spacer), CompileOptions{
			MaxMismatches: k, PAM: pam, Code: 1,
		})
		if err != nil {
			t.Fatalf("compile failed on valid input: %v", err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("invalid automaton: %v", err)
		}
		got := dedupReports(NewSim(n).ScanCollect(SymbolsOfSeq(genome)))
		want := refHamming(genome, dna.PatternFromSeq(spacer), pam, k, 1)
		if !reportsEqual(got, want) {
			t.Fatalf("automaton %d reports, oracle %d (spacer=%s k=%d)", len(got), len(want), spacer, k)
		}
	})
}

// FuzzStride2Equivalence checks the 2-striding transform against the
// stride-1 automaton on arbitrary inputs.
func FuzzStride2Equivalence(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3}, []byte{0, 1, 2, 3, 2, 2, 1})
	f.Fuzz(func(t *testing.T, rawSpacer, rawGenome []byte) {
		if len(rawSpacer) == 0 || len(rawSpacer) > 8 || len(rawGenome) > 2048 {
			return
		}
		spacer := make(dna.Seq, len(rawSpacer))
		for i, b := range rawSpacer {
			spacer[i] = dna.Base(b % 4)
		}
		in := make([]uint8, len(rawGenome))
		for i, b := range rawGenome {
			if b%19 == 0 {
				in[i] = DeadSymbol
			} else {
				in[i] = b % 4
			}
		}
		n, err := CompileHamming(dna.PatternFromSeq(spacer), CompileOptions{MaxMismatches: 1, Code: 0})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := Multistride2(n)
		if err != nil {
			t.Fatal(err)
		}
		want := dedupReports(NewSim(n).ScanCollect(in))
		var got []Report
		ScanStride2(NewSim(s2), in, func(r Report) { got = append(got, r) })
		if !reportsEqual(dedupReports(got), want) {
			t.Fatalf("stride-2 diverged (spacer=%s, %d vs %d reports)", spacer, len(got), len(want))
		}
	})
}
