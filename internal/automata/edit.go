package automata

import (
	"fmt"

	"github.com/cap-repro/crisprscan/internal/dna"
)

// EditOptions extends CompileOptions with a bulge (gap) budget, giving
// the edit-distance automaton the paper sketches for bulge-tolerant
// search (the capability CasOT calls DNA/RNA bulges).
type EditOptions struct {
	// MaxMismatches is the substitution budget.
	MaxMismatches int
	// MaxBulge is the combined budget for RNA bulges (deleted spacer
	// positions) and DNA bulges (inserted genome bases). Bulges are only
	// permitted strictly inside the spacer alignment, never at its ends,
	// matching how bulge-aware off-target tools define sites.
	MaxBulge int
	PAM      dna.Pattern
	// PAMLeft places the PAM before the spacer in the scanned window
	// (minus-strand patterns).
	PAMLeft bool
	Code    int32
}

// editKey identifies a lattice node: pattern position consumed (1-based),
// substitutions used, gaps used, and the entry kind.
type editKey struct {
	i, s, g int
	kind    uint8 // 0 = match entry, 1 = substitution entry, 2 = insertion entry
}

// CompileEdit builds the homogeneous edit-distance NFA for one spacer.
// A homogeneous automaton has no epsilon transitions, so spacer deletions
// (which consume no genome base) are folded into the outgoing edges:
// from a node at pattern position i, edges jump over d deleted positions
// directly into the consuming state at position i+d+1, charging d gaps.
// Insertions are explicit states with class N (any base) that keep the
// pattern position fixed.
func CompileEdit(spacer dna.Pattern, opt EditOptions) (*NFA, error) {
	m := len(spacer)
	if m < 2 {
		return nil, fmt.Errorf("automata: edit compilation needs spacer length >= 2, got %d", m)
	}
	k, b := opt.MaxMismatches, opt.MaxBulge
	if k < 0 || k > m {
		return nil, fmt.Errorf("automata: mismatch budget %d out of range", k)
	}
	if b < 0 || b >= m {
		return nil, fmt.Errorf("automata: bulge budget %d out of range", b)
	}
	n := New(dna.AlphabetSize, fmt.Sprintf("edit(k=%d,b=%d,%s%s)", k, b, spacer, opt.PAM))

	// With a left PAM the exact chain comes first and owns the start
	// state; its tail feeds the lattice entry states.
	var pamTail []uint32
	latticeStart := AllInput
	if opt.PAMLeft && len(opt.PAM) > 0 {
		latticeStart = NoStart
		var prev uint32
		for p, mask := range opt.PAM {
			start := NoStart
			if p == 0 {
				start = AllInput
			}
			id := n.AddState(NewState(ClassOfMask(mask), start))
			if p > 0 {
				n.AddEdge(prev, id)
			}
			prev = id
		}
		pamTail = []uint32{prev}
	}

	ids := make(map[editKey]uint32)
	state := func(key editKey) (uint32, bool) {
		if id, ok := ids[key]; ok {
			return id, true
		}
		var class Class
		switch key.kind {
		case 0:
			class = ClassOfMask(spacer[key.i-1])
		case 1:
			class = ClassOfMask(dna.MaskAny &^ spacer[key.i-1])
		case 2:
			class = ClassOfMask(dna.MaskAny)
		}
		if class == 0 {
			return 0, false // impossible entry (for example mismatching an N position)
		}
		start := NoStart
		entry := false
		if key.i == 1 && key.kind != 2 && key.s <= 1 && key.g == 0 {
			// Only the very first consumed base can be an entry point:
			// match(1,0,0) or subst(1,1,0).
			if key.kind == 0 && key.s == 0 || key.kind == 1 && key.s == 1 {
				entry = true
				start = latticeStart
			}
		}
		id := n.AddState(NewState(class, start))
		if entry {
			for _, t := range pamTail {
				n.AddEdge(t, id)
			}
		}
		ids[key] = id
		return id, true
	}

	// Breadth-first construction from the two start nodes.
	type node struct{ i, s, g int }
	startMatch := editKey{1, 0, 0, 0}
	startSub := editKey{1, 1, 0, 1}
	var queue []editKey
	if id, ok := state(startMatch); ok {
		_ = id
		queue = append(queue, startMatch)
	}
	if k >= 1 {
		if _, ok := state(startSub); ok {
			queue = append(queue, startSub)
		}
	}
	seen := map[editKey]bool{}
	var finals []uint32
	addEdgeTo := func(from uint32, key editKey, queueRef *[]editKey) {
		id, ok := state(key)
		if !ok {
			return
		}
		n.AddEdge(from, id)
		if !seen[key] {
			seen[key] = true
			*queueRef = append(*queueRef, key)
		}
	}
	for i := range queue {
		seen[queue[i]] = true
	}
	for len(queue) > 0 {
		key := queue[0]
		queue = queue[1:]
		from := ids[key]
		cur := node{key.i, key.s, key.g}
		// Accept if the whole spacer has been aligned.
		if cur.i == m && key.kind != 2 {
			finals = append(finals, from)
			continue
		}
		// Consume next base, optionally after d interior deletions.
		for d := 0; cur.g+d <= b; d++ {
			i2 := cur.i + d
			if i2+1 > m {
				break // deletions may not run off the spacer end
			}
			g2 := cur.g + d
			addEdgeTo(from, editKey{i2 + 1, cur.s, g2, 0}, &queue)
			if cur.s < k {
				addEdgeTo(from, editKey{i2 + 1, cur.s + 1, g2, 1}, &queue)
			}
		}
		// Insertion (DNA bulge): consume a genome base, pattern fixed.
		// Interior only (1 <= i < m); insertions may chain up to the budget.
		if cur.i >= 1 && cur.i < m && cur.g < b {
			addEdgeTo(from, editKey{cur.i, cur.s, cur.g + 1, 2}, &queue)
		}
	}
	if len(finals) == 0 {
		return nil, fmt.Errorf("automata: edit automaton has no accepting states")
	}

	if len(opt.PAM) == 0 || opt.PAMLeft {
		for _, f := range finals {
			n.States[f].Report = opt.Code
		}
	} else {
		prev := finals
		for p, mask := range opt.PAM {
			st := NewState(ClassOfMask(mask), NoStart)
			if p == len(opt.PAM)-1 {
				st.Report = opt.Code
			}
			id := n.AddState(st)
			for _, u := range prev {
				n.AddEdge(u, id)
			}
			prev = []uint32{id}
		}
	}
	return n, nil
}
