package automata

import (
	"fmt"

	"github.com/cap-repro/crisprscan/internal/dna"
)

// CompileOptions controls guide-to-automaton compilation.
type CompileOptions struct {
	// MaxMismatches is the spacer Hamming budget k.
	MaxMismatches int
	// PAM is the degenerate PAM pattern matched exactly adjacent to the
	// spacer (for example NGG). Empty means no PAM constraint.
	PAM dna.Pattern
	// PAMLeft places the PAM before the spacer in the scanned window —
	// the orientation of minus-strand patterns, whose plus-strand window
	// reads revcomp(PAM) then revcomp(spacer).
	PAMLeft bool
	// Code is the report code emitted on a match (conventionally the
	// guide index with the strand folded in by the orchestrator).
	Code int32
}

// CompileHamming builds the homogeneous Hamming-lattice NFA for one
// spacer: states (i, j) for pattern position i and mismatch count j ≤ k,
// split into match-entry states (class = spacer base i-1) and
// mismatch-entry states (class = complement set) because in a
// homogeneous automaton the consumed-symbol constraint lives on the
// entered state. The automaton is all-input-start, so a single
// left-to-right pass over the genome tests every alignment; a report
// fires when the final window state activates, with End = the index of
// the window's last base.
//
// The spacer may contain degenerate positions (for example a leading N);
// a "mismatch" at position i means the consumed base is outside the
// position's base set, and positions whose set is N can never mismatch.
func CompileHamming(spacer dna.Pattern, opt CompileOptions) (*NFA, error) {
	m := len(spacer)
	if m == 0 {
		return nil, fmt.Errorf("automata: empty spacer")
	}
	k := opt.MaxMismatches
	if k < 0 || k > m {
		return nil, fmt.Errorf("automata: mismatch budget %d out of range for spacer length %d", k, m)
	}
	side := "3'"
	if opt.PAMLeft {
		side = "5'"
	}
	n := New(dna.AlphabetSize, fmt.Sprintf("hamming(k=%d,%s,pam=%s@%s)", k, spacer, opt.PAM, side))

	// With a left PAM, the window begins with the exact PAM chain and
	// the chain's head is the start state; otherwise the lattice heads
	// are starts and the PAM chain trails.
	var pamTail []uint32 // state(s) feeding the lattice heads (PAMLeft)
	latticeStart := AllInput
	if opt.PAMLeft && len(opt.PAM) > 0 {
		latticeStart = NoStart
		var prev uint32
		for p, mask := range opt.PAM {
			start := NoStart
			if p == 0 {
				start = AllInput
			}
			id := n.AddState(NewState(ClassOfMask(mask), start))
			if p > 0 {
				n.AddEdge(prev, id)
			}
			prev = id
		}
		pamTail = []uint32{prev}
	}

	// matchSt[i][j]: state entered by matching spacer base i-1 with j
	// mismatches so far; missSt[i][j]: entered by mismatching base i-1
	// (the j-th mismatch). Index 0 is unused; positions are 1-based.
	matchSt := make([][]int32, m+1)
	missSt := make([][]int32, m+1)
	for i := 1; i <= m; i++ {
		matchSt[i] = make([]int32, k+1)
		missSt[i] = make([]int32, k+1)
		for j := range matchSt[i] {
			matchSt[i][j] = -1
			missSt[i][j] = -1
		}
		hi := i - 1 // at most i-1 mismatches can precede a match at i
		if hi > k {
			hi = k
		}
		for j := 0; j <= hi; j++ {
			start := NoStart
			if i == 1 {
				start = latticeStart
			}
			id := n.AddState(NewState(ClassOfMask(spacer[i-1]), start))
			matchSt[i][j] = int32(id)
			if i == 1 {
				for _, t := range pamTail {
					n.AddEdge(t, id)
				}
			}
		}
		missClass := ClassOfMask(dna.MaskAny &^ spacer[i-1])
		if missClass != 0 {
			hi = i
			if hi > k {
				hi = k
			}
			for j := 1; j <= hi; j++ {
				start := NoStart
				if i == 1 {
					start = latticeStart
				}
				id := n.AddState(NewState(missClass, start))
				missSt[i][j] = int32(id)
				if i == 1 {
					for _, t := range pamTail {
						n.AddEdge(t, id)
					}
				}
			}
		}
	}

	// Lattice edges: from any state at (i, j) to match(i+1, j) and, with
	// budget left, to miss(i+1, j+1).
	connect := func(from int32, i, j int) {
		if from < 0 || i >= m {
			return
		}
		if to := matchSt[i+1][j]; to >= 0 {
			n.AddEdge(uint32(from), uint32(to))
		}
		if j < k {
			if to := missSt[i+1][j+1]; to >= 0 {
				n.AddEdge(uint32(from), uint32(to))
			}
		}
	}
	for i := 1; i <= m; i++ {
		for j := 0; j <= k; j++ {
			connect(matchSt[i][j], i, j)
			connect(missSt[i][j], i, j)
		}
	}

	// Window-final states: lattice ends for PAMLeft (or no PAM), the PAM
	// chain's tail otherwise.
	finals := make([]uint32, 0, 2*(k+1))
	for j := 0; j <= k; j++ {
		if matchSt[m][j] >= 0 {
			finals = append(finals, uint32(matchSt[m][j]))
		}
		if missSt[m][j] >= 0 {
			finals = append(finals, uint32(missSt[m][j]))
		}
	}
	if !opt.PAMLeft && len(opt.PAM) > 0 {
		prev := finals
		for p, mask := range opt.PAM {
			st := NewState(ClassOfMask(mask), NoStart)
			if p == len(opt.PAM)-1 {
				st.Report = opt.Code
			}
			id := n.AddState(st)
			for _, u := range prev {
				n.AddEdge(u, id)
			}
			prev = []uint32{id}
		}
	} else {
		for _, f := range finals {
			n.States[f].Report = opt.Code
		}
	}
	return n, nil
}

// SiteLen returns the genomic window length a Hamming automaton's match
// spans (spacer plus PAM).
func SiteLen(spacerLen int, pam dna.Pattern) int { return spacerLen + len(pam) }

// HammingStateCount predicts the state count CompileHamming produces for
// a concrete spacer, for resource planning without building the
// automaton. Exposed because the AP placement model sizes boards from it.
func HammingStateCount(spacerLen, k, pamLen int) int {
	states := 0
	for i := 1; i <= spacerLen; i++ {
		hi := i - 1
		if hi > k {
			hi = k
		}
		states += hi + 1 // match states
		hi = i
		if hi > k {
			hi = k
		}
		states += hi // mismatch states (j = 1..hi)
	}
	return states + pamLen
}
