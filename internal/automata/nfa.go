// Package automata implements the paper's primary contribution: the
// compilation of gRNA off-target search into homogeneous nondeterministic
// finite automata, plus the transformations the paper proposes for
// spatial architectures (prefix/suffix state merging, 2-striding) and a
// bitset simulation engine that serves as the functional reference for
// every platform model.
//
// The machine model is the ANML model of Micron's Automata Processor: a
// homogeneous NFA, meaning the input character class lives on the state
// (the AP's STE) rather than on the edge. A state becomes active at step
// t+1 iff (one of its predecessors was active at step t, or it is a start
// state) and its class contains input symbol t. This model maps one state
// to one STE on the AP and to one LUT/FF pair in FPGA automata overlays,
// which is why resource accounting in internal/ap and internal/fpga can
// count NFA states directly.
package automata

import (
	"fmt"
	"math/bits"
	"sort"

	"github.com/cap-repro/crisprscan/internal/dna"
)

// StartKind says when a state may self-activate.
type StartKind uint8

const (
	// NoStart states activate only through in-edges.
	NoStart StartKind = iota
	// StartOfData states self-activate only for the first input symbol.
	StartOfData
	// AllInput states self-activate at every input position. Search
	// automata use this so one pass tests every genome alignment.
	AllInput
)

// NoReport marks a non-reporting state.
const NoReport int32 = -1

// Class is a character-class bitset over the NFA's alphabet (bit s set
// means symbol s is accepted). Stride-1 DNA automata use alphabet size 4;
// 2-strided automata use the 21-symbol pair alphabet (see stride.go).
type Class uint64

// HasSym reports whether symbol s is in the class.
func (c Class) HasSym(s uint8) bool { return c&(1<<s) != 0 }

// Count returns the number of symbols in the class.
func (c Class) Count() int { return bits.OnesCount64(uint64(c)) }

// ClassOfMask lifts a dna.Mask into a stride-1 Class.
func ClassOfMask(m dna.Mask) Class { return Class(m) & 0xF }

// State is one homogeneous-NFA state (equivalently, one AP STE).
type State struct {
	Class Class
	Start StartKind
	// Report is the report code emitted when this state activates
	// (a match ends at the just-consumed symbol), or NoReport.
	Report int32
	// ReportMid is used by 2-strided automata: a report whose match
	// actually ended one input symbol before the end of the consumed
	// pair. NoReport otherwise.
	ReportMid int32
	// Out lists successor state indices.
	Out []uint32
}

// NFA is a homogeneous nondeterministic finite automaton.
type NFA struct {
	// Alphabet is the number of input symbols (4 for stride-1 DNA).
	Alphabet int
	Label    string
	States   []State
}

// New returns an empty NFA over the given alphabet.
func New(alphabet int, label string) *NFA {
	return &NFA{Alphabet: alphabet, Label: label}
}

// AddState appends a state and returns its index. Report codes must be
// set explicitly (use NoReport for non-reporting states; code 0 is a
// legal report code).
func (n *NFA) AddState(s State) uint32 {
	n.States = append(n.States, s)
	return uint32(len(n.States) - 1)
}

// NewState returns a non-reporting state template with the given class
// and start kind.
func NewState(class Class, start StartKind) State {
	return State{Class: class, Start: start, Report: NoReport, ReportMid: NoReport}
}

// AddEdge connects state u to state v.
func (n *NFA) AddEdge(u, v uint32) {
	n.States[u].Out = append(n.States[u].Out, v)
}

// NumStates returns the number of states.
func (n *NFA) NumStates() int { return len(n.States) }

// NumEdges returns the total number of edges.
func (n *NFA) NumEdges() int {
	e := 0
	for i := range n.States {
		e += len(n.States[i].Out)
	}
	return e
}

// Validate checks structural invariants: edge targets in range, classes
// within the alphabet, at least one start and one reporting state.
func (n *NFA) Validate() error {
	if n.Alphabet <= 0 || n.Alphabet > 64 {
		return fmt.Errorf("automata: alphabet size %d out of range", n.Alphabet)
	}
	limit := Class(1)<<uint(n.Alphabet) - 1
	starts, reports := 0, 0
	for i := range n.States {
		s := &n.States[i]
		if s.Class&^limit != 0 {
			return fmt.Errorf("automata: state %d class %b exceeds alphabet %d", i, s.Class, n.Alphabet)
		}
		if s.Start != NoStart {
			starts++
		}
		if s.Report != NoReport || s.ReportMid != NoReport {
			reports++
		}
		for _, v := range s.Out {
			if int(v) >= len(n.States) {
				return fmt.Errorf("automata: state %d has edge to %d, out of range", i, v)
			}
		}
	}
	if len(n.States) == 0 {
		return fmt.Errorf("automata: empty NFA")
	}
	if starts == 0 {
		return fmt.Errorf("automata: no start states")
	}
	if reports == 0 {
		return fmt.Errorf("automata: no reporting states")
	}
	return nil
}

// Clone returns a deep copy.
func (n *NFA) Clone() *NFA {
	out := &NFA{Alphabet: n.Alphabet, Label: n.Label, States: make([]State, len(n.States))}
	for i, s := range n.States {
		s.Out = append([]uint32(nil), s.Out...)
		out.States[i] = s
	}
	return out
}

// Union appends the states of other into n (report codes are preserved,
// so callers should namespace codes before union). Both NFAs must share
// an alphabet.
func (n *NFA) Union(other *NFA) error {
	if n.Alphabet != other.Alphabet {
		return fmt.Errorf("automata: union of alphabet %d with %d", n.Alphabet, other.Alphabet)
	}
	base := uint32(len(n.States))
	for _, s := range other.States {
		out := make([]uint32, len(s.Out))
		for i, v := range s.Out {
			out[i] = v + base
		}
		s.Out = out
		n.States = append(n.States, s)
	}
	return nil
}

// UnionAll unions a set of NFAs into a single network.
func UnionAll(label string, parts []*NFA) (*NFA, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("automata: UnionAll of nothing")
	}
	u := New(parts[0].Alphabet, label)
	for _, p := range parts {
		if err := u.Union(p); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// Stats summarizes an automaton for resource accounting (STEs on the AP,
// LUT/FF pairs on the FPGA) and for the E1 characterization table.
type Stats struct {
	States       int
	Edges        int
	StartStates  int
	ReportStates int
	MaxFanIn     int
	MaxFanOut    int
	AvgClassSize float64
}

// ComputeStats walks the automaton once.
func (n *NFA) ComputeStats() Stats {
	st := Stats{States: len(n.States)}
	fanIn := make([]int, len(n.States))
	classTotal := 0
	for i := range n.States {
		s := &n.States[i]
		st.Edges += len(s.Out)
		if len(s.Out) > st.MaxFanOut {
			st.MaxFanOut = len(s.Out)
		}
		if s.Start != NoStart {
			st.StartStates++
		}
		if s.Report != NoReport || s.ReportMid != NoReport {
			st.ReportStates++
		}
		classTotal += s.Class.Count()
		for _, v := range s.Out {
			fanIn[v]++
		}
	}
	for _, f := range fanIn {
		if f > st.MaxFanIn {
			st.MaxFanIn = f
		}
	}
	if st.States > 0 {
		st.AvgClassSize = float64(classTotal) / float64(st.States)
	}
	return st
}

// Trim removes states that are unreachable from a start state or that
// cannot reach a reporting state, returning a new NFA and the number of
// removed states. Report codes are untouched.
func (n *NFA) Trim() (*NFA, int) {
	fwd := make([]bool, len(n.States))
	var stack []uint32
	for i := range n.States {
		if n.States[i].Start != NoStart {
			fwd[i] = true
			stack = append(stack, uint32(i))
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range n.States[u].Out {
			if !fwd[v] {
				fwd[v] = true
				stack = append(stack, v)
			}
		}
	}
	// Reverse reachability to a reporting state.
	preds := make([][]uint32, len(n.States))
	for i := range n.States {
		for _, v := range n.States[i].Out {
			preds[v] = append(preds[v], uint32(i))
		}
	}
	bwd := make([]bool, len(n.States))
	stack = stack[:0]
	for i := range n.States {
		if n.States[i].Report != NoReport || n.States[i].ReportMid != NoReport {
			bwd[i] = true
			stack = append(stack, uint32(i))
		}
	}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range preds[u] {
			if !bwd[p] {
				bwd[p] = true
				stack = append(stack, p)
			}
		}
	}
	keep := make([]int32, len(n.States))
	out := New(n.Alphabet, n.Label)
	for i := range keep {
		keep[i] = -1
	}
	for i := range n.States {
		if fwd[i] && bwd[i] {
			s := n.States[i]
			s.Out = nil
			keep[i] = int32(out.AddState(s))
		}
	}
	for i := range n.States {
		if keep[i] < 0 {
			continue
		}
		for _, v := range n.States[i].Out {
			if keep[v] >= 0 {
				out.AddEdge(uint32(keep[i]), uint32(keep[v]))
			}
		}
	}
	return out, len(n.States) - len(out.States)
}

// sortedOut returns a sorted, deduplicated copy of a state's out list;
// used by canonicalization and merging.
func sortedOut(out []uint32) []uint32 {
	c := append([]uint32(nil), out...)
	sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
	w := 0
	for i, v := range c {
		if i == 0 || v != c[w-1] {
			c[w] = v
			w++
		}
	}
	return c[:w]
}
