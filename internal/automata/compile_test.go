package automata

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
)

// refHamming is the oracle: report (code, end) for every window whose
// spacer part has <= k mismatches and whose PAM matches exactly.
func refHamming(genome dna.Seq, spacer dna.Pattern, pam dna.Pattern, k int, code int32) []Report {
	var out []Report
	site := len(spacer) + len(pam)
	for p := 0; p+site <= len(genome); p++ {
		if genome[p : p+site].HasAmbiguous() {
			continue // windows containing N are never sites
		}
		if spacer.Mismatches(genome[p:p+len(spacer)]) > k {
			continue
		}
		if len(pam) > 0 && !pam.Matches(genome[p+len(spacer):p+site]) {
			continue
		}
		out = append(out, Report{Code: code, End: p + site - 1})
	}
	return out
}

func sortReports(r []Report) {
	sort.Slice(r, func(i, j int) bool {
		if r[i].End != r[j].End {
			return r[i].End < r[j].End
		}
		return r[i].Code < r[j].Code
	})
}

func dedupReports(r []Report) []Report {
	sortReports(r)
	w := 0
	for i, x := range r {
		if i == 0 || x != r[w-1] {
			r[w] = x
			w++
		}
	}
	return r[:w]
}

func reportsEqual(a, b []Report) bool {
	a, b = dedupReports(a), dedupReports(b)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randSeq(rng *rand.Rand, n int) dna.Seq {
	s := make(dna.Seq, n)
	for i := range s {
		s[i] = dna.Base(rng.Intn(4))
	}
	return s
}

func TestCompileHammingValidates(t *testing.T) {
	spacer := dna.PatternFromSeq(dna.MustParseSeq("ACGTACGTAC"))
	pam := dna.MustParsePattern("NGG")
	for k := 0; k <= 4; k++ {
		n, err := CompileHamming(spacer, CompileOptions{MaxMismatches: k, PAM: pam, Code: 7})
		if err != nil {
			t.Fatal(err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if got, want := n.NumStates(), HammingStateCount(len(spacer), k, len(pam)); got != want {
			t.Errorf("k=%d: %d states, predicted %d", k, got, want)
		}
	}
}

func TestCompileHammingErrors(t *testing.T) {
	spacer := dna.PatternFromSeq(dna.MustParseSeq("ACGT"))
	if _, err := CompileHamming(nil, CompileOptions{}); err == nil {
		t.Error("empty spacer must error")
	}
	if _, err := CompileHamming(spacer, CompileOptions{MaxMismatches: -1}); err == nil {
		t.Error("negative k must error")
	}
	if _, err := CompileHamming(spacer, CompileOptions{MaxMismatches: 5}); err == nil {
		t.Error("k > len must error")
	}
}

func TestHammingExactMatch(t *testing.T) {
	genome := dna.MustParseSeq("TTTACGTAAGGTT")
	spacer := dna.PatternFromSeq(dna.MustParseSeq("ACGTA"))
	pam := dna.MustParsePattern("NGG")
	n, err := CompileHamming(spacer, CompileOptions{MaxMismatches: 0, PAM: pam, Code: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := NewSim(n).ScanCollect(SymbolsOfSeq(genome))
	want := []Report{{Code: 1, End: 10}} // ACGTA at 3..7, AGG at 8..10
	if !reportsEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestHammingMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pam := dna.MustParsePattern("NGG")
	for trial := 0; trial < 30; trial++ {
		m := 6 + rng.Intn(6)
		k := rng.Intn(4)
		if k > m {
			k = m
		}
		spacer := dna.PatternFromSeq(randSeq(rng, m))
		genome := randSeq(rng, 2000)
		n, err := CompileHamming(spacer, CompileOptions{MaxMismatches: k, PAM: pam, Code: int32(trial)})
		if err != nil {
			t.Fatal(err)
		}
		got := NewSim(n).ScanCollect(SymbolsOfSeq(genome))
		want := refHamming(genome, spacer, pam, k, int32(trial))
		if !reportsEqual(got, want) {
			t.Fatalf("trial %d (m=%d k=%d): %d reports, oracle %d", trial, m, k, len(dedupReports(got)), len(want))
		}
	}
}

func TestHammingNoPAM(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	spacer := dna.PatternFromSeq(randSeq(rng, 8))
	genome := randSeq(rng, 1000)
	n, err := CompileHamming(spacer, CompileOptions{MaxMismatches: 2, Code: 0})
	if err != nil {
		t.Fatal(err)
	}
	got := NewSim(n).ScanCollect(SymbolsOfSeq(genome))
	want := refHamming(genome, spacer, nil, 2, 0)
	if !reportsEqual(got, want) {
		t.Fatalf("no-PAM mismatch: got %d, want %d", len(dedupReports(got)), len(want))
	}
}

func TestHammingDegenerateSpacerPositions(t *testing.T) {
	// Leading N in the spacer (common for gRNAs synthesized with a G
	// prepended): N can never mismatch.
	spacer := dna.MustParsePattern("NCGT")
	genome := dna.MustParseSeq("TTACGTAGGTTTTGCGTTGGTT")
	pam := dna.MustParsePattern("NGG")
	n, err := CompileHamming(spacer, CompileOptions{MaxMismatches: 0, PAM: pam, Code: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := NewSim(n).ScanCollect(SymbolsOfSeq(genome))
	want := refHamming(genome, spacer, pam, 0, 3)
	if len(want) < 2 {
		t.Fatalf("test fixture should contain at least 2 sites, oracle found %d", len(want))
	}
	if !reportsEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestHammingAmbiguousGenomeKillsMatches(t *testing.T) {
	spacer := dna.PatternFromSeq(dna.MustParseSeq("ACGTA"))
	pam := dna.MustParsePattern("NGG")
	genome, _ := dna.ParseSeq("TTTACGNAGGTTT") // N inside the site window
	n, err := CompileHamming(spacer, CompileOptions{MaxMismatches: 1, PAM: pam, Code: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := NewSim(n).ScanCollect(SymbolsOfSeq(genome))
	if len(got) != 0 {
		t.Errorf("matches crossing an N must die, got %v", got)
	}
}

func TestHammingUnionMultipleGuides(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	pam := dna.MustParsePattern("NGG")
	genome := randSeq(rng, 3000)
	var parts []*NFA
	var want []Report
	for g := 0; g < 8; g++ {
		spacer := dna.PatternFromSeq(randSeq(rng, 7))
		n, err := CompileHamming(spacer, CompileOptions{MaxMismatches: 2, PAM: pam, Code: int32(g)})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, n)
		want = append(want, refHamming(genome, spacer, pam, 2, int32(g))...)
	}
	u, err := UnionAll("union", parts)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	got := NewSim(u).ScanCollect(SymbolsOfSeq(genome))
	if !reportsEqual(got, want) {
		t.Fatalf("union scan: got %d reports, want %d", len(dedupReports(got)), len(dedupReports(want)))
	}
}

func TestTrimPreservesLanguage(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	spacer := dna.PatternFromSeq(randSeq(rng, 8))
	n, err := CompileHamming(spacer, CompileOptions{MaxMismatches: 2, PAM: dna.MustParsePattern("NGG"), Code: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Add junk: an unreachable state and a dead-end state.
	junk1 := n.AddState(NewState(ClassOfMask(dna.MaskA), NoStart))
	junk2 := n.AddState(NewState(ClassOfMask(dna.MaskC), AllInput))
	n.AddEdge(junk1, junk2)
	trimmed, removed := n.Trim()
	if removed != 2 {
		t.Errorf("removed %d states, want 2", removed)
	}
	genome := randSeq(rng, 1500)
	a := NewSim(n).ScanCollect(SymbolsOfSeq(genome))
	b := NewSim(trimmed).ScanCollect(SymbolsOfSeq(genome))
	if !reportsEqual(a, b) {
		t.Error("trim changed the language")
	}
}

func TestComputeStats(t *testing.T) {
	spacer := dna.PatternFromSeq(dna.MustParseSeq("ACGTACGT"))
	n, _ := CompileHamming(spacer, CompileOptions{MaxMismatches: 1, PAM: dna.MustParsePattern("NGG"), Code: 0})
	st := n.ComputeStats()
	if st.States != n.NumStates() || st.Edges != n.NumEdges() {
		t.Error("stats disagree with direct counts")
	}
	if st.StartStates != 2 { // match(1,0) and miss(1,1)
		t.Errorf("StartStates = %d, want 2", st.StartStates)
	}
	if st.ReportStates != 1 {
		t.Errorf("ReportStates = %d, want 1", st.ReportStates)
	}
	if st.MaxFanOut < 2 || st.MaxFanIn < 2 {
		t.Errorf("fan stats implausible: %+v", st)
	}
}

func TestValidateCatchesBadEdges(t *testing.T) {
	n := New(4, "bad")
	s := n.AddState(NewState(ClassOfMask(dna.MaskA), AllInput))
	n.States[s].Report = 0
	n.States[s].Out = append(n.States[s].Out, 99)
	if err := n.Validate(); err == nil {
		t.Error("out-of-range edge must fail validation")
	}
}
