package automata

// 2-striding is one of the optimizations the paper proposes for spatial
// architectures: the automaton consumes two DNA bases per clock, doubling
// scan throughput at the cost of more states (roughly the original edge
// count). This file implements the transformation for homogeneous NFAs
// and a wrapper that runs a strided automaton over stride-1 input and
// reports end positions in stride-1 coordinates.
//
// The pair alphabet has 25 symbols:
//
//	0..15   (c1,c2) both concrete: symbol = 4*c1 + c2
//	16..19  (c1, dead/pad): first element concrete, second ambiguous
//	20..23  (dead, c2): first element ambiguous, second concrete
//	24      both ambiguous
//
// Ambiguous second elements must stay visible (a match can legitimately
// end on the first element of a pair), and ambiguous first elements must
// stay visible (a match can legitimately begin on the second element),
// which is why the dead half-pairs are distinct symbols rather than one
// dead symbol.
const Stride2Alphabet = 25

// PairSymbol encodes two stride-1 symbols as one stride-2 symbol.
// Values >= 4 (including DeadSymbol) count as ambiguous.
func PairSymbol(a, b uint8) uint8 {
	aBad, bBad := a >= 4, b >= 4
	switch {
	case !aBad && !bBad:
		return 4*a + b
	case !aBad:
		return 16 + a
	case !bBad:
		return 20 + b
	default:
		return 24
	}
}

// PairSymbols converts a stride-1 symbol stream to the stride-2 stream,
// padding an odd tail with an ambiguous second element.
func PairSymbols(input []uint8) []uint8 {
	out := make([]uint8, (len(input)+1)/2)
	for i := 0; i+1 < len(input); i += 2 {
		out[i/2] = PairSymbol(input[i], input[i+1])
	}
	if len(input)%2 == 1 {
		out[len(out)-1] = PairSymbol(input[len(input)-1], DeadSymbol)
	}
	return out
}

// pairClass builds the class of an edge-state (u then v).
func pairClass(u, v Class) Class {
	var c Class
	for c1 := uint8(0); c1 < 4; c1++ {
		if !u.HasSym(c1) {
			continue
		}
		for c2 := uint8(0); c2 < 4; c2++ {
			if v.HasSym(c2) {
				c |= 1 << (4*c1 + c2)
			}
		}
	}
	return c
}

// halfClassFirst builds the class of a state that only constrains the
// first element of the pair (the second may be anything, including
// ambiguous/pad).
func halfClassFirst(u Class) Class {
	var c Class
	for c1 := uint8(0); c1 < 4; c1++ {
		if !u.HasSym(c1) {
			continue
		}
		for c2 := uint8(0); c2 < 4; c2++ {
			c |= 1 << (4*c1 + c2)
		}
		c |= 1 << (16 + c1)
	}
	return c
}

// halfClassSecond builds the class of a state that only constrains the
// second element of the pair.
func halfClassSecond(v Class) Class {
	var c Class
	for c2 := uint8(0); c2 < 4; c2++ {
		if !v.HasSym(c2) {
			continue
		}
		for c1 := uint8(0); c1 < 4; c1++ {
			c |= 1 << (4*c1 + c2)
		}
		c |= 1 << (20 + c2)
	}
	return c
}

// Multistride2 converts a stride-1 (alphabet-4) homogeneous NFA into an
// equivalent stride-2 automaton over the pair alphabet. The construction
// is the edge automaton: each new state represents "original state u
// consumed the pair's first base, then v consumed its second"; two extra
// state families handle matches that end mid-pair (H states, ReportMid)
// and matches that begin mid-pair (B states).
//
// StartOfData originals only yield pair-aligned starts, so anchored
// automata remain anchored. Reports carry the original codes; use
// ScanStride2 to map end positions back to stride-1 coordinates.
func Multistride2(n *NFA) (*NFA, error) {
	if n.Alphabet != 4 {
		return nil, errNotStride1
	}
	out := New(Stride2Alphabet, n.Label+"/stride2")

	type pairKey struct{ u, v int32 } // v == -1 encodes H(u); u == -1 encodes B(v)
	ids := make(map[pairKey]uint32)

	getE := func(u, v int32) uint32 {
		key := pairKey{u, v}
		if id, ok := ids[key]; ok {
			return id
		}
		su, sv := &n.States[u], &n.States[v]
		st := NewState(pairClass(su.Class, sv.Class), su.Start)
		if sv.Report != NoReport {
			st.Report = sv.Report
		}
		if su.Report != NoReport {
			st.ReportMid = su.Report
		}
		id := out.AddState(st)
		ids[key] = id
		return id
	}
	getH := func(u int32) uint32 {
		key := pairKey{u, -1}
		if id, ok := ids[key]; ok {
			return id
		}
		su := &n.States[u]
		st := NewState(halfClassFirst(su.Class), su.Start)
		st.ReportMid = su.Report
		id := out.AddState(st)
		ids[key] = id
		return id
	}
	getB := func(v int32) uint32 {
		key := pairKey{-1, v}
		if id, ok := ids[key]; ok {
			return id
		}
		sv := &n.States[v]
		st := NewState(halfClassSecond(sv.Class), AllInput)
		if sv.Report != NoReport {
			st.Report = sv.Report
		}
		id := out.AddState(st)
		ids[key] = id
		return id
	}

	// Materialize all states. E states exist per original edge; H per
	// reporting state that something leads into (or that starts); B per
	// AllInput start state.
	indeg := make([]int, len(n.States))
	for u := range n.States {
		for _, v := range n.States[u].Out {
			indeg[v]++
		}
	}
	for u := range n.States {
		su := &n.States[u]
		reachable := su.Start != NoStart || indeg[u] > 0
		for _, v := range su.Out {
			if reachable {
				getE(int32(u), int32(v))
			}
		}
		if su.Report != NoReport && reachable {
			getH(int32(u))
		}
		if su.Start == AllInput {
			getB(int32(u))
		}
	}

	// Wire edges: a state whose second component is b feeds every E(u,v)
	// and H(u) with u in Out(b).
	connect := func(fromID uint32, b int32) {
		for _, u := range n.States[b].Out {
			su := &n.States[u]
			for _, v := range su.Out {
				out.AddEdge(fromID, getE(int32(u), int32(v)))
			}
			if su.Report != NoReport {
				out.AddEdge(fromID, getH(int32(u)))
			}
		}
	}
	// Iterate over a snapshot of the id map; connect may add states (all
	// reachable targets were materialized above, so getE/getH inside
	// connect only look up existing ids for valid automata, but be
	// permissive and loop until stable).
	done := make(map[pairKey]bool)
	for {
		progress := false
		for key, id := range ids {
			if done[key] {
				continue
			}
			done[key] = true
			progress = true
			switch {
			case key.v == -1: // H(u): match ended, no continuation
			case key.u == -1: // B(v): second component v
				connect(id, key.v)
			default: // E(u,v)
				connect(id, key.v)
			}
		}
		if !progress {
			break
		}
	}
	trimmed, _ := out.Trim()
	return trimmed, nil
}

var errNotStride1 = errorString("automata: Multistride2 requires a stride-1 (alphabet 4) NFA")

type errorString string

func (e errorString) Error() string { return string(e) }

// ScanStride2 runs a stride-2 automaton over stride-1 input symbols and
// emits reports with End in stride-1 coordinates.
func ScanStride2(sim *Sim, input []uint8, emit func(Report)) {
	pairs := PairSymbols(input)
	sim.Scan(pairs, func(r Report) {
		if r.Mid {
			emit(Report{Code: r.Code, End: 2 * r.End})
		} else {
			emit(Report{Code: r.Code, End: 2*r.End + 1})
		}
	})
}
