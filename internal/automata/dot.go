package automata

import (
	"fmt"
	"io"

	"github.com/cap-repro/crisprscan/internal/dna"
)

// WriteDot renders the automaton in Graphviz DOT form for inspection:
// start states are doubled-bordered, reporting states are filled, and
// each node shows its character class (IUPAC letter for stride-1
// classes, a hex bitset otherwise).
func (n *NFA) WriteDot(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=LR;\n  node [shape=circle, fontsize=10];\n", name); err != nil {
		return err
	}
	for i := range n.States {
		s := &n.States[i]
		label := classLabel(n.Alphabet, s.Class)
		attrs := fmt.Sprintf("label=%q", fmt.Sprintf("%d:%s", i, label))
		if s.Start != NoStart {
			attrs += ", peripheries=2"
		}
		if s.Report != NoReport || s.ReportMid != NoReport {
			attrs += ", style=filled, fillcolor=lightgrey"
			if s.Report != NoReport {
				attrs += fmt.Sprintf(", xlabel=\"r%d\"", s.Report)
			}
		}
		if _, err := fmt.Fprintf(w, "  s%d [%s];\n", i, attrs); err != nil {
			return err
		}
	}
	for i := range n.States {
		for _, v := range n.States[i].Out {
			if _, err := fmt.Fprintf(w, "  s%d -> s%d;\n", i, v); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// classLabel renders a character class compactly.
func classLabel(alphabet int, c Class) string {
	if alphabet == dna.AlphabetSize {
		if c == ClassOfMask(dna.MaskAny) {
			return "N"
		}
		out := ""
		for b := dna.A; b <= dna.T; b++ {
			if c.HasSym(uint8(b)) {
				out += string(b.Char())
			}
		}
		if out == "" {
			return "-"
		}
		if len(out) == 3 {
			// Render 3-base sets as the negation, which is how mismatch
			// states read naturally (e.g. !A).
			for b := dna.A; b <= dna.T; b++ {
				if !c.HasSym(uint8(b)) {
					return "!" + string(b.Char())
				}
			}
		}
		return out
	}
	return fmt.Sprintf("%#x", uint64(c))
}
