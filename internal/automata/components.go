package automata

// Connected-component analysis. Spatial placement needs it: an automaton
// network is placed chip-by-chip on the AP (and region-by-region on an
// FPGA), and a connected component — one guide's lattice, typically —
// cannot span devices because activation wires do not cross chips.

// Components partitions the states into weakly connected components and
// returns, for each component, its member state indices (ascending).
// Components are ordered by their smallest member.
func (n *NFA) Components() [][]uint32 {
	parent := make([]int32, len(n.States))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for i := range n.States {
		for _, v := range n.States[i].Out {
			union(int32(i), int32(v))
		}
	}
	groups := make(map[int32][]uint32)
	var order []int32
	for i := range n.States {
		r := find(int32(i))
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], uint32(i))
	}
	out := make([][]uint32, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// ComponentSizes returns the size of each connected component.
func (n *NFA) ComponentSizes() []int {
	comps := n.Components()
	sizes := make([]int, len(comps))
	for i, c := range comps {
		sizes[i] = len(c)
	}
	return sizes
}

// SubNFA extracts the sub-automaton induced by the given states (which
// should be closed under edges, as components are). Report codes, start
// kinds and classes are preserved; state ids are renumbered densely.
func (n *NFA) SubNFA(states []uint32, label string) *NFA {
	remap := make(map[uint32]uint32, len(states))
	out := New(n.Alphabet, label)
	for _, s := range states {
		st := n.States[s]
		st.Out = nil
		remap[s] = out.AddState(st)
	}
	for _, s := range states {
		from := remap[s]
		for _, v := range n.States[s].Out {
			if to, ok := remap[v]; ok {
				out.AddEdge(from, to)
			}
		}
	}
	return out
}
