package hscan

import (
	"fmt"
	"math/bits"

	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

// prefilterGroup holds the patterns sharing one PAM orientation for
// ModePrefilter.
type prefilterGroup struct {
	pats      []anchoredPat
	pam       dna.Pattern
	pamHit    [][5]bool
	pamOff    int
	spacerOff int
	spacerLen int
}

// anchoredPat is the anchored-evaluation form of one pattern: the packed
// spacer word and the lane mask of concrete positions. Evaluating
// popcount((window XOR word) AND lanes) <= k is exactly the Hamming
// lattice automaton's accept condition at this alignment, computed
// bit-parallel.
type anchoredPat struct {
	word  uint64
	lanes uint64
	k     int
	code  int32
}

// buildPrefilter compiles the prefilter groups, one per distinct
// (PAM, orientation) pair — multiple PAM types (NGG plus NAG, say) scan
// in the same pass, each with its own literal filter, exactly as
// HyperScan compiles one FDR literal table across all patterns. All
// specs must share window geometry; spacers must be concrete-or-N (as
// with Cas-OFFinder's packed form).
func (e *Engine) buildPrefilter(specs []PatternSpec) error {
	siteLen := specs[0].SiteLen()
	spacerLen := len(specs[0].Spacer)
	if spacerLen == 0 || spacerLen > 32 {
		return fmt.Errorf("hscan: prefilter mode needs spacer length 1..32, got %d", spacerLen)
	}
	e.preSite = siteLen
	index := map[string]int{}
	for i, spec := range specs {
		if spec.SiteLen() != siteLen || len(spec.Spacer) != spacerLen {
			return fmt.Errorf("hscan: prefilter mode needs uniform window geometry (pattern %d differs)", i)
		}
		key := spec.PAM.String()
		if spec.PAMLeft {
			key = "<" + key
		}
		gi, ok := index[key]
		if !ok {
			gi = len(e.preGroups)
			index[key] = gi
			g := prefilterGroup{
				pam:       spec.PAM,
				pamHit:    make([][5]bool, len(spec.PAM)),
				pamOff:    spec.PAMOffset(),
				spacerOff: spec.SpacerOffset(),
				spacerLen: spacerLen,
			}
			for pi, m := range spec.PAM {
				for b := dna.A; b <= dna.T; b++ {
					g.pamHit[pi][b] = m.Has(b)
				}
			}
			e.preGroups = append(e.preGroups, g)
		}
		g := &e.preGroups[gi]
		var p anchoredPat
		p.k = spec.K
		p.code = spec.Code
		for pos, mask := range spec.Spacer {
			switch mask.Count() {
			case 1:
				var b dna.Base
				for b = dna.A; b <= dna.T; b++ {
					if mask.Has(b) {
						break
					}
				}
				p.word |= uint64(b) << uint(2*pos)
				p.lanes |= 3 << uint(2*pos)
			case 4:
			default:
				return fmt.Errorf("hscan: prefilter mode supports concrete or N spacer positions only (pattern %d)", i)
			}
		}
		g.pats = append(g.pats, p)
	}
	// Hoisted out of scanPrefilter: the instrumented loop needs each
	// group's pattern count as int64 per chunk, and building that table
	// per chunk was a measurable per-chunk allocation (caught by the
	// hotpath analyzer once scanPrefilter was annotated).
	e.preNPats = make([]int64, len(e.preGroups))
	for gi := range e.preGroups {
		e.preNPats[gi] = int64(len(e.preGroups[gi].pats))
	}
	return nil
}

// confirm outcomes; a one-byte status keeps the per-position metrics
// accounting off the hot path (the caller turns statuses into counter
// totals using per-group pattern counts hoisted out of the loop).
const (
	confirmPAMReject = iota // PAM literal failed: candidate only
	confirmAmbiguous        // PAM hit, window ambiguous: no verification
	confirmVerified         // PAM hit, all patterns evaluated
)

// scanPrefilter runs the shared-literal pass. The packed representation
// is required, so this mode consumes the chromosome rather than a bare
// sequence slice; parallel chunking wraps it with position ownership.
// Matches append directly into out — the chunk's result batch — rather
// than through a per-chunk emit closure (which the hotpath analyzer
// flagged: one closure allocation per 64K-position chunk). It returns
// the counts of PAM-literal hits and of full anchored verifications
// performed, accumulated locally so the caller can flush them to the
// metrics recorder once per chunk. Counting costs a few nanoseconds
// per position, so the uninstrumented case (no recorder attached — raw
// engine benchmarks, bench.MeasureEngine) takes a separate
// zero-accounting loop.
//
//crisprlint:hotpath
func (e *Engine) scanPrefilter(c *genome.Chromosome, lo, hi int, out *[]automata.Report) (hits, verifs int64) {
	seq := c.Seq
	site := e.preSite
	if e.rec == nil {
		for p := lo; p < hi; p++ {
			for gi := range e.preGroups {
				e.preGroups[gi].confirm(c, p, site, seq, out)
			}
		}
		return 0, 0
	}
	groups := e.preGroups
	npats := e.preNPats
	// Pinning len(npats) to len(groups) (they are built pairwise in
	// buildPrefilter) lets prove elide the npats[gi] check inside the
	// per-position loop.
	npats = npats[:len(groups)]
	for p := lo; p < hi; p++ {
		for gi := range groups {
			switch groups[gi].confirm(c, p, site, seq, out) {
			case confirmAmbiguous:
				hits++
			case confirmVerified:
				hits++
				verifs += npats[gi]
			}
		}
	}
	return hits, verifs
}

// confirm evaluates one anchor position for one group, appending any
// verified matches to out, and reports what happened as a confirm*
// status.
//
//crisprlint:hotpath
func (g *prefilterGroup) confirm(c *genome.Chromosome, p, siteLen int, seq dna.Seq, out *[]automata.Report) uint8 {
	if len(g.pats) == 0 {
		return confirmPAMReject
	}
	for i := range g.pamHit {
		b := seq[p+g.pamOff+i]
		if b > dna.T || !g.pamHit[i][b] {
			return confirmPAMReject
		}
	}
	codes, amb := c.Packed.Window(p+g.spacerOff, g.spacerLen)
	if amb != 0 {
		return confirmAmbiguous
	}
	for pi := range g.pats {
		pat := &g.pats[pi]
		diff := (codes ^ pat.word) & pat.lanes
		diff = (diff | diff>>1) & 0x5555555555555555
		if bits.OnesCount64(diff) <= pat.k {
			//crisprlint:allow hotpath match reports are rare relative to positions; the batch grows amortized
			*out = append(*out, automata.Report{Code: pat.code, End: p + siteLen - 1})
		}
	}
	return confirmVerified
}
