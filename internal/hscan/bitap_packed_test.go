package hscan

import (
	"math/rand"
	"testing"

	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
)

func TestPackedBitapMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 10; trial++ {
		n := 2 + rng.Intn(6) // even and odd pattern counts
		specs := bothStrandSpecs(rng, n, 8+rng.Intn(6), rng.Intn(4))
		c := chromOf(rng, 8000, 0.02)
		e, err := New(specs, ModeBitap)
		if err != nil {
			t.Fatal(err)
		}
		if e.packed == nil {
			t.Fatalf("trial %d: uniform-geometry patterns should pack", trial)
		}
		var packed, scalar []automata.Report
		e.scanBitapPacked(c.Seq, 0, func(r automata.Report) { packed = append(packed, r) })
		e.scanBitap(c.Seq, 0, func(r automata.Report) { scalar = append(scalar, r) })
		sortEm := func(s []automata.Report) {
			for i := 1; i < len(s); i++ {
				for j := i; j > 0 && (s[j].End < s[j-1].End || (s[j].End == s[j-1].End && s[j].Code < s[j-1].Code)); j-- {
					s[j], s[j-1] = s[j-1], s[j]
				}
			}
		}
		sortEm(packed)
		sortEm(scalar)
		if len(packed) != len(scalar) {
			t.Fatalf("trial %d: packed %d vs scalar %d", trial, len(packed), len(scalar))
		}
		for i := range packed {
			if packed[i] != scalar[i] {
				t.Fatalf("trial %d report %d: %v vs %v", trial, i, packed[i], scalar[i])
			}
		}
	}
}

func TestPackedBitapFullLengthGuides(t *testing.T) {
	// 20nt + NGG = 23 symbols: the realistic geometry must pack (<= 31).
	rng := rand.New(rand.NewSource(202))
	specs := bothStrandSpecs(rng, 4, 20, 5)
	e, err := New(specs, ModeBitap)
	if err != nil {
		t.Fatal(err)
	}
	if e.packed == nil {
		t.Fatal("23-symbol windows must pack")
	}
	if len(e.packed) != 4 { // 8 specs -> 4 pairs
		t.Fatalf("pairs = %d, want 4", len(e.packed))
	}
}

func TestPackedBitapFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	// Mixed mismatch budgets must not pack.
	mixed := bothStrandSpecs(rng, 1, 10, 1)
	more := bothStrandSpecs(rng, 1, 10, 3)
	mixed = append(mixed, more...)
	e, err := New(mixed, ModeBitap)
	if err != nil {
		t.Fatal(err)
	}
	if e.packed != nil {
		t.Error("mixed budgets must fall back to scalar")
	}
	// A single pattern does not pack.
	single := []PatternSpec{{Spacer: dna.MustParsePattern("ACGTACGT"), PAM: dna.MustParsePattern("NGG"), K: 1, Code: 0}}
	e, err = New(single, ModeBitap)
	if err != nil {
		t.Fatal(err)
	}
	if e.packed != nil {
		t.Error("single pattern must not pack")
	}
	// Windows longer than 31 symbols cannot pack.
	long := bothStrandSpecs(rng, 2, 30, 1) // 30+3 = 33 > 31
	e, err = New(long, ModeBitap)
	if err != nil {
		t.Fatal(err)
	}
	if e.packed != nil {
		t.Error("33-symbol windows must not pack")
	}
	// Fallback engines still produce correct results end to end.
	c := chromOf(rng, 6000, 0)
	got := collect(t, e, c)
	want := oracleGeneric(long, c.Seq)
	if len(got) != len(want) {
		t.Fatalf("fallback scan wrong: %d vs %d", len(got), len(want))
	}
}
