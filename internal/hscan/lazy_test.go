package hscan

import (
	"math/rand"
	"testing"
)

func TestLazyDFAModeMatchesBitap(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	specs := bothStrandSpecs(rng, 3, 8, 2)
	c := chromOf(rng, 10000, 0.01)
	lazy, err := New(specs, ModeLazyDFA)
	if err != nil {
		t.Fatal(err)
	}
	bit, err := New(specs, ModeBitap)
	if err != nil {
		t.Fatal(err)
	}
	a := collect(t, lazy, c)
	b := collect(t, bit, c)
	if len(a) == 0 {
		t.Fatal("weak fixture")
	}
	if len(a) != len(b) {
		t.Fatalf("lazy %d vs bitap %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report %d differs", i)
		}
	}
	if lazy.Name() != "hyperscan-lazydfa" {
		t.Errorf("name = %s", lazy.Name())
	}
}

func TestLazyDFAModeHighK(t *testing.T) {
	// k=5 on 20-mers: full ModeDFA would materialize ~1e5 states per
	// guide; the lazy mode must handle it comfortably.
	rng := rand.New(rand.NewSource(192))
	specs := bothStrandSpecs(rng, 2, 20, 5)
	c := chromOf(rng, 20000, 0)
	lazy, err := New(specs, ModeLazyDFA)
	if err != nil {
		t.Fatal(err)
	}
	bit, _ := New(specs, ModeBitap)
	a := collect(t, lazy, c)
	b := collect(t, bit, c)
	if len(a) != len(b) {
		t.Fatalf("lazy %d vs bitap %d at k=5", len(a), len(b))
	}
	// Parallelism must silently fall back to serial (shared cache).
	lazy.Parallelism = 4
	c2 := chromOf(rng, 20000, 0)
	a2 := collect(t, lazy, c2)
	bit2 := collect(t, bit, c2)
	if len(a2) != len(bit2) {
		t.Fatalf("parallel-requested lazy differs: %d vs %d", len(a2), len(bit2))
	}
}
