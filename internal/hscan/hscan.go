// Package hscan is the study's CPU automata engine — the stand-in for
// Intel HyperScan. Like HyperScan it is a hybrid: the default execution
// path is a bit-parallel simulation of the mismatch automaton (the
// Wu–Manber/bitap formulation, one 64-bit word per mismatch row, which is
// exactly the Hamming-lattice NFA evaluated breadth-first in registers),
// with alternative NFA-bitset and DFA-table paths selectable for
// comparison. It executes for real and is wall-clock measured; the paper
// measured single-thread HyperScan, and this engine is likewise
// single-threaded unless Parallelism > 1.
package hscan

import (
	"context"
	"fmt"
	"runtime"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dfa"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// Mode selects the execution path.
type Mode int

const (
	// ModeBitap is the register-resident bit-parallel mismatch automaton
	// run unanchored over the whole input, one pass per pattern.
	ModeBitap Mode = iota
	// ModeNFA runs the shared bitset NFA simulator over the merged
	// automata network.
	ModeNFA
	// ModeDFA determinizes each pattern and runs table-driven scans.
	ModeDFA
	// ModeLazyDFA determinizes the union automaton on the fly with a
	// bounded state cache (dfa.Lazy), the strategy real lazy-DFA engines
	// use when full determinization explodes (E1: ~1e5 states/guide at
	// k=5).
	ModeLazyDFA
	// ModePrefilter mirrors HyperScan's hybrid architecture: a shared
	// literal prefilter (the PAM, the one literal every pattern
	// contains) scans the input once, and each candidate anchor is
	// confirmed by evaluating the pattern's anchored mismatch automaton
	// bit-parallel (packed XOR/popcount, which computes exactly the
	// lattice automaton's accept condition at that alignment). This is
	// the fastest mode and the one the benchmark harness labels
	// "hyperscan": its cost is one shared pass plus work proportional
	// to candidates, not patterns x genome.
	ModePrefilter
)

func (m Mode) String() string {
	switch m {
	case ModeBitap:
		return "bitap"
	case ModeNFA:
		return "nfa"
	case ModeDFA:
		return "dfa"
	case ModeLazyDFA:
		return "lazydfa"
	case ModePrefilter:
		return "prefilter"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// PatternSpec aliases the engine-independent pattern description.
type PatternSpec = arch.PatternSpec

// compiled is the bitap form of one pattern.
type compiled struct {
	eq       [dna.AlphabetSize]uint64 // eq[c] bit i: position i accepts base c
	subsMask uint64                   // bit i: position i may be consumed as a mismatch
	accept   uint64                   // bit L-1
	k        int
	code     int32
	length   int
}

// Engine is a compiled multi-pattern scanner.
type Engine struct {
	mode Mode
	pats []compiled

	// Parallelism > 1 splits each chromosome into overlapping chunks
	// scanned by worker goroutines. The default of 1 mirrors the paper's
	// single-thread HyperScan measurements.
	Parallelism int

	// NFA path state.
	nfa *automata.NFA

	// DFA path state.
	dfas []*dfa.DFA
	lazy *dfa.Lazy

	// Prefilter path state: one group per (PAM, orientation). preNPats
	// caches each group's pattern count as int64 for the per-chunk
	// verification accounting (hoisted out of the scan kernel).
	preGroups []prefilterGroup
	preNPats  []int64
	preSite   int

	// Packed bitap state (two patterns per word), built when ModeBitap
	// patterns share geometry.
	packed []packedPair

	// chunkHook, when set, runs at the start of every pool chunk with
	// the chunk's [lo, hi) bounds. Tests use it to inject panics and to
	// trigger cancellation mid-scan; it is nil in production.
	chunkHook func(lo, hi int)

	// rec receives scan metrics; nil (the default) disables
	// instrumentation. Engines flush locally accumulated counts once
	// per chunk, so the hot loops never touch atomics per position.
	rec *metrics.Recorder
}

// SetMetrics implements arch.Instrumented.
func (e *Engine) SetMetrics(rec *metrics.Recorder) { e.rec = rec }

// New compiles the pattern set for the given mode.
func New(specs []PatternSpec, mode Mode) (*Engine, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("hscan: no patterns")
	}
	e := &Engine{mode: mode, Parallelism: 1}
	for i, spec := range specs {
		L := spec.SiteLen()
		if L == 0 || L > 64 {
			return nil, fmt.Errorf("hscan: pattern %d has length %d, need 1..64", i, L)
		}
		if spec.K < 0 || spec.K > len(spec.Spacer) {
			return nil, fmt.Errorf("hscan: pattern %d mismatch budget %d out of range", i, spec.K)
		}
		var c compiled
		c.k = spec.K
		c.code = spec.Code
		c.length = L
		c.accept = 1 << uint(L-1)
		for pos, mask := range spec.Window() {
			for b := dna.A; b <= dna.T; b++ {
				if mask.Has(b) {
					c.eq[b] |= 1 << uint(pos)
				}
			}
		}
		for pos := range spec.Spacer {
			c.subsMask |= 1 << uint(spec.SpacerOffset()+pos)
		}
		e.pats = append(e.pats, c)
	}
	switch mode {
	case ModeBitap:
		e.buildPackedBitap()
	case ModePrefilter:
		if err := e.buildPrefilter(specs); err != nil {
			return nil, err
		}
	case ModeNFA:
		var parts []*automata.NFA
		for _, spec := range specs {
			n, err := automata.CompileHamming(spec.Spacer, automata.CompileOptions{
				MaxMismatches: spec.K, PAM: spec.PAM, PAMLeft: spec.PAMLeft, Code: spec.Code,
			})
			if err != nil {
				return nil, err
			}
			parts = append(parts, n)
		}
		u, err := automata.UnionAll("hscan", parts)
		if err != nil {
			return nil, err
		}
		merged, _ := automata.MergeEquivalent(u)
		e.nfa = merged
	case ModeDFA:
		for _, spec := range specs {
			n, err := automata.CompileHamming(spec.Spacer, automata.CompileOptions{
				MaxMismatches: spec.K, PAM: spec.PAM, PAMLeft: spec.PAMLeft, Code: spec.Code,
			})
			if err != nil {
				return nil, err
			}
			d, err := dfa.FromNFA(n, dfa.BuildOptions{})
			if err != nil {
				return nil, err
			}
			e.dfas = append(e.dfas, dfa.Minimize(d))
		}
	case ModeLazyDFA:
		var parts []*automata.NFA
		for _, spec := range specs {
			n, err := automata.CompileHamming(spec.Spacer, automata.CompileOptions{
				MaxMismatches: spec.K, PAM: spec.PAM, PAMLeft: spec.PAMLeft, Code: spec.Code,
			})
			if err != nil {
				return nil, err
			}
			parts = append(parts, n)
		}
		u, err := automata.UnionAll("hscan", parts)
		if err != nil {
			return nil, err
		}
		merged, _ := automata.MergeEquivalent(u)
		lz, err := dfa.NewLazy(merged, 0)
		if err != nil {
			return nil, err
		}
		e.lazy = lz
	default:
		return nil, fmt.Errorf("hscan: unknown mode %v", mode)
	}
	return e, nil
}

// Name implements arch.Engine.
func (e *Engine) Name() string { return "hyperscan-" + e.mode.String() }

// MaxSiteLen returns the longest compiled pattern (chunk overlap size).
func (e *Engine) MaxSiteLen() int {
	max := 0
	for _, p := range e.pats {
		if p.length > max {
			max = p.length
		}
	}
	return max
}

// ScanChrom implements arch.Engine. It is the ctx-less compatibility
// bridge; cancellation-aware callers use ScanChromContext.
func (e *Engine) ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error {
	return e.ScanChromContext(context.Background(), c, emit)
}

// ScanChromContext implements arch.ContextEngine: the scan honors ctx
// at chunk granularity (arch.DefaultChunk positions) on every execution
// path except the lazy DFA, whose shared mutable state cache forces a
// serial whole-chromosome pass (ctx is still checked before it starts).
func (e *Engine) ScanChromContext(ctx context.Context, c *genome.Chromosome, emit func(automata.Report)) error {
	if e.mode == ModePrefilter {
		return e.scanChromPrefilter(ctx, c, emit)
	}
	// The lazy DFA shares one mutable state cache, so it always scans
	// serially.
	if e.mode == ModeLazyDFA {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("hscan: scan of %s canceled: %w", c.Name, err)
		}
		e.rec.Add(metrics.CounterCandidateWindows, int64(len(c.Seq)))
		return e.scanRange(c.Seq, 0, emit)
	}
	return e.scanParallel(ctx, c.Name, c.Seq, emit)
}

// workers caps the configured parallelism at the machine width.
func (e *Engine) workers() int {
	w := e.Parallelism
	if w > runtime.NumCPU() {
		w = runtime.NumCPU()
	}
	if w < 1 {
		w = 1
	}
	return w
}

// scanChromPrefilter runs the prefilter path, draining candidate
// anchor positions through the arch.ChunkScan pool (which supplies the
// cancellation checks and worker panic isolation).
func (e *Engine) scanChromPrefilter(ctx context.Context, c *genome.Chromosome, emit func(automata.Report)) error {
	total := len(c.Seq) - e.preSite + 1
	if total <= 0 {
		return nil
	}
	// The chunk callback hands its batch straight to scanPrefilter —
	// matches append into *out with no per-chunk emit closure between
	// the kernel and the batch.
	chunks, err := arch.ChunkScan(ctx, e.Name()+" "+c.Name, e.workers(), total, arch.DefaultChunk, e.rec,
		//crisprlint:hotpath
		func(lo, hi int, out *[]automata.Report) error {
			if h := e.chunkHook; h != nil {
				h(lo, hi)
			}
			hits, verifs := e.scanPrefilter(c, lo, hi, out)
			e.rec.Add(metrics.CounterCandidateWindows, int64(hi-lo))
			e.rec.Add(metrics.CounterPrefilterHits, hits)
			e.rec.Add(metrics.CounterVerifications, verifs)
			return nil
		})
	if err != nil {
		return err
	}
	for _, rs := range chunks {
		for _, r := range rs {
			emit(r)
		}
	}
	return nil
}

// scanRange scans seq, reporting End positions offset by base.
func (e *Engine) scanRange(seq dna.Seq, base int, emit func(automata.Report)) error {
	switch e.mode {
	case ModeBitap:
		if e.packed != nil {
			e.scanBitapPacked(seq, base, emit)
		} else {
			e.scanBitap(seq, base, emit)
		}
		return nil
	case ModeNFA:
		sim := automata.NewSim(e.nfa)
		sim.Scan(automata.SymbolsOfSeq(seq), func(r automata.Report) {
			r.End += base
			emit(r)
		})
		return nil
	case ModeDFA:
		in := automata.SymbolsOfSeq(seq)
		for _, d := range e.dfas {
			d.Scan(in, func(r automata.Report) {
				r.End += base
				emit(r)
			})
		}
		return nil
	case ModeLazyDFA:
		e.lazy.Scan(automata.SymbolsOfSeq(seq), func(r automata.Report) {
			r.End += base
			emit(r)
		})
		return nil
	}
	return fmt.Errorf("hscan: unknown mode %v", e.mode)
}

// scanBitap runs the Wu–Manber rows. For every pattern, R[j] bit i means
// "an alignment of the first i+1 pattern positions ends at the current
// symbol with at most j mismatches". PAM positions are excluded from the
// mismatch branch by subsMask, and ambiguous bases clear every row.
//
//crisprlint:hotpath
func (e *Engine) scanBitap(seq dna.Seq, base int, emit func(automata.Report)) {
	var rows [8]uint64 // k <= 7 fits every realistic budget
	for pi := range e.pats {
		p := &e.pats[pi]
		k := p.k
		_ = rows[k] // one check here lets prove elide every rows[j], j <= k
		for j := 0; j <= k; j++ {
			rows[j] = 0
		}
		eq := &p.eq
		subs := p.subsMask
		accept := p.accept
		for t, b := range seq {
			if b > dna.T {
				for j := 0; j <= k; j++ {
					rows[j] = 0
				}
				continue
			}
			m := eq[b]
			prev := rows[0]
			rows[0] = (prev<<1 | 1) & m
			hit := rows[0]
			for j := 1; j <= k; j++ {
				cur := rows[j]
				rows[j] = (cur<<1|1)&m | (prev<<1|1)&subs
				prev = cur
				hit |= rows[j]
			}
			if hit&accept != 0 {
				emit(automata.Report{Code: p.code, End: base + t})
			}
		}
	}
}

// scanParallel drains the sequence through the arch.ChunkScan pool in
// fixed-size chunks extended left by site-length overlap, deduping the
// overlap region by ownership: a chunk only reports matches whose End
// falls inside its own span. The pool supplies cancellation checks
// between chunks and converts worker panics into errors naming the
// chunk.
func (e *Engine) scanParallel(ctx context.Context, chrom string, seq dna.Seq, emit func(automata.Report)) error {
	overlap := e.MaxSiteLen() - 1
	chunk := arch.DefaultChunk
	if chunk <= overlap {
		chunk = overlap + 1
	}
	chunks, err := arch.ChunkScan(ctx, e.Name()+" "+chrom, e.workers(), len(seq), chunk, e.rec,
		//crisprlint:hotpath
		func(lo, hi int, out *[]automata.Report) error {
			if h := e.chunkHook; h != nil {
				h(lo, hi)
			}
			elo := lo - overlap
			if elo < 0 {
				elo = 0
			}
			// scanRange's emit contract is shared by four execution modes,
			// so the ownership filter stays a closure here: one allocation
			// per 64K-position chunk, not per position.
			//crisprlint:allow hotpath one filter closure per chunk; scanRange's emit signature is shared across modes
			err := e.scanRange(seq[elo:hi], elo, func(r automata.Report) {
				if r.End >= lo && r.End < hi {
					//crisprlint:allow hotpath match reports are rare relative to positions; the batch grows amortized
					*out = append(*out, r)
				}
			})
			e.rec.Add(metrics.CounterCandidateWindows, int64(hi-lo))
			return err
		})
	if err != nil {
		return err
	}
	for _, rs := range chunks {
		for _, r := range rs {
			emit(r)
		}
	}
	return nil
}

// NFAStats exposes the merged network's statistics (ModeNFA only).
func (e *Engine) NFAStats() (automata.Stats, bool) {
	if e.nfa == nil {
		return automata.Stats{}, false
	}
	return e.nfa.ComputeStats(), true
}

// DFAStates returns total DFA states across patterns (ModeDFA only).
func (e *Engine) DFAStates() (int, bool) {
	if e.dfas == nil {
		return 0, false
	}
	total := 0
	for _, d := range e.dfas {
		total += d.NumStates()
	}
	return total, true
}
