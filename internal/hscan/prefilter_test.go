package hscan

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
)

// bothStrandSpecs builds plus+minus specs for random guides, the shape
// the orchestrator feeds engines.
func bothStrandSpecs(rng *rand.Rand, n, m, k int) []PatternSpec {
	pam := dna.MustParsePattern("NGG")
	var specs []PatternSpec
	for i := 0; i < n; i++ {
		spacer := make(dna.Seq, m)
		for j := range spacer {
			spacer[j] = dna.Base(rng.Intn(4))
		}
		plus := arch.PatternSpec{Spacer: dna.PatternFromSeq(spacer), PAM: pam, K: k, Code: int32(2 * i)}
		specs = append(specs, plus, plus.MinusSpec(int32(2*i+1)))
	}
	return specs
}

func TestPrefilterMatchesBitapBothStrands(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 8; trial++ {
		specs := bothStrandSpecs(rng, 3, 10+rng.Intn(8), rng.Intn(4))
		c := chromOf(rng, 12000, 0.01)
		pre, err := New(specs, ModePrefilter)
		if err != nil {
			t.Fatal(err)
		}
		bit, err := New(specs, ModeBitap)
		if err != nil {
			t.Fatal(err)
		}
		a := collect(t, pre, c)
		b := collect(t, bit, c)
		if len(a) != len(b) {
			t.Fatalf("trial %d: prefilter %d vs bitap %d", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d report %d: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestPrefilterParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	specs := bothStrandSpecs(rng, 4, 8, 2)
	c := chromOf(rng, 40000, 0.005)
	serial, _ := New(specs, ModePrefilter)
	par, _ := New(specs, ModePrefilter)
	par.Parallelism = 6
	a := collect(t, serial, c)
	b := collect(t, par, c)
	if len(a) == 0 {
		t.Fatal("weak fixture")
	}
	if len(a) != len(b) {
		t.Fatalf("parallel prefilter differs: %d vs %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report %d differs", i)
		}
	}
}

func TestPrefilterErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	long := randSpecs(rng, 1, 33, 0)
	if _, err := New(long, ModePrefilter); err == nil {
		t.Error("spacer > 32 must error in prefilter mode")
	}
	ragged := append(randSpecs(rng, 1, 10, 1), randSpecs(rng, 1, 12, 1)...)
	if _, err := New(ragged, ModePrefilter); err == nil {
		t.Error("ragged geometry must error in prefilter mode")
	}
	partial := []PatternSpec{{
		Spacer: dna.MustParsePattern("ACGR"),
		PAM:    dna.MustParsePattern("NGG"), K: 0, Code: 0,
	}}
	if _, err := New(partial, ModePrefilter); err == nil {
		t.Error("partially degenerate spacer must error in prefilter mode")
	}
}

func TestPrefilterMultiPAM(t *testing.T) {
	// NGG and NAG patterns in one engine (the multi-PAM feature real
	// off-target tools offer): prefilter must equal bitap.
	rng := rand.New(rand.NewSource(126))
	var specs []PatternSpec
	for i := 0; i < 3; i++ {
		spacer := make(dna.Seq, 8)
		for j := range spacer {
			spacer[j] = dna.Base(rng.Intn(4))
		}
		pam := dna.MustParsePattern("NGG")
		if i%2 == 1 {
			pam = dna.MustParsePattern("NAG")
		}
		plus := arch.PatternSpec{Spacer: dna.PatternFromSeq(spacer), PAM: pam, K: 2, Code: int32(2 * i)}
		specs = append(specs, plus, plus.MinusSpec(int32(2*i+1)))
	}
	c := chromOf(rng, 15000, 0.01)
	pre, err := New(specs, ModePrefilter)
	if err != nil {
		t.Fatal(err)
	}
	bit, err := New(specs, ModeBitap)
	if err != nil {
		t.Fatal(err)
	}
	a := collect(t, pre, c)
	b := collect(t, bit, c)
	if len(a) == 0 {
		t.Fatal("weak fixture")
	}
	if len(a) != len(b) {
		t.Fatalf("multi-PAM prefilter %d vs bitap %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report %d differs", i)
		}
	}
}

func TestPrefilterTinyChromosome(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	specs := randSpecs(rng, 1, 10, 1)
	c := chromOf(rng, 5, 0) // shorter than the window
	e, _ := New(specs, ModePrefilter)
	got := collect(t, e, c)
	if len(got) != 0 {
		t.Errorf("tiny chromosome: %v", got)
	}
}

// TestPrefilterPropertyAgainstOracle is the property-based check: for
// random guides, genomes and budgets, the prefilter path equals the
// positional oracle.
func TestPrefilterPropertyAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(125))
	f := func(seed int64, kRaw, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		k := int(kRaw) % 4
		n := 1 + int(nRaw)%4
		specs := bothStrandSpecs(r, n, 8, k)
		c := chromOf(r, 3000, 0.02)
		e, err := New(specs, ModePrefilter)
		if err != nil {
			return false
		}
		var got []automata.Report
		if err := e.ScanChrom(c, func(rep automata.Report) { got = append(got, rep) }); err != nil {
			return false
		}
		want := oracleGeneric(specs, c.Seq)
		if len(got) != len(want) {
			return false
		}
		seen := map[automata.Report]bool{}
		for _, r := range got {
			seen[r] = true
		}
		for _, r := range want {
			if !seen[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// oracleGeneric handles PAMLeft specs too.
func oracleGeneric(specs []PatternSpec, seq dna.Seq) []automata.Report {
	var out []automata.Report
	for _, spec := range specs {
		site := spec.SiteLen()
		window := spec.Window()
		for p := 0; p+site <= len(seq); p++ {
			w := seq[p : p+site]
			if w.HasAmbiguous() {
				continue
			}
			mism := 0
			bad := false
			for i, m := range window {
				if !m.Has(w[i]) {
					spacerStart := spec.SpacerOffset()
					if i >= spacerStart && i < spacerStart+len(spec.Spacer) {
						mism++
					} else {
						bad = true
						break
					}
				}
			}
			if !bad && mism <= spec.K {
				out = append(out, automata.Report{Code: spec.Code, End: p + site - 1})
			}
		}
	}
	return out
}
