package hscan

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
)

// parallelModes are the modes that fan chunks out across workers and
// therefore exercise arch.ChunkScan's cancellation and panic paths.
var parallelModes = []Mode{ModeBitap, ModeNFA, ModeDFA, ModePrefilter}

func sortReports(rs []automata.Report) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].End != rs[j].End {
			return rs[i].End < rs[j].End
		}
		return rs[i].Code < rs[j].Code
	})
}

func TestScanChromContextCancelMidFlight(t *testing.T) {
	for _, mode := range parallelModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(11))
			specs := randSpecs(rng, 3, 20, 2)
			// Enough sequence for many more chunks than workers, so at
			// least one chunk claim necessarily happens after cancel.
			c := chromOf(rng, 8*arch.DefaultChunk, 0.001)
			e, err := New(specs, mode)
			if err != nil {
				t.Fatal(err)
			}
			e.Parallelism = 2

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var once sync.Once
			var after atomic.Int64
			e.chunkHook = func(lo, hi int) {
				once.Do(cancel)
				if ctx.Err() != nil {
					after.Add(1)
				}
			}

			err = e.ScanChromContext(ctx, c, func(automata.Report) {})
			if err == nil {
				t.Fatal("want cancellation error, got nil")
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("error does not wrap context.Canceled: %v", err)
			}
			if !strings.Contains(err.Error(), "canceled at chunk") {
				t.Fatalf("error does not name the chunk boundary: %v", err)
			}
			// Prompt termination: workers may finish the chunks already
			// claimed when cancel fired, but must not start many more.
			if got := after.Load(); got > int64(e.Parallelism) {
				t.Fatalf("%d chunks started after cancel; want <= %d (chunk-granularity latency)", got, e.Parallelism)
			}
		})
	}
}

func TestScanChromContextWorkerPanicIsolated(t *testing.T) {
	for _, mode := range parallelModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(12))
			specs := randSpecs(rng, 3, 20, 2)
			c := chromOf(rng, 4*arch.DefaultChunk, 0.001)
			e, err := New(specs, mode)
			if err != nil {
				t.Fatal(err)
			}
			e.Parallelism = 3
			e.chunkHook = func(lo, hi int) {
				if lo > 0 {
					panic("injected worker fault")
				}
			}

			err = e.ScanChromContext(context.Background(), c, func(automata.Report) {})
			if err == nil {
				t.Fatal("want panic-derived error, got nil")
			}
			if !strings.Contains(err.Error(), "worker panic on chunk") {
				t.Fatalf("error does not report the panic: %v", err)
			}
			if !strings.Contains(err.Error(), "injected worker fault") {
				t.Fatalf("error does not carry the panic value: %v", err)
			}
		})
	}
}

func TestScanChromContextPreCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	specs := randSpecs(rng, 2, 20, 1)
	c := chromOf(rng, 4096, 0)
	for _, mode := range []Mode{ModeBitap, ModeLazyDFA, ModePrefilter} {
		e, err := New(specs, mode)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		emitted := 0
		err = e.ScanChromContext(ctx, c, func(automata.Report) { emitted++ })
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %v: want wrapped context.Canceled, got %v", mode, err)
		}
		if emitted != 0 {
			t.Fatalf("mode %v: %d reports emitted after pre-canceled ctx", mode, emitted)
		}
	}
}

// TestScanChromContextCleanRunMatchesBridge pins the invariant that the
// ctx-aware path with a live context emits exactly what the ctx-less
// bridge does.
func TestScanChromContextCleanRunMatchesBridge(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	specs := randSpecs(rng, 4, 20, 2)
	c := chromOf(rng, 3*arch.DefaultChunk+777, 0.002)
	for _, mode := range parallelModes {
		e, err := New(specs, mode)
		if err != nil {
			t.Fatal(err)
		}
		e.Parallelism = 4
		want := collect(t, e, c)
		var got []automata.Report
		if err := e.ScanChromContext(context.Background(), c, func(r automata.Report) { got = append(got, r) }); err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		sortReports(got)
		if len(got) != len(want) {
			t.Fatalf("mode %v: ctx path emitted %d reports, bridge %d", mode, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("mode %v: report %d differs: %+v vs %+v", mode, i, got[i], want[i])
			}
		}
	}
}
