package hscan

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

func randSpecs(rng *rand.Rand, n, m, k int) []PatternSpec {
	pam := dna.MustParsePattern("NGG")
	specs := make([]PatternSpec, n)
	for i := range specs {
		spacer := make(dna.Seq, m)
		for j := range spacer {
			spacer[j] = dna.Base(rng.Intn(4))
		}
		specs[i] = PatternSpec{Spacer: dna.PatternFromSeq(spacer), PAM: pam, K: k, Code: int32(i)}
	}
	return specs
}

func chromOf(rng *rand.Rand, n int, ambRate float64) *genome.Chromosome {
	seq := make(dna.Seq, n)
	for i := range seq {
		if rng.Float64() < ambRate {
			seq[i] = dna.BadBase
		} else {
			seq[i] = dna.Base(rng.Intn(4))
		}
	}
	c := genome.Chromosome{Name: "t", Seq: seq, Packed: dna.Pack(seq)}
	return &c
}

func collect(t *testing.T, e *Engine, c *genome.Chromosome) []automata.Report {
	t.Helper()
	var out []automata.Report
	if err := e.ScanChrom(c, func(r automata.Report) { out = append(out, r) }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Code < out[j].Code
	})
	// Dedup: parallel chunks and multi-engine paths must already be
	// unique; keep the check strict by NOT deduping here.
	return out
}

func oracle(specs []PatternSpec, seq dna.Seq) []automata.Report {
	var out []automata.Report
	for _, spec := range specs {
		site := spec.SiteLen()
		for p := 0; p+site <= len(seq); p++ {
			if seq[p : p+site].HasAmbiguous() {
				continue
			}
			if spec.Spacer.Mismatches(seq[p:p+len(spec.Spacer)]) > spec.K {
				continue
			}
			if !spec.PAM.Matches(seq[p+len(spec.Spacer) : p+site]) {
				continue
			}
			out = append(out, automata.Report{Code: spec.Code, End: p + site - 1})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Code < out[j].Code
	})
	return out
}

func equal(a, b []automata.Report) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBitapMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		specs := randSpecs(rng, 3, 6+rng.Intn(6), rng.Intn(4))
		c := chromOf(rng, 4000, 0.01)
		e, err := New(specs, ModeBitap)
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, e, c)
		want := oracle(specs, c.Seq)
		if !equal(got, want) {
			t.Fatalf("trial %d: bitap %d reports, oracle %d", trial, len(got), len(want))
		}
	}
}

func TestModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	specs := randSpecs(rng, 4, 8, 2)
	c := chromOf(rng, 6000, 0.02)
	var results [][]automata.Report
	for _, mode := range []Mode{ModeBitap, ModeNFA, ModeDFA} {
		e, err := New(specs, mode)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, collect(t, e, c))
	}
	if len(results[0]) == 0 {
		t.Fatal("fixture produced no matches; weak test")
	}
	if !equal(results[0], results[1]) || !equal(results[0], results[2]) {
		t.Fatalf("modes disagree: bitap=%d nfa=%d dfa=%d", len(results[0]), len(results[1]), len(results[2]))
	}
}

func TestFullLengthGuides(t *testing.T) {
	// Realistic shape: 20-mers + NGG, k up to 5.
	rng := rand.New(rand.NewSource(63))
	for _, k := range []int{0, 3, 5} {
		specs := randSpecs(rng, 2, 20, k)
		c := chromOf(rng, 50000, 0)
		e, err := New(specs, ModeBitap)
		if err != nil {
			t.Fatal(err)
		}
		got := collect(t, e, c)
		want := oracle(specs, c.Seq)
		if !equal(got, want) {
			t.Fatalf("k=%d: %d vs oracle %d", k, len(got), len(want))
		}
	}
}

func TestParallelEqualsSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	specs := randSpecs(rng, 5, 8, 2)
	c := chromOf(rng, 30000, 0.01)
	serial, err := New(specs, ModeBitap)
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(specs, ModeBitap)
	if err != nil {
		t.Fatal(err)
	}
	par.Parallelism = 4
	a := collect(t, serial, c)
	b := collect(t, par, c)
	if len(a) == 0 {
		t.Fatal("no matches; weak test")
	}
	if !equal(a, b) {
		t.Fatalf("parallel scan differs: %d vs %d", len(b), len(a))
	}
}

func TestParallelTinyInputFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	specs := randSpecs(rng, 1, 6, 1)
	c := chromOf(rng, 15, 0)
	e, _ := New(specs, ModeBitap)
	e.Parallelism = 8
	got := collect(t, e, c)
	want := oracle(specs, c.Seq)
	if !equal(got, want) {
		t.Fatalf("tiny input: %v vs %v", got, want)
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil, ModeBitap); err == nil {
		t.Error("empty pattern set must error")
	}
	long := PatternSpec{Spacer: make(dna.Pattern, 70), PAM: nil, K: 0}
	for i := range long.Spacer {
		long.Spacer[i] = dna.MaskA
	}
	if _, err := New([]PatternSpec{long}, ModeBitap); err == nil {
		t.Error("pattern > 64 must error")
	}
	bad := PatternSpec{Spacer: dna.MustParsePattern("ACGT"), K: 9}
	if _, err := New([]PatternSpec{bad}, ModeBitap); err == nil {
		t.Error("k out of range must error")
	}
	if _, err := New(randSpecs(rand.New(rand.NewSource(1)), 1, 6, 1), Mode(42)); err == nil {
		t.Error("unknown mode must error")
	}
}

func TestStatsAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	specs := randSpecs(rng, 2, 6, 1)
	b, _ := New(specs, ModeBitap)
	if _, ok := b.NFAStats(); ok {
		t.Error("bitap engine must not report NFA stats")
	}
	if _, ok := b.DFAStates(); ok {
		t.Error("bitap engine must not report DFA states")
	}
	nf, _ := New(specs, ModeNFA)
	if st, ok := nf.NFAStats(); !ok || st.States == 0 {
		t.Error("NFA stats missing")
	}
	df, _ := New(specs, ModeDFA)
	if n, ok := df.DFAStates(); !ok || n == 0 {
		t.Error("DFA states missing")
	}
	if b.Name() != "hyperscan-bitap" || nf.Name() != "hyperscan-nfa" {
		t.Errorf("names: %s / %s", b.Name(), nf.Name())
	}
}
