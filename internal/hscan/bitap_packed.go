package hscan

import (
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
)

// Packed bitap: two patterns evaluated per 64-bit word, lane 0 in bits
// 0..30 and lane 1 in bits 32..62. Guide windows are 23 symbols, so a
// word comfortably holds two lanes, halving ModeBitap's dominant cost.
// Lane isolation needs no masking in the hot loop: a pattern of length
// L <= 31 never sets bit 31 (lane 0's guard) in its eq/subs masks, so a
// shifted-in guard bit dies at the very next AND.

const (
	packedLaneShift = 32
	packedMaxLen    = 31
)

// packedPair is the fused form of two equal-geometry patterns (the
// second may be absent for an odd trailing pattern; its lane masks are
// zero and can never match).
type packedPair struct {
	eq     [dna.AlphabetSize]uint64
	subs   uint64
	accept uint64 // bit L-1 (lane 0) and bit 32+L-1 (lane 1, if present)
	seeds  uint64 // 1 | 1<<32 (or just 1 for a half pair)
	k      int
	code   [2]int32
	accL   [2]uint64 // per-lane accept masks for attribution
}

// buildPackedBitap pairs up the compiled patterns if they share length
// and mismatch budget and fit a lane. Returns false when packing does
// not apply (the scalar path is used instead).
func (e *Engine) buildPackedBitap() bool {
	if len(e.pats) < 2 {
		return false
	}
	L := e.pats[0].length
	k := e.pats[0].k
	if L > packedMaxLen {
		return false
	}
	for i := range e.pats {
		if e.pats[i].length != L || e.pats[i].k != k {
			return false
		}
	}
	for i := 0; i < len(e.pats); i += 2 {
		p0 := &e.pats[i]
		pair := packedPair{k: k, seeds: 1, code: [2]int32{p0.code, -1}}
		for b := 0; b < dna.AlphabetSize; b++ {
			pair.eq[b] = p0.eq[b]
		}
		pair.subs = p0.subsMask
		pair.accL[0] = p0.accept
		pair.accept = p0.accept
		if i+1 < len(e.pats) {
			p1 := &e.pats[i+1]
			for b := 0; b < dna.AlphabetSize; b++ {
				pair.eq[b] |= p1.eq[b] << packedLaneShift
			}
			pair.subs |= p1.subsMask << packedLaneShift
			pair.accL[1] = p1.accept << packedLaneShift
			pair.accept |= pair.accL[1]
			pair.seeds |= 1 << packedLaneShift
			pair.code[1] = p1.code
		}
		e.packed = append(e.packed, pair)
	}
	return true
}

// scanBitapPacked is scanBitap with two lanes per word.
//
//crisprlint:hotpath
func (e *Engine) scanBitapPacked(seq dna.Seq, base int, emit func(automata.Report)) {
	var rows [8]uint64
	for pi := range e.packed {
		p := &e.packed[pi]
		k := p.k
		_ = rows[k] // one check here lets prove elide every rows[j], j <= k
		for j := 0; j <= k; j++ {
			rows[j] = 0
		}
		eq := &p.eq
		subs := p.subs
		seeds := p.seeds
		accept := p.accept
		for t, b := range seq {
			if b > dna.T {
				for j := 0; j <= k; j++ {
					rows[j] = 0
				}
				continue
			}
			m := eq[b]
			prev := rows[0]
			rows[0] = (prev<<1 | seeds) & m
			hit := rows[0]
			for j := 1; j <= k; j++ {
				cur := rows[j]
				rows[j] = (cur<<1|seeds)&m | (prev<<1|seeds)&subs
				prev = cur
				hit |= rows[j]
			}
			if hit&accept != 0 {
				if hit&p.accL[0] != 0 {
					emit(automata.Report{Code: p.code[0], End: base + t})
				}
				if hit&p.accL[1] != 0 {
					emit(automata.Report{Code: p.code[1], End: base + t})
				}
			}
		}
	}
}
