// Package infant models iNFAnt2, the GPU NFA engine the paper evaluated
// (a descendant of iNFAnt, Cascarano et al.). iNFAnt-style engines store
// the NFA as symbol-indexed transition lists in GPU memory; for each
// input symbol, a thread block loads the current active-state frontier,
// gathers the transition list entries whose source is active, and
// scatters the destinations into the next frontier — one global
// synchronization per symbol. Throughput is therefore proportional to
// the number of concurrently active transitions, which is exactly why
// the paper found the mismatch lattice a poor fit for GPUs: unlike
// regex NFAs with small frontiers, the lattice keeps O(k^2) states per
// guide active at all times, and the frontier work dwarfs the symbol
// rate. Multiple thread blocks scan independent input slices.
//
// Functional behavior comes from the shared NFA simulator; timing comes
// from the cost model below, whose per-transition and per-symbol
// constants are set so a small-frontier workload approaches published
// iNFAnt2 throughput (~1 Gbps-class on a mid-2010s discrete GPU) and
// degrade linearly with frontier size. The average frontier is not
// assumed: Compile measures it by simulating a seeded sample input.
package infant

import (
	"fmt"
	"math/rand"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// Device holds the GPU model constants.
type Device struct {
	// Blocks is the number of independent input slices scanned
	// concurrently (thread blocks with their own frontier).
	Blocks int
	// SymbolOverheadSec is the fixed per-symbol cost per block (frontier
	// swap + the implicit global synchronization).
	SymbolOverheadSec float64
	// TransitionsPerSec is the aggregate gather/scatter rate across the
	// device (global-memory bound).
	TransitionsPerSec float64
	// TransferBytesPerSec is PCIe input streaming.
	TransferBytesPerSec float64
	// CompileSec covers transition-table construction and upload.
	CompileSec float64
	// ReportCostSec is the host-side cost per match event read back.
	ReportCostSec float64
	// SampleLen is the seeded-sample length used to measure the average
	// frontier at compile time.
	SampleLen int
}

// DefaultGPU approximates the paper's discrete GPU.
var DefaultGPU = Device{
	Blocks:              96,
	SymbolOverheadSec:   120e-9,
	TransitionsPerSec:   2.5e10,
	TransferBytesPerSec: 12e9,
	CompileSec:          0.5,
	ReportCostSec:       2e-7,
	SampleLen:           1 << 16,
}

// Options controls compilation.
type Options struct {
	Device Device
	// MergeStates merges equivalent states before building transition
	// lists (shrinks the frontier).
	MergeStates bool
	// SampleSeed seeds the synthetic sample used to estimate frontier
	// size.
	SampleSeed int64
}

// Model is a compiled workload on the GPU NFA engine.
type Model struct {
	opt Options
	nfa *automata.NFA
	// avgActive is the measured mean frontier size (active states per
	// symbol) on the calibration sample.
	avgActive float64
	// avgFanout is the mean out-degree, converting frontier size to
	// transition-list work.
	avgFanout float64

	// rec receives scan metrics; the model records analytic device-time
	// steps only (no wall clock — see the clockguard analyzer).
	rec *metrics.Recorder
}

// SetMetrics implements arch.Instrumented. The one-time transition
// table build/upload cost is recorded as the modeled compile step.
func (m *Model) SetMetrics(rec *metrics.Recorder) {
	m.rec = rec
	rec.SetModeledSeconds("compile", m.EstimateBreakdown(0, 0).Compile)
}

// Compile builds the union automaton and measures its frontier.
func Compile(specs []arch.PatternSpec, opt Options) (*Model, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("infant: no patterns")
	}
	if opt.Device.Blocks == 0 {
		opt.Device = DefaultGPU
	}
	var parts []*automata.NFA
	for _, spec := range specs {
		n, err := automata.CompileHamming(spec.Spacer, automata.CompileOptions{
			MaxMismatches: spec.K, PAM: spec.PAM, PAMLeft: spec.PAMLeft, Code: spec.Code,
		})
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	u, err := automata.UnionAll("infant", parts)
	if err != nil {
		return nil, err
	}
	if opt.MergeStates {
		u, _ = automata.MergeEquivalent(u)
	}
	m := &Model{opt: opt, nfa: u}
	m.measureFrontier()
	return m, nil
}

// measureFrontier simulates a seeded uniform-random sample and records
// the mean active-state count and fanout.
func (m *Model) measureFrontier() {
	dev := m.opt.Device
	rng := rand.New(rand.NewSource(m.opt.SampleSeed + 1))
	sample := make([]uint8, dev.SampleLen)
	for i := range sample {
		sample[i] = uint8(rng.Intn(dna.AlphabetSize))
	}
	trace := automata.NewSim(m.nfa).ActivityTrace(sample)
	total := 0
	for _, c := range trace {
		total += c
	}
	m.avgActive = float64(total) / float64(len(trace))
	stats := m.nfa.ComputeStats()
	if stats.States > 0 {
		m.avgFanout = float64(stats.Edges) / float64(stats.States)
	}
	if m.avgFanout < 1 {
		m.avgFanout = 1
	}
}

// Name implements arch.Engine.
func (m *Model) Name() string { return "infant2" }

// AvgFrontier reports the measured mean active-state count (E-series
// tables use it to explain the GPU's poor fit).
func (m *Model) AvgFrontier() float64 { return m.avgActive }

// NFA exposes the compiled automaton.
func (m *Model) NFA() *automata.NFA { return m.nfa }

// Resources implements arch.Modeled; the transition table is memory,
// not fabric, so spatial usage is empty.
func (m *Model) Resources() arch.ResourceUsage { return arch.ResourceUsage{} }

// ScanChrom implements arch.Engine (functional path).
func (m *Model) ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error {
	reports := 0
	automata.NewSim(m.nfa).Scan(automata.SymbolsOfSeq(c.Seq), func(r automata.Report) {
		reports++
		emit(r)
	})
	if m.rec != nil {
		m.rec.Add(metrics.CounterCandidateWindows, int64(len(c.Seq)))
		b := m.EstimateBreakdown(len(c.Seq), reports)
		m.rec.AddModeledSeconds("transfer", b.Transfer)
		m.rec.AddModeledSeconds("kernel", b.Kernel)
		m.rec.AddModeledSeconds("report", b.Report)
	}
	return nil
}

// EstimateBreakdown implements arch.Modeled: per-block fixed symbol
// cost (the serialization term) plus aggregate transition work.
func (m *Model) EstimateBreakdown(inputLen, reportCount int) arch.Breakdown {
	dev := m.opt.Device
	symbolsPerBlock := float64(inputLen) / float64(dev.Blocks)
	serial := symbolsPerBlock * dev.SymbolOverheadSec
	transitions := float64(inputLen) * m.avgActive * m.avgFanout
	gather := transitions / dev.TransitionsPerSec
	kernel := serial
	if gather > kernel {
		kernel = gather // the two resources overlap; the slower binds
	}
	return arch.Breakdown{
		Compile:  dev.CompileSec,
		Transfer: float64(inputLen) / dev.TransferBytesPerSec,
		Kernel:   kernel,
		Report:   float64(reportCount) * dev.ReportCostSec,
	}
}
