package infant

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/hscan"
)

func randSpecs(rng *rand.Rand, n, m, k int) []arch.PatternSpec {
	pam := dna.MustParsePattern("NGG")
	specs := make([]arch.PatternSpec, n)
	for i := range specs {
		spacer := make(dna.Seq, m)
		for j := range spacer {
			spacer[j] = dna.Base(rng.Intn(4))
		}
		specs[i] = arch.PatternSpec{Spacer: dna.PatternFromSeq(spacer), PAM: pam, K: k, Code: int32(i)}
	}
	return specs
}

func TestFunctionalAgreesWithHscan(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	specs := randSpecs(rng, 3, 8, 2)
	seq := make(dna.Seq, 6000)
	for i := range seq {
		seq[i] = dna.Base(rng.Intn(4))
	}
	c := &genome.Chromosome{Name: "t", Seq: seq, Packed: dna.Pack(seq)}
	m, err := Compile(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs, _ := hscan.New(specs, hscan.ModeBitap)
	var a, b []automata.Report
	if err := m.ScanChrom(c, func(r automata.Report) { a = append(a, r) }); err != nil {
		t.Fatal(err)
	}
	if err := hs.ScanChrom(c, func(r automata.Report) { b = append(b, r) }); err != nil {
		t.Fatal(err)
	}
	for _, s := range [][]automata.Report{a, b} {
		sort.Slice(s, func(i, j int) bool {
			if s[i].End != s[j].End {
				return s[i].End < s[j].End
			}
			return s[i].Code < s[j].Code
		})
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("infant %d vs hscan %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("report %d differs", i)
		}
	}
}

func TestFrontierGrowsWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	prev := 0.0
	for _, k := range []int{0, 2, 4} {
		m, err := Compile(randSpecs(rng, 10, 20, k), Options{})
		if err != nil {
			t.Fatal(err)
		}
		f := m.AvgFrontier()
		if f <= prev {
			t.Errorf("k=%d: frontier %.1f not larger than previous %.1f", k, f, prev)
		}
		prev = f
	}
}

func TestKernelScalesWithFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	small, err := Compile(randSpecs(rng, 10, 20, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Compile(randSpecs(rng, 200, 20, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	bs := small.EstimateBreakdown(10_000_000, 0)
	bb := big.EstimateBreakdown(10_000_000, 0)
	if bb.Kernel <= bs.Kernel {
		t.Errorf("large frontier should be slower: %g vs %g", bb.Kernel, bs.Kernel)
	}
	// Small frontiers hit the serialization floor: kernel never drops
	// below the per-symbol overhead term.
	floor := float64(10_000_000) / float64(DefaultGPU.Blocks) * DefaultGPU.SymbolOverheadSec
	if bs.Kernel < floor {
		t.Errorf("kernel %g below serialization floor %g", bs.Kernel, floor)
	}
}

func TestMergeShrinksFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(114))
	specs := randSpecs(rng, 30, 20, 3)
	plain, err := Compile(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Compile(specs, Options{MergeStates: true})
	if err != nil {
		t.Fatal(err)
	}
	if merged.AvgFrontier() >= plain.AvgFrontier() {
		t.Errorf("merging should shrink the frontier: %.1f -> %.1f", plain.AvgFrontier(), merged.AvgFrontier())
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, Options{}); err == nil {
		t.Error("empty specs must error")
	}
}

func TestModeledInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(115))
	m, err := Compile(randSpecs(rng, 2, 8, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var _ arch.Modeled = m
	if m.Name() != "infant2" {
		t.Errorf("name = %s", m.Name())
	}
	if m.Resources() != (arch.ResourceUsage{}) {
		t.Error("GPU resources must be empty")
	}
	if m.NFA() == nil {
		t.Error("NFA accessor nil")
	}
}
