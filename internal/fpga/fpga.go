// Package fpga models the paper's FPGA automata overlay, in the style
// of REAPR (Xie et al.): each homogeneous-NFA state becomes one
// LUT/flip-flop pair (the LUT decodes the character class and gates the
// activation OR-tree, the FF holds the active bit), all states clock in
// lockstep consuming one symbol per cycle, and spare fabric is spent
// replicating the whole design so multiple genome slices stream in
// parallel. The device constants default to a Kintex UltraScale KU115,
// the part REAPR-class overlays were published on.
//
// As with the AP, the hardware is substituted (DESIGN.md): functional
// behavior comes from the shared NFA simulator, timing from the clocked
// analytic model — which is faithful because a spatial automata pipeline
// has data-independent throughput.
package fpga

import (
	"fmt"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// Device holds the FPGA part and board constants.
type Device struct {
	// LUTs is the part's LUT count (KU115: 663,360).
	LUTs int
	// UsableFraction discounts routing/overlay infrastructure overhead.
	UsableFraction float64
	// LUTsPerState is the fabric cost of one NFA state (class decode +
	// activation OR + FF; fan-in beyond 6 costs extra LUTs, folded into
	// the average here).
	LUTsPerState float64
	// ClockHz is the achieved overlay clock (REAPR-class designs close
	// timing around 250 MHz).
	ClockHz float64
	// MaxStreams caps replication (bounded by memory-interface
	// bandwidth feeding independent input streams).
	MaxStreams int
	// SynthesisSec is the offline place-and-route cost.
	SynthesisSec float64
	// StreamBytesPerSec is the per-board input bandwidth.
	StreamBytesPerSec float64
	// ReportCostSec is the host-side cost per report read-back; the
	// overlay buffers reports in BRAM FIFOs so there is no kernel stall.
	ReportCostSec float64
}

// KU115 is the default device.
var KU115 = Device{
	LUTs:              663360,
	UsableFraction:    0.70,
	LUTsPerState:      1.6,
	ClockHz:           250e6,
	MaxStreams:        16,
	SynthesisSec:      3600,
	StreamBytesPerSec: 4e9,
	ReportCostSec:     1e-7,
}

// Options controls compilation.
type Options struct {
	Device Device
	// MergeStates applies prefix/suffix merging before mapping.
	MergeStates bool
	// Stride2 maps the 2-strided automaton: half the cycles per base
	// for roughly 2.5-3x the states — the throughput optimization the
	// paper proposes for spatial architectures (E9 ablation).
	Stride2 bool
}

// Model is a compiled workload on the FPGA overlay.
type Model struct {
	opt            Options
	nfa            *automata.NFA
	res            arch.ResourceUsage
	streams        int
	symbolsPerBase float64

	// rec receives scan metrics; the model records analytic device-time
	// steps only (no wall clock — see the clockguard analyzer).
	rec *metrics.Recorder
}

// SetMetrics implements arch.Instrumented. The one-time synthesis cost
// is recorded immediately as the modeled compile step.
func (m *Model) SetMetrics(rec *metrics.Recorder) {
	m.rec = rec
	rec.SetModeledSeconds("compile", m.EstimateBreakdown(0, 0).Compile)
}

// Compile builds and maps the automata network.
func Compile(specs []arch.PatternSpec, opt Options) (*Model, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("fpga: no patterns")
	}
	if opt.Device.LUTs == 0 {
		opt.Device = KU115
	}
	var parts []*automata.NFA
	for _, spec := range specs {
		n, err := automata.CompileHamming(spec.Spacer, automata.CompileOptions{
			MaxMismatches: spec.K, PAM: spec.PAM, PAMLeft: spec.PAMLeft, Code: spec.Code,
		})
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	u, err := automata.UnionAll("fpga", parts)
	if err != nil {
		return nil, err
	}
	if opt.MergeStates {
		u, _ = automata.MergeEquivalent(u)
	}
	m := &Model{opt: opt, symbolsPerBase: 1}
	m.nfa = u
	if opt.Stride2 {
		s2, err := automata.Multistride2(u)
		if err != nil {
			return nil, err
		}
		if opt.MergeStates {
			s2, _ = automata.MergeEquivalent(s2)
		}
		m.nfa = s2
		m.symbolsPerBase = 0.5
	}
	m.place()
	return m, nil
}

func (m *Model) place() {
	dev := m.opt.Device
	states := m.nfa.ComputeStats().States
	usable := int(float64(dev.LUTs) * dev.UsableFraction)
	lutsPerCopy := int(float64(states) * dev.LUTsPerState)
	passes := 1
	streams := 1
	if lutsPerCopy <= usable {
		streams = usable / lutsPerCopy
		if streams > dev.MaxStreams {
			streams = dev.MaxStreams
		}
		if streams < 1 {
			streams = 1
		}
	} else {
		passes = (lutsPerCopy + usable - 1) / usable
	}
	m.streams = streams
	m.res = arch.ResourceUsage{
		States:       states,
		Capacity:     int(float64(usable) / dev.LUTsPerState),
		Passes:       passes,
		ReportStates: m.nfa.ComputeStats().ReportStates,
	}
}

// Name implements arch.Engine.
func (m *Model) Name() string {
	if m.opt.Stride2 {
		return "fpga-stride2"
	}
	return "fpga"
}

// Resources implements arch.Modeled.
func (m *Model) Resources() arch.ResourceUsage { return m.res }

// Streams reports the achieved replication factor.
func (m *Model) Streams() int { return m.streams }

// NFA exposes the mapped network.
func (m *Model) NFA() *automata.NFA { return m.nfa }

// LUTsUsed reports the fabric demand of one design copy.
func (m *Model) LUTsUsed() int {
	return int(float64(m.res.States) * m.opt.Device.LUTsPerState)
}

// ScanChrom implements arch.Engine (functional path).
func (m *Model) ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error {
	sim := automata.NewSim(m.nfa)
	in := automata.SymbolsOfSeq(c.Seq)
	reports := 0
	count := func(r automata.Report) {
		reports++
		emit(r)
	}
	if m.opt.Stride2 {
		automata.ScanStride2(sim, in, count)
	} else {
		sim.Scan(in, count)
	}
	if m.rec != nil {
		m.rec.Add(metrics.CounterCandidateWindows, int64(len(c.Seq)))
		b := m.EstimateBreakdown(len(c.Seq), reports)
		m.rec.AddModeledSeconds("transfer", b.Transfer)
		m.rec.AddModeledSeconds("kernel", b.Kernel)
		m.rec.AddModeledSeconds("report", b.Report)
	}
	return nil
}

// EstimateBreakdown implements arch.Modeled.
func (m *Model) EstimateBreakdown(inputLen, reportCount int) arch.Breakdown {
	dev := m.opt.Device
	symbols := float64(inputLen) * m.symbolsPerBase
	kernel := symbols * float64(m.res.Passes) / (dev.ClockHz * float64(m.streams))
	return arch.Breakdown{
		Compile:  dev.SynthesisSec,
		Transfer: symbols / dev.StreamBytesPerSec,
		Kernel:   kernel,
		Report:   float64(reportCount) * dev.ReportCostSec,
	}
}
