package fpga

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/hscan"
)

func randSpecs(rng *rand.Rand, n, m, k int) []arch.PatternSpec {
	pam := dna.MustParsePattern("NGG")
	specs := make([]arch.PatternSpec, n)
	for i := range specs {
		spacer := make(dna.Seq, m)
		for j := range spacer {
			spacer[j] = dna.Base(rng.Intn(4))
		}
		specs[i] = arch.PatternSpec{Spacer: dna.PatternFromSeq(spacer), PAM: pam, K: k, Code: int32(i)}
	}
	return specs
}

func TestFunctionalAgreesWithHscan(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	specs := randSpecs(rng, 3, 8, 2)
	seq := make(dna.Seq, 6000)
	for i := range seq {
		seq[i] = dna.Base(rng.Intn(4))
	}
	c := &genome.Chromosome{Name: "t", Seq: seq, Packed: dna.Pack(seq)}
	for _, opt := range []Options{{}, {Stride2: true, MergeStates: true}} {
		m, err := Compile(specs, opt)
		if err != nil {
			t.Fatal(err)
		}
		hs, _ := hscan.New(specs, hscan.ModeBitap)
		var a, b []automata.Report
		if err := m.ScanChrom(c, func(r automata.Report) { a = append(a, r) }); err != nil {
			t.Fatal(err)
		}
		if err := hs.ScanChrom(c, func(r automata.Report) { b = append(b, r) }); err != nil {
			t.Fatal(err)
		}
		for _, s := range [][]automata.Report{a, b} {
			sort.Slice(s, func(i, j int) bool {
				if s[i].End != s[j].End {
					return s[i].End < s[j].End
				}
				return s[i].Code < s[j].Code
			})
		}
		if len(a) == 0 || len(a) != len(b) {
			t.Fatalf("opt %+v: fpga %d vs hscan %d", opt, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("report %d differs", i)
			}
		}
	}
}

func TestReplication(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	small, err := Compile(randSpecs(rng, 5, 20, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := Compile(randSpecs(rng, 500, 20, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if small.Streams() <= big.Streams() {
		t.Errorf("small design should replicate more: %d vs %d", small.Streams(), big.Streams())
	}
	if small.Streams() > KU115.MaxStreams {
		t.Errorf("streams %d exceeds cap", small.Streams())
	}
	bS := small.EstimateBreakdown(10_000_000, 0)
	bB := big.EstimateBreakdown(10_000_000, 0)
	if bS.Kernel >= bB.Kernel {
		t.Error("more replication must mean faster kernel")
	}
}

func TestMultiPassWhenOverflowing(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	dev := KU115
	dev.LUTs = 2000
	m, err := Compile(randSpecs(rng, 20, 20, 3), Options{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	if m.Resources().Passes <= 1 {
		t.Errorf("expected multi-pass, got %d", m.Resources().Passes)
	}
}

func TestStride2Tradeoff(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	specs := randSpecs(rng, 50, 20, 3)
	s1, err := Compile(specs, Options{MergeStates: true})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Compile(specs, Options{MergeStates: true, Stride2: true})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Resources().States <= s1.Resources().States {
		t.Error("stride-2 must cost states")
	}
	if s2.LUTsUsed() <= s1.LUTsUsed() {
		t.Error("stride-2 must cost LUTs")
	}
	// Per-stream symbol rate doubles; whether wall-clock improves
	// depends on lost replication. Verify the model reflects the
	// halved symbol count at equal streams.
	b1 := s1.EstimateBreakdown(10_000_000, 0)
	b2 := s2.EstimateBreakdown(10_000_000, 0)
	perStream1 := b1.Kernel * float64(s1.Streams())
	perStream2 := b2.Kernel * float64(s2.Streams())
	if perStream2 >= perStream1 {
		t.Errorf("per-stream stride-2 time %g should beat stride-1 %g", perStream2, perStream1)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, Options{}); err == nil {
		t.Error("empty specs must error")
	}
}

func TestModeledInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	m, err := Compile(randSpecs(rng, 2, 8, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var _ arch.Modeled = m
	if m.Name() != "fpga" {
		t.Errorf("name = %s", m.Name())
	}
	s2, _ := Compile(randSpecs(rng, 2, 8, 1), Options{Stride2: true})
	if s2.Name() != "fpga-stride2" {
		t.Errorf("name = %s", s2.Name())
	}
	b := m.EstimateBreakdown(1_000_000, 10)
	if b.Kernel <= 0 || b.Compile <= 0 {
		t.Errorf("breakdown: %+v", b)
	}
}
