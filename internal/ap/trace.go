package ap

import (
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
)

// Trace holds cycle-level statistics from a functional simulation —
// the quantities the analytic timing model abstracts away. The E10
// reporting analysis and the iNFAnt2 frontier measurements are both
// sanity-checked against traces like this.
type Trace struct {
	// Cycles is the symbol count consumed.
	Cycles int
	// AvgActive and MaxActive summarize the per-cycle active-STE count
	// (the dynamic-power proxy: an STE burns energy when evaluating an
	// active transition).
	AvgActive float64
	MaxActive int
	// Reports is the total match-event count.
	Reports int
	// MaxReportsPerCycle is the widest single-cycle report burst (the
	// output event buffer must absorb it).
	MaxReportsPerCycle int
	// BusiestWindow is the largest report count in any window of
	// WindowCycles consecutive cycles — the drain-rate requirement.
	BusiestWindow int
	WindowCycles  int
}

// TraceScan runs the model's automaton functionally and collects
// cycle-level statistics. window sets the BusiestWindow width (default
// 1024 cycles, one output-region drain period).
func (m *Model) TraceScan(seq dna.Seq, window int) Trace {
	if window <= 0 {
		window = 1024
	}
	in := automata.SymbolsOfSeq(seq)
	sim := automata.NewSim(m.nfa)

	// Active-state counts per cycle.
	activity := sim.ActivityTrace(in)
	tr := Trace{Cycles: len(in), WindowCycles: window}
	total := 0
	for _, a := range activity {
		total += a
		if a > tr.MaxActive {
			tr.MaxActive = a
		}
	}
	if len(activity) > 0 {
		tr.AvgActive = float64(total) / float64(len(activity))
	}

	// Report events per cycle (second pass; the simulator is cheap at
	// trace scales).
	perCycle := make([]int, len(in))
	sim2 := automata.NewSim(m.nfa)
	sim2.Scan(in, func(r automata.Report) {
		tr.Reports++
		if r.End >= 0 && r.End < len(perCycle) {
			perCycle[r.End]++
		}
	})
	run := 0
	for t, c := range perCycle {
		if c > tr.MaxReportsPerCycle {
			tr.MaxReportsPerCycle = c
		}
		run += c
		if t >= window {
			run -= perCycle[t-window]
		}
		if run > tr.BusiestWindow {
			tr.BusiestWindow = run
		}
	}
	return tr
}

// BoardWatts is the rough board power draw used by EstimateEnergy. The
// D480's published figures put a fully active chip around 4 W; a 32-chip
// board with interface logic lands near 150 W. This is an auxiliary
// estimate, not a paper-reported number.
const BoardWatts = 150.0

// EstimateEnergy returns the modeled kernel energy in joules for
// scanning inputLen bases (kernel time x board power). Idle chips in a
// replicated design still burn static power, so the board figure is
// used whole.
func (m *Model) EstimateEnergy(inputLen, reportCount int) float64 {
	b := m.EstimateBreakdown(inputLen, reportCount)
	return (b.Kernel + b.Report) * BoardWatts
}
