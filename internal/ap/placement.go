package ap

import (
	"fmt"
	"sort"

	"github.com/cap-repro/crisprscan/internal/automata"
)

// Placement is a chip-accurate packing of an automata network: each
// connected component (one guide-strand lattice) is assigned whole to a
// chip, because STE activation wires do not cross chip boundaries on
// the AP. This refines the aggregate-capacity placement PlaceStates
// performs: component granularity causes fragmentation, so a board can
// "fill" before its raw STE count does — the effect the paper's
// compilation discussion attributes to the AP toolchain.
type Placement struct {
	// Chips[i] lists component indices assigned to chip i of some pass;
	// chips are numbered across passes (chip / Device.Chips = pass).
	Chips [][]int
	// ChipLoad[i] is the STE count on chip i.
	ChipLoad []int
	// ComponentSizes are the packed component STE counts.
	ComponentSizes []int
	// Passes is the number of board configurations needed.
	Passes int
	// Fragmentation is 1 - (states / (usedChips * STEsPerChip)): the
	// capacity lost to component granularity.
	Fragmentation float64
}

// PlaceComponents packs the network's connected components onto chips
// with first-fit-decreasing, the classic bin-packing heuristic AP
// compilers use. It errors if any single component exceeds one chip
// (such a design cannot be placed at all).
func PlaceComponents(n *automata.NFA, dev Device) (*Placement, error) {
	if dev.STEsPerChip == 0 {
		dev = D480Board
	}
	sizes := n.ComponentSizes()
	p := &Placement{ComponentSizes: sizes}
	order := make([]int, len(sizes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })

	total := 0
	for ci, idx := range order {
		size := sizes[idx]
		if size > dev.STEsPerChip {
			return nil, fmt.Errorf("ap: component %d needs %d STEs, more than one chip (%d)", idx, size, dev.STEsPerChip)
		}
		total += size
		placed := false
		// First fit over existing chips.
		for chip := range p.Chips {
			if p.ChipLoad[chip]+size <= dev.STEsPerChip {
				p.Chips[chip] = append(p.Chips[chip], idx)
				p.ChipLoad[chip] += size
				placed = true
				break
			}
		}
		if !placed {
			p.Chips = append(p.Chips, []int{idx})
			p.ChipLoad = append(p.ChipLoad, size)
		}
		_ = ci
	}
	used := len(p.Chips)
	if used == 0 {
		used = 1
	}
	p.Passes = (used + dev.Chips - 1) / dev.Chips
	p.Fragmentation = 1 - float64(total)/float64(used*dev.STEsPerChip)
	return p, nil
}

// UsedChips returns the number of chips holding at least one component.
func (p *Placement) UsedChips() int { return len(p.Chips) }

// MaxLoad returns the heaviest chip's STE count.
func (p *Placement) MaxLoad() int {
	max := 0
	for _, l := range p.ChipLoad {
		if l > max {
			max = l
		}
	}
	return max
}

// PlaceNetwork performs component-accurate placement for the model's
// compiled network and updates the model's pass count when packing is
// worse than the aggregate estimate. Returns the placement for
// inspection.
func (m *Model) PlaceNetwork() (*Placement, error) {
	p, err := PlaceComponents(m.nfa, m.opt.Device)
	if err != nil {
		return nil, err
	}
	if p.Passes > m.res.Passes {
		m.res.Passes = p.Passes
		dev := m.opt.Device
		if dev.STEsPerChip == 0 {
			dev = D480Board
		}
		if p.UsedChips() <= dev.Chips {
			m.streams = dev.Chips / p.UsedChips()
		} else {
			m.streams = 1
		}
	}
	return p, nil
}
