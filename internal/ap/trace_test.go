package ap

import (
	"math/rand"
	"testing"

	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

func TestTraceScan(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	specs := randSpecs(rng, 4, 8, 2)
	m, err := Compile(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq := make(dna.Seq, 20000)
	for i := range seq {
		seq[i] = dna.Base(rng.Intn(4))
	}
	tr := m.TraceScan(seq, 0)
	if tr.Cycles != len(seq) {
		t.Errorf("cycles = %d", tr.Cycles)
	}
	if tr.WindowCycles != 1024 {
		t.Errorf("default window = %d", tr.WindowCycles)
	}
	if tr.AvgActive <= 0 || tr.MaxActive < int(tr.AvgActive) {
		t.Errorf("activity stats implausible: %+v", tr)
	}
	if tr.Reports == 0 {
		t.Fatal("fixture should produce reports")
	}
	if tr.MaxReportsPerCycle < 1 || tr.BusiestWindow < tr.MaxReportsPerCycle {
		t.Errorf("report stats implausible: %+v", tr)
	}
	if tr.BusiestWindow > tr.Reports {
		t.Errorf("window cannot exceed total: %+v", tr)
	}
	// The trace's report count must agree with a plain functional scan.
	count := 0
	chrom := &genome.Chromosome{Name: "t", Seq: seq, Packed: dna.Pack(seq)}
	if err := m.ScanChrom(chrom, func(automata.Report) { count++ }); err != nil {
		t.Fatal(err)
	}
	if count != tr.Reports {
		t.Errorf("trace reports %d != scan reports %d", tr.Reports, count)
	}
}

func TestEstimateEnergy(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	m, err := Compile(randSpecs(rng, 10, 20, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	e1 := m.EstimateEnergy(1_000_000, 0)
	e10 := m.EstimateEnergy(10_000_000, 0)
	if e1 <= 0 || e10 < 9*e1 {
		t.Errorf("energy must scale with input: %g vs %g", e1, e10)
	}
}
