package ap

import (
	"math/rand"
	"sort"
	"testing"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/hscan"
)

func randSpecs(rng *rand.Rand, n, m, k int) []arch.PatternSpec {
	pam := dna.MustParsePattern("NGG")
	specs := make([]arch.PatternSpec, n)
	for i := range specs {
		spacer := make(dna.Seq, m)
		for j := range spacer {
			spacer[j] = dna.Base(rng.Intn(4))
		}
		specs[i] = arch.PatternSpec{Spacer: dna.PatternFromSeq(spacer), PAM: pam, K: k, Code: int32(i)}
	}
	return specs
}

func chromOf(rng *rand.Rand, n int) *genome.Chromosome {
	seq := make(dna.Seq, n)
	for i := range seq {
		seq[i] = dna.Base(rng.Intn(4))
	}
	return &genome.Chromosome{Name: "t", Seq: seq, Packed: dna.Pack(seq)}
}

func collect(t *testing.T, e arch.Engine, c *genome.Chromosome) []automata.Report {
	t.Helper()
	var out []automata.Report
	if err := e.ScanChrom(c, func(r automata.Report) { out = append(out, r) }); err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Code < out[j].Code
	})
	return out
}

func TestFunctionalAgreesWithHscan(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	specs := randSpecs(rng, 4, 8, 2)
	c := chromOf(rng, 8000)
	for _, opt := range []Options{{}, {MergeStates: true}, {Stride2: true}, {MergeStates: true, Stride2: true}} {
		m, err := Compile(specs, opt)
		if err != nil {
			t.Fatal(err)
		}
		hs, _ := hscan.New(specs, hscan.ModeBitap)
		a := collect(t, m, c)
		b := collect(t, hs, c)
		if len(a) == 0 {
			t.Fatal("no matches; weak fixture")
		}
		if len(a) != len(b) {
			t.Fatalf("opt %+v: ap %d vs hscan %d", opt, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("opt %+v report %d: %v vs %v", opt, i, a[i], b[i])
			}
		}
	}
}

func TestPlacementSingleChip(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	m, err := Compile(randSpecs(rng, 100, 20, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Resources()
	if res.Passes != 1 {
		t.Errorf("100 guides should fit in one pass, got %d", res.Passes)
	}
	if m.Streams() != D480Board.Chips {
		t.Errorf("single-chip design should replicate across all %d chips, got %d", D480Board.Chips, m.Streams())
	}
	if res.States != 100*automata.HammingStateCount(20, 3, 3) {
		t.Errorf("states = %d", res.States)
	}
}

func TestPlacementMultiPass(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	// Force overflow with a small fake device.
	dev := D480Board
	dev.STEsPerChip = 200
	dev.Chips = 2
	m, err := Compile(randSpecs(rng, 10, 20, 3), Options{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	res := m.Resources()
	if res.Passes <= 1 {
		t.Errorf("expected multi-pass, got %d", res.Passes)
	}
	if m.Streams() != 1 {
		t.Errorf("overflowing design cannot replicate, streams=%d", m.Streams())
	}
	// Kernel time must scale with passes.
	b1 := m.EstimateBreakdown(1_000_000, 100)
	single, _ := Compile(randSpecs(rng, 10, 20, 3), Options{})
	b2 := single.EstimateBreakdown(1_000_000, 100)
	if b1.Kernel <= b2.Kernel {
		t.Errorf("multi-pass kernel (%g) should exceed single-pass (%g)", b1.Kernel, b2.Kernel)
	}
}

func TestMergeReducesSTEs(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	specs := randSpecs(rng, 20, 20, 3)
	plain, err := Compile(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Compile(specs, Options{MergeStates: true})
	if err != nil {
		t.Fatal(err)
	}
	if merged.Resources().States >= plain.Resources().States {
		t.Errorf("merging should reduce STEs: %d -> %d", plain.Resources().States, merged.Resources().States)
	}
}

func TestStride2HalvesKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	specs := randSpecs(rng, 5, 20, 2)
	s1, err := Compile(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Compile(specs, Options{Stride2: true})
	if err != nil {
		t.Fatal(err)
	}
	b1 := s1.EstimateBreakdown(10_000_000, 0)
	b2 := s2.EstimateBreakdown(10_000_000, 0)
	// Same replication here (both fit one chip), so stride-2 halves
	// kernel time exactly.
	if s1.Streams() == s2.Streams() && b2.Kernel >= b1.Kernel*0.6 {
		t.Errorf("stride-2 kernel %g vs stride-1 %g", b2.Kernel, b1.Kernel)
	}
	if s2.Resources().States <= s1.Resources().States {
		t.Error("stride-2 must cost extra states")
	}
}

func TestReportStalls(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	m, err := Compile(randSpecs(rng, 5, 20, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	quiet := m.EstimateBreakdown(1_000_000, 0)
	noisy := m.EstimateBreakdown(1_000_000, 1_000_000)
	if noisy.Report <= quiet.Report {
		t.Error("report stalls must grow with report count")
	}
	if quiet.Report != 0 {
		t.Errorf("zero reports should cost zero stall, got %g", quiet.Report)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, Options{}); err == nil {
		t.Error("empty specs must error")
	}
	bad := []arch.PatternSpec{{Spacer: dna.MustParsePattern("ACGT"), K: 9}}
	if _, err := Compile(bad, Options{}); err == nil {
		t.Error("bad budget must error")
	}
}

func TestModeledInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	m, err := Compile(randSpecs(rng, 2, 8, 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	var _ arch.Modeled = m
	if m.Name() != "ap" {
		t.Errorf("name = %s", m.Name())
	}
	s2, _ := Compile(randSpecs(rng, 2, 8, 1), Options{Stride2: true})
	if s2.Name() != "ap-stride2" {
		t.Errorf("name = %s", s2.Name())
	}
	if m.NFA() == nil {
		t.Error("NFA accessor nil")
	}
}
