package ap

import (
	"math/rand"
	"testing"

	"github.com/cap-repro/crisprscan/internal/automata"
)

func TestComponentsPerGuide(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	specs := randSpecs(rng, 7, 12, 2)
	m, err := Compile(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	comps := m.NFA().Components()
	if len(comps) != 7 {
		t.Fatalf("expected 7 components (one per guide), got %d", len(comps))
	}
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != m.NFA().NumStates() {
		t.Errorf("components cover %d of %d states", total, m.NFA().NumStates())
	}
}

func TestSubNFAPreservesLanguagePerComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	specs := randSpecs(rng, 3, 8, 1)
	m, err := Compile(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := m.NFA()
	genome := make([]uint8, 4000)
	for i := range genome {
		genome[i] = uint8(rng.Intn(4))
	}
	whole := automata.NewSim(n).ScanCollect(genome)
	var split []automata.Report
	for i, comp := range n.Components() {
		sub := n.SubNFA(comp, "part")
		if err := sub.Validate(); err != nil {
			t.Fatalf("component %d: %v", i, err)
		}
		split = append(split, automata.NewSim(sub).ScanCollect(genome)...)
	}
	if len(whole) != len(split) {
		t.Fatalf("component split changed report count: %d vs %d", len(split), len(whole))
	}
	seen := map[automata.Report]int{}
	for _, r := range whole {
		seen[r]++
	}
	for _, r := range split {
		seen[r]--
	}
	for r, c := range seen {
		if c != 0 {
			t.Fatalf("report multiset differs at %v (%+d)", r, c)
		}
	}
}

func TestPlaceComponentsPacking(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	specs := randSpecs(rng, 10, 20, 3)
	m, err := Compile(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Tiny chips force multi-chip packing; each k=3 guide automaton is
	// 134 STEs.
	dev := D480Board
	dev.STEsPerChip = 300
	dev.Chips = 2
	p, err := PlaceComponents(m.NFA(), dev)
	if err != nil {
		t.Fatal(err)
	}
	if p.UsedChips() < 5 {
		t.Errorf("10 components of 134 STEs into 300-STE chips: used %d chips, want >=5", p.UsedChips())
	}
	for chip, load := range p.ChipLoad {
		if load > dev.STEsPerChip {
			t.Errorf("chip %d overloaded: %d", chip, load)
		}
	}
	if p.MaxLoad() > dev.STEsPerChip {
		t.Error("MaxLoad exceeds capacity")
	}
	if p.Passes != (p.UsedChips()+1)/2 {
		t.Errorf("passes = %d for %d chips on a 2-chip board", p.Passes, p.UsedChips())
	}
	if p.Fragmentation < 0 || p.Fragmentation >= 1 {
		t.Errorf("fragmentation = %f", p.Fragmentation)
	}
}

func TestPlaceComponentsOversizedComponent(t *testing.T) {
	rng := rand.New(rand.NewSource(134))
	m, err := Compile(randSpecs(rng, 1, 20, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev := D480Board
	dev.STEsPerChip = 10
	if _, err := PlaceComponents(m.NFA(), dev); err == nil {
		t.Error("component larger than a chip must fail placement")
	}
}

func TestPlaceNetworkUpdatesPasses(t *testing.T) {
	rng := rand.New(rand.NewSource(135))
	// 131 STEs/guide at k=3 m=20 pam=3 with component granularity: chips
	// of 150 STEs hold exactly one component each despite aggregate
	// capacity suggesting otherwise.
	dev := D480Board
	dev.STEsPerChip = 150
	dev.Chips = 4
	m, err := Compile(randSpecs(rng, 8, 20, 3), Options{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	aggregatePasses := m.Resources().Passes
	p, err := m.PlaceNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if p.UsedChips() != 8 {
		t.Errorf("used chips = %d, want 8 (one component per 150-STE chip)", p.UsedChips())
	}
	if m.Resources().Passes < aggregatePasses {
		t.Error("placement must never reduce the pass count")
	}
	if m.Resources().Passes != 2 {
		t.Errorf("8 chips on a 4-chip board = 2 passes, got %d", m.Resources().Passes)
	}
	if p.Fragmentation <= 0 {
		t.Errorf("expected fragmentation > 0, got %f", p.Fragmentation)
	}
}
