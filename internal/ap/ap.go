// Package ap models Micron's Automata Processor (the D480 chip and the
// 32-chip evaluation board the paper used). The AP executes homogeneous
// NFAs natively: every state is a state-transition element (STE) holding
// an 8-bit symbol class, all STEs evaluate one input symbol per clock,
// and activations propagate through the routing matrix — so our automata
// map one state to one STE with no translation.
//
// Because the hardware no longer exists outside a few labs, this package
// substitutes (per DESIGN.md) a functional simulator — the shared bitset
// NFA engine, which implements exactly the AP's execution semantics —
// plus an analytic timing model driven by the device's published
// constants: 133 MHz symbol clock (7.5 ns/symbol), 49,152 STEs per chip,
// 32 chips per board. Kernel time on a real AP is deterministic
// (symbols x clock x passes, plus output-event stalls), which is what
// makes the analytic model faithful.
package ap

import (
	"fmt"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// Device holds the published AP hardware constants.
type Device struct {
	// STEsPerChip is the per-chip STE capacity (D480: 49,152).
	STEsPerChip int
	// Chips on the board (evaluation board: 32). Chips whose STEs are
	// not needed by the automata can process independent input streams.
	Chips int
	// SymbolsPerSec is the symbol clock (D480: 133 MHz).
	SymbolsPerSec float64
	// ReportBatchSymbols is the drain granularity of the output event
	// buffer: one batch read-out stalls the chip for ReportStallSec.
	// Wadden et al. (HPCA 2018) characterize this output bottleneck.
	ReportBatchSize int
	ReportStallSec  float64
	// ConfigSec is the one-time compile/place/route plus board
	// configuration cost (offline; excluded from kernel comparisons).
	ConfigSec float64
	// StreamBytesPerSec is the input DMA rate per rank.
	StreamBytesPerSec float64
}

// D480Board is the default 32-chip evaluation board.
var D480Board = Device{
	STEsPerChip:       49152,
	Chips:             32,
	SymbolsPerSec:     133e6,
	ReportBatchSize:   1024,
	ReportStallSec:    10e-6,
	ConfigSec:         45,
	StreamBytesPerSec: 1e9,
}

// FutureBoard models the architectural modifications the paper proposes
// for next-generation automata hardware: a DDR4-rate symbol clock (the
// D480's 133 MHz was bound by its DDR3-derived array timing), denser
// STE arrays from a process shrink, an on-chip report aggregator that
// both batches wider and drains faster, and a full-bandwidth input
// path. These are projections, not a shipped device; E14 quantifies
// what each buys on the off-target workload.
var FutureBoard = Device{
	STEsPerChip:       98304, // 2x density
	Chips:             32,
	SymbolsPerSec:     400e6, // DDR4-rate symbol clock
	ReportBatchSize:   4096,  // wider on-chip aggregation
	ReportStallSec:    2e-6,  // faster drain path
	ConfigSec:         45,
	StreamBytesPerSec: 8e9,
}

// Options controls compilation onto the device.
type Options struct {
	Device Device
	// MergeStates applies the prefix/suffix merging optimization before
	// placement (the paper's proposed STE reduction).
	MergeStates bool
	// Stride2 compiles the 2-strided automaton (halves symbols per
	// input base, costs extra STEs). The AP hardware cannot actually
	// re-clock, so stride-2 on the AP models the paper's "future
	// automata hardware" discussion rather than the shipped D480.
	Stride2 bool
}

// Model is a compiled workload on the AP, implementing arch.Modeled.
type Model struct {
	opt     Options
	nfa     *automata.NFA
	baseNFA *automata.NFA // stride-1 form, for reference
	res     arch.ResourceUsage
	streams int
	// symbolsPerBase is 1 for stride-1, 0.5 for stride-2.
	symbolsPerBase float64

	// rec receives scan metrics; the model records its analytic
	// device-time steps (never wall clock — the model must stay
	// deterministic, see the clockguard analyzer).
	rec *metrics.Recorder
}

// SetMetrics implements arch.Instrumented. The one-time configuration
// cost is recorded immediately as the modeled compile step.
func (m *Model) SetMetrics(rec *metrics.Recorder) {
	m.rec = rec
	rec.SetModeledSeconds("compile", m.EstimateBreakdown(0, 0).Compile)
}

// Compile builds the automata network for the pattern specs and places
// it onto the device.
func Compile(specs []arch.PatternSpec, opt Options) (*Model, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("ap: no patterns")
	}
	if opt.Device.STEsPerChip == 0 {
		opt.Device = D480Board
	}
	var parts []*automata.NFA
	for _, spec := range specs {
		n, err := automata.CompileHamming(spec.Spacer, automata.CompileOptions{
			MaxMismatches: spec.K, PAM: spec.PAM, PAMLeft: spec.PAMLeft, Code: spec.Code,
		})
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	u, err := automata.UnionAll("ap", parts)
	if err != nil {
		return nil, err
	}
	if opt.MergeStates {
		u, _ = automata.MergeEquivalent(u)
	}
	m := &Model{opt: opt, baseNFA: u, symbolsPerBase: 1}
	m.nfa = u
	if opt.Stride2 {
		s2, err := automata.Multistride2(u)
		if err != nil {
			return nil, err
		}
		if opt.MergeStates {
			s2, _ = automata.MergeEquivalent(s2)
		}
		m.nfa = s2
		m.symbolsPerBase = 0.5
	}
	m.place()
	return m, nil
}

// place computes STE demand, passes and parallel streams.
func (m *Model) place() {
	stats := m.nfa.ComputeStats()
	m.res, m.streams = PlaceStates(stats.States, m.opt.Device)
	m.res.ReportStates = stats.ReportStates
}

// PlaceStates computes board placement for a given STE demand: the pass
// count when the board overflows, and the replication stream count when
// it does not (spare chips scan independent input slices). Exposed so
// capacity studies (E7) can plan placements analytically without
// materializing multi-million-state networks.
func PlaceStates(states int, dev Device) (arch.ResourceUsage, int) {
	if dev.STEsPerChip == 0 {
		dev = D480Board
	}
	chipsNeeded := (states + dev.STEsPerChip - 1) / dev.STEsPerChip
	passes := 1
	streams := 1
	if chipsNeeded <= dev.Chips {
		streams = dev.Chips / chipsNeeded
	} else {
		passes = (chipsNeeded + dev.Chips - 1) / dev.Chips
	}
	return arch.ResourceUsage{
		States:   states,
		Capacity: dev.STEsPerChip * dev.Chips,
		Passes:   passes,
	}, streams
}

// KernelSeconds predicts kernel time for a placement produced by
// PlaceStates over inputLen symbols.
func KernelSeconds(inputLen int, res arch.ResourceUsage, streams int, dev Device) float64 {
	if dev.STEsPerChip == 0 {
		dev = D480Board
	}
	return float64(inputLen) * float64(res.Passes) / (dev.SymbolsPerSec * float64(streams))
}

// Name implements arch.Engine.
func (m *Model) Name() string {
	if m.opt.Stride2 {
		return "ap-stride2"
	}
	return "ap"
}

// Resources implements arch.Modeled.
func (m *Model) Resources() arch.ResourceUsage { return m.res }

// Streams reports the input-level parallelism achieved by replication.
func (m *Model) Streams() int { return m.streams }

// NFA exposes the placed automata network (for ANML export and stats).
func (m *Model) NFA() *automata.NFA { return m.nfa }

// ScanChrom implements arch.Engine: functional execution through the
// bitset simulator, which is semantics-identical to STE evaluation.
func (m *Model) ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error {
	sim := automata.NewSim(m.nfa)
	in := automata.SymbolsOfSeq(c.Seq)
	reports := 0
	count := func(r automata.Report) {
		reports++
		emit(r)
	}
	if m.opt.Stride2 {
		automata.ScanStride2(sim, in, count)
	} else {
		sim.Scan(in, count)
	}
	m.recordModeled(len(c.Seq), reports)
	return nil
}

// recordModeled accumulates the analytic per-chromosome device-time
// steps and event counts into the metrics recorder.
func (m *Model) recordModeled(inputLen, reports int) {
	if m.rec == nil {
		return
	}
	m.rec.Add(metrics.CounterCandidateWindows, int64(inputLen))
	b := m.EstimateBreakdown(inputLen, reports)
	m.rec.AddModeledSeconds("transfer", b.Transfer)
	m.rec.AddModeledSeconds("kernel", b.Kernel)
	m.rec.AddModeledSeconds("report", b.Report)
}

// EstimateBreakdown implements arch.Modeled. The kernel streams
// inputLen bases (x symbolsPerBase symbols) through the board passes
// times, with stream-level replication dividing wall time; the output
// event buffer stalls the chip once per ReportBatchSize reports.
func (m *Model) EstimateBreakdown(inputLen, reportCount int) arch.Breakdown {
	dev := m.opt.Device
	symbols := float64(inputLen) * m.symbolsPerBase
	kernel := symbols * float64(m.res.Passes) / (dev.SymbolsPerSec * float64(m.streams))
	batches := 0
	if dev.ReportBatchSize > 0 {
		batches = (reportCount + dev.ReportBatchSize - 1) / dev.ReportBatchSize
	}
	return arch.Breakdown{
		Compile:  dev.ConfigSec,
		Transfer: symbols / dev.StreamBytesPerSec, // one byte per symbol on the DDR-style interface
		Kernel:   kernel,
		Report:   float64(batches) * dev.ReportStallSec,
	}
}
