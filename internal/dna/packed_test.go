package dna

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSeq(rng *rand.Rand, n int, ambRate float64) Seq {
	s := make(Seq, n)
	for i := range s {
		if rng.Float64() < ambRate {
			s[i] = BadBase
		} else {
			s[i] = Base(rng.Intn(4))
		}
	}
	return s
}

func TestPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		s := randomSeq(rng, rng.Intn(200), 0.1)
		p := Pack(s)
		if p.Len() != len(s) {
			t.Fatalf("Len = %d, want %d", p.Len(), len(s))
		}
		for i := range s {
			if p.Base(i) != s[i] {
				t.Fatalf("trial %d: Base(%d) = %v, want %v", trial, i, p.Base(i), s[i])
			}
			if p.Ambiguous(i) != (s[i] == BadBase) {
				t.Fatalf("trial %d: Ambiguous(%d) wrong", trial, i)
			}
		}
	}
}

func TestWindowAcrossWordBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := randomSeq(rng, 300, 0.05)
	p := Pack(s)
	for pos := 0; pos+23 <= len(s); pos++ {
		codes, amb := p.Window(pos, 23)
		for j := 0; j < 23; j++ {
			got := Base(codes >> uint(2*j) & 3)
			want := s[pos+j]
			if want == BadBase {
				if amb&(1<<uint(j)) == 0 {
					t.Fatalf("pos %d+%d: ambiguity bit missing", pos, j)
				}
				continue
			}
			if amb&(1<<uint(j)) != 0 {
				t.Fatalf("pos %d+%d: spurious ambiguity bit", pos, j)
			}
			if got != want {
				t.Fatalf("pos %d+%d: base %v, want %v", pos, j, got, want)
			}
		}
	}
}

func TestMismatchCountMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	genome := randomSeq(rng, 500, 0.02)
	packed := Pack(genome)
	for trial := 0; trial < 200; trial++ {
		width := 1 + rng.Intn(32)
		pos := rng.Intn(len(genome) - width)
		pat := randomSeq(rng, width, 0)
		want := 0
		for j := 0; j < width; j++ {
			if genome[pos+j] != pat[j] {
				want++
			}
		}
		got := packed.MismatchCount(pos, width, PackPatternWord(pat))
		if got != want {
			t.Fatalf("trial %d (pos=%d width=%d): got %d, want %d", trial, pos, width, got, want)
		}
	}
}

func TestPackPatternWordPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for ambiguous pattern")
		}
	}()
	seq, _ := ParseSeq("ACN")
	PackPatternWord(seq)
}

func TestKmer(t *testing.T) {
	s := MustParseSeq("ACGT")
	p := Pack(s)
	key, ok := p.Kmer(0, 4)
	if !ok {
		t.Fatal("kmer over concrete bases must be ok")
	}
	// A=0,C=1,G=2,T=3 -> 0b00011011 = 27
	if key != 27 {
		t.Errorf("kmer = %d, want 27", key)
	}
	want, ok2 := KmerOf(s)
	if !ok2 || want != key {
		t.Errorf("KmerOf = %d (%v), want %d", want, ok2, key)
	}
}

func TestKmerAmbiguity(t *testing.T) {
	seq, _ := ParseSeq("ACNGT")
	p := Pack(seq)
	if _, ok := p.Kmer(1, 3); ok {
		t.Error("kmer spanning an N must report !ok")
	}
	if _, ok := p.Kmer(2, 3); ok {
		t.Error("kmer starting at an N must report !ok")
	}
	if _, ok := p.Kmer(0, 2); !ok {
		t.Error("kmer avoiding the N must be ok")
	}
	if _, ok := KmerOf(seq); ok {
		t.Error("KmerOf with BadBase must report !ok")
	}
}

func TestKmerConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	genome := randomSeq(rng, 400, 0)
	packed := Pack(genome)
	f := func(rawPos uint16, rawW uint8) bool {
		width := 1 + int(rawW)%20
		pos := int(rawPos) % (len(genome) - width)
		k1, ok1 := packed.Kmer(pos, width)
		k2, ok2 := KmerOf(genome[pos : pos+width])
		return ok1 && ok2 && k1 == k2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}
