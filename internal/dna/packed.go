package dna

import (
	"fmt"
	"math/bits"
)

// Packed is a 2-bit-per-base packed sequence plus an ambiguity bitmap.
// It is the memory layout Cas-OFFinder-style brute force scans use: a
// window comparison is a 64-bit XOR followed by popcount over 2-bit lanes.
type Packed struct {
	words []uint64 // 32 bases per word, base i at bits (2*(i%32)) (little-endian lanes)
	amb   []uint64 // 1 bit per base: set if the source base was BadBase
	n     int
}

// Pack converts a Seq to packed form. BadBase packs as A in the code plane
// and sets the ambiguity bit, so comparisons can force-mismatch it.
func Pack(s Seq) *Packed {
	n := len(s)
	p := &Packed{
		words: make([]uint64, (n+31)/32),
		amb:   make([]uint64, (n+63)/64),
		n:     n,
	}
	for i, b := range s {
		if b == BadBase {
			p.amb[i/64] |= 1 << uint(i%64)
			continue // leaves code bits 00 (A)
		}
		p.words[i/32] |= uint64(b) << uint(2*(i%32))
	}
	return p
}

// Len returns the number of bases.
func (p *Packed) Len() int { return p.n }

// Base returns the base at position i (BadBase if the position was
// ambiguous in the source).
func (p *Packed) Base(i int) Base {
	if p.amb[i/64]&(1<<uint(i%64)) != 0 {
		return BadBase
	}
	return Base(p.words[i/32] >> uint(2*(i%32)) & 3)
}

// Ambiguous reports whether position i held a non-ACGT character.
func (p *Packed) Ambiguous(i int) bool {
	return p.amb[i/64]&(1<<uint(i%64)) != 0
}

// Window extracts up to 32 bases starting at position pos into a single
// word (base j of the window in bits 2j), plus a 32-bit ambiguity mask.
// Callers must ensure pos+width <= Len() and width <= 32.
func (p *Packed) Window(pos, width int) (codes uint64, amb uint32) {
	w, off := pos/32, uint(pos%32)
	codes = p.words[w] >> (2 * off)
	if off != 0 && w+1 < len(p.words) {
		codes |= p.words[w+1] << (2 * (32 - off))
	}
	if width < 32 {
		codes &= (1 << uint(2*width)) - 1
	}
	aw, aoff := pos/64, uint(pos%64)
	a := p.amb[aw] >> aoff
	if aoff != 0 && aw+1 < len(p.amb) {
		a |= p.amb[aw+1] << (64 - aoff)
	}
	amb = uint32(a & ((1 << uint(width)) - 1))
	return codes, amb
}

// diffLanes spreads the "these 2-bit lanes differ" property of x into one
// bit per lane (bit 2j of the result set iff lanes j differ in x).
func diffLanes(x uint64) uint64 {
	const lo = 0x5555555555555555
	return (x | x>>1) & lo
}

// MismatchCount compares width bases of the packed genome at pos against
// a packed pattern word (pattern base j at bits 2j; pattern must contain
// only concrete bases) and returns the Hamming distance. Ambiguous genome
// positions always count as mismatches. width must be <= 32.
func (p *Packed) MismatchCount(pos, width int, pattern uint64) int {
	codes, amb := p.Window(pos, width)
	d := diffLanes(codes ^ pattern)
	// Fold ambiguity in: an ambiguous lane mismatches regardless of codes.
	var ambLanes uint64
	for a := amb; a != 0; a &= a - 1 {
		ambLanes |= 1 << uint(2*bits.TrailingZeros32(a))
	}
	return bits.OnesCount64(d | ambLanes)
}

// PackPatternWord packs up to 32 concrete bases into a comparison word for
// MismatchCount. Panics if s contains BadBase or is longer than 32.
func PackPatternWord(s Seq) uint64 {
	if len(s) > 32 {
		panic("dna: pattern longer than 32 bases")
	}
	var w uint64
	for i, b := range s {
		if b == BadBase {
			panic("dna: pattern contains ambiguous base")
		}
		w |= uint64(b) << uint(2*i)
	}
	return w
}

// Words exposes the raw storage planes (code words, ambiguity bitmap)
// for serialization. The returned slices alias the Packed's storage and
// must not be mutated.
func (p *Packed) Words() (words, amb []uint64) { return p.words, p.amb }

// FromWords reconstructs a Packed of n bases from serialized storage
// planes, validating the slice lengths against n. The slices are
// retained, not copied.
func FromWords(words, amb []uint64, n int) (*Packed, error) {
	if n < 0 {
		return nil, fmt.Errorf("dna: packed length %d negative", n)
	}
	if len(words) != (n+31)/32 || len(amb) != (n+63)/64 {
		return nil, fmt.Errorf("dna: packed planes %d/%d words do not fit %d bases", len(words), len(amb), n)
	}
	return &Packed{words: words, amb: amb, n: n}, nil
}

// Unpack reconstructs the base-code sequence. Ambiguous positions come
// back as BadBase: every non-ACGT source character canonicalizes to the
// same sentinel, so Pack(p.Unpack()) reproduces p exactly.
func (p *Packed) Unpack() Seq {
	out := make(Seq, p.n)
	for i := range out {
		out[i] = p.Base(i)
	}
	return out
}

// Kmer encodes the width bases starting at pos as a 2-bit integer key
// (base 0 in the most significant lanes so lexicographic order is numeric
// order). ok is false if any position in the window is ambiguous.
// width must be <= 31.
func (p *Packed) Kmer(pos, width int) (key uint64, ok bool) {
	codes, amb := p.Window(pos, width)
	if amb != 0 {
		return 0, false
	}
	var k uint64
	for j := 0; j < width; j++ {
		k = k<<2 | (codes >> uint(2*j) & 3)
	}
	return k, true
}

// KmerOf encodes a concrete Seq as a 2-bit key using the same orientation
// as Packed.Kmer. ok is false if s contains BadBase. len(s) must be <= 31.
func KmerOf(s Seq) (key uint64, ok bool) {
	var k uint64
	for _, b := range s {
		if b == BadBase {
			return 0, false
		}
		k = k<<2 | uint64(b)
	}
	return k, true
}
