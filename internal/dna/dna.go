// Package dna provides the nucleotide alphabet used throughout the
// off-target search pipeline: 2-bit base codes, 4-bit degenerate (IUPAC)
// masks, reverse complements, and 2-bit packed sequence storage.
//
// Two encodings coexist:
//
//   - Base codes (A=0, C=1, G=2, T=3) are the dense alphabet every scan
//     engine consumes. Ambiguous input characters (N and friends) are
//     mapped to the sentinel BadBase and excluded from matching, which is
//     what Cas-OFFinder and CasOT do with N runs in the reference.
//   - IUPAC masks are 4-bit sets over {A,C,G,T} used for degenerate PAM
//     patterns (NGG, NRG, NAG, ...) and for automata character classes.
package dna

import (
	"fmt"
	"strings"
)

// Base is a 2-bit nucleotide code: A=0, C=1, G=2, T=3.
type Base uint8

// The four concrete bases, in the canonical encoding order.
const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3

	// BadBase marks an input character that is not a concrete nucleotide
	// (N, IUPAC ambiguity codes, gaps, garbage). Engines treat positions
	// holding BadBase as matching nothing.
	BadBase Base = 0xFF

	// AlphabetSize is the size of the dense scan alphabet.
	AlphabetSize = 4
)

// Mask is a 4-bit set of bases: bit i set means Base(i) is in the set.
// It is the character-class representation for automata states and
// degenerate PAM symbols.
type Mask uint8

// Common masks.
const (
	MaskA   Mask = 1 << A
	MaskC   Mask = 1 << C
	MaskG   Mask = 1 << G
	MaskT   Mask = 1 << T
	MaskAny Mask = MaskA | MaskC | MaskG | MaskT // IUPAC N
	MaskNil Mask = 0
)

// baseFromChar maps ASCII to Base; initialized in init.
var baseFromChar [256]Base

// maskFromChar maps ASCII (including IUPAC codes) to Mask; 0 = invalid.
var maskFromChar [256]Mask

// charFromBase is the canonical upper-case letter for each base code.
var charFromBase = [4]byte{'A', 'C', 'G', 'T'}

// iupacFromMask maps each of the 16 masks back to its IUPAC letter.
var iupacFromMask = [16]byte{
	0:                             '-', // empty set has no IUPAC letter
	MaskA:                         'A',
	MaskC:                         'C',
	MaskG:                         'G',
	MaskT:                         'T',
	MaskA | MaskG:                 'R', // puRine
	MaskC | MaskT:                 'Y', // pYrimidine
	MaskG | MaskC:                 'S', // Strong
	MaskA | MaskT:                 'W', // Weak
	MaskG | MaskT:                 'K', // Keto
	MaskA | MaskC:                 'M', // aMino
	MaskC | MaskG | MaskT:         'B', // not A
	MaskA | MaskG | MaskT:         'D', // not C
	MaskA | MaskC | MaskT:         'H', // not G
	MaskA | MaskC | MaskG:         'V', // not T
	MaskA | MaskC | MaskG | MaskT: 'N',
}

func init() {
	for i := range baseFromChar {
		baseFromChar[i] = BadBase
	}
	set := func(ch byte, b Base) {
		baseFromChar[ch] = b
		baseFromChar[ch|0x20] = b // lower case
	}
	set('A', A)
	set('C', C)
	set('G', G)
	set('T', T)
	set('U', T) // RNA uracil reads as T

	for m, ch := range iupacFromMask {
		if ch == '-' || ch == 0 {
			continue
		}
		maskFromChar[ch] = Mask(m)
		maskFromChar[ch|0x20] = Mask(m)
	}
	maskFromChar['U'] = MaskT
	maskFromChar['u'] = MaskT
}

// BaseFromChar converts an ASCII nucleotide letter (either case, U allowed)
// to its 2-bit code, or BadBase for anything else (including IUPAC
// ambiguity codes: a concrete scan alphabet has no room for them).
func BaseFromChar(ch byte) Base { return baseFromChar[ch] }

// Char returns the canonical upper-case letter for b, or 'N' for BadBase.
func (b Base) Char() byte {
	if b > T {
		return 'N'
	}
	return charFromBase[b]
}

// Complement returns the Watson-Crick complement. BadBase complements to
// itself.
func (b Base) Complement() Base {
	if b > T {
		return BadBase
	}
	return 3 - b // A<->T, C<->G under the 2-bit encoding
}

// Mask returns the singleton mask for b, or MaskNil for BadBase.
func (b Base) Mask() Mask {
	if b > T {
		return MaskNil
	}
	return 1 << b
}

// MaskFromChar converts an ASCII IUPAC letter to its base set, or MaskNil
// if the letter is not a valid IUPAC nucleotide code.
func MaskFromChar(ch byte) Mask { return maskFromChar[ch] }

// Has reports whether base b is in the set.
func (m Mask) Has(b Base) bool {
	return b <= T && m&(1<<b) != 0
}

// Complement returns the set of complements of the members of m.
// (For example R = {A,G} complements to Y = {T,C}.)
func (m Mask) Complement() Mask {
	var out Mask
	for b := A; b <= T; b++ {
		if m.Has(b) {
			out |= 1 << b.Complement()
		}
	}
	return out
}

// Count returns the number of bases in the set.
func (m Mask) Count() int {
	n := 0
	for b := A; b <= T; b++ {
		if m.Has(b) {
			n++
		}
	}
	return n
}

// Char returns the IUPAC letter for the set ('-' for the empty set).
func (m Mask) Char() byte { return iupacFromMask[m&0xF] }

// String implements fmt.Stringer.
func (m Mask) String() string { return string(m.Char()) }

// Seq is a dense base-code sequence. Positions holding BadBase represent
// ambiguous reference characters.
type Seq []Base

// ParseSeq converts an ASCII sequence to base codes. Characters that are
// not concrete nucleotides become BadBase; the bad count is returned so
// callers can decide whether that is acceptable.
func ParseSeq(s string) (Seq, int) {
	out := make(Seq, len(s))
	bad := 0
	for i := 0; i < len(s); i++ {
		b := baseFromChar[s[i]]
		out[i] = b
		if b == BadBase {
			bad++
		}
	}
	return out, bad
}

// MustParseSeq is ParseSeq but panics on any non-concrete character.
// Intended for literals in tests and examples.
func MustParseSeq(s string) Seq {
	seq, bad := ParseSeq(s)
	if bad != 0 {
		panic(fmt.Sprintf("dna: sequence %q contains %d non-ACGT characters", s, bad))
	}
	return seq
}

// String renders the sequence as upper-case ASCII with N for BadBase.
func (s Seq) String() string {
	var sb strings.Builder
	sb.Grow(len(s))
	for _, b := range s {
		sb.WriteByte(b.Char())
	}
	return sb.String()
}

// ReverseComplement returns a new sequence that is the reverse complement
// of s.
func (s Seq) ReverseComplement() Seq {
	out := make(Seq, len(s))
	for i, b := range s {
		out[len(s)-1-i] = b.Complement()
	}
	return out
}

// HasAmbiguous reports whether s contains any BadBase position. Scan
// engines never report windows containing ambiguous bases; oracles use
// this to apply the same rule.
func (s Seq) HasAmbiguous() bool {
	for _, b := range s {
		if b == BadBase {
			return true
		}
	}
	return false
}

// Clone returns a copy of s.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// Pattern is a degenerate sequence: one base set per position. It is the
// representation for PAMs and for guide+PAM search patterns.
type Pattern []Mask

// ParsePattern converts an IUPAC string to a Pattern. It returns an error
// if any character is not a valid IUPAC nucleotide code.
func ParsePattern(s string) (Pattern, error) {
	out := make(Pattern, len(s))
	for i := 0; i < len(s); i++ {
		m := maskFromChar[s[i]]
		if m == MaskNil {
			return nil, fmt.Errorf("dna: invalid IUPAC character %q at position %d in %q", s[i], i, s)
		}
		out[i] = m
	}
	return out, nil
}

// MustParsePattern is ParsePattern but panics on error.
func MustParsePattern(s string) Pattern {
	p, err := ParsePattern(s)
	if err != nil {
		panic(err)
	}
	return p
}

// PatternFromSeq lifts a concrete sequence into a Pattern of singletons.
// BadBase positions become N (match anything), mirroring how gRNA spacers
// with leading N are treated by off-target tools.
func PatternFromSeq(s Seq) Pattern {
	out := make(Pattern, len(s))
	for i, b := range s {
		if b == BadBase {
			out[i] = MaskAny
		} else {
			out[i] = b.Mask()
		}
	}
	return out
}

// String renders the pattern in IUPAC letters.
func (p Pattern) String() string {
	var sb strings.Builder
	sb.Grow(len(p))
	for _, m := range p {
		sb.WriteByte(m.Char())
	}
	return sb.String()
}

// ReverseComplement returns the reverse-complement pattern (for scanning
// the forward strand against minus-strand sites).
func (p Pattern) ReverseComplement() Pattern {
	out := make(Pattern, len(p))
	for i, m := range p {
		out[len(p)-1-i] = m.Complement()
	}
	return out
}

// Matches reports whether the concrete window w (len(w) must equal len(p))
// is a member of the pattern's language.
func (p Pattern) Matches(w Seq) bool {
	if len(w) != len(p) {
		return false
	}
	for i, m := range p {
		if !m.Has(w[i]) {
			return false
		}
	}
	return true
}

// Mismatches counts the positions of w not covered by p, treating BadBase
// as a mismatch everywhere. len(w) must equal len(p).
func (p Pattern) Mismatches(w Seq) int {
	n := 0
	for i, m := range p {
		if !m.Has(w[i]) {
			n++
		}
	}
	return n
}
