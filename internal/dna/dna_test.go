package dna

import (
	"testing"
	"testing/quick"
)

func TestBaseFromChar(t *testing.T) {
	cases := []struct {
		ch   byte
		want Base
	}{
		{'A', A}, {'a', A}, {'C', C}, {'c', C},
		{'G', G}, {'g', G}, {'T', T}, {'t', T},
		{'U', T}, {'u', T},
		{'N', BadBase}, {'n', BadBase}, {'R', BadBase},
		{'-', BadBase}, {'X', BadBase}, {0, BadBase}, {' ', BadBase},
	}
	for _, c := range cases {
		if got := BaseFromChar(c.ch); got != c.want {
			t.Errorf("BaseFromChar(%q) = %v, want %v", c.ch, got, c.want)
		}
	}
}

func TestBaseComplement(t *testing.T) {
	pairs := map[Base]Base{A: T, T: A, C: G, G: C}
	for b, want := range pairs {
		if got := b.Complement(); got != want {
			t.Errorf("%c.Complement() = %c, want %c", b.Char(), got.Char(), want.Char())
		}
	}
	if BadBase.Complement() != BadBase {
		t.Error("BadBase must complement to itself")
	}
}

func TestMaskFromChar(t *testing.T) {
	cases := []struct {
		ch   byte
		want Mask
	}{
		{'A', MaskA}, {'C', MaskC}, {'G', MaskG}, {'T', MaskT},
		{'R', MaskA | MaskG}, {'Y', MaskC | MaskT},
		{'S', MaskC | MaskG}, {'W', MaskA | MaskT},
		{'K', MaskG | MaskT}, {'M', MaskA | MaskC},
		{'B', MaskC | MaskG | MaskT}, {'D', MaskA | MaskG | MaskT},
		{'H', MaskA | MaskC | MaskT}, {'V', MaskA | MaskC | MaskG},
		{'N', MaskAny}, {'n', MaskAny},
		{'U', MaskT},
		{'X', MaskNil}, {'-', MaskNil}, {'8', MaskNil},
	}
	for _, c := range cases {
		if got := MaskFromChar(c.ch); got != c.want {
			t.Errorf("MaskFromChar(%q) = %04b, want %04b", c.ch, got, c.want)
		}
	}
}

func TestMaskRoundTrip(t *testing.T) {
	// Every nonempty mask must render to a letter that parses back to it.
	for m := Mask(1); m <= MaskAny; m++ {
		ch := m.Char()
		if got := MaskFromChar(ch); got != m {
			t.Errorf("mask %04b -> %q -> %04b", m, ch, got)
		}
	}
}

func TestMaskComplement(t *testing.T) {
	cases := map[byte]byte{'A': 'T', 'R': 'Y', 'S': 'S', 'W': 'W', 'N': 'N', 'B': 'V', 'M': 'K'}
	for in, want := range cases {
		got := MaskFromChar(in).Complement().Char()
		if got != want {
			t.Errorf("complement(%c) = %c, want %c", in, got, want)
		}
	}
}

func TestMaskCount(t *testing.T) {
	if MaskAny.Count() != 4 || MaskA.Count() != 1 || MaskNil.Count() != 0 {
		t.Error("Mask.Count basic cases wrong")
	}
	if MaskFromChar('R').Count() != 2 || MaskFromChar('B').Count() != 3 {
		t.Error("Mask.Count degenerate cases wrong")
	}
}

func TestParseSeq(t *testing.T) {
	seq, bad := ParseSeq("ACGTNacgtn")
	if bad != 2 {
		t.Fatalf("bad = %d, want 2", bad)
	}
	want := "ACGTNACGTN"
	if seq.String() != want {
		t.Errorf("round-trip = %q, want %q", seq.String(), want)
	}
}

func TestMustParseSeqPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseSeq(\"ACGN\") should panic")
		}
	}()
	MustParseSeq("ACGN")
}

func TestReverseComplement(t *testing.T) {
	cases := map[string]string{
		"ACGT":    "ACGT",
		"AAAA":    "TTTT",
		"GATTACA": "TGTAATC",
		"":        "",
		"G":       "C",
	}
	for in, want := range cases {
		got := MustParseSeq(in).ReverseComplement().String()
		if got != want {
			t.Errorf("revcomp(%s) = %s, want %s", in, got, want)
		}
	}
}

func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		seq := make(Seq, len(raw))
		for i, r := range raw {
			seq[i] = Base(r % 4)
		}
		return seq.ReverseComplement().ReverseComplement().String() == seq.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPatternParseAndMatch(t *testing.T) {
	p, err := ParsePattern("NGG")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []string{"AGG", "CGG", "GGG", "TGG"} {
		if !p.Matches(MustParseSeq(s)) {
			t.Errorf("NGG should match %s", s)
		}
	}
	for _, s := range []string{"GAG", "GGA", "TTT"} {
		if p.Matches(MustParseSeq(s)) {
			t.Errorf("NGG should not match %s", s)
		}
	}
	if p.Matches(MustParseSeq("AG")) {
		t.Error("length mismatch must not match")
	}
}

func TestParsePatternError(t *testing.T) {
	if _, err := ParsePattern("NGX"); err == nil {
		t.Error("expected error for invalid IUPAC letter")
	}
}

func TestPatternReverseComplement(t *testing.T) {
	// NGG reverse-complements to CCN.
	got := MustParsePattern("NGG").ReverseComplement().String()
	if got != "CCN" {
		t.Errorf("revcomp(NGG) = %s, want CCN", got)
	}
	got = MustParsePattern("NRG").ReverseComplement().String()
	if got != "CYN" {
		t.Errorf("revcomp(NRG) = %s, want CYN", got)
	}
}

func TestPatternMismatches(t *testing.T) {
	p := PatternFromSeq(MustParseSeq("ACGT"))
	if n := p.Mismatches(MustParseSeq("ACGT")); n != 0 {
		t.Errorf("mismatches = %d, want 0", n)
	}
	if n := p.Mismatches(MustParseSeq("TCGA")); n != 2 {
		t.Errorf("mismatches = %d, want 2", n)
	}
	seq, _ := ParseSeq("ACGN")
	if n := p.Mismatches(seq); n != 1 {
		t.Errorf("ambiguous base must mismatch; got %d, want 1", n)
	}
}

func TestPatternFromSeqAmbiguous(t *testing.T) {
	seq, _ := ParseSeq("NAC")
	p := PatternFromSeq(seq)
	if p[0] != MaskAny {
		t.Error("BadBase in a guide must lift to N (match anything)")
	}
	if p.String() != "NAC" {
		t.Errorf("pattern = %s, want NAC", p.String())
	}
}
