// Package arch defines the abstractions shared by every execution
// platform in the study: the scan-engine interface the orchestrator
// drives, the timing breakdown every platform reports, and resource
// accounting for spatial architectures.
//
// The paper evaluates six systems. Two baselines (Cas-OFFinder, CasOT)
// and the automata CPU engine (the HyperScan stand-in) execute for real
// and are wall-clock measured; the three accelerator platforms (Micron
// AP, FPGA, iNFAnt2 on GPU) are analytic models whose device constants
// come from published specifications, executed functionally through the
// shared automata simulator. Both kinds expose the same interfaces here
// so the benchmark harness treats them uniformly.
package arch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// PatternSpec is the engine-independent description of one search
// pattern: a spacer matched with up to K mismatches plus an exactly
// matched PAM. Code is the event code reported for matches (the
// orchestrator assigns guideIndex*2 + strand).
//
// Both fields are in plus-strand window order. A plus-strand site reads
// spacer-then-PAM; a minus-strand site's plus-strand window reads
// revcomp(PAM)-then-revcomp(spacer), which the orchestrator expresses as
// a spec with PAMLeft set and both parts reverse-complemented. Engines
// therefore scan the forward genome once and cover both strands.
type PatternSpec struct {
	Spacer dna.Pattern
	PAM    dna.Pattern
	// PAMLeft places the PAM before the spacer in the window
	// (minus-strand patterns).
	PAMLeft bool
	K       int
	Code    int32
}

// SiteLen returns the full window length (spacer plus PAM).
func (p PatternSpec) SiteLen() int { return len(p.Spacer) + len(p.PAM) }

// Window returns the full degenerate window pattern in scan order.
func (p PatternSpec) Window() dna.Pattern {
	if p.PAMLeft {
		return append(append(dna.Pattern{}, p.PAM...), p.Spacer...)
	}
	return append(append(dna.Pattern{}, p.Spacer...), p.PAM...)
}

// SpacerOffset returns the window index where the spacer begins.
func (p PatternSpec) SpacerOffset() int {
	if p.PAMLeft {
		return len(p.PAM)
	}
	return 0
}

// PAMOffset returns the window index where the PAM begins.
func (p PatternSpec) PAMOffset() int {
	if p.PAMLeft {
		return 0
	}
	return len(p.Spacer)
}

// MinusSpec derives the minus-strand spec for a plus-strand spec: both
// parts reverse-complemented, PAM side flipped, and the code set to the
// given value.
func (p PatternSpec) MinusSpec(code int32) PatternSpec {
	return PatternSpec{
		Spacer:  p.Spacer.ReverseComplement(),
		PAM:     p.PAM.ReverseComplement(),
		PAMLeft: !p.PAMLeft,
		K:       p.K,
		Code:    code,
	}
}

// Engine scans chromosomes and emits match events. Event codes are
// assigned by the caller at compile time (conventionally
// guideIndex*2 + strand).
type Engine interface {
	// Name identifies the engine in tables ("hyperscan", "casot", ...).
	Name() string
	// ScanChrom scans one chromosome and emits every match event.
	// End positions are 0-based indices of the last matched base.
	ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error
}

// ContextEngine is implemented by engines that can honor cancellation
// mid-chromosome. The orchestrator prefers this interface when present;
// engines without it are only cancellable between chromosomes.
type ContextEngine interface {
	Engine
	// ScanChromContext is ScanChrom bounded by ctx: the scan stops at
	// the next internal chunk boundary once ctx is done and returns an
	// error wrapping ctx.Err(). No events are emitted for an aborted
	// chromosome.
	ScanChromContext(ctx context.Context, c *genome.Chromosome, emit func(automata.Report)) error
}

// ScanChrom dispatches a chromosome scan through ScanChromContext when
// the engine implements it, falling back to the plain interface (which
// then only honors ctx between chromosomes, at the caller's checks).
func ScanChrom(ctx context.Context, e Engine, c *genome.Chromosome, emit func(automata.Report)) error {
	if ce, ok := e.(ContextEngine); ok {
		return ce.ScanChromContext(ctx, c, emit)
	}
	return e.ScanChrom(c, emit)
}

// Instrumented is implemented by engines that report execution metrics
// (counters, per-chunk latency, modeled device-time steps) into a
// shared recorder. The orchestrator installs its recorder on every
// engine that supports it before scanning starts.
type Instrumented interface {
	Engine
	// SetMetrics installs the recorder the engine reports into; nil
	// detaches instrumentation. Must be called before scanning starts
	// (engines read the recorder without synchronization).
	SetMetrics(*metrics.Recorder)
}

// SetMetrics installs rec on e when the engine is Instrumented and is
// a no-op otherwise.
func SetMetrics(e Engine, rec *metrics.Recorder) {
	if ie, ok := e.(Instrumented); ok {
		ie.SetMetrics(rec)
	}
}

// DefaultChunk is the work-unit size, in input positions, that
// ChunkScan hands to pool workers. It bounds both cancellation latency
// (ctx is checked between chunks) and the blast radius of a worker
// panic (the error names one chunk).
const DefaultChunk = 1 << 16

// ChunkScan partitions the position range [0, total) into fixed-size
// chunks and drains them through a pool of worker goroutines. It is the
// one place the data-parallel CPU engines spawn goroutines, so the
// robustness invariants live here once:
//
//   - ctx is checked before every chunk; once it is done, workers stop
//     and the pool returns an error wrapping ctx.Err();
//   - a panic inside scan is recovered, converted to an error carrying
//     the offending chunk's coordinates, and cancels the sibling
//     workers — a scan bug degrades to an error, never a process crash;
//   - on success the per-chunk event batches are returned in chunk
//     order, so emission order is deterministic regardless of worker
//     interleaving. On any error no events are returned.
//
// It is also the pool's single instrumentation point: when rec is
// non-nil every chunk dispatch is counted, its latency lands in the
// recorder's histogram sketch (and, with a tracer attached, as one
// span per chunk), and recovered worker panics are counted. A nil rec
// costs one nil check per chunk.
//
// scan is called with [lo, hi) chunk bounds and appends its events to
// *out; it must not retain out across calls.
func ChunkScan(ctx context.Context, label string, workers, total, chunkSize int, rec *metrics.Recorder, scan func(lo, hi int, out *[]automata.Report) error) ([][]automata.Report, error) {
	if total <= 0 {
		return nil, nil
	}
	if chunkSize <= 0 {
		chunkSize = DefaultChunk
	}
	n := (total + chunkSize - 1) / chunkSize
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	traced := rec.Traced()
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([][]automata.Report, n)
	errs := make([]error, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := cctx.Err(); err != nil {
					errs[w] = fmt.Errorf("arch: %s canceled at chunk %d/%d: %w", label, i, n, err)
					return
				}
				lo := i * chunkSize
				hi := lo + chunkSize
				if hi > total {
					hi = total
				}
				chunkLabel := label
				if traced {
					chunkLabel = fmt.Sprintf("%s chunk %d", label, i)
				}
				endChunk := rec.StartChunk(chunkLabel, int64(hi-lo))
				err := runChunk(label, i, lo, hi, rec, scan, &out[i])
				endChunk()
				if err != nil {
					errs[w] = err
					cancel()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := firstScanError(errs); err != nil {
		return nil, err
	}
	return out, nil
}

// Recovered runs fn under the module's one panic guard: a panic inside
// fn is counted in rec (CounterPanicsRecovered) and converted to the
// error wrap builds from the recovered value, so a scan bug degrades to
// an error instead of a process crash. ChunkScan routes every worker
// chunk through it; the scan service reuses it for whole-job isolation.
func Recovered(rec *metrics.Recorder, wrap func(r any) error, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			rec.Add(metrics.CounterPanicsRecovered, 1)
			err = wrap(r)
		}
	}()
	return fn()
}

// runChunk executes one chunk under the shared panic guard.
func runChunk(label string, idx, lo, hi int, rec *metrics.Recorder, scan func(lo, hi int, out *[]automata.Report) error, out *[]automata.Report) error {
	return Recovered(rec, func(r any) error {
		return fmt.Errorf("arch: %s: worker panic on chunk %d [%d:%d): %v", label, idx, lo, hi, r)
	}, func() error {
		return scan(lo, hi, out)
	})
}

// firstScanError picks the error to surface from a pool run: a real
// failure (panic or scan error) beats the cancellation errors the
// sibling workers report after cancel() fires.
func firstScanError(errs []error) error {
	var ctxErr error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if errors.Is(e, context.Canceled) || errors.Is(e, context.DeadlineExceeded) {
			if ctxErr == nil {
				ctxErr = e
			}
			continue
		}
		return e
	}
	return ctxErr
}

// Modeled is implemented by platform models that, in addition to
// functional execution, predict device timing analytically.
type Modeled interface {
	Engine
	// EstimateBreakdown predicts the device-time breakdown for scanning
	// inputLen bases producing reportCount match events.
	EstimateBreakdown(inputLen, reportCount int) Breakdown
	// Resources reports spatial resource usage after compilation.
	Resources() ResourceUsage
}

// Breakdown is the per-phase time decomposition the paper's end-to-end
// figures use. All values are seconds of modeled (or measured) time.
type Breakdown struct {
	Compile  float64 // pattern compilation / synthesis / placement
	Transfer float64 // host-to-device input streaming overhead
	Kernel   float64 // the scan itself
	Report   float64 // report extraction and post-processing
}

// Total sums every phase.
func (b Breakdown) Total() float64 {
	return b.Compile + b.Transfer + b.Kernel + b.Report
}

// Add accumulates another breakdown (used when a scan needs multiple
// passes or covers multiple chromosomes).
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		Compile:  b.Compile + o.Compile,
		Transfer: b.Transfer + o.Transfer,
		Kernel:   b.Kernel + o.Kernel,
		Report:   b.Report + o.Report,
	}
}

// Online returns the on-line time (everything but the one-time compile)
// without transfer overlap: transfer + kernel + report.
func (b Breakdown) Online() float64 { return b.Transfer + b.Kernel + b.Report }

// OnlineOverlapped returns the on-line time assuming the host streams
// input concurrently with kernel execution (double buffering) — one of
// the paper's proposed improvements for the spatial platforms, whose
// transfer often rivals their kernel (E6). The slower of the two
// pipelines binds; reports drain afterwards.
func (b Breakdown) OnlineOverlapped() float64 {
	slower := b.Transfer
	if b.Kernel > slower {
		slower = b.Kernel
	}
	return slower + b.Report
}

// String renders the breakdown compactly for tables.
func (b Breakdown) String() string {
	return fmt.Sprintf("compile=%s transfer=%s kernel=%s report=%s total=%s",
		Seconds(b.Compile), Seconds(b.Transfer), Seconds(b.Kernel), Seconds(b.Report), Seconds(b.Total()))
}

// Seconds formats a float second count using time.Duration rendering.
func Seconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}

// ResourceUsage reports how much of a spatial device a compiled workload
// occupies.
type ResourceUsage struct {
	// States is the automaton state count mapped onto the device
	// (STEs on the AP, LUT/FF pairs on the FPGA).
	States int
	// Capacity is the device's total state capacity per pass.
	Capacity int
	// Passes is ceil(States / Capacity): how many times the input must
	// be streamed because the workload exceeds one configuration.
	Passes int
	// ReportStates counts reporting states (the AP's output resource).
	ReportStates int
}

// Utilization is the occupied fraction of the final pass's device.
func (r ResourceUsage) Utilization() float64 {
	if r.Capacity == 0 {
		return 0
	}
	return float64(r.States) / float64(r.Capacity*maxInt(r.Passes, 1))
}

// PassesFor computes the pass count for a state demand and capacity.
func PassesFor(states, capacity int) int {
	if capacity <= 0 || states <= 0 {
		return 1
	}
	return (states + capacity - 1) / capacity
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// MeasuredSeconds runs fn once and returns wall-clock seconds; the
// harness uses it for the measured engines. It delegates to the
// metrics package's monotonic clock — the modeled platforms themselves
// must stay analytic (see the clockguard analyzer).
func MeasuredSeconds(fn func() error) (float64, error) {
	return metrics.MeasureSeconds(fn)
}
