package arch

import (
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
)

func TestPatternSpecWindowRight(t *testing.T) {
	p := PatternSpec{
		Spacer: dna.MustParsePattern("ACGT"),
		PAM:    dna.MustParsePattern("NGG"),
	}
	if p.SiteLen() != 7 {
		t.Errorf("SiteLen = %d", p.SiteLen())
	}
	if got := p.Window().String(); got != "ACGTNGG" {
		t.Errorf("Window = %s", got)
	}
	if p.SpacerOffset() != 0 || p.PAMOffset() != 4 {
		t.Errorf("offsets = %d, %d", p.SpacerOffset(), p.PAMOffset())
	}
}

func TestPatternSpecWindowLeft(t *testing.T) {
	p := PatternSpec{
		Spacer:  dna.MustParsePattern("ACGT"),
		PAM:     dna.MustParsePattern("CCN"),
		PAMLeft: true,
	}
	if got := p.Window().String(); got != "CCNACGT" {
		t.Errorf("Window = %s", got)
	}
	if p.SpacerOffset() != 3 || p.PAMOffset() != 0 {
		t.Errorf("offsets = %d, %d", p.SpacerOffset(), p.PAMOffset())
	}
}

func TestMinusSpec(t *testing.T) {
	plus := PatternSpec{
		Spacer: dna.MustParsePattern("AACG"),
		PAM:    dna.MustParsePattern("NGG"),
		K:      2, Code: 4,
	}
	minus := plus.MinusSpec(5)
	if minus.Spacer.String() != "CGTT" {
		t.Errorf("minus spacer = %s", minus.Spacer)
	}
	if minus.PAM.String() != "CCN" {
		t.Errorf("minus PAM = %s", minus.PAM)
	}
	if !minus.PAMLeft || minus.K != 2 || minus.Code != 5 {
		t.Errorf("minus spec = %+v", minus)
	}
	// The minus window must be the reverse complement of the plus one.
	if got, want := minus.Window().String(), plus.Window().ReverseComplement().String(); got != want {
		t.Errorf("minus window %s != revcomp(plus window) %s", got, want)
	}
	// Double inversion round-trips.
	back := minus.MinusSpec(4)
	if back.Spacer.String() != plus.Spacer.String() || back.PAMLeft {
		t.Errorf("double MinusSpec: %+v", back)
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{Compile: 1, Transfer: 2, Kernel: 3, Report: 4}
	if b.Total() != 10 {
		t.Errorf("Total = %f", b.Total())
	}
	sum := b.Add(Breakdown{Kernel: 1})
	if sum.Kernel != 4 || sum.Compile != 1 {
		t.Errorf("Add = %+v", sum)
	}
	s := b.String()
	for _, want := range []string{"compile=", "kernel=", "total="} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q: %s", want, s)
		}
	}
}

func TestResourceUsage(t *testing.T) {
	r := ResourceUsage{States: 50, Capacity: 100, Passes: 1}
	if r.Utilization() != 0.5 {
		t.Errorf("util = %f", r.Utilization())
	}
	multi := ResourceUsage{States: 250, Capacity: 100, Passes: 3}
	if u := multi.Utilization(); u < 0.82 || u > 0.85 {
		t.Errorf("multi-pass util = %f", u)
	}
	if (ResourceUsage{}).Utilization() != 0 {
		t.Error("zero capacity must not divide by zero")
	}
}

func TestPassesFor(t *testing.T) {
	cases := []struct{ states, cap, want int }{
		{0, 100, 1}, {1, 100, 1}, {100, 100, 1}, {101, 100, 2}, {250, 100, 3}, {5, 0, 1},
	}
	for _, c := range cases {
		if got := PassesFor(c.states, c.cap); got != c.want {
			t.Errorf("PassesFor(%d,%d) = %d, want %d", c.states, c.cap, got, c.want)
		}
	}
}

func TestMeasuredSeconds(t *testing.T) {
	sec, err := MeasuredSeconds(func() error { return nil })
	if err != nil || sec < 0 {
		t.Errorf("sec=%f err=%v", sec, err)
	}
}

func TestSeconds(t *testing.T) {
	if Seconds(1.5) != "1.5s" {
		t.Errorf("Seconds(1.5) = %s", Seconds(1.5))
	}
	if !strings.Contains(Seconds(0.000002), "µ") && !strings.Contains(Seconds(0.000002), "us") {
		t.Errorf("Seconds(2us) = %s", Seconds(0.000002))
	}
}

func TestBreakdownOnline(t *testing.T) {
	b := Breakdown{Compile: 100, Transfer: 3, Kernel: 2, Report: 1}
	if b.Online() != 6 {
		t.Errorf("Online = %f", b.Online())
	}
	if b.OnlineOverlapped() != 4 { // max(3,2)+1
		t.Errorf("OnlineOverlapped = %f", b.OnlineOverlapped())
	}
	fast := Breakdown{Transfer: 1, Kernel: 5, Report: 0}
	if fast.OnlineOverlapped() != 5 {
		t.Errorf("kernel-bound overlap = %f", fast.OnlineOverlapped())
	}
}
