package fasta

import (
	"bytes"
	"compress/gzip"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadBasic(t *testing.T) {
	in := ">chr1 test chromosome\nACGT\nacgt\n>chr2\nTTTT\n"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].ID != "chr1" || recs[0].Description != "test chromosome" {
		t.Errorf("header parse: %q / %q", recs[0].ID, recs[0].Description)
	}
	if string(recs[0].Seq) != "ACGTacgt" {
		t.Errorf("seq = %q", recs[0].Seq)
	}
	if recs[1].ID != "chr2" || string(recs[1].Seq) != "TTTT" {
		t.Errorf("record 2 wrong: %+v", recs[1])
	}
}

func TestReadCRLFAndNoTrailingNewline(t *testing.T) {
	in := ">a\r\nAC\r\nGT\r\n>b\r\nGG"
	recs, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || string(recs[0].Seq) != "ACGT" || string(recs[1].Seq) != "GG" {
		t.Errorf("CRLF parse wrong: %+v", recs)
	}
}

func TestReadEmptyAndBlankLines(t *testing.T) {
	recs, err := ReadAll(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Errorf("empty input: recs=%v err=%v", recs, err)
	}
	recs, err = ReadAll(strings.NewReader(">a\n\nAC\n\nGT\n\n"))
	if err != nil || len(recs) != 1 || string(recs[0].Seq) != "ACGT" {
		t.Errorf("blank lines: recs=%+v err=%v", recs, err)
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := ReadAll(strings.NewReader("ACGT\n")); err == nil {
		t.Error("sequence before header must error")
	}
	if _, err := ReadAll(strings.NewReader(">\nACGT\n")); err == nil {
		t.Error("empty ID must error")
	}
	if _, err := ReadAll(strings.NewReader(">a\nAC>GT\n")); err == nil {
		t.Error("'>' inside sequence must error")
	}
}

func TestStreamingNext(t *testing.T) {
	r := NewReader(strings.NewReader(">a\nAA\n>b\nCC\n"))
	rec, err := r.Next()
	if err != nil || rec.ID != "a" {
		t.Fatalf("first: %v %v", rec, err)
	}
	rec, err = r.Next()
	if err != nil || rec.ID != "b" {
		t.Fatalf("second: %v %v", rec, err)
	}
	if _, err = r.Next(); err != io.EOF {
		t.Fatalf("want io.EOF, got %v", err)
	}
	if _, err = r.Next(); err != io.EOF {
		t.Fatalf("Next after EOF must keep returning io.EOF, got %v", err)
	}
}

func TestWriteWrapAndRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	letters := []byte("ACGTN")
	var recs []*Record
	for i := 0; i < 5; i++ {
		seq := make([]byte, rng.Intn(500))
		for j := range seq {
			seq[j] = letters[rng.Intn(len(letters))]
		}
		recs = append(recs, &Record{ID: string(rune('a' + i)), Description: "d", Seq: seq})
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, 60)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 61 {
			t.Fatalf("line longer than wrap: %q", line)
		}
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip count: %d != %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].ID != recs[i].ID || !bytes.Equal(got[i].Seq, recs[i].Seq) {
			t.Errorf("record %d differs after round trip", i)
		}
	}
}

func TestWriteEmptyIDFails(t *testing.T) {
	w := NewWriter(io.Discard, 0)
	if err := w.Write(&Record{Seq: []byte("A")}); err == nil {
		t.Error("empty ID must fail")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fa")
	in := []*Record{{ID: "chr1", Seq: []byte("ACGTACGT")}, {ID: "chr2", Seq: []byte("GG")}}
	if err := WriteFile(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || string(out[0].Seq) != "ACGTACGT" || out[1].ID != "chr2" {
		t.Errorf("file round trip wrong: %+v", out)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.fa")); err == nil {
		t.Error("missing file must error")
	}
}

func TestReadFileGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fa.gz")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if _, err := gz.Write([]byte(">chrZ\nACGTACGT\n")); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "chrZ" || string(recs[0].Seq) != "ACGTACGT" {
		t.Errorf("gzip read: %+v", recs)
	}
	// A corrupt gzip header after the magic must error, not panic.
	bad := filepath.Join(dir, "bad.fa.gz")
	if err := os.WriteFile(bad, []byte{0x1f, 0x8b, 0x00}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("corrupt gzip must error")
	}
}
