// Package fasta reads and writes FASTA files. It is deliberately small:
// multi-record files, free line lengths, '>' headers with the first word
// taken as the record ID, and tolerant of Windows line endings. This is
// the on-disk interchange format between cmd/genomegen and cmd/offtarget,
// and the loader for real reference genomes.
package fasta

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
)

// Record is one FASTA entry.
type Record struct {
	ID          string // first whitespace-delimited token after '>'
	Description string // remainder of the header line, if any
	Seq         []byte // raw sequence bytes, newlines stripped
}

// Reader streams records from FASTA input.
type Reader struct {
	br      *bufio.Reader
	pending []byte // header line of the next record, without '>'
	done    bool
	lineNo  int
}

// NewReader wraps r for FASTA parsing.
func NewReader(r io.Reader) *Reader {
	return &Reader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Next returns the next record, or io.EOF when input is exhausted.
func (r *Reader) Next() (*Record, error) {
	if r.done {
		return nil, io.EOF
	}
	header := r.pending
	r.pending = nil
	var seq bytes.Buffer
	for {
		line, err := r.br.ReadBytes('\n')
		r.lineNo++
		line = bytes.TrimRight(line, "\r\n")
		switch {
		case len(line) > 0 && line[0] == '>':
			if header == nil && seq.Len() == 0 {
				header = append([]byte(nil), line[1:]...)
				continue
			}
			r.pending = append([]byte(nil), line[1:]...)
			return makeRecord(header, seq.Bytes())
		case len(line) > 0:
			if header == nil {
				return nil, fmt.Errorf("fasta: line %d: sequence data before any '>' header", r.lineNo)
			}
			if i := bytes.IndexByte(line, '>'); i >= 0 {
				return nil, fmt.Errorf("fasta: line %d: '>' inside sequence data", r.lineNo)
			}
			seq.Write(line)
		}
		if err == io.EOF {
			r.done = true
			if header == nil {
				return nil, io.EOF
			}
			return makeRecord(header, seq.Bytes())
		}
		if err != nil {
			return nil, err
		}
	}
}

func makeRecord(header, seq []byte) (*Record, error) {
	h := string(header)
	rec := &Record{Seq: append([]byte(nil), seq...)}
	if i := strings.IndexAny(h, " \t"); i >= 0 {
		rec.ID = h[:i]
		rec.Description = strings.TrimSpace(h[i+1:])
	} else {
		rec.ID = h
	}
	if rec.ID == "" {
		return nil, fmt.Errorf("fasta: record with empty ID")
	}
	return rec, nil
}

// ReadAll parses every record from r.
func ReadAll(r io.Reader) ([]*Record, error) {
	fr := NewReader(r)
	var out []*Record
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}

// ReadFile parses every record from the named file. Gzip-compressed
// files (how reference genomes usually ship) are detected by their
// magic bytes and decompressed transparently.
func ReadFile(path string) ([]*Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var src io.Reader = br
	if magic, err := br.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		defer gz.Close()
		src = gz
	}
	recs, err := ReadAll(src)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// Writer emits FASTA with fixed line wrapping.
type Writer struct {
	w    *bufio.Writer
	wrap int
}

// NewWriter returns a Writer wrapping sequences at wrap columns
// (default 70 if wrap <= 0).
func NewWriter(w io.Writer, wrap int) *Writer {
	if wrap <= 0 {
		wrap = 70
	}
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), wrap: wrap}
}

// Write emits one record.
func (w *Writer) Write(rec *Record) error {
	if rec.ID == "" {
		return fmt.Errorf("fasta: refusing to write record with empty ID")
	}
	if _, err := w.w.WriteString(">" + rec.ID); err != nil {
		return err
	}
	if rec.Description != "" {
		if _, err := w.w.WriteString(" " + rec.Description); err != nil {
			return err
		}
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return err
	}
	for off := 0; off < len(rec.Seq); off += w.wrap {
		end := off + w.wrap
		if end > len(rec.Seq) {
			end = len(rec.Seq)
		}
		if _, err := w.w.Write(rec.Seq[off:end]); err != nil {
			return err
		}
		if err := w.w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteFile writes all records to the named file.
func WriteFile(path string, recs []*Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := NewWriter(f, 0)
	for _, rec := range recs {
		if err := w.Write(rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
