package fasta

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReader checks the parser never panics and that successfully
// parsed records survive a write/read round trip.
func FuzzReader(f *testing.F) {
	f.Add(">a\nACGT\n")
	f.Add(">a desc\nACGT\nNNNN\n>b\nGG\n")
	f.Add("")
	f.Add(">\nACGT\n")
	f.Add("ACGT\n>late\nAC\n")
	f.Add(">crlf\r\nAC\r\nGT\r\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadAll(strings.NewReader(in))
		if err != nil {
			return // malformed input rejected is fine; panics are not
		}
		var buf bytes.Buffer
		w := NewWriter(&buf, 60)
		for _, rec := range recs {
			if strings.ContainsAny(string(rec.Seq), ">\n\r") {
				return // writer does not escape; such content round-trips lossily by design
			}
			if strings.ContainsAny(rec.ID, " \t\n\r") || strings.ContainsAny(rec.Description, "\n\r") {
				return
			}
			if err := w.Write(rec); err != nil {
				t.Fatalf("write of parsed record failed: %v", err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAll(&buf)
		if err != nil {
			t.Fatalf("round trip parse failed: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip count %d != %d", len(back), len(recs))
		}
		for i := range recs {
			if back[i].ID != recs[i].ID || !bytes.Equal(back[i].Seq, recs[i].Seq) {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}
