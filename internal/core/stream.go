package core

import (
	"context"
	"fmt"
	"io"

	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/fasta"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
	"github.com/cap-repro/crisprscan/internal/report"
)

// StreamControl customizes SearchStreamContext for checkpoint/resume.
// The zero value (or a nil pointer) streams every chromosome with no
// completion hook.
type StreamControl struct {
	// SkipChrom, when non-nil, is consulted per chromosome: returning
	// true means the chromosome is already complete (a resumed run) —
	// it is parsed and duplicate-checked but neither scanned, counted in
	// stats, nor yielded.
	SkipChrom func(name string) bool
	// ChromDone, when non-nil, runs after every non-skipped chromosome's
	// sites have all been yielded: name, the number of sites the
	// chromosome produced, and the cumulative reference bases scanned so
	// far (Stats.BytesScanned at that point). Returning an error aborts
	// the stream. Checkpoint journaling hangs off this hook.
	ChromDone func(name string, sites int, scannedBases int64) error
}

// SearchStream runs the search over a FASTA stream one chromosome at a
// time, so memory stays proportional to the largest chromosome rather
// than the whole genome — the mode a 3.1 Gbp reference requires. Sites
// are emitted to the callback per chromosome (verified and
// deduplicated within the chromosome); stats are returned at the end.
// It is the ctx-less compatibility wrapper around SearchStreamContext.
func SearchStream(r io.Reader, guides []dna.Pattern, p Params, yield func(report.Site) error) (*Stats, error) {
	return SearchStreamContext(context.Background(), r, guides, p, nil, yield)
}

// SearchStreamContext is SearchStream bounded by ctx and tunable with
// ctrl. Cancellation is honored between chromosomes here and at chunk
// granularity inside the data-parallel engines; an aborted
// chromosome yields no sites, so every site delivered to yield belongs
// to a fully completed chromosome. On any error the returned Stats is
// non-nil and describes the work completed before the failure.
func SearchStreamContext(ctx context.Context, r io.Reader, guides []dna.Pattern, p Params, ctrl *StreamControl, yield func(report.Site) error) (*Stats, error) {
	if yield == nil {
		return nil, fmt.Errorf("core: nil yield callback")
	}
	if ctrl == nil {
		ctrl = &StreamControl{}
	}
	swCompile := metrics.NewStopwatch()
	engine, resolver, err := prepare(guides, &p)
	if err != nil {
		return nil, err
	}
	mrec := p.Metrics
	mrec.AddPhaseNanos(metrics.PhaseCompile, swCompile.ElapsedNanos())

	fr := fasta.NewReader(r)
	stats := &Stats{Engine: engine.Name()}
	prog := p.Progress
	start := metrics.NewStopwatch()
	finish := func(streamErr error) (*Stats, error) {
		stats.ElapsedSec = start.Seconds()
		stats.Metrics = mrec.Snapshot()
		return stats, streamErr
	}
	seen := make(map[string]bool)
	for {
		if err := ctx.Err(); err != nil {
			return finish(fmt.Errorf("core: stream search canceled after %d chromosomes: %w", len(seen), err))
		}
		// The streaming pipeline decodes inside the measured region, so
		// FASTA parsing and sequence packing are charged to PhaseLoad.
		endLoad := mrec.StartPhase(metrics.PhaseLoad)
		rec, err := fr.Next()
		if err == io.EOF {
			endLoad()
			break
		}
		if err != nil {
			endLoad()
			return finish(fmt.Errorf("core: reading genome stream: %w", err))
		}
		if seen[rec.ID] {
			endLoad()
			return finish(fmt.Errorf("core: duplicate chromosome %q in stream", rec.ID))
		}
		seen[rec.ID] = true
		if ctrl.SkipChrom != nil && ctrl.SkipChrom(rec.ID) {
			endLoad()
			continue
		}
		seq, _ := dna.ParseSeq(string(rec.Seq))
		chrom := genome.Chromosome{Name: rec.ID, Seq: seq, Packed: dna.Pack(seq)}
		endLoad()
		prog.StartChrom(rec.ID, int64(len(seq)))
		col := report.NewCollector(resolver)
		var addErr error
		// Per-event resolution time is measured inline and subtracted
		// from the scan stopwatch, as in SearchContext.
		var verifyNs int64
		endSpan := mrec.TraceSpan("scan " + rec.ID)
		swScan := metrics.NewStopwatch()
		err = scanChromSafe(ctx, engine, &chrom, func(ev automata.Report) {
			stats.Events++
			t0 := metrics.Now()
			if e := col.Add(&chrom, ev); e != nil && addErr == nil {
				addErr = e
			}
			verifyNs += metrics.Now() - t0
		})
		scanNs := swScan.ElapsedNanos()
		endSpan()
		if err == nil {
			err = addErr
		}
		if err != nil {
			return finish(fmt.Errorf("core: chromosome %s: %w", rec.ID, err))
		}
		mrec.AddPhaseNanos(metrics.PhaseVerify, verifyNs)
		mrec.AddPhaseNanos(metrics.PhasePrefilter, scanNs-verifyNs)
		// Bytes count once per completed chromosome (never per chunk,
		// where overlap would double-count).
		stats.BytesScanned += len(seq)
		mrec.Add(metrics.CounterBytesScanned, int64(len(seq)))
		endReport := mrec.StartPhase(metrics.PhaseReport)
		sites := col.Sites()
		for _, site := range sites {
			if err := yield(site); err != nil {
				endReport()
				return finish(fmt.Errorf("core: yield on %s: %w", rec.ID, err))
			}
		}
		endReport()
		mrec.Add(metrics.CounterSitesEmitted, int64(len(sites)))
		if ctrl.ChromDone != nil {
			if err := ctrl.ChromDone(rec.ID, len(sites), int64(stats.BytesScanned)); err != nil {
				return finish(fmt.Errorf("core: completing %s: %w", rec.ID, err))
			}
		}
		prog.FinishChrom(rec.ID)
	}
	prog.Finish()
	return finish(nil)
}
