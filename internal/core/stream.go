package core

import (
	"fmt"
	"io"
	"time"

	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/fasta"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/report"
)

// SearchStream runs the search over a FASTA stream one chromosome at a
// time, so memory stays proportional to the largest chromosome rather
// than the whole genome — the mode a 3.1 Gbp reference requires. Sites
// are emitted to the callback per chromosome (verified and
// deduplicated within the chromosome); stats are returned at the end.
func SearchStream(r io.Reader, guides []dna.Pattern, p Params, yield func(report.Site) error) (*Stats, error) {
	if yield == nil {
		return nil, fmt.Errorf("core: nil yield callback")
	}
	engine, resolver, err := prepare(guides, &p)
	if err != nil {
		return nil, err
	}

	fr := fasta.NewReader(r)
	stats := &Stats{Engine: engine.Name()}
	start := time.Now()
	seen := make(map[string]bool)
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if seen[rec.ID] {
			return nil, fmt.Errorf("core: duplicate chromosome %q in stream", rec.ID)
		}
		seen[rec.ID] = true
		seq, _ := dna.ParseSeq(string(rec.Seq))
		stats.BytesScanned += len(seq)
		chrom := genome.Chromosome{Name: rec.ID, Seq: seq, Packed: dna.Pack(seq)}
		col := report.NewCollector(resolver)
		var scanErr error
		err = engine.ScanChrom(&chrom, func(ev automata.Report) {
			stats.Events++
			if e := col.Add(&chrom, ev); e != nil && scanErr == nil {
				scanErr = e
			}
		})
		if err != nil {
			return nil, err
		}
		if scanErr != nil {
			return nil, scanErr
		}
		for _, site := range col.Sites() {
			if err := yield(site); err != nil {
				return nil, err
			}
		}
	}
	stats.ElapsedSec = time.Since(start).Seconds()
	return stats, nil
}
