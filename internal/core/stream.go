package core

import (
	"context"
	"fmt"
	"io"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/fasta"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
	"github.com/cap-repro/crisprscan/internal/report"
)

// StreamControl customizes SearchStreamContext for checkpoint/resume.
// The zero value (or a nil pointer) streams every chromosome with no
// completion hook.
type StreamControl struct {
	// SkipChrom, when non-nil, is consulted per chromosome: returning
	// true means the chromosome is already complete (a resumed run) —
	// it is parsed and duplicate-checked but neither scanned, counted in
	// stats, nor yielded.
	SkipChrom func(name string) bool
	// ChromDone, when non-nil, runs after every non-skipped chromosome's
	// sites have all been yielded: name, the number of sites the
	// chromosome produced, and the cumulative reference bases scanned so
	// far (Stats.BytesScanned at that point). Returning an error aborts
	// the stream. Checkpoint journaling hangs off this hook.
	ChromDone func(name string, sites int, scannedBases int64) error
}

// SearchStream runs the search over a FASTA stream one chromosome at a
// time, so memory stays proportional to the largest chromosome rather
// than the whole genome — the mode a 3.1 Gbp reference requires. Sites
// are emitted to the callback per chromosome (verified and
// deduplicated within the chromosome); stats are returned at the end.
// It is the ctx-less compatibility wrapper around SearchStreamContext.
func SearchStream(r io.Reader, guides []dna.Pattern, p Params, yield func(report.Site) error) (*Stats, error) {
	return SearchStreamContext(context.Background(), r, guides, p, nil, yield)
}

// streamScan bundles the state one chromosome-at-a-time search carries
// across chromosomes; SearchStreamContext (FASTA stream) and
// SearchGenomeStreamContext (resident genome) share it, so both drivers
// produce byte-identical output for the same reference.
type streamScan struct {
	engine   arch.Engine
	resolver *report.Resolver
	mrec     *metrics.Recorder
	prog     *metrics.Progress
	ctrl     *StreamControl
	yield    func(report.Site) error
	stats    *Stats
}

// newStreamScan compiles the engine and resolver for a streaming-shaped
// search; the compile phase is charged to the recorder exactly as the
// in-memory path does.
func newStreamScan(guides []dna.Pattern, p *Params, ctrl *StreamControl, yield func(report.Site) error) (*streamScan, error) {
	if yield == nil {
		return nil, fmt.Errorf("core: nil yield callback")
	}
	if ctrl == nil {
		ctrl = &StreamControl{}
	}
	swCompile := metrics.NewStopwatch()
	endCompile := p.Metrics.TraceSpan("compile")
	engine, resolver, err := prepare(guides, p)
	endCompile()
	if err != nil {
		return nil, err
	}
	mrec := p.Metrics
	mrec.AddPhaseNanos(metrics.PhaseCompile, swCompile.ElapsedNanos())
	return &streamScan{
		engine:   engine,
		resolver: resolver,
		mrec:     mrec,
		prog:     p.Progress,
		ctrl:     ctrl,
		yield:    yield,
		//crisprlint:allow statsdiscipline accumulated across methods: Events in chrom, BytesScanned/ElapsedSec in finish
		stats: &Stats{Engine: engine.Name()},
	}, nil
}

// chrom scans one chromosome, yields its verified sites, and fires the
// ChromDone hook. Every site delivered belongs to a fully completed
// chromosome: an aborted scan yields nothing, which is what makes
// chromosome-granularity checkpointing sound.
func (s *streamScan) chrom(ctx context.Context, chrom *genome.Chromosome) error {
	s.prog.StartChrom(chrom.Name, int64(len(chrom.Seq)))
	col := report.NewCollector(s.resolver)
	var addErr error
	// Per-event resolution time is measured inline and subtracted
	// from the scan stopwatch, as in SearchContext.
	var verifyNs int64
	endSpan := s.mrec.TraceSpan("scan " + chrom.Name)
	swScan := metrics.NewStopwatch()
	err := scanChromSafe(ctx, s.engine, chrom, func(ev automata.Report) {
		s.stats.Events++
		t0 := metrics.Now()
		if e := col.Add(chrom, ev); e != nil && addErr == nil {
			addErr = e
		}
		verifyNs += metrics.Now() - t0
	})
	scanNs := swScan.ElapsedNanos()
	endSpan()
	if err == nil {
		err = addErr
	}
	if err != nil {
		return fmt.Errorf("core: chromosome %s: %w", chrom.Name, err)
	}
	s.mrec.AddPhaseNanos(metrics.PhaseVerify, verifyNs)
	s.mrec.AddPhaseNanos(metrics.PhasePrefilter, scanNs-verifyNs)
	// Bytes count once per completed chromosome (never per chunk,
	// where overlap would double-count).
	s.stats.BytesScanned += len(chrom.Seq)
	s.mrec.Add(metrics.CounterBytesScanned, int64(len(chrom.Seq)))
	endReport := s.mrec.StartPhase(metrics.PhaseReport)
	sites := col.Sites()
	for _, site := range sites {
		if err := s.yield(site); err != nil {
			endReport()
			return fmt.Errorf("core: yield on %s: %w", chrom.Name, err)
		}
	}
	endReport()
	s.mrec.Add(metrics.CounterSitesEmitted, int64(len(sites)))
	if s.ctrl.ChromDone != nil {
		if err := s.ctrl.ChromDone(chrom.Name, len(sites), int64(s.stats.BytesScanned)); err != nil {
			return fmt.Errorf("core: completing %s: %w", chrom.Name, err)
		}
	}
	s.prog.FinishChrom(chrom.Name)
	return nil
}

// finish stamps elapsed time and the metrics snapshot onto the stats.
func (s *streamScan) finish(start metrics.Stopwatch, streamErr error) (*Stats, error) {
	s.stats.ElapsedSec = start.Seconds()
	s.stats.Metrics = s.mrec.Snapshot()
	return s.stats, streamErr
}

// SearchStreamContext is SearchStream bounded by ctx and tunable with
// ctrl. Cancellation is honored between chromosomes here and at chunk
// granularity inside the data-parallel engines; an aborted
// chromosome yields no sites, so every site delivered to yield belongs
// to a fully completed chromosome. On any error the returned Stats is
// non-nil and describes the work completed before the failure.
func SearchStreamContext(ctx context.Context, r io.Reader, guides []dna.Pattern, p Params, ctrl *StreamControl, yield func(report.Site) error) (*Stats, error) {
	s, err := newStreamScan(guides, &p, ctrl, yield)
	if err != nil {
		return nil, err
	}
	fr := fasta.NewReader(r)
	start := metrics.NewStopwatch()
	seen := make(map[string]bool)
	for {
		if err := ctx.Err(); err != nil {
			return s.finish(start, fmt.Errorf("core: stream search canceled after %d chromosomes: %w", len(seen), err))
		}
		// The streaming pipeline decodes inside the measured region, so
		// FASTA parsing and sequence packing are charged to PhaseLoad.
		endLoad := s.mrec.StartPhase(metrics.PhaseLoad)
		rec, err := fr.Next()
		if err == io.EOF {
			endLoad()
			break
		}
		if err != nil {
			endLoad()
			return s.finish(start, fmt.Errorf("core: reading genome stream: %w", err))
		}
		if seen[rec.ID] {
			endLoad()
			return s.finish(start, fmt.Errorf("core: duplicate chromosome %q in stream", rec.ID))
		}
		seen[rec.ID] = true
		if s.ctrl.SkipChrom != nil && s.ctrl.SkipChrom(rec.ID) {
			endLoad()
			continue
		}
		seq, _ := dna.ParseSeq(string(rec.Seq))
		chrom := genome.Chromosome{Name: rec.ID, Seq: seq, Packed: dna.Pack(seq)}
		endLoad()
		if err := s.chrom(ctx, &chrom); err != nil {
			return s.finish(start, err)
		}
	}
	s.prog.Finish()
	return s.finish(start, nil)
}

// SearchGenomeStreamContext runs the streaming-shaped search over an
// already-loaded genome: chromosomes are visited in genome order through
// the same per-chromosome pipeline as SearchStreamContext, so the two
// drivers yield identical sites in identical order for the same
// reference — which lets a long-lived service keep one parsed genome
// resident and share it across concurrent checkpointed scans instead of
// re-reading FASTA per request. SkipChrom and ChromDone behave exactly
// as in the stream driver; PhaseLoad is not charged (the genome is
// already decoded and packed).
func SearchGenomeStreamContext(ctx context.Context, g *genome.Genome, guides []dna.Pattern, p Params, ctrl *StreamControl, yield func(report.Site) error) (*Stats, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil genome")
	}
	s, err := newStreamScan(guides, &p, ctrl, yield)
	if err != nil {
		return nil, err
	}
	start := metrics.NewStopwatch()
	for i := range g.Chroms {
		chrom := &g.Chroms[i]
		if err := ctx.Err(); err != nil {
			return s.finish(start, fmt.Errorf("core: stream search canceled after %d chromosomes: %w", i, err))
		}
		if s.ctrl.SkipChrom != nil && s.ctrl.SkipChrom(chrom.Name) {
			continue
		}
		if err := s.chrom(ctx, chrom); err != nil {
			return s.finish(start, err)
		}
	}
	s.prog.Finish()
	return s.finish(start, nil)
}
