package core

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/cap-repro/crisprscan/internal/casoffinder"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

// TestBulgeCrossValidation is the two-implementation check: the
// brute-force PAM-anchored DP search (casoffinder.BulgeScan) and the
// edit-automata search (SearchBulge) must agree on the site set. Two
// independent implementations of the same semantics guard each other.
func TestBulgeCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 4; trial++ {
		g := genome.Synthesize(genome.SynthConfig{Seed: 160 + int64(trial), ChromLen: 30000})
		var guides []dna.Pattern
		var specs []casoffinder.BulgeSpec
		for i := 0; i < 3; i++ {
			spacer := make(dna.Seq, 9)
			for j := range spacer {
				spacer[j] = dna.Base(rng.Intn(4))
			}
			p := dna.PatternFromSeq(spacer)
			guides = append(guides, p)
			specs = append(specs, casoffinder.BulgeSpec{Spacer: p, Guide: i})
		}
		opt := casoffinder.BulgeOptions{MaxMismatches: 1 + rng.Intn(2), MaxBulge: 1, PAM: dna.MustParsePattern("NGG")}

		auto, err := SearchBulge(g, guides, BulgeParams{
			MaxMismatches: opt.MaxMismatches, MaxBulge: opt.MaxBulge,
		})
		if err != nil {
			t.Fatal(err)
		}
		brute, err := casoffinder.BulgeScan(&g.Chroms[0], specs, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Compare as distinct window-end positions per guide+strand: the
		// brute force enumerates every feasible window per PAM anchor,
		// while the automata path resolves one window per event.
		autoSet := map[string]bool{}
		for _, s := range auto {
			autoSet[fmt.Sprintf("%d:%d:%c", s.Guide, s.Pos+s.Len-1, s.Strand)] = true
		}
		bruteSet := map[string]bool{}
		for _, h := range brute {
			bruteSet[fmt.Sprintf("%d:%d:%c", h.Guide, h.Pos+h.Len-1, h.Strand)] = true
		}
		for key := range bruteSet {
			if !autoSet[key] {
				t.Fatalf("trial %d: brute-force site %s missed by automata", trial, key)
			}
		}
		for key := range autoSet {
			if !bruteSet[key] {
				t.Fatalf("trial %d: automata site %s not confirmed by brute force", trial, key)
			}
		}
	}
}
