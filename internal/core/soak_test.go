package core

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/report"
)

// TestSoakLargeScale is the paper-shaped end-to-end run in miniature:
// a 2 Mbp genome, 50 sampled guides at full length (20nt + NGG), k=4,
// three engines cross-checked, and planted ground truth at every
// mismatch level up to the budget. Guarded by -short so quick edit
// cycles skip it.
func TestSoakLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	g := genome.Synthesize(genome.SynthConfig{Seed: 901, ChromLen: 1_000_000, NumChroms: 2})
	pam := dna.MustParsePattern("NGG")
	raw := genome.SampleGuides(g, 50, 20, pam, 902)
	if len(raw) < 50 {
		t.Fatalf("sampled %d/50 guides", len(raw))
	}
	plan := genome.PlantPlan{0: 1, 1: 1, 2: 1, 3: 1, 4: 1}
	planted, err := genome.Plant(g, raw, pam, plan, 903)
	if err != nil {
		t.Fatal(err)
	}
	guides := make([]dna.Pattern, len(raw))
	for i, r := range raw {
		guides[i] = dna.PatternFromSeq(r)
	}

	var ref []report.Site
	for _, kind := range []EngineKind{EngineHyperscan, EngineHyperscanBitap, EngineCasOffinder} {
		res, err := Search(g, guides, Params{MaxMismatches: 4, Engine: kind, Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ref == nil {
			ref = res.Sites
			// Recall of all 250 planted sites.
			found := map[string]bool{}
			for _, s := range res.Sites {
				found[siteKey(s)] = true
			}
			for _, p := range planted {
				key := siteKey(report.Site{Chrom: p.Chrom, Pos: p.Pos, Strand: p.Strand, Guide: p.Guide, Mismatches: p.Mismatches})
				if !found[key] {
					t.Fatalf("planted site %+v missed", p)
				}
			}
			t.Logf("soak: %d sites, %d planted recalled", len(res.Sites), len(planted))
			continue
		}
		if len(res.Sites) != len(ref) {
			t.Fatalf("%s: %d sites vs %d", kind, len(res.Sites), len(ref))
		}
		for i := range ref {
			if res.Sites[i] != ref[i] {
				t.Fatalf("%s: site %d differs", kind, i)
			}
		}
	}
}
