package core

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/fasta"
	"github.com/cap-repro/crisprscan/internal/report"
)

func TestSearchStreamMatchesInMemory(t *testing.T) {
	g, guides, _ := plantedFixture(t, 501, 4, 80000, PlantPlanLite())
	// Serialize the genome to FASTA and stream it back.
	var buf bytes.Buffer
	w := fasta.NewWriter(&buf, 0)
	for _, rec := range g.ToFasta() {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	inMem, err := Search(g, guides, Params{MaxMismatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []report.Site
	stats, err := SearchStream(&buf, guides, Params{MaxMismatches: 2}, func(s report.Site) error {
		streamed = append(streamed, s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(inMem.Sites) {
		t.Fatalf("streamed %d sites, in-memory %d", len(streamed), len(inMem.Sites))
	}
	for i := range streamed {
		if streamed[i] != inMem.Sites[i] {
			t.Fatalf("site %d differs: %+v vs %+v", i, streamed[i], inMem.Sites[i])
		}
	}
	if stats.Events != inMem.Stats.Events {
		t.Errorf("events %d vs %d", stats.Events, inMem.Stats.Events)
	}
}

func TestSearchStreamErrors(t *testing.T) {
	_, guides, _ := plantedFixture(t, 502, 2, 60000, PlantPlanLite())
	if _, err := SearchStream(strings.NewReader(""), nil, Params{}, func(report.Site) error { return nil }); err == nil {
		t.Error("no guides must error")
	}
	if _, err := SearchStream(strings.NewReader(""), guides, Params{}, nil); err == nil {
		t.Error("nil yield must error")
	}
	dup := ">a\nACGT\n>a\nACGT\n"
	if _, err := SearchStream(strings.NewReader(dup), guides, Params{}, func(report.Site) error { return nil }); err == nil {
		t.Error("duplicate chromosome must error")
	}
	// Yield errors propagate.
	g, guides2, _ := plantedFixture(t, 503, 2, 60000, PlantPlanLite())
	var buf bytes.Buffer
	w := fasta.NewWriter(&buf, 0)
	for _, rec := range g.ToFasta() {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("stop")
	_, err := SearchStream(&buf, guides2, Params{MaxMismatches: 2}, func(report.Site) error { return wantErr })
	if err == nil || !strings.Contains(err.Error(), "stop") {
		t.Errorf("yield error must propagate, got %v", err)
	}
}

// PlantPlanLite returns a small default plant plan for stream tests.
func PlantPlanLite() map[int]int { return map[int]int{0: 1, 2: 2} }
