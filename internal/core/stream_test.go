package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/fasta"
	"github.com/cap-repro/crisprscan/internal/report"
)

func TestSearchStreamMatchesInMemory(t *testing.T) {
	g, guides, _ := plantedFixture(t, 501, 4, 80000, PlantPlanLite())
	// Serialize the genome to FASTA and stream it back.
	var buf bytes.Buffer
	w := fasta.NewWriter(&buf, 0)
	for _, rec := range g.ToFasta() {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	inMem, err := Search(g, guides, Params{MaxMismatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	var streamed []report.Site
	stats, err := SearchStream(&buf, guides, Params{MaxMismatches: 2}, func(s report.Site) error {
		streamed = append(streamed, s)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(inMem.Sites) {
		t.Fatalf("streamed %d sites, in-memory %d", len(streamed), len(inMem.Sites))
	}
	for i := range streamed {
		if streamed[i] != inMem.Sites[i] {
			t.Fatalf("site %d differs: %+v vs %+v", i, streamed[i], inMem.Sites[i])
		}
	}
	if stats.Events != inMem.Stats.Events {
		t.Errorf("events %d vs %d", stats.Events, inMem.Stats.Events)
	}
}

func TestSearchStreamErrors(t *testing.T) {
	_, guides, _ := plantedFixture(t, 502, 2, 60000, PlantPlanLite())
	if _, err := SearchStream(strings.NewReader(""), nil, Params{}, func(report.Site) error { return nil }); err == nil {
		t.Error("no guides must error")
	}
	if _, err := SearchStream(strings.NewReader(""), guides, Params{}, nil); err == nil {
		t.Error("nil yield must error")
	}
	dup := ">a\nACGT\n>a\nACGT\n"
	if _, err := SearchStream(strings.NewReader(dup), guides, Params{}, func(report.Site) error { return nil }); err == nil {
		t.Error("duplicate chromosome must error")
	}
	// Yield errors propagate.
	g, guides2, _ := plantedFixture(t, 503, 2, 60000, PlantPlanLite())
	var buf bytes.Buffer
	w := fasta.NewWriter(&buf, 0)
	for _, rec := range g.ToFasta() {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	wantErr := fmt.Errorf("stop")
	_, err := SearchStream(&buf, guides2, Params{MaxMismatches: 2}, func(report.Site) error { return wantErr })
	if err == nil || !strings.Contains(err.Error(), "stop") {
		t.Errorf("yield error must propagate, got %v", err)
	}
}

// PlantPlanLite returns a small default plant plan for stream tests.
func PlantPlanLite() map[int]int { return map[int]int{0: 1, 2: 2} }

func TestSearchGenomeStreamMatchesFileStream(t *testing.T) {
	g, guides, _ := plantedFixture(t, 504, 4, 80000, PlantPlanLite())
	var buf bytes.Buffer
	w := fasta.NewWriter(&buf, 0)
	for _, rec := range g.ToFasta() {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	type chromDone struct {
		name  string
		sites int
		bases int64
	}
	collect := func(run func(ctrl *StreamControl, yield func(report.Site) error) (*Stats, error)) ([]report.Site, []chromDone, *Stats) {
		t.Helper()
		var sites []report.Site
		var dones []chromDone
		ctrl := &StreamControl{ChromDone: func(name string, n int, bases int64) error {
			dones = append(dones, chromDone{name, n, bases})
			return nil
		}}
		stats, err := run(ctrl, func(s report.Site) error {
			sites = append(sites, s)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sites, dones, stats
	}

	p := Params{MaxMismatches: 2}
	fromFile, fileDones, fileStats := collect(func(ctrl *StreamControl, yield func(report.Site) error) (*Stats, error) {
		return SearchStreamContext(context.Background(), bytes.NewReader(buf.Bytes()), guides, p, ctrl, yield)
	})
	fromGenome, genomeDones, genomeStats := collect(func(ctrl *StreamControl, yield func(report.Site) error) (*Stats, error) {
		return SearchGenomeStreamContext(context.Background(), g, guides, p, ctrl, yield)
	})

	if len(fromGenome) != len(fromFile) {
		t.Fatalf("genome driver yielded %d sites, file driver %d", len(fromGenome), len(fromFile))
	}
	for i := range fromGenome {
		if fromGenome[i] != fromFile[i] {
			t.Fatalf("site %d differs: %+v vs %+v", i, fromGenome[i], fromFile[i])
		}
	}
	if fmt.Sprint(genomeDones) != fmt.Sprint(fileDones) {
		t.Fatalf("ChromDone sequences differ:\n genome: %v\n file:   %v", genomeDones, fileDones)
	}
	if genomeStats.Events != fileStats.Events || genomeStats.BytesScanned != fileStats.BytesScanned {
		t.Errorf("stats differ: events %d vs %d, bytes %d vs %d",
			genomeStats.Events, fileStats.Events, genomeStats.BytesScanned, fileStats.BytesScanned)
	}
}

func TestSearchGenomeStreamSkipAndCancel(t *testing.T) {
	g, guides, _ := plantedFixture(t, 505, 3, 60000, PlantPlanLite())
	p := Params{MaxMismatches: 1}

	// Skipping the first chromosome yields only the rest, in order.
	first := g.Chroms[0].Name
	var kept []string
	_, err := SearchGenomeStreamContext(context.Background(), g, guides, p,
		&StreamControl{
			SkipChrom: func(name string) bool { return name == first },
			ChromDone: func(name string, _ int, _ int64) error {
				kept = append(kept, name)
				return nil
			},
		},
		func(report.Site) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) != len(g.Chroms)-1 || (len(kept) > 0 && kept[0] == first) {
		t.Fatalf("skip failed: completed %v", kept)
	}

	// A pre-canceled context aborts before any chromosome completes.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	stats, err := SearchGenomeStreamContext(ctx, g, guides, p, nil, func(report.Site) error { return nil })
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled genome stream returned %v, want context.Canceled", err)
	}
	if stats == nil || stats.BytesScanned != 0 {
		t.Fatalf("canceled-before-start stats = %+v, want zero bytes scanned", stats)
	}

	if _, err := SearchGenomeStreamContext(context.Background(), nil, guides, p, nil, func(report.Site) error { return nil }); err == nil {
		t.Error("nil genome must error")
	}
}
