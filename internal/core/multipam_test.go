package core

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

// multiPAMFixture plants one NGG site and one NAG site for the same
// guide.
func multiPAMFixture(t *testing.T) (*genome.Genome, []dna.Pattern) {
	t.Helper()
	g := genome.Synthesize(genome.SynthConfig{Seed: 401, ChromLen: 50000})
	guide := dna.MustParseSeq("GACGCATAAAGATGAGACGC")
	c := &g.Chroms[0]
	ngg := append(guide.Clone(), dna.MustParseSeq("TGG")...)
	nag := append(guide.Clone(), dna.MustParseSeq("TAG")...)
	copy(c.Seq[1000:], ngg)
	copy(c.Seq[2000:], nag)
	c.Packed = dna.Pack(c.Seq)
	return g, []dna.Pattern{dna.PatternFromSeq(guide)}
}

func TestMultiPAMSearch(t *testing.T) {
	g, guides := multiPAMFixture(t)

	nggOnly, err := Search(g, guides, Params{MaxMismatches: 0})
	if err != nil {
		t.Fatal(err)
	}
	both, err := Search(g, guides, Params{MaxMismatches: 0, AltPAMs: []string{"NAG"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(both.Sites) != len(nggOnly.Sites)+1 {
		t.Fatalf("NGG-only %d sites, NGG+NAG %d sites; want exactly one more", len(nggOnly.Sites), len(both.Sites))
	}
	foundNAG := false
	for _, s := range both.Sites {
		if s.Pos == 2000 {
			foundNAG = true
		}
	}
	if !foundNAG {
		t.Error("NAG site at 2000 not found")
	}
}

func TestMultiPAMEnginesAgree(t *testing.T) {
	g, guides := multiPAMFixture(t)
	p := Params{MaxMismatches: 2, AltPAMs: []string{"NAG"}}
	var ref int
	for _, kind := range []EngineKind{EngineHyperscan, EngineHyperscanBitap, EngineCasOffinder, EngineCasOT, EngineAP, EngineFPGA} {
		pp := p
		pp.Engine = kind
		res, err := Search(g, guides, pp)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if kind == EngineHyperscan {
			ref = len(res.Sites)
			if ref < 2 {
				t.Fatalf("fixture too weak: %d sites", ref)
			}
			continue
		}
		if len(res.Sites) != ref {
			t.Errorf("%s: %d sites, reference %d", kind, len(res.Sites), ref)
		}
	}
}

func TestMultiPAMOverlappingPatternsDedup(t *testing.T) {
	// NGG and NRG overlap (every NGG site is an NRG site); the collector
	// must deduplicate.
	g, guides := multiPAMFixture(t)
	res, err := Search(g, guides, Params{MaxMismatches: 0, AltPAMs: []string{"NRG"}})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, s := range res.Sites {
		key := s.Chrom + string(rune(s.Pos)) + string(s.Strand)
		if seen[key] {
			t.Fatalf("duplicate site %+v", s)
		}
		seen[key] = true
	}
	// NRG covers both the TGG and TAG plants.
	if len(res.Sites) < 2 {
		t.Errorf("NRG should find both planted sites, got %d", len(res.Sites))
	}
}

func TestMultiPAMLengthMismatch(t *testing.T) {
	g, guides := multiPAMFixture(t)
	if _, err := Search(g, guides, Params{AltPAMs: []string{"TTTV"}}); err == nil {
		t.Error("PAM length mismatch must error")
	}
	if _, err := Search(g, guides, Params{AltPAMs: []string{"XX!"}}); err == nil {
		t.Error("invalid alt PAM must error")
	}
}
