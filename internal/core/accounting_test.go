package core

import (
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
	"github.com/cap-repro/crisprscan/internal/report"
)

// TestBytesScannedExact is the audit for the chunk-overlap
// double-counting hazard: the data-parallel engines hand each worker
// chunk a left overlap of MaxSiteLen-1 bases so windows spanning a
// boundary are owned by exactly one chunk — if bytes were counted per
// chunk, every overlap region would be counted twice. Bytes are
// therefore counted once per completed chromosome by the orchestrator;
// this test pins the exact totals, on chromosomes larger than the
// 64 KiB chunk (so multi-chunk paths run), with workers > 1, for every
// registered engine, in both Stats and the metrics counter.
func TestBytesScannedExact(t *testing.T) {
	// 100000 and 70000 both exceed arch.DefaultChunk (65536), so the
	// parallel engines split each chromosome into 2+ chunks with overlap.
	g := genome.Synthesize(genome.SynthConfig{Seed: 701, ChromLen: 100000, NumChroms: 1})
	g2 := genome.Synthesize(genome.SynthConfig{Seed: 702, ChromLen: 70000, NumChroms: 1})
	g2.Chroms[0].Name = "chr2"
	g.Chroms = append(g.Chroms, g2.Chroms[0])
	wantBytes := int64(100000 + 70000)

	pam := dna.MustParsePattern("NGG")
	raw := genome.SampleGuides(g, 2, 20, pam, 703)
	if len(raw) < 2 {
		t.Fatalf("fixture supplied %d/2 guides", len(raw))
	}
	guides := make([]dna.Pattern, len(raw))
	for i, r := range raw {
		guides[i] = dna.PatternFromSeq(r)
	}

	for _, kind := range AllEngines {
		t.Run(string(kind), func(t *testing.T) {
			rec := metrics.NewRecorder()
			res, err := Search(g, guides, Params{
				MaxMismatches: 3, Engine: kind, Workers: 4, Metrics: rec,
			})
			if err != nil {
				t.Fatal(err)
			}
			if int64(res.Stats.BytesScanned) != wantBytes {
				t.Errorf("Stats.BytesScanned = %d, want exactly %d", res.Stats.BytesScanned, wantBytes)
			}
			if got := res.Stats.Metrics.Counters.BytesScanned; got != wantBytes {
				t.Errorf("metrics bytes_scanned = %d, want exactly %d", got, wantBytes)
			}
			// The live counter agrees with the snapshot.
			if got := rec.CounterValue(metrics.CounterBytesScanned); got != wantBytes {
				t.Errorf("recorder counter = %d, want exactly %d", got, wantBytes)
			}
		})
	}
}

// TestBytesScannedExactStreaming pins the same totals for the streaming
// pipeline, which counts from the freshly parsed sequence length.
func TestBytesScannedExactStreaming(t *testing.T) {
	g := genome.Synthesize(genome.SynthConfig{Seed: 704, ChromLen: 80000, NumChroms: 2})
	var fa strings.Builder
	for _, c := range g.Chroms {
		fa.WriteString(">" + c.Name + "\n" + c.Seq.String() + "\n")
	}
	wantBytes := int64(2 * 80000)

	pam := dna.MustParsePattern("NGG")
	raw := genome.SampleGuides(g, 2, 20, pam, 705)
	guides := make([]dna.Pattern, len(raw))
	for i, r := range raw {
		guides[i] = dna.PatternFromSeq(r)
	}

	rec := metrics.NewRecorder()
	stats, err := SearchStream(strings.NewReader(fa.String()), guides, Params{
		MaxMismatches: 3, Workers: 4, Metrics: rec,
	}, func(report.Site) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if int64(stats.BytesScanned) != wantBytes {
		t.Errorf("Stats.BytesScanned = %d, want exactly %d", stats.BytesScanned, wantBytes)
	}
	if got := stats.Metrics.Counters.BytesScanned; got != wantBytes {
		t.Errorf("metrics bytes_scanned = %d, want exactly %d", got, wantBytes)
	}
	// Chunked engines must actually have chunked (the premise of the
	// overlap hazard this test guards against).
	if stats.Metrics.Counters.ChunksDispatched < 2 {
		t.Errorf("chunks_dispatched = %d; fixture failed to exercise multi-chunk scan", stats.Metrics.Counters.ChunksDispatched)
	}
}
