package core

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/cap-repro/crisprscan/internal/genome"
)

// Region names a genomic interval: a whole chromosome ("chr1") or a
// 0-based half-open slice ("chr1:1000-2000").
type Region struct {
	Chrom string
	Start int // inclusive, 0-based
	End   int // exclusive; 0 means chromosome end
}

// ParseRegion parses "chrom" or "chrom:start-end".
func ParseRegion(s string) (Region, error) {
	if s == "" {
		return Region{}, fmt.Errorf("core: empty region")
	}
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return Region{Chrom: s}, nil
	}
	chrom, span := s[:i], s[i+1:]
	if chrom == "" {
		return Region{}, fmt.Errorf("core: region %q has no chromosome", s)
	}
	parts := strings.SplitN(span, "-", 2)
	if len(parts) != 2 {
		return Region{}, fmt.Errorf("core: region %q needs start-end", s)
	}
	start, err := strconv.Atoi(parts[0])
	if err != nil {
		return Region{}, fmt.Errorf("core: region %q: bad start: %w", s, err)
	}
	end, err := strconv.Atoi(parts[1])
	if err != nil {
		return Region{}, fmt.Errorf("core: region %q: bad end: %w", s, err)
	}
	if start < 0 || end <= start {
		return Region{}, fmt.Errorf("core: region %q: empty or negative span", s)
	}
	return Region{Chrom: chrom, Start: start, End: end}, nil
}

// Slice extracts the region from g as a single-chromosome genome plus
// the coordinate offset to add back to reported positions. Sites are
// defined as windows lying entirely inside the region.
func (r Region) Slice(g *genome.Genome) (*genome.Genome, int, error) {
	c := g.Chrom(r.Chrom)
	if c == nil {
		return nil, 0, fmt.Errorf("core: region chromosome %q not in genome", r.Chrom)
	}
	start, end := r.Start, r.End
	if end == 0 || end > len(c.Seq) {
		end = len(c.Seq)
	}
	if start >= end {
		return nil, 0, fmt.Errorf("core: region %s:%d-%d outside chromosome (len %d)", r.Chrom, r.Start, r.End, len(c.Seq))
	}
	sub := genome.New(genome.Chromosome{Name: c.Name, Seq: c.Seq[start:end]})
	return sub, start, nil
}
