package core

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/genome"
)

func TestParseRegion(t *testing.T) {
	r, err := ParseRegion("chr1")
	if err != nil || r.Chrom != "chr1" || r.Start != 0 || r.End != 0 {
		t.Errorf("whole chromosome: %+v, %v", r, err)
	}
	r, err = ParseRegion("chr2:100-200")
	if err != nil || r.Chrom != "chr2" || r.Start != 100 || r.End != 200 {
		t.Errorf("span: %+v, %v", r, err)
	}
	for _, bad := range []string{"", ":100-200", "chr1:abc-200", "chr1:100-abc", "chr1:200-100", "chr1:100", "chr1:-5-10"} {
		if _, err := ParseRegion(bad); err == nil {
			t.Errorf("ParseRegion(%q) should fail", bad)
		}
	}
}

func TestRegionSlice(t *testing.T) {
	g, _, _ := plantedFixture(t, 801, 2, 60000, PlantPlanLite())
	region := Region{Chrom: "chr1", Start: 1000, End: 5000}
	sub, offset, err := region.Slice(g)
	if err != nil {
		t.Fatal(err)
	}
	if offset != 1000 || sub.TotalLen() != 4000 {
		t.Errorf("offset=%d len=%d", offset, sub.TotalLen())
	}
	// End clamp.
	wide := Region{Chrom: "chr1", Start: 0, End: 1 << 30}
	sub, _, err = wide.Slice(g)
	if err != nil || sub.TotalLen() != len(g.Chrom("chr1").Seq) {
		t.Errorf("clamp: %v, %d", err, sub.TotalLen())
	}
	if _, _, err := (Region{Chrom: "nope"}).Slice(g); err == nil {
		t.Error("unknown chromosome must error")
	}
	if _, _, err := (Region{Chrom: "chr1", Start: 1 << 30, End: 1<<30 + 1}).Slice(g); err == nil {
		t.Error("out-of-range start must error")
	}
}

func TestSearchWithRegion(t *testing.T) {
	g, guides, _ := plantedFixture(t, 802, 4, 120000, genome.PlantPlan{0: 2, 2: 2})
	full, err := Search(g, guides, Params{MaxMismatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Pick a planted site on chr1 and restrict around it.
	var target *int
	for _, s := range full.Sites {
		if s.Chrom == "chr1" {
			p := s.Pos
			target = &p
			break
		}
	}
	if target == nil {
		t.Skip("no chr1 site this seed")
	}
	lo, hi := *target-500, *target+500
	if lo < 0 {
		lo = 0
	}
	res, err := Search(g, guides, Params{MaxMismatches: 2, Region: formatRegion("chr1", lo, hi)})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.Sites {
		if s.Chrom != "chr1" {
			t.Fatalf("region search leaked chromosome %s", s.Chrom)
		}
		if s.Pos < lo || s.Pos >= hi {
			t.Fatalf("site %d outside region [%d,%d)", s.Pos, lo, hi)
		}
		if s.Pos == *target {
			found = true
		}
	}
	if !found {
		t.Errorf("target site %d not found in region search", *target)
	}
	// Every region site must also be a full-search site (coordinates
	// correctly shifted back).
	fullSet := map[string]bool{}
	for _, s := range full.Sites {
		fullSet[siteKey(s)] = true
	}
	for _, s := range res.Sites {
		if !fullSet[siteKey(s)] {
			t.Fatalf("region site %+v not in full search", s)
		}
	}
}

func TestSearchRegionErrors(t *testing.T) {
	g, guides, _ := plantedFixture(t, 803, 2, 60000, PlantPlanLite())
	if _, err := Search(g, guides, Params{Region: "chr1:bogus"}); err == nil {
		t.Error("bad region must error")
	}
	if _, err := Search(g, guides, Params{Region: "chr99"}); err == nil {
		t.Error("unknown chromosome must error")
	}
}

func formatRegion(chrom string, lo, hi int) string {
	return chrom + ":" + itoa(lo) + "-" + itoa(hi)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
