package core

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/fasta"
	"github.com/cap-repro/crisprscan/internal/faultinject"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/report"
)

// fastaRecords serializes each chromosome to its own FASTA blob so
// tests can compute exact byte offsets for fault placement.
func fastaRecords(t *testing.T, g *genome.Genome) [][]byte {
	t.Helper()
	var out [][]byte
	for _, rec := range g.ToFasta() {
		var buf bytes.Buffer
		w := fasta.NewWriter(&buf, 0)
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		out = append(out, append([]byte(nil), buf.Bytes()...))
	}
	return out
}

func TestSearchStreamMidStreamReadError(t *testing.T) {
	g, guides, _ := plantedFixture(t, 601, 3, 40000, PlantPlanLite())
	recs := fastaRecords(t, g)
	blob := bytes.Join(recs, nil)
	// Fail mid-way through the second chromosome's record.
	failAt := int64(len(recs[0]) + len(recs[1])/2)
	fr := faultinject.NewReader(bytes.NewReader(blob), faultinject.ReaderConfig{FailAfter: failAt})

	first := g.Chroms[0].Name
	var yielded []report.Site
	stats, err := SearchStream(fr, guides, Params{MaxMismatches: 2}, func(s report.Site) error {
		yielded = append(yielded, s)
		return nil
	})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error does not wrap the injected read fault: %v", err)
	}
	if !strings.Contains(err.Error(), "core: reading genome stream:") {
		t.Fatalf("error lacks the stream-read prefix: %v", err)
	}
	if stats == nil {
		t.Fatal("partial Stats must be non-nil on a mid-stream read error")
	}
	if stats.BytesScanned != len(g.Chroms[0].Seq) {
		t.Fatalf("partial BytesScanned = %d, want %d (first chromosome only)",
			stats.BytesScanned, len(g.Chroms[0].Seq))
	}
	for _, s := range yielded {
		if s.Chrom != first {
			t.Fatalf("site yielded for chromosome %s past the fault point", s.Chrom)
		}
	}
}

// TestSearchStreamSurvivesShortReadsAndStalls pins that ragged reads
// and transient (0, nil) stalls do not change the emitted site set.
func TestSearchStreamSurvivesShortReadsAndStalls(t *testing.T) {
	g, guides, _ := plantedFixture(t, 602, 3, 40000, PlantPlanLite())
	blob := bytes.Join(fastaRecords(t, g), nil)

	collect := func(r *faultinject.Reader) []report.Site {
		var sites []report.Site
		if _, err := SearchStream(r, guides, Params{MaxMismatches: 2}, func(s report.Site) error {
			sites = append(sites, s)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return sites
	}
	clean := collect(faultinject.NewReader(bytes.NewReader(blob), faultinject.ReaderConfig{}))
	faulty := collect(faultinject.NewReader(bytes.NewReader(blob), faultinject.ReaderConfig{
		Seed: 7, MaxRead: 13, StallEvery: 5,
	}))
	if len(faulty) != len(clean) {
		t.Fatalf("faulty stream yielded %d sites, clean %d", len(faulty), len(clean))
	}
	for i := range faulty {
		if faulty[i] != clean[i] {
			t.Fatalf("site %d differs under short reads: %+v vs %+v", i, faulty[i], clean[i])
		}
	}
}

func TestSearchStreamYieldErrorWrapped(t *testing.T) {
	g, guides, _ := plantedFixture(t, 603, 3, 40000, PlantPlanLite())
	blob := bytes.Join(fastaRecords(t, g), nil)
	sentinel := errors.New("sink full")
	stats, err := SearchStream(bytes.NewReader(blob), guides, Params{MaxMismatches: 2}, func(report.Site) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("yield error not wrapped: %v", err)
	}
	if !strings.Contains(err.Error(), "core: yield on ") {
		t.Fatalf("error lacks the yield prefix: %v", err)
	}
	if stats == nil {
		t.Fatal("partial Stats must be non-nil on a yield error")
	}
}

func TestSearchStreamControlHooks(t *testing.T) {
	g, guides, _ := plantedFixture(t, 604, 3, 40000, PlantPlanLite())
	blob := bytes.Join(fastaRecords(t, g), nil)
	first, second := g.Chroms[0].Name, g.Chroms[1].Name

	var done []string
	var yielded []report.Site
	ctrl := &StreamControl{
		SkipChrom: func(name string) bool { return name == first },
		ChromDone: func(name string, sites int, scanned int64) error {
			done = append(done, name)
			if scanned != int64(len(g.Chroms[1].Seq)) {
				t.Errorf("ChromDone scanned = %d, want %d (skipped chromosome must not count)",
					scanned, len(g.Chroms[1].Seq))
			}
			return nil
		},
	}
	stats, err := SearchStreamContext(context.Background(), bytes.NewReader(blob), guides,
		Params{MaxMismatches: 2}, ctrl, func(s report.Site) error {
			yielded = append(yielded, s)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || done[0] != second {
		t.Fatalf("ChromDone ran for %v, want exactly [%s]", done, second)
	}
	for _, s := range yielded {
		if s.Chrom == first {
			t.Fatalf("skipped chromosome %s still yielded a site", first)
		}
	}
	if stats.BytesScanned != len(g.Chroms[1].Seq) {
		t.Fatalf("stats.BytesScanned = %d counts the skipped chromosome", stats.BytesScanned)
	}
}

func TestSearchStreamChromDoneErrorAborts(t *testing.T) {
	g, guides, _ := plantedFixture(t, 605, 3, 40000, PlantPlanLite())
	blob := bytes.Join(fastaRecords(t, g), nil)
	sentinel := errors.New("journal disk gone")
	calls := 0
	ctrl := &StreamControl{
		ChromDone: func(string, int, int64) error { calls++; return sentinel },
	}
	stats, err := SearchStreamContext(context.Background(), bytes.NewReader(blob), guides,
		Params{MaxMismatches: 2}, ctrl, func(report.Site) error { return nil })
	if !errors.Is(err, sentinel) {
		t.Fatalf("ChromDone error not wrapped: %v", err)
	}
	if !strings.Contains(err.Error(), "core: completing "+g.Chroms[0].Name) {
		t.Fatalf("error does not name the chromosome being completed: %v", err)
	}
	if calls != 1 {
		t.Fatalf("stream continued after ChromDone error (%d calls)", calls)
	}
	if stats == nil {
		t.Fatal("partial Stats must be non-nil on a ChromDone error")
	}
}

func TestSearchStreamEnginePanicMidStream(t *testing.T) {
	g, guides, _ := plantedFixture(t, 606, 3, 40000, PlantPlanLite())
	blob := bytes.Join(fastaRecords(t, g), nil)
	setEngineHook(t, func(e arch.Engine) arch.Engine {
		return &faultinject.Engine{Inner: e, FailOn: 2, Panic: true}
	})

	first := g.Chroms[0].Name
	var yielded []report.Site
	stats, err := SearchStream(bytes.NewReader(blob), guides, Params{MaxMismatches: 2}, func(s report.Site) error {
		yielded = append(yielded, s)
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked scanning "+g.Chroms[1].Name) {
		t.Fatalf("want recovered panic naming %s, got %v", g.Chroms[1].Name, err)
	}
	for _, s := range yielded {
		if s.Chrom != first {
			t.Fatalf("aborted chromosome %s leaked a site to yield", s.Chrom)
		}
	}
	if stats == nil || stats.BytesScanned != len(g.Chroms[0].Seq) {
		t.Fatalf("partial Stats wrong after mid-stream panic: %+v", stats)
	}
}

func TestSearchStreamCancelMidStream(t *testing.T) {
	g, guides, _ := plantedFixture(t, 607, 3, 40000, PlantPlanLite())
	blob := bytes.Join(fastaRecords(t, g), nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ctrl := &StreamControl{
		ChromDone: func(string, int, int64) error { cancel(); return nil },
	}
	stats, err := SearchStreamContext(ctx, bytes.NewReader(blob), guides,
		Params{MaxMismatches: 2}, ctrl, func(report.Site) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if !strings.Contains(err.Error(), "core: stream search canceled after 1 chromosomes") {
		t.Fatalf("error does not report partial progress: %v", err)
	}
	if stats == nil || stats.BytesScanned != len(g.Chroms[0].Seq) {
		t.Fatalf("partial Stats wrong after cancellation: %+v", stats)
	}
}
