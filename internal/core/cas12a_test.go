package core

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

// cas12aFixture plants a 5'-PAM (TTTV) site on each strand.
func cas12aFixture(t *testing.T) (*genome.Genome, []dna.Pattern, dna.Seq) {
	t.Helper()
	g := genome.Synthesize(genome.SynthConfig{Seed: 601, ChromLen: 50000})
	spacer := dna.MustParseSeq("GACGCATAAAGATGAGACGCATA") // Cas12a guides are 23nt
	c := &g.Chroms[0]
	// Plus-strand site: TTTA then the spacer.
	plus := append(dna.MustParseSeq("TTTA"), spacer...)
	copy(c.Seq[1000:], plus)
	// Minus-strand site: plus-strand window = revcomp(PAM+spacer).
	minus := append(dna.MustParseSeq("TTTC"), spacer...)
	copy(c.Seq[2000:], dna.Seq(minus).ReverseComplement())
	c.Packed = dna.Pack(c.Seq)
	return g, []dna.Pattern{dna.PatternFromSeq(spacer)}, spacer
}

func TestCas12aBothStrands(t *testing.T) {
	g, guides, spacer := cas12aFixture(t)
	res, err := Search(g, guides, Params{MaxMismatches: 0, PAM: "TTTV", PAM5: true})
	if err != nil {
		t.Fatal(err)
	}
	var plusOK, minusOK bool
	for _, s := range res.Sites {
		if s.Pos == 1000 && s.Strand == '+' && s.Mismatches == 0 {
			plusOK = true
			if s.SiteSeq != "TTTA"+spacer.String() {
				t.Errorf("plus SiteSeq = %s", s.SiteSeq)
			}
		}
		if s.Pos == 2000 && s.Strand == '-' && s.Mismatches == 0 {
			minusOK = true
			if s.SiteSeq != "TTTC"+spacer.String() {
				t.Errorf("minus SiteSeq = %s", s.SiteSeq)
			}
		}
	}
	if !plusOK {
		t.Error("plus-strand Cas12a site not found")
	}
	if !minusOK {
		t.Error("minus-strand Cas12a site not found")
	}
}

func TestCas12aEnginesAgree(t *testing.T) {
	g, guides, _ := cas12aFixture(t)
	p := Params{MaxMismatches: 2, PAM: "TTTV", PAM5: true}
	var ref []string
	for _, kind := range []EngineKind{EngineHyperscan, EngineHyperscanBitap, EngineCasOffinder, EngineCasOT, EngineAP, EngineInfant} {
		pp := p
		pp.Engine = kind
		res, err := Search(g, guides, pp)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		var keys []string
		for _, s := range res.Sites {
			keys = append(keys, s.Chrom+":"+s.SiteSeq+string(s.Strand))
		}
		if ref == nil {
			ref = keys
			if len(ref) < 2 {
				t.Fatalf("weak fixture: %d sites", len(ref))
			}
			continue
		}
		if len(keys) != len(ref) {
			t.Fatalf("%s: %d sites vs %d", kind, len(keys), len(ref))
		}
		for i := range keys {
			if keys[i] != ref[i] {
				t.Fatalf("%s: site %d differs: %s vs %s", kind, i, keys[i], ref[i])
			}
		}
	}
}

func TestCas12aMismatchBudget(t *testing.T) {
	g, guides, _ := cas12aFixture(t)
	c := &g.Chroms[0]
	// Corrupt two spacer bases of the plus site.
	for _, off := range []int{10, 15} {
		pos := 1000 + 4 + off
		c.Seq[pos] = dna.Base((int(c.Seq[pos]) + 1) % 4)
	}
	c.Packed = dna.Pack(c.Seq)
	strict, err := Search(g, guides, Params{MaxMismatches: 1, PAM: "TTTV", PAM5: true})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Search(g, guides, Params{MaxMismatches: 2, PAM: "TTTV", PAM5: true})
	if err != nil {
		t.Fatal(err)
	}
	has := func(res *Result, pos int) bool {
		for _, s := range res.Sites {
			if s.Pos == pos && s.Strand == '+' {
				return true
			}
		}
		return false
	}
	if has(strict, 1000) {
		t.Error("2-mismatch site must not pass k=1")
	}
	if !has(loose, 1000) {
		t.Error("2-mismatch site must pass k=2")
	}
}
