package core

import (
	"fmt"
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

// fuzzPAMs is the PAM family the differential fuzzer draws from:
// literal, single-ambiguity and highly ambiguous patterns.
var fuzzPAMs = []string{"NGG", "NAG", "NRG", "NNG", "TTTV"}

// FuzzEnginesAgree is the fuzz form of the cross-engine parity matrix:
// for any derived (genome, guides, k, PAM) configuration, every engine
// in AllEngines must return the byte-identical sorted site set. The
// fuzzer owns the configuration space; the engines own the claim.
func FuzzEnginesAgree(f *testing.F) {
	// Seed corpus: the parity matrix fixture plus corners of the
	// configuration space (tiny genome, many guides, k=0, k=5, PAM5
	// geometry, multi-chromosome).
	f.Add(int64(401), uint16(20000), uint8(2), uint8(3), uint8(3), uint8(0))
	f.Add(int64(402), uint16(4000), uint8(1), uint8(1), uint8(0), uint8(1))
	f.Add(int64(7), uint16(1500), uint8(3), uint8(5), uint8(5), uint8(2))
	f.Add(int64(99), uint16(600), uint8(1), uint8(4), uint8(2), uint8(3))
	f.Add(int64(1234), uint16(10000), uint8(2), uint8(2), uint8(4), uint8(4))

	f.Fuzz(func(t *testing.T, seed int64, chromLen uint16, numChroms, numGuides, k, pamIdx uint8) {
		// Derive a bounded configuration from the raw fuzz inputs: the
		// interesting space is small genomes with several guides, where
		// boundary and dedup bugs concentrate.
		cl := 200 + int(chromLen)%8000
		nc := 1 + int(numChroms)%3
		ng := 1 + int(numGuides)%4
		kk := int(k) % 6
		pamStr := fuzzPAMs[int(pamIdx)%len(fuzzPAMs)]
		pam5 := pamStr == "TTTV" // Cas12a PAM runs in Cas12a geometry

		g := genome.Synthesize(genome.SynthConfig{Seed: seed, ChromLen: cl, NumChroms: nc})
		pam := dna.MustParsePattern(pamStr)
		raw := genome.SampleGuides(g, ng, 20, pam, seed+1)
		if len(raw) < ng {
			raw = append(raw, genome.RandomGuides(ng-len(raw), 20, seed+2)...)
		}
		guides := make([]dna.Pattern, len(raw))
		for i, r := range raw {
			guides[i] = dna.PatternFromSeq(r)
		}

		var refSites []string
		var refEngine EngineKind
		for _, kind := range AllEngines {
			res, err := Search(g, guides, Params{
				MaxMismatches: kk, PAM: pamStr, PAM5: pam5, Engine: kind,
			})
			if err != nil {
				t.Fatalf("%s (seed=%d cl=%d nc=%d ng=%d k=%d pam=%s): %v",
					kind, seed, cl, nc, ng, kk, pamStr, err)
			}
			got := make([]string, len(res.Sites))
			for i, s := range res.Sites {
				got[i] = fmt.Sprintf("%+v", s)
			}
			if refSites == nil {
				refSites, refEngine = got, kind
				continue
			}
			if len(got) != len(refSites) {
				t.Fatalf("%s returned %d sites, %s returned %d (seed=%d cl=%d nc=%d ng=%d k=%d pam=%s)",
					kind, len(got), refEngine, len(refSites), seed, cl, nc, ng, kk, pamStr)
			}
			for i := range refSites {
				if got[i] != refSites[i] {
					t.Fatalf("%s diverges from %s at site %d:\n  %s\n  %s\n(seed=%d cl=%d nc=%d ng=%d k=%d pam=%s)",
						kind, refEngine, i, got[i], refSites[i], seed, cl, nc, ng, kk, pamStr)
				}
			}
		}
	})
}
