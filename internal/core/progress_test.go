package core

import (
	"bytes"
	"testing"

	"github.com/cap-repro/crisprscan/internal/fasta"
	"github.com/cap-repro/crisprscan/internal/metrics"
	"github.com/cap-repro/crisprscan/internal/report"
)

// TestSearchProgressInMemory pins the orchestrator's progress feed:
// the in-memory path sets the exact denominator, brackets every
// chromosome, and lands on fraction 1.0 with all bytes accounted.
func TestSearchProgressInMemory(t *testing.T) {
	g, guides, _ := plantedFixture(t, 601, 3, 60000, PlantPlanLite())
	prog := metrics.NewProgress()
	if _, err := Search(g, guides, Params{MaxMismatches: 2, Progress: prog}); err != nil {
		t.Fatal(err)
	}
	s := prog.Snapshot()
	if !s.Done || s.Fraction != 1 {
		t.Fatalf("final progress = %+v, want done at fraction 1", s)
	}
	if s.TotalBytes != int64(g.TotalLen()) {
		t.Errorf("total = %d, want %d", s.TotalBytes, g.TotalLen())
	}
	if s.ScannedBytes != s.TotalBytes {
		t.Errorf("scanned = %d, want %d", s.ScannedBytes, s.TotalBytes)
	}
	if s.ChromsDone != len(g.Chroms) || s.ChromsTotal != len(g.Chroms) {
		t.Errorf("chroms = %d/%d, want %d/%d", s.ChromsDone, s.ChromsTotal, len(g.Chroms), len(g.Chroms))
	}
	for _, c := range s.Chroms {
		if !c.Done {
			t.Errorf("chromosome %s not marked done", c.Name)
		}
	}
	if s.ETASec != 0 {
		t.Errorf("final ETA = %v, want 0", s.ETASec)
	}
}

// TestSearchProgressStream pins the streaming feed: chromosomes are
// discovered lazily, an aborted-free run finishes at 1.0, and the
// caller-supplied total estimate is respected.
func TestSearchProgressStream(t *testing.T) {
	g, guides, _ := plantedFixture(t, 602, 3, 60000, PlantPlanLite())
	var buf bytes.Buffer
	w := fasta.NewWriter(&buf, 0)
	for _, rec := range g.ToFasta() {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	prog := metrics.NewProgress()
	prog.SetTotalBytes(int64(buf.Len())) // file-size estimate, > sum of sequences
	_, err := SearchStream(&buf, guides, Params{MaxMismatches: 2, Progress: prog},
		func(report.Site) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Snapshot()
	if !s.Done || s.Fraction != 1 {
		t.Fatalf("final progress = %+v, want done at fraction 1", s)
	}
	if s.ChromsDone != len(g.Chroms) {
		t.Errorf("chroms done = %d, want %d", s.ChromsDone, len(g.Chroms))
	}
	// The streaming orchestrator must not clobber the caller's estimate.
	if s.TotalBytes != int64(buf.Cap()) && s.TotalBytes <= int64(g.TotalLen()) {
		t.Errorf("total = %d, want the caller's file-size estimate (> %d)", s.TotalBytes, g.TotalLen())
	}
}
