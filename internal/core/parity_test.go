package core

import (
	"fmt"
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/report"
)

// TestCrossEngineParityMatrix is the enforced form of the paper's
// central equivalence claim: every engine in AllEngines must return the
// byte-identical site set across the full configuration matrix —
// mismatch budgets 0..5, the NGG/NAG/NRG PAM family, both strands — on
// a synthesized genome. The first engine of AllEngines provides the
// reference; any divergence, and any EngineKind that the matrix did not
// execute, fails the test. The enginereg analyzer statically guarantees
// this test keeps ranging over AllEngines, so adding an engine without
// wiring it into the registry (or the registry without this matrix)
// cannot pass CI.
func TestCrossEngineParityMatrix(t *testing.T) {
	g := genome.Synthesize(genome.SynthConfig{Seed: 401, ChromLen: 20000, NumChroms: 2})
	pam := dna.MustParsePattern("NGG")
	raw := genome.SampleGuides(g, 3, 20, pam, 402)
	if len(raw) < 3 {
		t.Fatalf("fixture genome supplied only %d/3 guides", len(raw))
	}
	guides := make([]dna.Pattern, len(raw))
	for i, r := range raw {
		guides[i] = dna.PatternFromSeq(r)
	}

	budgets := []int{0, 1, 2, 3, 4, 5}
	pams := []string{"NGG", "NAG", "NRG"}

	executed := make(map[EngineKind]int)
	for _, k := range budgets {
		for _, pamStr := range pams {
			name := fmt.Sprintf("k=%d/pam=%s", k, pamStr)
			t.Run(name, func(t *testing.T) {
				var reference []report.Site
				var refEngine EngineKind
				for _, kind := range AllEngines {
					res, err := Search(g, guides, Params{
						MaxMismatches: k,
						PAM:           pamStr,
						Engine:        kind,
					})
					if err != nil {
						t.Fatalf("%s: %v", kind, err)
					}
					executed[kind]++
					if res.Stats.BytesScanned != g.TotalLen() {
						t.Errorf("%s: BytesScanned=%d, want %d", kind, res.Stats.BytesScanned, g.TotalLen())
					}
					if reference == nil {
						reference, refEngine = res.Sites, kind
						continue
					}
					if len(res.Sites) != len(reference) {
						t.Fatalf("%s returned %d sites, %s returned %d", kind, len(res.Sites), refEngine, len(reference))
					}
					for i := range reference {
						if res.Sites[i] != reference[i] {
							t.Fatalf("%s diverges from %s at site %d: %+v vs %+v",
								kind, refEngine, i, res.Sites[i], reference[i])
						}
					}
				}
				if k == 0 && pamStr == "NGG" && len(reference) == 0 {
					t.Fatal("sampled guides produced no exact NGG sites: fixture is degenerate")
				}
			})
		}
	}

	// Coverage: the matrix must have run every registered engine in
	// every configuration.
	wantRuns := len(budgets) * len(pams)
	for _, kind := range AllEngines {
		if executed[kind] != wantRuns {
			t.Errorf("engine %s executed %d/%d matrix cells", kind, executed[kind], wantRuns)
		}
	}
	if len(executed) != len(AllEngines) {
		t.Errorf("matrix covered %d engines, registry has %d", len(executed), len(AllEngines))
	}
}
