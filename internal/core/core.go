// Package core orchestrates the off-target search: it expands guides
// into both-strand pattern specs, instantiates the requested execution
// engine (measured CPU engines or modeled accelerator platforms),
// drives the scan across chromosomes, and resolves events into verified
// sites. This is the layer the public crisprscan API wraps.
package core

import (
	"context"
	"fmt"

	"github.com/cap-repro/crisprscan/internal/ap"
	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/casoffinder"
	"github.com/cap-repro/crisprscan/internal/casot"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/fpga"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/hscan"
	"github.com/cap-repro/crisprscan/internal/infant"
	"github.com/cap-repro/crisprscan/internal/metrics"
	"github.com/cap-repro/crisprscan/internal/report"
	"github.com/cap-repro/crisprscan/internal/seedindex"
)

// EngineKind selects the execution platform.
type EngineKind string

// The six systems of the paper's evaluation, plus auxiliary variants.
const (
	// EngineHyperscan is the measured CPU automata engine, using the
	// HyperScan-style literal-prefilter hybrid path.
	EngineHyperscan EngineKind = "hyperscan"
	// EngineHyperscanBitap, EngineHyperscanNFA and EngineHyperscanDFA
	// select its alternative execution paths.
	EngineHyperscanBitap EngineKind = "hyperscan-bitap"
	EngineHyperscanNFA   EngineKind = "hyperscan-nfa"
	EngineHyperscanDFA   EngineKind = "hyperscan-dfa"
	EngineHyperscanLazy  EngineKind = "hyperscan-lazydfa"
	// EngineCasOffinder is the measured CPU form of the brute-force
	// baseline; EngineCasOffinderGPU adds the analytic GPU timing model.
	EngineCasOffinder    EngineKind = "cas-offinder"
	EngineCasOffinderGPU EngineKind = "cas-offinder-gpu"
	// EngineCasOT is the measured single-thread baseline;
	// EngineCasOTIndex its seed-index variant.
	EngineCasOT      EngineKind = "casot"
	EngineCasOTIndex EngineKind = "casot-index"
	// EngineSeedIndex is the pigeonhole seed-index engine: bound to a
	// persistent genome index via Params.SeedIndex it queries candidate
	// loci instead of rescanning the genome; without one it
	// self-indexes per chromosome through the identical query path.
	EngineSeedIndex EngineKind = "seed-index"
	// EngineAP, EngineFPGA and EngineInfant are the modeled accelerator
	// platforms.
	EngineAP     EngineKind = "ap"
	EngineFPGA   EngineKind = "fpga"
	EngineInfant EngineKind = "infant2"
)

// AllEngines lists every selectable engine kind.
var AllEngines = []EngineKind{
	EngineHyperscan, EngineHyperscanBitap, EngineHyperscanNFA, EngineHyperscanDFA,
	EngineHyperscanLazy,
	EngineCasOffinder, EngineCasOffinderGPU,
	EngineCasOT, EngineCasOTIndex,
	EngineSeedIndex,
	EngineAP, EngineFPGA, EngineInfant,
}

// Params configures a search.
type Params struct {
	// MaxMismatches is the spacer Hamming budget k.
	MaxMismatches int
	// PAM is the IUPAC PAM string (default NGG).
	PAM string
	// AltPAMs lists additional accepted PAM patterns (for example NAG
	// alongside NGG); each must have the same length as PAM.
	AltPAMs []string
	// PAM5 places the PAM 5' of the spacer on the plus strand — the
	// Cas12a/Cpf1 geometry (e.g. PAM "TTTV"). Default is Cas9's 3' PAM.
	PAM5 bool
	// Region restricts the search to "chrom" or "chrom:start-end"
	// (0-based half-open). Only windows entirely inside the region are
	// reported; positions stay in full-chromosome coordinates.
	Region string
	// PlusStrandOnly restricts the search to the forward strand
	// (both strands is the default and the paper's setting).
	PlusStrandOnly bool
	// Engine selects the platform (default EngineHyperscan).
	Engine EngineKind
	// Workers sets data-parallel width for engines that support it
	// (default 1, matching the paper's single-thread CPU baselines).
	Workers int
	// SeedLen / MaxSeedMismatches configure CasOT's seed constraint.
	// Zero values mean "no seed constraint" (seed budget = k), the
	// setting under which all engines return identical sites.
	SeedLen           int
	MaxSeedMismatches int
	// MergeStates / Stride2 toggle the spatial-platform optimizations.
	MergeStates bool
	Stride2     bool
	// SeedIndex, when non-nil, binds EngineSeedIndex to a persistent
	// genome index built offline (cmd/genomeindex): scans touch only
	// candidate loci instead of re-walking the genome. Nil makes the
	// engine self-index per chromosome. Other engines ignore it.
	SeedIndex *seedindex.Index
	// Metrics, when non-nil, is the recorder the search reports into —
	// callers provide one to attach a Tracer or to aggregate several
	// searches into one recorder. When nil the orchestrator creates a
	// private recorder; either way every Result carries a Snapshot.
	Metrics *metrics.Recorder
	// Progress, when non-nil, is the live progress tracker the search
	// advances: per-chunk byte counts from the worker pool, chromosome
	// completion from the orchestrator, and (for in-memory searches) the
	// exact genome-size denominator. Snapshot it from another goroutine
	// for live progress/ETA. Nil disables tracking at the cost of one
	// nil check per chunk.
	Progress *metrics.Progress
}

func (p *Params) defaults() {
	if p.PAM == "" {
		p.PAM = "NGG"
	}
	if p.Engine == "" {
		p.Engine = EngineHyperscan
	}
	if p.Workers <= 0 {
		p.Workers = 1
	}
	if p.Metrics == nil {
		p.Metrics = metrics.NewRecorder()
	}
	// The worker pool only sees the recorder, so the progress tracker
	// rides on it (a nil tracker stays a no-op sink).
	p.Metrics.SetProgress(p.Progress)
}

// Stats describes one search execution.
type Stats struct {
	Engine string
	// ElapsedSec is measured wall-clock for the scan (all engines run
	// functionally; for modeled platforms this is simulation time, not
	// device time).
	ElapsedSec float64
	// Events is the raw match-event count before deduplication.
	Events int
	// BytesScanned is the total number of reference bases streamed
	// through the engine (the throughput denominator in tables).
	BytesScanned int
	// Modeled holds the analytic device-time breakdown for modeled
	// platforms (nil for measured engines).
	Modeled *arch.Breakdown
	// Resources holds spatial resource usage for modeled platforms.
	Resources *arch.ResourceUsage
	// Metrics is the instrumentation snapshot for this execution:
	// per-phase timings, event counters and the chunk-latency sketch
	// (see metrics.Snapshot). Populated on every Search* result; when
	// the caller supplied Params.Metrics, the snapshot covers everything
	// that recorder accumulated, including prior searches.
	Metrics *metrics.Snapshot
}

// Result is a completed search.
type Result struct {
	Sites []report.Site
	Stats Stats
}

// BuildSpecs expands guides into engine pattern specs: one plus-strand
// spec per guide and, unless plusOnly, one minus-strand spec whose
// window is the reverse complement with the PAM side flipped. Codes
// follow report.CodeFor.
func BuildSpecs(guides []dna.Pattern, pam dna.Pattern, k int, plusOnly bool) []arch.PatternSpec {
	return BuildSpecsOriented(guides, pam, k, plusOnly, false)
}

// BuildSpecsOriented is BuildSpecs with a selectable plus-strand PAM
// side: pam5 = true compiles Cas12a-style patterns whose PAM precedes
// the spacer.
func BuildSpecsOriented(guides []dna.Pattern, pam dna.Pattern, k int, plusOnly, pam5 bool) []arch.PatternSpec {
	var specs []arch.PatternSpec
	for gi, g := range guides {
		plus := arch.PatternSpec{Spacer: g, PAM: pam, PAMLeft: pam5, K: k, Code: report.CodeFor(gi, '+')}
		specs = append(specs, plus)
		if !plusOnly {
			specs = append(specs, plus.MinusSpec(report.CodeFor(gi, '-')))
		}
	}
	return specs
}

// NewEngine instantiates the requested engine for the spec set.
func NewEngine(kind EngineKind, specs []arch.PatternSpec, p Params) (arch.Engine, error) {
	switch kind {
	case EngineHyperscan, EngineHyperscanBitap, EngineHyperscanNFA, EngineHyperscanDFA, EngineHyperscanLazy:
		mode := hscan.ModePrefilter
		switch kind {
		case EngineHyperscanBitap:
			mode = hscan.ModeBitap
		case EngineHyperscanNFA:
			mode = hscan.ModeNFA
		case EngineHyperscanDFA:
			mode = hscan.ModeDFA
		case EngineHyperscanLazy:
			mode = hscan.ModeLazyDFA
		}
		e, err := hscan.New(specs, mode)
		if err != nil {
			return nil, err
		}
		e.Parallelism = p.Workers
		return e, nil
	case EngineCasOffinder:
		return casoffinder.New(specs, p.Workers)
	case EngineCasOffinderGPU:
		return casoffinder.NewGPUModel(specs, casoffinder.DefaultGPU)
	case EngineCasOT, EngineCasOTIndex:
		opt := casot.Options{SeedLen: p.SeedLen, MaxSeedMismatches: p.MaxSeedMismatches}
		if opt.SeedLen == 0 {
			// No seed constraint: budgets equal the total budget so the
			// constraint is inert.
			opt.MaxSeedMismatches = p.MaxMismatches
		}
		if kind == EngineCasOTIndex {
			if opt.SeedLen == 0 {
				opt.SeedLen = min(12, len(specs[0].Spacer))
			}
			return casot.NewIndex(specs, opt)
		}
		return casot.New(specs, opt)
	case EngineSeedIndex:
		e, err := seedindex.New(specs, p.SeedIndex, seedindex.Options{})
		if err != nil {
			return nil, err
		}
		e.Workers = p.Workers
		return e, nil
	case EngineAP:
		return ap.Compile(specs, ap.Options{MergeStates: p.MergeStates, Stride2: p.Stride2})
	case EngineFPGA:
		return fpga.Compile(specs, fpga.Options{MergeStates: p.MergeStates, Stride2: p.Stride2})
	case EngineInfant:
		return infant.Compile(specs, infant.Options{MergeStates: p.MergeStates})
	}
	return nil, fmt.Errorf("core: unknown engine %q", kind)
}

// engineHook, when non-nil, wraps the freshly built engine before any
// scanning begins. Tests use it to splice fault-injecting engines into
// the orchestrator; production code must leave it nil.
var engineHook func(arch.Engine) arch.Engine

// prepare validates params and builds the engine and resolver shared by
// Search and SearchStream.
func prepare(guides []dna.Pattern, p *Params) (arch.Engine, *report.Resolver, error) {
	p.defaults()
	if len(guides) == 0 {
		return nil, nil, fmt.Errorf("core: no guides")
	}
	pam, err := dna.ParsePattern(p.PAM)
	if err != nil {
		return nil, nil, err
	}
	if p.MaxMismatches < 0 || p.MaxMismatches > len(guides[0]) {
		return nil, nil, fmt.Errorf("core: mismatch budget %d out of range", p.MaxMismatches)
	}
	pams := []dna.Pattern{pam}
	for _, alt := range p.AltPAMs {
		ap, err := dna.ParsePattern(alt)
		if err != nil {
			return nil, nil, err
		}
		if len(ap) != len(pam) {
			return nil, nil, fmt.Errorf("core: alternative PAM %s length differs from %s", alt, p.PAM)
		}
		pams = append(pams, ap)
	}
	var specs []arch.PatternSpec
	for _, pm := range pams {
		specs = append(specs, BuildSpecsOriented(guides, pm, p.MaxMismatches, p.PlusStrandOnly, p.PAM5)...)
	}
	engine, err := NewEngine(p.Engine, specs, *p)
	if err != nil {
		return nil, nil, err
	}
	// Install the recorder before any test hook wraps the engine: a
	// fault-injection wrapper must not hide the Instrumented interface.
	arch.SetMetrics(engine, p.Metrics)
	if engineHook != nil {
		engine = engineHook(engine)
	}
	resolver, err := report.NewResolverOriented(guides, p.PAM5, pams...)
	if err != nil {
		return nil, nil, err
	}
	return engine, resolver, nil
}

// Search runs the full pipeline and returns verified, deduplicated,
// sorted sites. It is the ctx-less compatibility wrapper around
// SearchContext — the one place a background context enters the
// pipeline (see the ctxflow analyzer).
func Search(g *genome.Genome, guides []dna.Pattern, p Params) (*Result, error) {
	return SearchContext(context.Background(), g, guides, p)
}

// SearchContext is Search bounded by ctx. Cancellation and deadlines
// are honored between chromosomes here, and at chunk granularity inside
// the data-parallel CPU engines (which implement arch.ContextEngine).
// On cancellation the returned Result is non-nil and carries the sites
// and stats of the chromosomes completed before the abort, alongside an
// error wrapping context.Canceled / context.DeadlineExceeded.
func SearchContext(ctx context.Context, g *genome.Genome, guides []dna.Pattern, p Params) (*Result, error) {
	swCompile := metrics.NewStopwatch()
	endCompile := p.Metrics.TraceSpan("compile")
	engine, resolver, err := prepare(guides, &p)
	endCompile()
	if err != nil {
		return nil, err
	}
	rec := p.Metrics
	rec.AddPhaseNanos(metrics.PhaseCompile, swCompile.ElapsedNanos())
	offset := 0
	if p.Region != "" {
		region, err := ParseRegion(p.Region)
		if err != nil {
			return nil, err
		}
		g, offset, err = region.Slice(g)
		if err != nil {
			return nil, err
		}
	}
	col := report.NewCollector(resolver)
	prog := p.Progress
	if prog.TotalBytes() == 0 {
		// In-memory searches know the exact denominator (after region
		// slicing); don't override a caller-supplied estimate.
		prog.SetTotalBytes(int64(g.TotalLen()))
	}
	prog.SetChromCount(len(g.Chroms))
	events, bytesScanned := 0, 0
	start := metrics.NewStopwatch()
	partial := func(scanErr error) (*Result, error) {
		endReport := rec.StartPhase(metrics.PhaseReport)
		sites := col.Sites()
		if offset != 0 {
			for i := range sites {
				sites[i].Pos += offset
			}
		}
		endReport()
		rec.Add(metrics.CounterSitesEmitted, int64(len(sites)))
		res := &Result{
			Sites: sites,
			Stats: Stats{Engine: engine.Name(), ElapsedSec: start.Seconds(), Events: events, BytesScanned: bytesScanned},
		}
		res.Stats.Metrics = rec.Snapshot()
		return res, scanErr
	}
	for ci := range g.Chroms {
		c := &g.Chroms[ci]
		if err := ctx.Err(); err != nil {
			return partial(fmt.Errorf("core: search canceled after %d/%d chromosomes: %w", ci, len(g.Chroms), err))
		}
		var addErr error
		// Event resolution runs inline in the emit callback, so the
		// chromosome's verify share is measured per event and subtracted
		// from the scan stopwatch to get the pure prefilter time.
		var verifyNs int64
		prog.StartChrom(c.Name, int64(len(c.Seq)))
		endSpan := rec.TraceSpan("scan " + c.Name)
		swScan := metrics.NewStopwatch()
		err := scanChromSafe(ctx, engine, c, func(r automata.Report) {
			events++
			t0 := metrics.Now()
			if e := col.Add(c, r); e != nil && addErr == nil {
				addErr = e
			}
			verifyNs += metrics.Now() - t0
		})
		scanNs := swScan.ElapsedNanos()
		endSpan()
		if err == nil {
			err = addErr
		}
		if err != nil {
			return partial(fmt.Errorf("core: chromosome %s: %w", c.Name, err))
		}
		rec.AddPhaseNanos(metrics.PhaseVerify, verifyNs)
		rec.AddPhaseNanos(metrics.PhasePrefilter, scanNs-verifyNs)
		// Bytes are counted here, per completed chromosome — never per
		// chunk, where overlap regions would double-count (see the
		// accounting regression tests).
		bytesScanned += len(c.Seq)
		rec.Add(metrics.CounterBytesScanned, int64(len(c.Seq)))
		prog.FinishChrom(c.Name)
	}
	prog.Finish()
	res, _ := partial(nil)
	if m, ok := engine.(arch.Modeled); ok {
		b := m.EstimateBreakdown(g.TotalLen(), events)
		r := m.Resources()
		res.Stats.Modeled = &b
		res.Stats.Resources = &r
	}
	return res, nil
}

// scanChromSafe dispatches one chromosome scan through the ctx-aware
// engine interface when available and converts any engine panic that
// escapes to the orchestrator goroutine into an error, so a buggy or
// fault-injected engine degrades to a failed search rather than a
// process crash. (Panics inside engine worker goroutines are already
// recovered by arch.ChunkScan.)
func scanChromSafe(ctx context.Context, engine arch.Engine, c *genome.Chromosome, emit func(automata.Report)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("core: engine %s panicked scanning %s: %v", engine.Name(), c.Name, r)
		}
	}()
	return arch.ScanChrom(ctx, engine, c, emit)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
