package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
)

// TestEngineEquivalenceProperty drives randomized search configurations
// through pairs of engines and asserts identical site lists — the
// property-based generalization of the E11 fixed-fixture test.
func TestEngineEquivalenceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	rng := rand.New(rand.NewSource(701))
	pairs := [][2]EngineKind{
		{EngineHyperscan, EngineCasOT},
		{EngineHyperscanBitap, EngineCasOffinder},
		{EngineHyperscanLazy, EngineAP},
		{EngineCasOTIndex, EngineFPGA},
	}
	f := func(seed int64, kRaw, guideRaw, pamRaw, pairRaw uint8) bool {
		k := int(kRaw) % 4
		numGuides := 1 + int(guideRaw)%4
		pam := []string{"NGG", "NAG", "NRG"}[int(pamRaw)%3]
		pair := pairs[int(pairRaw)%len(pairs)]

		g := genome.Synthesize(genome.SynthConfig{Seed: seed, ChromLen: 30000})
		raw := genome.RandomGuides(numGuides, 12, seed+1)
		pats := make([]dna.Pattern, len(raw))
		for i, r := range raw {
			pats[i] = dna.PatternFromSeq(r)
		}

		var ref []string
		for _, kind := range pair {
			res, err := Search(g, pats, Params{MaxMismatches: k, PAM: pam, Engine: kind})
			if err != nil {
				return false
			}
			var keys []string
			for _, s := range res.Sites {
				keys = append(keys, s.Chrom+":"+s.SiteSeq+string(s.Strand)+s.Alignment)
			}
			if ref == nil {
				ref = keys
				continue
			}
			if len(keys) != len(ref) {
				return false
			}
			for i := range keys {
				if keys[i] != ref[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rng}); err != nil {
		t.Error(err)
	}
}
