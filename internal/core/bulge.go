package core

import (
	"fmt"
	"sort"

	"github.com/cap-repro/crisprscan/internal/align"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/metrics"
	"github.com/cap-repro/crisprscan/internal/report"
)

// BulgeParams configures the edit-distance (bulge-tolerant) search, the
// paper's extension beyond plain mismatches. It always runs on the
// automata path: the edit lattice is compiled per guide and strand and
// executed by the shared NFA simulator.
type BulgeParams struct {
	MaxMismatches int
	// MaxBulge is the combined DNA/RNA bulge budget (interior gaps).
	MaxBulge       int
	PAM            string
	PlusStrandOnly bool
}

// BulgeSite is one resolved bulge-tolerant site. Because gaps change the
// genomic footprint, Pos/Len describe the aligned spacer segment.
type BulgeSite struct {
	Guide      int
	Chrom      string
	Pos        int // plus-strand start of the full window (segment+PAM)
	Len        int // full window length (varies with net bulges)
	Strand     byte
	Mismatches int
	Bulges     int
	SiteSeq    string // guide-oriented window (spacer segment then PAM)
}

// SearchBulge runs the bulge-tolerant automata search.
func SearchBulge(g *genome.Genome, guides []dna.Pattern, p BulgeParams) ([]BulgeSite, error) {
	if len(guides) == 0 {
		return nil, fmt.Errorf("core: no guides")
	}
	if p.PAM == "" {
		p.PAM = "NGG"
	}
	pam, err := dna.ParsePattern(p.PAM)
	if err != nil {
		return nil, err
	}
	var parts []*automata.NFA
	for gi, guide := range guides {
		plus, err := automata.CompileEdit(guide, automata.EditOptions{
			MaxMismatches: p.MaxMismatches, MaxBulge: p.MaxBulge,
			PAM: pam, Code: report.CodeFor(gi, '+'),
		})
		if err != nil {
			return nil, err
		}
		parts = append(parts, plus)
		if !p.PlusStrandOnly {
			minus, err := automata.CompileEdit(guide.ReverseComplement(), automata.EditOptions{
				MaxMismatches: p.MaxMismatches, MaxBulge: p.MaxBulge,
				PAM: pam.ReverseComplement(), PAMLeft: true, Code: report.CodeFor(gi, '-'),
			})
			if err != nil {
				return nil, err
			}
			parts = append(parts, minus)
		}
	}
	u, err := automata.UnionAll("bulge", parts)
	if err != nil {
		return nil, err
	}
	sim := automata.NewSim(u)
	var sites []BulgeSite
	seen := map[string]bool{}
	for ci := range g.Chroms {
		c := &g.Chroms[ci]
		var resolveErr error
		sim.Scan(automata.SymbolsOfSeq(c.Seq), func(r automata.Report) {
			if resolveErr != nil {
				return
			}
			site, err := resolveBulge(c, r, guides, pam, p)
			if err != nil {
				resolveErr = err
				return
			}
			key := fmt.Sprintf("%d:%s:%d:%d:%c", site.Guide, site.Chrom, site.Pos, site.Len, site.Strand)
			if !seen[key] {
				seen[key] = true
				sites = append(sites, site)
			}
		})
		if resolveErr != nil {
			return nil, resolveErr
		}
	}
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.Chrom != b.Chrom {
			return a.Chrom < b.Chrom
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Guide < b.Guide
	})
	return sites, nil
}

// resolveBulge re-aligns the event's window to recover the alignment
// length and cost. The automaton guarantees some feasible alignment
// exists; the resolver picks the one with the fewest bulges (then fewest
// mismatches).
func resolveBulge(c *genome.Chromosome, ev automata.Report, guides []dna.Pattern, pam dna.Pattern, p BulgeParams) (BulgeSite, error) {
	guide, strand := report.DecodeCode(ev.Code)
	if guide < 0 || guide >= len(guides) {
		return BulgeSite{}, fmt.Errorf("core: bulge event code %d out of range", ev.Code)
	}
	spacer := guides[guide]
	m := len(spacer)
	// Try gap budgets in increasing order so the reported site carries
	// the minimal bulge count; for each budget, every feasible segment
	// length.
	for gaps := 0; gaps <= p.MaxBulge; gaps++ {
		for L := m - gaps; L <= m+gaps; L++ {
			if L < 1 {
				continue
			}
			winLen := L + len(pam)
			pos := ev.End - winLen + 1
			if pos < 0 {
				continue
			}
			window := c.Seq[pos : pos+winLen]
			oriented := window
			if strand == '-' {
				oriented = window.ReverseComplement()
			}
			seg, pamSeq := oriented[:L], oriented[L:]
			if len(pam) > 0 && !pam.Matches(pamSeq) {
				continue
			}
			if subs, ok := align.Edit(spacer, seg, p.MaxMismatches, gaps); ok {
				return BulgeSite{
					Guide: guide, Chrom: c.Name, Pos: pos, Len: winLen,
					Strand: strand, Mismatches: subs, Bulges: gaps,
					SiteSeq: oriented.String(),
				}, nil
			}
		}
	}
	return BulgeSite{}, fmt.Errorf("core: could not re-align bulge event %+v on %s (engine/resolver mismatch)", ev, c.Name)
}

// BulgeElapsed wraps SearchBulge with wall-clock measurement for the
// E12 experiment.
func BulgeElapsed(g *genome.Genome, guides []dna.Pattern, p BulgeParams) ([]BulgeSite, float64, error) {
	var sites []BulgeSite
	sec, err := metrics.MeasureSeconds(func() error {
		var serr error
		sites, serr = SearchBulge(g, guides, p)
		return serr
	})
	return sites, sec, err
}
