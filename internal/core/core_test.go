package core

import (
	"math/rand"
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/report"
)

// plantedFixture builds a genome with known off-target sites.
func plantedFixture(t *testing.T, seed int64, guides, chromLen int, plan genome.PlantPlan) (*genome.Genome, []dna.Pattern, []genome.PlantedSite) {
	t.Helper()
	g := genome.Synthesize(genome.SynthConfig{Seed: seed, ChromLen: chromLen, NumChroms: 2})
	raw := genome.RandomGuides(guides, 20, seed+1)
	sites, err := genome.Plant(g, raw, dna.MustParsePattern("NGG"), plan, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	pats := make([]dna.Pattern, len(raw))
	for i, r := range raw {
		pats[i] = dna.PatternFromSeq(r)
	}
	return g, pats, sites
}

func siteSet(sites []report.Site) map[string]bool {
	set := make(map[string]bool, len(sites))
	for _, s := range sites {
		set[siteKey(s)] = true
	}
	return set
}

func siteKey(s report.Site) string {
	return s.Chrom + ":" + string(rune(s.Pos)) + string(s.Strand) + string(rune(s.Guide)) + string(rune(s.Mismatches))
}

// TestE11CrossEngineEquivalence is the accuracy experiment: every
// engine must return the identical site set, and that set must include
// every planted site (100% recall).
func TestE11CrossEngineEquivalence(t *testing.T) {
	plan := genome.PlantPlan{0: 1, 1: 2, 2: 2, 3: 1}
	g, guides, planted := plantedFixture(t, 201, 6, 120000, plan)
	params := Params{MaxMismatches: 3}

	var reference []report.Site
	for _, kind := range AllEngines {
		p := params
		p.Engine = kind
		res, err := Search(g, guides, p)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if kind == AllEngines[0] {
			reference = res.Sites
			// Recall check against planted truth.
			got := siteSet(res.Sites)
			for _, ps := range planted {
				key := siteKey(report.Site{Chrom: ps.Chrom, Pos: ps.Pos, Strand: ps.Strand, Guide: ps.Guide, Mismatches: ps.Mismatches})
				if !got[key] {
					t.Errorf("planted site %+v not found by %s", ps, kind)
				}
			}
			continue
		}
		if len(res.Sites) != len(reference) {
			t.Fatalf("%s: %d sites, reference %d", kind, len(res.Sites), len(reference))
		}
		for i := range reference {
			if res.Sites[i] != reference[i] {
				t.Fatalf("%s: site %d differs: %+v vs %+v", kind, i, res.Sites[i], reference[i])
			}
		}
	}
}

func TestSearchBothStrandsFindsMinusSites(t *testing.T) {
	g, guides, planted := plantedFixture(t, 202, 4, 80000, genome.PlantPlan{1: 3})
	res, err := Search(g, guides, Params{MaxMismatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	minusPlanted, minusFound := 0, 0
	got := siteSet(res.Sites)
	for _, ps := range planted {
		if ps.Strand != '-' {
			continue
		}
		minusPlanted++
		if got[siteKey(report.Site{Chrom: ps.Chrom, Pos: ps.Pos, Strand: '-', Guide: ps.Guide, Mismatches: ps.Mismatches})] {
			minusFound++
		}
	}
	if minusPlanted == 0 {
		t.Skip("no minus-strand plants this seed")
	}
	if minusFound != minusPlanted {
		t.Errorf("found %d/%d minus-strand sites", minusFound, minusPlanted)
	}
}

func TestPlusStrandOnly(t *testing.T) {
	g, guides, _ := plantedFixture(t, 203, 3, 60000, genome.PlantPlan{0: 2})
	res, err := Search(g, guides, Params{MaxMismatches: 1, PlusStrandOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Sites {
		if s.Strand != '+' {
			t.Fatalf("plus-only search returned %c-strand site %+v", s.Strand, s)
		}
	}
}

func TestSearchParamErrors(t *testing.T) {
	g, guides, _ := plantedFixture(t, 204, 2, 60000, genome.PlantPlan{})
	if _, err := Search(g, nil, Params{}); err == nil {
		t.Error("no guides must error")
	}
	if _, err := Search(g, guides, Params{MaxMismatches: 99}); err == nil {
		t.Error("bad budget must error")
	}
	if _, err := Search(g, guides, Params{PAM: "XYZ"}); err == nil {
		t.Error("bad PAM must error")
	}
	if _, err := Search(g, guides, Params{Engine: "warp-drive"}); err == nil {
		t.Error("unknown engine must error")
	}
}

func TestModeledStatsPresent(t *testing.T) {
	g, guides, _ := plantedFixture(t, 205, 2, 60000, genome.PlantPlan{0: 1})
	res, err := Search(g, guides, Params{MaxMismatches: 1, Engine: EngineAP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Modeled == nil || res.Stats.Resources == nil {
		t.Fatal("modeled engine must report breakdown and resources")
	}
	if res.Stats.Modeled.Kernel <= 0 {
		t.Error("kernel estimate missing")
	}
	if res.Stats.Resources.States <= 0 {
		t.Error("resource states missing")
	}
	cpu, err := Search(g, guides, Params{MaxMismatches: 1})
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Stats.Modeled != nil {
		t.Error("measured engine must not report a model breakdown")
	}
	if cpu.Stats.ElapsedSec <= 0 {
		t.Error("elapsed time missing")
	}
}

func TestCasOTSeedConstraintReducesSites(t *testing.T) {
	g, guides, _ := plantedFixture(t, 206, 4, 150000, genome.PlantPlan{3: 4})
	loose, err := Search(g, guides, Params{MaxMismatches: 3, Engine: EngineCasOT})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := Search(g, guides, Params{MaxMismatches: 3, Engine: EngineCasOT, SeedLen: 12, MaxSeedMismatches: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(strict.Sites) >= len(loose.Sites) {
		t.Errorf("seed constraint should reduce sites: %d vs %d", len(strict.Sites), len(loose.Sites))
	}
}

func TestStride2AndMergeEquivalent(t *testing.T) {
	g, guides, _ := plantedFixture(t, 207, 3, 80000, genome.PlantPlan{1: 2, 2: 2})
	base, err := Search(g, guides, Params{MaxMismatches: 2, Engine: EngineFPGA})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Search(g, guides, Params{MaxMismatches: 2, Engine: EngineFPGA, MergeStates: true, Stride2: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Sites) != len(opt.Sites) {
		t.Fatalf("optimized FPGA differs: %d vs %d sites", len(opt.Sites), len(base.Sites))
	}
	for i := range base.Sites {
		if base.Sites[i] != opt.Sites[i] {
			t.Fatalf("site %d differs", i)
		}
	}
}

func TestSearchBulgeFindsPlantedBulges(t *testing.T) {
	// Build a genome, then hand-plant one deletion variant and one
	// insertion variant of a guide, each with an AGG PAM.
	g := genome.Synthesize(genome.SynthConfig{Seed: 208, ChromLen: 50000})
	rng := rand.New(rand.NewSource(209))
	guide := make(dna.Seq, 20)
	for i := range guide {
		guide[i] = dna.Base(rng.Intn(4))
	}
	// Deletion of spacer position 10.
	del := append(append(dna.Seq{}, guide[:10]...), guide[11:]...)
	del = append(del, dna.MustParseSeq("AGG")...)
	// Insertion of a base after position 10 (choose a base differing
	// from guide[10] so the window cannot be explained mismatch-only).
	insBase := dna.Base((int(guide[10]) + 1) % 4)
	ins := append(append(dna.Seq{}, guide[:10]...), insBase)
	ins = append(ins, guide[10:]...)
	ins = append(ins, dna.MustParseSeq("AGG")...)
	c := &g.Chroms[0]
	copy(c.Seq[1000:], del)
	copy(c.Seq[2000:], ins)
	c.Packed = dna.Pack(c.Seq)

	sites, err := SearchBulge(g, []dna.Pattern{dna.PatternFromSeq(guide)}, BulgeParams{
		MaxMismatches: 0, MaxBulge: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	foundDel, foundIns := false, false
	for _, s := range sites {
		if s.Chrom == "chr1" && s.Pos == 1000 && s.Bulges == 1 {
			foundDel = true
		}
		if s.Chrom == "chr1" && s.Pos == 2000 && s.Bulges == 1 {
			foundIns = true
		}
	}
	if !foundDel {
		t.Errorf("deletion bulge site not found; sites: %+v", sites)
	}
	if !foundIns {
		t.Errorf("insertion bulge site not found; sites: %+v", sites)
	}
}

func TestSearchBulgeZeroBulgeMatchesHamming(t *testing.T) {
	g, guides, _ := plantedFixture(t, 210, 3, 60000, genome.PlantPlan{0: 1, 2: 2})
	ham, err := Search(g, guides, Params{MaxMismatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	bulge, err := SearchBulge(g, guides, BulgeParams{MaxMismatches: 2, MaxBulge: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(bulge) != len(ham.Sites) {
		t.Fatalf("bulge(b=0) %d sites vs hamming %d", len(bulge), len(ham.Sites))
	}
	for i, b := range bulge {
		h := ham.Sites[i]
		if b.Chrom != h.Chrom || b.Pos != h.Pos || b.Strand != h.Strand || b.Guide != h.Guide || b.Mismatches != h.Mismatches {
			t.Fatalf("site %d differs: %+v vs %+v", i, b, h)
		}
	}
}

func TestSearchBulgeErrors(t *testing.T) {
	g := genome.Synthesize(genome.SynthConfig{Seed: 1, ChromLen: 1000})
	if _, err := SearchBulge(g, nil, BulgeParams{}); err == nil {
		t.Error("no guides must error")
	}
	if _, err := SearchBulge(g, []dna.Pattern{dna.MustParsePattern("ACGTACGT")}, BulgeParams{PAM: "QQ"}); err == nil {
		t.Error("bad PAM must error")
	}
}
