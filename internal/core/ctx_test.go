package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/faultinject"
	"github.com/cap-repro/crisprscan/internal/genome"
)

// setEngineHook installs a test-only engine wrapper and restores the
// previous one on cleanup. Tests using it must not run in parallel.
func setEngineHook(t *testing.T, hook func(arch.Engine) arch.Engine) {
	t.Helper()
	prev := engineHook
	engineHook = hook
	t.Cleanup(func() { engineHook = prev })
}

// cancelingEngine cancels the search context once its first chromosome
// scan completes, so the orchestrator's between-chromosome ctx check is
// what aborts the run.
type cancelingEngine struct {
	arch.Engine
	cancel context.CancelFunc
}

func (e *cancelingEngine) ScanChrom(c *genome.Chromosome, emit func(automata.Report)) error {
	err := e.Engine.ScanChrom(c, emit)
	e.cancel()
	return err
}

func TestSearchContextCancelBetweenChromosomes(t *testing.T) {
	g, guides, _ := plantedFixture(t, 301, 3, 40000, genome.PlantPlan{1: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	setEngineHook(t, func(e arch.Engine) arch.Engine {
		return &cancelingEngine{Engine: e, cancel: cancel}
	})

	res, err := SearchContext(ctx, g, guides, Params{MaxMismatches: 1})
	if err == nil {
		t.Fatal("want cancellation error, got nil")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if !strings.Contains(err.Error(), "core: search canceled after 1/2 chromosomes") {
		t.Fatalf("error does not report partial progress: %v", err)
	}
	if res == nil {
		t.Fatal("partial Result must be non-nil on cancellation")
	}
	first := g.Chroms[0].Name
	for _, s := range res.Sites {
		if s.Chrom != first {
			t.Fatalf("partial result contains site on unscanned chromosome %s", s.Chrom)
		}
	}
	if res.Stats.Engine == "" || res.Stats.BytesScanned != len(g.Chroms[0].Seq) {
		t.Fatalf("partial Stats not populated for the completed chromosome: %+v", res.Stats)
	}
}

func TestSearchContextDeadlineBeforeStart(t *testing.T) {
	g, guides, _ := plantedFixture(t, 302, 2, 20000, genome.PlantPlan{})
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	res, err := SearchContext(ctx, g, guides, Params{MaxMismatches: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want wrapped context.DeadlineExceeded, got %v", err)
	}
	if res == nil || len(res.Sites) != 0 || res.Stats.BytesScanned != 0 {
		t.Fatalf("want empty partial result, got %+v", res)
	}
}

func TestSearchContextEngineErrorPartialResult(t *testing.T) {
	g, guides, _ := plantedFixture(t, 303, 3, 40000, genome.PlantPlan{1: 2})
	var fe *faultinject.Engine
	setEngineHook(t, func(e arch.Engine) arch.Engine {
		fe = &faultinject.Engine{Inner: e, FailOn: 2}
		return fe
	})

	res, err := SearchContext(context.Background(), g, guides, Params{MaxMismatches: 1})
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("error does not wrap the injected fault: %v", err)
	}
	if want := "core: chromosome " + g.Chroms[1].Name; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the failing chromosome (%s)", err, want)
	}
	if res == nil {
		t.Fatal("partial Result must be non-nil on engine error")
	}
	if res.Stats.BytesScanned != len(g.Chroms[0].Seq) {
		t.Fatalf("partial Stats.BytesScanned = %d, want %d (first chromosome only)",
			res.Stats.BytesScanned, len(g.Chroms[0].Seq))
	}
	if fe.Calls() != 2 {
		t.Fatalf("engine scanned %d chromosomes, want abort on the 2nd", fe.Calls())
	}
}

func TestSearchContextEnginePanicRecovered(t *testing.T) {
	g, guides, _ := plantedFixture(t, 304, 3, 40000, genome.PlantPlan{1: 2})
	setEngineHook(t, func(e arch.Engine) arch.Engine {
		return &faultinject.Engine{Inner: e, FailOn: 2, Panic: true}
	})

	res, err := SearchContext(context.Background(), g, guides, Params{MaxMismatches: 1})
	if err == nil {
		t.Fatal("want panic-derived error, got nil")
	}
	if !strings.Contains(err.Error(), "panicked scanning "+g.Chroms[1].Name) {
		t.Fatalf("error does not report the recovered panic: %v", err)
	}
	if res == nil {
		t.Fatal("partial Result must be non-nil after a recovered panic")
	}
	first := g.Chroms[0].Name
	for _, s := range res.Sites {
		if s.Chrom != first {
			t.Fatalf("partial result contains site on failed chromosome %s", s.Chrom)
		}
	}
}

// TestSearchContextCleanRunMatchesSearch pins that the ctx plumbing is
// behavior-preserving when the context never fires.
func TestSearchContextCleanRunMatchesSearch(t *testing.T) {
	g, guides, _ := plantedFixture(t, 305, 3, 40000, genome.PlantPlan{1: 2, 2: 1})
	want, err := Search(g, guides, Params{MaxMismatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SearchContext(context.Background(), g, guides, Params{MaxMismatches: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sites) != len(want.Sites) {
		t.Fatalf("ctx run found %d sites, plain run %d", len(got.Sites), len(want.Sites))
	}
	for i := range got.Sites {
		if got.Sites[i] != want.Sites[i] {
			t.Fatalf("site %d differs: %+v vs %+v", i, got.Sites[i], want.Sites[i])
		}
	}
}
