package scanserve

import (
	"sort"
	"sync"
	"sync/atomic"
)

// overflowTenant is the label the cardinality cap folds excess tenants
// into: an abusive (or buggy) client minting a new tenant name per
// request cannot grow the /metrics exposition without bound.
const overflowTenant = "other"

// tenantCounters is one tenant's slice of the service counters.
type tenantCounters struct {
	submitted atomic.Int64
	retried   atomic.Int64
	shed      atomic.Int64
	throttled atomic.Int64
}

// tenantSet is the capped tenant-label registry behind the per-tenant
// /metrics families. The first max distinct tenants get their own
// label; later ones share the "other" bucket.
type tenantSet struct {
	mu       sync.Mutex
	max      int
	m        map[string]*tenantCounters // guarded by mu
	overflow tenantCounters
}

// newTenantSet builds a registry admitting up to max distinct labels.
func newTenantSet(max int) *tenantSet {
	if max < 1 {
		max = 1
	}
	return &tenantSet{max: max, m: make(map[string]*tenantCounters)}
}

// counters returns tenant's counter block, folding past-cap tenants
// into the overflow bucket.
func (t *tenantSet) counters(tenant string) *tenantCounters {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.m[tenant]; ok {
		return c
	}
	if tenant == overflowTenant || len(t.m) >= t.max {
		return &t.overflow
	}
	c := &tenantCounters{}
	t.m[tenant] = c
	return c
}

// label maps a tenant name to its exposition label: itself while under
// the cap, "other" beyond it. It never admits a new label.
func (t *tenantSet) label(tenant string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[tenant]; ok {
		return tenant
	}
	return overflowTenant
}

// tenantSample is one tenant's counter snapshot for /metrics.
type tenantSample struct {
	tenant                              string
	submitted, retried, shed, throttled int64
}

// snapshot returns every admitted tenant plus, when touched, the
// overflow bucket, sorted by label for deterministic exposition.
func (t *tenantSet) snapshot() []tenantSample {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]tenantSample, 0, len(t.m)+1)
	for name, c := range t.m {
		out = append(out, tenantSample{
			tenant:    name,
			submitted: c.submitted.Load(), retried: c.retried.Load(),
			shed: c.shed.Load(), throttled: c.throttled.Load(),
		})
	}
	o := tenantSample{
		tenant:    overflowTenant,
		submitted: t.overflow.submitted.Load(), retried: t.overflow.retried.Load(),
		shed: t.overflow.shed.Load(), throttled: t.overflow.throttled.Load(),
	}
	if o.submitted+o.retried+o.shed+o.throttled > 0 {
		out = append(out, o)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].tenant < out[b].tenant })
	return out
}
