package scanserve

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"

	"github.com/cap-repro/crisprscan"
	"github.com/cap-repro/crisprscan/internal/checkpoint"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// countingWriter tracks the logical output size so the checkpoint
// journal can watermark it. It sits above the bufio layer: after a
// Flush, the file's size equals base + n, and that is exactly the
// value committed as Entry.OutBytes.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// scanAttempt is the production scan path for one attempt: resolve the
// genome through the resident cache, open (or resume) the job's
// checkpoint journal, truncate the output artifact to the last durable
// watermark, and stream the scan chromosome by chromosome — flushing
// and fsyncing the output before each chromosome is committed, so a
// crash at any instant resumes to byte-identical output.
func (s *Service) scanAttempt(ctx context.Context, job *Job, rec *metrics.Recorder, prog *metrics.Progress) error {
	guides := job.Spec.guides()
	params := job.Spec.params()
	var g *crisprscan.Genome
	var hit bool
	var err error
	// The cache-load span hangs under the attempt span carried by ctx
	// and is annotated hit/miss — the first question for a slow job.
	cspan, cacheEnd := metrics.SpanFromContext(ctx).StartChild("cache-load")
	if params.Engine == crisprscan.EngineSeedIndex {
		// Seed-index jobs share one table per resident genome; the build
		// is single-flight inside the cache entry.
		var ix *crisprscan.SeedIndex
		g, ix, hit, err = s.cache.getIndex(ctx, job.ResolvedGenome)
		params.SeedIndex = ix
	} else {
		g, hit, err = s.cache.get(ctx, job.ResolvedGenome)
	}
	if hit {
		cspan.SetAttr("cache", "hit")
	} else {
		cspan.SetAttr("cache", "miss")
	}
	if err != nil {
		cspan.SetAttr("error", err.Error())
	}
	cacheEnd()
	if err != nil {
		return err
	}
	if params.Workers > s.cfg.Workers*4 && s.cfg.Workers > 0 {
		// A tenant cannot commandeer the host by asking for 10k workers.
		params.Workers = s.cfg.Workers * 4
	}
	params.Metrics = rec
	params.Progress = prog

	j, err := checkpoint.Open(s.store.ckptPath(job.ID), crisprscan.FingerprintParams(guides, params))
	if err != nil {
		// A corrupt or mismatched journal will not heal on retry.
		return MarkPermanent(fmt.Errorf("scanserve: job %s: %w", job.ID, err))
	}

	outPath := s.store.outPath(job)
	f, err := os.OpenFile(outPath, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("scanserve: opening output for job %s: %w", job.ID, err)
	}
	defer f.Close()
	// Exactly-once bytes: the journal is at-least-once (output flush
	// happens before Commit), so a crash between the two leaves rows past
	// the last committed watermark. Truncating to the watermark discards
	// exactly the uncommitted suffix; the re-scan re-emits it.
	wm := j.OutBytes()
	if err := f.Truncate(wm); err != nil {
		return fmt.Errorf("scanserve: truncating output of job %s to watermark %d: %w", job.ID, wm, err)
	}
	if _, err := f.Seek(wm, io.SeekStart); err != nil {
		return fmt.Errorf("scanserve: seeking output of job %s: %w", job.ID, err)
	}
	bw := bufio.NewWriter(f)
	cw := &countingWriter{w: bw, n: wm}
	if wm == 0 && !job.Spec.BED {
		if err := crisprscan.WriteSitesTSVHeader(cw); err != nil {
			return fmt.Errorf("scanserve: writing header for job %s: %w", job.ID, err)
		}
	}

	writeSite := crisprscan.WriteSiteTSV
	if job.Spec.BED {
		writeSite = crisprscan.WriteSiteBED
	}
	ctrl := &crisprscan.StreamControl{
		SkipChrom: j.Done,
		ChromDone: func(name string, sites int, scannedBases int64) error {
			if err := bw.Flush(); err != nil {
				return fmt.Errorf("scanserve: flushing output of job %s: %w", job.ID, err)
			}
			if err := f.Sync(); err != nil {
				return fmt.Errorf("scanserve: syncing output of job %s: %w", job.ID, err)
			}
			return j.Commit(checkpoint.Entry{
				Chrom: name, Sites: sites, ScannedBases: scannedBases, OutBytes: cw.n,
			})
		},
	}
	if _, err := crisprscan.SearchGenomeStreamContext(ctx, g, guides, params, ctrl, func(site crisprscan.Site) error {
		return writeSite(cw, site)
	}); err != nil {
		return err
	}
	// ChromDone flushed and synced after the last chromosome; nothing is
	// buffered here unless the genome had zero unskipped chromosomes.
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("scanserve: flushing output of job %s: %w", job.ID, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("scanserve: syncing output of job %s: %w", job.ID, err)
	}
	if _, err := s.store.update(job.ID, func(rec *Job) { rec.Sites = j.Sites() }); err != nil {
		return fmt.Errorf("scanserve: recording site count for job %s: %w", job.ID, err)
	}
	return nil
}

// OutputPath returns the output artifact path of a job, for download
// streaming. The bool reports whether the job exists.
func (s *Service) OutputPath(id string) (string, Job, bool) {
	job, ok := s.store.get(id)
	if !ok {
		return "", Job{}, false
	}
	return s.store.outPath(&job), job, true
}
