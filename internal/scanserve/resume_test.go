package scanserve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/cap-repro/crisprscan"
	"github.com/cap-repro/crisprscan/internal/checkpoint"
	"github.com/cap-repro/crisprscan/internal/fasta"
)

// scanFixture synthesizes a 3-chromosome genome on disk plus a job
// spec whose guides are sampled from it (so the scan yields sites).
func scanFixture(t *testing.T) (genomePath string, spec JobSpec) {
	t.Helper()
	g := crisprscan.SynthesizeGenome(crisprscan.SynthConfig{Seed: 701, ChromLen: 30000, NumChroms: 3})
	guides, err := crisprscan.SampleGuides(g, 2, 20, "NGG", 702)
	if err != nil {
		t.Fatal(err)
	}
	genomePath = filepath.Join(t.TempDir(), "genome.fa")
	gf, err := os.Create(genomePath)
	if err != nil {
		t.Fatal(err)
	}
	fw := fasta.NewWriter(gf, 60)
	for _, rec := range g.ToFasta() {
		if err := fw.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := gf.Close(); err != nil {
		t.Fatal(err)
	}
	gs := make([]GuideSpec, len(guides))
	for i, gu := range guides {
		gs[i] = GuideSpec{Name: gu.Name, Spacer: gu.Spacer}
	}
	return genomePath, JobSpec{Guides: gs, K: 3}
}

// runRealJob runs one job through the production scan path (no RunScan
// hook) on a fresh service over dir and returns the finished record and
// output bytes.
func runRealJob(t *testing.T, dir, genomePath string, spec JobSpec) (Job, []byte) {
	t.Helper()
	s, err := New(Config{Dir: dir, DefaultGenome: genomePath, QuotaRate: -1, Log: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain(10 * time.Second)
	job, err := s.Submit("", spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, job.ID)
	if final.State != StateDone {
		t.Fatalf("job = %s (err %q), want done", final.State, final.Error)
	}
	out, err := os.ReadFile(s.store.outPath(&final))
	if err != nil {
		t.Fatal(err)
	}
	return final, out
}

// journalDoc mirrors the checkpoint journal's JSON for test surgery.
type journalDoc struct {
	Version     int                `json:"version"`
	Fingerprint string             `json:"fingerprint"`
	Entries     []checkpoint.Entry `json:"entries"`
}

// TestCrashResumeByteIdentical is the tentpole invariant, in-process:
// a job whose process dies mid-scan — after chromosome 1 committed,
// with uncommitted partial rows of chromosome 2 already flushed past
// the watermark — must, on restart, resume and finish with output
// byte-identical to a never-interrupted run.
func TestCrashResumeByteIdentical(t *testing.T) {
	genomePath, spec := scanFixture(t)

	refJob, refBytes := runRealJob(t, t.TempDir(), genomePath, spec)
	if refJob.Sites == 0 {
		t.Fatal("fixture produced no sites; the byte-identity check would be vacuous")
	}
	if len(refBytes) == 0 {
		t.Fatal("reference output is empty")
	}

	// Fresh directory: run the same job to completion, then rewrite its
	// on-disk state to exactly what a kill -9 mid-chromosome-2 leaves:
	// record says running, journal has only chromosome 1, output holds
	// committed bytes plus an uncommitted torn suffix.
	dir := t.TempDir()
	job, fullBytes := runRealJob(t, dir, genomePath, spec)
	if !bytes.Equal(fullBytes, refBytes) {
		t.Fatal("uninterrupted runs differ; scan output is nondeterministic")
	}
	jobDir := filepath.Join(dir, job.ID)

	recPath := filepath.Join(jobDir, jobRecordName)
	var rec map[string]any
	recData, err := os.ReadFile(recPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(recData, &rec); err != nil {
		t.Fatal(err)
	}
	rec["state"] = string(StateRunning)
	delete(rec, "sites")
	recData, err = json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(recPath, recData, 0o644); err != nil {
		t.Fatal(err)
	}

	ckptPath := filepath.Join(jobDir, "scan.ckpt")
	var doc journalDoc
	ckptData, err := os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(ckptData, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Entries) != 3 {
		t.Fatalf("journal has %d entries, fixture wants 3", len(doc.Entries))
	}
	wm := doc.Entries[0].OutBytes
	if wm <= 0 || wm >= int64(len(fullBytes)) {
		t.Fatalf("chromosome-1 watermark %d not strictly inside the %d-byte output", wm, len(fullBytes))
	}
	doc.Entries = doc.Entries[:1]
	ckptData, err = json.Marshal(&doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckptPath, ckptData, 0o644); err != nil {
		t.Fatal(err)
	}

	outPath := filepath.Join(jobDir, "out.tsv")
	torn := append([]byte(nil), fullBytes[:wm]...)
	torn = append(torn, []byte("chr2\ttorn-uncommitted-row")...)
	if err := os.WriteFile(outPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart: the job must be recovered, resumed past chromosome 1
	// only, and finish with byte-identical output.
	s2, err := New(Config{Dir: dir, DefaultGenome: genomePath, QuotaRate: -1, Log: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s2.Get(job.ID); got.State != StateQueued {
		t.Fatalf("recovered job state = %s, want queued", got.State)
	}
	s2.Start()
	defer s2.Drain(10 * time.Second)
	final := waitTerminal(t, s2, job.ID)
	if final.State != StateDone {
		t.Fatalf("resumed job = %s (err %q), want done", final.State, final.Error)
	}
	resumed, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, refBytes) {
		t.Fatalf("resumed output differs from uninterrupted run: %d vs %d bytes", len(resumed), len(refBytes))
	}
	if final.Sites != refJob.Sites {
		t.Fatalf("resumed site count %d, want %d", final.Sites, refJob.Sites)
	}
	ckptData, err = os.ReadFile(ckptPath)
	if err != nil {
		t.Fatal(err)
	}
	doc = journalDoc{}
	if err := json.Unmarshal(ckptData, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Entries) != 3 {
		t.Fatalf("resumed journal has %d entries, want 3", len(doc.Entries))
	}
}

// TestSeedIndexJobMatchesFullScan runs the same job through the
// default full-scan engine and the cache-shared seed index: the service
// must produce byte-identical output artifacts, proving the index path
// is exact end to end (cache build, stale guards, streamed emission).
func TestSeedIndexJobMatchesFullScan(t *testing.T) {
	genomePath, spec := scanFixture(t)
	refJob, full := runRealJob(t, t.TempDir(), genomePath, spec)
	if refJob.Sites == 0 {
		t.Fatal("fixture produced no sites; byte-identity would be vacuous")
	}
	idxSpec := spec
	idxSpec.Engine = "seed-index"
	idxJob, indexed := runRealJob(t, t.TempDir(), genomePath, idxSpec)
	if idxJob.Sites != refJob.Sites {
		t.Fatalf("seed-index job found %d sites, full scan %d", idxJob.Sites, refJob.Sites)
	}
	if !bytes.Equal(indexed, full) {
		t.Fatal("seed-index job output differs from the full-scan artifact")
	}
}
