package scanserve

import (
	"context"
	"fmt"
	"os"
	"sync"

	"github.com/cap-repro/crisprscan"
)

// genomeCache keeps parsed reference genomes resident and shared: the
// expensive artifact in a scan service is the multi-gigabyte decoded
// genome, and "millions of users" overwhelmingly query the same few
// references. Loads are single-flight — concurrent requests for the
// same key wait on one loader instead of parsing the FASTA N times —
// and eviction is LRU over a fixed capacity, so memory stays bounded
// when tenants rotate through many references. Keys incorporate file
// identity (size, mtime), so replacing a genome file on disk rotates
// the cache entry instead of serving stale sequence.
type genomeCache struct {
	capacity int
	load     func(path string) (*crisprscan.Genome, error)

	mu      sync.Mutex
	entries map[string]*cacheEntry // guarded by mu
	lru     []string               // guarded by mu; least-recent first

	hits, misses, evictions int64 // guarded by mu
}

// cacheEntry is one keyed load. ready is closed when g/err are final;
// both are written exactly once, before the close, so readers that
// waited on ready need no lock. The derived seed index piggybacks on
// the entry: built once per resident genome (idxOnce gives the same
// single-flight guarantee as ready does for the load) and evicted with
// it, so every seed-index job against one reference shares one table.
type cacheEntry struct {
	ready chan struct{}
	g     *crisprscan.Genome
	err   error

	idxOnce sync.Once
	idx     *crisprscan.SeedIndex
	idxErr  error
}

// newGenomeCache builds a cache holding up to capacity genomes
// (minimum 1); load defaults to crisprscan.LoadGenome.
func newGenomeCache(capacity int, load func(path string) (*crisprscan.Genome, error)) *genomeCache {
	if capacity < 1 {
		capacity = 1
	}
	if load == nil {
		load = crisprscan.LoadGenome
	}
	return &genomeCache{
		capacity: capacity,
		load:     load,
		entries:  make(map[string]*cacheEntry),
	}
}

// key derives the cache identity for a genome path: the path plus the
// file's size and mtime, so an updated reference cannot be served from
// a stale entry.
func (c *genomeCache) key(path string) (string, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return "", fmt.Errorf("scanserve: genome %s: %w", path, err)
	}
	return fmt.Sprintf("%s|%d|%d", path, fi.Size(), fi.ModTime().UnixNano()), nil
}

// getIndex returns the genome plus its shared seed index, building the
// index at most once per resident entry. The build cost is what the
// index amortizes: the first seed-index job against a reference pays
// it, every later job (and every concurrent one) reuses the table. The
// bool reports whether the genome came out of the cache (the hit/miss
// annotation on the job's cache-load span).
func (c *genomeCache) getIndex(ctx context.Context, path string) (*crisprscan.Genome, *crisprscan.SeedIndex, bool, error) {
	g, hit, err := c.get(ctx, path)
	if err != nil {
		return nil, nil, hit, err
	}
	c.mu.Lock()
	key, kerr := c.key(path)
	e := c.entries[key]
	c.mu.Unlock()
	if kerr != nil || e == nil {
		// Evicted (or the file changed) between get and here: build a
		// private index rather than fail the job.
		ix, berr := crisprscan.BuildSeedIndex(g, 0)
		if berr != nil {
			return nil, nil, hit, fmt.Errorf("scanserve: building seed index for %s: %w", path, berr)
		}
		return g, ix, hit, nil
	}
	e.idxOnce.Do(func() {
		ix, berr := crisprscan.BuildSeedIndex(g, 0)
		if berr != nil {
			e.idxErr = fmt.Errorf("scanserve: building seed index for %s: %w", path, berr)
			return
		}
		e.idx = ix
	})
	if e.idxErr != nil {
		return nil, nil, hit, e.idxErr
	}
	return g, e.idx, hit, nil
}

// get returns the genome for path, loading it at most once per key no
// matter how many tenants ask concurrently. Waiters honor ctx; a failed
// load is not cached (the next request retries). The bool reports a
// cache hit (including joining an in-flight load).
func (c *genomeCache) get(ctx context.Context, path string) (*crisprscan.Genome, bool, error) {
	key, err := c.key(path)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.touchLocked(key)
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, true, fmt.Errorf("scanserve: waiting for genome %s: %w", path, ctx.Err())
		}
		if e.err != nil {
			return nil, true, e.err
		}
		return e.g, true, nil
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.lru = append(c.lru, key)
	c.misses++
	c.mu.Unlock()

	g, lerr := c.load(path)
	c.mu.Lock()
	if lerr != nil {
		e.err = fmt.Errorf("scanserve: loading genome %s: %w", path, lerr)
		c.removeLocked(key)
	} else {
		e.g = g
	}
	close(e.ready)
	if lerr == nil {
		c.evictOverLocked()
	}
	c.mu.Unlock()
	if e.err != nil {
		return nil, false, e.err
	}
	return e.g, false, nil
}

// touchLocked moves key to the most-recent end. Caller holds mu.
func (c *genomeCache) touchLocked(key string) {
	for i, k := range c.lru {
		if k == key {
			c.lru = append(append(c.lru[:i:i], c.lru[i+1:]...), key)
			return
		}
	}
}

// removeLocked drops key entirely (failed loads). Caller holds mu.
func (c *genomeCache) removeLocked(key string) {
	delete(c.entries, key)
	for i, k := range c.lru {
		if k == key {
			c.lru = append(c.lru[:i:i], c.lru[i+1:]...)
			return
		}
	}
}

// evictOverLocked drops least-recently-used completed entries beyond
// capacity. In-flight loads (ready still open) are skipped: they are by
// construction near the MRU end, and evicting a load nobody has seen
// yet would waste it. Caller holds mu.
func (c *genomeCache) evictOverLocked() {
	excess := len(c.entries) - c.capacity
	for i := 0; excess > 0 && i < len(c.lru); {
		key := c.lru[i]
		e := c.entries[key]
		select {
		case <-e.ready:
			delete(c.entries, key)
			c.lru = append(c.lru[:i:i], c.lru[i+1:]...)
			c.evictions++
			excess--
		default:
			i++
		}
	}
}

// cacheStats is a point-in-time counters snapshot for /metrics.
type cacheStats struct {
	Hits, Misses, Evictions int64
	Resident                int
}

// stats snapshots the cache counters.
func (c *genomeCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Resident: len(c.entries)}
}
