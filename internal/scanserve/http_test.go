package scanserve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// postJob submits a spec over the API and decodes the response.
func postJob(t *testing.T, base, tenant string, spec JobSpec) (*http.Response, Job) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(tenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
	}
	return resp, job
}

func TestHTTPJobLifecycle(t *testing.T) {
	genomePath, spec := scanFixture(t)
	s, err := New(Config{Dir: t.TempDir(), DefaultGenome: genomePath, QuotaRate: -1, Log: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain(10 * time.Second)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, job := postJob(t, srv.URL, "alice", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+job.ID {
		t.Fatalf("Location = %q", loc)
	}
	if job.Tenant != "alice" {
		t.Fatalf("tenant = %q, want alice", job.Tenant)
	}

	// Output before completion: 409, not a partial file.
	if or, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/output"); err != nil {
		t.Fatal(err)
	} else {
		or.Body.Close()
		if or.StatusCode != http.StatusConflict && or.StatusCode != http.StatusOK {
			t.Fatalf("early output = %d, want 409 (or 200 if already done)", or.StatusCode)
		}
	}

	// Poll to done.
	deadline := time.NewTimer(10 * time.Second)
	defer deadline.Stop()
	var final jobView
	for {
		gr, err := http.Get(srv.URL + "/v1/jobs/" + job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if gr.StatusCode != http.StatusOK {
			t.Fatalf("poll = %d, want 200", gr.StatusCode)
		}
		final = jobView{}
		if err := json.NewDecoder(gr.Body).Decode(&final); err != nil {
			t.Fatal(err)
		}
		gr.Body.Close()
		if final.State.Terminal() {
			break
		}
		select {
		case <-deadline.C:
			t.Fatalf("job stuck in %s", final.State)
		case <-time.After(5 * time.Millisecond):
		}
	}
	if final.State != StateDone {
		t.Fatalf("job = %s (err %q), want done", final.State, final.Error)
	}

	// Download and compare with the on-disk artifact.
	or, err := http.Get(srv.URL + "/v1/jobs/" + job.ID + "/output")
	if err != nil {
		t.Fatal(err)
	}
	defer or.Body.Close()
	if or.StatusCode != http.StatusOK {
		t.Fatalf("output = %d, want 200", or.StatusCode)
	}
	if ct := or.Header.Get("Content-Type"); !strings.Contains(ct, "tab-separated") {
		t.Fatalf("output Content-Type = %q", ct)
	}
	body, err := io.ReadAll(or.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "\t") || len(body) == 0 {
		t.Fatalf("output body is not TSV (%d bytes)", len(body))
	}

	// Listing includes the job.
	lr, err := http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Body.Close()
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != job.ID {
		t.Fatalf("list = %+v, want the one job", list.Jobs)
	}
}

func TestHTTPBackpressureAndErrors(t *testing.T) {
	release := make(chan struct{})
	s := testService(t, Config{
		Workers:  1,
		MaxQueue: 1,
		RunScan: func(ctx context.Context, job Job) error {
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	defer close(release)
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	// Bad JSON → 400.
	br, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	br.Body.Close()
	if br.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON = %d, want 400", br.StatusCode)
	}

	// Invalid spec → 400.
	if resp, _ := postJob(t, srv.URL, "", JobSpec{K: 1}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no-guides spec = %d, want 400", resp.StatusCode)
	}

	// Fill the worker and the queue, then overload → 429 + Retry-After.
	resp, first := postJob(t, srv.URL, "", oneGuide())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	deadline := time.NewTimer(5 * time.Second)
	defer deadline.Stop()
	for {
		if job, _ := s.Get(first.ID); job.State == StateRunning {
			break
		}
		select {
		case <-deadline.C:
			t.Fatal("first job never started")
		case <-time.After(time.Millisecond):
		}
	}
	if resp, _ := postJob(t, srv.URL, "", oneGuide()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", resp.StatusCode)
	}
	resp, _ = postJob(t, srv.URL, "", oneGuide())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Unknown job → 404 on get, output, cancel.
	for _, path := range []string{"/v1/jobs/j999999", "/v1/jobs/j999999/output"} {
		gr, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		gr.Body.Close()
		if gr.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, gr.StatusCode)
		}
	}
	cr, err := http.Post(srv.URL+"/v1/jobs/j999999/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()
	if cr.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d, want 404", cr.StatusCode)
	}

	// Draining → 503.
	s.Drain(100 * time.Millisecond)
	resp, _ = postJob(t, srv.URL, "", oneGuide())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
}

func TestHTTPCancel(t *testing.T) {
	started := make(chan struct{})
	s := testService(t, Config{
		Workers: 1,
		RunScan: func(ctx context.Context, job Job) error {
			close(started)
			<-ctx.Done()
			return ctx.Err()
		},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, job := postJob(t, srv.URL, "", oneGuide())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	<-started
	cr, err := http.Post(srv.URL+"/v1/jobs/"+job.ID+"/cancel", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()
	if cr.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel = %d, want 202", cr.StatusCode)
	}
	if final := waitTerminal(t, s, job.ID); final.State != StateCancelled {
		t.Fatalf("cancelled job = %s", final.State)
	}
}
