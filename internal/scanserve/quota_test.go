package scanserve

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced monotonic clock for quota tests.
type fakeClock struct{ ns int64 }

func (c *fakeClock) now() int64              { return c.ns }
func (c *fakeClock) advance(d time.Duration) { c.ns += int64(d) }

func TestQuotaBurstThenRefill(t *testing.T) {
	clk := &fakeClock{}
	q := newQuotas(2, 3, clk.now) // 2 tokens/sec, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := q.allow("a"); !ok {
			t.Fatalf("burst submission %d rejected", i)
		}
	}
	ok, retryAfter := q.allow("a")
	if ok {
		t.Fatal("submission beyond burst allowed")
	}
	// Empty bucket at 2 tokens/sec: next token in 0.5s.
	if retryAfter != 500*time.Millisecond {
		t.Fatalf("retryAfter = %v, want 500ms", retryAfter)
	}
	// Waiting the advertised interval makes exactly one token available.
	clk.advance(retryAfter)
	if ok, _ := q.allow("a"); !ok {
		t.Fatal("submission after advertised Retry-After still rejected")
	}
	if ok, _ := q.allow("a"); ok {
		t.Fatal("second submission allowed without further refill")
	}
}

func TestQuotaTenantsAreIndependent(t *testing.T) {
	clk := &fakeClock{}
	q := newQuotas(1, 1, clk.now)
	if ok, _ := q.allow("a"); !ok {
		t.Fatal("tenant a's first submission rejected")
	}
	if ok, _ := q.allow("a"); ok {
		t.Fatal("tenant a allowed beyond burst")
	}
	if ok, _ := q.allow("b"); !ok {
		t.Fatal("tenant b throttled by tenant a's spending")
	}
}

func TestQuotaRefillCapsAtBurst(t *testing.T) {
	clk := &fakeClock{}
	q := newQuotas(10, 2, clk.now)
	if ok, _ := q.allow("a"); !ok {
		t.Fatal("first submission rejected")
	}
	// A long idle period must not bank more than burst tokens.
	clk.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := q.allow("a"); !ok {
			t.Fatalf("submission %d after idle rejected", i)
		}
	}
	if ok, _ := q.allow("a"); ok {
		t.Fatal("idle period banked more than burst")
	}
}

func TestQuotaDisabled(t *testing.T) {
	q := newQuotas(0, 1, (&fakeClock{}).now)
	for i := 0; i < 100; i++ {
		if ok, _ := q.allow("a"); !ok {
			t.Fatal("disabled quota rejected a submission")
		}
	}
}
