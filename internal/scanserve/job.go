package scanserve

import (
	"fmt"
	"strings"

	"github.com/cap-repro/crisprscan"
)

// State is one job lifecycle state. The machine is:
//
//	queued → running → done
//	                 ↘ failed      (permanent error, retries exhausted,
//	                                or deadline)
//	                 ↘ cancelled   (client cancel)
//	                 ↘ queued      (transient error within the retry
//	                                budget, drain, or crash recovery)
//	queued → cancelled             (client cancel before dispatch)
//
// done, failed and cancelled are terminal. A job found in the running
// state at startup is a crash artifact and is re-queued: its checkpoint
// journal and output watermark make the re-run resume instead of
// restart.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state ends the job's lifecycle.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// GuideSpec is one guide in a job submission.
type GuideSpec struct {
	Name   string `json:"name,omitempty"`
	Spacer string `json:"spacer"`
}

// JobSpec is the client-supplied description of one scan: the guides
// plus the parameter subset that is safe to accept over the wire.
type JobSpec struct {
	// Genome names the reference. With a configured genome directory it
	// is a relative path resolved under it; otherwise it must be empty
	// and the service's default genome is used.
	Genome string      `json:"genome,omitempty"`
	Guides []GuideSpec `json:"guides"`
	// K is the mismatch budget.
	K       int      `json:"k"`
	PAM     string   `json:"pam,omitempty"`
	AltPAMs []string `json:"alt_pams,omitempty"`
	PAM5    bool     `json:"pam5,omitempty"`
	// PlusOnly restricts to the plus strand.
	PlusOnly bool `json:"plus_only,omitempty"`
	// Engine selects the execution engine (default hyperscan).
	Engine string `json:"engine,omitempty"`
	// Workers widens the data-parallel engines (capped by the service).
	Workers int `json:"workers,omitempty"`
	// BED selects BED6 output instead of TSV.
	BED bool `json:"bed,omitempty"`
}

// guides converts the spec's guides to the public API form.
func (sp *JobSpec) guides() []crisprscan.Guide {
	gs := make([]crisprscan.Guide, len(sp.Guides))
	for i, g := range sp.Guides {
		name := g.Name
		if name == "" {
			name = fmt.Sprintf("g%d", i)
		}
		gs[i] = crisprscan.Guide{Name: name, Spacer: g.Spacer}
	}
	return gs
}

// params converts the spec to search parameters (metrics and progress
// are attached per attempt by the worker).
func (sp *JobSpec) params() crisprscan.Params {
	return crisprscan.Params{
		MaxMismatches:  sp.K,
		PAM:            sp.PAM,
		AltPAMs:        sp.AltPAMs,
		PAM5:           sp.PAM5,
		PlusStrandOnly: sp.PlusOnly,
		Engine:         crisprscan.Engine(sp.Engine),
		Workers:        sp.Workers,
	}
}

// validate rejects specs that could never run. Parameter validation
// beyond this (PAM syntax, spacer alphabet) happens at scan time and
// classifies permanent, so a bad job fails fast either way; this check
// exists to give submitters a 400 instead of a failed job.
func (sp *JobSpec) validate() error {
	if len(sp.Guides) == 0 {
		return fmt.Errorf("scanserve: job has no guides")
	}
	for i, g := range sp.Guides {
		if strings.TrimSpace(g.Spacer) == "" {
			return fmt.Errorf("scanserve: guide %d has an empty spacer", i)
		}
	}
	if sp.K < 0 {
		return fmt.Errorf("scanserve: negative mismatch budget %d", sp.K)
	}
	if strings.Contains(sp.Genome, "\x00") {
		return fmt.Errorf("scanserve: invalid genome path")
	}
	return nil
}

// Job is the durable record of one submission. It is persisted as
// job.json in the job's directory after every state transition, via the
// checkpoint package's crash-safe write (temp file, fsync, rename,
// directory fsync), so the on-disk state machine is never torn and a
// committed transition survives power loss.
type Job struct {
	ID     string  `json:"id"`
	Tenant string  `json:"tenant"`
	Spec   JobSpec `json:"spec"`
	State  State   `json:"state"`
	// ResolvedGenome is the server-side validated genome path.
	ResolvedGenome string `json:"resolved_genome,omitempty"`
	// Attempts counts dispatches (1 on the first run); Retries counts
	// transient-failure re-runs actually consumed from the budget.
	Attempts int `json:"attempts,omitempty"`
	Retries  int `json:"retries,omitempty"`
	// Error and ErrorClass describe the final failure of a failed job
	// (or the most recent transient failure while retrying).
	Error      string `json:"error,omitempty"`
	ErrorClass string `json:"error_class,omitempty"`
	// Sites is the total sites in the output of a done job.
	Sites int `json:"sites,omitempty"`
	// TraceID is the job's 128-bit distributed-trace identity (32 hex
	// chars) — inherited from the submitter's traceparent header, or
	// minted at admission. TraceRoot is the job's root span (16 hex
	// chars), emitted as the parent-id of the response traceparent;
	// empty when sampling skipped the job. TraceSampled records whether
	// spans were recorded (the /debug/trace availability signal).
	TraceID      string `json:"trace_id,omitempty"`
	TraceRoot    string `json:"trace_root,omitempty"`
	TraceSampled bool   `json:"trace_sampled,omitempty"`
	// CreatedUnix/UpdatedUnix are wall-clock stamps (seconds).
	CreatedUnix int64 `json:"created_unix"`
	UpdatedUnix int64 `json:"updated_unix"`
}

// outName returns the job's output artifact name.
func (j *Job) outName() string {
	if j.Spec.BED {
		return "out.bed"
	}
	return "out.tsv"
}
