package scanserve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"

	"github.com/cap-repro/crisprscan/internal/faultinject"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

var hex32 = regexp.MustCompile(`^[0-9a-f]{32}$`)
var hex16 = regexp.MustCompile(`^[0-9a-f]{16}$`)

// postJobTraced is postJob with an inbound traceparent header.
func postJobTraced(t *testing.T, base, tenant string, spec JobSpec, traceparent string) (*http.Response, Job) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(tenantHeader, tenant)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
	}
	return resp, job
}

// flightTree fetches a job's span tree straight from the flight
// recorder (the in-process view the /debug/trace handler serves).
func flightTree(t *testing.T, s *Service, id string) *metrics.SpanTree {
	t.Helper()
	tr, ok := s.flight.Get(id)
	if !ok {
		t.Fatalf("job %s has no flight-recorder entry", id)
	}
	return tr.Tree()
}

// findSpans walks a tree and returns every node whose name has the
// given prefix, in encounter (start) order.
func findSpans(root *metrics.SpanNode, prefix string) []*metrics.SpanNode {
	if root == nil {
		return nil
	}
	var out []*metrics.SpanNode
	if strings.HasPrefix(root.Name, prefix) {
		out = append(out, root)
	}
	for _, c := range root.Children {
		out = append(out, findSpans(c, prefix)...)
	}
	return out
}

// TestTraceparentMalformedNeverRejects is the degradation contract: a
// broken inbound traceparent yields a fresh locally-minted trace, never
// a 4xx. The spec explicitly forbids rejecting requests over tracing.
func TestTraceparentMalformedNeverRejects(t *testing.T) {
	s := testService(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	inboundID := "4bf92f3577b34da6a3ce929d0e0e4736"
	malformed := []string{
		"garbage",
		"00-" + inboundID,                       // missing span and flags
		"00-" + inboundID + "-00f067aa0ba902b7", // missing flags
		"00-" + inboundID[:30] + "-00f067aa0ba902b7-01",             // short trace ID
		"00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01",    // all-zero trace ID
		"00-" + inboundID + "-" + strings.Repeat("0", 16) + "-01",   // all-zero span ID
		"00-" + strings.ToUpper(inboundID) + "-00f067aa0ba902b7-01", // uppercase hex
		"ff-" + inboundID + "-00f067aa0ba902b7-01",                  // forbidden version
		"00-" + inboundID + "-00f067aa0ba902b7-01-extra",            // v00 with trailing field
		"0-" + inboundID + "-00f067aa0ba902b7-01",                   // short version
		"00-xyzw2f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",   // non-hex trace ID
	}
	for _, h := range malformed {
		resp, job := postJobTraced(t, srv.URL, "alice", oneGuide(), h)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("traceparent %q: status %d, want 202 (malformed headers must degrade, not reject)", h, resp.StatusCode)
		}
		if !hex32.MatchString(job.TraceID) {
			t.Fatalf("traceparent %q: job trace ID %q is not 32 hex chars", h, job.TraceID)
		}
		if job.TraceID == inboundID {
			t.Fatalf("traceparent %q: malformed header's trace ID was adopted", h)
		}
		if !job.TraceSampled {
			t.Fatalf("traceparent %q: job not sampled under the always mode", h)
		}
	}
}

// TestTraceparentInheritanceAndEcho: a valid inbound traceparent seeds
// the job's trace ID, the response echoes the job's position in that
// trace, and the span tree's root is parented at the inbound span.
func TestTraceparentInheritanceAndEcho(t *testing.T) {
	s := testService(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	inboundID := "4bf92f3577b34da6a3ce929d0e0e4736"
	inboundSpan := "00f067aa0ba902b7"
	resp, job := postJobTraced(t, srv.URL, "alice", oneGuide(), "00-"+inboundID+"-"+inboundSpan+"-01")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	if job.TraceID != inboundID {
		t.Fatalf("job trace ID = %q, want inherited %q", job.TraceID, inboundID)
	}
	if !hex16.MatchString(job.TraceRoot) || job.TraceRoot == inboundSpan {
		t.Fatalf("job root span = %q, want a fresh 16-hex span", job.TraceRoot)
	}
	if got, want := resp.Header.Get("traceparent"), "00-"+inboundID+"-"+job.TraceRoot+"-01"; got != want {
		t.Fatalf("response traceparent = %q, want %q", got, want)
	}
	waitTerminal(t, s, job.ID)
	tree := flightTree(t, s, job.ID)
	if tree.TraceID != inboundID {
		t.Fatalf("tree trace ID = %q, want %q", tree.TraceID, inboundID)
	}
	if tree.Root.ParentID != inboundSpan {
		t.Fatalf("root parent = %q, want the inbound span %q", tree.Root.ParentID, inboundSpan)
	}
	if tree.Root.Open {
		t.Fatal("root span still open after the terminal state sealed the trace")
	}
}

// TestRetryAttemptsAreSiblingSpans: each dispatch of a transiently
// failing job gets its own "attempt N" span under the root, so a
// retried job's trace shows every try side by side.
func TestRetryAttemptsAreSiblingSpans(t *testing.T) {
	flaky := &faultinject.Flaky{Fails: 2, Err: errors.New("engine hiccup")}
	s := testService(t, Config{
		MaxRetries: 3,
		RetryBase:  time.Millisecond,
		RetryMax:   time.Millisecond,
		RunScan:    func(ctx context.Context, job Job) error { return flaky.Next() },
	})
	job, err := s.Submit("alice", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, job.ID)
	if final.State != StateDone || final.Retries != 2 {
		t.Fatalf("job = %s retries %d, want done after 2 retries", final.State, final.Retries)
	}
	tree := flightTree(t, s, job.ID)
	attempts := findSpans(tree.Root, "attempt ")
	if len(attempts) != 3 {
		t.Fatalf("found %d attempt spans, want 3 (2 failures + success)", len(attempts))
	}
	names := map[string]bool{}
	for _, a := range attempts {
		if a.Open {
			t.Fatalf("attempt span %q still open", a.Name)
		}
		names[a.Name] = true
	}
	if len(names) != 3 {
		t.Fatalf("attempt span names %v are not distinct siblings", names)
	}
	if qw := findSpans(tree.Root, "queue-wait"); len(qw) == 0 {
		t.Fatal("no queue-wait span recorded")
	}
	if adm := findSpans(tree.Root, "admission"); len(adm) != 1 {
		t.Fatalf("found %d admission spans, want 1", len(adm))
	}
	if st := tree.Root.Attrs["state"]; st != string(StateDone) {
		t.Fatalf("root state attr = %q, want done", st)
	}
}

// TestTracedScanSpanTree is the end-to-end acceptance check: a real
// scan through the production path (genome cache, engine compile,
// per-chromosome streaming) yields a span tree rooted at the inbound
// trace with queue-wait, attempt, cache-load, compile, and one scan
// span per chromosome — served over /debug/trace in both formats.
func TestTracedScanSpanTree(t *testing.T) {
	genomePath, spec := scanFixture(t)
	s, err := New(Config{Dir: t.TempDir(), DefaultGenome: genomePath, QuotaRate: -1, Log: quietLogger()})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer s.Drain(10 * time.Second)
	api := httptest.NewServer(s.Handler())
	defer api.Close()
	debug := httptest.NewServer(s.TraceHandler())
	defer debug.Close()

	inboundID := "0af7651916cd43dd8448eb211c80319c"
	inboundSpan := "b7ad6b7169203331"
	resp, job := postJobTraced(t, api.URL, "alice", spec, "00-"+inboundID+"-"+inboundSpan+"-01")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}
	final := waitTerminal(t, s, job.ID)
	if final.State != StateDone {
		t.Fatalf("job = %s (err %q), want done", final.State, final.Error)
	}

	tresp, err := http.Get(debug.URL + "/debug/trace/" + job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch = %d, want 200", tresp.StatusCode)
	}
	var tree metrics.SpanTree
	if err := json.NewDecoder(tresp.Body).Decode(&tree); err != nil {
		t.Fatalf("decoding span tree: %v", err)
	}
	if tree.TraceID != inboundID {
		t.Fatalf("tree trace ID = %q, want inbound %q", tree.TraceID, inboundID)
	}
	if tree.Root.ParentID != inboundSpan {
		t.Fatalf("root parent = %q, want inbound span %q", tree.Root.ParentID, inboundSpan)
	}
	if len(findSpans(tree.Root, "queue-wait")) == 0 {
		t.Fatal("no queue-wait span")
	}
	attempts := findSpans(tree.Root, "attempt ")
	if len(attempts) != 1 {
		t.Fatalf("found %d attempt spans, want 1", len(attempts))
	}
	cache := findSpans(attempts[0], "cache-load")
	if len(cache) != 1 {
		t.Fatalf("found %d cache-load spans under the attempt, want 1", len(cache))
	}
	if got := cache[0].Attrs["cache"]; got != "miss" {
		t.Fatalf("first job's cache-load attr = %q, want miss", got)
	}
	if len(findSpans(attempts[0], "compile")) != 1 {
		t.Fatal("no compile span under the attempt")
	}
	if scans := findSpans(attempts[0], "scan "); len(scans) != 3 {
		t.Fatalf("found %d per-chromosome scan spans, want 3", len(scans))
	}

	// Chrome export: a JSON array of trace events, offered as a download.
	cresp, err := http.Get(debug.URL + "/debug/trace/" + job.ID + "?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("chrome fetch = %d, want 200", cresp.StatusCode)
	}
	if cd := cresp.Header.Get("Content-Disposition"); !strings.Contains(cd, "attachment") {
		t.Fatalf("Content-Disposition = %q, want an attachment", cd)
	}
	var events []map[string]any
	if err := json.NewDecoder(cresp.Body).Decode(&events); err != nil {
		t.Fatalf("chrome export is not a JSON array: %v", err)
	}
	if len(events) < 5 {
		t.Fatalf("chrome export has %d events, want at least root+queue-wait+attempt+cache+scan", len(events))
	}

	// Second job against the resident genome: the cache-load span flips
	// to a hit, which is exactly what the annotation is for.
	_, job2 := postJobTraced(t, api.URL, "alice", spec, "")
	waitTerminal(t, s, job2.ID)
	tree2 := flightTree(t, s, job2.ID)
	cache2 := findSpans(tree2.Root, "cache-load")
	if len(cache2) != 1 || cache2[0].Attrs["cache"] != "hit" {
		t.Fatalf("second job's cache-load = %+v, want a hit annotation", cache2)
	}
}

// TestTraceEndpoint404Variants: the debug endpoint distinguishes an
// unknown job, a job sampling skipped, and a trace the flight recorder
// dropped — three different operator answers.
func TestTraceEndpoint404Variants(t *testing.T) {
	get := func(t *testing.T, base, id string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + "/debug/trace/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]string
		_ = json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body["error"]
	}

	t.Run("unknown job", func(t *testing.T) {
		s := testService(t, Config{})
		srv := httptest.NewServer(s.TraceHandler())
		defer srv.Close()
		code, msg := get(t, srv.URL, "nope")
		if code != http.StatusNotFound || !strings.Contains(msg, "unknown job") {
			t.Fatalf("got %d %q", code, msg)
		}
	})

	t.Run("not sampled", func(t *testing.T) {
		s := testService(t, Config{TraceMode: metrics.SampleRatio, TraceRatio: 0})
		srv := httptest.NewServer(s.TraceHandler())
		defer srv.Close()
		job, err := s.Submit("alice", oneGuide())
		if err != nil {
			t.Fatal(err)
		}
		if job.TraceSampled {
			t.Fatal("ratio-0 sampling recorded a trace")
		}
		if !hex32.MatchString(job.TraceID) {
			t.Fatalf("unsampled job still needs a trace identity, got %q", job.TraceID)
		}
		waitTerminal(t, s, job.ID)
		code, msg := get(t, srv.URL, job.ID)
		if code != http.StatusNotFound || !strings.Contains(msg, "not sampled") {
			t.Fatalf("got %d %q", code, msg)
		}
	})

	t.Run("dropped by retention", func(t *testing.T) {
		// Errors mode records everything but retains only failed or
		// retried jobs; a healthy job's trace is gone by its terminal state.
		s := testService(t, Config{TraceMode: metrics.SampleErrors})
		srv := httptest.NewServer(s.TraceHandler())
		defer srv.Close()
		job, err := s.Submit("alice", oneGuide())
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, s, job.ID)
		code, msg := get(t, srv.URL, job.ID)
		if code != http.StatusNotFound || !strings.Contains(msg, "dropped") {
			t.Fatalf("got %d %q", code, msg)
		}
	})
}

// TestErrorsModeRetainsFailedTraces: the flip side of the errors mode —
// a job that consumed retries keeps its trace.
func TestErrorsModeRetainsFailedTraces(t *testing.T) {
	flaky := &faultinject.Flaky{Fails: 1, Err: errors.New("hiccup")}
	s := testService(t, Config{
		TraceMode:  metrics.SampleErrors,
		MaxRetries: 2,
		RetryBase:  time.Millisecond,
		RetryMax:   time.Millisecond,
		RunScan:    func(ctx context.Context, job Job) error { return flaky.Next() },
	})
	job, err := s.Submit("alice", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, job.ID)
	if final.State != StateDone || final.Retries != 1 {
		t.Fatalf("job = %s retries %d, want done after 1 retry", final.State, final.Retries)
	}
	tree := flightTree(t, s, job.ID)
	if got := len(findSpans(tree.Root, "attempt ")); got != 2 {
		t.Fatalf("retained trace has %d attempt spans, want 2", got)
	}
}

// TestTenantMetricsCardinalityCap: a client minting tenant names cannot
// grow the exposition without bound — excess tenants fold into "other".
func TestTenantMetricsCardinalityCap(t *testing.T) {
	s := testService(t, Config{MaxTenantLabels: 2})
	for _, tenant := range []string{"a", "b", "c", "d"} {
		if _, err := s.Submit(tenant, oneGuide()); err != nil {
			t.Fatal(err)
		}
	}
	text := promText(t, s)
	for _, want := range []string{
		`crisprscan_tenant_jobs_submitted_total{tenant="a"} 1`,
		`crisprscan_tenant_jobs_submitted_total{tenant="b"} 1`,
		`crisprscan_tenant_jobs_submitted_total{tenant="other"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, `tenant="c"`) || strings.Contains(text, `tenant="d"`) {
		t.Fatalf("overflow tenants leaked their own labels:\n%s", text)
	}
}

// TestTraceFlightGaugeExported: the flight-recorder depth is visible on
// /metrics.
func TestTraceFlightGaugeExported(t *testing.T) {
	s := testService(t, Config{})
	job, err := s.Submit("alice", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, job.ID)
	if text := promText(t, s); !strings.Contains(text, "crisprscan_trace_flight_entries 1") {
		t.Fatalf("metrics missing flight gauge:\n%s", text)
	}
}

// TestTraceFileWrittenAndEvictedWithEntry: with TraceFile set, a
// sealed job's Chrome trace lands in its spool directory and lives
// exactly as long as its flight-recorder entry.
func TestTraceFileWrittenAndEvictedWithEntry(t *testing.T) {
	s := testService(t, Config{TraceFile: "trace.json", FlightEntries: 1})
	job1, err := s.Submit("alice", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, job1.ID)
	path1 := filepath.Join(s.store.jobDir(job1.ID), "trace.json")
	raw, err := os.ReadFile(path1)
	if err != nil {
		t.Fatalf("per-job trace file not written: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(raw, &events); err != nil || len(events) == 0 {
		t.Fatalf("trace file is not a non-empty Chrome event array (err %v, %d events)", err, len(events))
	}

	// A second job over the 1-entry ring evicts the first trace — and
	// with it the on-disk artifact.
	job2, err := s.Submit("alice", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, job2.ID)
	if _, err := os.Stat(path1); !os.IsNotExist(err) {
		t.Fatalf("evicted job's trace file still on disk (err %v)", err)
	}
	if _, err := os.Stat(filepath.Join(s.store.jobDir(job2.ID), "trace.json")); err != nil {
		t.Fatalf("retained job's trace file missing: %v", err)
	}
}
