package scanserve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/cap-repro/crisprscan"
	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// Config parameterizes a Service. The zero value is unusable: Dir is
// required, and either DefaultGenome or GenomeDir must be set for the
// default scan path (a RunScan hook lifts that requirement in tests).
type Config struct {
	// Dir is the durable job-state directory.
	Dir string
	// DefaultGenome is the reference used when a job names none.
	DefaultGenome string
	// GenomeDir, when set, allows jobs to name a genome by relative
	// path resolved under it; escapes and absolute paths are rejected.
	GenomeDir string
	// Workers bounds concurrent jobs (default 2).
	Workers int
	// MaxQueue bounds jobs waiting for a worker (default 64); beyond
	// it submissions are shed with Retry-After.
	MaxQueue int
	// QuotaRate is each tenant's sustained admission rate in jobs per
	// second (default 1; <= 0 disables quotas).
	QuotaRate float64
	// QuotaBurst is each tenant's bucket size (default 8).
	QuotaBurst int
	// MaxRetries bounds transient-failure re-runs per job (default 3).
	MaxRetries int
	// RetryBase and RetryMax shape the exponential backoff between
	// retries (defaults 200ms and 5s); jitter in [0, backoff/2) is
	// added from the seeded source.
	RetryBase time.Duration
	RetryMax  time.Duration
	// AttemptTimeout bounds each attempt (0 = none). Because attempts
	// resume from the checkpoint journal, a timed-out attempt retries
	// transiently: progress accrues across attempts instead of being
	// lost, and the retry budget bounds the total.
	AttemptTimeout time.Duration
	// CacheGenomes bounds the resident-genome cache (default 2).
	CacheGenomes int
	// ShedRetryAfter is the Retry-After hint when the queue is full
	// (default 1s).
	ShedRetryAfter time.Duration
	// Seed drives backoff jitter deterministically.
	Seed int64
	// Log receives service events (default slog.Default()).
	Log *slog.Logger

	// TraceMode selects span recording per job: metrics.SampleAlways
	// (the default, also for ""), metrics.SampleRatio (a deterministic
	// per-tenant fraction), or metrics.SampleErrors (record everything,
	// retain only failed or retried jobs in the flight recorder).
	TraceMode string
	// TraceRatio is the default sampling probability in ratio mode.
	TraceRatio float64
	// TenantTraceRatio overrides TraceRatio per tenant in ratio mode.
	TenantTraceRatio map[string]float64
	// FlightEntries bounds the in-memory flight recorder behind
	// /debug/trace (default 64 traces).
	FlightEntries int
	// TraceFile, when set, writes each finished job's Chrome trace to
	// this file name inside the job's spool directory; the file is
	// removed when the job's flight-recorder entry is evicted. Path
	// components are stripped.
	TraceFile string
	// MaxTenantLabels caps the tenant-label cardinality on /metrics
	// (default 32); tenants beyond the cap fold into the "other" label.
	MaxTenantLabels int

	// RunScan, when non-nil, replaces the whole scan attempt — the
	// deterministic-test seam (pair with faultinject). The production
	// path (genome cache, checkpointed streaming scan, watermarked
	// output) runs when nil.
	RunScan func(ctx context.Context, job Job) error
	// Sleep, when non-nil, replaces the backoff wait (tests record
	// durations instead of sleeping). It must honor ctx.
	Sleep func(ctx context.Context, d time.Duration) error
	// LoadGenome, when non-nil, replaces the genome cache's loader
	// (default crisprscan.LoadGenome).
	LoadGenome func(path string) (*crisprscan.Genome, error)
	// OnScanStart, when non-nil, observes every attempt's recorder and
	// progress tracker — the admin endpoint's registry hook. The
	// returned func is called when the attempt finishes.
	OnScanStart func(job Job, rec *metrics.Recorder, prog *metrics.Progress) func()
}

// Service is the long-lived scan daemon: a durable job store, a bounded
// fair-queued worker pool, per-tenant admission control, a resident
// genome cache, and graceful drain. Construct with New, call Start,
// submit with Submit, stop with Drain.
type Service struct {
	cfg     Config
	log     *slog.Logger
	store   *store
	cache   *genomeCache
	quota   *quotas
	sampler metrics.TraceSampler
	flight  *metrics.FlightRecorder
	tenants *tenantSet

	jitterMu sync.Mutex
	jitter   *rand.Rand // guarded by jitterMu

	mu        sync.Mutex
	queues    map[string][]string // guarded by mu; tenant → queued job IDs
	ring      []string            // guarded by mu; tenants with queued work, round-robin order
	rrNext    int                 // guarded by mu
	running   map[string]*runningJob
	traces    map[string]*jobTrace // guarded by mu; live (unsealed) job traces
	accepting bool                 // guarded by mu
	started   bool                 // guarded by mu

	wake    chan struct{} // 1-buffered worker doorbell
	quit    chan struct{} // closed by Drain: workers stop picking jobs
	workers sync.WaitGroup

	submitted  atomic.Int64
	finished   [3]atomic.Int64 // indexed by terminalIndex
	retried    atomic.Int64
	shed       atomic.Int64
	throttled  atomic.Int64
	queuedGa   atomic.Int64
	runningGa  atomic.Int64
	drainedReq atomic.Int64 // jobs re-queued by drain/crash for resume
}

// runningJob tracks one dispatched job. userCancel and prog are
// written and read under the owning Service's mutex; cancel is
// immutable after construction and safe to call anywhere.
type runningJob struct {
	cancel     context.CancelFunc
	userCancel bool
	prog       *metrics.Progress
}

// terminalIndex maps a terminal state to its finished-counter slot.
func terminalIndex(st State) int {
	switch st {
	case StateDone:
		return 0
	case StateFailed:
		return 1
	default:
		return 2 // cancelled
	}
}

// New validates the config, opens the job store, and re-queues any jobs
// a previous process left queued or running (crash recovery). The
// service is not accepting or scanning until Start.
func New(cfg Config) (*Service, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.QuotaBurst <= 0 {
		cfg.QuotaBurst = 8
	}
	if cfg.QuotaRate == 0 {
		cfg.QuotaRate = 1
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	} else if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 200 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5 * time.Second
	}
	if cfg.CacheGenomes <= 0 {
		cfg.CacheGenomes = 2
	}
	if cfg.ShedRetryAfter <= 0 {
		cfg.ShedRetryAfter = time.Second
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	switch cfg.TraceMode {
	case "", metrics.SampleAlways, metrics.SampleRatio, metrics.SampleErrors:
	default:
		return nil, fmt.Errorf("scanserve: unknown trace mode %q (want always, ratio, or errors)", cfg.TraceMode)
	}
	if cfg.TraceFile != "" {
		cfg.TraceFile = filepath.Base(cfg.TraceFile)
	}
	if cfg.MaxTenantLabels <= 0 {
		cfg.MaxTenantLabels = 32
	}
	if cfg.RunScan == nil && cfg.DefaultGenome == "" && cfg.GenomeDir == "" {
		return nil, fmt.Errorf("scanserve: neither a default genome nor a genome directory is configured")
	}
	st, recovered, err := openStore(cfg.Dir)
	if err != nil {
		return nil, err
	}
	s := &Service{
		cfg:   cfg,
		log:   cfg.Log,
		store: st,
		cache: newGenomeCache(cfg.CacheGenomes, cfg.LoadGenome),
		quota: newQuotas(cfg.QuotaRate, cfg.QuotaBurst, nil),
		sampler: metrics.TraceSampler{
			Mode: cfg.TraceMode, Ratio: cfg.TraceRatio, TenantRatio: cfg.TenantTraceRatio,
		},
		flight:  metrics.NewFlightRecorder(cfg.FlightEntries),
		tenants: newTenantSet(cfg.MaxTenantLabels),
		jitter:  rand.New(rand.NewSource(cfg.Seed)),
		queues:  make(map[string][]string),
		running: make(map[string]*runningJob),
		traces:  make(map[string]*jobTrace),
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
	}
	if cfg.TraceFile != "" {
		s.flight.OnEvict(s.removeTraceFile)
	}
	// Requeue every non-terminal job in creation order: queued jobs
	// from a clean drain plus running jobs the crash recovery demoted.
	for _, j := range st.list() {
		if j.State == StateQueued {
			s.enqueueLocked(j.Tenant, j.ID)
			s.queuedGa.Add(1)
		}
	}
	if len(recovered) > 0 {
		s.log.Info("recovered interrupted jobs", "jobs", recovered)
	}
	return s, nil
}

// Start begins accepting submissions and launches the worker pool.
func (s *Service) Start() {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return
	}
	s.started = true
	s.accepting = true
	s.mu.Unlock()
	for i := 0; i < s.cfg.Workers; i++ {
		s.workers.Add(1)
		go s.workerLoop(i)
	}
	s.log.Info("scan service started",
		"workers", s.cfg.Workers, "max_queue", s.cfg.MaxQueue,
		"quota_rate", s.cfg.QuotaRate, "quota_burst", s.cfg.QuotaBurst)
}

// Accepting reports whether submissions are currently admitted — the
// /readyz signal for serve mode: initialized and not draining.
func (s *Service) Accepting() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.started && s.accepting
}

// Admission errors. ErrThrottled and ErrOverloaded carry Retry-After.
var (
	// ErrDraining rejects submissions during shutdown (HTTP 503).
	ErrDraining = errors.New("scanserve: service is draining")
	// ErrUnknownJob reports a job ID with no record (HTTP 404).
	ErrUnknownJob = errors.New("scanserve: unknown job")
)

// RetryAfterError is an admission rejection with backpressure advice;
// HTTP maps it to 429 + Retry-After.
type RetryAfterError struct {
	Reason     string
	RetryAfter time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("scanserve: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// Submit validates, admits, persists and enqueues one job with a fresh
// trace. Admission control is strictly ordered: drain state, then spec
// validity, then the tenant's token bucket, then global queue depth —
// so a draining service never spends quota and a throttled tenant
// cannot probe queue depth.
func (s *Service) Submit(tenant string, spec JobSpec) (Job, error) {
	return s.SubmitTraced(tenant, spec, "")
}

// SubmitTraced is Submit joining an inbound W3C traceparent: the job's
// trace inherits the caller's trace ID, so the submitter's own tracing
// system and /debug/trace/{jobID} tell one story. A malformed header
// degrades to a fresh root trace — never a rejection.
func (s *Service) SubmitTraced(tenant string, spec JobSpec, traceparent string) (Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	if !s.Accepting() {
		return Job{}, ErrDraining
	}
	if err := spec.validate(); err != nil {
		return Job{}, err
	}
	genomePath, err := s.resolveGenome(spec.Genome)
	if err != nil {
		return Job{}, err
	}
	if ok, retryAfter := s.quota.allow(tenant); !ok {
		s.throttled.Add(1)
		s.tenants.counters(tenant).throttled.Add(1)
		return Job{}, &RetryAfterError{Reason: fmt.Sprintf("tenant %s over quota", tenant), RetryAfter: retryAfter}
	}
	s.mu.Lock()
	depth := 0
	for _, q := range s.queues {
		depth += len(q)
	}
	if depth >= s.cfg.MaxQueue {
		s.mu.Unlock()
		s.shed.Add(1)
		s.tenants.counters(tenant).shed.Add(1)
		return Job{}, &RetryAfterError{Reason: fmt.Sprintf("queue full (%d jobs)", depth), RetryAfter: s.cfg.ShedRetryAfter}
	}
	s.mu.Unlock()
	ident, tr := s.admitTrace(tenant, traceparent)
	// The admission span covers the durable create: the fsync'd record
	// write is the admission cost worth seeing in a trace.
	_, admitEnd := tr.Root().StartChild("admission")
	job, err := s.store.create(tenant, spec, genomePath, ident)
	admitEnd()
	if err != nil {
		return Job{}, err
	}
	jt := newJobTrace(tr)
	s.trackTrace(job.ID, jt)
	jt.beginQueueWait()
	s.mu.Lock()
	s.enqueueLocked(tenant, job.ID)
	s.mu.Unlock()
	s.submitted.Add(1)
	s.tenants.counters(tenant).submitted.Add(1)
	s.queuedGa.Add(1)
	s.ding()
	s.log.Info("job submitted", "job", job.ID, "tenant", tenant,
		"guides", len(spec.Guides), "k", spec.K, "trace", job.TraceID)
	return job, nil
}

// resolveGenome maps the spec's genome name to a validated path.
func (s *Service) resolveGenome(name string) (string, error) {
	if name == "" {
		if s.cfg.DefaultGenome == "" && s.cfg.RunScan == nil {
			return "", fmt.Errorf("scanserve: job names no genome and the service has no default")
		}
		return s.cfg.DefaultGenome, nil
	}
	if s.cfg.GenomeDir == "" {
		return "", fmt.Errorf("scanserve: per-job genomes require a configured genome directory")
	}
	if filepath.IsAbs(name) {
		return "", fmt.Errorf("scanserve: genome path %q must be relative to the genome directory", name)
	}
	clean := filepath.Clean(name)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("scanserve: genome path %q escapes the genome directory", name)
	}
	return filepath.Join(s.cfg.GenomeDir, clean), nil
}

// enqueueLocked appends the job to its tenant's queue and registers the
// tenant in the round-robin ring. Caller holds mu.
func (s *Service) enqueueLocked(tenant, id string) {
	if _, ok := s.queues[tenant]; !ok {
		s.ring = append(s.ring, tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], id)
}

// ding wakes one idle worker (non-blocking: the doorbell is level, not
// edge — workers re-scan the queues whenever they drain it).
func (s *Service) ding() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// nextJob blocks until a job is available or the service quits. Fair
// queuing: tenants take turns in ring order, so one tenant's burst of
// queued jobs cannot starve another's single job no matter the
// submission order.
func (s *Service) nextJob() (string, bool) {
	for {
		s.mu.Lock()
		for i := 0; i < len(s.ring); i++ {
			t := s.ring[(s.rrNext+i)%len(s.ring)]
			q := s.queues[t]
			if len(q) == 0 {
				continue
			}
			id := q[0]
			s.queues[t] = q[1:]
			if len(s.queues[t]) == 0 {
				delete(s.queues, t)
				s.ring = removeString(s.ring, t)
				if len(s.ring) > 0 {
					s.rrNext = s.rrNext % len(s.ring)
				} else {
					s.rrNext = 0
				}
			} else {
				s.rrNext = (s.rrNext + i + 1) % len(s.ring)
			}
			s.mu.Unlock()
			return id, true
		}
		s.mu.Unlock()
		select {
		case <-s.wake:
		case <-s.quit:
			return "", false
		}
	}
}

func removeString(ss []string, v string) []string {
	for i, x := range ss {
		if x == v {
			return append(ss[:i:i], ss[i+1:]...)
		}
	}
	return ss
}

// workerLoop drains jobs until Drain closes quit. Workers check quit
// before every dispatch, so drain stops new work immediately while
// in-flight jobs get the drain window to finish.
func (s *Service) workerLoop(idx int) {
	defer s.workers.Done()
	for {
		select {
		case <-s.quit:
			return
		default:
		}
		id, ok := s.nextJob()
		if !ok {
			return
		}
		s.queuedGa.Add(-1)
		s.runJob(id)
		// Another job may be waiting and every sibling might be mid-job:
		// re-ring the doorbell so the queue keeps draining.
		s.ding()
	}
}

// Get returns a job record; the bool reports existence.
func (s *Service) Get(id string) (Job, bool) { return s.store.get(id) }

// List returns every job record in creation order.
func (s *Service) List() []Job { return s.store.list() }

// Progress returns the live progress snapshot of a running job.
func (s *Service) Progress(id string) (metrics.ProgressSnapshot, bool) {
	s.mu.Lock()
	rj, ok := s.running[id]
	s.mu.Unlock()
	if !ok || rj.prog == nil {
		return metrics.ProgressSnapshot{}, false
	}
	return rj.prog.Snapshot(), true
}

// Cancel requests cancellation: a queued job is cancelled in place, a
// running job's context is cancelled (its worker records the terminal
// state), and a terminal job is left as-is. The returned record is the
// job's state as of the request.
func (s *Service) Cancel(id string) (Job, error) {
	job, ok := s.store.get(id)
	if !ok {
		return Job{}, fmt.Errorf("%w %s", ErrUnknownJob, id)
	}
	if job.State.Terminal() {
		return job, nil
	}
	s.mu.Lock()
	if rj, running := s.running[id]; running {
		rj.userCancel = true
		s.mu.Unlock()
		rj.cancel()
		s.log.Info("cancel requested for running job", "job", id)
		return job, nil
	}
	// Queued (or recovering): pull it out of its tenant queue.
	q := s.queues[job.Tenant]
	for i, qid := range q {
		if qid == id {
			s.queues[job.Tenant] = append(q[:i:i], q[i+1:]...)
			s.queuedGa.Add(-1)
			break
		}
	}
	s.mu.Unlock()
	// Removed from its queue under the lock, the job cannot be
	// dispatched anymore; this cancel owns the terminal transition, so
	// seal the trace before publishing it (same ordering as finish).
	s.sealTrace(id, StateCancelled, job.Retries)
	updated, err := s.store.update(id, func(j *Job) {
		if !j.State.Terminal() {
			j.State = StateCancelled
		}
	})
	if err != nil {
		return Job{}, err
	}
	if updated.State == StateCancelled {
		s.finished[terminalIndex(StateCancelled)].Add(1)
	}
	s.log.Info("job cancelled before dispatch", "job", id)
	return updated, nil
}

// Drain gracefully shuts the service down: stop admitting, stop
// dispatching, give in-flight jobs the window to finish, then cancel
// whatever remains so it checkpoints and re-queues for the next
// process. It returns the number of jobs that were re-queued (0 means
// every in-flight job completed).
func (s *Service) Drain(window time.Duration) int {
	s.mu.Lock()
	if !s.started || !s.accepting {
		// Not started, or a concurrent Drain already owns shutdown.
		s.mu.Unlock()
		return 0
	}
	s.accepting = false
	s.mu.Unlock()
	close(s.quit)
	s.log.Info("draining", "window", window, "running", s.runningGa.Load())

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	t := time.NewTimer(window)
	select {
	case <-done:
		t.Stop()
	case <-t.C:
		// Window expired: cancel the stragglers. Their scans stop at the
		// next chunk boundary, the completed chromosomes are already
		// journaled, and the workers re-queue them for resume.
		s.mu.Lock()
		for id, rj := range s.running {
			s.log.Warn("drain window expired; checkpointing job", "job", id)
			rj.cancel()
		}
		s.mu.Unlock()
		<-done
	}
	requeued := int(s.drainedReq.Load())
	s.log.Info("drain complete", "requeued", requeued)
	return requeued
}

// backoff computes the exponential backoff before retry n (1-based),
// with deterministic jitter in [0, base*2^(n-1)/2).
func (s *Service) backoff(n int) time.Duration {
	d := s.cfg.RetryBase
	for i := 1; i < n && d < s.cfg.RetryMax; i++ {
		d *= 2
	}
	if d > s.cfg.RetryMax {
		d = s.cfg.RetryMax
	}
	s.jitterMu.Lock()
	j := time.Duration(s.jitter.Int63n(int64(d)/2 + 1))
	s.jitterMu.Unlock()
	return d + j
}

// sleep waits d honoring ctx, through the configurable hook.
func (s *Service) sleep(ctx context.Context, d time.Duration) error {
	if s.cfg.Sleep != nil {
		return s.cfg.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runJob owns one dispatched job end to end: the retry loop, error
// classification, panic isolation, and every persisted state
// transition.
func (s *Service) runJob(id string) {
	job, ok := s.store.get(id)
	if !ok || job.State != StateQueued {
		return // cancelled between dequeue and dispatch
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rj := &runningJob{cancel: cancel}
	s.mu.Lock()
	s.running[id] = rj
	s.mu.Unlock()
	s.runningGa.Add(1)
	defer func() {
		s.mu.Lock()
		delete(s.running, id)
		s.mu.Unlock()
		s.runningGa.Add(-1)
	}()

	jt := s.traceOf(id)
	if jt == nil && job.TraceSampled && job.TraceID != "" {
		// Sampled job adopted from a previous process (crash or drain
		// resume): rebuild its trace under the same trace ID.
		jt = s.resumeTrace(&job)
	}
	jt.endQueueWait()

	if _, err := s.store.update(id, func(j *Job) { j.State = StateRunning; j.Attempts++ }); err != nil {
		s.log.Error("persisting running state", "job", id, "err", err)
	}
	log := s.log.With("job", id, "tenant", job.Tenant)

	for {
		job, _ = s.store.get(id)
		attemptErr := s.attempt(baseCtx, &job, rj)
		if attemptErr == nil {
			s.finish(id, StateDone, nil)
			log.Info("job done", "attempts", job.Attempts, "retries", job.Retries)
			return
		}
		switch Classify(attemptErr) {
		case ClassCanceled:
			s.mu.Lock()
			user := rj.userCancel
			s.mu.Unlock()
			switch {
			case user:
				s.finish(id, StateCancelled, attemptErr)
				log.Info("job cancelled", "err", attemptErr)
				return
			case baseCtx.Err() == nil && errors.Is(attemptErr, context.DeadlineExceeded):
				// The attempt's own deadline fired. Progress up to the last
				// committed chromosome is journaled, so retrying resumes
				// rather than repeats — treat it like a transient failure
				// and let the retry budget bound the total.
				if s.retryable(baseCtx, id, &job, attemptErr, log) {
					continue
				}
				s.finish(id, StateFailed, attemptErr)
				log.Warn("job failed: deadline exceeded, retries exhausted", "err", attemptErr)
				return
			default:
				// Drain (or process shutdown): park the job for resume.
				s.requeueForResume(id)
				log.Info("job checkpointed for resume", "err", attemptErr)
				return
			}
		case ClassTransient:
			if s.retryable(baseCtx, id, &job, attemptErr, log) {
				continue
			}
			s.finish(id, StateFailed, attemptErr)
			log.Warn("job failed: transient error, retries exhausted", "retries", job.Retries, "err", attemptErr)
			return
		default:
			s.finish(id, StateFailed, attemptErr)
			log.Warn("job failed", "class", "permanent", "err", attemptErr)
			return
		}
	}
}

// retryable consumes one retry from the job's budget if any remains,
// persists the accounting, and performs the backoff sleep under the
// job's context. It returns false when the budget is exhausted or the
// sleep was cancelled (drain or user cancel).
func (s *Service) retryable(ctx context.Context, id string, job *Job, cause error, log *slog.Logger) bool {
	if job.Retries >= s.cfg.MaxRetries {
		return false
	}
	updated, err := s.store.update(id, func(j *Job) {
		j.Retries++
		j.Error = cause.Error()
		j.ErrorClass = Classify(cause).String()
	})
	if err != nil {
		log.Error("persisting retry", "err", err)
		return false
	}
	*job = updated
	s.retried.Add(1)
	s.tenants.counters(job.Tenant).retried.Add(1)
	d := s.backoff(job.Retries)
	s.traceOf(id).root().Eventf("retry %d after %s: %v", job.Retries, d, cause)
	log.Info("retrying after transient failure", "retry", job.Retries, "backoff", d, "err", cause)
	return s.sleep(ctx, d) == nil
}

// requeueForResume parks a drained job back in the queued state; the
// next Start (this process does not restart workers after Drain) or the
// next process picks it up and resumes from its checkpoint.
func (s *Service) requeueForResume(id string) {
	if _, err := s.store.update(id, func(j *Job) { j.State = StateQueued }); err != nil {
		s.log.Error("re-queueing drained job", "job", id, "err", err)
		return
	}
	jt := s.traceOf(id)
	jt.root().Eventf("checkpointed for resume")
	jt.beginQueueWait()
	s.drainedReq.Add(1)
}

// finish records a terminal state. The trace is sealed before the
// terminal state is published, so a client that has observed a
// terminal record never reads a still-open root span (or a missing
// per-job trace file) from /debug/trace.
func (s *Service) finish(id string, st State, cause error) {
	retries := 0
	if job, ok := s.store.get(id); ok {
		retries = job.Retries
	}
	s.sealTrace(id, st, retries)
	_, err := s.store.update(id, func(j *Job) {
		j.State = st
		if cause != nil {
			j.Error = cause.Error()
			j.ErrorClass = Classify(cause).String()
		} else {
			j.Error = ""
			j.ErrorClass = ""
		}
	})
	if err != nil {
		s.log.Error("persisting terminal state", "job", id, "state", st, "err", err)
	}
	s.finished[terminalIndex(st)].Add(1)
}

// attempt executes one scan attempt under panic isolation and the
// configured deadline.
func (s *Service) attempt(baseCtx context.Context, job *Job, rj *runningJob) error {
	ctx := baseCtx
	if s.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.AttemptTimeout)
		defer cancel()
	}
	rec := metrics.NewRecorder()
	prog := metrics.NewProgress()
	s.mu.Lock()
	rj.prog = prog
	s.mu.Unlock()
	// Each dispatch is a sibling "attempt N" span under the job root; it
	// becomes the ambient parent, so the seam spans the engines emit
	// (compile, per-chromosome scans, worker chunks) land under it with
	// no engine signature changes. Unsampled jobs leave the recorder's
	// tracer nil — the provably zero-overhead fast path.
	jt := s.traceOf(job.ID)
	// Attempts counts dispatches and Retries counts in-dispatch re-runs;
	// their sum is the unique ordinal that keeps sibling attempt spans
	// distinct across both retries and crash-resume re-dispatches.
	aspan, attemptEnd := jt.startAttempt(job.Attempts + job.Retries)
	defer attemptEnd()
	jt.install(rec)
	ctx = metrics.ContextWithSpan(ctx, aspan)
	var finish func()
	if s.cfg.OnScanStart != nil {
		finish = s.cfg.OnScanStart(*job, rec, prog)
	}
	if finish != nil {
		defer finish()
	}
	err := arch.Recovered(rec, func(r any) error {
		return MarkPermanent(fmt.Errorf("scanserve: job %s panicked: %v", job.ID, r))
	}, func() error {
		if s.cfg.RunScan != nil {
			return s.cfg.RunScan(ctx, *job)
		}
		return s.scanAttempt(ctx, job, rec, prog)
	})
	if err != nil {
		aspan.SetAttr("error", err.Error())
	}
	return err
}
