package scanserve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/cap-repro/crisprscan/internal/faultinject"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// quietLogger discards service logs in tests.
func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// testService builds a started service with test-friendly defaults:
// quotas disabled, instant backoff sleeps, and a RunScan hook (so no
// genome is needed) unless the config supplies its own.
func testService(t *testing.T, cfg Config) *Service {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Log == nil {
		cfg.Log = quietLogger()
	}
	if cfg.QuotaRate == 0 {
		cfg.QuotaRate = -1 // disabled unless the test opts in
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	}
	if cfg.RunScan == nil {
		cfg.RunScan = func(ctx context.Context, job Job) error { return nil }
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	t.Cleanup(func() { s.Drain(5 * time.Second) })
	return s
}

// oneGuide is a minimal valid job spec.
func oneGuide() JobSpec {
	return JobSpec{Guides: []GuideSpec{{Name: "g0", Spacer: "ACGTACGTACGTACGTACGT"}}, K: 1}
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, s *Service, id string) Job {
	t.Helper()
	deadline := time.NewTimer(10 * time.Second)
	defer deadline.Stop()
	for {
		if job, ok := s.Get(id); ok && job.State.Terminal() {
			return job
		}
		select {
		case <-deadline.C:
			job, _ := s.Get(id)
			t.Fatalf("job %s did not reach a terminal state (now %s)", id, job.State)
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// promText renders the service's metrics families.
func promText(t *testing.T, s *Service) string {
	t.Helper()
	var buf bytes.Buffer
	e := metrics.NewPromEncoder(&buf)
	s.WriteMetrics(e)
	if err := e.Err(); err != nil {
		t.Fatalf("encoding metrics: %v", err)
	}
	return buf.String()
}

func TestJobLifecycleDone(t *testing.T) {
	s := testService(t, Config{})
	job, err := s.Submit("alice", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateQueued {
		t.Fatalf("submitted job state = %s, want queued", job.State)
	}
	final := waitTerminal(t, s, job.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (err %q), want done", final.State, final.Error)
	}
	if final.Attempts != 1 || final.Retries != 0 {
		t.Fatalf("attempts/retries = %d/%d, want 1/0", final.Attempts, final.Retries)
	}
	if got := promText(t, s); !strings.Contains(got, `crisprscan_jobs_finished_total{state="done"} 1`) {
		t.Fatalf("metrics missing done counter:\n%s", got)
	}
}

func TestTransientFailureRetriesExactlyK(t *testing.T) {
	const k = 2
	flaky := &faultinject.Flaky{Fails: k, Err: errors.New("engine hiccup")}
	var sleeps []time.Duration
	var mu sync.Mutex
	s := testService(t, Config{
		MaxRetries: 3,
		RetryBase:  100 * time.Millisecond,
		RetryMax:   time.Second,
		RunScan:    func(ctx context.Context, job Job) error { return flaky.Next() },
		Sleep: func(ctx context.Context, d time.Duration) error {
			mu.Lock()
			sleeps = append(sleeps, d)
			mu.Unlock()
			return nil
		},
	})
	job, err := s.Submit("", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, job.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (err %q), want done after retries", final.State, final.Error)
	}
	if final.Retries != k {
		t.Fatalf("job retries = %d, want exactly %d", final.Retries, k)
	}
	if flaky.Calls() != k+1 {
		t.Fatalf("attempts executed = %d, want %d", flaky.Calls(), k+1)
	}
	if got := promText(t, s); !strings.Contains(got, "crisprscan_jobs_retried_total 2") {
		t.Fatalf("metrics missing retried counter = 2:\n%s", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(sleeps) != k {
		t.Fatalf("backoff sleeps = %d, want %d", len(sleeps), k)
	}
	// Exponential with jitter in [0, d/2]: retry n waits in [base*2^(n-1),
	// 1.5*base*2^(n-1)].
	if sleeps[0] < 100*time.Millisecond || sleeps[0] > 150*time.Millisecond {
		t.Fatalf("first backoff %v outside [100ms,150ms]", sleeps[0])
	}
	if sleeps[1] < 200*time.Millisecond || sleeps[1] > 300*time.Millisecond {
		t.Fatalf("second backoff %v outside [200ms,300ms]", sleeps[1])
	}
}

func TestPermanentFailureDoesNotRetry(t *testing.T) {
	calls := 0
	var mu sync.Mutex
	s := testService(t, Config{
		MaxRetries: 3,
		RunScan: func(ctx context.Context, job Job) error {
			mu.Lock()
			calls++
			mu.Unlock()
			return errors.New("scanserve: bad PAM syntax")
		},
	})
	job, err := s.Submit("", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, job.ID)
	if final.State != StateFailed {
		t.Fatalf("final state = %s, want failed", final.State)
	}
	if final.ErrorClass != "permanent" {
		t.Fatalf("error class = %q, want permanent", final.ErrorClass)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry on permanent errors)", calls)
	}
	if got := promText(t, s); !strings.Contains(got, "crisprscan_jobs_retried_total 0") {
		t.Fatalf("metrics show retries for a permanent failure:\n%s", got)
	}
}

func TestTransientBudgetExhaustionFails(t *testing.T) {
	flaky := &faultinject.Flaky{Fails: 100}
	s := testService(t, Config{
		MaxRetries: 2,
		RunScan:    func(ctx context.Context, job Job) error { return flaky.Next() },
	})
	job, err := s.Submit("", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, job.ID)
	if final.State != StateFailed {
		t.Fatalf("final state = %s, want failed", final.State)
	}
	if final.Retries != 2 {
		t.Fatalf("retries = %d, want the full budget of 2", final.Retries)
	}
	if final.ErrorClass != "transient" {
		t.Fatalf("error class = %q, want transient", final.ErrorClass)
	}
}

func TestPanicIsolation(t *testing.T) {
	first := true
	var mu sync.Mutex
	s := testService(t, Config{
		Workers: 1,
		RunScan: func(ctx context.Context, job Job) error {
			mu.Lock()
			mine := first
			first = false
			mu.Unlock()
			if mine {
				panic("worker bug")
			}
			return nil
		},
	})
	bad, err := s.Submit("", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, s, bad.ID); final.State != StateFailed {
		t.Fatalf("panicked job state = %s, want failed", final.State)
	} else if !strings.Contains(final.Error, "panicked") {
		t.Fatalf("panicked job error = %q, want a panic message", final.Error)
	}
	// The pool must survive the panic and run the next job.
	good, err := s.Submit("", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	if final := waitTerminal(t, s, good.ID); final.State != StateDone {
		t.Fatalf("job after panic = %s, want done", final.State)
	}
}

func TestQuotaThrottlesWithRetryAfter(t *testing.T) {
	s := testService(t, Config{QuotaRate: 0.001, QuotaBurst: 1})
	if _, err := s.Submit("alice", oneGuide()); err != nil {
		t.Fatalf("first submit within burst: %v", err)
	}
	_, err := s.Submit("alice", oneGuide())
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("second submit err = %v, want RetryAfterError", err)
	}
	if ra.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want > 0", ra.RetryAfter)
	}
	// Quotas are per tenant: bob is unaffected by alice's burst.
	if _, err := s.Submit("bob", oneGuide()); err != nil {
		t.Fatalf("other tenant throttled: %v", err)
	}
	if got := promText(t, s); !strings.Contains(got, "crisprscan_jobs_throttled_total 1") {
		t.Fatalf("metrics missing throttle counter:\n%s", got)
	}
}

func TestQueueFullSheds(t *testing.T) {
	release := make(chan struct{})
	s := testService(t, Config{
		Workers:  1,
		MaxQueue: 1,
		RunScan: func(ctx context.Context, job Job) error {
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	defer close(release)
	first, err := s.Submit("", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the worker to take the first job off the queue.
	deadline := time.NewTimer(5 * time.Second)
	defer deadline.Stop()
	for {
		if job, _ := s.Get(first.ID); job.State == StateRunning {
			break
		}
		select {
		case <-deadline.C:
			t.Fatal("first job never started")
		case <-time.After(time.Millisecond):
		}
	}
	if _, err := s.Submit("", oneGuide()); err != nil {
		t.Fatalf("queueing within capacity: %v", err)
	}
	_, err = s.Submit("", oneGuide())
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("over-capacity submit err = %v, want RetryAfterError (shed)", err)
	}
	if got := promText(t, s); !strings.Contains(got, "crisprscan_jobs_shed_total 1") {
		t.Fatalf("metrics missing shed counter:\n%s", got)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	started := make(chan string, 8)
	release := make(chan struct{})
	s := testService(t, Config{
		Workers: 1,
		RunScan: func(ctx context.Context, job Job) error {
			started <- job.ID
			select {
			case <-release:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		},
	})
	defer close(release)
	running, err := s.Submit("", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit("", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	select {
	case id := <-started:
		if id != running.ID {
			t.Fatalf("started %s, want %s", id, running.ID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first job never started")
	}
	// Cancel the queued job: terminal immediately, worker never sees it.
	if _, err := s.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if job := waitTerminal(t, s, queued.ID); job.State != StateCancelled {
		t.Fatalf("queued cancel = %s, want cancelled", job.State)
	}
	// Cancel the running job: its context aborts the scan.
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	if job := waitTerminal(t, s, running.ID); job.State != StateCancelled {
		t.Fatalf("running cancel = %s, want cancelled", job.State)
	}
	// Cancelling a terminal job is a no-op, not an error.
	if job, err := s.Cancel(running.ID); err != nil || job.State != StateCancelled {
		t.Fatalf("re-cancel = %s, %v", job.State, err)
	}
}

func TestFairQueuingAcrossTenants(t *testing.T) {
	var order []string
	var mu sync.Mutex
	gate := make(chan struct{})
	warmRunning := make(chan struct{})
	s := testService(t, Config{
		Workers: 1,
		RunScan: func(ctx context.Context, job Job) error {
			if job.Tenant == "warm" {
				close(warmRunning)
				<-gate
				return nil
			}
			mu.Lock()
			order = append(order, job.Tenant)
			mu.Unlock()
			return nil
		},
	})
	// Pin the single worker on a warm-up job so the real submissions all
	// queue before any dispatch — then fairness, not arrival order,
	// decides execution order.
	warm, err := s.Submit("warm", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	<-warmRunning
	var ids []string
	for _, tenant := range []string{"alice", "alice", "alice", "bob"} {
		job, err := s.Submit(tenant, oneGuide())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	close(gate)
	waitTerminal(t, s, warm.ID)
	for _, id := range ids {
		waitTerminal(t, s, id)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"alice", "bob", "alice", "alice"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("execution order %v; fair round-robin wants %v (bob's single job must not wait behind alice's backlog)", order, want)
	}
}

// TestDrainCheckpointsInFlightJobs is the graceful-drain regression:
// in-flight jobs that cannot finish inside the window are re-queued for
// resume, workers exit, and no goroutines leak. Run under -race in CI.
func TestDrainCheckpointsInFlightJobs(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	s := testService(t, Config{
		Dir:     dir,
		Workers: 2,
		RunScan: func(ctx context.Context, job Job) error {
			<-ctx.Done() // holds the worker until drain cancels it
			return ctx.Err()
		},
	})
	var ids []string
	for i := 0; i < 2; i++ {
		job, err := s.Submit("", oneGuide())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	// Wait until both are dispatched.
	deadline := time.NewTimer(5 * time.Second)
	defer deadline.Stop()
	for {
		running := 0
		for _, id := range ids {
			if job, _ := s.Get(id); job.State == StateRunning {
				running++
			}
		}
		if running == 2 {
			break
		}
		select {
		case <-deadline.C:
			t.Fatal("jobs never started")
		case <-time.After(time.Millisecond):
		}
	}
	if requeued := s.Drain(50 * time.Millisecond); requeued != 2 {
		t.Fatalf("Drain requeued %d jobs, want 2", requeued)
	}
	if s.Accepting() {
		t.Fatal("service still accepting after drain")
	}
	if _, err := s.Submit("", oneGuide()); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain err = %v, want ErrDraining", err)
	}
	for _, id := range ids {
		if job, _ := s.Get(id); job.State != StateQueued {
			t.Fatalf("drained job %s state = %s, want queued (parked for resume)", id, job.State)
		}
	}
	// A successor service on the same directory adopts the parked jobs.
	s2, err := New(Config{
		Dir: dir, Log: quietLogger(), QuotaRate: -1,
		RunScan: func(ctx context.Context, job Job) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Drain(5 * time.Second)
	for _, id := range ids {
		if job := waitTerminal(t, s2, id); job.State != StateDone {
			t.Fatalf("resumed job %s = %s, want done", id, job.State)
		}
	}
	// Goroutine hygiene: everything the first service started must be
	// gone (poll briefly; runtime bookkeeping lags the exits).
	for wait := 0; ; wait++ {
		if runtime.NumGoroutine() <= before+4 || wait > 500 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+4 {
		t.Fatalf("goroutines after drain = %d, started with %d: leak", n, before)
	}
}

func TestCrashRecoveryRequeuesRunningJobs(t *testing.T) {
	dir := t.TempDir()
	blocked := make(chan struct{})
	s := testService(t, Config{
		Dir:     dir,
		Workers: 1,
		RunScan: func(ctx context.Context, job Job) error {
			close(blocked)
			<-ctx.Done()
			return ctx.Err()
		},
	})
	job, err := s.Submit("", oneGuide())
	if err != nil {
		t.Fatal(err)
	}
	<-blocked
	// Simulate kill -9: no drain, just a new service over the same state.
	// The persisted record still says running; openStore must demote it.
	s2, err := New(Config{
		Dir: dir, Log: quietLogger(), QuotaRate: -1,
		RunScan: func(ctx context.Context, job Job) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	defer s2.Drain(5 * time.Second)
	if final := waitTerminal(t, s2, job.ID); final.State != StateDone {
		t.Fatalf("recovered job = %s, want done", final.State)
	}
	s.Drain(time.Second) // release the first service's worker
}

func TestSubmitValidation(t *testing.T) {
	s := testService(t, Config{})
	if _, err := s.Submit("", JobSpec{K: 1}); err == nil {
		t.Fatal("no-guides spec accepted")
	}
	if _, err := s.Submit("", JobSpec{Guides: []GuideSpec{{Spacer: "  "}}}); err == nil {
		t.Fatal("blank spacer accepted")
	}
	spec := oneGuide()
	spec.K = -1
	if _, err := s.Submit("", spec); err == nil {
		t.Fatal("negative k accepted")
	}
	spec = oneGuide()
	spec.Genome = "../../etc/passwd"
	if _, err := s.Submit("", spec); err == nil {
		t.Fatal("escaping genome path accepted")
	}
}
