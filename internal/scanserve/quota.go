package scanserve

import (
	"math"
	"sync"
	"time"

	"github.com/cap-repro/crisprscan/internal/metrics"
)

// quotas implements per-tenant token-bucket admission: each tenant gets
// an independent bucket refilled at rate tokens/second up to burst.
// Submissions spend one token; an empty bucket is rejected with the
// exact wait until the next token, which becomes the 429's Retry-After.
// The clock is injectable so tests are deterministic.
type quotas struct {
	rate  float64 // tokens per second; <= 0 disables quota enforcement
	burst float64
	now   func() int64 // monotonic nanos (default metrics.Now)

	mu      sync.Mutex
	buckets map[string]*bucket // guarded by mu
}

// bucket is one tenant's token state; fields are guarded by the owning
// quotas' mu.
type bucket struct {
	tokens float64
	last   int64 // nanos at the last refill
}

// newQuotas builds the admission buckets. burst < 1 is raised to 1 so
// an idle tenant can always submit at least one job.
func newQuotas(rate float64, burst int, now func() int64) *quotas {
	if now == nil {
		now = metrics.Now
	}
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &quotas{rate: rate, burst: b, now: now, buckets: make(map[string]*bucket)}
}

// allow spends one token from the tenant's bucket. When the bucket is
// empty it reports false and how long until a token accrues.
func (q *quotas) allow(tenant string) (ok bool, retryAfter time.Duration) {
	if q.rate <= 0 {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b, found := q.buckets[tenant]
	nowNs := q.now()
	if !found {
		b = &bucket{tokens: q.burst, last: nowNs}
		q.buckets[tenant] = b
	} else {
		elapsed := float64(nowNs-b.last) / float64(time.Second)
		b.tokens = math.Min(q.burst, b.tokens+elapsed*q.rate)
		b.last = nowNs
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / q.rate // seconds until one whole token
	return false, time.Duration(math.Ceil(need * float64(time.Second)))
}
