package scanserve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/cap-repro/crisprscan/internal/checkpoint"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// store is the durable job registry: one subdirectory per job under the
// service directory, holding job.json (the state-machine record),
// scan.ckpt (the chromosome-granularity checkpoint journal) and the
// output artifact. Records are written atomically with directory fsync,
// so the on-disk lifecycle is consistent at every instant a crash can
// strike.
type store struct {
	dir string

	mu     sync.Mutex
	jobs   map[string]*Job // guarded by mu
	nextID int             // guarded by mu
}

// jobRecordName is the per-job state file.
const jobRecordName = "job.json"

// openStore loads (or initializes) the job directory. Jobs found in the
// running state are crash artifacts — the process died with them
// dispatched — and are re-queued so the service resumes them; their
// checkpoint journal turns the re-run into a resume.
func openStore(dir string) (s *store, recovered []string, err error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("scanserve: job directory not configured")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("scanserve: creating job directory: %w", err)
	}
	s = &store{dir: dir, jobs: make(map[string]*Job)}
	// No other goroutine can hold the store yet, but the load loop
	// takes the lock anyway so the guarded-field discipline holds on
	// every path.
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("scanserve: reading job directory: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		data, rerr := os.ReadFile(filepath.Join(dir, e.Name(), jobRecordName))
		if os.IsNotExist(rerr) {
			continue // half-created job dir from a crash mid-Create
		}
		if rerr != nil {
			return nil, nil, fmt.Errorf("scanserve: reading job %s: %w", e.Name(), rerr)
		}
		var j Job
		if uerr := json.Unmarshal(data, &j); uerr != nil {
			return nil, nil, fmt.Errorf("scanserve: job record %s is corrupt: %w", e.Name(), uerr)
		}
		if j.ID != e.Name() {
			return nil, nil, fmt.Errorf("scanserve: job record in %s claims ID %q", e.Name(), j.ID)
		}
		if j.State == StateRunning {
			j.State = StateQueued
			if perr := s.persist(&j); perr != nil {
				return nil, nil, perr
			}
			recovered = append(recovered, j.ID)
		}
		s.jobs[j.ID] = &j
		if n, nerr := strconv.Atoi(strings.TrimPrefix(j.ID, "j")); nerr == nil && n >= s.nextID {
			s.nextID = n + 1
		}
	}
	sort.Strings(recovered)
	return s, recovered, nil
}

// create allocates a job ID, its directory, and the initial queued
// record carrying its trace identity.
func (s *store) create(tenant string, spec JobSpec, resolvedGenome string, trace traceIdentity) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := fmt.Sprintf("j%06d", s.nextID)
	s.nextID++
	now := metrics.Wall().Unix()
	j := &Job{
		ID: id, Tenant: tenant, Spec: spec, State: StateQueued,
		ResolvedGenome: resolvedGenome,
		TraceID:        trace.id, TraceRoot: trace.root, TraceSampled: trace.sampled,
		CreatedUnix: now, UpdatedUnix: now,
	}
	if err := os.MkdirAll(s.jobDir(id), 0o755); err != nil {
		return Job{}, fmt.Errorf("scanserve: creating job %s: %w", id, err)
	}
	if err := s.persist(j); err != nil {
		return Job{}, err
	}
	s.jobs[id] = j
	return *j, nil
}

// get returns a copy of the job record.
func (s *store) get(id string) (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, false
	}
	return *j, true
}

// list returns copies of every job, ordered by ID (creation order).
func (s *store) list() []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, *j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// update applies fn to the job under the store lock, stamps the update
// time, and persists the new record durably before returning the copy.
func (s *store) update(id string, fn func(*Job)) (Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Job{}, fmt.Errorf("scanserve: unknown job %s", id)
	}
	fn(j)
	j.UpdatedUnix = metrics.Wall().Unix()
	if err := s.persist(j); err != nil {
		return Job{}, err
	}
	return *j, nil
}

// persist writes the record crash-safely. Callers hold mu (or own the
// job exclusively during openStore).
func (s *store) persist(j *Job) error {
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return fmt.Errorf("scanserve: encoding job %s: %w", j.ID, err)
	}
	data = append(data, '\n')
	if err := checkpoint.AtomicWriteFile(filepath.Join(s.jobDir(j.ID), jobRecordName), data); err != nil {
		return fmt.Errorf("scanserve: persisting job %s: %w", j.ID, err)
	}
	return nil
}

// jobDir returns the job's directory.
func (s *store) jobDir(id string) string { return filepath.Join(s.dir, id) }

// outPath returns the job's output artifact path.
func (s *store) outPath(j *Job) string { return filepath.Join(s.jobDir(j.ID), j.outName()) }

// ckptPath returns the job's checkpoint journal path.
func (s *store) ckptPath(id string) string { return filepath.Join(s.jobDir(id), "scan.ckpt") }
