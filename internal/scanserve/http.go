package scanserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"

	"github.com/cap-repro/crisprscan/internal/metrics"
)

// maxSubmitBytes bounds a job-submission body; a spec is a few guides
// and scalar knobs, never megabytes.
const maxSubmitBytes = 1 << 20

// tenantHeader names the submitting tenant; absent means "default".
const tenantHeader = "X-Tenant"

// Handler returns the versioned job API:
//
//	POST   /v1/jobs             submit a JobSpec, 202 + job record
//	GET    /v1/jobs             list job records
//	GET    /v1/jobs/{id}        one job record (+ live progress)
//	GET    /v1/jobs/{id}/output stream the finished TSV/BED artifact
//	POST   /v1/jobs/{id}/cancel request cancellation
//
// Admission rejections surface as structured backpressure: 429 with a
// Retry-After header for quota/queue shedding, 503 while draining —
// load is shed at the edge, visibly, instead of absorbed until the
// process falls over.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("GET /v1/jobs/{id}/output", s.handleJobOutput)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleJobCancel)
	return mux
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// minimum 1 — a 0 would tell clients to hammer immediately).
func retryAfterSeconds(d float64) string {
	sec := int64(math.Ceil(d))
	if sec < 1 {
		sec = 1
	}
	return strconv.FormatInt(sec, 10)
}

func (s *Service) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(io.LimitReader(req.Body, maxSubmitBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "decoding job spec: %v", err)
		return
	}
	job, err := s.SubmitTraced(req.Header.Get(tenantHeader), spec, req.Header.Get("traceparent"))
	if err != nil {
		var ra *RetryAfterError
		switch {
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.ShedRetryAfter.Seconds()))
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.As(err, &ra):
			w.Header().Set("Retry-After", retryAfterSeconds(ra.RetryAfter.Seconds()))
			httpError(w, http.StatusTooManyRequests, "%v", err)
		default:
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	// Emit the job's position in the trace: same trace ID as the inbound
	// header (or the freshly minted one), parented at the job root span.
	if job.TraceID != "" && job.TraceRoot != "" {
		flags := "00"
		if job.TraceSampled {
			flags = "01"
		}
		w.Header().Set("traceparent", "00-"+job.TraceID+"-"+job.TraceRoot+"-"+flags)
	}
	writeJSON(w, http.StatusAccepted, job)
}

// TraceHandler returns the flight-recorder endpoint:
//
//	GET /debug/trace/{id}                the job's JSON span tree
//	GET /debug/trace/{id}?format=chrome  downloadable Chrome trace
//
// Traces are served for live jobs and, after the terminal state, for as
// long as the flight recorder retains them (failed and retried jobs are
// kept preferentially; see Config.TraceMode and Config.FlightEntries).
func (s *Service) TraceHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	return mux
}

func (s *Service) handleTrace(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	tr, ok := s.flight.Get(id)
	if !ok {
		job, exists := s.Get(id)
		switch {
		case !exists:
			httpError(w, http.StatusNotFound, "unknown job %s", id)
		case !job.TraceSampled:
			httpError(w, http.StatusNotFound, "job %s was not sampled for tracing (trace %s)", id, job.TraceID)
		default:
			httpError(w, http.StatusNotFound, "trace of job %s was dropped by flight-recorder retention", id)
		}
		return
	}
	if req.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", "attachment; filename="+strconv.Quote(id+"-trace.json"))
		_ = tr.WriteChrome(w)
		return
	}
	writeJSON(w, http.StatusOK, tr.Tree())
}

func (s *Service) handleJobList(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Jobs []Job `json:"jobs"`
	}{Jobs: s.List()})
}

// jobView is a job record plus, while running, its live progress.
type jobView struct {
	Job
	Progress *metrics.ProgressSnapshot `json:"progress,omitempty"`
}

func (s *Service) handleJobGet(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	job, ok := s.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	view := jobView{Job: job}
	if snap, live := s.Progress(id); live {
		view.Progress = &snap
	}
	writeJSON(w, http.StatusOK, view)
}

func (s *Service) handleJobOutput(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	path, job, ok := s.OutputPath(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown job %s", id)
		return
	}
	if job.State != StateDone {
		// 409: the resource exists but is not in a downloadable state.
		httpError(w, http.StatusConflict, "job %s is %s, output is available when done", id, job.State)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "opening output of job %s: %v", id, err)
		return
	}
	defer f.Close()
	if job.Spec.BED {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "text/tab-separated-values; charset=utf-8")
	}
	if fi, serr := f.Stat(); serr == nil {
		w.Header().Set("Content-Length", strconv.FormatInt(fi.Size(), 10))
	}
	w.Header().Set("Content-Disposition", "attachment; filename="+strconv.Quote(id+"-"+job.outName()))
	_, _ = io.Copy(w, f)
}

func (s *Service) handleJobCancel(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	job, err := s.Cancel(id)
	if err != nil {
		if errors.Is(err, ErrUnknownJob) {
			httpError(w, http.StatusNotFound, "%v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

// WriteMetrics emits the service's Prometheus families — the overload
// counters the acceptance criteria require to be observable (shed and
// throttle totals, queue depth) plus lifecycle and cache counters. The
// caller owns the encoder (the admin endpoint appends these after the
// scan families).
func (s *Service) WriteMetrics(e *metrics.PromEncoder) {
	e.Family("crisprscan_jobs_submitted_total", "Jobs accepted by the scan service.", "counter")
	e.Sample("crisprscan_jobs_submitted_total", nil, float64(s.submitted.Load()))
	e.Family("crisprscan_jobs_finished_total", "Jobs reaching a terminal state, by state.", "counter")
	for _, st := range []State{StateDone, StateFailed, StateCancelled} {
		e.Sample("crisprscan_jobs_finished_total",
			[]metrics.Label{{Name: "state", Value: string(st)}},
			float64(s.finished[terminalIndex(st)].Load()))
	}
	e.Family("crisprscan_jobs_retried_total", "Transient-failure retries consumed across all jobs.", "counter")
	e.Sample("crisprscan_jobs_retried_total", nil, float64(s.retried.Load()))
	e.Family("crisprscan_jobs_shed_total", "Submissions rejected because the queue was full.", "counter")
	e.Sample("crisprscan_jobs_shed_total", nil, float64(s.shed.Load()))
	e.Family("crisprscan_jobs_throttled_total", "Submissions rejected by per-tenant quota.", "counter")
	e.Sample("crisprscan_jobs_throttled_total", nil, float64(s.throttled.Load()))
	e.Family("crisprscan_jobs_queued", "Jobs waiting for a worker.", "gauge")
	e.Sample("crisprscan_jobs_queued", nil, float64(s.queuedGa.Load()))
	e.Family("crisprscan_jobs_running", "Jobs currently dispatched to workers.", "gauge")
	e.Sample("crisprscan_jobs_running", nil, float64(s.runningGa.Load()))
	accepting := 0.0
	if s.Accepting() {
		accepting = 1
	}
	e.Family("crisprscan_service_accepting", "1 while the service admits jobs, 0 while draining.", "gauge")
	e.Sample("crisprscan_service_accepting", nil, accepting)
	// Per-tenant families. Cardinality is capped by Config.MaxTenantLabels
	// with excess tenants folded into the "other" label, so a client
	// minting tenant names cannot grow the exposition without bound. The
	// unlabeled totals above are kept as-is: existing dashboards and the
	// CI exposition checks see the same series they always did.
	tens := s.tenants.snapshot()
	tenantLabel := func(name string) []metrics.Label {
		return []metrics.Label{{Name: "tenant", Value: name}}
	}
	e.Family("crisprscan_tenant_jobs_submitted_total", "Jobs accepted, by tenant (capped cardinality, overflow in \"other\").", "counter")
	for _, t := range tens {
		e.Sample("crisprscan_tenant_jobs_submitted_total", tenantLabel(t.tenant), float64(t.submitted))
	}
	e.Family("crisprscan_tenant_jobs_retried_total", "Transient-failure retries consumed, by tenant.", "counter")
	for _, t := range tens {
		e.Sample("crisprscan_tenant_jobs_retried_total", tenantLabel(t.tenant), float64(t.retried))
	}
	e.Family("crisprscan_tenant_jobs_shed_total", "Submissions rejected by queue shedding (429), by tenant.", "counter")
	for _, t := range tens {
		e.Sample("crisprscan_tenant_jobs_shed_total", tenantLabel(t.tenant), float64(t.shed))
	}
	e.Family("crisprscan_tenant_jobs_throttled_total", "Submissions rejected by per-tenant quota (429), by tenant.", "counter")
	for _, t := range tens {
		e.Sample("crisprscan_tenant_jobs_throttled_total", tenantLabel(t.tenant), float64(t.throttled))
	}
	depth := make(map[string]int, len(tens))
	for _, t := range tens {
		depth[t.tenant] = 0
	}
	s.mu.Lock()
	for tenant, q := range s.queues {
		depth[s.tenants.label(tenant)] += len(q)
	}
	s.mu.Unlock()
	depthNames := make([]string, 0, len(depth))
	for name := range depth {
		depthNames = append(depthNames, name)
	}
	sort.Strings(depthNames)
	e.Family("crisprscan_tenant_jobs_queued", "Jobs waiting for a worker, by tenant.", "gauge")
	for _, name := range depthNames {
		e.Sample("crisprscan_tenant_jobs_queued", tenantLabel(name), float64(depth[name]))
	}
	e.Family("crisprscan_trace_flight_entries", "Traces retained in the flight recorder.", "gauge")
	e.Sample("crisprscan_trace_flight_entries", nil, float64(s.flight.Len()))
	cs := s.cache.stats()
	e.Family("crisprscan_genome_cache_hits_total", "Genome cache hits.", "counter")
	e.Sample("crisprscan_genome_cache_hits_total", nil, float64(cs.Hits))
	e.Family("crisprscan_genome_cache_misses_total", "Genome cache misses (loads).", "counter")
	e.Sample("crisprscan_genome_cache_misses_total", nil, float64(cs.Misses))
	e.Family("crisprscan_genome_cache_evictions_total", "Genomes evicted by LRU capacity.", "counter")
	e.Sample("crisprscan_genome_cache_evictions_total", nil, float64(cs.Evictions))
	e.Family("crisprscan_genome_cache_resident", "Genomes currently resident in the cache.", "gauge")
	e.Sample("crisprscan_genome_cache_resident", nil, float64(cs.Resident))
}
