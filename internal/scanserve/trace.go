package scanserve

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"github.com/cap-repro/crisprscan/internal/checkpoint"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// This file threads the hierarchical tracer through the job lifecycle:
// the root "job" span opens at admission, "queue-wait" covers dequeue
// latency, every dispatch adds a sibling "attempt N" span (the ambient
// parent for the engine-side seam spans — compile, per-chromosome
// scans, worker chunks), and the terminal transition seals the trace
// into the flight recorder behind /debug/trace/{jobID}.

// traceIdentity is the persisted trace identity of one job, decided at
// admission.
type traceIdentity struct {
	id      string // 32-hex-char trace ID
	root    string // 16-hex-char root span ID; empty when unsampled
	sampled bool
}

// jobTrace owns the live trace of one job between admission and its
// terminal state. A nil *jobTrace (unsampled job) accepts every method
// as a no-op.
type jobTrace struct {
	tracer *metrics.SpanTracer

	mu       sync.Mutex
	queueEnd func() // guarded by mu; ends the current queue-wait span
}

// newJobTrace wraps a tracer; nil in, nil out.
func newJobTrace(tr *metrics.SpanTracer) *jobTrace {
	if tr == nil {
		return nil
	}
	return &jobTrace{tracer: tr}
}

// root returns the trace's root span (nil-safe).
func (t *jobTrace) root() *metrics.Span {
	if t == nil {
		return nil
	}
	return t.tracer.Root()
}

// beginQueueWait opens a queue-wait span under the root; endQueueWait
// (at dispatch, cancel, or seal) closes it. Re-entrant across requeues:
// each wait gets its own span.
func (t *jobTrace) beginQueueWait() {
	if t == nil {
		return
	}
	_, end := t.tracer.Root().StartChild("queue-wait")
	t.mu.Lock()
	t.queueEnd = end
	t.mu.Unlock()
}

// endQueueWait closes the current queue-wait span, if one is open.
func (t *jobTrace) endQueueWait() {
	if t == nil {
		return
	}
	t.mu.Lock()
	end := t.queueEnd
	t.queueEnd = nil
	t.mu.Unlock()
	if end != nil {
		end()
	}
}

// startAttempt opens the sibling span for dispatch n and installs it as
// the tracer's ambient parent, so every seam span the engines emit
// during this attempt lands under it.
func (t *jobTrace) startAttempt(n int) (*metrics.Span, func()) {
	if t == nil {
		return nil, func() {}
	}
	span, end := t.tracer.Root().StartChild(fmt.Sprintf("attempt %d", n))
	t.tracer.SetAmbient(span)
	return span, end
}

// install attaches the trace to an attempt's recorder: the tracer for
// seam spans and the trace ID for chunk-latency exemplars. Installing
// nothing on a nil receiver keeps the recorder's nil-tracer fast path.
func (t *jobTrace) install(rec *metrics.Recorder) {
	if t == nil {
		return
	}
	rec.SetTracer(t.tracer)
	rec.SetTraceID(t.tracer.TraceID().String())
}

// admitTrace decides the job's trace identity from the inbound
// traceparent header (malformed or absent degrades to a fresh root —
// never a rejection) and, when sampling selects the job, starts its
// tracer.
func (s *Service) admitTrace(tenant, traceparent string) (traceIdentity, *metrics.SpanTracer) {
	tid, parentSpan, _, perr := metrics.ParseTraceparent(traceparent)
	if perr != nil {
		if traceparent != "" {
			s.log.Debug("malformed traceparent; starting fresh trace", "tenant", tenant, "err", perr)
		}
		tid, parentSpan = metrics.NewTraceID(), metrics.SpanID{}
	}
	ident := traceIdentity{id: tid.String()}
	if !s.sampler.Record(tenant, tid) {
		return ident, nil
	}
	tr := metrics.NewSpanTracer(tid, "job", parentSpan)
	tr.Root().SetAttr("tenant", tenant)
	ident.root = tr.Root().ID().String()
	ident.sampled = true
	return ident, tr
}

// trackTrace registers a freshly admitted trace under its job ID.
// Caller must invoke it before the job becomes dequeueable.
func (s *Service) trackTrace(id string, jt *jobTrace) {
	if jt == nil {
		return
	}
	jt.root().SetAttr("job", id)
	jt.root().Eventf("submitted")
	s.flight.Track(id, jt.tracer)
	s.mu.Lock()
	s.traces[id] = jt
	s.mu.Unlock()
}

// traceOf returns the live trace of a job, or nil.
func (s *Service) traceOf(id string) *jobTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traces[id]
}

// resumeTrace rebuilds a trace for a sampled job adopted from a
// previous process (crash or drain resume): same trace ID, a fresh
// root parented under the job's original root span, so the resumed run
// stays findable under the inbound trace.
func (s *Service) resumeTrace(job *Job) *jobTrace {
	var tid metrics.TraceID
	if n, err := hex.Decode(tid[:], []byte(job.TraceID)); err != nil || n != len(tid) {
		return nil
	}
	var parent metrics.SpanID
	if job.TraceRoot != "" {
		_, _ = hex.Decode(parent[:], []byte(job.TraceRoot))
	}
	tr := metrics.NewSpanTracer(tid, "job (resumed)", parent)
	tr.Root().SetAttr("tenant", job.Tenant)
	jt := newJobTrace(tr)
	s.trackTrace(job.ID, jt)
	return jt
}

// sealTrace finalizes a job's trace at its terminal transition: close
// the root, apply the retention policy, and (in serve mode with -trace)
// write the per-job Chrome trace file under the job's spool directory.
func (s *Service) sealTrace(id string, st State, retries int) {
	s.mu.Lock()
	jt := s.traces[id]
	delete(s.traces, id)
	s.mu.Unlock()
	if jt == nil {
		return
	}
	jt.endQueueWait()
	jt.tracer.SetAmbient(nil)
	root := jt.root()
	root.SetAttr("state", string(st))
	root.Eventf("finished: %s", st)
	root.End()
	failed := st != StateDone || retries > 0
	retain := s.sampler.Retain(failed)
	if retain && s.cfg.TraceFile != "" {
		s.writeTraceFile(id, jt.tracer)
	}
	s.flight.Seal(id, failed, retain)
}

// writeTraceFile renders the trace as a Chrome trace-event file in the
// job's spool directory; the flight recorder's eviction hook removes it
// with the entry.
func (s *Service) writeTraceFile(id string, tr *metrics.SpanTracer) {
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		s.log.Error("rendering trace file", "job", id, "err", err)
		return
	}
	path := filepath.Join(s.store.jobDir(id), s.cfg.TraceFile)
	if err := checkpoint.AtomicWriteFile(path, buf.Bytes()); err != nil {
		s.log.Error("writing trace file", "job", id, "err", err)
	}
}

// removeTraceFile is the flight recorder's eviction hook: a job's
// on-disk trace artifact lives exactly as long as its in-memory entry.
func (s *Service) removeTraceFile(id string) {
	err := os.Remove(filepath.Join(s.store.jobDir(id), s.cfg.TraceFile))
	if err != nil && !os.IsNotExist(err) {
		s.log.Warn("removing trace file", "job", id, "err", err)
	}
}
