package scanserve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/cap-repro/crisprscan"
)

// cacheFixture writes n empty stand-in genome files and returns their
// paths; the injected loader never reads them, but key() stats them.
func cacheFixture(t *testing.T, n int) []string {
	t.Helper()
	dir := t.TempDir()
	paths := make([]string, n)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("g%d.fa", i))
		if err := os.WriteFile(paths[i], []byte(">chr1\nACGT\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return paths
}

func TestCacheSingleFlight(t *testing.T) {
	paths := cacheFixture(t, 1)
	var loads atomic.Int64
	gate := make(chan struct{})
	c := newGenomeCache(2, func(path string) (*crisprscan.Genome, error) {
		loads.Add(1)
		<-gate
		return &crisprscan.Genome{}, nil
	})
	const waiters = 8
	var wg sync.WaitGroup
	results := make([]*crisprscan.Genome, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = c.get(context.Background(), paths[0])
		}(i)
	}
	// Release the one loader everyone must be waiting on.
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times for %d concurrent gets, want 1 (single-flight)", n, waiters)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil {
			t.Fatalf("waiter %d: %v", i, errs[i])
		}
		if results[i] != results[0] {
			t.Fatalf("waiter %d got a different genome instance", i)
		}
	}
	st := c.stats()
	if st.Misses != 1 || st.Hits != waiters-1 {
		t.Fatalf("hits/misses = %d/%d, want %d/1", st.Hits, st.Misses, waiters-1)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	paths := cacheFixture(t, 3)
	loadedAt := make(map[string]int)
	loads := 0
	c := newGenomeCache(2, func(path string) (*crisprscan.Genome, error) {
		loads++
		loadedAt[path] = loads
		return &crisprscan.Genome{}, nil
	})
	ctx := context.Background()
	mustGet := func(p string) {
		t.Helper()
		if _, _, err := c.get(ctx, p); err != nil {
			t.Fatal(err)
		}
	}
	mustGet(paths[0])
	mustGet(paths[1])
	mustGet(paths[0]) // touch 0: 1 is now least-recent
	mustGet(paths[2]) // evicts 1
	if st := c.stats(); st.Evictions != 1 || st.Resident != 2 {
		t.Fatalf("evictions/resident = %d/%d, want 1/2", st.Evictions, st.Resident)
	}
	// 0 and 2 stay resident; 1 must reload.
	before := loads
	mustGet(paths[0])
	mustGet(paths[2])
	if loads != before {
		t.Fatal("resident genomes reloaded")
	}
	mustGet(paths[1])
	if loads != before+1 {
		t.Fatalf("evicted genome did not reload (loads %d, want %d)", loads, before+1)
	}
}

func TestCacheFailedLoadIsRetried(t *testing.T) {
	paths := cacheFixture(t, 1)
	fail := true
	c := newGenomeCache(1, func(path string) (*crisprscan.Genome, error) {
		if fail {
			return nil, errors.New("disk hiccup")
		}
		return &crisprscan.Genome{}, nil
	})
	ctx := context.Background()
	if _, _, err := c.get(ctx, paths[0]); err == nil {
		t.Fatal("failed load returned no error")
	}
	if st := c.stats(); st.Resident != 0 {
		t.Fatalf("failed load cached (%d resident)", st.Resident)
	}
	fail = false
	if _, _, err := c.get(ctx, paths[0]); err != nil {
		t.Fatalf("retry after failed load: %v", err)
	}
}

func TestCacheKeyTracksFileIdentity(t *testing.T) {
	paths := cacheFixture(t, 1)
	loads := 0
	c := newGenomeCache(2, func(path string) (*crisprscan.Genome, error) {
		loads++
		return &crisprscan.Genome{}, nil
	})
	ctx := context.Background()
	if _, _, err := c.get(ctx, paths[0]); err != nil {
		t.Fatal(err)
	}
	// Replacing the file's content (size changes) must rotate the entry
	// instead of serving the stale genome.
	if err := os.WriteFile(paths[0], []byte(">chr1\nACGTACGTACGT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.get(ctx, paths[0]); err != nil {
		t.Fatal(err)
	}
	if loads != 2 {
		t.Fatalf("loads = %d after file replacement, want 2", loads)
	}
	if _, _, err := c.get(ctx, filepath.Join(t.TempDir(), "missing.fa")); err == nil {
		t.Fatal("missing genome file produced no error")
	}
}

// TestCacheSharedSeedIndex: every seed-index job against one resident
// genome must receive the same built index, and the build must run
// exactly once no matter how many jobs race for it.
func TestCacheSharedSeedIndex(t *testing.T) {
	paths := cacheFixture(t, 1)
	g := crisprscan.SynthesizeGenome(crisprscan.SynthConfig{Seed: 31, ChromLen: 2000, NumChroms: 2})
	c := newGenomeCache(2, func(path string) (*crisprscan.Genome, error) { return g, nil })

	const jobs = 8
	indexes := make([]*crisprscan.SeedIndex, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gg, ix, _, err := c.getIndex(context.Background(), paths[0])
			if err != nil {
				t.Error(err)
				return
			}
			if gg != g {
				t.Error("getIndex returned a different genome")
			}
			indexes[i] = ix
		}(i)
	}
	wg.Wait()
	for i := 1; i < jobs; i++ {
		if indexes[i] != indexes[0] {
			t.Fatalf("job %d got a private index; builds are not shared", i)
		}
	}
	if indexes[0] == nil {
		t.Fatal("no index built")
	}
	if err := indexes[0].ValidateGenome(g); err != nil {
		t.Fatalf("shared index does not match the cached genome: %v", err)
	}
}

// TestCacheIndexEvictedWithGenome: rotating the file identity rotates
// the entry, so a later getIndex builds a fresh index rather than
// serving one derived from the stale reference.
func TestCacheIndexSurvivesWithinEntry(t *testing.T) {
	paths := cacheFixture(t, 1)
	g := crisprscan.SynthesizeGenome(crisprscan.SynthConfig{Seed: 32, ChromLen: 1500, NumChroms: 1})
	c := newGenomeCache(1, func(path string) (*crisprscan.Genome, error) { return g, nil })

	_, first, _, err := c.getIndex(context.Background(), paths[0])
	if err != nil {
		t.Fatal(err)
	}
	_, again, _, err := c.getIndex(context.Background(), paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if first != again {
		t.Fatal("second getIndex on an unchanged file rebuilt the index")
	}
	// Change the file identity: the entry (and its index) must rotate.
	if err := os.WriteFile(paths[0], []byte(">chr1\nACGTACGTACGT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rotated, _, err := c.getIndex(context.Background(), paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if rotated == first {
		t.Fatal("file rotation served the stale index")
	}
}
