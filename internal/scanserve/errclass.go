// Package scanserve is the long-lived, fault-tolerant scan service: a
// durable job API over the streaming off-target search. It owns the job
// lifecycle (queued → running → done/failed/cancelled) persisted through
// the checkpoint journal machinery so a kill -9 mid-job resumes after
// restart with byte-identical output; a bounded worker pool with
// per-tenant token-bucket quotas and fair queuing; admission control
// that sheds load with Retry-After instead of accepting unbounded work;
// per-job retry with exponential backoff and jitter for transient
// failures; panic isolation per job; per-attempt deadlines; a keyed
// resident-genome cache with single-flight loading and LRU eviction;
// and graceful drain on shutdown.
package scanserve

import (
	"context"
	"errors"
)

// Class partitions job failures by what the service should do next.
// The taxonomy is deliberately three-valued: retrying a permanent
// failure wastes quota and delays the terminal state the client is
// polling for, retrying a cancellation resurrects work someone asked to
// stop, and *not* retrying a transient failure turns a blip into an
// outage. Everything the retry loop decides hangs off this one
// classification.
type Class int

const (
	// ClassPermanent failures reproduce on retry: invalid guides, a
	// missing genome, an engine bug. The job fails immediately.
	ClassPermanent Class = iota
	// ClassTransient failures may succeed on retry: injected faults in
	// tests, overload, a flaky filesystem. The job is retried with
	// exponential backoff up to the configured budget.
	ClassTransient
	// ClassCanceled failures mean the work was stopped, not broken:
	// context cancellation (client cancel, drain) or a deadline. The
	// job layer maps the cause to cancelled, re-queued, or failed.
	ClassCanceled
)

// String names the class for job records and metrics labels.
func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassCanceled:
		return "canceled"
	default:
		return "permanent"
	}
}

// transienter is the duck-typed marker any error can implement to
// declare itself retryable; faultinject's injectors implement it
// without importing this package.
type transienter interface{ Transient() bool }

// Classify maps an error to its retry class. Cancellation dominates
// (a canceled scan often wraps other errors on the way out), then an
// explicit Transient() marker anywhere in the chain, then the default:
// permanent. Unknown errors defaulting to permanent is the safe side —
// a misclassified transient costs one job, a misclassified permanent
// retry loop costs the whole queue.
func Classify(err error) Class {
	if err == nil {
		return ClassPermanent
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassCanceled
	}
	var t transienter
	if errors.As(err, &t) && t.Transient() {
		return ClassTransient
	}
	return ClassPermanent
}

// markedErr wraps an error with a pinned transience bit.
type markedErr struct {
	err       error
	transient bool
}

func (e *markedErr) Error() string   { return e.err.Error() }
func (e *markedErr) Unwrap() error   { return e.err }
func (e *markedErr) Transient() bool { return e.transient }

// MarkTransient marks err (and everything it wraps) as retryable.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &markedErr{err: err, transient: true}
}

// MarkPermanent pins err as non-retryable even if a wrapped cause
// carries a Transient marker: errors.As finds the outermost marker
// first, so the pin wins.
func MarkPermanent(err error) error {
	if err == nil {
		return nil
	}
	return &markedErr{err: err, transient: false}
}
