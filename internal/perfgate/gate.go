package perfgate

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// This file holds the three gate modes shared by cmd/perfgate and the
// deprecated cmd/allocgate shim. Each returns a process exit code and
// reports through the injected writers (never the terminal directly —
// the logdiscipline invariant holds for gate engines too).

// Update regenerates the baseline at path from the current verdicts of
// all three classes, carrying over the written justification of every
// surviving entry; new entries get the TODO placeholder so Compare
// fails until someone writes a reason.
func Update(dir, path string, stdout, stderr io.Writer) int {
	entries, err := Collect(dir, nil)
	if err != nil {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}
	version, err := GoVersion(dir)
	if err != nil {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}
	if prior, err := ReadBaseline(path); err == nil {
		entries = PreserveJustifications(prior, entries)
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}
	if err := WriteBaseline(path, &Baseline{GoVersion: version, Entries: entries}); err != nil {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "perfgate: wrote %s (%d entries, pinned to %s)\n", path, len(entries), version)
	for _, e := range Unjustified(&Baseline{Entries: entries}) {
		fmt.Fprintf(stdout, "perfgate: needs justification: %s\n", e.Key())
	}
	return 0
}

// Compare gates the current verdicts against the baseline at path,
// restricted to classes when non-nil. Exit codes: 0 clean; 3 new
// escape; 4 new inlining regression; 5 new bounds check; 6 baseline
// entry without a written justification; 1 operational error. On a Go
// toolchain mismatch it regenerates the baseline (warn, preserve
// justifications, exit 0) rather than failing on diagnostics the
// pinned toolchain never produced.
func Compare(dir, path string, classes map[Class]bool, stdout, stderr io.Writer) int {
	base, err := ReadBaseline(path)
	if err != nil {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}
	version, err := GoVersion(dir)
	if err != nil {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}
	if base.GoVersion == "" {
		// A legacy allocgate baseline carries no pin: compare anyway
		// (its historic behavior) rather than regenerating over it.
		fmt.Fprintf(stderr, "perfgate: %s has no toolchain pin (legacy schema); comparing against %s diagnostics without a pin guarantee\n", path, version)
	} else if base.GoVersion != version {
		fmt.Fprintf(stderr, "perfgate: baseline pinned to %q but toolchain is %q; regenerating instead of comparing (compiler diagnostics are not stable across Go releases)\n",
			base.GoVersion, version)
		entries, err := Collect(dir, nil)
		if err != nil {
			fmt.Fprintf(stderr, "perfgate: %v\n", err)
			return 1
		}
		entries = PreserveJustifications(base, entries)
		if err := WriteBaseline(path, &Baseline{GoVersion: version, Entries: entries}); err != nil {
			fmt.Fprintf(stderr, "perfgate: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "perfgate: regenerated %s (%d entries, pinned to %s); review and commit it\n", path, len(entries), version)
		return 0
	}

	entries, err := Collect(dir, classes)
	if err != nil {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}
	gated := base
	if classes != nil {
		filtered := &Baseline{GoVersion: base.GoVersion}
		for _, e := range base.Entries {
			if classes[e.Class] {
				filtered.Entries = append(filtered.Entries, e)
			}
		}
		gated = filtered
	}
	code := Diff(gated, entries).Report(stdout, stderr)
	if unjust := Unjustified(gated); len(unjust) > 0 {
		for _, e := range unjust {
			fmt.Fprintf(stderr, "perfgate: baseline entry lacks a justification: %s\n", e.Key())
		}
		if code == 0 {
			code = 6
		}
	}
	if code == 0 {
		fmt.Fprintf(stdout, "perfgate: clean against %s (%d baselined verdicts)\n", path, len(gated.Entries))
	}
	return code
}

// Migrate imports a legacy allocgate baseline: the current verdicts
// become the new baseline at path, and every escape entry the legacy
// file already accepted inherits a migration justification. Legacy
// entries no longer observed are reported as resolved and dropped.
func Migrate(dir, path, legacyPath string, stdout, stderr io.Writer) int {
	legacy, err := ReadBaseline(legacyPath)
	if err != nil {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}
	entries, err := Collect(dir, nil)
	if err != nil {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}
	version, err := GoVersion(dir)
	if err != nil {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}
	legacyKeys := make(map[string]bool, len(legacy.Entries))
	for _, e := range legacy.Entries {
		legacyKeys[e.Key()] = true
	}
	migrated := 0
	curKeys := make(map[string]bool, len(entries))
	for i := range entries {
		curKeys[entries[i].Key()] = true
		if legacyKeys[entries[i].Key()] {
			entries[i].Justification = "migrated from " + filepath.Base(legacyPath) + ": accepted by allocgate's escape budget"
			migrated++
		}
	}
	for _, e := range legacy.Entries {
		if !curKeys[e.Key()] {
			fmt.Fprintf(stdout, "perfgate: legacy entry resolved, dropped: %s\n", e.Key())
		}
	}
	if prior, err := ReadBaseline(path); err == nil {
		entries = PreserveJustifications(prior, entries)
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}
	if err := WriteBaseline(path, &Baseline{GoVersion: version, Entries: entries}); err != nil {
		fmt.Fprintf(stderr, "perfgate: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "perfgate: wrote %s (%d entries, %d justified by migration from %s); justify the rest, then delete %s\n",
		path, len(entries), migrated, legacyPath, legacyPath)
	return 0
}
