package perfgate

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		msg   string
		class Class
		norm  string
		ok    bool
	}{
		{"Found IsInBounds", ClassBounds, "Found IsInBounds", true},
		{"Found IsSliceInBounds", ClassBounds, "Found IsSliceInBounds", true},
		{"Found IsSlice3InBounds", ClassBounds, "Found IsSlice3InBounds", true},
		{"cannot inline (*DFA).Scan: function too complex: cost 256 exceeds budget 80",
			ClassInline, "cannot inline: function too complex: cost N exceeds budget N", true},
		{"cannot inline Step: unhandled op DEFER", ClassInline, "cannot inline: unhandled op DEFER", true},
		{"make([]bool, spacerLen) escapes to heap:", ClassEscape, "make([]bool, spacerLen) escapes to heap", true},
		{"func literal escapes to heap", ClassEscape, "func literal escapes to heap", true},
		{"moved to heap: x", ClassEscape, "moved to heap: x", true},
		// streams perfgate does not gate
		{"can inline Sum with cost 26 as: func([]int) int { ... }", "", "", false},
		{"s does not escape", "", "", false},
		{"func literal does not escape", "", "", false},
		{"inlining call to Sum", "", "", false},
		// -m=2 flow-explanation continuations arrive indented
		{"   flow: {heap} = &x:", "", "", false},
	}
	for _, c := range cases {
		class, norm, ok := classify(c.msg)
		if ok != c.ok || class != c.class || norm != c.norm {
			t.Errorf("classify(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.msg, class, norm, ok, c.class, c.norm, c.ok)
		}
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "PERF_BASELINE.txt")
	want := &Baseline{
		GoVersion: "go1.24.0",
		Entries: []Entry{
			{Class: ClassEscape, Pkg: "example.com/m/k", Func: "(*E).Scan.func", Message: "func literal escapes to heap", Count: 2, Justification: "per-chunk closure; amortized over 64Ki positions"},
			{Class: ClassInline, Pkg: "example.com/m/k", Func: "(*E).Scan", Message: "cannot inline: function too complex: cost N exceeds budget N", Count: 1, Justification: "kernel body | called per chunk, not per symbol"},
			{Class: ClassBounds, Pkg: "example.com/m/k", Func: "(*E).Scan", Message: "Found IsInBounds", Count: 3, Justification: ""},
		},
	}
	if err := WriteBaseline(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.GoVersion != want.GoVersion {
		t.Fatalf("GoVersion = %q, want %q", got.GoVersion, want.GoVersion)
	}
	// The writer renders an empty justification as the TODO placeholder.
	want.Entries[2].Justification = TODOJustification
	if !reflect.DeepEqual(got.Entries, want.Entries) {
		t.Fatalf("entries round-trip mismatch:\n got %+v\nwant %+v", got.Entries, want.Entries)
	}
	if un := Unjustified(got); len(un) != 1 || un[0].Message != "Found IsInBounds" {
		t.Fatalf("Unjustified = %+v, want the bounds entry only", un)
	}
	// A justification containing the field separator survives (parser
	// splits at most twice).
	if got.Entries[1].Justification != "kernel body | called per chunk, not per symbol" {
		t.Fatalf("separator-bearing justification mangled: %q", got.Entries[1].Justification)
	}
}

func TestReadBaselineRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(path, []byte("# some other file\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path); err == nil || !strings.Contains(err.Error(), "schema header") {
		t.Fatalf("want schema-header error, got %v", err)
	}
}

func TestReadBaselineLegacyAllocFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ALLOC_BASELINE.txt")
	legacy := LegacyAllocHeader + "\n" +
		"# a comment\n" +
		"example.com/m/k (*E).Scan.func: func literal escapes to heap\n" +
		"example.com/m/k (*E).Scan.func: func literal escapes to heap\n" +
		"example.com/m/k (*E).Scan: make([]bool, n) escapes to heap\n"
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.GoVersion != "" {
		t.Fatalf("legacy baseline carries no toolchain pin, got %q", b.GoVersion)
	}
	want := []Entry{
		{Class: ClassEscape, Pkg: "example.com/m/k", Func: "(*E).Scan", Message: "make([]bool, n) escapes to heap", Count: 1},
		{Class: ClassEscape, Pkg: "example.com/m/k", Func: "(*E).Scan.func", Message: "func literal escapes to heap", Count: 2},
	}
	if !reflect.DeepEqual(b.Entries, want) {
		t.Fatalf("legacy conversion:\n got %+v\nwant %+v", b.Entries, want)
	}
}

func TestDiffCountsAsBudgets(t *testing.T) {
	base := &Baseline{Entries: []Entry{
		{Class: ClassBounds, Pkg: "p", Func: "F", Message: "Found IsInBounds", Count: 2, Justification: "x"},
		{Class: ClassEscape, Pkg: "p", Func: "G", Message: "moved to heap: s", Count: 1, Justification: "y"},
	}}
	cur := []Entry{
		{Class: ClassBounds, Pkg: "p", Func: "F", Message: "Found IsInBounds", Count: 3},
		{Class: ClassInline, Pkg: "p", Func: "F", Message: "cannot inline: unhandled op DEFER", Count: 1},
	}
	d := Diff(base, cur)
	if n := d.New[ClassBounds]; len(n) != 1 || n[0].Entry.Count != 3 || n[0].Baseline != 2 {
		t.Fatalf("bounds count growth not flagged: %+v", d.New[ClassBounds])
	}
	if n := d.New[ClassInline]; len(n) != 1 || n[0].Baseline != 0 {
		t.Fatalf("new inline key not flagged: %+v", d.New[ClassInline])
	}
	if len(d.Resolved) != 1 || d.Resolved[0].Func != "G" {
		t.Fatalf("vanished escape entry not resolved: %+v", d.Resolved)
	}

	// No escape *regression* here (the escape entry resolved), so the
	// inline class decides the exit code.
	var out, errw strings.Builder
	if code := d.Report(&out, &errw); code != 4 {
		t.Fatalf("inline outranks bounds in exit codes; got %d", code)
	}
	dEscape := Diff(base, append(cur, Entry{Class: ClassEscape, Pkg: "p", Func: "F", Message: "moved to heap: t", Count: 1}))
	if code := dEscape.Report(&out, &errw); code != 3 {
		t.Fatalf("escape outranks inline and bounds in exit codes; got %d", code)
	}
	dBounds := Diff(base, cur[:1])
	if code := dBounds.Report(&out, &errw); code != 5 {
		t.Fatalf("bounds-only regression exit = %d, want 5", code)
	}
}

func TestPreserveJustifications(t *testing.T) {
	prior := &Baseline{Entries: []Entry{
		{Class: ClassBounds, Pkg: "p", Func: "F", Message: "Found IsInBounds", Count: 2, Justification: "ring-buffer index; masked below"},
	}}
	cur := []Entry{
		{Class: ClassBounds, Pkg: "p", Func: "F", Message: "Found IsInBounds", Count: 4},
		{Class: ClassBounds, Pkg: "p", Func: "H", Message: "Found IsInBounds", Count: 1},
	}
	got := PreserveJustifications(prior, cur)
	if got[0].Justification != "ring-buffer index; masked below" || got[0].Count != 4 {
		t.Fatalf("surviving key lost its justification or count: %+v", got[0])
	}
	if got[1].Justification != "" {
		t.Fatalf("new key should stay unjustified, got %q", got[1].Justification)
	}
}
