// Package perfgate is the compiler-feedback performance gate for the
// scan kernels: the engine behind cmd/perfgate (and the deprecated
// cmd/allocgate shim). The source-level analyzers (hotpath, boundshint,
// loopinvariant) explain *why* a kernel should miss an optimization;
// perfgate closes the loop with the compiler's own verdicts. It builds
// every package containing a //crisprlint:hotpath directive with
//
//	go build -gcflags='<pkg>=-m=2 -d=ssa/check_bce/debug=1' <pkg>
//
// and parses the three diagnostic streams that decide whether a kernel
// runs as fast as the hardware allows:
//
//   - escape:  "escapes to heap" / "moved to heap" — state leaves the
//     stack and the kernel allocates;
//   - inline:  "cannot inline <fn>: <reason>" — the per-symbol step
//     stays an out-of-line call;
//   - bounds:  "Found IsInBounds" / "Found IsSliceInBounds" — a slice
//     access keeps its bounds check in the loop.
//
// Verdicts are attributed to the //crisprlint:hotpath function whose
// source span contains them and keyed by (class, package, function,
// message) — never file:line — so unrelated edits do not churn the
// baseline. Inline reasons normalize their cost/budget digits for the
// same reason. Counts are per distinct source position, so adding a
// second bounds check with an identical message is still a regression.
//
// The baseline file is schema-versioned and pinned to the Go toolchain
// that produced it: compiler diagnostics are not stable across
// releases, so on a version mismatch the gate degrades to
// warn-and-regenerate instead of failing falsely. Every entry carries a
// written justification; an entry still reading "TODO: justify" fails
// the comparison with its own exit code.
package perfgate

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"github.com/cap-repro/crisprscan/internal/analysis"
)

// SchemaHeader is the first line of a perfgate baseline.
const SchemaHeader = "# perfgate compiler-feedback baseline, schema v1"

// LegacyAllocHeader is the first line of the PR-4 allocgate baseline
// format, accepted read-only for -migrate and the allocgate shim.
const LegacyAllocHeader = "# allocgate escape baseline, schema v1"

// TODOJustification marks an entry whose justification has not been
// written yet; Unjustified treats it the same as an empty one.
const TODOJustification = "TODO: justify"

// Class is one compiler-feedback budget.
type Class string

const (
	// ClassEscape covers heap-escape verdicts ("escapes to heap",
	// "moved to heap") — the budget cmd/allocgate used to gate alone.
	ClassEscape Class = "escape"
	// ClassInline covers inlining decisions ("cannot inline ...").
	ClassInline Class = "inline"
	// ClassBounds covers surviving bounds/slice checks reported by
	// -d=ssa/check_bce/debug=1 ("Found IsInBounds" and friends).
	ClassBounds Class = "bounds"
)

// Classes returns the budget classes in report order.
func Classes() []Class { return []Class{ClassEscape, ClassInline, ClassBounds} }

// Entry is one attributed compiler verdict.
type Entry struct {
	Class Class
	// Pkg is the import path of the hot package.
	Pkg string
	// Func is the hot function's display name (closures carry the
	// enclosing declaration's name with a ".func" suffix).
	Func string
	// Message is the normalized diagnostic text.
	Message string
	// Count is the number of distinct source positions carrying this
	// verdict inside the function.
	Count int
	// Justification is the baseline's written reason for accepting the
	// verdict; empty (or TODO) entries fail comparison.
	Justification string
}

// Key identifies an entry for diffing: everything but count and
// justification.
func (e Entry) Key() string {
	return string(e.Class) + " " + e.Pkg + " " + e.Func + ": " + e.Message
}

// String renders the baseline line format:
//
//	<class> <pkg> <func>: <message> | x<count> | <justification>
func (e Entry) String() string {
	j := e.Justification
	if j == "" {
		j = TODOJustification
	}
	return fmt.Sprintf("%s | x%d | %s", e.Key(), e.Count, j)
}

// Baseline is a parsed PERF_BASELINE file.
type Baseline struct {
	// GoVersion is the toolchain pin recorded when the baseline was
	// written ("go1.24.0").
	GoVersion string
	Entries   []Entry
}

// GoVersion reports the toolchain version the go command in dir
// resolves to (the one whose diagnostics the baseline pins).
func GoVersion(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOVERSION")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("perfgate: go env GOVERSION: %w", err)
	}
	v := strings.TrimSpace(string(out))
	if v == "" {
		return "", fmt.Errorf("perfgate: go env GOVERSION returned nothing")
	}
	return v, nil
}

// hotSpan is the source extent of one //crisprlint:hotpath function.
type hotSpan struct {
	name       string
	start, end int // inclusive line range
}

// Collect loads the module at dir, finds every //crisprlint:hotpath
// function, compiles each package containing one with the three
// diagnostic streams enabled, and returns the attributed entries
// (sorted by key) for the requested classes; a nil class set means all
// three. The build cache replays diagnostics on cache hits, so repeated
// runs are cheap.
func Collect(dir string, classes map[Class]bool) ([]Entry, error) {
	// The compiler prints paths relative to the working directory; the
	// loader records absolute ones. Work in absolute space throughout.
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog, err := analysis.Load(fset, dir, "./...")
	if err != nil {
		return nil, err
	}

	spans := make(map[string][]hotSpan) // absolute filename -> hot spans
	var hotPkgs []string
	for path, pkg := range prog.Packages {
		hot := false
		for _, f := range pkg.Files {
			for _, hf := range analysis.HotFuncs(fset, f) {
				pos := fset.Position(hf.Pos)
				spans[pos.Filename] = append(spans[pos.Filename], hotSpan{
					name:  hf.Name,
					start: pos.Line,
					end:   fset.Position(hf.End).Line,
				})
				hot = true
			}
		}
		if hot {
			hotPkgs = append(hotPkgs, path)
		}
	}
	sort.Strings(hotPkgs)
	if len(hotPkgs) == 0 {
		return nil, nil
	}

	counts := make(map[string]*Entry)
	for _, pkgPath := range hotPkgs {
		out, err := diagnostics(dir, pkgPath)
		if err != nil {
			return nil, err
		}
		attribute(dir, prog.Packages[pkgPath].Path, out, spans, classes, counts)
	}
	entries := make([]Entry, 0, len(counts))
	for _, e := range counts {
		entries = append(entries, *e)
	}
	SortEntries(entries)
	return entries, nil
}

// SortEntries orders entries by (class, package, function, message),
// the canonical baseline order.
func SortEntries(entries []Entry) {
	order := map[Class]int{ClassEscape: 0, ClassInline: 1, ClassBounds: 2}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if order[a.Class] != order[b.Class] {
			return order[a.Class] < order[b.Class]
		}
		if a.Pkg != b.Pkg {
			return a.Pkg < b.Pkg
		}
		if a.Func != b.Func {
			return a.Func < b.Func
		}
		return a.Message < b.Message
	})
}

// diagnostics compiles one package with escape analysis, inlining
// decisions and surviving-bounds-check reporting enabled and returns
// the compiler's combined output.
func diagnostics(dir, pkgPath string) (string, error) {
	cmd := exec.Command("go", "build",
		"-gcflags="+pkgPath+"=-m=2 -d=ssa/check_bce/debug=1", pkgPath)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("perfgate: go build -gcflags '-m=2 -d=ssa/check_bce/debug=1' %s: %w\n%s", pkgPath, err, buf.String())
	}
	return buf.String(), nil
}

// diagLine matches one compiler diagnostic: path:line:col: message.
var diagLine = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.*)$`)

// inlineReason strips the function name out of a "cannot inline"
// message: the name is already the entry's Func key.
var inlineReason = regexp.MustCompile(`^cannot inline [^:]+: (.*)$`)

// costDigits normalizes inline-cost accounting so incidental cost drift
// (an unrelated edit nudging 256 to 260) does not churn the baseline.
var costDigits = regexp.MustCompile(`\b(cost|budget) \d+`)

// classify maps one raw diagnostic message to its budget class and
// normalized text. ok is false for everything perfgate does not gate
// ("can inline", "does not escape", flow explanations, ...).
func classify(msg string) (Class, string, bool) {
	// -m=2 prints each escape verdict twice — once suffixed ":" with
	// indented flow explanation lines after it, once plain. The indented
	// continuations never match here (their text starts with spaces);
	// the ":"-suffixed duplicate normalizes to the plain form and the
	// position-keyed dedupe in attribute collapses the pair.
	if strings.HasPrefix(msg, " ") || strings.HasPrefix(msg, "\t") {
		return "", "", false
	}
	switch msg {
	case "Found IsInBounds", "Found IsSliceInBounds", "Found IsSlice3InBounds":
		return ClassBounds, msg, true
	}
	if m := inlineReason.FindStringSubmatch(msg); m != nil {
		return ClassInline, "cannot inline: " + costDigits.ReplaceAllString(m[1], "$1 N"), true
	}
	norm := strings.TrimSuffix(msg, ":")
	if strings.Contains(norm, "escapes to heap") || strings.HasPrefix(norm, "moved to heap") {
		return ClassEscape, norm, true
	}
	return "", "", false
}

// attribute parses raw compiler output into counts, keeping only
// verdicts of the requested classes that land inside the innermost
// hot-function span containing their line.
func attribute(dir, pkgPath, out string, spans map[string][]hotSpan, classes map[Class]bool, counts map[string]*Entry) {
	seen := make(map[string]bool) // position-level dedupe within one package
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		m := diagLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		class, msg, ok := classify(m[4])
		if !ok || (classes != nil && !classes[class]) {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		line, _ := strconv.Atoi(m[2])
		fn := innermost(spans[file], line)
		if fn == "" {
			continue
		}
		posKey := file + ":" + m[2] + ":" + m[3] + " " + string(class) + " " + msg
		if seen[posKey] {
			continue
		}
		seen[posKey] = true
		e := Entry{Class: class, Pkg: pkgPath, Func: fn, Message: msg, Count: 1}
		if prev, ok := counts[e.Key()]; ok {
			prev.Count++
		} else {
			counts[e.Key()] = &e
		}
	}
}

// innermost returns the name of the smallest hot span containing line,
// or "" when the line is outside every hot function.
func innermost(spans []hotSpan, line int) string {
	best, bestSize := "", 0
	for _, s := range spans {
		if line < s.start || line > s.end {
			continue
		}
		if size := s.end - s.start; best == "" || size < bestSize {
			best, bestSize = s.name, size
		}
	}
	return best
}

// WriteBaseline writes the baseline under the schema header and
// toolchain pin via temp-file + rename, so a crashed run never leaves a
// truncated baseline behind.
func WriteBaseline(path string, b *Baseline) error {
	var buf bytes.Buffer
	fmt.Fprintln(&buf, SchemaHeader)
	fmt.Fprintf(&buf, "# go: %s\n", b.GoVersion)
	fmt.Fprintln(&buf, "# regenerate with: go run ./cmd/perfgate -update (justifications on surviving entries are preserved)")
	fmt.Fprintln(&buf, "# entry: <class> <pkg> <func>: <message> | x<count> | <justification>")
	for _, e := range b.Entries {
		fmt.Fprintln(&buf, e)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".perfgate-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadBaseline parses a baseline file, enforcing the schema header. A
// legacy allocgate baseline is accepted and converted: its entries
// become escape-class entries (duplicates fold into counts) with no
// justification and no toolchain pin.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("%s: empty baseline", path)
	}
	if lines[0] == LegacyAllocHeader {
		entries, err := parseLegacyAlloc(path, lines[1:])
		if err != nil {
			return nil, err
		}
		return &Baseline{Entries: entries}, nil
	}
	if lines[0] != SchemaHeader {
		return nil, fmt.Errorf("%s: missing or unsupported schema header (want %q)", path, SchemaHeader)
	}
	b := &Baseline{}
	for i, l := range lines[1:] {
		l = strings.TrimSpace(l)
		if v, ok := strings.CutPrefix(l, "# go: "); ok {
			b.GoVersion = strings.TrimSpace(v)
			continue
		}
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		e, err := parseEntry(l)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, i+2, err)
		}
		b.Entries = append(b.Entries, e)
	}
	return b, nil
}

// parseEntry parses one "<class> <pkg> <func>: <message> | x<count> |
// <justification>" line.
func parseEntry(line string) (Entry, error) {
	parts := strings.SplitN(line, " | ", 3)
	if len(parts) != 3 {
		return Entry{}, fmt.Errorf("perfgate: malformed entry (want 'key | xN | justification'): %q", line)
	}
	count, err := strconv.Atoi(strings.TrimPrefix(parts[1], "x"))
	if err != nil || !strings.HasPrefix(parts[1], "x") || count < 1 {
		return Entry{}, fmt.Errorf("perfgate: malformed count %q in %q", parts[1], line)
	}
	key := parts[0]
	sp := strings.IndexByte(key, ' ')
	if sp < 0 {
		return Entry{}, fmt.Errorf("perfgate: malformed key %q", key)
	}
	class := Class(key[:sp])
	switch class {
	case ClassEscape, ClassInline, ClassBounds:
	default:
		return Entry{}, fmt.Errorf("perfgate: unknown class %q in %q", class, line)
	}
	rest := key[sp+1:]
	sp = strings.IndexByte(rest, ' ')
	colon := strings.Index(rest, ": ")
	if sp < 0 || colon < sp {
		return Entry{}, fmt.Errorf("perfgate: malformed key %q", key)
	}
	return Entry{
		Class:         class,
		Pkg:           rest[:sp],
		Func:          rest[sp+1 : colon],
		Message:       rest[colon+2:],
		Count:         count,
		Justification: strings.TrimSpace(parts[2]),
	}, nil
}

// parseLegacyAlloc converts PR-4 allocgate lines ("pkg func: message",
// a multiset) into escape entries with counts.
func parseLegacyAlloc(path string, lines []string) ([]Entry, error) {
	counts := make(map[string]*Entry)
	for i, l := range lines {
		l = strings.TrimSpace(l)
		if l == "" || strings.HasPrefix(l, "#") {
			continue
		}
		sp := strings.IndexByte(l, ' ')
		colon := strings.Index(l, ": ")
		if sp < 0 || colon < sp {
			return nil, fmt.Errorf("%s:%d: malformed allocgate entry %q", path, i+2, l)
		}
		e := Entry{
			Class:   ClassEscape,
			Pkg:     l[:sp],
			Func:    l[sp+1 : colon],
			Message: l[colon+2:],
			Count:   1,
		}
		if prev, ok := counts[e.Key()]; ok {
			prev.Count++
		} else {
			counts[e.Key()] = &e
		}
	}
	entries := make([]Entry, 0, len(counts))
	for _, e := range counts {
		entries = append(entries, *e)
	}
	SortEntries(entries)
	return entries, nil
}

// Unjustified returns the baseline entries with no written
// justification (empty or still the TODO placeholder).
func Unjustified(b *Baseline) []Entry {
	var out []Entry
	for _, e := range b.Entries {
		if e.Justification == "" || strings.HasPrefix(e.Justification, "TODO") {
			out = append(out, e)
		}
	}
	return out
}

// Regression is one key whose verdict count grew past the baseline.
type Regression struct {
	Entry    Entry // current state (Count = observed)
	Baseline int   // baselined count (0 when the key is new)
}

// DiffResult is the outcome of comparing current entries to a baseline.
type DiffResult struct {
	// New holds regressions grouped by class.
	New map[Class][]Regression
	// Resolved holds baseline entries (or count surplus) no longer
	// observed — candidates for -update.
	Resolved []Entry
}

// Diff compares the baseline against the current entries by key,
// treating counts as budgets: more occurrences of a baselined message
// is as much a regression as a brand-new message.
func Diff(old *Baseline, cur []Entry) DiffResult {
	res := DiffResult{New: make(map[Class][]Regression)}
	baseByKey := make(map[string]Entry, len(old.Entries))
	for _, e := range old.Entries {
		baseByKey[e.Key()] = e
	}
	curKeys := make(map[string]bool, len(cur))
	for _, e := range cur {
		curKeys[e.Key()] = true
		base, ok := baseByKey[e.Key()]
		if !ok {
			res.New[e.Class] = append(res.New[e.Class], Regression{Entry: e})
			continue
		}
		if e.Count > base.Count {
			res.New[e.Class] = append(res.New[e.Class], Regression{Entry: e, Baseline: base.Count})
		} else if e.Count < base.Count {
			short := base
			short.Count = base.Count - e.Count
			res.Resolved = append(res.Resolved, short)
		}
	}
	for _, e := range old.Entries {
		if !curKeys[e.Key()] {
			res.Resolved = append(res.Resolved, e)
		}
	}
	SortEntries(res.Resolved)
	return res
}

// PreserveJustifications copies the justification of every baseline
// entry onto the matching current entry (by key), returning the updated
// slice. Entries with no prior justification keep the empty string (the
// writer renders it as the TODO placeholder).
func PreserveJustifications(prior *Baseline, cur []Entry) []Entry {
	if prior == nil {
		return cur
	}
	byKey := make(map[string]string, len(prior.Entries))
	for _, e := range prior.Entries {
		if e.Justification != "" {
			byKey[e.Key()] = e.Justification
		}
	}
	for i := range cur {
		if j, ok := byKey[cur[i].Key()]; ok {
			cur[i].Justification = j
		}
	}
	return cur
}

// Report writes the diff in gate order (escape, inline, bounds, then
// resolved entries) and returns the exit code: 3 new escapes, 4 new
// inlining regressions, 5 new bounds checks, 0 clean. Earlier classes
// win when several regress at once.
func (r DiffResult) Report(stdout, stderr io.Writer) int {
	exits := map[Class]int{ClassEscape: 3, ClassInline: 4, ClassBounds: 5}
	code := 0
	for _, class := range Classes() {
		for _, reg := range r.New[class] {
			if reg.Baseline > 0 {
				fmt.Fprintf(stderr, "perfgate: NEW %s regression: %s | x%d (baseline x%d)\n",
					class, reg.Entry.Key(), reg.Entry.Count, reg.Baseline)
			} else {
				fmt.Fprintf(stderr, "perfgate: NEW %s regression: %s | x%d\n",
					class, reg.Entry.Key(), reg.Entry.Count)
			}
			if code == 0 {
				code = exits[class]
			}
		}
	}
	for _, e := range r.Resolved {
		fmt.Fprintf(stdout, "perfgate: resolved (refresh with -update): %s | x%d\n", e.Key(), e.Count)
	}
	return code
}
