package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpenMissingFileIsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	j, err := Open(path, Fingerprint("a"))
	if err != nil {
		t.Fatal(err)
	}
	if j.Chroms() != 0 || j.Sites() != 0 || j.Done("chr1") {
		t.Fatalf("fresh journal not empty: %d chroms, %d sites", j.Chroms(), j.Sites())
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("Open must not create the journal file before the first Commit")
	}
}

func TestCommitRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	fp := Fingerprint(CanonicalFields([]string{"ACGT"}, map[string]string{"k": "3"})...)
	j, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(Entry{Chrom: "chr1", Sites: 7, ScannedBases: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(Entry{Chrom: "chr2", Sites: 3, ScannedBases: 2500}); err != nil {
		t.Fatal(err)
	}

	j2, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Chroms() != 2 || j2.Sites() != 10 {
		t.Fatalf("reloaded journal has %d chroms / %d sites, want 2 / 10", j2.Chroms(), j2.Sites())
	}
	if !j2.Done("chr1") || !j2.Done("chr2") || j2.Done("chr3") {
		t.Fatal("Done map does not match committed entries")
	}

	chroms, sites, err := Probe(path)
	if err != nil {
		t.Fatal(err)
	}
	if chroms != 2 || sites != 10 {
		t.Fatalf("Probe = %d chroms / %d sites, want 2 / 10", chroms, sites)
	}
}

func TestDoubleCommitRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	j, err := Open(path, Fingerprint("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(Entry{Chrom: "chr1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(Entry{Chrom: "chr1"}); err == nil {
		t.Fatal("second Commit of the same chromosome must error")
	}
}

func TestFingerprintMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	j, err := Open(path, Fingerprint("k=3"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(Entry{Chrom: "chr1"}); err != nil {
		t.Fatal(err)
	}
	_, err = Open(path, Fingerprint("k=4"))
	if err == nil {
		t.Fatal("fingerprint mismatch must be rejected")
	}
	if !strings.Contains(err.Error(), "different parameters") {
		t.Fatalf("mismatch error not actionable: %v", err)
	}
}

func TestCorruptJournalRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Fingerprint("a")); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt journal must be rejected, got %v", err)
	}
	if _, _, err := Probe(path); err == nil {
		t.Fatal("Probe must reject a corrupt journal")
	}
}

func TestProbeMissingFile(t *testing.T) {
	chroms, sites, err := Probe(filepath.Join(t.TempDir(), "absent.ckpt"))
	if err != nil || chroms != 0 || sites != 0 {
		t.Fatalf("Probe on missing file = %d/%d/%v, want 0/0/nil", chroms, sites, err)
	}
}

func TestCommitLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(filepath.Join(dir, "scan.ckpt"), Fingerprint("a"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []string{"chr1", "chr2", "chr3"} {
		if err := j.Commit(Entry{Chrom: c}); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "scan.ckpt" {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only scan.ckpt (temp files must be cleaned up)", names)
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := CanonicalFields([]string{"ACGT", "TTTT"}, map[string]string{"k": "3", "pam": "NGG"})
	same := CanonicalFields([]string{"ACGT", "TTTT"}, map[string]string{"pam": "NGG", "k": "3"})
	if Fingerprint(base...) != Fingerprint(same...) {
		t.Fatal("label order must not change the fingerprint")
	}
	diffs := [][]string{
		CanonicalFields([]string{"ACGT"}, map[string]string{"k": "3", "pam": "NGG"}),
		CanonicalFields([]string{"TTTT", "ACGT"}, map[string]string{"k": "3", "pam": "NGG"}),
		CanonicalFields([]string{"ACGT", "TTTT"}, map[string]string{"k": "4", "pam": "NGG"}),
		CanonicalFields([]string{"ACGT", "TTTT"}, map[string]string{"k": "3", "pam": "NAG"}),
	}
	for i, d := range diffs {
		if Fingerprint(d...) == Fingerprint(base...) {
			t.Errorf("variant %d collides with the base fingerprint", i)
		}
	}
	// Length-prefixing means field boundaries cannot be confused.
	if Fingerprint("ab", "c") == Fingerprint("a", "bc") {
		t.Fatal("field boundaries must be unambiguous")
	}
}

func TestCommitSyncsJournalDirectory(t *testing.T) {
	// Crash durability: the rename that installs a journal is not
	// durable until the parent directory is fsynced, so every Commit
	// must reach the directory-sync path. Count calls through the
	// swappable hook while keeping the real sync behavior.
	realSync := syncDir
	defer func() { syncDir = realSync }()
	var syncs int
	var lastDir string
	syncDir = func(dir string) error {
		syncs++
		lastDir = dir
		return realSync(dir)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "scan.ckpt")
	j, err := Open(path, Fingerprint("a"))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(Entry{Chrom: "chr1", Sites: 2, ScannedBases: 100, OutBytes: 64}); err != nil {
		t.Fatal(err)
	}
	if syncs != 1 {
		t.Fatalf("Commit performed %d directory syncs, want exactly 1", syncs)
	}
	if lastDir != dir {
		t.Fatalf("Commit synced %q, want the journal's parent %q", lastDir, dir)
	}
	if err := j.Commit(Entry{Chrom: "chr2", Sites: 0, ScannedBases: 200, OutBytes: 96}); err != nil {
		t.Fatal(err)
	}
	if syncs != 2 {
		t.Fatalf("two Commits performed %d directory syncs, want 2", syncs)
	}
}

func TestCommitSurfacesDirectorySyncFailure(t *testing.T) {
	realSync := syncDir
	defer func() { syncDir = realSync }()
	injected := os.ErrPermission
	syncDir = func(dir string) error { return injected }

	path := filepath.Join(t.TempDir(), "scan.ckpt")
	j, err := Open(path, Fingerprint("a"))
	if err != nil {
		t.Fatal(err)
	}
	err = j.Commit(Entry{Chrom: "chr1"})
	if err == nil || !strings.Contains(err.Error(), "syncing journal directory") {
		t.Fatalf("Commit with failing directory sync returned %v, want a directory-sync error", err)
	}
}

func TestOutBytesWatermarkRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scan.ckpt")
	fp := Fingerprint("a")
	j, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if j.OutBytes() != 0 {
		t.Fatalf("empty journal OutBytes = %d, want 0", j.OutBytes())
	}
	if err := j.Commit(Entry{Chrom: "chr1", OutBytes: 128}); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(Entry{Chrom: "chr2", OutBytes: 321}); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if j2.OutBytes() != 321 {
		t.Fatalf("reloaded OutBytes = %d, want the last committed watermark 321", j2.OutBytes())
	}
}

func TestAtomicWriteFileInstallsAndSyncs(t *testing.T) {
	realSync := syncDir
	defer func() { syncDir = realSync }()
	syncs := 0
	syncDir = func(dir string) error {
		syncs++
		return realSync(dir)
	}

	path := filepath.Join(t.TempDir(), "job.json")
	if err := AtomicWriteFile(path, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := AtomicWriteFile(path, []byte("two")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "two" {
		t.Fatalf("AtomicWriteFile left %q, want the last write", data)
	}
	if syncs != 2 {
		t.Fatalf("AtomicWriteFile performed %d directory syncs, want 2", syncs)
	}
}
