// Package checkpoint makes long streaming scans resumable: a sidecar
// journal records each fully completed chromosome (name, site count,
// cumulative reference bases scanned) together with a fingerprint of
// the search parameters, so an interrupted offtarget -stream run can be
// restarted and skip straight past the work it already finished — and a
// resume attempt with different parameters (a different k, PAM, or
// engine would produce a different site set) is rejected instead of
// silently stitching incompatible outputs together.
//
// The journal is a single JSON document rewritten via write-to-temp +
// rename after every committed chromosome, so a crash at any instant
// leaves either the previous journal or the new one on disk, never a
// torn file. Commit ordering is at-least-once: callers flush their
// output before Commit, so a hard crash between the two can only cause
// a completed chromosome to be re-emitted on resume, never dropped.
package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Entry records one completed chromosome.
type Entry struct {
	// Chrom is the FASTA record ID.
	Chrom string `json:"chrom"`
	// Sites is the number of off-target sites the chromosome yielded.
	Sites int `json:"sites"`
	// ScannedBases is the cumulative reference bases scanned through the
	// end of this chromosome (the Stats.BytesScanned watermark).
	ScannedBases int64 `json:"scanned_bases"`
	// OutBytes is the cumulative size of the caller's output artifact
	// after this chromosome's rows were durably flushed, when the caller
	// tracks one (0 otherwise). A resuming caller truncates its output
	// to the last committed watermark before appending, which turns the
	// journal's at-least-once delivery into exactly-once bytes: a crash
	// between output flush and Commit re-emits the chromosome into the
	// truncated file instead of duplicating it.
	OutBytes int64 `json:"out_bytes,omitempty"`
}

// journalFile is the on-disk JSON shape.
type journalFile struct {
	// Version guards the format itself.
	Version int `json:"version"`
	// Fingerprint identifies the (params, guides) combination the
	// journal belongs to; see Fingerprint.
	Fingerprint string  `json:"fingerprint"`
	Entries     []Entry `json:"entries"`
}

const formatVersion = 1

// Journal is an open checkpoint journal.
type Journal struct {
	path string
	file journalFile
	done map[string]bool
}

// Fingerprint hashes an ordered list of parameter fields into the
// journal identity. Callers pass every knob that changes the site set
// (guides, k, PAMs, strand selection, engine); any difference yields a
// different fingerprint and Open rejects the resume.
func Fingerprint(fields ...string) string {
	h := sha256.New()
	for _, f := range fields {
		fmt.Fprintf(h, "%d:%s\n", len(f), f)
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// Open loads the journal at path, creating an empty one (in memory
// only; nothing is written until the first Commit) if the file does not
// exist. A journal written under a different fingerprint is rejected.
func Open(path, fingerprint string) (*Journal, error) {
	j := &Journal{
		path: path,
		file: journalFile{Version: formatVersion, Fingerprint: fingerprint},
		done: make(map[string]bool),
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return j, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading journal: %w", err)
	}
	if err := json.Unmarshal(data, &j.file); err != nil {
		return nil, fmt.Errorf("checkpoint: journal %s is corrupt: %w", path, err)
	}
	if j.file.Version != formatVersion {
		return nil, fmt.Errorf("checkpoint: journal %s has format version %d, this build reads %d", path, j.file.Version, formatVersion)
	}
	if j.file.Fingerprint != fingerprint {
		return nil, fmt.Errorf("checkpoint: journal %s was written by a search with different parameters (fingerprint %s, this run %s): resume with the original guides/k/PAM/engine or delete the journal", path, j.file.Fingerprint, fingerprint)
	}
	for _, e := range j.file.Entries {
		if j.done[e.Chrom] {
			return nil, fmt.Errorf("checkpoint: journal %s lists chromosome %q twice", path, e.Chrom)
		}
		j.done[e.Chrom] = true
	}
	return j, nil
}

// Probe reports how many chromosomes (and sites) a journal at path has
// already completed, without fingerprint validation — the CLI uses it
// to decide between fresh-output and append-to-output mode before the
// search (and its full validation via Open) starts. A missing file
// probes as zero work done.
func Probe(path string) (chroms, sites int, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("checkpoint: probing journal: %w", err)
	}
	var f journalFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, 0, fmt.Errorf("checkpoint: journal %s is corrupt: %w", path, err)
	}
	for _, e := range f.Entries {
		sites += e.Sites
	}
	return len(f.Entries), sites, nil
}

// Done reports whether the named chromosome is already journaled as
// complete.
func (j *Journal) Done(chrom string) bool { return j.done[chrom] }

// OutBytes returns the last committed output-size watermark (see
// Entry.OutBytes), or 0 for an empty journal.
func (j *Journal) OutBytes() int64 {
	if n := len(j.file.Entries); n > 0 {
		return j.file.Entries[n-1].OutBytes
	}
	return 0
}

// Chroms returns the number of journaled chromosomes.
func (j *Journal) Chroms() int { return len(j.file.Entries) }

// Sites returns the total journaled site count.
func (j *Journal) Sites() int {
	n := 0
	for _, e := range j.file.Entries {
		n += e.Sites
	}
	return n
}

// Commit appends one completed chromosome and atomically rewrites the
// journal file (write temp, fsync, rename).
func (j *Journal) Commit(e Entry) error {
	if j.done[e.Chrom] {
		return fmt.Errorf("checkpoint: chromosome %q committed twice", e.Chrom)
	}
	j.file.Entries = append(j.file.Entries, e)
	j.done[e.Chrom] = true
	data, err := json.MarshalIndent(&j.file, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: encoding journal: %w", err)
	}
	data = append(data, '\n')
	return atomicWrite(j.path, data)
}

// atomicWrite replaces path with data via a same-directory temp file,
// rename, and a directory sync, so readers never observe a torn journal
// and the installed file survives power loss.
func atomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp journal: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: writing journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("checkpoint: syncing journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: closing temp journal: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("checkpoint: installing journal: %w", err)
	}
	// The rename installed the new name in the directory, but that
	// directory entry itself lives in the parent directory's data: until
	// the directory is synced, a power loss can roll the rename back and
	// resurrect the previous journal — or, for a first write, no journal
	// at all. fsync the parent so a committed entry is really committed.
	if err := syncDir(dir); err != nil {
		return fmt.Errorf("checkpoint: syncing journal directory: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory; swappable so tests can both count the
// calls (proving every commit path reaches it) and simulate failure.
var syncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// AtomicWriteFile exposes the journal's crash-safe write primitive
// (temp file, fsync, rename, directory fsync) for other durable
// artifacts — the scan service persists its job records through it.
func AtomicWriteFile(path string, data []byte) error {
	return atomicWrite(path, data)
}

// CanonicalFields builds the fingerprint field list for a search: the
// guide spacers in order, then each labeled parameter. Keeping the
// serialization in one place means the library and any future tool
// fingerprint identically.
func CanonicalFields(spacers []string, labeled map[string]string) []string {
	fields := make([]string, 0, len(spacers)+len(labeled)+1)
	fields = append(fields, fmt.Sprintf("guides=%d", len(spacers)))
	fields = append(fields, spacers...)
	keys := make([]string, 0, len(labeled))
	for k := range labeled {
		keys = append(keys, k)
	}
	// Sorted for determinism regardless of map iteration order.
	sort.Strings(keys)
	for _, k := range keys {
		if strings.ContainsAny(k, "=\n") {
			// Labels are compile-time constants in this repo; reject
			// anything that would make the serialization ambiguous.
			panic("checkpoint: invalid fingerprint label " + k)
		}
		fields = append(fields, k+"="+labeled[k])
	}
	return fields
}
