// Package align implements the bounded edit-distance alignment between
// a degenerate spacer pattern and a concrete genomic segment, with the
// gap semantics shared by the edit automata (automata.CompileEdit), the
// bulge resolver (core) and the brute-force bulge verifier
// (casoffinder): substitutions bounded by k, interior-only gaps bounded
// by b — a gap never sits at either end of the alignment, matching how
// bulge-aware off-target tools define sites.
package align

import "github.com/cap-repro/crisprscan/internal/dna"

const inf = 1 << 14

// Edit reports whether spacer aligns to seg with at most maxSubs
// substitutions and at most maxGaps interior gaps, returning the
// minimal substitution count among qualifying alignments.
func Edit(spacer dna.Pattern, seg dna.Seq, maxSubs, maxGaps int) (subs int, ok bool) {
	m, L := len(spacer), len(seg)
	if m == 0 || L == 0 {
		return 0, m == 0 && L == 0
	}
	if d := L - m; d > maxGaps || -d > maxGaps {
		return 0, false
	}
	// dp[g][i][j]: minimal substitutions aligning spacer[:i] to seg[:j]
	// using exactly g gaps so far.
	dp := make([][][]int16, maxGaps+1)
	for g := range dp {
		dp[g] = make([][]int16, m+1)
		for i := range dp[g] {
			dp[g][i] = make([]int16, L+1)
			for j := range dp[g][i] {
				dp[g][i][j] = inf
			}
		}
	}
	dp[0][0][0] = 0
	for g := 0; g <= maxGaps; g++ {
		for i := 0; i <= m; i++ {
			for j := 0; j <= L; j++ {
				cur := dp[g][i][j]
				if cur >= inf {
					continue
				}
				// Consume both (match or substitution).
				if i < m && j < L {
					cost := int16(0)
					if !spacer[i].Has(seg[j]) {
						cost = 1
					}
					if cur+cost < dp[g][i+1][j+1] {
						dp[g][i+1][j+1] = cur + cost
					}
				}
				// Interior deletion of spacer[i] (RNA bulge): something
				// already consumed (i,j >= 1), last spacer base remains.
				if g < maxGaps && i >= 1 && j >= 1 && i <= m-2 {
					if cur < dp[g+1][i+1][j] {
						dp[g+1][i+1][j] = cur
					}
				}
				// Interior insertion of seg[j] (DNA bulge): a genome base
				// must remain for the final consumption.
				if g < maxGaps && i >= 1 && j >= 1 && j <= L-2 && i <= m-1 {
					if cur < dp[g+1][i][j+1] {
						dp[g+1][i][j+1] = cur
					}
				}
			}
		}
	}
	best := int16(inf)
	for g := 0; g <= maxGaps; g++ {
		if dp[g][m][L] < best {
			best = dp[g][m][L]
		}
	}
	if int(best) <= maxSubs {
		return int(best), true
	}
	return 0, false
}

// EditWithGaps is Edit but also returns the minimal gap count among
// alignments achieving a qualifying substitution count (gaps are
// minimized first, then substitutions — the convention the bulge site
// reports use).
func EditWithGaps(spacer dna.Pattern, seg dna.Seq, maxSubs, maxGaps int) (subs, gaps int, ok bool) {
	for g := 0; g <= maxGaps; g++ {
		if s, found := Edit(spacer, seg, maxSubs, g); found {
			return s, g, true
		}
	}
	return 0, 0, false
}

// Hamming counts mismatches between a pattern and an equal-length
// segment, stopping early once the budget is exceeded. Returns ok=false
// if lengths differ or the budget is exceeded.
func Hamming(spacer dna.Pattern, seg dna.Seq, maxSubs int) (subs int, ok bool) {
	if len(spacer) != len(seg) {
		return 0, false
	}
	n := 0
	for i, m := range spacer {
		if !m.Has(seg[i]) {
			n++
			if n > maxSubs {
				return 0, false
			}
		}
	}
	return n, true
}
