package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/cap-repro/crisprscan/internal/dna"
)

func pat(s string) dna.Pattern { return dna.MustParsePattern(s) }
func seq(s string) dna.Seq     { return dna.MustParseSeq(s) }

func TestEditExactMatch(t *testing.T) {
	subs, ok := Edit(pat("ACGTACGT"), seq("ACGTACGT"), 0, 0)
	if !ok || subs != 0 {
		t.Errorf("exact match: subs=%d ok=%v", subs, ok)
	}
}

func TestEditSubstitutions(t *testing.T) {
	subs, ok := Edit(pat("ACGTACGT"), seq("ACGTACGA"), 1, 0)
	if !ok || subs != 1 {
		t.Errorf("one substitution: subs=%d ok=%v", subs, ok)
	}
	if _, ok := Edit(pat("ACGTACGT"), seq("TCGTACGA"), 1, 0); ok {
		t.Error("two substitutions must exceed budget 1")
	}
}

func TestEditInteriorDeletion(t *testing.T) {
	// Delete spacer position 4 (interior).
	subs, ok := Edit(pat("ACGTACGT"), seq("ACGTCGT"), 0, 1)
	if !ok || subs != 0 {
		t.Errorf("interior deletion: subs=%d ok=%v", subs, ok)
	}
	if _, ok := Edit(pat("ACGTACGT"), seq("ACGTCGT"), 0, 0); ok {
		t.Error("deletion needs a gap budget")
	}
}

func TestEditInteriorInsertion(t *testing.T) {
	subs, ok := Edit(pat("ACGTACGT"), seq("ACGTTACGT"), 0, 1)
	if !ok || subs != 0 {
		t.Errorf("interior insertion: subs=%d ok=%v", subs, ok)
	}
}

func TestEditRejectsEdgeGaps(t *testing.T) {
	// Deleting the first or last spacer base is an edge gap: forbidden.
	if _, ok := Edit(pat("ACGTACGT"), seq("CGTACGT"), 0, 1); ok {
		t.Error("leading deletion must be rejected")
	}
	if _, ok := Edit(pat("ACGTACGT"), seq("ACGTACG"), 0, 1); ok {
		t.Error("trailing deletion must be rejected")
	}
	// Inserting before the first or after the last consumed base too.
	if _, ok := Edit(pat("ACGT"), seq("TACGT"), 0, 1); ok {
		t.Error("leading insertion must be rejected")
	}
	if _, ok := Edit(pat("ACGT"), seq("ACGTC"), 0, 1); ok {
		t.Error("trailing insertion must be rejected")
	}
	// "ACGTT" is alignable: the extra T sits interior (between the
	// consumed G and the final consumed T).
	if _, ok := Edit(pat("ACGT"), seq("ACGTT"), 0, 1); !ok {
		t.Error("interior insertion equal to the final base must align")
	}
}

func TestEditLengthBound(t *testing.T) {
	if _, ok := Edit(pat("ACGT"), seq("ACGTACGT"), 4, 1); ok {
		t.Error("length difference beyond the gap budget must fail fast")
	}
}

func TestEditDegeneratePositions(t *testing.T) {
	subs, ok := Edit(pat("NCGT"), seq("TCGT"), 0, 0)
	if !ok || subs != 0 {
		t.Errorf("N never mismatches: subs=%d ok=%v", subs, ok)
	}
}

func TestEditWithGapsPrefersFewerGaps(t *testing.T) {
	// Segment equals the spacer: feasible with 0 gaps even though 2
	// gaps could also explain it.
	subs, gaps, ok := EditWithGaps(pat("ACGTACGT"), seq("ACGTACGT"), 2, 2)
	if !ok || gaps != 0 || subs != 0 {
		t.Errorf("got subs=%d gaps=%d ok=%v", subs, gaps, ok)
	}
	// A deletion variant needs exactly one gap.
	_, gaps, ok = EditWithGaps(pat("ACGTACGT"), seq("ACGTCGT"), 0, 2)
	if !ok || gaps != 1 {
		t.Errorf("deletion variant: gaps=%d ok=%v", gaps, ok)
	}
}

func TestHamming(t *testing.T) {
	if n, ok := Hamming(pat("ACGT"), seq("ACGA"), 1); !ok || n != 1 {
		t.Errorf("n=%d ok=%v", n, ok)
	}
	if _, ok := Hamming(pat("ACGT"), seq("TCGA"), 1); ok {
		t.Error("budget exceeded must fail")
	}
	if _, ok := Hamming(pat("ACGT"), seq("ACG"), 4); ok {
		t.Error("length mismatch must fail")
	}
}

// TestEditZeroGapEqualsHamming: with maxGaps=0 the edit alignment is
// plain Hamming distance.
func TestEditZeroGapEqualsHamming(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	f := func(a, b uint64) bool {
		m := 4 + int(a%8)
		spacer := make(dna.Seq, m)
		segment := make(dna.Seq, m)
		for i := 0; i < m; i++ {
			spacer[i] = dna.Base((a >> (2 * uint(i))) & 3)
			segment[i] = dna.Base((b >> (2 * uint(i))) & 3)
		}
		p := dna.PatternFromSeq(spacer)
		eSubs, eOK := Edit(p, segment, m, 0)
		hSubs, hOK := Hamming(p, segment, m)
		return eOK == hOK && eSubs == hSubs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// TestEditMonotoneInBudgets: feasibility is monotone in both budgets.
func TestEditMonotoneInBudgets(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	for trial := 0; trial < 100; trial++ {
		m := 5 + rng.Intn(5)
		L := m - 1 + rng.Intn(3)
		spacer := make(dna.Seq, m)
		segment := make(dna.Seq, L)
		for i := range spacer {
			spacer[i] = dna.Base(rng.Intn(4))
		}
		for i := range segment {
			segment[i] = dna.Base(rng.Intn(4))
		}
		p := dna.PatternFromSeq(spacer)
		prev := false
		for k := 0; k <= m; k++ {
			_, ok := Edit(p, segment, k, 2)
			if prev && !ok {
				t.Fatalf("feasibility must be monotone in k (trial %d, k=%d)", trial, k)
			}
			prev = prev || ok
		}
		prev = false
		for b := 0; b <= 3; b++ {
			_, ok := Edit(p, segment, 2, b)
			if prev && !ok {
				t.Fatalf("feasibility must be monotone in gaps (trial %d, b=%d)", trial, b)
			}
			prev = prev || ok
		}
	}
}
