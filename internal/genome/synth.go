package genome

import (
	"fmt"
	"math/rand"

	"github.com/cap-repro/crisprscan/internal/dna"
)

// SynthConfig controls synthetic genome generation. The defaults are
// chosen to resemble mammalian reference sequence at small scale:
// ~41% GC, occasional N runs (assembly gaps), and a configurable amount
// of duplicated segments (repeats) so that guide patterns hit more than
// once, as they do in real genomes.
type SynthConfig struct {
	Seed       int64   // RNG seed; same seed => identical genome
	NumChroms  int     // number of chromosomes (default 1)
	ChromLen   int     // length of each chromosome in bp
	GC         float64 // GC fraction (default 0.41)
	NRunRate   float64 // expected N runs per Mbp (default 0 for benchmarks)
	NRunLen    int     // mean N run length (default 100)
	RepeatRate float64 // fraction of sequence covered by copied segments (default 0.05)
	RepeatLen  int     // repeat segment length (default 300)
}

func (c *SynthConfig) defaults() {
	if c.NumChroms <= 0 {
		c.NumChroms = 1
	}
	if c.GC <= 0 || c.GC >= 1 {
		c.GC = 0.41
	}
	if c.NRunLen <= 0 {
		c.NRunLen = 100
	}
	if c.RepeatLen <= 0 {
		c.RepeatLen = 300
	}
	if c.RepeatRate < 0 {
		c.RepeatRate = 0
	}
}

// Synthesize generates a deterministic random genome from cfg.
func Synthesize(cfg SynthConfig) *Genome {
	cfg.defaults()
	if cfg.ChromLen <= 0 {
		panic("genome: SynthConfig.ChromLen must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	chroms := make([]Chromosome, cfg.NumChroms)
	for ci := range chroms {
		seq := make(dna.Seq, cfg.ChromLen)
		for i := range seq {
			seq[i] = drawBase(rng, cfg.GC)
		}
		plantRepeats(rng, seq, cfg)
		plantNRuns(rng, seq, cfg)
		chroms[ci] = Chromosome{Name: fmt.Sprintf("chr%d", ci+1), Seq: seq}
	}
	return New(chroms...)
}

func drawBase(rng *rand.Rand, gc float64) dna.Base {
	if rng.Float64() < gc {
		if rng.Intn(2) == 0 {
			return dna.G
		}
		return dna.C
	}
	if rng.Intn(2) == 0 {
		return dna.A
	}
	return dna.T
}

// plantRepeats copies random segments elsewhere in the chromosome until
// roughly RepeatRate of the sequence has been overwritten by copies.
func plantRepeats(rng *rand.Rand, seq dna.Seq, cfg SynthConfig) {
	if cfg.RepeatRate <= 0 || len(seq) < 2*cfg.RepeatLen {
		return
	}
	target := int(float64(len(seq)) * cfg.RepeatRate)
	for covered := 0; covered < target; covered += cfg.RepeatLen {
		src := rng.Intn(len(seq) - cfg.RepeatLen)
		dst := rng.Intn(len(seq) - cfg.RepeatLen)
		segment := seq[src : src+cfg.RepeatLen].Clone()
		if rng.Intn(2) == 0 {
			segment = segment.ReverseComplement()
		}
		// Degrade the copy slightly (ancient repeats diverge).
		for i := range segment {
			if rng.Float64() < 0.02 {
				segment[i] = dna.Base(rng.Intn(4))
			}
		}
		copy(seq[dst:], segment)
	}
}

func plantNRuns(rng *rand.Rand, seq dna.Seq, cfg SynthConfig) {
	if cfg.NRunRate <= 0 {
		return
	}
	runs := int(cfg.NRunRate * float64(len(seq)) / 1e6)
	for r := 0; r < runs; r++ {
		length := 1 + rng.Intn(2*cfg.NRunLen)
		if length >= len(seq) {
			continue
		}
		start := rng.Intn(len(seq) - length)
		for i := start; i < start+length; i++ {
			seq[i] = dna.BadBase
		}
	}
}

// SampleGuides extracts realistic guides from the genome: random genomic
// 20-mers that sit immediately 5' of a PAM occurrence, the way real gRNAs
// are designed against on-target sites. Guides never contain ambiguous
// bases. Returns fewer than n guides only if the genome has too few PAM
// sites, which for NGG effectively never happens.
func SampleGuides(g *Genome, n, spacerLen int, pam dna.Pattern, seed int64) []dna.Seq {
	rng := rand.New(rand.NewSource(seed))
	var guides []dna.Seq
	attempts := 0
	maxAttempts := 200 * n
	for len(guides) < n && attempts < maxAttempts {
		attempts++
		c := &g.Chroms[rng.Intn(len(g.Chroms))]
		siteLen := spacerLen + len(pam)
		if len(c.Seq) < siteLen {
			continue
		}
		pos := rng.Intn(len(c.Seq) - siteLen)
		window := c.Seq[pos : pos+siteLen]
		if !pam.Matches(window[spacerLen:]) {
			continue
		}
		if hasBad(window[:spacerLen]) {
			continue
		}
		guides = append(guides, window[:spacerLen].Clone())
	}
	return guides
}

// RandomGuides generates n uniform random concrete spacers, for workloads
// where guides need not have an on-target site.
func RandomGuides(n, spacerLen int, seed int64) []dna.Seq {
	rng := rand.New(rand.NewSource(seed))
	out := make([]dna.Seq, n)
	for i := range out {
		s := make(dna.Seq, spacerLen)
		for j := range s {
			s[j] = dna.Base(rng.Intn(4))
		}
		out[i] = s
	}
	return out
}

func hasBad(s dna.Seq) bool {
	for _, b := range s {
		if b == dna.BadBase {
			return true
		}
	}
	return false
}
