// Package genome provides the reference-sequence container used by every
// scan engine, plus a seeded synthetic-genome generator with off-target
// site planting. The paper evaluated against the human reference genome;
// we do not ship 3.1 Gbp of hg38, so experiments run on synthetic genomes
// whose size, GC content and ambiguity rate are configurable, and whose
// planted sites give exact ground truth for correctness checks (see
// DESIGN.md, substitution table).
package genome

import (
	"fmt"
	"strings"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/fasta"
)

// Chromosome is one reference sequence with its packed representation.
type Chromosome struct {
	Name   string
	Seq    dna.Seq
	Packed *dna.Packed
}

// Genome is an ordered set of chromosomes.
type Genome struct {
	Chroms []Chromosome
	total  int
}

// New builds a Genome from named sequences. The packed form is computed
// eagerly; engines rely on it being present.
func New(chroms ...Chromosome) *Genome {
	g := &Genome{Chroms: chroms}
	for i := range g.Chroms {
		if g.Chroms[i].Packed == nil {
			g.Chroms[i].Packed = dna.Pack(g.Chroms[i].Seq)
		}
		g.total += len(g.Chroms[i].Seq)
	}
	return g
}

// FromFasta converts parsed FASTA records into a Genome.
func FromFasta(recs []*fasta.Record) (*Genome, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("genome: no FASTA records")
	}
	seen := make(map[string]bool, len(recs))
	chroms := make([]Chromosome, 0, len(recs))
	for _, rec := range recs {
		if seen[rec.ID] {
			return nil, fmt.Errorf("genome: duplicate chromosome name %q", rec.ID)
		}
		seen[rec.ID] = true
		seq, _ := dna.ParseSeq(string(rec.Seq))
		chroms = append(chroms, Chromosome{Name: rec.ID, Seq: seq})
	}
	return New(chroms...), nil
}

// LoadFasta reads a FASTA file into a Genome.
func LoadFasta(path string) (*Genome, error) {
	recs, err := fasta.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromFasta(recs)
}

// ToFasta renders the genome as FASTA records.
func (g *Genome) ToFasta() []*fasta.Record {
	recs := make([]*fasta.Record, len(g.Chroms))
	for i, c := range g.Chroms {
		recs[i] = &fasta.Record{ID: c.Name, Seq: []byte(c.Seq.String())}
	}
	return recs
}

// TotalLen returns the summed chromosome length in bases.
func (g *Genome) TotalLen() int { return g.total }

// Chrom returns the chromosome with the given name, or nil.
func (g *Genome) Chrom(name string) *Chromosome {
	for i := range g.Chroms {
		if g.Chroms[i].Name == name {
			return &g.Chroms[i]
		}
	}
	return nil
}

// Window returns the bases of chromosome chrom in [pos, pos+n), or an
// error if out of range.
func (g *Genome) Window(chrom string, pos, n int) (dna.Seq, error) {
	c := g.Chrom(chrom)
	if c == nil {
		return nil, fmt.Errorf("genome: no chromosome %q", chrom)
	}
	if pos < 0 || pos+n > len(c.Seq) {
		return nil, fmt.Errorf("genome: window [%d,%d) out of range for %s (len %d)", pos, pos+n, chrom, len(c.Seq))
	}
	return c.Seq[pos : pos+n], nil
}

// String summarizes the genome for logs.
func (g *Genome) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "genome{%d chroms, %d bp", len(g.Chroms), g.total)
	for i, c := range g.Chroms {
		if i < 4 {
			fmt.Fprintf(&sb, "; %s=%d", c.Name, len(c.Seq))
		}
	}
	if len(g.Chroms) > 4 {
		sb.WriteString("; ...")
	}
	sb.WriteString("}")
	return sb.String()
}
