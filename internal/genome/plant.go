package genome

import (
	"fmt"
	"math/rand"

	"github.com/cap-repro/crisprscan/internal/dna"
)

// PlantedSite is ground truth for one deliberately written off-target
// site. Pos is the 0-based start of the full plus-strand window of
// length spacerLen+pamLen: for Strand '+', the window reads
// spacer+PAM; for Strand '-', it reads the reverse complement of
// spacer+PAM (so the PAM appears at the left edge as its complement).
// This is the same coordinate convention every engine reports in.
type PlantedSite struct {
	Guide      int
	Chrom      string
	Pos        int
	Strand     byte // '+' or '-'
	Mismatches int
}

// PlantPlan requests how many sites to plant per guide at each mismatch
// distance. Plan[d] = sites per guide at exactly d spacer mismatches.
type PlantPlan map[int]int

// Plant writes off-target sites for each guide into g according to plan,
// alternating strands, and returns the ground truth. Sites never overlap
// each other. The PAM written is a uniformly drawn concrete member of
// pam. Plant mutates g's sequences and repacks the affected chromosomes.
func Plant(g *Genome, guides []dna.Seq, pam dna.Pattern, plan PlantPlan, seed int64) ([]PlantedSite, error) {
	rng := rand.New(rand.NewSource(seed))
	used := make(map[string][]span, len(g.Chroms))
	var sites []PlantedSite
	for gi, guide := range guides {
		siteLen := len(guide) + len(pam)
		for d := 0; d <= len(guide); d++ {
			for rep := 0; rep < plan[d]; rep++ {
				chrom, pos, ok := reserve(rng, g, used, siteLen)
				if !ok {
					return nil, fmt.Errorf("genome: could not place site (guide %d, d=%d): genome too small or too full", gi, d)
				}
				strand := byte('+')
				if rng.Intn(2) == 1 {
					strand = '-'
				}
				window := buildSite(rng, guide, pam, d, strand)
				copy(g.Chroms[chromIndex(g, chrom)].Seq[pos:], window)
				sites = append(sites, PlantedSite{Guide: gi, Chrom: chrom, Pos: pos, Strand: strand, Mismatches: d})
			}
		}
	}
	// Repack chromosomes whose sequence changed.
	for name := range used {
		c := &g.Chroms[chromIndex(g, name)]
		c.Packed = dna.Pack(c.Seq)
	}
	return sites, nil
}

type span struct{ start, end int }

func overlaps(spans []span, s span) bool {
	for _, o := range spans {
		if s.start < o.end && o.start < s.end {
			return true
		}
	}
	return false
}

// reserve picks a non-overlapping location padded by one site length on
// each side, so a planted site cannot perturb the mismatch count of a
// neighbor.
func reserve(rng *rand.Rand, g *Genome, used map[string][]span, siteLen int) (string, int, bool) {
	for attempt := 0; attempt < 2000; attempt++ {
		c := &g.Chroms[rng.Intn(len(g.Chroms))]
		if len(c.Seq) < 3*siteLen {
			continue
		}
		pos := siteLen + rng.Intn(len(c.Seq)-3*siteLen)
		s := span{pos - siteLen, pos + 2*siteLen}
		if overlaps(used[c.Name], s) {
			continue
		}
		used[c.Name] = append(used[c.Name], s)
		return c.Name, pos, true
	}
	return "", 0, false
}

func chromIndex(g *Genome, name string) int {
	for i := range g.Chroms {
		if g.Chroms[i].Name == name {
			return i
		}
	}
	panic("genome: unknown chromosome " + name)
}

// buildSite constructs the plus-strand window for a site at exactly d
// spacer mismatches with a concrete PAM.
func buildSite(rng *rand.Rand, guide dna.Seq, pam dna.Pattern, d int, strand byte) dna.Seq {
	spacer := mutate(rng, guide, d)
	window := make(dna.Seq, 0, len(spacer)+len(pam))
	window = append(window, spacer...)
	window = append(window, concretePAM(rng, pam)...)
	if strand == '-' {
		window = window.ReverseComplement()
	}
	return window
}

// mutate returns a copy of s with exactly d positions changed to a
// different concrete base.
func mutate(rng *rand.Rand, s dna.Seq, d int) dna.Seq {
	if d > len(s) {
		panic("genome: more mismatches than positions")
	}
	out := s.Clone()
	perm := rng.Perm(len(s))[:d]
	for _, i := range perm {
		// Draw one of the three other bases.
		nb := dna.Base(rng.Intn(3))
		if nb >= out[i] {
			nb++
		}
		out[i] = nb
	}
	return out
}

// concretePAM draws a uniformly random concrete member of pam.
func concretePAM(rng *rand.Rand, pam dna.Pattern) dna.Seq {
	out := make(dna.Seq, len(pam))
	for i, m := range pam {
		choices := make([]dna.Base, 0, 4)
		for b := dna.A; b <= dna.T; b++ {
			if m.Has(b) {
				choices = append(choices, b)
			}
		}
		if len(choices) == 0 {
			panic("genome: empty PAM position")
		}
		out[i] = choices[rng.Intn(len(choices))]
	}
	return out
}
