package genome

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/fasta"
)

func TestFromFasta(t *testing.T) {
	recs := []*fasta.Record{
		{ID: "chr1", Seq: []byte("ACGTN")},
		{ID: "chr2", Seq: []byte("gg")},
	}
	g, err := FromFasta(recs)
	if err != nil {
		t.Fatal(err)
	}
	if g.TotalLen() != 7 {
		t.Errorf("TotalLen = %d, want 7", g.TotalLen())
	}
	if g.Chrom("chr1") == nil || g.Chrom("chr3") != nil {
		t.Error("Chrom lookup wrong")
	}
	if g.Chroms[0].Seq[4] != dna.BadBase {
		t.Error("N must parse to BadBase")
	}
	if g.Chroms[1].Seq.String() != "GG" {
		t.Error("lower case must normalize")
	}
	if g.Chroms[0].Packed == nil {
		t.Error("packed form must be computed")
	}
}

func TestFromFastaErrors(t *testing.T) {
	if _, err := FromFasta(nil); err == nil {
		t.Error("empty record set must error")
	}
	dup := []*fasta.Record{{ID: "a", Seq: []byte("A")}, {ID: "a", Seq: []byte("C")}}
	if _, err := FromFasta(dup); err == nil {
		t.Error("duplicate chromosome must error")
	}
}

func TestWindow(t *testing.T) {
	g := New(Chromosome{Name: "c", Seq: dna.MustParseSeq("ACGTACGT")})
	w, err := g.Window("c", 2, 4)
	if err != nil || w.String() != "GTAC" {
		t.Errorf("Window = %v, %v", w, err)
	}
	if _, err := g.Window("c", 6, 4); err == nil {
		t.Error("out-of-range window must error")
	}
	if _, err := g.Window("x", 0, 1); err == nil {
		t.Error("unknown chromosome must error")
	}
}

func TestSynthesizeDeterminism(t *testing.T) {
	cfg := SynthConfig{Seed: 42, ChromLen: 5000, NumChroms: 2}
	a := Synthesize(cfg)
	b := Synthesize(cfg)
	if a.TotalLen() != 10000 {
		t.Fatalf("TotalLen = %d", a.TotalLen())
	}
	for i := range a.Chroms {
		if a.Chroms[i].Seq.String() != b.Chroms[i].Seq.String() {
			t.Fatal("same seed must produce identical genomes")
		}
	}
	c := Synthesize(SynthConfig{Seed: 43, ChromLen: 5000, NumChroms: 2})
	if a.Chroms[0].Seq.String() == c.Chroms[0].Seq.String() {
		t.Error("different seeds should differ")
	}
}

func TestSynthesizeGC(t *testing.T) {
	g := Synthesize(SynthConfig{Seed: 1, ChromLen: 200000, GC: 0.6, RepeatRate: 0})
	gcCount := 0
	for _, b := range g.Chroms[0].Seq {
		if b == dna.G || b == dna.C {
			gcCount++
		}
	}
	frac := float64(gcCount) / float64(g.TotalLen())
	if frac < 0.58 || frac > 0.62 {
		t.Errorf("GC fraction = %.3f, want ~0.60", frac)
	}
}

func TestSynthesizeNRuns(t *testing.T) {
	g := Synthesize(SynthConfig{Seed: 1, ChromLen: 1000000, NRunRate: 20, RepeatRate: 0})
	n := 0
	for _, b := range g.Chroms[0].Seq {
		if b == dna.BadBase {
			n++
		}
	}
	if n == 0 {
		t.Error("expected some N bases")
	}
}

func TestSampleGuides(t *testing.T) {
	g := Synthesize(SynthConfig{Seed: 5, ChromLen: 100000})
	pam := dna.MustParsePattern("NGG")
	guides := SampleGuides(g, 25, 20, pam, 9)
	if len(guides) != 25 {
		t.Fatalf("got %d guides, want 25", len(guides))
	}
	// Each guide must actually occur in the genome followed by a PAM.
	for i, guide := range guides {
		if len(guide) != 20 {
			t.Fatalf("guide %d has length %d", i, len(guide))
		}
		found := false
		gs := guide.String()
		for _, c := range g.Chroms {
			text := c.Seq.String()
			for off := 0; ; {
				j := strings.Index(text[off:], gs)
				if j < 0 {
					break
				}
				pos := off + j
				if pos+23 <= len(text) && pam.Matches(c.Seq[pos+20:pos+23]) {
					found = true
					break
				}
				off = pos + 1
			}
			if found {
				break
			}
		}
		if !found {
			t.Errorf("guide %d (%s) has no on-target site", i, gs)
		}
	}
}

func TestRandomGuides(t *testing.T) {
	a := RandomGuides(10, 20, 3)
	b := RandomGuides(10, 20, 3)
	if len(a) != 10 || len(a[0]) != 20 {
		t.Fatal("shape wrong")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Error("same seed must give same guides")
		}
	}
}

func TestPlantGroundTruth(t *testing.T) {
	g := Synthesize(SynthConfig{Seed: 11, ChromLen: 200000, NumChroms: 2})
	guides := RandomGuides(5, 20, 12)
	pam := dna.MustParsePattern("NGG")
	plan := PlantPlan{0: 2, 1: 2, 3: 2}
	sites, err := Plant(g, guides, pam, plan, 77)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 5*6 {
		t.Fatalf("got %d sites, want 30", len(sites))
	}
	for _, s := range sites {
		window, err := g.Window(s.Chrom, s.Pos, 23)
		if err != nil {
			t.Fatal(err)
		}
		if s.Strand == '-' {
			window = window.ReverseComplement()
		}
		spacer, pamSeq := window[:20], window[20:]
		if !pam.Matches(pamSeq) {
			t.Errorf("site %+v: PAM %s invalid", s, pamSeq)
		}
		got := dna.PatternFromSeq(guides[s.Guide]).Mismatches(spacer)
		if got != s.Mismatches {
			t.Errorf("site %+v: measured %d mismatches", s, got)
		}
	}
	// Packed form must reflect the mutations.
	for _, c := range g.Chroms {
		for i := 0; i < len(c.Seq); i += 997 {
			if c.Packed.Base(i) != c.Seq[i] {
				t.Fatal("packed form stale after Plant")
			}
		}
	}
}

func TestPlantTooSmallFails(t *testing.T) {
	g := Synthesize(SynthConfig{Seed: 1, ChromLen: 60})
	guides := RandomGuides(3, 20, 1)
	_, err := Plant(g, guides, dna.MustParsePattern("NGG"), PlantPlan{0: 5}, 1)
	if err == nil {
		t.Error("planting into a tiny genome must fail, not loop")
	}
}

func TestGenomeString(t *testing.T) {
	g := Synthesize(SynthConfig{Seed: 1, ChromLen: 100, NumChroms: 6})
	s := g.String()
	if !strings.Contains(s, "6 chroms") || !strings.Contains(s, "600 bp") {
		t.Errorf("String = %s", s)
	}
	if !strings.Contains(s, "...") {
		t.Errorf("many chromosomes should elide: %s", s)
	}
}

func TestLoadFastaRoundTrip(t *testing.T) {
	g := Synthesize(SynthConfig{Seed: 2, ChromLen: 500, NumChroms: 2, NRunRate: 1000})
	dir := t.TempDir()
	path := filepath.Join(dir, "g.fa")
	if err := fasta.WriteFile(path, g.ToFasta()); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFasta(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalLen() != g.TotalLen() {
		t.Fatalf("round trip length %d != %d", back.TotalLen(), g.TotalLen())
	}
	for i := range g.Chroms {
		if back.Chroms[i].Seq.String() != g.Chroms[i].Seq.String() {
			t.Fatalf("chromosome %d differs after round trip", i)
		}
	}
	if _, err := LoadFasta(filepath.Join(dir, "missing.fa")); err == nil {
		t.Error("missing file must error")
	}
}

func TestSynthesizePanicsOnZeroLen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ChromLen 0 must panic")
		}
	}()
	Synthesize(SynthConfig{Seed: 1})
}

func TestRepeatsIncreaseSelfSimilarity(t *testing.T) {
	// A repeat-heavy genome must contain more duplicated 20-mers than a
	// repeat-free one.
	count20merDups := func(g *Genome) int {
		seen := map[uint64]bool{}
		dups := 0
		c := g.Chroms[0]
		for p := 0; p+20 <= len(c.Seq); p += 20 {
			k, ok := c.Packed.Kmer(p, 20)
			if !ok {
				continue
			}
			if seen[k] {
				dups++
			}
			seen[k] = true
		}
		return dups
	}
	plain := Synthesize(SynthConfig{Seed: 3, ChromLen: 400_000, RepeatRate: 0})
	repeaty := Synthesize(SynthConfig{Seed: 3, ChromLen: 400_000, RepeatRate: 0.4, RepeatLen: 1000})
	if count20merDups(repeaty) <= count20merDups(plain) {
		t.Errorf("repeats should add duplicate 20-mers: %d vs %d", count20merDups(repeaty), count20merDups(plain))
	}
}
