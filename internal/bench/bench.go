// Package bench is the experiment harness: it generates the paper-shaped
// workloads, measures the CPU engines, evaluates the accelerator models,
// and renders the E1..E14 table/figure series that EXPERIMENTS.md
// documents. cmd/benchtab and the repository-level Go benchmarks drive
// it.
package bench

import (
	"fmt"
	"io"
	"strings"

	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/core"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/hscan"
	"github.com/cap-repro/crisprscan/internal/metrics"
)

// Scale bundles the workload sizes of one run profile. The paper ran
// hg19 (3.1 Gbp); laptop-scale profiles shrink the genome while keeping
// every other dimension (guides, mismatches, PAM) at paper values, which
// preserves all per-base and per-guide ratios.
type Scale struct {
	Name      string
	GenomeLen int   // bases for E2/E3/E4/E6..E10
	GenomeSet []int // genome sweep for E5
	GuideSet  []int // guide sweep for E3
	Guides    int   // default guide count
	KSet      []int // mismatch sweep
	K         int   // default mismatch budget
}

// Scales are the selectable profiles.
var Scales = map[string]Scale{
	"test": {
		Name: "test", GenomeLen: 300_000,
		GenomeSet: []int{100_000, 300_000, 1_000_000},
		GuideSet:  []int{2, 10, 50}, Guides: 10,
		KSet: []int{1, 2, 3, 4, 5}, K: 3,
	},
	"default": {
		Name: "default", GenomeLen: 10_000_000,
		GenomeSet: []int{1_000_000, 10_000_000, 30_000_000},
		GuideSet:  []int{10, 100, 1000}, Guides: 100,
		KSet: []int{1, 2, 3, 4, 5}, K: 3,
	},
	"large": {
		Name: "large", GenomeLen: 100_000_000,
		GenomeSet: []int{10_000_000, 100_000_000, 300_000_000},
		GuideSet:  []int{10, 100, 1000}, Guides: 100,
		KSet: []int{1, 2, 3, 4, 5, 6}, K: 3,
	},
}

// SpacerLen and the PAM are fixed at Cas9 values throughout.
const SpacerLen = 20

// PAMString is the canonical Cas9 PAM.
const PAMString = "NGG"

// Workload is one experiment configuration: a synthetic genome and a
// guide set sampled from it (so each guide has an on-target site, as in
// real usage).
type Workload struct {
	Genome *genome.Genome
	Guides []dna.Pattern
	PAM    dna.Pattern
	K      int
	Seed   int64
}

// NewWorkload builds a deterministic workload.
func NewWorkload(genomeLen, numGuides, k int, seed int64) *Workload {
	g := genome.Synthesize(genome.SynthConfig{Seed: seed, ChromLen: genomeLen})
	pam := dna.MustParsePattern(PAMString)
	raw := genome.SampleGuides(g, numGuides, SpacerLen, pam, seed+1)
	if len(raw) < numGuides {
		// Tiny genomes may lack enough PAM sites; fall back to random
		// guides for the remainder.
		raw = append(raw, genome.RandomGuides(numGuides-len(raw), SpacerLen, seed+2)...)
	}
	guides := make([]dna.Pattern, len(raw))
	for i, r := range raw {
		guides[i] = dna.PatternFromSeq(r)
	}
	return &Workload{Genome: g, Guides: guides, PAM: pam, K: k, Seed: seed}
}

// Specs expands the workload into both-strand engine specs.
func (w *Workload) Specs() []arch.PatternSpec {
	return core.BuildSpecs(w.Guides, w.PAM, w.K, false)
}

// MeasureEngine wall-clocks one functional scan and returns seconds and
// the raw event count. Timing goes through the metrics package's
// monotonic clock, the module's single clock authority.
func MeasureEngine(w *Workload, e arch.Engine) (seconds float64, events int, err error) {
	seconds, err = metrics.MeasureSeconds(func() error {
		for ci := range w.Genome.Chroms {
			c := &w.Genome.Chroms[ci]
			if serr := e.ScanChrom(c, func(automata.Report) { events++ }); serr != nil {
				return serr
			}
		}
		return nil
	})
	if err != nil {
		return 0, 0, err
	}
	return seconds, events, nil
}

// CountEvents runs the fastest measured engine (parallel bitap) to
// obtain the event count the accelerator models need, without charging
// its time to anyone.
func CountEvents(w *Workload) (int, error) {
	e, err := hscan.New(w.Specs(), hscan.ModePrefilter)
	if err != nil {
		return 0, err
	}
	e.Parallelism = 8
	events := 0
	for ci := range w.Genome.Chroms {
		c := &w.Genome.Chroms[ci]
		if err := e.ScanChrom(c, func(automata.Report) { events++ }); err != nil {
			return 0, err
		}
	}
	return events, nil
}

// Table is one rendered experiment.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV (header + rows).
func (t *Table) RenderCSV(w io.Writer) error {
	rows := append([][]string{t.Header}, t.Rows...)
	for _, row := range rows {
		for i, c := range row {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F renders a float compactly.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case v < 10:
		return fmt.Sprintf("%.3f", v)
	case v < 1000:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// I renders an int.
func I(v int) string { return fmt.Sprintf("%d", v) }

// X renders a speedup factor.
func X(v float64) string { return fmt.Sprintf("%.1fx", v) }
