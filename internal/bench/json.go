package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"github.com/cap-repro/crisprscan/internal/core"
	"github.com/cap-repro/crisprscan/internal/metrics"
	"github.com/cap-repro/crisprscan/internal/seedindex"
)

// BenchSchema identifies the machine-readable benchmark report format.
// Bump the suffix when a field changes meaning or shape; /2 added the
// chunk-latency histogram (with explicit non-zero log2 buckets) to
// every entry.
const BenchSchema = "crisprscan-bench/2"

// BenchEntry is one cell of the benchmark matrix: one engine run on one
// pinned workload, with throughput, the per-phase breakdown from the
// metrics snapshot, and allocation deltas.
type BenchEntry struct {
	// Engine is the core.EngineKind that ran.
	Engine string `json:"engine"`
	// GenomeLen / Guides / K pin the workload dimensions.
	GenomeLen int `json:"genome_len"`
	Guides    int `json:"guides"`
	K         int `json:"k"`
	// Seconds is the scan wall-clock (Stats.ElapsedSec).
	Seconds float64 `json:"seconds"`
	// MBPerSec is BytesScanned / Seconds in MB/s — the paper's
	// throughput metric.
	MBPerSec float64 `json:"mb_per_sec"`
	// Events / Sites are the raw and deduplicated result counts; they
	// double as a correctness fingerprint across trajectory points.
	Events int `json:"events"`
	Sites  int `json:"sites"`
	// Phases is the per-phase wall-clock breakdown.
	Phases metrics.PhaseSeconds `json:"phases_sec"`
	// Counters holds the scan's event counters.
	Counters metrics.CounterTotals `json:"counters"`
	// ChunkLatency is the per-chunk latency distribution, including the
	// non-zero log2 buckets (zero Count for unchunked engines).
	ChunkLatency metrics.HistogramSnapshot `json:"chunk_latency"`
	// ModeledSec carries the accelerator models' analytic device-time
	// steps; empty for measured engines.
	ModeledSec map[string]float64 `json:"modeled_sec,omitempty"`
	// AllocBytes / AllocObjects are heap-allocation deltas across the
	// run (runtime.MemStats TotalAlloc / Mallocs).
	AllocBytes   int64 `json:"alloc_bytes"`
	AllocObjects int64 `json:"alloc_objects"`
}

// Key identifies the matrix cell independently of measured values, so
// two reports can be joined for comparison.
func (e *BenchEntry) Key() string {
	return fmt.Sprintf("%s/n%d/g%d/k%d", e.Engine, e.GenomeLen, e.Guides, e.K)
}

// BenchReport is the whole benchmark trajectory document (BENCH_*.json).
type BenchReport struct {
	Schema    string `json:"schema"`
	Scale     string `json:"scale"`
	Seed      int64  `json:"seed"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// GeneratedAt is an RFC3339 UTC timestamp (informational only; the
	// compare logic never reads it).
	GeneratedAt string       `json:"generated_at"`
	Entries     []BenchEntry `json:"entries"`
}

// MatrixCase is one planned cell of the workload matrix.
type MatrixCase struct {
	Engine    core.EngineKind
	GenomeLen int
	Guides    int
	K         int
	// Prebuilt runs the seed-index engine against an index built before
	// the timer starts — the deployed shape, where indexing is paid once
	// offline and queries are the recurring cost. The cell's key gets a
	// "-prebuilt" suffix so it never collides with the self-indexing row.
	Prebuilt bool
}

// Label is the engine name as reported: prebuilt cells carry a suffix
// so they key separately from the self-indexing run of the same engine.
func (mc MatrixCase) Label() string {
	if mc.Prebuilt {
		return string(mc.Engine) + "-prebuilt"
	}
	return string(mc.Engine)
}

// Matrix expands a scale profile into the pinned benchmark matrix:
// every engine at the profile's default dimensions, plus k, guide-count
// and genome-size sweeps on the flagship hyperscan engine.
func Matrix(s Scale) []MatrixCase {
	var cases []MatrixCase
	for _, e := range core.AllEngines {
		cases = append(cases, MatrixCase{Engine: e, GenomeLen: s.GenomeLen, Guides: s.Guides, K: s.K})
	}
	sweep := core.EngineHyperscan
	for _, k := range s.KSet {
		if k != s.K {
			cases = append(cases, MatrixCase{Engine: sweep, GenomeLen: s.GenomeLen, Guides: s.Guides, K: k})
		}
	}
	for _, n := range s.GuideSet {
		if n != s.Guides {
			cases = append(cases, MatrixCase{Engine: sweep, GenomeLen: s.GenomeLen, Guides: n, K: s.K})
		}
	}
	for _, gl := range s.GenomeSet {
		if gl != s.GenomeLen {
			cases = append(cases, MatrixCase{Engine: sweep, GenomeLen: gl, Guides: s.Guides, K: s.K})
		}
	}
	// The prebuilt seed-index cell: the smallest guide set at default
	// genome and k — the query-dominated workload a persistent index is
	// built for. The matching hyperscan cell (same dimensions) comes from
	// the guide-count sweep above, so reports carry the speedup pair.
	cases = append(cases, MatrixCase{Engine: core.EngineSeedIndex, GenomeLen: s.GenomeLen, Guides: s.GuideSet[0], K: s.K, Prebuilt: true})
	return cases
}

// RunCase executes one matrix cell end to end through the orchestrator
// (so the per-phase breakdown comes from the same instrumentation every
// production search carries) and returns its entry.
func RunCase(mc MatrixCase, seed int64) (BenchEntry, error) {
	w := NewWorkload(mc.GenomeLen, mc.Guides, mc.K, seed)
	rec := metrics.NewRecorder()
	p := core.Params{
		MaxMismatches: mc.K,
		PAM:           PAMString,
		Engine:        mc.Engine,
		Metrics:       rec,
	}
	if mc.Prebuilt {
		// Index construction happens before the measured search, exactly
		// as deployment pays it: once, offline, via genomeindex build.
		ix, err := seedindex.Build(w.Genome, 0)
		if err != nil {
			return BenchEntry{}, fmt.Errorf("bench: building seed index n=%d: %w", mc.GenomeLen, err)
		}
		p.Engine = core.EngineSeedIndex
		p.SeedIndex = ix
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := core.Search(w.Genome, w.Guides, p)
	if err != nil {
		return BenchEntry{}, fmt.Errorf("bench: %s n=%d g=%d k=%d: %w",
			mc.Engine, mc.GenomeLen, mc.Guides, mc.K, err)
	}
	runtime.ReadMemStats(&after)
	snap := res.Stats.Metrics
	entry := BenchEntry{
		Engine:       mc.Label(),
		GenomeLen:    mc.GenomeLen,
		Guides:       mc.Guides,
		K:            mc.K,
		Seconds:      res.Stats.ElapsedSec,
		Events:       res.Stats.Events,
		Sites:        len(res.Sites),
		Phases:       snap.Phases,
		Counters:     snap.Counters,
		ChunkLatency: snap.ChunkLatency,
		ModeledSec:   snap.ModeledSec,
		AllocBytes:   int64(after.TotalAlloc - before.TotalAlloc),
		AllocObjects: int64(after.Mallocs - before.Mallocs),
	}
	if res.Stats.ElapsedSec > 0 {
		entry.MBPerSec = float64(res.Stats.BytesScanned) / 1e6 / res.Stats.ElapsedSec
	}
	return entry, nil
}

// RunMatrix executes the whole matrix for a scale and assembles the
// report. progress, when non-nil, is called before each cell runs.
func RunMatrix(s Scale, seed int64, progress func(i, n int, mc MatrixCase)) (*BenchReport, error) {
	cases := Matrix(s)
	rep := &BenchReport{
		Schema:      BenchSchema,
		Scale:       s.Name,
		Seed:        seed,
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		GeneratedAt: metrics.Wall().UTC().Format(time.RFC3339),
	}
	for i, mc := range cases {
		if progress != nil {
			progress(i, len(cases), mc)
		}
		entry, err := RunCase(mc, seed)
		if err != nil {
			return nil, err
		}
		rep.Entries = append(rep.Entries, entry)
	}
	return rep, nil
}

// WriteJSON writes the report as stable, indented JSON.
func (r *BenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadBenchReport parses a report and validates its schema tag.
func ReadBenchReport(rd io.Reader) (*BenchReport, error) {
	var rep BenchReport
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("bench: parsing report: %w", err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("bench: unsupported report schema %q (want %q)", rep.Schema, BenchSchema)
	}
	return &rep, nil
}

// Regression is one matrix cell whose runtime grew beyond the allowed
// threshold relative to the baseline report.
type Regression struct {
	Key    string  `json:"key"`
	OldSec float64 `json:"old_sec"`
	NewSec float64 `json:"new_sec"`
	// Ratio is NewSec/OldSec; 1.15 means 15% slower.
	Ratio float64 `json:"ratio"`
}

// CompareOptions tunes Compare.
type CompareOptions struct {
	// Threshold is the allowed fractional slowdown: 0.15 flags cells
	// more than 15% slower than baseline. Zero means the default 0.15.
	Threshold float64
	// MinSeconds skips cells whose baseline time is below this floor —
	// sub-millisecond cells are dominated by noise, not by the code
	// under test. Negative disables the floor; zero means the default
	// 5ms.
	MinSeconds float64
}

func (o *CompareOptions) defaults() {
	if o.Threshold == 0 {
		o.Threshold = 0.15
	}
	if o.MinSeconds == 0 {
		o.MinSeconds = 0.005
	}
}

// Compare joins two reports by matrix-cell key and returns the cells of
// cur that regressed past the threshold relative to base. Cells present
// in only one report are ignored (the matrix may legitimately grow or
// shrink between trajectory points).
func Compare(base, cur *BenchReport, opt CompareOptions) []Regression {
	opt.defaults()
	old := make(map[string]*BenchEntry, len(base.Entries))
	for i := range base.Entries {
		old[base.Entries[i].Key()] = &base.Entries[i]
	}
	var regs []Regression
	for i := range cur.Entries {
		e := &cur.Entries[i]
		b, ok := old[e.Key()]
		if !ok || b.Seconds <= 0 || b.Seconds < opt.MinSeconds {
			continue
		}
		ratio := e.Seconds / b.Seconds
		if ratio > 1+opt.Threshold {
			regs = append(regs, Regression{Key: e.Key(), OldSec: b.Seconds, NewSec: e.Seconds, Ratio: ratio})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Ratio > regs[j].Ratio })
	return regs
}
