package bench

import (
	"math"
	"sort"

	"github.com/cap-repro/crisprscan/internal/arch"
)

// Sample summarizes repeated measurements. Wall-clock measurements on a
// shared host are noisy; the harness reports the median (robust to
// scheduler spikes) and the median absolute deviation.
type Sample struct {
	N      int
	Median float64
	MAD    float64 // median absolute deviation
	Min    float64
	Max    float64
}

// Summarize computes the sample statistics.
func Summarize(values []float64) Sample {
	if len(values) == 0 {
		return Sample{}
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	s := Sample{N: len(v), Median: median(v), Min: v[0], Max: v[len(v)-1]}
	devs := make([]float64, len(v))
	for i, x := range v {
		devs[i] = math.Abs(x - s.Median)
	}
	sort.Float64s(devs)
	s.MAD = median(devs)
	return s
}

func median(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// MeasureRepeated measures an engine several times and returns the
// summary. The first (warm-up) run is discarded when reps > 1, so cache
// and allocator warm-up do not skew the median.
func MeasureRepeated(w *Workload, e arch.Engine, reps int) (Sample, error) {
	if reps < 1 {
		reps = 1
	}
	var times []float64
	runs := reps
	if reps > 1 {
		runs++ // warm-up
	}
	for i := 0; i < runs; i++ {
		sec, _, err := MeasureEngine(w, e)
		if err != nil {
			return Sample{}, err
		}
		if reps > 1 && i == 0 {
			continue
		}
		times = append(times, sec)
	}
	return Summarize(times), nil
}
