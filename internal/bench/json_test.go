package bench

import (
	"bytes"
	"testing"

	"github.com/cap-repro/crisprscan/internal/core"
)

// unitScale is a miniature profile so the matrix runs in well under a
// second inside go test.
var unitScale = Scale{
	Name: "unit", GenomeLen: 20_000,
	GenomeSet: []int{10_000, 20_000},
	GuideSet:  []int{2, 4}, Guides: 2,
	KSet: []int{2, 3}, K: 2,
}

func TestMatrixCoversAllEngines(t *testing.T) {
	cases := Matrix(unitScale)
	seen := map[core.EngineKind]bool{}
	for _, mc := range cases {
		seen[mc.Engine] = true
	}
	for _, e := range core.AllEngines {
		if !seen[e] {
			t.Errorf("matrix misses engine %s", e)
		}
	}
	// The sweep dimensions must each contribute distinct cells.
	keys := map[string]bool{}
	for _, mc := range cases {
		e := BenchEntry{Engine: mc.Label(), GenomeLen: mc.GenomeLen, Guides: mc.Guides, K: mc.K}
		k := e.Key()
		if keys[k] {
			t.Errorf("duplicate matrix cell %s", k)
		}
		keys[k] = true
	}
	// One non-default value per sweep set, plus the prebuilt seed-index
	// cell.
	want := len(core.AllEngines) + 1 + 1 + 1 + 1
	if len(cases) != want {
		t.Fatalf("matrix has %d cells, want %d", len(cases), want)
	}
	if !keys["seed-index-prebuilt/n20000/g2/k2"] {
		t.Error("matrix misses the prebuilt seed-index cell")
	}
}

func TestRunMatrixReportSchema(t *testing.T) {
	rep, err := RunMatrix(unitScale, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != BenchSchema {
		t.Fatalf("schema = %q, want %q", rep.Schema, BenchSchema)
	}
	if rep.Scale != "unit" || rep.GoVersion == "" || rep.GeneratedAt == "" {
		t.Fatalf("incomplete report header: %+v", rep)
	}
	modeled := map[string]bool{
		string(core.EngineAP): true, string(core.EngineFPGA): true,
		string(core.EngineInfant): true, string(core.EngineCasOffinderGPU): true,
	}
	for _, e := range rep.Entries {
		if e.Seconds <= 0 {
			t.Errorf("%s: non-positive seconds %v", e.Key(), e.Seconds)
		}
		if e.MBPerSec <= 0 {
			t.Errorf("%s: non-positive throughput %v", e.Key(), e.MBPerSec)
		}
		if got := e.Counters.BytesScanned; got != int64(e.GenomeLen) {
			t.Errorf("%s: bytes_scanned = %d, want %d", e.Key(), got, e.GenomeLen)
		}
		// Every measured engine must carry a per-phase breakdown whose
		// dominant component is the scan itself.
		if e.Phases.Total() <= 0 {
			t.Errorf("%s: empty phase breakdown", e.Key())
		}
		if e.Phases.Prefilter <= 0 {
			t.Errorf("%s: zero prefilter phase", e.Key())
		}
		if modeled[e.Engine] && len(e.ModeledSec) == 0 {
			t.Errorf("%s: modeled engine without modeled_sec steps", e.Key())
		}
		if !modeled[e.Engine] && len(e.ModeledSec) != 0 {
			t.Errorf("%s: measured engine carries modeled_sec %v", e.Key(), e.ModeledSec)
		}
		if e.AllocBytes < 0 || e.AllocObjects < 0 {
			t.Errorf("%s: negative allocation delta", e.Key())
		}
		// Since schema /2, chunked engines export their latency
		// distribution with explicit non-zero buckets that sum to Count.
		if e.ChunkLatency.Count > 0 {
			var sum int64
			for _, b := range e.ChunkLatency.Buckets {
				if b.Count <= 0 {
					t.Errorf("%s: zero-count bucket exported: %+v", e.Key(), b)
				}
				sum += b.Count
			}
			if sum != e.ChunkLatency.Count {
				t.Errorf("%s: bucket sum %d != count %d", e.Key(), sum, e.ChunkLatency.Count)
			}
		}
	}

	// Round-trip through the JSON writer/reader.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != len(rep.Entries) {
		t.Fatalf("round-trip lost entries: %d != %d", len(back.Entries), len(rep.Entries))
	}
	for i := range back.Entries {
		if back.Entries[i].Key() != rep.Entries[i].Key() || back.Entries[i].Seconds != rep.Entries[i].Seconds {
			t.Fatalf("round-trip entry %d mismatch", i)
		}
	}
}

func TestReadBenchReportRejectsForeignSchema(t *testing.T) {
	if _, err := ReadBenchReport(bytes.NewReader([]byte(`{"schema":"other/9"}`))); err == nil {
		t.Fatal("foreign schema accepted")
	}
}

func synthReport(times map[string]float64) *BenchReport {
	rep := &BenchReport{Schema: BenchSchema, Scale: "unit"}
	for key, sec := range times {
		// Key format engine/n.../g.../k... is irrelevant to Compare as
		// long as both sides agree, so synthesize from fixed dims.
		rep.Entries = append(rep.Entries, BenchEntry{
			Engine: key, GenomeLen: 1000, Guides: 2, K: 2, Seconds: sec,
		})
	}
	return rep
}

func TestCompareFlagsInjectedSlowdown(t *testing.T) {
	base := synthReport(map[string]float64{"a": 0.100, "b": 0.200, "c": 0.050})
	cur := synthReport(map[string]float64{"a": 0.100, "b": 0.400, "c": 0.052})

	regs := Compare(base, cur, CompareOptions{})
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %+v", len(regs), regs)
	}
	r := regs[0]
	if r.OldSec != 0.200 || r.NewSec != 0.400 || r.Ratio != 2 {
		t.Fatalf("wrong regression: %+v", r)
	}

	// A tighter threshold also catches the small drift on c.
	regs = Compare(base, cur, CompareOptions{Threshold: 0.01})
	if len(regs) != 2 {
		t.Fatalf("threshold 1%%: got %d regressions, want 2: %+v", len(regs), regs)
	}
	// Sorted worst-first.
	if regs[0].Ratio < regs[1].Ratio {
		t.Fatalf("regressions not sorted worst-first: %+v", regs)
	}
}

func TestCompareNoiseFloorAndMissingCells(t *testing.T) {
	base := synthReport(map[string]float64{"tiny": 0.001, "gone": 0.100})
	cur := synthReport(map[string]float64{"tiny": 0.004, "new": 9.9})

	// tiny is below the default 5ms floor; gone/new don't join.
	if regs := Compare(base, cur, CompareOptions{}); len(regs) != 0 {
		t.Fatalf("expected no regressions, got %+v", regs)
	}
	// Disabling the floor flags the tiny cell.
	if regs := Compare(base, cur, CompareOptions{MinSeconds: -1}); len(regs) != 1 {
		t.Fatalf("floor disabled: got %+v", regs)
	}
}
