package bench

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/core"
	"github.com/cap-repro/crisprscan/internal/hscan"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Median != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("sample = %+v", s)
	}
	if s.MAD != 1 {
		t.Errorf("MAD = %f, want 1", s.MAD)
	}
	even := Summarize([]float64{1, 2, 3, 4})
	if even.Median != 2.5 {
		t.Errorf("even median = %f", even.Median)
	}
	if (Summarize(nil) != Sample{}) {
		t.Error("empty sample must be zero")
	}
}

func TestSummarizeConstant(t *testing.T) {
	s := Summarize([]float64{5, 5, 5, 5})
	if s.Median != 5 || s.MAD != 0 {
		t.Errorf("constant sample: %+v", s)
	}
}

func TestMeasureRepeated(t *testing.T) {
	w := NewWorkload(40_000, 2, 1, 777)
	specs := core.BuildSpecs(w.Guides, w.PAM, 1, false)
	e, err := hscan.New(specs, hscan.ModePrefilter)
	if err != nil {
		t.Fatal(err)
	}
	s, err := MeasureRepeated(w, e, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Median <= 0 || s.Min > s.Median || s.Median > s.Max {
		t.Errorf("sample = %+v", s)
	}
	one, err := MeasureRepeated(w, e, 0) // clamps to 1, no warm-up
	if err != nil {
		t.Fatal(err)
	}
	if one.N != 1 {
		t.Errorf("reps=0 should clamp to one run, got %d", one.N)
	}
}
