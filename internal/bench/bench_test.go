package bench

import (
	"bytes"
	"strings"
	"testing"
)

// microScale keeps harness tests fast.
var microScale = Scale{
	Name: "micro", GenomeLen: 60_000,
	GenomeSet: []int{30_000, 60_000},
	GuideSet:  []int{2, 4}, Guides: 3,
	KSet: []int{1, 2}, K: 1,
}

func TestNewWorkloadDeterministic(t *testing.T) {
	a := NewWorkload(50_000, 5, 2, 9)
	b := NewWorkload(50_000, 5, 2, 9)
	if a.Genome.TotalLen() != 50_000 || len(a.Guides) != 5 {
		t.Fatalf("workload shape wrong: %d bp, %d guides", a.Genome.TotalLen(), len(a.Guides))
	}
	for i := range a.Guides {
		if a.Guides[i].String() != b.Guides[i].String() {
			t.Fatal("same seed must give same guides")
		}
	}
	if len(a.Specs()) != 10 {
		t.Fatalf("specs = %d, want 10 (both strands)", len(a.Specs()))
	}
}

func TestNewWorkloadTinyGenomeFallsBack(t *testing.T) {
	w := NewWorkload(500, 50, 1, 3)
	if len(w.Guides) != 50 {
		t.Fatalf("expected random-guide fallback to fill the set, got %d", len(w.Guides))
	}
}

func TestAllSystemsShape(t *testing.T) {
	w := NewWorkload(microScale.GenomeLen, microScale.Guides, microScale.K, 77)
	systems, err := AllSystems(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(systems) != 6 {
		t.Fatalf("want the paper's 6 systems, got %d", len(systems))
	}
	measured, modeled := 0, 0
	for _, s := range systems {
		if s.Seconds <= 0 {
			t.Errorf("%s: non-positive time", s.Name)
		}
		if s.Modeled {
			modeled++
		} else {
			measured++
		}
	}
	if measured != 2 || modeled != 4 {
		t.Errorf("measured/modeled split = %d/%d, want 2/4", measured, modeled)
	}
}

func TestSliceWorkload(t *testing.T) {
	w := NewWorkload(100_000, 2, 1, 5)
	sub, scale := sliceWorkload(w, 10_000)
	if sub.Genome.TotalLen() != 10_000 || scale != 10 {
		t.Fatalf("slice: %d bp, scale %f", sub.Genome.TotalLen(), scale)
	}
	same, scale1 := sliceWorkload(w, 200_000)
	if same != w || scale1 != 1 {
		t.Fatal("under-cap workload must pass through")
	}
}

func TestEveryExperimentRuns(t *testing.T) {
	for _, id := range Order {
		t.Run("E"+id, func(t *testing.T) {
			tab, err := Experiments[id](microScale)
			if err != nil {
				t.Fatal(err)
			}
			if len(tab.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, row := range tab.Rows {
				if len(row) != len(tab.Header) {
					t.Fatalf("row width %d != header %d: %v", len(row), len(tab.Header), row)
				}
			}
			var buf bytes.Buffer
			if err := tab.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), "== E"+id) {
				t.Error("render missing banner")
			}
		})
	}
}

func TestRunAndRunAll(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("9", microScale, &buf, false); err != nil {
		t.Fatal(err)
	}
	if err := Run("nope", microScale, &buf, false); err == nil {
		t.Error("unknown experiment must error")
	}
	var csv bytes.Buffer
	if err := Run("1", microScale, &csv, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), "k,") {
		t.Errorf("csv output wrong: %q", csv.String())
	}
}

func TestTableCSVQuoting(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}, Rows: [][]string{{`x,y`, `q"z`}}}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"x,y","q""z"`) {
		t.Errorf("quoting wrong: %q", buf.String())
	}
}

func TestFormatters(t *testing.T) {
	if F(0) != "0" || I(7) != "7" || X(2.04) != "2.0x" {
		t.Error("formatters wrong")
	}
	if !strings.Contains(F(0.0000005), "e-") {
		t.Errorf("tiny float formatting: %s", F(0.0000005))
	}
}
