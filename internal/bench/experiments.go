package bench

import (
	"fmt"
	"io"

	"github.com/cap-repro/crisprscan/internal/ap"
	"github.com/cap-repro/crisprscan/internal/arch"
	"github.com/cap-repro/crisprscan/internal/automata"
	"github.com/cap-repro/crisprscan/internal/casoffinder"
	"github.com/cap-repro/crisprscan/internal/casot"
	"github.com/cap-repro/crisprscan/internal/core"
	"github.com/cap-repro/crisprscan/internal/dfa"
	"github.com/cap-repro/crisprscan/internal/dna"
	"github.com/cap-repro/crisprscan/internal/fpga"
	"github.com/cap-repro/crisprscan/internal/genome"
	"github.com/cap-repro/crisprscan/internal/hscan"
	"github.com/cap-repro/crisprscan/internal/infant"
)

// measureCapBases bounds the genome prefix the single-thread measured
// engines scan directly; longer genomes are measured on the prefix and
// extrapolated linearly (their cost is strictly linear in bases). The
// cap keeps the full E-series runnable in minutes at default scale.
const measureCapBases = 2_000_000

// SystemTime is one system's kernel-level result on a workload.
type SystemTime struct {
	Name    string
	Seconds float64
	Modeled bool
}

// sliceWorkload returns a prefix-limited copy of w (first chromosome
// truncated to at most capBases) and the extrapolation factor.
func sliceWorkload(w *Workload, capBases int) (*Workload, float64) {
	total := w.Genome.TotalLen()
	if total <= capBases {
		return w, 1
	}
	c := w.Genome.Chroms[0]
	n := capBases
	if n > len(c.Seq) {
		n = len(c.Seq)
	}
	sub := genome.New(genome.Chromosome{Name: c.Name, Seq: c.Seq[:n]})
	return &Workload{Genome: sub, Guides: w.Guides, PAM: w.PAM, K: w.K, Seed: w.Seed}, float64(total) / float64(n)
}

// measureScaled measures e on a capped prefix and extrapolates.
func measureScaled(w *Workload, e arch.Engine) (float64, error) {
	sub, scale := sliceWorkload(w, measureCapBases)
	sec, _, err := MeasureEngine(sub, e)
	return sec * scale, err
}

// estimateEvents counts events on a capped prefix and extrapolates.
func estimateEvents(w *Workload) (int, error) {
	sub, scale := sliceWorkload(w, measureCapBases)
	n, err := CountEvents(sub)
	return int(float64(n) * scale), err
}

// AllSystems evaluates the paper's six systems on one workload and
// returns kernel-level seconds for each: measured wall-clock for the
// CPU engines (CasOT, the HyperScan-class engine), modeled device time
// for Cas-OFFinder's GPU, iNFAnt2, the FPGA and the AP.
func AllSystems(w *Workload) ([]SystemTime, error) {
	specs := w.Specs()
	events, err := estimateEvents(w)
	if err != nil {
		return nil, err
	}
	inputLen := w.Genome.TotalLen()
	var out []SystemTime

	co, err := casot.New(specs, casot.Options{SeedLen: 0, MaxSeedMismatches: w.K})
	if err != nil {
		return nil, err
	}
	sec, err := measureScaled(w, co)
	if err != nil {
		return nil, err
	}
	out = append(out, SystemTime{"casot (cpu, measured)", sec, false})

	gpu, err := casoffinder.NewGPUModel(specs, casoffinder.DefaultGPU)
	if err != nil {
		return nil, err
	}
	out = append(out, SystemTime{"cas-offinder (gpu, modeled)", gpu.EstimateBreakdown(inputLen, events).Kernel, true})

	hs, err := hscan.New(specs, hscan.ModePrefilter)
	if err != nil {
		return nil, err
	}
	sec, err = measureScaled(w, hs)
	if err != nil {
		return nil, err
	}
	out = append(out, SystemTime{"hyperscan (cpu, measured)", sec, false})

	inf, err := infant.Compile(specs, infant.Options{})
	if err != nil {
		return nil, err
	}
	out = append(out, SystemTime{"infant2 (gpu, modeled)", inf.EstimateBreakdown(inputLen, events).Kernel, true})

	fm, err := fpga.Compile(specs, fpga.Options{MergeStates: true})
	if err != nil {
		return nil, err
	}
	out = append(out, SystemTime{"fpga (modeled)", fm.EstimateBreakdown(inputLen, events).Kernel, true})

	am, err := ap.Compile(specs, ap.Options{MergeStates: true})
	if err != nil {
		return nil, err
	}
	out = append(out, SystemTime{"ap (modeled)", am.EstimateBreakdown(inputLen, events).Kernel, true})

	return out, nil
}

// E1 characterizes the automata per guide across mismatch budgets.
func E1(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "E1",
		Title:  "Automata characterization per guide (20nt spacer + NGG, both strands)",
		Header: []string{"k", "NFA states", "merged STEs", "FPGA LUTs", "min-DFA states", "bitap words", "casot seed variants(k)"},
		Notes: []string{
			"NFA states: 2 strands x Hamming lattice + PAM chain, before merging.",
			"merged STEs: per-guide share of a 10-guide union after prefix/suffix merging.",
			"casot seed variants: Hamming ball enumerated for a 12nt seed at full budget k.",
		},
	}
	w := NewWorkload(100_000, 10, 0, 42)
	for _, k := range sc.KSet {
		if k > SpacerLen {
			continue
		}
		perGuide := 2 * automata.HammingStateCount(SpacerLen, k, len(w.PAM))
		specs := core.BuildSpecs(w.Guides, w.PAM, k, false)
		u, err := ap.Compile(specs, ap.Options{MergeStates: true})
		if err != nil {
			return nil, err
		}
		merged := u.Resources().States / len(w.Guides)
		fm, err := fpga.Compile(specs, fpga.Options{MergeStates: true})
		if err != nil {
			return nil, err
		}
		luts := fm.LUTsUsed() / len(w.Guides)
		single, err := automata.CompileHamming(w.Guides[0], automata.CompileOptions{MaxMismatches: k, PAM: w.PAM, Code: 0})
		if err != nil {
			return nil, err
		}
		d, err := dfa.FromNFA(single, dfa.BuildOptions{})
		if err != nil {
			return nil, err
		}
		minDFA := dfa.Minimize(d).NumStates()
		t.Rows = append(t.Rows, []string{
			I(k), I(perGuide), I(merged), I(luts), I(minDFA), I(2 * (k + 1)),
			I(casot.SeedVariantCount(12, k)),
		})
	}
	return t, nil
}

// E2 is the main figure: kernel time versus mismatch budget for all six
// systems.
func E2(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "E2",
		Title:  fmt.Sprintf("Kernel time (s) vs mismatches, genome=%d bp, guides=%d", sc.GenomeLen, sc.Guides),
		Header: []string{"system"},
		Notes: []string{
			"measured = wall-clock on this host; modeled = analytic device time (DESIGN.md).",
			fmt.Sprintf("measured engines scan a %d bp prefix and extrapolate linearly.", measureCapBases),
		},
	}
	rows := make(map[string][]string)
	var order []string
	for _, k := range sc.KSet {
		t.Header = append(t.Header, fmt.Sprintf("k=%d", k))
		w := NewWorkload(sc.GenomeLen, sc.Guides, k, 1000+int64(k))
		systems, err := AllSystems(w)
		if err != nil {
			return nil, err
		}
		for _, s := range systems {
			if _, ok := rows[s.Name]; !ok {
				rows[s.Name] = []string{s.Name}
				order = append(order, s.Name)
			}
			rows[s.Name] = append(rows[s.Name], F(s.Seconds))
		}
	}
	for _, name := range order {
		t.Rows = append(t.Rows, rows[name])
	}
	return t, nil
}

// E3 sweeps the guide count at fixed k.
func E3(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "E3",
		Title:  fmt.Sprintf("Kernel time (s) vs guide count, genome=%d bp, k=%d", sc.GenomeLen, sc.K),
		Header: []string{"system"},
		Notes:  []string{"brute force scales linearly with guides; spatial automata pay in capacity (passes), not time, until the board fills."},
	}
	rows := make(map[string][]string)
	var order []string
	for _, n := range sc.GuideSet {
		t.Header = append(t.Header, fmt.Sprintf("N=%d", n))
		w := NewWorkload(sc.GenomeLen, n, sc.K, 2000+int64(n))
		systems, err := AllSystems(w)
		if err != nil {
			return nil, err
		}
		for _, s := range systems {
			if _, ok := rows[s.Name]; !ok {
				rows[s.Name] = []string{s.Name}
				order = append(order, s.Name)
			}
			rows[s.Name] = append(rows[s.Name], F(s.Seconds))
		}
	}
	for _, name := range order {
		t.Rows = append(t.Rows, rows[name])
	}
	return t, nil
}

// E4 reports the headline speedups next to the abstract's targets.
func E4(sc Scale) (*Table, error) {
	w := NewWorkload(sc.GenomeLen, sc.Guides, sc.K, 4000)
	systems, err := AllSystems(w)
	if err != nil {
		return nil, err
	}
	byName := map[string]float64{}
	for _, s := range systems {
		byName[s.Name] = s.Seconds
	}
	casotT := byName["casot (cpu, measured)"]
	casoffT := byName["cas-offinder (gpu, modeled)"]
	hsT := byName["hyperscan (cpu, measured)"]
	infT := byName["infant2 (gpu, modeled)"]
	fpgaT := byName["fpga (modeled)"]
	apT := byName["ap (modeled)"]
	t := &Table{
		ID:     "E4",
		Title:  fmt.Sprintf("Headline speedups, genome=%d bp, guides=%d, k=%d", sc.GenomeLen, sc.Guides, sc.K),
		Header: []string{"comparison", "measured/modeled here", "paper (abstract)"},
		Rows: [][]string{
			{"fpga vs cas-offinder(gpu)", X(casoffT / fpgaT), ">= 83x"},
			{"fpga vs casot(cpu)", X(casotT / fpgaT), ">= 600x"},
			{"ap vs fpga (kernel)", X(fpgaT / apT), "~1.5x"},
			{"hyperscan vs casot", X(casotT / hsT), ">= 29.7x"},
			{"infant2 vs hyperscan", X(hsT / infT), "<= 4.4x (best case)"},
			{"infant2 vs cas-offinder(gpu)", X(casoffT / infT), "not consistently > 1x"},
		},
		Notes: []string{
			"measured CPU engines here are Go reimplementations; the paper's CasOT was Perl,",
			"which compresses the hyperscan/casot gap relative to the paper (see EXPERIMENTS.md).",
		},
	}
	return t, nil
}

// E5 sweeps genome size.
func E5(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "E5",
		Title:  fmt.Sprintf("Kernel time (s) vs genome size, guides=%d, k=%d", sc.Guides, sc.K),
		Header: []string{"system"},
		Notes:  []string{"all systems are linear in genome length; ratios are size-invariant, which is what lets reduced-scale runs stand in for hg19."},
	}
	rows := make(map[string][]string)
	var order []string
	for _, gl := range sc.GenomeSet {
		t.Header = append(t.Header, fmt.Sprintf("G=%gMbp", float64(gl)/1e6))
		w := NewWorkload(gl, sc.Guides, sc.K, 5000+int64(gl%997))
		systems, err := AllSystems(w)
		if err != nil {
			return nil, err
		}
		for _, s := range systems {
			if _, ok := rows[s.Name]; !ok {
				rows[s.Name] = []string{s.Name}
				order = append(order, s.Name)
			}
			rows[s.Name] = append(rows[s.Name], F(s.Seconds))
		}
	}
	for _, name := range order {
		t.Rows = append(t.Rows, rows[name])
	}
	return t, nil
}

// E6 decomposes end-to-end time for the modeled platforms.
func E6(sc Scale) (*Table, error) {
	w := NewWorkload(sc.GenomeLen, sc.Guides, sc.K, 6000)
	events, err := estimateEvents(w)
	if err != nil {
		return nil, err
	}
	specs := w.Specs()
	inputLen := w.Genome.TotalLen()
	t := &Table{
		ID:     "E6",
		Title:  fmt.Sprintf("End-to-end breakdown (s), genome=%d bp, guides=%d, k=%d, events~%d", inputLen, sc.Guides, sc.K, events),
		Header: []string{"platform", "compile(offline)", "transfer", "kernel", "report", "online", "online(overlap)"},
		Notes: []string{
			"compile is a one-time cost (FPGA synthesis, AP place&route) excluded from the online totals, as in the paper's kernel comparisons.",
			"online(overlap) double-buffers input against the kernel — the paper's proposed transfer hiding; max(transfer,kernel)+report.",
		},
	}
	add := func(name string, b arch.Breakdown) {
		t.Rows = append(t.Rows, []string{name, F(b.Compile), F(b.Transfer), F(b.Kernel), F(b.Report), F(b.Online()), F(b.OnlineOverlapped())})
	}
	gpu, err := casoffinder.NewGPUModel(specs, casoffinder.DefaultGPU)
	if err != nil {
		return nil, err
	}
	add("cas-offinder-gpu", gpu.EstimateBreakdown(inputLen, events))
	inf, err := infant.Compile(specs, infant.Options{})
	if err != nil {
		return nil, err
	}
	add("infant2", inf.EstimateBreakdown(inputLen, events))
	fm, err := fpga.Compile(specs, fpga.Options{MergeStates: true})
	if err != nil {
		return nil, err
	}
	add("fpga", fm.EstimateBreakdown(inputLen, events))
	am, err := ap.Compile(specs, ap.Options{MergeStates: true})
	if err != nil {
		return nil, err
	}
	add("ap", am.EstimateBreakdown(inputLen, events))
	return t, nil
}

// E7 sweeps guide count into AP capacity overflow.
func E7(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "E7",
		Title:  fmt.Sprintf("AP capacity and multi-pass behavior, k=%d, genome=%d bp", sc.K, sc.GenomeLen),
		Header: []string{"guides", "STEs", "board util", "streams", "passes", "kernel (s)"},
		Notes:  []string{"one D480 board = 32 chips x 49,152 STEs; small designs replicate across chips, oversized designs re-stream the input."},
	}
	// Calibrate the merged per-guide STE cost on a 100-guide union, then
	// plan larger placements analytically (cross-guide merging beyond
	// shared start states is negligible for random guides, so the
	// per-guide cost is stable in N).
	raw := genome.RandomGuides(100, SpacerLen, 7000)
	guides := make([]dna.Pattern, len(raw))
	for i, r := range raw {
		guides[i] = dna.PatternFromSeq(r)
	}
	specs := core.BuildSpecs(guides, dna.MustParsePattern(PAMString), sc.K, false)
	m, err := ap.Compile(specs, ap.Options{MergeStates: true})
	if err != nil {
		return nil, err
	}
	perGuide := float64(m.Resources().States) / 100
	for _, n := range []int{100, 1000, 4000, 12000, 30000, 100000} {
		states := int(perGuide * float64(n))
		res, streams := ap.PlaceStates(states, ap.D480Board)
		kernel := ap.KernelSeconds(sc.GenomeLen, res, streams, ap.D480Board)
		t.Rows = append(t.Rows, []string{
			I(n), I(states), fmt.Sprintf("%.1f%%", res.Utilization()*100),
			I(streams), I(res.Passes), F(kernel),
		})
	}
	return t, nil
}

// E8 is the prefix/suffix-merging ablation.
func E8(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "E8",
		Title:  fmt.Sprintf("Ablation: state merging (proposed STE reduction), guides=%d", sc.Guides),
		Header: []string{"k", "STEs unmerged", "STEs merged", "reduction", "AP kernel unmerged (s)", "AP kernel merged (s)"},
	}
	w := NewWorkload(200_000, sc.Guides, 0, 8000)
	for _, k := range sc.KSet {
		specs := core.BuildSpecs(w.Guides, w.PAM, k, false)
		plain, err := ap.Compile(specs, ap.Options{})
		if err != nil {
			return nil, err
		}
		merged, err := ap.Compile(specs, ap.Options{MergeStates: true})
		if err != nil {
			return nil, err
		}
		ps, ms := plain.Resources().States, merged.Resources().States
		bp := plain.EstimateBreakdown(sc.GenomeLen, 0)
		bm := merged.EstimateBreakdown(sc.GenomeLen, 0)
		t.Rows = append(t.Rows, []string{
			I(k), I(ps), I(ms), fmt.Sprintf("%.1f%%", 100*(1-float64(ms)/float64(ps))),
			F(bp.Kernel), F(bm.Kernel),
		})
	}
	return t, nil
}

// E9 is the multi-striding ablation on the FPGA.
func E9(sc Scale) (*Table, error) {
	t := &Table{
		ID:     "E9",
		Title:  fmt.Sprintf("Ablation: 2-striding on the FPGA, guides=%d, k=%d, genome=%d bp", sc.Guides, sc.K, sc.GenomeLen),
		Header: []string{"design", "states", "LUTs", "streams", "kernel (s)", "vs stride-1"},
		Notes:  []string{"striding halves cycles per base but costs fabric; the win depends on whether replication head-room absorbs the state growth."},
	}
	w := NewWorkload(200_000, sc.Guides, sc.K, 9000)
	specs := core.BuildSpecs(w.Guides, w.PAM, sc.K, false)
	s1, err := fpga.Compile(specs, fpga.Options{MergeStates: true})
	if err != nil {
		return nil, err
	}
	s2, err := fpga.Compile(specs, fpga.Options{MergeStates: true, Stride2: true})
	if err != nil {
		return nil, err
	}
	b1 := s1.EstimateBreakdown(sc.GenomeLen, 0)
	b2 := s2.EstimateBreakdown(sc.GenomeLen, 0)
	t.Rows = append(t.Rows, []string{"stride-1", I(s1.Resources().States), I(s1.LUTsUsed()), I(s1.Streams()), F(b1.Kernel), "1.0x"})
	t.Rows = append(t.Rows, []string{"stride-2", I(s2.Resources().States), I(s2.LUTsUsed()), I(s2.Streams()), F(b2.Kernel), X(b1.Kernel / b2.Kernel)})
	return t, nil
}

// E10 is the reporting-bottleneck study: how output-event density
// interacts with the AP's drain granularity. Off-target search is
// normally report-sparse, but repeat-rich genomes and permissive
// budgets push the event rate up, and the AP's output path (not its
// compute) becomes the wall — the bottleneck Wadden et al. (HPCA 2018)
// characterize and that the paper's report-aggregation proposal
// addresses.
func E10(sc Scale) (*Table, error) {
	w := NewWorkload(200_000, sc.Guides, sc.K, 10000)
	specs := w.Specs()
	t := &Table{
		ID:     "E10",
		Title:  fmt.Sprintf("AP reporting cost vs event density and drain aggregation, genome=%d bp", sc.GenomeLen),
		Header: []string{"events/base", "drain batch", "report time (s)", "kernel (s)", "report share"},
		Notes: []string{
			"batch=1 models per-event draining; 64 an output-region vector read;",
			"1024 the paper-proposed on-chip aggregation/compression of report vectors.",
		},
	}
	for _, rate := range []float64{1e-5, 1e-3, 1e-1} {
		events := int(rate * float64(sc.GenomeLen))
		for _, batch := range []int{1, 64, 1024} {
			dev := ap.D480Board
			dev.ReportBatchSize = batch
			m, err := ap.Compile(specs, ap.Options{Device: dev, MergeStates: true})
			if err != nil {
				return nil, err
			}
			b := m.EstimateBreakdown(sc.GenomeLen, events)
			share := b.Report / (b.Report + b.Kernel)
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%.0e", rate), I(batch), F(b.Report), F(b.Kernel),
				fmt.Sprintf("%.1f%%", share*100),
			})
		}
	}
	return t, nil
}

// E12 measures the bulge-tolerant (edit distance) extension.
func E12(sc Scale) (*Table, error) {
	gl := sc.GenomeLen
	if gl > 1_000_000 {
		gl = 1_000_000
	}
	w := NewWorkload(gl, 10, 2, 11000)
	t := &Table{
		ID:     "E12",
		Title:  fmt.Sprintf("Bulge-tolerant search cost, genome=%d bp, 10 guides, k=2", gl),
		Header: []string{"bulge budget", "NFA states/guide", "sites", "time (s)"},
		Notes:  []string{"edit automata run on the NFA simulation engine; state growth and hit growth are the costs of bulge tolerance."},
	}
	for _, b := range []int{0, 1, 2} {
		n, err := automata.CompileEdit(w.Guides[0], automata.EditOptions{
			MaxMismatches: 2, MaxBulge: b, PAM: w.PAM, Code: 0,
		})
		if err != nil {
			return nil, err
		}
		sites, sec, err := core.BulgeElapsed(w.Genome, w.Guides, core.BulgeParams{
			MaxMismatches: 2, MaxBulge: b,
		})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{I(b), I(2 * n.NumStates()), I(len(sites)), F(sec)})
	}
	return t, nil
}

// E13 measures the seed-and-extend blowup directly: CasOT's naive scan
// versus its seed-index variant as the mismatch budget grows. The index
// wins while the Hamming ball is small and collapses combinatorially at
// high k — the quantitative version of the paper's "especially when one
// allows more differences" motivation.
func E13(sc Scale) (*Table, error) {
	gl := sc.GenomeLen
	if gl > 500_000 {
		gl = 500_000
	}
	w := NewWorkload(gl, 10, 0, 13000)
	t := &Table{
		ID:     "E13",
		Title:  fmt.Sprintf("Seed-index blowup (measured), genome=%d bp, 10 guides, seed=12", gl),
		Header: []string{"k", "seed variants", "casot naive (s)", "casot index (s)", "index vs naive"},
		Notes: []string{
			"the index enumerates the seed's Hamming ball, so its time grows with k while the naive scan stays flat;",
			"at this genome scale the per-chromosome index build dominates — on gigabase genomes (amortized index) the index wins at small k and still collapses at large k.",
		},
	}
	for _, k := range sc.KSet {
		if k > SpacerLen {
			continue
		}
		specs := core.BuildSpecs(w.Guides, w.PAM, k, false)
		naive, err := casot.New(specs, casot.Options{SeedLen: 12, MaxSeedMismatches: k})
		if err != nil {
			return nil, err
		}
		nSec, _, err := MeasureEngine(w, naive)
		if err != nil {
			return nil, err
		}
		indexed, err := casot.NewIndex(specs, casot.Options{SeedLen: 12, MaxSeedMismatches: k})
		if err != nil {
			return nil, err
		}
		iSec, _, err := MeasureEngine(w, indexed)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			I(k), I(casot.SeedVariantCount(12, k)), F(nSec), F(iSec), X(nSec / iSec),
		})
	}
	return t, nil
}

// E14 projects the paper's proposed future automata hardware: the D480
// versus a device with a DDR4-rate symbol clock, denser STE arrays, and
// on-chip report aggregation — with and without native 2-striding. The
// workload is report-heavy (1e-3 events/base) so the output-path
// improvements are visible alongside the clock.
func E14(sc Scale) (*Table, error) {
	w := NewWorkload(200_000, sc.Guides, sc.K, 14000)
	specs := w.Specs()
	events := int(1e-3 * float64(sc.GenomeLen))
	t := &Table{
		ID:     "E14",
		Title:  fmt.Sprintf("Future automata hardware projection, genome=%d bp, guides=%d, k=%d, events/base=1e-3", sc.GenomeLen, sc.Guides, sc.K),
		Header: []string{"device", "STEs", "streams", "kernel (s)", "report (s)", "online total (s)", "vs D480"},
		Notes: []string{
			"future device: 400 MHz symbol clock, 2x STE density, wider+faster report aggregation (the paper's proposed modifications);",
			"stride-2 rows additionally assume native multi-symbol consumption, which the shipped D480 cannot do.",
		},
	}
	var baseline float64
	for _, row := range []struct {
		name    string
		dev     ap.Device
		stride2 bool
	}{
		{"d480", ap.D480Board, false},
		{"d480 + stride-2", ap.D480Board, true},
		{"future", ap.FutureBoard, false},
		{"future + stride-2", ap.FutureBoard, true},
	} {
		m, err := ap.Compile(specs, ap.Options{Device: row.dev, MergeStates: true, Stride2: row.stride2})
		if err != nil {
			return nil, err
		}
		b := m.EstimateBreakdown(sc.GenomeLen, events)
		online := b.Transfer + b.Kernel + b.Report
		if baseline == 0 {
			baseline = online
		}
		t.Rows = append(t.Rows, []string{
			row.name, I(m.Resources().States), I(m.Streams()),
			F(b.Kernel), F(b.Report), F(online), X(baseline / online),
		})
	}
	return t, nil
}

// Experiments maps experiment ids to their implementations.
var Experiments = map[string]func(Scale) (*Table, error){
	"1": E1, "2": E2, "3": E3, "4": E4, "5": E5,
	"6": E6, "7": E7, "8": E8, "9": E9, "10": E10, "12": E12, "13": E13, "14": E14,
}

// Order is the canonical experiment order.
var Order = []string{"1", "2", "3", "4", "5", "6", "7", "8", "9", "10", "12", "13", "14"}

// Run executes one experiment and renders it.
func Run(id string, sc Scale, w io.Writer, csv bool) error {
	fn, ok := Experiments[id]
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q", id)
	}
	t, err := fn(sc)
	if err != nil {
		return err
	}
	if csv {
		return t.RenderCSV(w)
	}
	return t.Render(w)
}

// RunAll executes the full series.
func RunAll(sc Scale, w io.Writer, csv bool) error {
	for _, id := range Order {
		if err := Run(id, sc, w, csv); err != nil {
			return err
		}
	}
	return nil
}
