package analysis

import (
	"go/ast"
	"sort"
	"strings"
)

// StatsDiscipline keeps the measured execution stats honest: the
// benchmark tables and the public API document that every search
// reports its engine name, wall-clock time, raw event count, and bytes
// scanned. A code path that builds a core.Stats and forgets one of
// those fields silently publishes zeros, which is exactly the kind of
// drift a new engine or a refactored orchestrator introduces.
//
// The rule is flow-insensitive: for each core.Stats composite literal
// in a non-test file of internal/core, every required field must either
// be a key of the literal or be assigned (x.Field = ... / x.Field++ /
// x.Field += ...) somewhere in the enclosing function. Struct-field
// writes through any base expression count, so both the
// literal-then-mutate style of SearchStream and the all-at-once literal
// of Search satisfy the check.
var StatsDiscipline = &Analyzer{
	Name: "statsdiscipline",
	Doc: "core.Stats construction must populate Engine, ElapsedSec, Events and " +
		"BytesScanned (in the literal or via assignments in the same function)",
	Run: runStatsDiscipline,
}

// requiredStatsFields are the measured fields every engine run must
// report. Modeled-platform extras (Modeled, Resources) are optional by
// design: they stay nil for measured engines.
var requiredStatsFields = []string{"Engine", "ElapsedSec", "Events", "BytesScanned"}

func runStatsDiscipline(pass *Pass) error {
	if !pass.InModulePackage(corePkgSuffix) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkStatsInFunc(pass, fd)
		}
	}
	return nil
}

// isStatsLit reports whether cl is a Stats{...} literal (package-local
// name; core.Stats is never self-referenced with a selector in-package).
func isStatsLit(cl *ast.CompositeLit) bool {
	id, ok := cl.Type.(*ast.Ident)
	return ok && id.Name == "Stats"
}

func checkStatsInFunc(pass *Pass, fd *ast.FuncDecl) {
	// Pass 1: every Stats field name assigned anywhere in the function.
	assigned := make(map[string]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if sel, ok := lhs.(*ast.SelectorExpr); ok {
					assigned[sel.Sel.Name] = true
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := x.X.(*ast.SelectorExpr); ok {
				assigned[sel.Sel.Name] = true
			}
		}
		return true
	})

	// Pass 2: audit each Stats literal.
	ast.Inspect(fd, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok || !isStatsLit(cl) {
			return true
		}
		inLiteral := make(map[string]bool)
		positional := false
		for _, elt := range cl.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				positional = true
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok {
				inLiteral[key.Name] = true
			}
		}
		if positional {
			// Positional literals set every field; nothing to audit.
			return true
		}
		var missing []string
		for _, field := range requiredStatsFields {
			if !inLiteral[field] && !assigned[field] {
				missing = append(missing, field)
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			pass.Reportf(cl.Pos(), "Stats constructed without populating %s (set in the literal or assign before returning)",
				strings.Join(missing, ", "))
		}
		return true
	})
}
