package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
)

// BoundsHint flags slice accesses inside //crisprlint:hotpath functions
// whose shape defeats the compiler's bounds-check elimination (BCE), so
// the check survives into the inner loop. It is the source-level
// explanation for the "Found IsInBounds" verdicts cmd/perfgate gates:
// perfgate says *that* a check survived, boundshint says *why* and what
// idiom removes it.
//
// Patterns flagged, all restricted to loops in hot functions:
//
//   - indexing by the loop variable under a bound that is not len of
//     the indexed slice (`for i := 0; i < n; i++ { s[i] }`) with no
//     visible guard — BCE cannot relate n to len(s);
//   - backwards indexing (`s[i-c]`, `s[i-k]`) whose lower bound the
//     prove pass cannot establish;
//   - masked indexing with a modulus other than len of the indexed
//     slice (`s[x % m]`) — `% len(s)` and power-of-two `&`/`&^` masks
//     are the BCE-friendly idioms;
//   - non-constant re-slices (`seq[p : p+k]`) re-checked every
//     iteration.
//
// Recognized guard idioms suppress the loop-bound check: a prior
// `_ = s[n-1]` (or any blank-assigned index), `_ = s[:n]`, or a
// self-re-slice `s = s[:n]` — each teaches the prove pass the bound.
// Fixed-size arrays indexed under a constant bound are exempt (the
// compiler already proves those); arrays under a variable bound are
// not, which is exactly the bitap `rows[j]`/`j <= k` trap. Findings
// are suppressed with //crisprlint:allow boundshint.
var BoundsHint = &Analyzer{
	Name: "boundshint",
	Doc: "slice accesses in //crisprlint:hotpath loops shaped to defeat bounds-check " +
		"elimination: loop bounds unrelated to len, backwards indexing, non-len modulus " +
		"masks, and non-constant re-slices",
	Run: runBoundsHint,
}

func runBoundsHint(pass *Pass) error {
	ti := pass.Types()
	reported := make(map[token.Pos]bool) // nested hot funcs share spans; report once
	for _, f := range pass.Pkg.Files {
		for _, hf := range HotFuncs(pass.Fset, f) {
			checkBoundsHints(pass, ti, hf, reported)
		}
	}
	return nil
}

// boundsLoop is one enclosing loop's relevant shape.
type boundsLoop struct {
	body [2]token.Pos // (lbrace, rbrace) of the loop body
	// v is the classic 3-clause loop variable name, or the range key;
	// empty when the loop has no usable index variable.
	v string
	// bound is the exclusive upper bound expression from `v < bound`;
	// for range loops a synthetic len(rangeExpr). Nil when unknown.
	bound ast.Expr
	// inclusive marks `v <= bound` loops: even a len bound keeps (or
	// overruns) the check there.
	inclusive bool
	// initVal is the constant the loop variable starts at, -1 when not
	// a constant.
	initVal int64
}

func checkBoundsHints(pass *Pass, ti *TypeInfo, hf HotFunc, reported map[token.Pos]bool) {
	report := func(pos token.Pos, format string, args ...any) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, format, args...)
	}

	guards, guardNodes := collectBoundsGuards(hf.Body)
	lenDefs := collectLenDefs(hf.Body)
	loops := collectBoundsLoops(hf.Body)

	innermost := func(pos token.Pos) *boundsLoop {
		var best *boundsLoop
		for i := range loops {
			l := &loops[i]
			if pos > l.body[0] && pos < l.body[1] {
				if best == nil || l.body[0] > best.body[0] {
					best = l
				}
			}
		}
		return best
	}

	ast.Inspect(hf.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if guardNodes[n] || isMapIndex(ti, n) {
				return true
			}
			loop := innermost(n.Pos())
			if loop == nil {
				return true
			}
			checkIndex(ti, report, hf, loop, n, guards, lenDefs)
		case *ast.SliceExpr:
			if guardNodes[n] {
				return true
			}
			loop := innermost(n.Pos())
			if loop == nil {
				return true
			}
			checkReslice(ti, report, hf, n)
		}
		return true
	})
}

func checkIndex(ti *TypeInfo, report func(token.Pos, string, ...any), hf HotFunc, loop *boundsLoop, n *ast.IndexExpr, guards map[string]bool, lenDefs map[string]string) {
	sStr := types.ExprString(n.X)
	switch idx := n.Index.(type) {
	case *ast.Ident:
		if loop.v == "" || idx.Name != loop.v || loop.bound == nil {
			return
		}
		if guards[sStr] {
			return
		}
		if !loop.inclusive && boundImpliesLen(loop.bound, sStr, lenDefs) {
			return
		}
		if isArrayOperand(ti, n.X) && isConstExpr(ti, loop.bound) {
			// Constant bound over a fixed-size array: the prove pass
			// (or the compile itself) settles it.
			return
		}
		if loop.inclusive {
			report(n.Pos(), "hot path %s: %s[%s] under inclusive bound `%s <= %s` keeps a bounds check every iteration; "+
				"guard with `_ = %s[%s]` before the loop or justify with //crisprlint:allow boundshint",
				hf.Name, sStr, idx.Name, loop.v, types.ExprString(loop.bound), sStr, types.ExprString(loop.bound))
			return
		}
		report(n.Pos(), "hot path %s: %s[%s] is bounds-checked every iteration: loop bound %s is not len(%s); "+
			"guard with `_ = %s[%s-1]`, re-slice, or iterate to len(%s), or justify with //crisprlint:allow boundshint",
			hf.Name, sStr, idx.Name, types.ExprString(loop.bound), sStr, sStr, types.ExprString(loop.bound), sStr)

	case *ast.BinaryExpr:
		switch idx.Op {
		case token.SUB:
			// len(s)-c and loop-var-minus-constant with a covering start
			// value are both provable; everything else keeps the check.
			if isLenOf(idx.X, sStr, lenDefs) && isConstExpr(ti, idx.Y) {
				return
			}
			if id, ok := idx.X.(*ast.Ident); ok && loop.v != "" && id.Name == loop.v {
				if c, ok := constInt(ti, idx.Y); ok && loop.initVal >= 0 && loop.initVal >= c {
					return
				}
			}
			report(n.Pos(), "hot path %s: backwards index %s[%s] cannot be proven in range; "+
				"re-slice before the loop or restructure the recurrence, or justify with //crisprlint:allow boundshint",
				hf.Name, sStr, types.ExprString(idx))
		case token.REM:
			if isLenOf(idx.Y, sStr, lenDefs) {
				return
			}
			report(n.Pos(), "hot path %s: masked index %s[%s] uses a modulus other than len(%s); "+
				"use %% len(%s) or a power-of-two mask (&, &^) so the bounds check can be elided, "+
				"or justify with //crisprlint:allow boundshint",
				hf.Name, sStr, types.ExprString(idx), sStr, sStr)
		}
	}
}

func checkReslice(ti *TypeInfo, report func(token.Pos, string, ...any), hf HotFunc, n *ast.SliceExpr) {
	if n.Low == nil || n.High == nil {
		return
	}
	if isConstExpr(ti, n.Low) || isConstExpr(ti, n.High) {
		return
	}
	report(n.Pos(), "hot path %s: non-constant re-slice %s carries a slice-bounds check every iteration; "+
		"hoist the window out of the loop or index directly, or justify with //crisprlint:allow boundshint",
		hf.Name, types.ExprString(n))
}

// collectBoundsLoops gathers every for/range loop under body (closures
// included: they run in the hot context) with its index shape.
func collectBoundsLoops(body *ast.BlockStmt) []boundsLoop {
	var out []boundsLoop
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			l := boundsLoop{body: [2]token.Pos{n.Body.Lbrace, n.Body.Rbrace}, initVal: -1}
			if cond, ok := n.Cond.(*ast.BinaryExpr); ok && (cond.Op == token.LSS || cond.Op == token.LEQ) {
				if id, ok := cond.X.(*ast.Ident); ok {
					l.v = id.Name
					l.bound = cond.Y
					l.inclusive = cond.Op == token.LEQ
				}
			}
			if init, ok := n.Init.(*ast.AssignStmt); ok && len(init.Lhs) == 1 && len(init.Rhs) == 1 {
				if id, ok := init.Lhs[0].(*ast.Ident); ok && id.Name == l.v {
					if lit, ok := init.Rhs[0].(*ast.BasicLit); ok && lit.Kind == token.INT {
						if v, err := strconv.ParseInt(lit.Value, 0, 64); err == nil {
							l.initVal = v
						}
					}
				}
			}
			out = append(out, l)
		case *ast.RangeStmt:
			l := boundsLoop{body: [2]token.Pos{n.Body.Lbrace, n.Body.Rbrace}, initVal: 0}
			if id, ok := n.Key.(*ast.Ident); ok && id.Name != "_" {
				l.v = id.Name
				// Ranging over x bounds the key by len(x) exactly.
				l.bound = &ast.CallExpr{Fun: ast.NewIdent("len"), Args: []ast.Expr{n.X}}
			}
			out = append(out, l)
		}
		return true
	})
	return out
}

// collectBoundsGuards finds the guard idioms that teach the prove pass
// a bound before the loop: `_ = s[expr]`, `_ = s[:expr]`, and the
// self-re-slice `s = s[:expr]`. It returns the guarded operands (by
// source text) and the guard expressions themselves, which the main
// walk must not flag.
func collectBoundsGuards(body *ast.BlockStmt) (map[string]bool, map[ast.Node]bool) {
	guards := make(map[string]bool)
	nodes := make(map[ast.Node]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		lhs, lhsIsIdent := as.Lhs[0].(*ast.Ident)
		if !lhsIsIdent {
			return true
		}
		switch rhs := as.Rhs[0].(type) {
		case *ast.IndexExpr:
			if lhs.Name == "_" {
				guards[types.ExprString(rhs.X)] = true
				nodes[rhs] = true
			}
		case *ast.SliceExpr:
			if lhs.Name == "_" || lhs.Name == types.ExprString(rhs.X) {
				guards[types.ExprString(rhs.X)] = true
				nodes[rhs] = true
			}
		}
		return true
	})
	return guards, nodes
}

// collectLenDefs maps variables assigned exactly `len(x)` to the source
// text of x, so `n := len(s)` makes n an acceptable bound for s.
func collectLenDefs(body *ast.BlockStmt) map[string]string {
	defs := make(map[string]string)
	record := func(lhs, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		if call, ok := rhs.(*ast.CallExpr); ok && len(call.Args) == 1 {
			if fn, ok := call.Fun.(*ast.Ident); ok && fn.Name == "len" {
				defs[id.Name] = types.ExprString(call.Args[0])
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return defs
}

// boundImpliesLen reports whether the loop bound provably keeps indexes
// below len of the operand (by source text): len(s) itself, a variable
// defined as len(s), or len(s) minus a constant.
func boundImpliesLen(bound ast.Expr, operand string, lenDefs map[string]string) bool {
	if isLenOf(bound, operand, lenDefs) {
		return true
	}
	if b, ok := bound.(*ast.BinaryExpr); ok && b.Op == token.SUB {
		if _, isLit := b.Y.(*ast.BasicLit); isLit {
			return isLenOf(b.X, operand, lenDefs)
		}
	}
	return false
}

// isLenOf reports whether e is `len(operand)` or a variable recorded as
// holding it.
func isLenOf(e ast.Expr, operand string, lenDefs map[string]string) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if fn, ok := e.Fun.(*ast.Ident); ok && fn.Name == "len" && len(e.Args) == 1 {
			return types.ExprString(e.Args[0]) == operand
		}
	case *ast.Ident:
		return lenDefs[e.Name] == operand
	}
	return false
}

func isMapIndex(ti *TypeInfo, n *ast.IndexExpr) bool {
	tv, ok := ti.Info.Types[n.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isArrayOperand(ti *TypeInfo, e ast.Expr) bool {
	tv, ok := ti.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type.Underlying()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem().Underlying()
	}
	_, isArray := t.(*types.Array)
	return isArray
}

func isConstExpr(ti *TypeInfo, e ast.Expr) bool {
	if tv, ok := ti.Info.Types[e]; ok && tv.Value != nil {
		return true
	}
	_, isLit := e.(*ast.BasicLit)
	return isLit
}

func constInt(ti *TypeInfo, e ast.Expr) (int64, bool) {
	if tv, ok := ti.Info.Types[e]; ok && tv.Value != nil {
		if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
			return v, true
		}
	}
	if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.INT {
		if v, err := strconv.ParseInt(lit.Value, 0, 64); err == nil {
			return v, true
		}
	}
	return 0, false
}
