package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

func TestLockOrderEnforcesGuardedFields(t *testing.T) {
	analysistest.Run(t, analysis.LockOrder,
		analysistest.Pkg{Dir: "lockorder", Path: analysistest.ModulePath + "/internal/core"})
}
