package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader
// needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	Module       *struct{ Path string }
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load resolves the given package patterns with the go tool, parses
// every matched package (including its test files), and returns the
// whole program. It is the standalone-multichecker loader; the vet
// protocol path (unitchecker.go) builds its Program from the vet
// config instead.
func Load(fset *token.FileSet, dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	prog := &Program{Packages: make(map[string]*Package)}
	dec := json.NewDecoder(&stdout)
	for dec.More() {
		var lp listedPackage
		if err := dec.Decode(&lp); err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if lp.Module != nil && prog.ModulePath == "" {
			prog.ModulePath = lp.Module.Path
		}
		pkg := &Package{Path: lp.ImportPath, Name: lp.Name, Dir: lp.Dir, Generated: make(map[string]bool)}
		for _, group := range [][]string{lp.GoFiles, lp.CgoFiles} {
			for _, name := range group {
				path := filepath.Join(lp.Dir, name)
				f, err := parseOne(fset, path)
				if err != nil {
					return nil, err
				}
				if ast.IsGenerated(f) {
					pkg.Generated[path] = true
				}
				pkg.Files = append(pkg.Files, f)
			}
		}
		for _, group := range [][]string{lp.TestGoFiles, lp.XTestGoFiles} {
			for _, name := range group {
				path := filepath.Join(lp.Dir, name)
				f, err := parseOne(fset, path)
				if err != nil {
					return nil, err
				}
				if ast.IsGenerated(f) {
					pkg.Generated[path] = true
				}
				pkg.TestFiles = append(pkg.TestFiles, f)
			}
		}
		prog.Packages[lp.ImportPath] = pkg
	}
	return prog, nil
}

func parseOne(fset *token.FileSet, path string) (*ast.File, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	return f, nil
}
