package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

func TestCtxFlowFiresInScanPackages(t *testing.T) {
	analysistest.Run(t, analysis.CtxFlow,
		analysistest.Pkg{Dir: "ctxflow/bad", Path: analysistest.ModulePath + "/internal/core"})
}

func TestCtxFlowAcceptsPropagation(t *testing.T) {
	analysistest.Run(t, analysis.CtxFlow,
		analysistest.Pkg{Dir: "ctxflow/ok", Path: analysistest.ModulePath + "/internal/hscan"})
}

func TestCtxFlowSilentOutsideScanPackages(t *testing.T) {
	analysistest.Run(t, analysis.CtxFlow,
		analysistest.Pkg{Dir: "ctxflow/okother", Path: analysistest.ModulePath + "/internal/report"})
}
