package analysis

import (
	"go/ast"
)

// CtxFlow keeps the scan pipeline's cancellation plumbing intact in the
// packages that carry it (internal/core, internal/hscan,
// internal/casoffinder). A context.Context handed to these layers must
// flow through them — a function that accepts a ctx and then ignores it
// or substitutes a fresh one silently severs cancellation for
// everything beneath, which is exactly the regression that turns a
// Ctrl-C'd genome scan back into an unkillable process.
//
// Two rules, both syntactic and per-function:
//
//  1. an exported function that takes a context.Context parameter must
//     reference that parameter in its body (propagate it, or check
//     Done/Err) — and must bind it to a name, not discard it with _;
//  2. any function that has a ctx parameter in scope must not call
//     context.Background() or context.TODO() (including inside nested
//     function literals).
//
// Ctx-less compatibility wrappers (core.Search, Engine.ScanChrom) are
// the sanctioned entry points for a background context: they take no
// ctx, so neither rule applies to them.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "ctx-taking functions in core/hscan/casoffinder must propagate their " +
		"context.Context and never substitute context.Background()/TODO()",
	Run: runCtxFlow,
}

// ctxFlowPkgSuffixes names the gated packages.
var ctxFlowPkgSuffixes = []string{"internal/core", "internal/hscan", "internal/casoffinder"}

func runCtxFlow(pass *Pass) error {
	gated := false
	for _, suffix := range ctxFlowPkgSuffixes {
		if pass.InModulePackage(suffix) {
			gated = true
			break
		}
	}
	if !gated {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFunc(pass, fd)
		}
	}
	return nil
}

// ctxParamNames returns the names bound to context.Context parameters
// of fd, plus whether any such parameter was discarded (unnamed or _).
func ctxParamNames(fd *ast.FuncDecl) (names []string, discarded bool) {
	if fd.Type.Params == nil {
		return nil, false
	}
	for _, field := range fd.Type.Params.List {
		if !isContextType(field.Type) {
			continue
		}
		if len(field.Names) == 0 {
			discarded = true
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				discarded = true
				continue
			}
			names = append(names, name.Name)
		}
	}
	return names, discarded
}

// isContextType matches the context.Context selector syntactically.
func isContextType(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Context" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == "context"
}

// isCtxConstructor matches context.Background() / context.TODO() calls.
func isCtxConstructor(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == "context"
}

func checkCtxFunc(pass *Pass, fd *ast.FuncDecl) {
	names, discarded := ctxParamNames(fd)
	exported := fd.Name.IsExported()
	if exported && discarded {
		pass.Reportf(fd.Pos(), "exported function %s discards its context.Context parameter; bind and propagate it", fd.Name.Name)
	}
	if len(names) == 0 && !discarded {
		return
	}
	used := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			used[n.Name] = true
		case *ast.CallExpr:
			// Rule 2: a ctx is in scope in this function (possibly
			// shadowed inside a nested literal — accepted imprecision
			// for a syntactic checker).
			if isCtxConstructor(n) {
				pass.Reportf(n.Pos(), "%s manufactures a fresh context despite receiving one; propagate the caller's ctx", fd.Name.Name)
			}
		}
		return true
	})
	if !exported {
		return
	}
	// Rule 1: every named ctx parameter of an exported function must be
	// referenced somewhere in the body.
	for _, name := range names {
		if !used[name] {
			pass.Reportf(fd.Pos(), "exported function %s never uses its context.Context parameter %q; propagate it or check %s.Err()", fd.Name.Name, name, name)
		}
	}
}
