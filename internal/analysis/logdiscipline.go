package analysis

import (
	"go/ast"
	"strings"
)

// LogDiscipline keeps the library packages log-free: diagnostics are a
// process concern, so `internal/...` code must not print to the
// terminal via fmt.Print*/log.Print* (or their Fatal/Panic variants)
// or reach for os.Stderr directly. Libraries communicate failure
// through returned errors and accept an io.Writer when output is the
// point (internal/report); human- and machine-readable logging lives
// in cmd/ on log/slog, where -log-format and -log-level govern it.
// Test files are exempt (t.Log exists, but fixtures sometimes print),
// and so is everything outside internal/. Escape hatch:
// //crisprlint:allow logdiscipline.
var LogDiscipline = &Analyzer{
	Name: "logdiscipline",
	Doc: "internal/... library packages must not write diagnostics to the " +
		"terminal (fmt.Print*, log print family, os.Stderr); return errors " +
		"or take an io.Writer, and leave process logging to cmd/ via slog",
	Run: runLogDiscipline,
}

// logPrintFuncs is the forbidden print-family surface per package.
var logPrintFuncs = map[string]map[string]bool{
	"fmt": {"Print": true, "Printf": true, "Println": true},
	"log": {
		"Print": true, "Printf": true, "Println": true,
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
}

func runLogDiscipline(pass *Pass) error {
	if !inInternalLibrary(pass) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		// Only flag uses where the identifier really is the stdlib
		// package, not a shadowing local: the file must import it
		// unrenamed (same approach as clockguard).
		stdlib := map[string]bool{
			"fmt": importsUnrenamed(f, "fmt"),
			"log": importsUnrenamed(f, "log"),
			"os":  importsUnrenamed(f, "os"),
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || !stdlib[x.Name] {
				return true
			}
			switch x.Name {
			case "fmt", "log":
				if logPrintFuncs[x.Name][sel.Sel.Name] {
					pass.Reportf(sel.Pos(), "%s.%s in library package %s: return an error or take an io.Writer; process logging belongs in cmd/ via slog",
						x.Name, sel.Sel.Name, pass.Pkg.Name)
				}
			case "os":
				if sel.Sel.Name == "Stderr" {
					pass.Reportf(sel.Pos(), "os.Stderr in library package %s: libraries must not claim the terminal; accept an io.Writer or return an error",
						pass.Pkg.Name)
				}
			}
			return true
		})
	}
	return nil
}

// inInternalLibrary reports whether the analyzed package sits under the
// module's internal/ tree (the library packages the rule governs).
// cmd/, the public root package, and fixture paths outside internal/
// are exempt.
func inInternalLibrary(pass *Pass) bool {
	path := pass.Pkg.Path
	if pass.Program != nil && pass.Program.ModulePath != "" {
		mod := pass.Program.ModulePath
		if !strings.HasPrefix(path, mod+"/") {
			return false
		}
		path = strings.TrimPrefix(path, mod+"/")
	}
	return path == "internal" || strings.HasPrefix(path, "internal/") ||
		strings.Contains(path, "/internal/")
}

// importsUnrenamed reports whether f imports the given stdlib path
// without a rename (so a bare `fmt` identifier resolves to it).
func importsUnrenamed(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path && imp.Name == nil {
			return true
		}
	}
	return false
}
