package analysis

// Tests for the vet-protocol driver and the interprocedural tier's
// fact serialization: EncodeFacts must round-trip through the .vetx
// file into importedFact lookups (that is the only channel
// cross-package conclusions survive per-package vet runs), and
// RunVetUnit must both report findings and write a well-formed facts
// file.

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// progFromSource builds a one-package Program from in-memory source.
func progFromSource(t *testing.T, path, src string) (*token.FileSet, *Program, *Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, strings.ReplaceAll(path, "/", "_")+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &Package{Path: path, Name: f.Name.Name, Files: []*ast.File{f}}
	prog := &Program{ModulePath: "example.com/m", Packages: map[string]*Package{path: pkg}}
	return fset, prog, pkg
}

func TestFactsRoundTripThroughVetxFile(t *testing.T) {
	const depSrc = `package dep

import "sync"

var MuA sync.Mutex
var MuB sync.Mutex

// Spin never returns.
func Spin() {
	for {
	}
}

// Nested acquires MuB while holding MuA: a lock edge.
func Nested() {
	MuA.Lock()
	MuB.Lock()
	MuB.Unlock()
	MuA.Unlock()
}

// Returns is an ordinary function: zero fact, omitted from the file.
func Returns() {}
`
	fset, prog, pkg := progFromSource(t, "example.com/m/dep", depSrc)
	data, err := EncodeFacts(fset, prog, pkg)
	if err != nil {
		t.Fatalf("EncodeFacts: %v", err)
	}

	// The wire shape is versioned JSON with only non-zero facts.
	var pf PackageFacts
	if err := json.Unmarshal(data, &pf); err != nil {
		t.Fatalf("facts are not valid JSON: %v\n%s", err, data)
	}
	if pf.Version != factsVersion {
		t.Errorf("facts version = %d, want %d", pf.Version, factsVersion)
	}
	if !pf.Funcs["example.com/m/dep.Spin"].NoReturn {
		t.Errorf("Spin not marked NoReturn: %+v", pf.Funcs)
	}
	nested := pf.Funcs["example.com/m/dep.Nested"]
	wantEdge := [2]string{"example.com/m/dep.MuA", "example.com/m/dep.MuB"}
	if len(nested.LockEdges) != 1 || nested.LockEdges[0] != wantEdge {
		t.Errorf("Nested.LockEdges = %v, want [%v]", nested.LockEdges, wantEdge)
	}
	if _, present := pf.Funcs["example.com/m/dep.Returns"]; present {
		t.Errorf("zero fact for Returns serialized; the file should omit it")
	}

	// Round-trip: a consumer call graph that has no dep sources, only
	// the fact file, must reach the same conclusions through
	// importedFact.
	vetx := filepath.Join(t.TempDir(), "dep.vetx")
	if err := os.WriteFile(vetx, data, 0o666); err != nil {
		t.Fatal(err)
	}
	consumer := &callGraph{
		nodes:     map[string]*cgNode{},
		factFiles: map[string]string{"example.com/m/dep": vetx},
		facts:     map[string]*PackageFacts{},
	}
	if !consumer.noReturnOf("example.com/m/dep.Spin") {
		t.Errorf("noReturnOf(Spin) = false through the fact file, want true")
	}
	if consumer.noReturnOf("example.com/m/dep.Returns") {
		t.Errorf("noReturnOf(Returns) = true through the fact file, want false")
	}
	acq := consumer.acquiresOf("example.com/m/dep.Nested")
	if !acq["example.com/m/dep.MuA"] || !acq["example.com/m/dep.MuB"] {
		t.Errorf("acquiresOf(Nested) = %v, want both mutexes", acq)
	}
	edges := consumer.moduleLockEdges()
	found := false
	for _, e := range edges {
		if e.held == wantEdge[0] && e.acquired == wantEdge[1] {
			found = true
		}
	}
	if !found {
		t.Errorf("moduleLockEdges through the fact file = %v, want the MuA→MuB edge", edges)
	}

	// A corrupt or version-skewed file degrades to no facts, not noise.
	if err := os.WriteFile(vetx, []byte(`{"version":999,"funcs":{}}`), 0o666); err != nil {
		t.Fatal(err)
	}
	stale := &callGraph{
		nodes:     map[string]*cgNode{},
		factFiles: map[string]string{"example.com/m/dep": vetx},
		facts:     map[string]*PackageFacts{},
	}
	if stale.noReturnOf("example.com/m/dep.Spin") {
		t.Errorf("version-skewed fact file was trusted")
	}
}

// TestRunVetUnitWritesFactsAndReports drives the whole vet-protocol
// entry point on a synthetic config: findings go to the writer, the
// exit count reflects them, and the VetxOutput file carries the
// package's serialized facts.
func TestRunVetUnitWritesFactsAndReports(t *testing.T) {
	dir := t.TempDir()
	src := `package leaky

func spin() {
	for {
	}
}

func launch() {
	go spin()
}
`
	srcPath := filepath.Join(dir, "leaky.go")
	if err := os.WriteFile(srcPath, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "leaky.vetx")
	cfg := VetConfig{
		ID:         "example.com/m/leaky",
		Dir:        dir,
		ImportPath: "example.com/m/leaky",
		GoFiles:    []string{srcPath},
		ModulePath: "example.com/m",
		VetxOutput: vetx,
	}
	cfgData, err := json.Marshal(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath := filepath.Join(dir, "leaky.cfg")
	if err := os.WriteFile(cfgPath, cfgData, 0o666); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	n, err := RunVetUnit(cfgPath, &out)
	if err != nil {
		t.Fatalf("RunVetUnit: %v", err)
	}
	if n == 0 || !strings.Contains(out.String(), "goroutineleak") {
		t.Errorf("expected a goroutineleak finding, got %d finding(s):\n%s", n, out.String())
	}

	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
	var pf PackageFacts
	if err := json.Unmarshal(data, &pf); err != nil {
		t.Fatalf("facts file is not valid JSON: %v\n%s", err, data)
	}
	if !pf.Funcs["example.com/m/leaky.spin"].NoReturn {
		t.Errorf("spin not marked NoReturn in the facts file: %+v", pf.Funcs)
	}
}
