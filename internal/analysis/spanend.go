package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SpanEnd enforces the tracing seam's close discipline: every method in
// internal/metrics that opens a span or phase returns an end function
// (func()) that must run, or the span stays open forever — it never
// reaches the flight recorder's tree as a closed interval, phase
// accounting under-reports, and the Chrome export shows the span
// covering the rest of the process. Three rules, per function body
// (function literals are checked independently):
//
//   - a call whose end function is discarded — as a bare statement,
//     assigned to the blank identifier, or evaluated by a defer/go
//     statement directly (defer runs the START at exit and drops the
//     end) — is reported at the call;
//   - an end function bound to a local variable must be called, or
//     deferred, on every control-flow path to the function's exit
//     (forward may-analysis over the CFG: a surviving "pending" fact at
//     exit means some path leaks the span);
//   - an end function that escapes — returned, passed as an argument,
//     stored in a field or another variable, or captured by a closure —
//     transfers the obligation and is exempt (the jobTrace.queueEnd
//     hand-off in scanserve is the motivating shape).
//
// Immediate invocation (`tracer.StartSpan("x")()`) and the idiomatic
// `defer rec.StartPhase(p)()` satisfy the discipline trivially. Test
// files are exempt: span tests deliberately leave spans open to pin the
// open-span rendering.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: "every end function returned by the metrics span/phase starters (StartSpan, " +
		"StartChild, StartPhase, StartChunk, TraceSpan) is called or deferred on all " +
		"paths, unless it escapes to a caller",
	Run: runSpanEnd,
}

// spanStartMethods is the tracked method set. Membership is necessary
// but not sufficient: the receiver must come from internal/metrics and
// the signature's last result must be a plain func(), so same-named
// methods elsewhere stay invisible.
var spanStartMethods = map[string]bool{
	"StartSpan":  true,
	"StartChild": true,
	"StartPhase": true,
	"StartChunk": true,
	"TraceSpan":  true,
}

func runSpanEnd(pass *Pass) error {
	ti := pass.Types()
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanBody(pass, ti, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkSpanBody(pass, ti, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// spanStartCall reports whether call is a tracked span/phase starter,
// returning a printable label and the index of the end function among
// the call's results.
func spanStartCall(ti *TypeInfo, call *ast.CallExpr) (label string, endIndex int, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || !spanStartMethods[sel.Sel.Name] {
		return "", 0, false
	}
	var obj types.Object
	if s, found := ti.Info.Selections[sel]; found {
		obj = s.Obj()
	} else if u, found := ti.Info.Uses[sel.Sel]; found {
		obj = u
	}
	fn, isFunc := obj.(*types.Func)
	if !isFunc || fn.Pkg() == nil || !strings.HasSuffix(fn.Pkg().Path(), "internal/metrics") {
		return "", 0, false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Results().Len() == 0 {
		return "", 0, false
	}
	last := sig.Results().Len() - 1
	fsig, isEndSig := sig.Results().At(last).Type().Underlying().(*types.Signature)
	if !isEndSig || fsig.Params().Len() != 0 || fsig.Results().Len() != 0 {
		return "", 0, false
	}
	return types.ExprString(sel), last, true
}

// spanCandidate is one end function bound to a local variable.
type spanCandidate struct {
	obj    types.Object
	def    *ast.Ident      // the binding occurrence on the assignment's LHS
	assign *ast.AssignStmt // the defining assignment (the gen site)
	call   *ast.CallExpr
	label  string
	key    string
}

func checkSpanBody(pass *Pass, ti *TypeInfo, body *ast.BlockStmt) {
	// Nested literal spans: candidate uses inside them are captures
	// (escape), and their own statements are checked separately.
	var litRanges [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			litRanges = append(litRanges, [2]token.Pos{lit.Pos(), lit.End()})
			return false
		}
		return true
	})

	// Pass 1: statement shapes — immediate discards and candidate
	// bindings.
	var cands []*spanCandidate
	spanStmtWalk(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if label, _, ok := spanStartCall(ti, call); ok {
					pass.Reportf(call.Pos(), "result of %s is discarded: the returned end function must be called (or deferred) to close the span", label)
				}
			}
		case *ast.DeferStmt:
			if label, _, ok := spanStartCall(ti, n.Call); ok {
				pass.Reportf(n.Call.Pos(), "defer evaluates %s at function exit and discards its end function: write `defer %s(...)()` to open the span now and close it at exit", label, label)
			}
		case *ast.GoStmt:
			if label, _, ok := spanStartCall(ti, n.Call); ok {
				pass.Reportf(n.Call.Pos(), "result of %s is discarded: the returned end function must be called (or deferred) to close the span", label)
			}
		case *ast.AssignStmt:
			collectSpanBindings(pass, ti, n, &cands)
		}
	})
	if len(cands) == 0 {
		return
	}

	// Pass 2: escape — any use of the variable other than calling it
	// transfers the close obligation out of this function.
	confined := cands[:0]
	for _, c := range cands {
		if !spanEndEscapes(ti, body, c, litRanges) {
			confined = append(confined, c)
		}
	}
	if len(confined) == 0 {
		return
	}

	// Pass 3: may-analysis — a "pending" fact that reaches the exit
	// block means some path neither calls nor defers the end function.
	cfg := buildCFG(body)
	genKill := func(n ast.Node, facts map[string]bool) {
		spanLeafWalk(n, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, c := range confined {
					if c.assign == n {
						facts[c.key] = true
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if obj := ti.Info.Uses[id]; obj != nil {
						delete(facts, objKey(pass.Fset, obj))
					}
				}
			}
		})
	}
	_, exitIn := cfg.mayHold(genKill)
	for _, c := range confined {
		if exitIn[c.key] {
			pass.Reportf(c.def.Pos(), "%s's end function %s is not called (or deferred) on every path to the function's exit: the span may never close", c.label, c.def.Name)
		}
	}
}

// collectSpanBindings extracts end-function bindings (and blank-ident
// discards) from one assignment.
func collectSpanBindings(pass *Pass, ti *TypeInfo, n *ast.AssignStmt, cands *[]*spanCandidate) {
	bind := func(call *ast.CallExpr, label string, lhs ast.Expr) {
		id, isIdent := lhs.(*ast.Ident)
		if !isIdent {
			return // field or index store: the end function escapes
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "result of %s is discarded: the returned end function must be called (or deferred) to close the span", label)
			return
		}
		obj := ti.Info.Defs[id]
		if obj == nil {
			obj = ti.Info.Uses[id]
		}
		if obj == nil {
			return
		}
		*cands = append(*cands, &spanCandidate{
			obj: obj, def: id, assign: n, call: call, label: label,
			key: objKey(pass.Fset, obj),
		})
	}
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// Multi-value form: sp, end := tracer.StartChild("x").
		call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		label, endIndex, ok := spanStartCall(ti, call)
		if !ok || endIndex >= len(n.Lhs) {
			return
		}
		bind(call, label, n.Lhs[endIndex])
		return
	}
	for i, rhs := range n.Rhs {
		if i >= len(n.Lhs) {
			break
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if label, _, ok := spanStartCall(ti, call); ok {
			bind(call, label, n.Lhs[i])
		}
	}
}

// spanEndEscapes reports whether the candidate's variable has any use
// beyond its binding and direct calls: captures by nested literals,
// arguments, returns, stores, and reassignments all count.
func spanEndEscapes(ti *TypeInfo, body *ast.BlockStmt, c *spanCandidate, litRanges [][2]token.Pos) bool {
	// Idents appearing as the operand of a direct call are benign.
	benign := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				benign[id] = true
			}
		}
		return true
	})
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || id == c.def {
			return true
		}
		obj := ti.Info.Uses[id]
		if obj == nil {
			obj = ti.Info.Defs[id]
		}
		if obj != c.obj {
			return true
		}
		if inAnyRange(litRanges, id.Pos()) || !benign[id] {
			escapes = true
		}
		return true
	})
	return escapes
}

// spanStmtWalk visits body's nodes, skipping nested function literals
// (their spans are their own responsibility).
func spanStmtWalk(body *ast.BlockStmt, visit func(n ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// spanLeafWalk visits a CFG leaf's nodes, skipping nested function
// literals.
func spanLeafWalk(n ast.Node, visit func(n ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}
