package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

const (
	corePath = analysistest.ModulePath + "/internal/core"
	rootPath = analysistest.ModulePath
)

func TestEngineRegFiresOnRegistryDrift(t *testing.T) {
	analysistest.Run(t, analysis.EngineReg,
		analysistest.Pkg{Dir: "enginereg/bad_core", Path: corePath})
}

func TestEngineRegFiresOnMissingReexport(t *testing.T) {
	analysistest.Run(t, analysis.EngineReg,
		analysistest.Pkg{Dir: "enginereg/ok_core", Path: corePath},
		analysistest.Pkg{Dir: "enginereg/bad_root", Path: rootPath})
}

func TestEngineRegSilentOnConformingRegistry(t *testing.T) {
	analysistest.Run(t, analysis.EngineReg,
		analysistest.Pkg{Dir: "enginereg/ok_core", Path: corePath},
		analysistest.Pkg{Dir: "enginereg/ok_root", Path: rootPath})
}
