package analysis

import (
	"go/ast"
	"go/types"
)

// WaitSync enforces the sync.WaitGroup protocol around goroutine
// pools:
//
//   - Add before go: wg.Add inside a go-spawned function literal races
//     with the matching wg.Wait — the counter may still be zero when
//     Wait runs, so Wait returns before the pool has even started. The
//     Add must execute in the spawning goroutine, before the `go`
//     statement.
//   - Done on every path: a spawned goroutine that calls wg.Done must
//     reach a Done (deferred or direct) on every control path to its
//     exit; a path that returns early without Done leaves Wait blocked
//     forever. Checked as a forward must-analysis over the body's CFG
//     (a `defer wg.Done()` generates the fact at its registration
//     point, matching runtime semantics: every return after the defer
//     statement runs it, a return before it does not).
//   - No self-wait: wg.Wait inside a goroutine that also calls wg.Done
//     on the same group waits on itself — the count can never reach
//     zero while the waiter's own Done is still pending.
//
// WaitGroups are recognized by type (sync.WaitGroup, by value or
// pointer) and tracked by printed receiver expression, the same
// identity scheme lockorder uses for mutexes.
//
// Test files are exempt: table-driven tests wrap Add/Done in helpers
// that this per-body analysis cannot follow.
var WaitSync = &Analyzer{
	Name: "waitsync",
	Doc: "sync.WaitGroup discipline: Add before the go statement (never inside the " +
		"spawned goroutine), Done reachable on every path of a goroutine that uses it, " +
		"and no Wait inside a goroutine that Dones the same group",
	Run: runWaitSync,
}

// waitCall decomposes call as a wg.Add/Done/Wait method call on a
// sync.WaitGroup receiver. key is the printed receiver expression.
func waitCall(ti *TypeInfo, call *ast.CallExpr) (key, kind string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Add", "Done", "Wait":
		kind = sel.Sel.Name
	default:
		return "", "", false
	}
	tv, found := ti.Info.Types[sel.X]
	if !found {
		return "", "", false
	}
	t := tv.Type
	if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Name() != "WaitGroup" || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), kind, true
}

func runWaitSync(pass *Pass) error {
	ti := pass.Types()
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutineWaitSync(pass, ti, lit.Body)
			return true
		})
	}
	return nil
}

// checkGoroutineWaitSync applies all three rules to one go-spawned
// function literal body. Nested literals are skipped (their WaitGroup
// context is their own; nested `go` statements are found by the outer
// Inspect).
func checkGoroutineWaitSync(pass *Pass, ti *TypeInfo, body *ast.BlockStmt) {
	// Inventory: which groups are Added, Done'd, Waited inside the body.
	dones := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		key, kind, ok := waitCall(ti, call)
		if !ok {
			return true
		}
		switch kind {
		case "Add":
			pass.Reportf(call.Pos(), "%s.Add inside the spawned goroutine races with %s.Wait: "+
				"the counter may still be zero when Wait runs — call Add before the go statement", key, key)
		case "Done":
			dones[key] = true
		}
		return true
	})
	// Self-wait: Wait on a group this same goroutine Dones.
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if key, kind, ok := waitCall(ti, call); ok && kind == "Wait" && dones[key] {
			pass.Reportf(call.Pos(), "%s.Wait inside a goroutine that calls %s.Done waits on itself: "+
				"the counter cannot reach zero while this goroutine's own Done is pending", key, key)
		}
		return true
	})
	if len(dones) == 0 {
		return
	}
	// Done on every path: must-analysis with facts "done:<key>".
	universe := make(map[string]bool)
	for key := range dones {
		universe["done:"+key] = true
	}
	cfg := buildCFG(body)
	genKill := func(n ast.Node, have map[string]bool) {
		// Deferred Done counts as gen at its registration point, so
		// walkLeaf must NOT skip defers here.
		walkLeaf(n, false, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, kind, ok := waitCall(ti, call); ok && kind == "Done" {
					have["done:"+key] = true
				}
			}
			return true
		})
	}
	_, exitIn := cfg.mustHeld(universe, genKill)
	for key := range dones {
		if !exitIn["done:"+key] {
			pass.Reportf(body.Pos(), "goroutine calls %s.Done but some path to its exit skips it, leaving %s.Wait "+
				"blocked forever: defer the Done as the first statement", key, key)
		}
	}
}
