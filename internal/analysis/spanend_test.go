package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, analysis.SpanEnd,
		analysistest.Pkg{Dir: "spanend", Path: analysistest.ModulePath + "/internal/spanendfix"})
}
