package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

func TestLoopInvariantFixture(t *testing.T) {
	analysistest.Run(t, analysis.LoopInvariant,
		analysistest.Pkg{Dir: "loopinvariant", Path: analysistest.ModulePath + "/internal/lifix"})
}
