package analysis

import (
	"go/ast"
	"sort"
	"strings"
)

// EngineReg enforces engine-registry parity, the static half of the
// paper's "all engines return the identical site set" contract:
//
//   - every core.EngineKind constant must appear in core.AllEngines;
//   - every core.EngineKind constant must be dispatchable: it must
//     appear as a switch case inside core.NewEngine;
//   - every AllEngines entry must be a declared EngineKind constant;
//   - the core test suite must contain a Test function that ranges over
//     AllEngines (the cross-engine parity matrix), so a new engine is
//     automatically pulled into the differential gate;
//   - the public crisprscan package must re-export every EngineKind
//     constant (whole-program mode only; skipped under `go vet`, which
//     analyzes one package at a time).
var EngineReg = &Analyzer{
	Name: "enginereg",
	Doc: "every core.EngineKind must be listed in AllEngines, dispatched by NewEngine, " +
		"exercised by a Test ranging over AllEngines, and re-exported by the public API",
	Run: runEngineReg,
}

const corePkgSuffix = "internal/core"

func runEngineReg(pass *Pass) error {
	if pass.InModulePackage(corePkgSuffix) {
		checkCoreRegistry(pass)
	}
	if pass.InModulePackage("") {
		checkPublicReexports(pass)
	}
	return nil
}

// engineConsts collects the declared EngineKind constant names of the
// core package files, in declaration order.
func engineConsts(files []*ast.File) []*ast.Ident {
	var out []*ast.Ident
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok.String() != "const" {
				continue
			}
			// Within one const block an omitted type carries the
			// previous spec's type forward only together with an
			// omitted value; EngineKind specs all carry values, so we
			// track the explicit type per spec but tolerate carry.
			carry := false
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				isKind := carry && vs.Type == nil && len(vs.Values) == 0
				if id, ok := vs.Type.(*ast.Ident); ok && id.Name == "EngineKind" {
					isKind = true
				}
				carry = isKind
				if !isKind {
					continue
				}
				out = append(out, vs.Names...)
			}
		}
	}
	return out
}

func checkCoreRegistry(pass *Pass) {
	consts := engineConsts(pass.Pkg.Files)
	if len(consts) == 0 {
		return // not the registry-bearing package variant
	}
	constSet := make(map[string]bool, len(consts))
	for _, id := range consts {
		constSet[id.Name] = true
	}

	// AllEngines membership.
	listed := make(map[string]bool)
	var allEnginesDecl *ast.ValueSpec
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "AllEngines" || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					allEnginesDecl = vs
					for _, elt := range cl.Elts {
						if id, ok := elt.(*ast.Ident); ok {
							listed[id.Name] = true
							if !constSet[id.Name] {
								pass.Reportf(id.Pos(), "AllEngines entry %s is not a declared EngineKind constant", id.Name)
							}
						}
					}
				}
			}
		}
	}
	if allEnginesDecl == nil {
		pass.Reportf(pass.Pkg.Files[0].Package, "package %s declares EngineKind constants but no AllEngines registry", pass.Pkg.Name)
		return
	}

	// NewEngine dispatch coverage.
	dispatched := make(map[string]bool)
	var newEngine *ast.FuncDecl
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "NewEngine" && fd.Recv == nil {
				newEngine = fd
			}
		}
	}
	if newEngine == nil {
		pass.Reportf(allEnginesDecl.Pos(), "package %s has no NewEngine dispatcher for the engine registry", pass.Pkg.Name)
	} else {
		ast.Inspect(newEngine, func(n ast.Node) bool {
			cc, ok := n.(*ast.CaseClause)
			if !ok {
				return true
			}
			for _, expr := range cc.List {
				if id, ok := expr.(*ast.Ident); ok {
					dispatched[id.Name] = true
				}
			}
			return true
		})
	}

	for _, id := range consts {
		if !listed[id.Name] {
			pass.Reportf(id.Pos(), "EngineKind constant %s is missing from AllEngines", id.Name)
		}
		if newEngine != nil && !dispatched[id.Name] {
			pass.Reportf(id.Pos(), "EngineKind constant %s is not dispatched by NewEngine", id.Name)
		}
	}

	// Parity-matrix coverage: some Test function must range over
	// AllEngines. Only checkable when the pass carries test files.
	if len(pass.Pkg.TestFiles) == 0 {
		return
	}
	if !hasTestRangingOverAllEngines(pass.Pkg.TestFiles) {
		pass.Reportf(allEnginesDecl.Pos(), "no Test function ranges over AllEngines: the cross-engine parity matrix does not cover the registry")
	}
}

func hasTestRangingOverAllEngines(files []*ast.File) bool {
	found := false
	inspect(files, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok {
			return true
		}
		if !strings.HasPrefix(fd.Name.Name, "Test") {
			return false
		}
		ast.Inspect(fd, func(m ast.Node) bool {
			rs, ok := m.(*ast.RangeStmt)
			if !ok {
				return true
			}
			switch x := rs.X.(type) {
			case *ast.Ident:
				if x.Name == "AllEngines" {
					found = true
				}
			case *ast.SelectorExpr:
				if x.Sel.Name == "AllEngines" {
					found = true
				}
			}
			return true
		})
		return false
	})
	return found
}

// checkPublicReexports verifies that the module-root package re-exports
// every EngineKind constant as `Name = core.Name`.
func checkPublicReexports(pass *Pass) {
	if pass.Program == nil {
		return
	}
	var core *Package
	for path, pkg := range pass.Program.Packages {
		if strings.HasSuffix(path, "/"+corePkgSuffix) {
			core = pkg
		}
	}
	if core == nil {
		return // per-package driver: cross-package check unavailable
	}
	want := engineConsts(core.Files)
	if len(want) == 0 {
		return
	}

	reexported := make(map[string]bool)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok.String() != "const" {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i >= len(vs.Values) {
						continue
					}
					sel, ok := vs.Values[i].(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if x, ok := sel.X.(*ast.Ident); ok && x.Name == core.Name && sel.Sel.Name == name.Name {
						reexported[name.Name] = true
					}
				}
			}
		}
	}

	var missing []string
	for _, id := range want {
		if !reexported[id.Name] {
			missing = append(missing, id.Name)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pos := pass.Pkg.Files[0].Package
		pass.Reportf(pos, "public package %s does not re-export engine kind(s) %s from %s",
			pass.Pkg.Name, strings.Join(missing, ", "), core.Path)
	}
}
