package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// HotPath enforces allocation-freedom in the scan kernels. A function
// (declaration or literal) is opted in with a directive comment
//
//	//crisprlint:hotpath
//
// in its doc comment or on the line immediately above it. Inside such a
// function every heap-allocating construct is flagged: make/new,
// pointer, map and slice composite literals, append into a slice that
// is not provably preallocated in the same function, defer, closures,
// goroutine launches, string concatenation, string<->[]byte
// conversions, and (the type-aware part) interface boxing at call
// arguments and assignments. The message distinguishes per-iteration
// allocations (inside a loop body) from per-invocation ones — hotpath
// functions are the worker pool's repeated unit, so both matter.
//
// Conversions the gc compiler provably elides are exempt rather than
// pushed through //crisprlint:allow: a map-lookup key m[string(b)], a
// comparison or switch-tag operand, a range-over-conversion header,
// and len/cap of a conversion never materialize the copy, so flagging
// them would train people to ignore the analyzer. A conversion used as
// a map-STORE key is still flagged — insertion has to retain the key.
//
// The check is intentionally strict: justified allocations on cold
// sub-paths (error returns, trace-gated formatting) carry a
// //crisprlint:allow hotpath directive with the reason inline, so the
// exceptions are enumerable. cmd/allocgate is the companion gate that
// checks the same functions against the compiler's actual escape
// analysis.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "functions marked //crisprlint:hotpath (scan kernels, per-chunk closures) " +
		"must not allocate: no make/new/map/slice/pointer literals, growing append, " +
		"defer, closures, string concatenation or interface boxing",
	Run: runHotPath,
}

var hotpathRe = regexp.MustCompile(`^//crisprlint:hotpath(\s|$)`)

// HotFunc is one function opted into the hot-path contract.
type HotFunc struct {
	// Name is the function's display name; closures are the enclosing
	// declaration's name with a ".func" suffix.
	Name string
	// Pos and End span the whole function (signature through closing
	// brace).
	Pos, End token.Pos
	// Body is the function body.
	Body *ast.BlockStmt
	// Node is the *ast.FuncDecl or *ast.FuncLit.
	Node ast.Node
}

// HotFuncs returns the functions in f marked //crisprlint:hotpath.
// It is exported for cmd/allocgate, which attributes the compiler's
// escape-analysis verdicts to the same annotation set.
func HotFuncs(fset *token.FileSet, f *ast.File) []HotFunc {
	directiveLines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if hotpathRe.MatchString(c.Text) {
				directiveLines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	if len(directiveLines) == 0 {
		return nil
	}
	var out []HotFunc
	var declStack []string
	name := func() string {
		if len(declStack) == 0 {
			return "func"
		}
		return declStack[len(declStack)-1] + ".func"
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return false
			}
			declStack = append(declStack, declName(n))
			if hotMarked(fset, n, n.Doc, directiveLines) {
				out = append(out, HotFunc{Name: declName(n), Pos: n.Pos(), End: n.End(), Body: n.Body, Node: n})
			}
			ast.Inspect(n.Body, walk)
			declStack = declStack[:len(declStack)-1]
			return false
		case *ast.FuncLit:
			if hotMarked(fset, n, nil, directiveLines) {
				out = append(out, HotFunc{Name: name(), Pos: n.Pos(), End: n.End(), Body: n.Body, Node: n})
			}
			return true
		}
		return true
	}
	ast.Inspect(f, walk)
	return out
}

func declName(d *ast.FuncDecl) string {
	if d.Recv != nil && len(d.Recv.List) == 1 {
		return "(" + typeString(d.Recv.List[0].Type) + ")." + d.Name.Name
	}
	return d.Name.Name
}

func typeString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return "*" + typeString(e.X)
	case *ast.IndexExpr:
		return typeString(e.X)
	}
	return "?"
}

// hotMarked reports whether the function starting at n carries the
// directive: in its doc group, or on its own line, or the line above.
func hotMarked(fset *token.FileSet, n ast.Node, doc *ast.CommentGroup, directiveLines map[int]bool) bool {
	if doc != nil {
		for _, c := range doc.List {
			if hotpathRe.MatchString(c.Text) {
				return true
			}
		}
	}
	line := fset.Position(n.Pos()).Line
	return directiveLines[line] || directiveLines[line-1]
}

func runHotPath(pass *Pass) error {
	ti := pass.Types()
	for _, f := range pass.Pkg.Files {
		for _, hf := range HotFuncs(pass.Fset, f) {
			checkHotFunc(pass, ti, hf)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, ti *TypeInfo, hf HotFunc) {
	loops := loopRanges(hf.Node)
	site := func(pos token.Pos) string {
		if inAnyRange(loops, pos) {
			return "on every loop iteration"
		}
		return "on every invocation"
	}
	report := func(pos token.Pos, format string, args ...any) {
		msg := fmt.Sprintf(format, args...)
		pass.Reportf(pos, "hot path %s: %s %s; hoist it out of the kernel or justify with //crisprlint:allow hotpath",
			hf.Name, msg, site(pos))
	}
	prealloc := preallocatedSlices(hf.Body)
	elided := collectElidedConversions(ti, hf.Body)
	ast.Inspect(hf.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure literal allocates")
			return true // its body is still hot: keep descending
		case *ast.DeferStmt:
			report(n.Pos(), "defer allocates a frame record")
		case *ast.GoStmt:
			report(n.Pos(), "goroutine launch allocates a stack")
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					report(n.Pos(), "pointer composite literal allocates")
				}
			}
		case *ast.CompositeLit:
			if compositeAllocates(ti, n) {
				report(n.Pos(), "map/slice composite literal allocates")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringExpr(ti, n.X) {
				report(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			checkHotCall(ti, n, prealloc, elided, report)
		}
		return true
	})
}

// preallocatedSlices collects the names of slice variables the function
// provably sizes up front: assigned from a make with an explicit
// capacity, or from a make with a nonzero length.
func preallocatedSlices(body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "make" {
			return
		}
		if len(call.Args) >= 3 {
			out[id.Name] = true
		}
		if len(call.Args) == 2 {
			if lit, ok := call.Args[1].(*ast.BasicLit); !ok || lit.Value != "0" {
				out[id.Name] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

func checkHotCall(ti *TypeInfo, call *ast.CallExpr, prealloc map[string]bool, elided map[*ast.CallExpr]bool, report func(pos token.Pos, format string, args ...any)) {
	if id, ok := call.Fun.(*ast.Ident); ok && isBuiltinUse(ti, id) {
		switch id.Name {
		case "make":
			report(call.Pos(), "make allocates")
		case "new":
			report(call.Pos(), "new allocates")
		case "append":
			if len(call.Args) == 0 {
				return
			}
			switch target := call.Args[0].(type) {
			case *ast.SliceExpr:
				// append(buf[:0], ...) is explicit reuse.
			case *ast.Ident:
				if !prealloc[target.Name] {
					report(call.Pos(), "append may grow %s (not preallocated in this function)", target.Name)
				}
			default:
				report(call.Pos(), "append may grow a non-preallocated slice")
			}
		}
		return
	}
	// Explicit conversion to an interface type, or a copying
	// string<->[]byte conversion outside the compiler-elided forms.
	if tv, ok := ti.Info.Types[call.Fun]; ok && tv.IsType() {
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if argBoxes(ti, call.Args[0]) {
				report(call.Pos(), "conversion to %s boxes its operand", tv.Type)
			}
		}
		if desc := stringBytesConv(ti, call); desc != "" && !elided[call] {
			report(call.Pos(), "%s copies its operand", desc)
		}
		return
	}
	// Interface boxing at call arguments: a concrete, non-pointer-shaped
	// argument passed where the callee expects an interface allocates.
	sig := signatureOf(ti, call.Fun)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing
			}
			last := params.At(params.Len() - 1).Type()
			if s, ok := last.(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		if argBoxes(ti, arg) {
			report(arg.Pos(), "passing %s as %s boxes the value", exprTypeString(ti, arg), pt)
		}
	}
}

// isBuiltinUse reports whether id resolves to a universe builtin (or is
// unresolved, in which case the builtin names are trusted — keeps the
// analyzer useful when type information is partial).
func isBuiltinUse(ti *TypeInfo, id *ast.Ident) bool {
	if obj, ok := ti.Info.Uses[id]; ok {
		_, builtin := obj.(*types.Builtin)
		return builtin
	}
	switch id.Name {
	case "make", "new", "append":
		return true
	}
	return false
}

func signatureOf(ti *TypeInfo, fun ast.Expr) *types.Signature {
	tv, ok := ti.Info.Types[fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// argBoxes reports whether passing arg to an interface-typed slot
// allocates: the static type must be known, concrete, and not
// pointer-shaped. Constants are exempt — the compiler backs them with
// static interface data, no runtime allocation.
func argBoxes(ti *TypeInfo, arg ast.Expr) bool {
	tv, ok := ti.Info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.IsNil() || tv.Value != nil || types.IsInterface(tv.Type) {
		return false
	}
	return !pointerShaped(tv.Type)
}

func exprTypeString(ti *TypeInfo, e ast.Expr) string {
	if tv, ok := ti.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type.String()
	}
	return "value"
}

func isStringExpr(ti *TypeInfo, e ast.Expr) bool {
	tv, ok := ti.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// stringBytesConv reports whether call is a conversion between string
// and []byte (or []rune) that copies at runtime, returning a short
// description ("" if not). Constant operands are exempt: the compiler
// folds those at build time.
func stringBytesConv(ti *TypeInfo, call *ast.CallExpr) string {
	if len(call.Args) != 1 {
		return ""
	}
	ftv, ok := ti.Info.Types[call.Fun]
	if !ok || !ftv.IsType() {
		return ""
	}
	atv, ok := ti.Info.Types[call.Args[0]]
	if !ok || atv.Type == nil || atv.Value != nil {
		return ""
	}
	dst, src := ftv.Type, atv.Type
	switch {
	case isStringType(dst) && isByteOrRuneSlice(src):
		return fmt.Sprintf("conversion %s to string", src)
	case isByteOrRuneSlice(dst) && isStringType(src):
		return fmt.Sprintf("conversion string to %s", dst)
	}
	return ""
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune ||
		e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// collectElidedConversions records the string<->[]byte conversion calls
// the gc compiler elides, so checkHotCall can skip them: map-lookup
// keys (m[string(b)] reads, not stores), comparison operands, switch
// tags, range-over-conversion headers, and len/cap arguments.
func collectElidedConversions(ti *TypeInfo, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	elided := make(map[*ast.CallExpr]bool)
	mark := func(e ast.Expr) {
		if call, ok := unparen(e).(*ast.CallExpr); ok && stringBytesConv(ti, call) != "" {
			elided[call] = true
		}
	}
	// Map-store keys must be materialized; collect them first so the
	// IndexExpr pass below can skip them.
	storeKeys := make(map[ast.Expr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if ix, ok := unparen(lhs).(*ast.IndexExpr); ok {
					storeKeys[ix.Index] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if isMapIndex(ti, n) && !storeKeys[n.Index] {
				mark(n.Index)
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				mark(n.X)
				mark(n.Y)
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				mark(n.Tag)
			}
		case *ast.RangeStmt:
			mark(n.X)
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && isBuiltinUse(ti, id) &&
				(id.Name == "len" || id.Name == "cap") && len(n.Args) == 1 {
				mark(n.Args[0])
			}
		}
		return true
	})
	return elided
}

// compositeAllocates reports whether the literal builds a map or slice
// (struct and array values live on the stack unless they escape — the
// escape gate covers those).
func compositeAllocates(ti *TypeInfo, lit *ast.CompositeLit) bool {
	if tv, ok := ti.Info.Types[lit]; ok && tv.Type != nil {
		switch tv.Type.Underlying().(type) {
		case *types.Map, *types.Slice:
			return true
		}
		return false
	}
	// Syntactic fallback when the checker had no answer.
	switch t := lit.Type.(type) {
	case *ast.MapType:
		return true
	case *ast.ArrayType:
		return t.Len == nil
	}
	return false
}
