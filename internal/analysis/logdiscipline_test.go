package analysis_test

import (
	"testing"

	"github.com/cap-repro/crisprscan/internal/analysis"
	"github.com/cap-repro/crisprscan/internal/analysis/analysistest"
)

func TestLogDisciplineFiresInLibraryPackages(t *testing.T) {
	analysistest.Run(t, analysis.LogDiscipline,
		analysistest.Pkg{Dir: "logdiscipline/bad", Path: analysistest.ModulePath + "/internal/core"})
}

func TestLogDisciplineHonorsAllowAndShadowing(t *testing.T) {
	analysistest.Run(t, analysis.LogDiscipline,
		analysistest.Pkg{Dir: "logdiscipline/allowed", Path: analysistest.ModulePath + "/internal/debugdump"})
}

func TestLogDisciplineSilentInCommands(t *testing.T) {
	analysistest.Run(t, analysis.LogDiscipline,
		analysistest.Pkg{Dir: "logdiscipline/okcmd", Path: analysistest.ModulePath + "/cmd/offtarget"})
}
