package analysis

// Edge-case coverage for the per-function CFG builder: labeled
// break/continue, select with and without default, condition-less
// loops, and deferred calls inside loops. These shapes are exactly the
// ones the interprocedural termination check leans on, so each gets a
// direct regression test rather than riding along in analyzer
// fixtures.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody wraps src in a function and returns its parsed body.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", file, 0)
	if err != nil {
		t.Fatalf("parsing %q: %v", src, err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func TestExitReachableLoopAndSelectShapes(t *testing.T) {
	cases := []struct {
		name      string
		src       string
		reachable bool
	}{
		{"plain for without condition", `for { }`, false},
		{"for without condition with break", `for { break }`, true},
		{"bounded for", `for i := 0; i < 10; i++ { }`, true},
		{"range over channel", `var ch chan int; for v := range ch { _ = v }`, true},
		{"labeled break leaves the outer loop", `
outer:
	for {
		for {
			break outer
		}
	}`, true},
		{"unlabeled break only leaves the inner loop", `
	for {
		for {
			break
		}
	}`, false},
		{"labeled continue never exits", `
outer:
	for {
		for {
			continue outer
		}
	}`, false},
		{"labeled break on a switch", `
sw:
	switch {
	default:
		for {
			break sw
		}
	}`, true},
		{"empty select blocks forever", `select { }`, false},
		{"select with default falls through", `var ch chan int; select { case <-ch: default: }`, true},
		{"select without default, case returns", `
	var ch chan int
	for {
		select {
		case <-ch:
			return
		}
	}`, true},
		{"select without default, every case loops", `
	var ch chan int
	for {
		select {
		case <-ch:
		}
	}`, false},
		{"switch without default can skip every case", `
	var c bool
	for {
		switch {
		case c:
		}
		break
	}`, true},
		{"defer inside a loop is a plain leaf", `
	var mu interface{ Unlock() }
	for i := 0; i < 3; i++ {
		defer mu.Unlock()
	}`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := buildCFG(parseBody(t, tc.src))
			if got := cfg.exitReachable(nil); got != tc.reachable {
				t.Errorf("exitReachable = %v, want %v for:\n%s", got, tc.reachable, tc.src)
			}
		})
	}
}

// TestMustHeldDeferredUnlockInsideLoop pins the lockorder semantics the
// CFG feeds: a deferred Unlock registered inside the loop body does not
// release the mutex for the rest of the iteration, so the access after
// it still sees the lock held, on every path through the loop.
func TestMustHeldDeferredUnlockInsideLoop(t *testing.T) {
	body := parseBody(t, `
	var x int
	for i := 0; i < 3; i++ {
		mu.Lock()
		defer mu.Unlock()
		x++
	}
	_ = x`)
	cfg := buildCFG(body)
	universe := map[string]bool{"mu": true}
	genKill := func(n ast.Node, held map[string]bool) {
		walkLeaf(n, true, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if key, acquire, ok := lockCall(call); ok {
					if acquire {
						held[key] = true
					} else {
						delete(held, key)
					}
				}
			}
			return true
		})
	}
	visit, exitIn := cfg.mustHeld(universe, genKill)
	sawInc := false
	visit(func(n ast.Node, held map[string]bool) {
		walkLeaf(n, false, func(n ast.Node) bool {
			if _, ok := n.(*ast.IncDecStmt); ok {
				sawInc = true
				if !held["mu"] {
					t.Errorf("x++ after `defer mu.Unlock()`: mu not held, but a deferred unlock must not release it mid-iteration")
				}
			}
			return true
		})
	})
	if !sawInc {
		t.Fatal("never visited the x++ statement")
	}
	// The loop may execute zero times, so nothing is guaranteed held at
	// exit (and the deferred unlocks have run by then anyway).
	if exitIn["mu"] {
		t.Errorf("mu must-held at exit, but the zero-iteration path never locks it")
	}
}

// TestMayHoldVersusMustHeldAtJoin pins the join semantics the two
// dataflow duals disagree on: a fact generated on one branch of an if
// survives the join under may-analysis and dies under must-analysis.
func TestMayHoldVersusMustHeldAtJoin(t *testing.T) {
	body := parseBody(t, `
	var c bool
	if c {
		gen()
	}
	after()`)
	cfg := buildCFG(body)

	isCallTo := func(n ast.Node, name string) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
	genKill := func(n ast.Node, facts map[string]bool) {
		ast.Inspect(n, func(n ast.Node) bool {
			if isCallTo(n, "gen") {
				facts["f"] = true
			}
			return true
		})
	}

	var mayAtAfter, mustAtAfter *bool
	record := func(dst **bool) func(n ast.Node, facts map[string]bool) {
		return func(n ast.Node, facts map[string]bool) {
			ast.Inspect(n, func(n ast.Node) bool {
				if isCallTo(n, "after") {
					v := facts["f"]
					*dst = &v
				}
				return true
			})
		}
	}
	mayVisit, _ := cfg.mayHold(genKill)
	mayVisit(record(&mayAtAfter))
	mustVisit, _ := cfg.mustHeld(map[string]bool{"f": true}, genKill)
	mustVisit(record(&mustAtAfter))

	if mayAtAfter == nil || mustAtAfter == nil {
		t.Fatal("never visited the after() call")
	}
	if !*mayAtAfter {
		t.Errorf("may-analysis lost the fact at the join: one branch generated it")
	}
	if *mustAtAfter {
		t.Errorf("must-analysis kept the fact at the join: the other branch never generated it")
	}
}
